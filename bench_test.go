// Benchmarks regenerating every table and figure of the paper at reduced
// instruction budgets. One benchmark per experiment:
//
//	go test -bench=. -benchmem
//
// The experiment runner memoizes simulations, so configurations shared by
// several experiments are simulated once per process. For full-budget
// reproductions use cmd/tcbench.
package tracecache_test

import (
	"strings"
	"sync"
	"testing"

	"tracecache"
)

// benchWarmup/benchBudget are reduced budgets for the testing.B harness.
const (
	benchWarmup = 60_000
	benchBudget = 100_000
)

var runnerOnce = sync.OnceValue(func() *tracecache.Runner {
	return tracecache.NewRunner(benchWarmup, benchBudget)
})

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := tracecache.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	r := runnerOnce()
	var out string
	for i := 0; i < b.N; i++ {
		o, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		out = o
	}
	if len(strings.TrimSpace(out)) == 0 {
		b.Fatalf("experiment %s produced no output", id)
	}
}

func BenchmarkTable1Workloads(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkFig4FetchBreakdownBaseline(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkTable2PromotionThresholds(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFig6FetchBreakdownPromotion(b *testing.B) {
	benchExperiment(b, "fig6")
}
func BenchmarkFig7MispredictChange(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkTable3PredictionBandwidth(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig9Packing(b *testing.B)               { benchExperiment(b, "fig9") }
func BenchmarkFig10AllTechniques(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkTable4PackingRegulation(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFig11IPC(b *testing.B)                  { benchExperiment(b, "fig11") }
func BenchmarkFig12CycleAccounting(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13LostCycles(b *testing.B)           { benchExperiment(b, "fig13") }
func BenchmarkFig14Mispredicts(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFig15ResolutionTime(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16IdealCore(b *testing.B)            { benchExperiment(b, "fig16") }

// benchSuite runs a fixed slice of experiments on a fresh (unmemoized)
// runner with the given worker count, so sequential and parallel
// scheduling can be compared at equal work.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	exps := tracecache.Experiments()[:6] // table1..table3: heavy shared sweeps
	for i := 0; i < b.N; i++ {
		r := tracecache.NewRunner(benchWarmup/4, benchBudget/4)
		r.Workers = workers
		var sink int
		err := tracecache.RunExperiments(r, exps, func(e tracecache.Experiment, out string) {
			sink += len(out)
		})
		if err != nil {
			b.Fatal(err)
		}
		if sink == 0 {
			b.Fatal("suite produced no output")
		}
	}
}

// BenchmarkSuiteSequential measures experiment-suite wall clock with the
// worker pool disabled (one simulation at a time).
func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteParallel measures the same suite fanned across all cores;
// on a multi-core machine the ratio to BenchmarkSuiteSequential is the
// sweep-engine speedup recorded in BENCH_perf.json.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions simulated per second) on the baseline machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog, err := tracecache.BenchmarkProgram("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := tracecache.BaselineConfig()
	cfg.MaxInsts = 200_000
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		run, err := tracecache.Simulate(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		retired += run.Retired
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkSimulatorThroughputChecked is the same run with the
// self-verification layer on (lockstep reference model + structural
// invariants); the gap against BenchmarkSimulatorThroughput is the
// recorded -check overhead.
func BenchmarkSimulatorThroughputChecked(b *testing.B) {
	prog, err := tracecache.BenchmarkProgram("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := tracecache.BaselineConfig()
	cfg.MaxInsts = 200_000
	cfg.Check = true
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		run, err := tracecache.Simulate(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		retired += run.Retired
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "insts/s")
}

// warmSweep runs a warmup-heavy five-configuration sweep over two
// benchmarks on a fresh runner, sequentially (the acceptance scenario is a
// one-core container). Every run spends 200k instructions on a prefix
// nobody measures; with ffwd == 0 that prefix is fully cycle-detailed in
// each of the ten simulations, while a non-zero ffwd replaces that much of
// it with a functional prefix restored from one shared architectural
// checkpoint per benchmark (captured once per process, like production
// sweeps).
func warmSweep(b *testing.B, ffwd uint64) {
	b.Helper()
	const prefix = 200_000
	configs := []tracecache.Config{
		tracecache.BaselineConfig(),
		tracecache.ICacheConfig(),
		tracecache.PromotionConfig(64),
		tracecache.PackingConfig(),
		tracecache.BestConfig(),
	}
	benches := []string{"gcc", "go"}
	for i := 0; i < b.N; i++ {
		r := tracecache.NewRunner(prefix-ffwd, 20_000)
		r.FastForward = ffwd
		r.Workers = 1
		var retired uint64
		for _, cfg := range configs {
			for _, bench := range benches {
				run, err := r.RunE(cfg, bench)
				if err != nil {
					b.Fatal(err)
				}
				retired += run.Retired
			}
		}
		if retired == 0 {
			b.Fatal("sweep retired nothing")
		}
	}
}

// BenchmarkWarmupSweepDetailed pays the shared prefix cycle-detailed in
// every sweep point: O(points × prefix) detailed work.
func BenchmarkWarmupSweepDetailed(b *testing.B) { warmSweep(b, 0) }

// BenchmarkWarmupSweepCheckpointed shares the prefix through one
// checkpoint per benchmark: O(prefix) functional work plus a short
// detailed warmup per point. The ratio to BenchmarkWarmupSweepDetailed is
// the checkpoint-sweep speedup recorded in BENCH_perf.json.
func BenchmarkWarmupSweepCheckpointed(b *testing.B) { warmSweep(b, 180_000) }

// BenchmarkFastForwardAccuracy reports the statistical cost of replacing
// detailed warmup with fast-forward as metrics: the same measured region
// is simulated with an all-detailed 150k warmup and with 100k fast-forward
// plus 50k detailed warmup, and the per-statistic deltas are recorded in
// BENCH_perf.json. The runs are deterministic, so the deltas are exact
// properties of the warming model, not noise.
func BenchmarkFastForwardAccuracy(b *testing.B) {
	prog, err := tracecache.BenchmarkProgram("gcc")
	if err != nil {
		b.Fatal(err)
	}
	var dIPC, dEff, dMisp float64
	for i := 0; i < b.N; i++ {
		det := tracecache.BaselineConfig()
		det.WarmupInsts, det.MaxInsts = 150_000, 100_000
		rd, err := tracecache.Simulate(det, prog)
		if err != nil {
			b.Fatal(err)
		}
		ff := tracecache.BaselineConfig()
		ff.FastForwardInsts, ff.WarmupInsts, ff.MaxInsts = 100_000, 50_000, 100_000
		rf, err := tracecache.Simulate(ff, prog)
		if err != nil {
			b.Fatal(err)
		}
		if rd.Retired != rf.Retired {
			b.Fatalf("measured regions differ: %d vs %d retired", rd.Retired, rf.Retired)
		}
		dIPC = 100 * (rf.IPC() - rd.IPC()) / rd.IPC()
		dEff = 100 * (rf.EffFetchRate() - rd.EffFetchRate()) / rd.EffFetchRate()
		dMisp = 100 * (rf.CondMispredictRate() - rd.CondMispredictRate())
	}
	b.ReportMetric(dIPC, "ipc-delta-%")
	b.ReportMetric(dEff, "effrate-delta-%")
	b.ReportMetric(dMisp, "mispredict-delta-pp")
}

// frontEndSweepConfigs are the five front-end configurations of the
// replay sweep benchmarks (every pair differs only in front-end axes, so
// one recording per benchmark serves all of them).
func frontEndSweepConfigs() []tracecache.Config {
	return []tracecache.Config{
		tracecache.BaselineConfig(),
		tracecache.ICacheConfig(),
		tracecache.PromotionConfig(64),
		tracecache.PackingConfig(),
		tracecache.BestConfig(),
	}
}

// frontEndSweep drives the ten-point front-end sweep (five configurations
// by two benchmarks) through a fresh sequential runner per iteration.
func frontEndSweep(b *testing.B, replay bool, traceDir string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := tracecache.NewRunner(benchWarmup, benchBudget)
		r.Workers = 1
		r.Replay = replay
		r.TraceDir = traceDir
		var retired uint64
		for _, cfg := range frontEndSweepConfigs() {
			for _, bench := range []string{"gcc", "go"} {
				run, err := r.RunE(cfg, bench)
				if err != nil {
					b.Fatal(err)
				}
				retired += run.Retired
			}
		}
		if retired == 0 {
			b.Fatal("sweep retired nothing")
		}
	}
}

// BenchmarkFrontEndSweepDetailed simulates every point of the front-end
// sweep cycle-detailed: O(points × budget) detailed work.
func BenchmarkFrontEndSweepDetailed(b *testing.B) { frontEndSweep(b, false, "") }

// BenchmarkFrontEndSweepReplay resolves the same sweep from recorded
// retired streams: each benchmark is recorded once outside the timed
// region (the production workflow — recordings persist across sweeps via
// Runner.TraceDir), then every point replays through the front end only.
// The ratio to BenchmarkFrontEndSweepDetailed is the replay speedup
// recorded in BENCH_perf.json.
func BenchmarkFrontEndSweepReplay(b *testing.B) {
	dir := b.TempDir()
	pre := tracecache.NewRunner(benchWarmup, benchBudget)
	pre.Workers = 1
	pre.Replay = true
	pre.TraceDir = dir
	for _, bench := range []string{"gcc", "go"} {
		if _, err := pre.RunE(tracecache.BaselineConfig(), bench); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	frontEndSweep(b, true, dir)
}

// BenchmarkReplayAccuracy reports the statistical cost of the replay
// fast path as metrics, mirroring BenchmarkFastForwardAccuracy: the two
// headline configurations are simulated detailed and replayed from one
// recording, and the per-statistic deltas are recorded in
// BENCH_perf.json next to the fast-forward accuracy deltas. The runs are
// deterministic, so the deltas are exact properties of the replay model
// (wrong-path absence, fetch-granular boundaries), not noise.
func BenchmarkReplayAccuracy(b *testing.B) {
	const bench = "gcc"
	headline := []struct {
		label string
		cfg   tracecache.Config
	}{
		{"baseline", tracecache.BaselineConfig()},
		{"best", tracecache.BestConfig()},
	}
	var dEff, dMisp [2]float64
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		rec := tracecache.NewRunner(benchWarmup, benchBudget)
		rec.Workers = 1
		rec.Replay = true
		rec.TraceDir = dir
		if _, err := rec.RunE(tracecache.BaselineConfig(), bench); err != nil {
			b.Fatal(err)
		}
		det := tracecache.NewRunner(benchWarmup, benchBudget)
		det.Workers = 1
		rep := tracecache.NewRunner(benchWarmup, benchBudget)
		rep.Workers = 1
		rep.Replay = true
		rep.TraceDir = dir
		for j, h := range headline {
			dRun, err := det.RunE(h.cfg, bench)
			if err != nil {
				b.Fatal(err)
			}
			rRun, err := rep.RunE(h.cfg, bench)
			if err != nil {
				b.Fatal(err)
			}
			dEff[j] = 100 * (rRun.EffFetchRate() - dRun.EffFetchRate()) / dRun.EffFetchRate()
			dMisp[j] = 100 * (rRun.CondMispredictRate() - dRun.CondMispredictRate())
		}
	}
	for j, h := range headline {
		b.ReportMetric(dEff[j], h.label+"-eff-delta-%")
		b.ReportMetric(dMisp[j], h.label+"-mispredict-delta-pp")
	}
}

// sampledSweep drives a six-point sweep (three configurations by two
// benchmarks) at a fixed 400k-instruction committed-stream extent per
// point, either fully detailed or through the statistical-sampling path
// (10 windows of 1k insts + 1k warmup per point, ~0.5% measured in
// detail). The ratio of the two variants is the sampled-sweep speedup
// recorded in BENCH_perf.json.
func sampledSweep(b *testing.B, sampled bool) {
	b.Helper()
	const budget = 400_000
	configs := []tracecache.Config{
		tracecache.BaselineConfig(),
		tracecache.ICacheConfig(),
		tracecache.BestConfig(),
	}
	benches := []string{"gcc", "go"}
	for i := 0; i < b.N; i++ {
		r := tracecache.NewRunner(0, budget)
		r.Workers = 1
		if sampled {
			r.Sampling = tracecache.SamplingParams{
				WindowInsts: 1000, PeriodInsts: 40_000, WarmupInsts: 1000, Seed: 1,
			}
		}
		var measured uint64
		for _, cfg := range configs {
			for _, bench := range benches {
				if sampled {
					sm, err := r.RunSampledE(cfg, bench)
					if err != nil {
						b.Fatal(err)
					}
					measured += sm.MeasuredInsts
				} else {
					run, err := r.RunE(cfg, bench)
					if err != nil {
						b.Fatal(err)
					}
					measured += run.Retired
				}
			}
		}
		if measured == 0 {
			b.Fatal("sweep measured nothing")
		}
	}
}

// BenchmarkSampledSweepDetailed simulates every point of the sweep
// cycle-detailed over the full committed-stream extent.
func BenchmarkSampledSweepDetailed(b *testing.B) { sampledSweep(b, false) }

// BenchmarkSampledSweepSampled covers the same extent with the SMARTS-style
// sampled execution mode (functional gaps + detailed windows).
func BenchmarkSampledSweepSampled(b *testing.B) { sampledSweep(b, true) }

// BenchmarkSampledAccuracy reports the statistical cost of sampling as
// metrics, mirroring BenchmarkFastForwardAccuracy: the two headline
// configurations are run fully detailed over a 200k-instruction extent
// (the ground truth) and sampled over the same extent (10 windows, 5%
// measured), and the per-statistic deltas plus the number of headline
// metrics whose truth falls inside the sampled 95% CI (of 3) are recorded
// in BENCH_perf.json. The runs are deterministic, so the deltas are exact
// properties of the sampling model, not noise.
func BenchmarkSampledAccuracy(b *testing.B) {
	const bench = "gcc"
	prog, err := tracecache.BenchmarkProgram(bench)
	if err != nil {
		b.Fatal(err)
	}
	headline := []struct {
		label string
		cfg   tracecache.Config
	}{
		{"baseline", tracecache.BaselineConfig()},
		{"best", tracecache.BestConfig()},
	}
	var dIPC, dEff, dMisp, ciIPC, covered [2]float64
	for i := 0; i < b.N; i++ {
		for j, h := range headline {
			det := h.cfg
			det.WarmupInsts, det.MaxInsts = 0, 1_000_000
			truth, err := tracecache.Simulate(det, prog)
			if err != nil {
				b.Fatal(err)
			}
			sc := det
			sc.Sampling = tracecache.SamplingParams{
				WindowInsts: 1000, PeriodInsts: 50_000, WarmupInsts: 5000, Seed: 1,
			}
			sm, err := tracecache.SimulateSampled(sc, prog)
			if err != nil {
				b.Fatal(err)
			}
			dIPC[j] = 100 * (sm.IPC.Mean - truth.IPC()) / truth.IPC()
			dEff[j] = 100 * (sm.EffFetchRate.Mean - truth.EffFetchRate()) / truth.EffFetchRate()
			dMisp[j] = 100 * (sm.MispredictRate.Mean - truth.CondMispredictRate())
			ciIPC[j] = sm.IPC.HalfWidth()
			covered[j] = 0
			if diff := sm.IPC.Mean - truth.IPC(); abs(diff) <= sm.IPC.HalfWidth() {
				covered[j]++
			}
			if diff := sm.EffFetchRate.Mean - truth.EffFetchRate(); abs(diff) <= sm.EffFetchRate.HalfWidth() {
				covered[j]++
			}
			if diff := sm.MispredictRate.Mean - truth.CondMispredictRate(); abs(diff) <= sm.MispredictRate.HalfWidth() {
				covered[j]++
			}
		}
	}
	for j, h := range headline {
		b.ReportMetric(dIPC[j], h.label+"-ipc-delta-%")
		b.ReportMetric(dEff[j], h.label+"-eff-delta-%")
		b.ReportMetric(dMisp[j], h.label+"-mispredict-delta-pp")
		b.ReportMetric(ciIPC[j], h.label+"-ipc-ci-halfwidth")
		b.ReportMetric(covered[j], h.label+"-covered-of-3")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkHeadline reports the paper's headline comparison as metrics:
// effective fetch rate of baseline vs promotion+packing.
func BenchmarkHeadline(b *testing.B) {
	r := runnerOnce()
	var base, best float64
	for i := 0; i < b.N; i++ {
		base, best = 0, 0
		for _, bench := range tracecache.Benchmarks() {
			baseRun, err := r.RunE(tracecache.BaselineConfig(), bench)
			if err != nil {
				b.Fatal(err)
			}
			bestRun, err := r.RunE(tracecache.PromotionPackingConfig(tracecache.PackUnregulated, 64), bench)
			if err != nil {
				b.Fatal(err)
			}
			base += baseRun.EffFetchRate()
			best += bestRun.EffFetchRate()
		}
		n := float64(len(tracecache.Benchmarks()))
		base /= n
		best /= n
	}
	b.ReportMetric(base, "baseline-eff")
	b.ReportMetric(best, "promo+pack-eff")
	b.ReportMetric(100*(best-base)/base, "gain-%")
}
