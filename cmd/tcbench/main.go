// Command tcbench regenerates the tables and figures of the paper's
// evaluation.
//
// Usage:
//
//	tcbench                 # every experiment, all cores
//	tcbench -exp table2     # one experiment
//	tcbench -exp fig10,fig11
//	tcbench -j 1            # sequential (same output, more wall-clock)
//	tcbench -ffwd 10000000 -warmup 400000   # skip a shared functional prefix
//	tcbench -list
//	tcbench -warmup 400000 -insts 1000000 -progress
//	tcbench -exp fig11 -cpuprofile cpu.pprof -memprofile mem.pprof
//	tcbench -http 127.0.0.1:8080        # live /metrics /progress /debug/pprof
//	tcbench -journal runs.jsonl         # persist one record per simulation
//	tcbench -journal-report runs.jsonl  # summarize a journal, no simulation
//	tcbench -journal-report old.jsonl,new.jsonl   # diff two journals
//	tcbench -replay -tracedir traces/   # front-end replay fast path (see DESIGN.md §9)
//
// Monitoring and journaling are opt-in, write only to stderr, files and
// HTTP, and never change the experiment output on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"tracecache"
	"tracecache/internal/buildinfo"
	"tracecache/internal/experiments"
	"tracecache/internal/journal"
	"tracecache/internal/metrics"
	"tracecache/internal/monitor"
	"tracecache/internal/obs"
	"tracecache/internal/profiler"
	"tracecache/internal/resultstore"
	"tracecache/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		ffwd     = flag.Uint64("ffwd", 0, "fast-forward instructions per run (one shared checkpoint per benchmark)")
		warmup   = flag.Uint64("warmup", 400_000, "warmup instructions per run")
		insts    = flag.Uint64("insts", 600_000, "measured instructions per run")
		workers  = flag.Int("j", runtime.NumCPU(), "max concurrent simulations (1 = sequential)")
		list     = flag.Bool("list", false, "list experiments")
		progress = flag.Bool("progress", false, "log each simulation to stderr")
		version  = flag.Bool("version", false, "print version and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		check    = flag.Bool("check", false, "run every simulation with the self-verification layer; violations fail the experiment")
		httpAddr = flag.String("http", "", "serve live monitoring on this address (/metrics, /progress, /debug/pprof), e.g. 127.0.0.1:8080")
		jPath    = flag.String("journal", "", "append one JSONL record per simulation to this file")
		jReport  = flag.String("journal-report", "", "summarize a journal file and exit (two comma-separated files: diff them)")
		replay   = flag.Bool("replay", false, "record each benchmark's retired stream once and replay it for every front-end-equivalent point (cycle-domain statistics undefined on replayed points; see DESIGN.md §9)")
		traceDir = flag.String("tracedir", "", "with -replay, persist and reuse recorded streams in this directory")
		sample   = flag.String("sample", "", "run the sampled headline comparison with schedule window:period:warmup[:seed]; -insts becomes the total committed-stream budget per benchmark and -exp is ignored (see DESIGN.md §10)")
		storeDir = flag.String("store", "", "consult and populate this persistent result-store directory (shared with tcserve and other tcbench runs; see DESIGN.md §11)")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("tcbench"))
		return
	}
	if *jReport != "" {
		if err := journalReport(*jReport); err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range tracecache.Experiments() {
			fmt.Printf("%-13s %s\n              paper: %s\n", e.ID, e.Title, e.Paper)
		}
		for _, e := range tracecache.ExtensionExperiments() {
			fmt.Printf("%-13s %s (extension)\n              basis: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var selected []tracecache.Experiment
	switch *exp {
	case "all":
		selected = tracecache.Experiments()
	case "ext":
		selected = tracecache.ExtensionExperiments()
	case "everything":
		selected = append(tracecache.Experiments(), tracecache.ExtensionExperiments()...)
	default:
		for _, id := range strings.Split(*exp, ",") {
			e, ok := tracecache.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "tcbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	stopProf, err := profiler.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
		os.Exit(1)
	}

	r := tracecache.NewRunner(*warmup, *insts)
	r.FastForward = *ffwd
	r.Workers = *workers
	r.Check = *check
	r.Replay = *replay
	r.TraceDir = *traceDir
	if *storeDir != "" {
		store, err := resultstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
			os.Exit(1)
		}
		r.Store = store
	}
	if *progress {
		r.Log = os.Stderr
	}
	if *sample != "" {
		if *replay {
			fmt.Fprintln(os.Stderr, "tcbench: -sample cannot be combined with -replay (sampled runs need the full machine)")
			os.Exit(1)
		}
		p, err := sim.ParseSamplingSpec(*sample)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
			os.Exit(1)
		}
		r.Sampling = p
		selected = []tracecache.Experiment{{
			ID:    "sampled",
			Title: fmt.Sprintf("Promotion/packing headline comparison, statistically sampled at %d insts/benchmark", *insts),
			Paper: "paper-scale counterpart of Figures 10 and 11, with 95% confidence intervals",
			Run:   experiments.SampledComparison,
		}}
	}

	// Monitoring and journaling ride on the runner's instrumentation
	// hooks; with both flags absent every hook stays nil.
	var (
		prog   *monitor.Progress
		monSrv *monitor.Server
		jw     *journal.Writer
	)
	if *httpAddr != "" || *jPath != "" {
		reg := metrics.NewRegistry()
		m := experiments.InstrumentRunner(reg)
		r.Metrics = m
		if r.Store != nil {
			r.Store.Metrics = resultstore.InstrumentStore(reg)
		}
		var listeners []func(experiments.RunEvent)
		if *jPath != "" {
			var err error
			jw, err = journal.OpenFile(*jPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
				os.Exit(1)
			}
			listeners = append(listeners, journal.RunnerListener(jw, func(err error) {
				fmt.Fprintf(os.Stderr, "tcbench: journal: %v\n", err)
			}))
		}
		if *httpAddr != "" {
			prog = monitor.NewProgress(r.Workers, m.Sim.Insts.Value)
			listeners = append(listeners, prog.Listener())
			sink := metrics.NewBusSink(reg)
			r.NewObserver = func() *obs.Bus {
				b := obs.NewBus(0)
				b.Attach(sink)
				return b
			}
			monSrv = &monitor.Server{Registry: reg, Progress: prog}
			addr, err := monSrv.Start(*httpAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "tcbench: monitoring on http://%s (/metrics /progress /debug/pprof)\n", addr)
		}
		r.OnRun = experiments.MultiListener(listeners...)
	}

	runErr := tracecache.RunExperiments(r, selected, func(e tracecache.Experiment, out string) {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s: %s\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n", e.Paper)
		fmt.Printf("------------------------------------------------------------------\n")
		fmt.Println(out)
	})
	if prog != nil {
		prog.Finish()
	}
	if monSrv != nil {
		_ = monSrv.Close()
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: journal: %v\n", err)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", runErr)
		os.Exit(1)
	}
}

// journalReport renders a journal summary (one path) or a journal diff
// (two comma-separated paths) to stdout without running any simulation.
func journalReport(spec string) error {
	paths := strings.Split(spec, ",")
	for i := range paths {
		paths[i] = strings.TrimSpace(paths[i])
	}
	switch len(paths) {
	case 1:
		recs, truncated, err := journal.ReadFile(paths[0])
		if err != nil {
			return err
		}
		fmt.Print(journal.Report(recs, truncated))
		return nil
	case 2:
		a, truncA, err := journal.ReadFile(paths[0])
		if err != nil {
			return err
		}
		b, truncB, err := journal.ReadFile(paths[1])
		if err != nil {
			return err
		}
		if truncA || truncB {
			fmt.Fprintln(os.Stderr, "tcbench: warning: journal tail truncated (unterminated final line skipped)")
		}
		fmt.Print(journal.Diff(a, b))
		return nil
	default:
		return fmt.Errorf("-journal-report takes one file, or two comma-separated files to diff")
	}
}
