// Command tcbench regenerates the tables and figures of the paper's
// evaluation.
//
// Usage:
//
//	tcbench                 # every experiment, all cores
//	tcbench -exp table2     # one experiment
//	tcbench -exp fig10,fig11
//	tcbench -j 1            # sequential (same output, more wall-clock)
//	tcbench -ffwd 10000000 -warmup 400000   # skip a shared functional prefix
//	tcbench -list
//	tcbench -warmup 400000 -insts 1000000 -progress
//	tcbench -exp fig11 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"tracecache"
	"tracecache/internal/buildinfo"
	"tracecache/internal/profiler"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		ffwd     = flag.Uint64("ffwd", 0, "fast-forward instructions per run (one shared checkpoint per benchmark)")
		warmup   = flag.Uint64("warmup", 400_000, "warmup instructions per run")
		insts    = flag.Uint64("insts", 600_000, "measured instructions per run")
		workers  = flag.Int("j", runtime.NumCPU(), "max concurrent simulations (1 = sequential)")
		list     = flag.Bool("list", false, "list experiments")
		progress = flag.Bool("progress", false, "log each simulation to stderr")
		version  = flag.Bool("version", false, "print version and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		check    = flag.Bool("check", false, "run every simulation with the self-verification layer; violations fail the experiment")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("tcbench"))
		return
	}
	if *list {
		for _, e := range tracecache.Experiments() {
			fmt.Printf("%-13s %s\n              paper: %s\n", e.ID, e.Title, e.Paper)
		}
		for _, e := range tracecache.ExtensionExperiments() {
			fmt.Printf("%-13s %s (extension)\n              basis: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var selected []tracecache.Experiment
	switch *exp {
	case "all":
		selected = tracecache.Experiments()
	case "ext":
		selected = tracecache.ExtensionExperiments()
	case "everything":
		selected = append(tracecache.Experiments(), tracecache.ExtensionExperiments()...)
	default:
		for _, id := range strings.Split(*exp, ",") {
			e, ok := tracecache.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "tcbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	stopProf, err := profiler.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
		os.Exit(1)
	}

	r := tracecache.NewRunner(*warmup, *insts)
	r.FastForward = *ffwd
	r.Workers = *workers
	r.Check = *check
	if *progress {
		r.Log = os.Stderr
	}
	runErr := tracecache.RunExperiments(r, selected, func(e tracecache.Experiment, out string) {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s: %s\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n", e.Paper)
		fmt.Printf("------------------------------------------------------------------\n")
		fmt.Println(out)
	})
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", runErr)
		os.Exit(1)
	}
}
