package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tracecache/internal/journal"
	"tracecache/internal/stats"
)

// buildBinary compiles tcbench into a temp dir once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tcbench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	var o, e bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &o
	cmd.Stderr = &e
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr:\n%s", bin, args, err, e.String())
	}
	return o.String(), e.String()
}

// TestMonitoredStdoutByteIdentical is the stdout-purity regression test:
// a parallel tcbench with monitoring and journaling enabled must write
// byte-identical experiment output to a bare sequential run — all
// monitoring output goes to stderr, files and HTTP only.
func TestMonitoredStdoutByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildBinary(t)
	jPath := filepath.Join(t.TempDir(), "runs.jsonl")
	budgets := []string{"-exp", "fig4,table2", "-warmup", "1000", "-insts", "3000"}

	bare, _ := run(t, bin, append([]string{"-j", "1"}, budgets...)...)
	monitored, stderr := run(t, bin,
		append([]string{"-j", "4", "-http", "127.0.0.1:0", "-journal", jPath}, budgets...)...)

	if bare != monitored {
		t.Errorf("monitored stdout differs from bare run:\n--- bare ---\n%s\n--- monitored ---\n%s",
			bare, monitored)
	}
	if !strings.Contains(stderr, "monitoring on http://") {
		t.Errorf("monitoring announce missing from stderr: %q", stderr)
	}

	recs, truncated, err := journal.ReadFile(jPath)
	if err != nil || truncated {
		t.Fatalf("journal: err=%v truncated=%v", err, truncated)
	}
	if len(recs) == 0 {
		t.Fatal("journal is empty")
	}
	for _, rec := range recs {
		if rec.Error != "" {
			t.Errorf("failed record: %+v", rec)
		}
		if rec.Provenance != stats.ProvCold && rec.Provenance != stats.ProvMemoized {
			t.Errorf("unexpected provenance %q (no fast-forward was configured)", rec.Provenance)
		}
	}

	// The report subcommand summarizes the journal without simulating.
	report, _ := run(t, bin, "-journal-report", jPath)
	if !strings.Contains(report, "journal:") || !strings.Contains(report, "cold") {
		t.Errorf("journal report = %q", report)
	}
}
