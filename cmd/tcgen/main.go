// Command tcgen generates and inspects the synthetic benchmark programs.
//
// Usage:
//
//	tcgen -bench gcc -stats           # static + dynamic stream statistics
//	tcgen -bench compress -disasm | head -50
//	tcgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"tracecache"
	"tracecache/internal/buildinfo"
	"tracecache/internal/isa"
	"tracecache/internal/metrics"
	"tracecache/internal/monitor"
	"tracecache/internal/textplot"
	"tracecache/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "gcc", "benchmark name")
		disasm   = flag.Bool("disasm", false, "print the disassembly")
		doStat   = flag.Bool("stats", true, "print static and dynamic statistics")
		limit    = flag.Uint64("limit", 500_000, "dynamic-analysis instruction budget")
		list     = flag.Bool("list", false, "list benchmarks")
		save     = flag.String("save", "", "write the program image to this file")
		scale    = flag.Int("scale", 0, "replicate the code footprint this many times (power of two <= 64) for paper-scale runs; 0 or 1 generate the standard program")
		version  = flag.Bool("version", false, "print version and exit")
		httpAddr = flag.String("http", "", "serve /metrics and /debug/pprof on this address while generating/analyzing")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("tcgen"))
		return
	}
	if *httpAddr != "" {
		srv := &monitor.Server{Registry: metrics.NewRegistry()}
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcgen: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tcgen: monitoring on http://%s (/metrics /debug/pprof)\n", addr)
	}
	if *list {
		for _, name := range tracecache.Benchmarks() {
			p, _ := tracecache.BenchmarkProfile(name)
			fmt.Printf("%-14s paper: %-5s %s\n", name, p.PaperInsts, p.PaperInput)
		}
		return
	}

	p, ok := tracecache.BenchmarkProfile(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "tcgen: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(1)
	}
	prog, err := p.Scaled(*scale).Generate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcgen: %v\n", err)
		os.Exit(1)
	}

	if *save != "" {
		if err := prog.SaveFile(*save); err != nil {
			fmt.Fprintf(os.Stderr, "tcgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d instructions)\n", *save, len(prog.Code))
	}
	if *disasm {
		fmt.Print(prog.Disassemble())
		return
	}
	if !*doStat {
		return
	}

	st := prog.Stats()
	fmt.Println(textplot.Table([]string{"Static", "Value"}, [][]string{
		{"instructions", fmt.Sprintf("%d", st.Insts)},
		{"code bytes", fmt.Sprintf("%d", st.Insts*isa.InstBytes)},
		{"conditional branches", fmt.Sprintf("%d", st.CondBranches)},
		{"calls / returns", fmt.Sprintf("%d / %d", st.Calls, st.Returns)},
		{"indirect jumps", fmt.Sprintf("%d", st.Indirects)},
		{"traps", fmt.Sprintf("%d", st.Traps)},
		{"loads / stores", fmt.Sprintf("%d / %d", st.Loads, st.Stores)},
		{"mean static block size", fmt.Sprintf("%.2f", st.MeanBlockSize())},
	}))

	a := workload.Analyze(prog, *limit)
	fmt.Println(textplot.Table([]string{"Dynamic (first " + fmt.Sprint(*limit) + " insts)", "Value"}, [][]string{
		{"mean fetch block size", fmt.Sprintf("%.2f", a.MeanBlockSize())},
		{"conditional branch fraction", fmt.Sprintf("%.1f%%", 100*a.BranchFraction())},
		{"taken fraction", fmt.Sprintf("%.1f%%", 100*a.TakenFraction())},
		{"strongly biased (>=90%) dyn. share", fmt.Sprintf("%.1f%%", 100*a.BiasedDynShare)},
		{"warm branch sites / biased", fmt.Sprintf("%d / %d", a.Sites, a.BiasedSites)},
		{"calls / returns", fmt.Sprintf("%d / %d", a.Calls, a.Returns)},
		{"indirect jumps", fmt.Sprintf("%d", a.Indirects)},
		{"max call depth", fmt.Sprintf("%d", a.MaxCallDepth)},
	}))
}
