// Command tcserve is the sweep service daemon: it accepts simulation
// sweeps over an HTTP/JSON API, executes them on a shared worker pool
// backed by the persistent content-addressed result store, and serves
// results, live progress (JSON/SSE), windowed time-series, and
// Chrome/Perfetto traces.
//
// Usage:
//
//	tcserve -http 127.0.0.1:8080 -store /var/lib/tracecache/store
//	tcserve -http :8080 -store store -tracedir traces -journal runs.jsonl -j 4
//
// Submit a sweep:
//
//	curl -s -XPOST localhost:8080/api/jobs -d '{"configs":["baseline","best"],"benchmarks":["gcc","go"]}'
//
// See README.md ("Sweep service") for the full walkthrough.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"tracecache/internal/buildinfo"
	"tracecache/internal/server"
)

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:8080", "listen address")
		storeDir = flag.String("store", "", "persistent result store directory (required)")
		traceDir = flag.String("tracedir", "", "directory for shared retired-stream recordings (enables replay reuse across jobs)")
		jPath    = flag.String("journal", "", "append one JSONL record per resolved run to this file")
		workers  = flag.Int("j", 0, "concurrent simulations per job (default GOMAXPROCS)")
		maxJobs  = flag.Int("max-jobs", 2, "sweep jobs simulating concurrently; later jobs queue")
		maxPts   = flag.Int("max-points", 1024, "largest accepted sweep, in points")
		qRate    = flag.Float64("quota-rate", 1, "per-client submission tokens per second (negative disables quotas)")
		qBurst   = flag.Float64("quota-burst", 8, "per-client submission burst capacity")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("tcserve"))
		return
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "tcserve: -store is required (the persistent result store directory)")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "tcserve: ", log.LstdFlags)
	srv, err := server.New(server.Options{
		StoreDir:          *storeDir,
		TraceDir:          *traceDir,
		JournalPath:       *jPath,
		Workers:           *workers,
		MaxConcurrentJobs: *maxJobs,
		MaxPointsPerJob:   *maxPts,
		QuotaRate:         *qRate,
		QuotaBurst:        *qBurst,
		Logf:              logger.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcserve: %v\n", err)
		os.Exit(1)
	}

	addr, err := srv.Start(*httpAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcserve: %v\n", err)
		os.Exit(1)
	}
	logger.Printf("%s serving on http://%s (store %s)", buildinfo.String("tcserve"), addr, *storeDir)
	logger.Printf("POST /api/jobs to submit a sweep; GET /metrics, /api/jobs, /debug/pprof/")

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	logger.Printf("shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tcserve: %v\n", err)
		os.Exit(1)
	}
}
