// Command tcsim runs one benchmark under one machine configuration and
// prints a full report: IPC, effective fetch rate, branch behaviour, the
// fetch width breakdown and the fetch-cycle accounting.
//
// Usage:
//
//	tcsim -bench gcc -config baseline -warmup 400000 -insts 1000000
//	tcsim -bench gcc -config best -ffwd 10000000 -warmup 400000 -insts 1000000
//	tcsim -bench gcc -config promote -interval 10000 -timeseries ts.json -trace tr.json
//	tcsim -bench gcc -http 127.0.0.1:8080 -journal runs.jsonl
//	tcsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tracecache"
	"tracecache/internal/buildinfo"
	"tracecache/internal/core"
	"tracecache/internal/journal"
	"tracecache/internal/metrics"
	"tracecache/internal/monitor"
	"tracecache/internal/obs"
	"tracecache/internal/profiler"
	"tracecache/internal/program"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/textplot"
)

func main() {
	var (
		bench    = flag.String("bench", "gcc", "benchmark name (see -list)")
		cfgStr   = flag.String("config", "baseline", "configuration name (see -list)")
		ffwd     = flag.Uint64("ffwd", 0, "instructions to fast-forward functionally before the detailed phases")
		warmup   = flag.Uint64("warmup", 400_000, "warmup instructions before measurement")
		insts    = flag.Uint64("insts", 1_000_000, "measured instructions")
		list     = flag.Bool("list", false, "list benchmarks and configurations")
		asJSON   = flag.Bool("json", false, "emit a JSON summary instead of the report")
		progFile = flag.String("prog", "", "run a saved program image (tcgen -save) instead of -bench")
		version  = flag.Bool("version", false, "print version and exit")
		interval = flag.Uint64("interval", 10_000, "time-series interval length in cycles")
		tsOut    = flag.String("timeseries", "", "write windowed time-series telemetry to this file (.csv for CSV, JSON otherwise)")
		trOut    = flag.String("trace", "", "write a Chrome/Perfetto trace-event file (open at ui.perfetto.dev)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		check    = flag.Bool("check", false, "run with the self-verification layer (lockstep reference model + invariants); violations exit non-zero")
		httpAddr = flag.String("http", "", "serve live monitoring on this address (/metrics, /progress, /debug/pprof), e.g. 127.0.0.1:8080")
		jPath    = flag.String("journal", "", "append one JSONL record for this run to this file")
		recPath  = flag.String("record", "", "record the retired stream to this file (an existing directory gets the content-addressed name)")
		repPath  = flag.String("replay", "", "replay a recorded stream through the front end only (cycle-domain stats undefined; see DESIGN.md §9)")
		repVer   = flag.Bool("replay-verify", false, "record in-memory, replay, and verify replayed statistics against the detailed run; violations exit non-zero")
		sample   = flag.String("sample", "", "statistical sampling schedule window:period:warmup[:seed]; -insts becomes the total committed-stream budget and -warmup is unused (see DESIGN.md §10)")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("tcsim"))
		return
	}
	if *list {
		fmt.Println("benchmarks: ", strings.Join(tracecache.Benchmarks(), " "))
		fmt.Println("configs:    ", strings.Join(tracecache.ConfigNames(), " "))
		return
	}

	cfg, ok := tracecache.ConfigByName(*cfgStr)
	if !ok {
		fmt.Fprintf(os.Stderr, "tcsim: unknown config %q (try -list)\n", *cfgStr)
		os.Exit(1)
	}
	cfg.FastForwardInsts = *ffwd
	cfg.WarmupInsts = *warmup
	cfg.MaxInsts = *insts
	cfg.Check = *check

	var prog *tracecache.Program
	var err error
	if *progFile != "" {
		prog, err = program.LoadFile(*progFile)
	} else {
		prog, err = tracecache.BenchmarkProgram(*bench)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %v (try -list)\n", err)
		os.Exit(1)
	}

	if *repPath != "" || *repVer {
		if *check || *recPath != "" || *httpAddr != "" || *tsOut != "" || *trOut != "" || *sample != "" {
			fmt.Fprintln(os.Stderr, "tcsim: -replay/-replay-verify cannot be combined with -check, -record, -http, -timeseries, -trace or -sample")
			os.Exit(1)
		}
	}
	if *sample != "" {
		if *recPath != "" || *httpAddr != "" || *tsOut != "" || *trOut != "" {
			fmt.Fprintln(os.Stderr, "tcsim: -sample cannot be combined with -record, -http, -timeseries or -trace (windowed telemetry and recordings need a contiguous detailed run)")
			os.Exit(1)
		}
		p, err := sim.ParseSamplingSpec(*sample)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
		cfg.Sampling = p
		cfg.WarmupInsts = 0 // each window carries its own warmup
		runSampled(cfg, prog, *bench, *progFile, *asJSON, *jPath)
		return
	}
	if *repVer {
		runReplayVerify(cfg, prog)
		return
	}
	if *repPath != "" {
		runReplay(cfg, prog, *repPath, *asJSON, *jPath)
		return
	}

	s, err := tracecache.NewSimulator(cfg, prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
		os.Exit(1)
	}

	var finishRecording func() error
	if *recPath != "" {
		finishRecording, err = attachRecorder(s, *recPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
	}

	var coll *obs.Collector
	if *tsOut != "" {
		coll = obs.NewCollector(*interval)
		s.SetIntervalCollector(coll)
	}
	// All event sinks — the Chrome trace and the monitoring bridge —
	// share one lazily created bus.
	var bus *obs.Bus
	ensureBus := func() *obs.Bus {
		if bus == nil {
			bus = obs.NewBus(0)
			s.AttachObserver(bus)
		}
		return bus
	}
	var chrome *obs.ChromeTrace
	if *trOut != "" {
		chrome = obs.NewChromeTrace(0)
		ensureBus().Attach(chrome)
	}

	pointKey := *cfgStr + "/" + *bench
	if *progFile != "" {
		pointKey = *cfgStr + "/" + *progFile
	}
	var live *monitor.Progress
	var monSrv *monitor.Server
	if *httpAddr != "" {
		reg := metrics.NewRegistry()
		simMet := sim.NewMetrics(reg)
		s.AttachMetrics(simMet)
		ensureBus().Attach(metrics.NewBusSink(reg))
		live = monitor.NewProgress(1, simMet.Insts.Value)
		live.PointQueued(pointKey)
		monSrv = &monitor.Server{Registry: reg, Progress: live}
		addr, err := monSrv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tcsim: monitoring on http://%s (/metrics /progress /debug/pprof)\n", addr)
	}

	stopProf, err := profiler.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
		os.Exit(1)
	}
	if live != nil {
		live.PointStarted(pointKey)
	}
	started := time.Now()
	run := s.Run()
	if live != nil {
		live.PointDone(pointKey, nil, time.Since(started))
		live.Finish()
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
		os.Exit(1)
	}
	if finishRecording != nil {
		if err := finishRecording(); err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
	}
	if run.Meta != nil {
		run.Meta.Tool = "tcsim " + buildinfo.Version()
		if *progFile == "" {
			if p, ok := tracecache.BenchmarkProfile(*bench); ok {
				run.Meta.Seed = p.Seed
			}
		}
	}

	if *jPath != "" {
		if err := appendJournal(*jPath, run, time.Since(started)); err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
	}

	if coll != nil {
		if err := writeSeries(coll.Series(), *tsOut); err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
	}
	if chrome != nil {
		if err := writeTrace(chrome, run.Meta, *trOut); err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
	}

	if chk := s.Checker(); chk != nil {
		if chk.Total() > 0 {
			fmt.Fprintf(os.Stderr, "tcsim: self-check FAILED\n%s\n", chk.Report())
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tcsim: self-check passed (%d committed instructions verified, 0 violations)\n", chk.Commits())
	}

	if *asJSON {
		out, err := run.Summary().JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	report(s, run)
}

// appendJournal appends this run's record to the journal file.
func appendJournal(path string, run *tracecache.Run, wall time.Duration) error {
	w, err := journal.OpenFile(path)
	if err != nil {
		return err
	}
	rec := journal.FromRun(run)
	rec.Time = time.Now().UTC().Format(time.RFC3339)
	if run.Meta != nil {
		rec.Provenance = run.Meta.Provenance
	}
	rec.WallMillis = float64(wall) / float64(time.Millisecond)
	if err := w.Append(rec); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// writeSeries writes the time series as JSON, or CSV when the file name
// ends in .csv.
func writeSeries(ts *obs.TimeSeries, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		err = ts.WriteCSV(f)
	} else {
		err = ts.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// writeTrace writes the Chrome trace-event file.
func writeTrace(c *obs.ChromeTrace, meta *stats.Meta, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.WriteJSON(f, meta); err != nil {
		return err
	}
	return f.Close()
}

func report(s *tracecache.Simulator, run *tracecache.Run) {
	reportParts(run, s.TraceCache(), s.FillUnit())
}

// reportParts renders the report from its pieces, so the detailed path
// (a full simulator) and the replay path (front end only) share it.
func reportParts(run *tracecache.Run, tc *core.TraceCache, fu *core.FillUnit) {
	fmt.Printf("benchmark %s, configuration %s\n\n", run.Benchmark, run.Config)
	fmt.Println(textplot.Table([]string{"Metric", "Value"}, [][]string{
		{"retired instructions", fmt.Sprintf("%d", run.Retired)},
		{"cycles", fmt.Sprintf("%d", run.Cycles)},
		{"IPC", fmt.Sprintf("%.3f", run.IPC())},
		{"effective fetch rate", fmt.Sprintf("%.2f", run.EffFetchRate())},
		{"cond branches", fmt.Sprintf("%d", run.CondBranches)},
		{"cond misprediction rate", fmt.Sprintf("%.2f%%", 100*run.CondMispredictRate())},
		{"promoted executed", fmt.Sprintf("%d", run.PromotedExecuted)},
		{"promoted faults", fmt.Sprintf("%d", run.PromotedFaults)},
		{"indirect jumps / misses", fmt.Sprintf("%d / %d", run.IndirectJumps, run.IndirectMisses)},
		{"avg mispredict resolution", fmt.Sprintf("%.1f cycles", run.AvgResolution())},
		{"trace-cache miss cycles", fmt.Sprintf("%d", run.TCMissCycles)},
	}))

	fmt.Println()
	bySize := run.Hist.BySize()
	labels := make([]string, len(bySize))
	vals := make([]float64, len(bySize))
	for i := range bySize {
		labels[i] = fmt.Sprintf("%2d", i)
		vals[i] = bySize[i]
	}
	fmt.Println(textplot.Histogram(
		fmt.Sprintf("Fetch width breakdown (mean %.2f)", run.Hist.Mean()), labels, vals, 50))

	endLabels := make([]string, stats.NumFetchEnds)
	endVals := make([]float64, stats.NumFetchEnds)
	byEnd := run.Hist.ByEnd()
	for e := stats.FetchEnd(0); e < stats.NumFetchEnds; e++ {
		endLabels[e] = e.String()
		endVals[e] = byEnd[e]
	}
	fmt.Println(textplot.Bars("Fetch termination conditions", endLabels, endVals, 50))

	cycLabels := make([]string, stats.NumCycleClasses)
	cycVals := make([]float64, stats.NumCycleClasses)
	for c := stats.CycleClass(0); c < stats.NumCycleClasses; c++ {
		cycLabels[c] = c.String()
		if run.Cycles > 0 {
			cycVals[c] = float64(run.Cycle[c]) / float64(run.Cycles)
		}
	}
	fmt.Println(textplot.Bars("Fetch cycle accounting (fraction of cycles)", cycLabels, cycVals, 50))

	if tc != nil {
		st := tc.Stats()
		fmt.Println(textplot.Table([]string{"Trace cache", "Value"}, [][]string{
			{"lookups", fmt.Sprintf("%d", st.Lookups)},
			{"hit rate", fmt.Sprintf("%.1f%%", 100*st.HitRate())},
			{"inserts", fmt.Sprintf("%d", st.Inserts)},
			{"evictions", fmt.Sprintf("%d", st.Evictions)},
			{"demotion invalidations", fmt.Sprintf("%d", st.Demotions)},
		}))
	}
	if fu != nil {
		st := fu.Stats()
		fmt.Println(textplot.Table([]string{"Fill unit", "Value"}, [][]string{
			{"segments built", fmt.Sprintf("%d", st.Segments)},
			{"avg segment length", fmt.Sprintf("%.2f", st.AvgSegmentLen())},
			{"promoted branch instances", fmt.Sprintf("%d", st.Promotions)},
			{"block splits (packing)", fmt.Sprintf("%d", st.Splits)},
		}))
	}
}
