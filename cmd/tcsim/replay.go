package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tracecache"
	"tracecache/internal/buildinfo"
	"tracecache/internal/check"
	"tracecache/internal/sim"
	"tracecache/internal/trace"
)

// attachRecorder opens the recording destination and taps the simulator:
// an existing directory receives the content-addressed file name, any
// other path is used verbatim. The returned finish closes the stream and
// reports where it went.
func attachRecorder(s *tracecache.Simulator, path string) (finish func() error, err error) {
	h := s.TraceHeader("tcsim -record")
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, h.FileName())
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := trace.NewWriter(f, h)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.AttachRecorder(w)
	return func() error {
		if err := w.Close(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tcsim: recorded %d instructions to %s\n", w.Count(), path)
		return nil
	}, nil
}

// runReplay replays a recorded stream through the front end only and
// reports the front-end statistics (cycle-domain metrics are undefined
// and rendered as zero; see DESIGN.md §9).
func runReplay(cfg tracecache.Config, prog *tracecache.Program, path string, asJSON bool, jPath string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
		os.Exit(1)
	}
	rd, err := trace.NewReaderBytes(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %s: %v\n", path, err)
		os.Exit(1)
	}
	rp, err := sim.NewReplayer(cfg, prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
		os.Exit(1)
	}
	started := time.Now()
	run, err := rp.Replay(rd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
		os.Exit(1)
	}
	if run.Meta != nil {
		run.Meta.Tool = "tcsim " + buildinfo.Version()
	}
	if jPath != "" {
		if err := appendJournal(jPath, run, time.Since(started)); err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
	}
	if asJSON {
		out, err := run.Summary().JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("replay of %s (%d recorded instructions)\n\n", path, rd.Count())
	reportParts(run, rp.TraceCache(), rp.FillUnit())
}

// runReplayVerify records the retired stream during a detailed run,
// replays it under the same configuration, and verifies the replayed
// statistics against the detailed ones under the committed fidelity
// envelope (check.CompareReplay). Violations exit non-zero; this is the
// CI smoke for the record/replay backend.
func runReplayVerify(cfg tracecache.Config, prog *tracecache.Program) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
		os.Exit(1)
	}
	s, err := tracecache.NewSimulator(cfg, prog)
	if err != nil {
		fail(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, s.TraceHeader("tcsim -replay-verify"))
	if err != nil {
		fail(err)
	}
	s.AttachRecorder(w)
	det := s.Run()
	if err := w.Close(); err != nil {
		fail(err)
	}
	rd, err := trace.NewReaderBytes(buf.Bytes())
	if err != nil {
		fail(err)
	}
	rp, err := sim.NewReplayer(cfg, prog)
	if err != nil {
		fail(err)
	}
	rep, err := rp.Replay(rd)
	if err != nil {
		fail(err)
	}

	dStats := check.ReplayStats{Run: det}
	rStats := check.ReplayStats{Run: rep}
	if tc := s.TraceCache(); tc != nil {
		st := tc.Stats()
		dStats.TCLookups, dStats.TCHits = st.Lookups, st.Hits
	}
	if tc := rp.TraceCache(); tc != nil {
		st := tc.Stats()
		rStats.TCLookups, rStats.TCHits = st.Lookups, st.Hits
	}
	fmt.Printf("replay-verify %s/%s: %d recorded instructions\n", det.Config, det.Benchmark, w.Count())
	fmt.Printf("  retired        detailed=%d replayed=%d\n", det.Retired, rep.Retired)
	fmt.Printf("  eff fetch rate detailed=%.4f replayed=%.4f\n", det.EffFetchRate(), rep.EffFetchRate())
	fmt.Printf("  mispredict     detailed=%.2f%% replayed=%.2f%%\n",
		100*det.CondMispredictRate(), 100*rep.CondMispredictRate())
	vs := check.CompareReplay(dStats, rStats, check.DefaultReplayTolerance())
	if len(vs) > 0 {
		fmt.Fprintf(os.Stderr, "tcsim: replay-verify FAILED (%d violations)\n", len(vs))
		for _, v := range vs {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("replay-verify passed: replayed statistics within the documented envelope")
}
