package main

import (
	"fmt"
	"os"
	"time"

	"tracecache"
	"tracecache/internal/buildinfo"
	"tracecache/internal/sampling"
	"tracecache/internal/stats"
	"tracecache/internal/textplot"
)

// runSampled executes the sampled mode end to end: schedule, audit,
// report (or JSON summary), optional journal record. The journal gets the
// pooled window counters with sampled provenance and the schedule in its
// metadata.
func runSampled(cfg tracecache.Config, prog *tracecache.Program, bench, progFile string, asJSON bool, jPath string) {
	s, err := tracecache.NewSimulator(cfg, prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
		os.Exit(1)
	}
	started := time.Now()
	res, err := sampling.Run(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
		os.Exit(1)
	}
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "tcsim: sampling audit FAILED (%d violations)\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  [%s] %s: %s\n", v.Layer, v.Rule, v.Detail)
		}
		os.Exit(1)
	}
	if chk := s.Checker(); chk != nil {
		if chk.Total() > 0 {
			fmt.Fprintf(os.Stderr, "tcsim: self-check FAILED\n%s\n", chk.Report())
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tcsim: self-check passed (%d committed instructions verified, 0 violations)\n", chk.Commits())
	}
	if m := res.Sampled.Meta; m != nil {
		m.Tool = "tcsim " + buildinfo.Version()
		if progFile == "" {
			if p, ok := tracecache.BenchmarkProfile(bench); ok {
				m.Seed = p.Seed
			}
		}
	}

	if jPath != "" {
		if err := appendJournal(jPath, res.Run, time.Since(started)); err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
	}

	if asJSON {
		out, err := res.Sampled.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	sampleReport(res)
}

// sampleReport renders the sampled aggregate: the schedule, the interval
// estimates, and the per-window samples.
func sampleReport(res *sampling.Result) {
	sm := res.Sampled
	fmt.Printf("benchmark %s, configuration %s (sampled)\n\n", sm.Benchmark, sm.Config)
	fmt.Printf("schedule: %d windows of %d insts (warmup %d) every %d insts, seed %d\n",
		len(sm.Windows), sm.WindowInsts, sm.WarmupInsts, sm.PeriodInsts, sm.Seed)
	fmt.Printf("budget: %d total insts, %d measured in detail (%.2f%%)\n\n",
		sm.TotalInsts, sm.MeasuredInsts, 100*float64(sm.MeasuredInsts)/float64(sm.TotalInsts))

	est := func(name string, e stats.Estimate, scale float64, unit string) []string {
		return []string{
			name,
			fmt.Sprintf("%.4f%s", scale*e.Mean, unit),
			fmt.Sprintf("±%.4f", scale*e.HalfWidth()),
			fmt.Sprintf("%.4f", scale*e.StdErr),
			fmt.Sprintf("%d", e.N),
		}
	}
	rows := [][]string{
		est("IPC", sm.IPC, 1, ""),
		est("effective fetch rate", sm.EffFetchRate, 1, ""),
		est("cond mispredict rate", sm.MispredictRate, 100, "%"),
	}
	if sm.TCHitRate.N > 0 {
		rows = append(rows, est("trace-cache hit rate", sm.TCHitRate, 100, "%"))
	}
	fmt.Println(textplot.Table([]string{"Metric", "Mean", "95% CI", "StdErr", "n"}, rows))

	fmt.Println()
	wrows := make([][]string, 0, len(sm.Windows))
	for _, w := range sm.Windows {
		wrows = append(wrows, []string{
			fmt.Sprintf("%d", w.Index),
			fmt.Sprintf("%d", w.StartInst),
			fmt.Sprintf("%d", w.Retired),
			fmt.Sprintf("%d", w.Cycles),
			fmt.Sprintf("%.3f", w.IPC),
			fmt.Sprintf("%.2f", w.EffFetchRate),
			fmt.Sprintf("%.2f%%", 100*w.MispredictRate),
			fmt.Sprintf("%.1f%%", 100*w.TCHitRate),
		})
	}
	fmt.Println(textplot.Table(
		[]string{"Window", "Start", "Retired", "Cycles", "IPC", "EffRate", "Mispred", "TC hit"},
		wrows))
}
