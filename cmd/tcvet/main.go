// Command tcvet is the repository's project-specific static analyzer. It
// machine-checks the contracts the simulator's correctness story rests
// on: determinism of simulation results at any sweep width, the hot-path
// allocation diet, nil-receiver safety of the instrumentation handles,
// no panics behind input-facing exported APIs, and metric hygiene.
//
// Usage:
//
//	tcvet ./...            # analyze, print file:line:col diagnostics
//	tcvet -json ./...      # machine-readable output
//	tcvet -version
//
// Suppress one diagnostic with a mandatory reason:
//
//	//tcvet:ignore <analyzer> <reason>
//
// placed on the offending line, the line above it, or the doc comment of
// the enclosing declaration. Exit status: 0 clean, 1 diagnostics (or a
// degraded load), 2 usage or loader failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"tracecache/internal/analysis"
	"tracecache/internal/buildinfo"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as JSON")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tcvet [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("tcvet"))
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcvet: %v\n", err)
		os.Exit(2)
	}

	res, err := analysis.Run(dir, patterns, analysis.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcvet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := res.RenderJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tcvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		res.Render(os.Stdout)
	}
	fmt.Fprintln(os.Stderr, res.Summary())
	os.Exit(res.ExitCode())
}
