package tracecache_test

import (
	"fmt"
	"log"

	"tracecache"
)

// ExampleSimulate runs one benchmark under the paper's recommended
// machine and reports the headline statistics.
func ExampleSimulate() {
	prog, err := tracecache.BenchmarkProgram("compress")
	if err != nil {
		log.Fatal(err)
	}
	cfg := tracecache.BestConfig() // promotion(t=64) + cost-regulated packing
	cfg.MaxInsts = 50_000
	run, err := tracecache.Simulate(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retired %d instructions on %s\n", run.Retired, run.Config)
	// Output: retired 50013 instructions on promo-pack-costreg
}

// ExampleAnalyzeProgram inspects a synthetic workload's dynamic stream.
func ExampleAnalyzeProgram() {
	prog, err := tracecache.BenchmarkProgram("vortex")
	if err != nil {
		log.Fatal(err)
	}
	a := tracecache.AnalyzeProgram(prog, 100_000)
	fmt.Printf("analysed %d instructions, %d fetch blocks\n", a.Insts, a.Blocks)
	// Output: analysed 100000 instructions, 20697 fetch blocks
}

// ExampleConfigByName looks up one of the paper's named machines.
func ExampleConfigByName() {
	cfg, ok := tracecache.ConfigByName("promo-t64")
	fmt.Println(ok, cfg.Fill.PromoteThreshold)
	// Output: true 64
}
