// Customworkload defines a synthetic benchmark profile from scratch — a
// tight-loop kernel with extremely biased branches — and measures how much
// branch promotion and trace packing help it, through the public API.
package main

import (
	"fmt"
	"log"

	"tracecache"
)

func main() {
	profile := tracecache.Profile{
		Name:           "kernel",
		Seed:           42,
		Funcs:          6,
		StepsPerFunc:   [2]int{4, 8},
		FillerSize:     [2]int{1, 4},
		Mix:            tracecache.BranchMix{Biased: 0.85, SemiBiased: 0.10, Patterned: 0.02},
		BiasedProb:     0.984,
		SemiBiasedProb: 0.938,
		RandomProb:     [2]float64{0.5, 0.75},
		PatternPeriods: []int{8},
		LoopProb:       0.5,
		TripCount:      [2]int{16, 64},
		CallProb:       0.08,
		SwitchProb:     0.01,
		SwitchWays:     4,
		TrapProb:       0,
		StreamWords:    1 << 12,
		WorkWords:      1 << 12,
		OuterTrips:     1 << 40,
	}
	prog, err := profile.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d instructions\n\n", profile.Name, len(prog.Code))

	for _, cfg := range []tracecache.Config{
		tracecache.BaselineConfig(),
		tracecache.PromotionConfig(64),
		tracecache.PackingConfig(),
		tracecache.PromotionPackingConfig(tracecache.PackCostRegulated, 64),
	} {
		cfg.WarmupInsts = 150_000
		cfg.MaxInsts = 300_000
		run, err := tracecache.Simulate(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s eff fetch %5.2f  IPC %.2f  promoted %6d  faults %d\n",
			cfg.Name, run.EffFetchRate(), run.IPC(), run.PromotedExecuted, run.PromotedFaults)
	}
}
