// Fetchcompare contrasts the three fetch mechanisms of the paper — the
// instruction-cache reference machine, the baseline trace cache, and the
// trace cache with branch promotion and cost-regulated trace packing —
// across several benchmarks, reproducing the shape of Figures 10 and 11.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tracecache"
)

func main() {
	benches := flag.String("benches", "compress,gcc,m88ksim,vortex", "comma-separated benchmarks")
	insts := flag.Uint64("insts", 300_000, "measured instructions")
	flag.Parse()

	configs := []tracecache.Config{
		tracecache.ICacheConfig(),
		tracecache.BaselineConfig(),
		tracecache.BestConfig(),
	}

	fmt.Printf("%-12s %-20s %8s %8s %10s\n", "benchmark", "config", "IPC", "eff", "mispredict")
	for _, bench := range strings.Split(*benches, ",") {
		bench = strings.TrimSpace(bench)
		prog, err := tracecache.BenchmarkProgram(bench)
		if err != nil {
			log.Fatal(err)
		}
		var baseIPC float64
		for _, cfg := range configs {
			cfg.WarmupInsts = *insts
			cfg.MaxInsts = *insts
			run, err := tracecache.Simulate(cfg, prog)
			if err != nil {
				log.Fatal(err)
			}
			note := ""
			if cfg.Name == "baseline" {
				baseIPC = run.IPC()
			} else if baseIPC > 0 {
				note = fmt.Sprintf("  (%+.0f%% vs baseline)", 100*(run.IPC()-baseIPC)/baseIPC)
			}
			fmt.Printf("%-12s %-20s %8.2f %8.2f %9.1f%%%s\n",
				bench, cfg.Name, run.IPC(), run.EffFetchRate(),
				100*run.CondMispredictRate(), note)
		}
	}
}
