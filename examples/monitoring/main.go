// Monitoring: run an instrumented, journaled parallel sweep while polling
// its own live monitoring endpoint, then rebuild the sweep summary from
// the journal alone. Everything is self-terminating: the HTTP server
// binds an ephemeral port and the program exits when the sweep and its
// final poll complete.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"tracecache"
)

func main() {
	dir, err := os.MkdirTemp("", "tracecache-monitoring")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	jPath := filepath.Join(dir, "runs.jsonl")

	// 1. An instrumented runner: fleet metrics, a live progress tracker,
	// and a persistent journal, all riding the runner's lifecycle hooks.
	workers := runtime.GOMAXPROCS(0)
	r := tracecache.NewRunner(50_000, 150_000)
	r.Workers = workers
	reg := tracecache.NewMetricsRegistry()
	m := tracecache.InstrumentRunner(reg)
	r.Metrics = m
	progress := tracecache.NewSweepProgress(workers, m.Sim.Insts.Value)
	jw, err := tracecache.OpenJournal(jPath)
	if err != nil {
		log.Fatal(err)
	}
	r.OnRun = tracecache.RunListeners(
		tracecache.RunnerJournalListener(jw, func(err error) { log.Print(err) }),
		progress.Listener(),
	)

	// 2. The monitoring surface on an ephemeral port.
	srv := &tracecache.MonitorServer{Registry: reg, Progress: progress}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("monitoring on http://%s\n\n", addr)

	// 3. Sweep two configurations over every benchmark in the background.
	done := make(chan error, 1)
	go func() {
		for _, cfg := range []tracecache.Config{
			tracecache.BaselineConfig(), tracecache.BestConfig(),
		} {
			if _, err := r.SweepE(cfg); err != nil {
				done <- err
				return
			}
		}
		progress.Finish()
		done <- nil
	}()

	// 4. Poll /progress like an external dashboard would.
	for {
		var snap struct {
			Total, Done    int
			Complete       bool
			InstsCommitted uint64
			InstsPerSec    float64
			EtaSeconds     float64
		}
		resp, err := http.Get("http://" + addr + "/progress")
		if err != nil {
			log.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("progress: %d/%d points, %d insts committed, %.0f insts/s\n",
			snap.Done, snap.Total, snap.InstsCommitted, snap.InstsPerSec)
		if snap.Complete {
			break
		}
		time.Sleep(300 * time.Millisecond)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		log.Fatal(err)
	}

	// 5. The journal alone reproduces the sweep summary.
	recs, truncated, err := tracecache.ReadJournal(jPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", tracecache.JournalReport(recs, truncated))
}
