// Observability: run one benchmark with the full observability layer
// attached — a structured event bus with a custom sink, windowed
// time-series collection, and a Chrome/Perfetto trace export — and show
// what each surface captures.
package main

import (
	"fmt"
	"log"
	"os"

	"tracecache"
	"tracecache/internal/obs"
)

func main() {
	prog, err := tracecache.BenchmarkProgram("go")
	if err != nil {
		log.Fatal(err)
	}
	cfg := tracecache.PromotionConfig(64)
	cfg.WarmupInsts = 100_000
	cfg.MaxInsts = 300_000

	s, err := tracecache.NewSimulator(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Event bus with a custom sink: count promotions and demotions as
	// they happen. The ChromeTrace sink rides the same bus.
	var promotions, demotions uint64
	chrome := tracecache.NewChromeTrace(0)
	bus := tracecache.NewEventBus(4096)
	bus.Attach(chrome)
	bus.Attach(obs.FuncSink(func(ev tracecache.Event) {
		switch ev.Kind {
		case obs.KindPromote:
			promotions++
		case obs.KindDemote:
			demotions++
		}
	}))
	s.AttachObserver(bus)

	// 2. Windowed time series: one telemetry snapshot every 5000 cycles.
	coll := tracecache.NewIntervalCollector(5_000)
	s.SetIntervalCollector(coll)

	run := s.Run()
	fmt.Printf("%s/%s: IPC %.2f over %d cycles; %d bus events (%d promote, %d demote)\n\n",
		run.Benchmark, run.Config, run.IPC(), run.Cycles,
		bus.Count(), promotions, demotions)

	// The time series reconstructs the run exactly.
	ts := coll.Series()
	fmt.Printf("%-10s %8s %8s %10s %10s\n", "interval", "ipc", "tc-hit%", "promo-cov", "preds/cyc")
	for _, iv := range ts.Intervals {
		fmt.Printf("%-10d %8.3f %8.1f %10.2f %10.2f\n",
			iv.Index, iv.IPC, 100*iv.TCHitRate, iv.PromotionCoverage, iv.PredsPerCycle)
	}
	fmt.Printf("\naggregate IPC %.4f vs run IPC %.4f\n", ts.AggregateIPC(), run.IPC())

	// 3. Perfetto export: open observability.trace.json at ui.perfetto.dev.
	f, err := os.Create("observability.trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := chrome.WriteJSON(f, run.Meta); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote observability.trace.json (%d trace events, %d dropped)\n",
		chrome.Len(), chrome.Dropped())
}
