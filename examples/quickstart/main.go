// Quickstart: simulate one benchmark under the paper's baseline trace
// cache and its recommended promotion+packing machine, and print the
// headline numbers.
package main

import (
	"fmt"
	"log"

	"tracecache"
)

func main() {
	prog, err := tracecache.BenchmarkProgram("gcc")
	if err != nil {
		log.Fatal(err)
	}

	for _, cfg := range []tracecache.Config{
		tracecache.BaselineConfig(),
		tracecache.BestConfig(),
	} {
		cfg.WarmupInsts = 200_000
		cfg.MaxInsts = 400_000
		run, err := tracecache.Simulate(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s IPC %.2f  effective fetch rate %5.2f  mispredict %.1f%%  promoted faults %d\n",
			cfg.Name, run.IPC(), run.EffFetchRate(),
			100*run.CondMispredictRate(), run.PromotedFaults)
	}
}
