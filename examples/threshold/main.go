// Threshold sweeps the branch-promotion threshold on one benchmark,
// showing the trade the paper's Table 2 and Figure 7 describe: a low
// threshold promotes more branches (higher fetch rate) but promotes
// prematurely (more faults); a high threshold promotes conservatively.
// gnuplot is the paper's example of premature promotion.
package main

import (
	"flag"
	"fmt"
	"log"

	"tracecache"
)

func main() {
	bench := flag.String("bench", "gnuplot", "benchmark name")
	insts := flag.Uint64("insts", 300_000, "measured instructions")
	flag.Parse()

	prog, err := tracecache.BenchmarkProgram(*bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s\n\n", *bench)
	fmt.Printf("%-12s %8s %10s %10s %10s %12s\n",
		"config", "eff", "IPC", "promoted", "faults", "mispredict")

	base := tracecache.BaselineConfig()
	base.WarmupInsts, base.MaxInsts = *insts, *insts
	run, err := tracecache.Simulate(base, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %8.2f %10.2f %10d %10d %11.2f%%\n",
		"baseline", run.EffFetchRate(), run.IPC(), run.PromotedExecuted,
		run.PromotedFaults, 100*run.CondMispredictRate())

	for _, t := range []uint32{8, 16, 32, 64, 128, 256} {
		cfg := tracecache.PromotionConfig(t)
		cfg.WarmupInsts, cfg.MaxInsts = *insts, *insts
		run, err := tracecache.Simulate(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("threshold=%-3d %8.2f %10.2f %10d %10d %11.2f%%\n",
			t, run.EffFetchRate(), run.IPC(), run.PromotedExecuted,
			run.PromotedFaults, 100*run.CondMispredictRate())
	}
}
