module tracecache

go 1.22
