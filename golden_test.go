package tracecache_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tracecache"
)

var updateGolden = flag.Bool("update", false, "rewrite golden summary fixtures")

// goldenRuns pins the full Summary of the paper's two headline machines on
// one benchmark at a fixed small budget. Any change to a simulated
// statistic — fetch, prediction, promotion, packing, execution timing —
// shows up as a diff against these fixtures; provenance metadata (wall
// time, hostname) is stripped because it legitimately varies.
var goldenRuns = []struct {
	fixture string
	config  string
	bench   string
}{
	{"baseline_gcc.json", "baseline", "gcc"},
	{"promo-pack-costreg_gcc.json", "promo-pack-costreg", "gcc"},
}

func TestGoldenSummaries(t *testing.T) {
	for _, g := range goldenRuns {
		t.Run(g.config, func(t *testing.T) {
			cfg, ok := tracecache.ConfigByName(g.config)
			if !ok {
				t.Fatalf("unknown config %q", g.config)
			}
			cfg.WarmupInsts = 40_000
			cfg.MaxInsts = 80_000
			prog, err := tracecache.BenchmarkProgram(g.bench)
			if err != nil {
				t.Fatal(err)
			}
			run, err := tracecache.Simulate(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			run.Meta = nil
			got, err := run.Summary().JSON()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", g.fixture)
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run 'go test -run TestGoldenSummaries -update' to create)", err)
			}
			if string(got) != string(want) {
				t.Errorf("summary differs from %s:\n got: %s\nwant: %s\n(if the change is intended, regenerate with -update)",
					path, got, want)
			}
		})
	}
}
