// Package analysis implements tcvet, the repository's project-specific
// static analyzer. It enforces, at compile time, the contracts the
// simulator otherwise relies on convention and runtime checks for:
//
//   - determinism: no map-iteration order or wall-clock/global-rand input
//     may reach simulation results (the guarantee behind byte-identical
//     output at any tcbench -j width);
//   - hotalloc: functions annotated //tc:hotpath must not allocate per
//     call (the guarantee behind the PR 3 allocation diet);
//   - nilsafe: types annotated //tc:nilsafe keep their methods safe on a
//     nil receiver and are never boxed into interfaces;
//   - nopanic: no panic is reachable from the exported entry points of
//     the input-facing packages;
//   - metrichygiene: metric names are Prometheus-legal, registered once,
//     and histogram buckets ascend.
//
// The driver is stdlib-only: packages are discovered with `go list
// -export -deps -json`, parsed with go/parser and type-checked with
// go/types against the compiler's export data, with no dependency on
// golang.org/x/tools. Diagnostics can be suppressed one line or one
// declaration at a time with
//
//	//tcvet:ignore <analyzer> <reason>
//
// where the reason is mandatory and recorded.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one reported contract violation.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named pass over a package. Analyzers are stateful for
// the duration of a Run (metrichygiene accumulates registrations across
// packages), so a fresh set must be built per run with Analyzers.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects one package.
	Run func(*Pass)
	// Finish, if non-nil, is called once after every package has been
	// inspected, for whole-run checks.
	Finish func(report func(Diagnostic))
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Facts    *Facts
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Facts is the whole-run context shared by every pass: project-wide
// annotations collected from syntax before any analyzer runs.
type Facts struct {
	// NilSafe holds the fully-qualified names ("importpath.TypeName") of
	// types annotated //tc:nilsafe.
	NilSafe map[string]bool
}

// collectFacts scans the parsed packages for project annotations.
func collectFacts(pkgs []*Package) *Facts {
	f := &Facts{NilSafe: make(map[string]bool)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasDirective(gd.Doc, dirNilSafe) || hasDirective(ts.Doc, dirNilSafe) || hasDirective(ts.Comment, dirNilSafe) {
						f.NilSafe[pkg.ImportPath+"."+ts.Name.Name] = true
					}
				}
			}
		}
	}
	return f
}

// Project annotation directives.
const (
	dirNilSafe = "//tc:nilsafe"
	dirHotPath = "//tc:hotpath"
	dirIgnore  = "//tcvet:ignore"
)

// hasDirective reports whether the comment group contains the directive
// as a whole comment line (optionally followed by explanatory text).
func hasDirective(cg *ast.CommentGroup, dir string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == dir || strings.HasPrefix(c.Text, dir+" ") {
			return true
		}
	}
	return false
}

// ignoreRange is one resolved //tcvet:ignore directive: it suppresses
// diagnostics of one analyzer on a file line range.
type ignoreRange struct {
	file     string
	analyzer string
	from, to int // inclusive line range
}

// collectIgnores resolves every //tcvet:ignore directive in the package.
// Scoping: a directive in the doc comment of a top-level declaration
// covers the whole declaration; a trailing comment covers its own line; a
// standalone comment line covers the line directly below it. Malformed
// directives (unknown analyzer, missing reason) are themselves reported
// as "tcvet" diagnostics.
func collectIgnores(pkg *Package, known map[string]bool, report func(Diagnostic)) []ignoreRange {
	var out []ignoreRange
	for _, file := range pkg.Files {
		fname := pkg.Fset.Position(file.Pos()).Filename
		src := pkg.Sources[fname]
		// Map each top-level declaration's doc comment to its span.
		var docSpans []docSpan
		for _, decl := range file.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			docSpans = append(docSpans, docSpan{
				docPos: doc.Pos(), docEnd: doc.End(),
				from: pkg.Fset.Position(decl.Pos()).Line,
				to:   pkg.Fset.Position(decl.End()).Line,
			})
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if c.Text != dirIgnore && !strings.HasPrefix(c.Text, dirIgnore+" ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, dirIgnore))
				if len(fields) == 0 || !known[fields[0]] {
					report(Diagnostic{Analyzer: "tcvet", File: fname, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("malformed ignore directive: want %q with a known analyzer", dirIgnore+" <analyzer> <reason>")})
					continue
				}
				if len(fields) < 2 {
					report(Diagnostic{Analyzer: "tcvet", File: fname, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("ignore directive for %q needs a reason", fields[0])})
					continue
				}
				ir := ignoreRange{file: fname, analyzer: fields[0], from: pos.Line, to: pos.Line}
				switch s := inDocSpan(docSpans, c.Pos()); {
				case s != nil:
					ir.from, ir.to = s.from, s.to
				case leadingCode(src, pos):
					// Trailing comment: covers its own line.
				default:
					// Standalone comment line: covers the next line.
					ir.from, ir.to = pos.Line+1, pos.Line+1
				}
				out = append(out, ir)
			}
		}
	}
	return out
}

// docSpan is the line span of one top-level declaration plus the
// position range of its doc comment.
type docSpan struct {
	docPos, docEnd token.Pos
	from, to       int
}

// inDocSpan returns the declaration span whose doc comment contains pos.
func inDocSpan(spans []docSpan, pos token.Pos) *docSpan {
	for i := range spans {
		if pos >= spans[i].docPos && pos < spans[i].docEnd {
			return &spans[i]
		}
	}
	return nil
}

// leadingCode reports whether the source line holding pos has non-space
// content before the column where the comment starts (i.e. the comment
// trails code).
func leadingCode(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	// Walk back from the comment's byte offset to the line start.
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return false
		case ' ', '\t', '\r':
		default:
			return true
		}
	}
	return false
}

// Result is the outcome of one tcvet run.
type Result struct {
	// Packages is the number of packages analyzed.
	Packages int `json:"packages"`
	// Diagnostics are the surviving (unsuppressed) findings, sorted by
	// file, line, column, analyzer, message.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed counts diagnostics dropped by ignore directives.
	Suppressed int `json:"suppressed"`
	// Counts maps analyzer name to surviving diagnostic count (zero
	// entries included, so the summary always lists every analyzer).
	Counts map[string]int `json:"counts"`
	// Duration is the analysis wall time; excluded from JSON so -json
	// output is byte-stable across runs.
	Duration time.Duration `json:"-"`
}

// ExitCode is the process exit status the result calls for: 1 when any
// diagnostic survived, 0 otherwise.
func (r *Result) ExitCode() int {
	if len(r.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// Render writes the diagnostics one per line in file:line:col form.
func (r *Result) Render(w io.Writer) {
	for _, d := range r.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
}

// RenderJSON writes the result as deterministic, indented JSON.
func (r *Result) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders the one-line run report for stderr: per-analyzer
// counts, suppression count and wall time.
func (r *Result) Summary() string {
	names := make([]string, 0, len(r.Counts))
	for n := range r.Counts {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s %d", n, r.Counts[n]))
	}
	return fmt.Sprintf("tcvet: %d packages, %d diagnostics (%s; %d suppressed) in %s",
		r.Packages, len(r.Diagnostics), strings.Join(parts, ", "), r.Suppressed,
		r.Duration.Round(time.Millisecond))
}

// Analyze runs the analyzers over the loaded packages, applies ignore
// directives, and returns the sorted result. File paths in diagnostics
// are made relative to dir when possible.
func Analyze(dir string, pkgs []*Package, analyzers []*Analyzer) *Result {
	start := time.Now()
	known := make(map[string]bool, len(analyzers))
	res := &Result{Counts: make(map[string]int, len(analyzers))}
	for _, a := range analyzers {
		known[a.Name] = true
		res.Counts[a.Name] = 0
	}

	var raw []Diagnostic
	report := func(d Diagnostic) { raw = append(raw, d) }

	var ignores []ignoreRange
	for _, pkg := range pkgs {
		ignores = append(ignores, collectIgnores(pkg, known, report)...)
		raw = append(raw, pkg.LoadDiags...)
	}
	facts := collectFacts(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Facts: facts, report: report})
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(report)
		}
	}

	for _, d := range raw {
		if suppressed(ignores, d) {
			res.Suppressed++
			continue
		}
		if rel, err := filepath.Rel(dir, d.File); err == nil && !strings.HasPrefix(rel, "..") {
			d.File = filepath.ToSlash(rel)
		}
		res.Diagnostics = append(res.Diagnostics, d)
		res.Counts[d.Analyzer]++
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	res.Packages = len(pkgs)
	res.Duration = time.Since(start)
	return res
}

// suppressed reports whether an ignore directive covers the diagnostic.
func suppressed(ignores []ignoreRange, d Diagnostic) bool {
	for _, ir := range ignores {
		if ir.analyzer == d.Analyzer && ir.file == d.File && ir.from <= d.Line && d.Line <= ir.to {
			return true
		}
	}
	return false
}
