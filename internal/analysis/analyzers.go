package analysis

// Analyzers builds a fresh instance of every tcvet analyzer. Instances
// carry per-run state (metrichygiene accumulates registration sites), so
// never share a set between runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		HotAlloc(),
		NilSafe(),
		NoPanic(),
		MetricHygiene(),
	}
}
