package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// resultAffectingPkgs are the internal packages whose behavior reaches
// simulation results: anything nondeterministic here breaks the
// byte-identical-output-at-any--j guarantee.
var resultAffectingPkgs = map[string]bool{
	"sim": true, "engine": true, "core": true, "fetch": true, "bpred": true,
	"cache": true, "exec": true, "experiments": true, "stats": true, "workload": true,
	"trace": true, "sampling": true, "resultstore": true,
}

// Determinism flags nondeterminism sources in result-affecting packages:
// map iteration whose body writes outside the loop (or calls out) with no
// sort after it, wall-clock reads (time.Now/Since), and uses of math/rand
// package-level functions, which draw from the shared global source.
func Determinism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "map-iteration order, wall clock and global rand must not reach simulation results",
	}
	a.Run = func(pass *Pass) {
		if !internalPkg(pass.Pkg.ImportPath, resultAffectingPkgs) {
			return
		}
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					return true
				}
				checkFuncDeterminism(pass, fd)
				return true
			})
			// Wall-clock and global-rand checks apply everywhere in the
			// file, including package-level variable initializers.
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				checkClockAndRand(pass, info, sel)
				return true
			})
		}
	}
	return a
}

// checkFuncDeterminism flags map ranges inside one function. A range is
// exempt when the function lexically contains a sort call after the loop
// ends: the collect-keys-then-sort idiom.
func checkFuncDeterminism(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var sortCalls []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "sort" {
			sortCalls = append(sortCalls, call.Pos())
		} else if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			// Degraded fallback: a selector on an identifier named sort.
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sort" && info.Uses[sel.Sel] == nil {
				sortCalls = append(sortCalls, call.Pos())
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true // degraded: cannot tell maps from slices
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if !rangeBodyEmits(info, rs) {
			return true
		}
		for _, p := range sortCalls {
			if p >= rs.End() {
				return true // collected then sorted: deterministic
			}
		}
		pass.Reportf(rs.Pos(), "map iteration writes to state outside the loop with no sort after it; iterate sorted keys (order reaches simulation results)")
		return true
	})
}

// rangeBodyEmits reports whether the loop body lets iteration order
// escape: it writes to a variable declared outside the range statement,
// calls a non-builtin function, or sends/returns.
func rangeBodyEmits(info *types.Info, rs *ast.RangeStmt) bool {
	local := func(id *ast.Ident) bool {
		if id == nil {
			return false
		}
		if id.Name == "_" {
			return true
		}
		obj := info.ObjectOf(id)
		return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
	}
	emits := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if emits {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n, "len"), isBuiltin(info, n, "cap"),
				isBuiltin(info, n, "min"), isBuiltin(info, n, "max"):
			default:
				emits = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !local(baseIdent(lhs)) {
					emits = true
				}
			}
		case *ast.IncDecStmt:
			if !local(baseIdent(n.X)) {
				emits = true
			}
		case *ast.SendStmt, *ast.ReturnStmt, *ast.GoStmt, *ast.DeferStmt:
			emits = true
		}
		return !emits
	})
	return emits
}

// checkClockAndRand flags time.Now/time.Since and math/rand global-source
// functions.
func checkClockAndRand(pass *Pass, info *types.Info, sel *ast.SelectorExpr) {
	obj := info.Uses[sel.Sel]
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		// Degraded fallback: match by package identifier name.
		if obj == nil {
			if id, ok := sel.X.(*ast.Ident); ok {
				if id.Name == "time" && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since") {
					pass.Reportf(sel.Pos(), "wall-clock read (time.%s) in a result-affecting package", sel.Sel.Name)
				}
			}
		}
		return
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn on a seeded source) are fine
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			pass.Reportf(sel.Pos(), "wall-clock read (time.%s) in a result-affecting package", f.Name())
		}
	case "math/rand", "math/rand/v2":
		switch f.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			// Constructors produce a locally-seeded source: deterministic.
		default:
			pass.Reportf(sel.Pos(), "math/rand global source (rand.%s) in a result-affecting package; use a seeded *rand.Rand", f.Name())
		}
	}
}
