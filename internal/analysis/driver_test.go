package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDegradedTypeError: a package with a type error must not abort the
// run — it degrades to syntax-only analysis, reports the type error as a
// "load" diagnostic, still runs the syntax-level checks, and makes the
// run exit nonzero.
func TestDegradedTypeError(t *testing.T) {
	pkg, res := analyzeFixture(t, "broken/sim")
	if !pkg.Degraded {
		t.Fatal("type-error fixture not marked Degraded")
	}
	if res.ExitCode() != 1 {
		t.Fatalf("ExitCode = %d, want 1", res.ExitCode())
	}
	var haveLoad, haveDeterminism bool
	for _, d := range res.Diagnostics {
		switch d.Analyzer {
		case "load":
			haveLoad = true
			if !strings.Contains(d.Message, "degraded to syntax-only") {
				t.Errorf("load diagnostic does not explain degradation: %q", d.Message)
			}
		case "determinism":
			haveDeterminism = true
			if !strings.Contains(d.Message, "time.Now") {
				t.Errorf("unexpected determinism diagnostic: %q", d.Message)
			}
		}
	}
	if !haveLoad {
		t.Error("no load diagnostic for the type error")
	}
	if !haveDeterminism {
		t.Error("syntax-level determinism check did not run on the degraded package")
	}
}

// TestDegradedParseError: a file that does not parse yields one load
// diagnostic per syntax error and the package still carries the files
// that did parse.
func TestDegradedParseError(t *testing.T) {
	dir := t.TempDir()
	good := "package broken\n\nfunc Fine() int { return 1 }\n"
	bad := "package broken\n\nfunc Unclosed( {\n"
	if err := os.WriteFile(filepath.Join(dir, "good.go"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	l := fixtureLoader(t)
	pkg := l.Check("example/broken", dir, []string{"bad.go", "good.go"})
	if !pkg.Degraded {
		t.Fatal("parse-error package not marked Degraded")
	}
	var parseDiags int
	for _, d := range pkg.LoadDiags {
		if strings.Contains(d.Message, "parsing:") {
			parseDiags++
			if d.Line == 0 || !strings.HasSuffix(d.File, "bad.go") {
				t.Errorf("parse diagnostic lacks position: %+v", d)
			}
		}
	}
	if parseDiags == 0 {
		t.Error("no parse diagnostics for the syntax error")
	}
	if len(pkg.Files) == 0 {
		t.Error("cleanly-parsing file was dropped from the degraded package")
	}
}

// TestIgnoreScoping pins the three directive scopes: a doc-comment
// directive covers its whole declaration, a trailing directive covers
// its own line, a standalone directive covers the next line.
func TestIgnoreScoping(t *testing.T) {
	known := map[string]bool{"determinism": true, "hotalloc": true}
	report := func(d Diagnostic) { t.Errorf("unexpected directive diagnostic: %s", d) }

	t.Run("declaration", func(t *testing.T) {
		pkg := loadFixture(t, "hotalloc/hot")
		irs := collectIgnores(pkg, known, report)
		if len(irs) != 1 {
			t.Fatalf("got %d ignore ranges, want 1", len(irs))
		}
		ir := irs[0]
		if ir.analyzer != "hotalloc" {
			t.Errorf("analyzer = %q, want hotalloc", ir.analyzer)
		}
		// The doc-comment directive on Boundary must span the whole
		// declaration (several lines), not just the directive line.
		if ir.to-ir.from < 2 {
			t.Errorf("declaration scope covers lines %d-%d, want the full Boundary decl", ir.from, ir.to)
		}
	})

	t.Run("line", func(t *testing.T) {
		pkg := loadFixture(t, "determinism/sim")
		irs := collectIgnores(pkg, known, report)
		if len(irs) != 2 {
			t.Fatalf("got %d ignore ranges, want 2", len(irs))
		}
		for _, ir := range irs {
			if ir.from != ir.to {
				t.Errorf("line-scope directive covers lines %d-%d, want a single line", ir.from, ir.to)
			}
		}
		// The trailing directive suppresses its own line; the standalone
		// one suppresses the line below, so the two ranges must differ in
		// how they relate to the directive text itself. Pin via content:
		src := pkg.Sources[pkg.Fset.Position(pkg.Files[0].Pos()).Filename]
		lines := strings.Split(string(src), "\n")
		for _, ir := range irs {
			line := lines[ir.from-1]
			trailing := strings.Contains(line, dirIgnore)
			if trailing && !strings.Contains(line, "time.Now") {
				t.Errorf("trailing directive suppresses line %d (%q), want the time.Now line", ir.from, line)
			}
			if !trailing && !strings.Contains(line, "range") {
				t.Errorf("standalone directive suppresses line %d (%q), want the range line below it", ir.from, line)
			}
		}
	})

	t.Run("malformed", func(t *testing.T) {
		dir := t.TempDir()
		src := `package scoped

// UnknownAnalyzer has a directive naming no analyzer.
func UnknownAnalyzer() {
	_ = 1 //tcvet:ignore nosuchanalyzer because
}

// MissingReason has a directive with no reason.
func MissingReason() {
	_ = 1 //tcvet:ignore determinism
}
`
		if err := os.WriteFile(filepath.Join(dir, "scoped.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		l := fixtureLoader(t)
		pkg := l.Check("example/scoped", dir, []string{"scoped.go"})
		var got []Diagnostic
		irs := collectIgnores(pkg, known, func(d Diagnostic) { got = append(got, d) })
		if len(irs) != 0 {
			t.Errorf("malformed directives produced %d ignore ranges, want 0", len(irs))
		}
		if len(got) != 2 {
			t.Fatalf("got %d directive diagnostics, want 2: %v", len(got), got)
		}
		if !strings.Contains(got[0].Message, "known analyzer") {
			t.Errorf("unknown-analyzer message = %q", got[0].Message)
		}
		if !strings.Contains(got[1].Message, "needs a reason") {
			t.Errorf("missing-reason message = %q", got[1].Message)
		}
	})
}

// TestJSONRoundTrip: -json output decodes back to the same result.
func TestJSONRoundTrip(t *testing.T) {
	_, res := analyzeFixture(t, "metrichygiene/fleet")
	var buf bytes.Buffer
	if err := res.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decoding -json output: %v", err)
	}
	if back.Packages != res.Packages || back.Suppressed != res.Suppressed {
		t.Errorf("round trip changed counts: %+v vs %+v", back, res)
	}
	if len(back.Diagnostics) != len(res.Diagnostics) {
		t.Fatalf("round trip changed diagnostic count: %d vs %d", len(back.Diagnostics), len(res.Diagnostics))
	}
	for i := range back.Diagnostics {
		if back.Diagnostics[i] != res.Diagnostics[i] {
			t.Errorf("diagnostic %d changed in round trip:\n got %+v\nwant %+v", i, back.Diagnostics[i], res.Diagnostics[i])
		}
	}
	for name, n := range res.Counts {
		if back.Counts[name] != n {
			t.Errorf("count %q changed in round trip: %d vs %d", name, back.Counts[name], n)
		}
	}
}

// TestByteStableOutput: two fully independent load+analyze+render passes
// produce byte-identical text and JSON output (modulo Duration, which is
// excluded from JSON for exactly this reason).
func TestByteStableOutput(t *testing.T) {
	root := repoRoot(t)
	render := func() (string, string) {
		l, _, err := NewLoader(root, "./...")
		if err != nil {
			t.Fatalf("fresh loader: %v", err)
		}
		dir, err := filepath.Abs(filepath.Join("testdata", "src", "metrichygiene", "fleet"))
		if err != nil {
			t.Fatal(err)
		}
		pkg := l.Check("tracecache/internal/analysis/testdata/src/metrichygiene/fleet", dir, []string{"fleet.go"})
		res := Analyze(root, []*Package{pkg}, Analyzers())
		var text, js bytes.Buffer
		res.Render(&text)
		if err := res.RenderJSON(&js); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 {
		t.Errorf("text output differs across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Errorf("JSON output differs across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", j1, j2)
	}
	if t1 == "" {
		t.Error("fixture produced no output to compare")
	}
}

// TestSummaryShape: the one-line stderr summary names every analyzer
// (zero counts included) and the suppression count.
func TestSummaryShape(t *testing.T) {
	_, res := analyzeFixture(t, "nopanic/config")
	sum := res.Summary()
	for _, a := range Analyzers() {
		if !strings.Contains(sum, a.Name+" ") {
			t.Errorf("summary %q omits analyzer %s", sum, a.Name)
		}
	}
	if !strings.Contains(sum, "suppressed") || !strings.Contains(sum, "packages") {
		t.Errorf("summary %q lacks package/suppression counts", sum)
	}
}
