package analysis

import (
	"bytes"
	"flag"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// repoRoot is the module root, two levels above this package.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatalf("resolving repo root: %v", err)
	}
	return root
}

// The loader shells out to `go list -export ./...`, so tests share one.
var (
	loaderOnce sync.Once
	sharedL    *Loader
	sharedErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			sharedErr = err
			return
		}
		sharedL, _, sharedErr = NewLoader(root, "./...")
	})
	if sharedErr != nil {
		t.Fatalf("building fixture loader: %v", sharedErr)
	}
	return sharedL
}

// loadFixture type-checks one testdata package (rel is the path below
// testdata/src, e.g. "determinism/sim"). Fixture packages are invisible
// to go list, so they are checked directly by directory.
func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	l := fixtureLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", filepath.FromSlash(rel)))
	if err != nil {
		t.Fatalf("resolving fixture dir: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	importPath := path.Join("tracecache/internal/analysis/testdata/src", rel)
	return l.Check(importPath, dir, goFiles)
}

// analyzeFixture runs the full analyzer set over one fixture package,
// with diagnostics relative to the repo root.
func analyzeFixture(t *testing.T, rel string) (*Package, *Result) {
	t.Helper()
	pkg := loadFixture(t, rel)
	return pkg, Analyze(repoRoot(t), []*Package{pkg}, Analyzers())
}

func TestFixtureGoldens(t *testing.T) {
	cases := []struct {
		analyzer string
		fixture  string
		// suppressed is the number of ignore-directive hits the fixture
		// demonstrates.
		suppressed int
	}{
		{"determinism", "determinism/sim", 2},
		{"hotalloc", "hotalloc/hot", 2},
		{"nilsafe", "nilsafe/obsbus", 0},
		{"nopanic", "nopanic/config", 1},
		{"metrichygiene", "metrichygiene/fleet", 0},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			pkg, res := analyzeFixture(t, tc.fixture)
			if pkg.Degraded {
				t.Fatalf("fixture %s degraded: %v", tc.fixture, pkg.LoadDiags)
			}
			var buf bytes.Buffer
			res.Render(&buf)

			golden := filepath.Join("testdata", "golden", tc.analyzer+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to regenerate): %v", err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", tc.fixture, got, want)
			}
			if res.Counts[tc.analyzer] == 0 {
				t.Errorf("fixture %s tripped no %s diagnostics", tc.fixture, tc.analyzer)
			}
			if res.Suppressed != tc.suppressed {
				t.Errorf("fixture %s suppressed %d diagnostics, want %d", tc.fixture, res.Suppressed, tc.suppressed)
			}
		})
	}
}
