package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags per-call allocation sources inside functions annotated
// //tc:hotpath: address-taken or slice/map composite literals, appends
// that do not reuse a preallocated buffer, closures, fmt calls, and
// implicit interface conversions (boxing). These are the constructs the
// PR 3 allocation diet removed from the cycle loop; the annotation locks
// the diet in.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "//tc:hotpath functions must not allocate per call",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, dirHotPath) {
					continue
				}
				checkHotFunc(pass, fd)
			}
		}
	}
	return a
}

// checkHotFunc inspects one annotated function.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Appends that reuse a persistent buffer are allowed: x = append(x, ...)
	// grows in place, and append(buf[:0], ...) explicitly reslices existing
	// backing storage whatever the result is bound to. Everything else may
	// grow a fresh backing array per call.
	allowedAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
			return true
		}
		arg0 := unparen(call.Args[0])
		if _, ok := arg0.(*ast.SliceExpr); ok {
			// append(buf[:0], ...): reslicing names the storage being reused.
			allowedAppend[call] = true
		} else if types.ExprString(arg0) == types.ExprString(as.Lhs[0]) {
			allowedAppend[call] = true
		}
		return true
	})

	var funcResults *ast.FieldList
	if fd.Type != nil {
		funcResults = fd.Type.Results
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path allocates; hoist it or pass state explicitly")
			return false // constructs inside the (already-reported) closure are its problem
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal escapes and allocates in hot path")
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates per call in hot path; reuse a scratch buffer")
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates per call in hot path; reuse a persistent map")
				}
			} else {
				// Degraded: fall back to the syntax.
				switch tt := n.Type.(type) {
				case *ast.ArrayType:
					if tt.Len == nil {
						pass.Reportf(n.Pos(), "slice literal allocates per call in hot path; reuse a scratch buffer")
					}
				case *ast.MapType:
					pass.Reportf(n.Pos(), "map literal allocates per call in hot path; reuse a persistent map")
				}
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "append") && !allowedAppend[n] {
				pass.Reportf(n.Pos(), "append does not reuse a preallocated buffer in hot path; use x = append(x[:0], ...) on a scratch slice")
			}
			if f := calleeFunc(info, n); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s allocates (and boxes its operands) in hot path", f.Name())
			} else if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && info.Uses[sel.Sel] == nil {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" {
					pass.Reportf(n.Pos(), "fmt.%s allocates (and boxes its operands) in hot path", sel.Sel.Name)
				}
			}
			checkCallBoxing(pass, n)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // x, y = f() multi-value: skip
				}
				if boxesInterface(info.TypeOf(lhs), info.TypeOf(n.Rhs[i])) {
					pass.Reportf(n.Rhs[i].Pos(), "assignment boxes %s into an interface in hot path", types.ExprString(n.Rhs[i]))
				}
			}
		case *ast.ValueSpec:
			if n.Type == nil {
				break
			}
			dst := info.TypeOf(n.Type)
			for _, v := range n.Values {
				if boxesInterface(dst, info.TypeOf(v)) {
					pass.Reportf(v.Pos(), "declaration boxes %s into an interface in hot path", types.ExprString(v))
				}
			}
		case *ast.ReturnStmt:
			if funcResults == nil {
				break
			}
			flat := flattenFields(funcResults)
			if len(n.Results) != len(flat) {
				break
			}
			for i, res := range n.Results {
				if boxesInterface(info.TypeOf(flat[i]), info.TypeOf(res)) {
					pass.Reportf(res.Pos(), "return boxes %s into an interface in hot path", types.ExprString(res))
				}
			}
		}
		return true
	})
}

// checkCallBoxing flags call arguments implicitly converted to interface
// parameters, and explicit conversions to interface types.
func checkCallBoxing(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if isBuiltin(info, call, "panic") {
		return // the boxing happens only on the dead (panicking) path
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion I(x).
		if len(call.Args) == 1 && boxesInterface(tv.Type, info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion boxes %s into an interface in hot path", types.ExprString(call.Args[0]))
		}
		return
	}
	t := info.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through ... does not box
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxesInterface(pt, info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "argument boxes %s into interface parameter in hot path", types.ExprString(arg))
		}
	}
}

// flattenFields expands a field list into one entry per declared name
// (or per anonymous field).
func flattenFields(fl *ast.FieldList) []ast.Expr {
	var out []ast.Expr
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, f.Type)
		}
	}
	return out
}
