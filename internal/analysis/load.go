package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed and (when possible) type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	// Sources maps each file name (as recorded in Fset) to its bytes, for
	// trailing-comment detection in ignore-directive scoping.
	Sources map[string][]byte
	// Types and Info hold the type-check results. When the package failed
	// to parse or type-check, Degraded is set, LoadDiags carries the
	// errors, Types may be nil and Info is partial: analyzers degrade to
	// the checks that need syntax only.
	Types     *types.Package
	Info      *types.Info
	Degraded  bool
	LoadDiags []Diagnostic
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	DepOnly    bool
	Standard   bool
	GoFiles    []string
	Error      *listError
}

type listError struct {
	Pos string
	Err string
}

// Loader resolves and type-checks packages against the compiler's export
// data, as reported by `go list -export`.
type Loader struct {
	Dir     string // module/working directory the patterns were resolved in
	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader runs `go list -e -export -deps -json` on the patterns from
// dir and returns a loader plus the matched target packages (dependencies
// are loaded for their export data only). Patterns follow the go tool
// ("./...", specific import paths). A nonempty dir is required.
func NewLoader(dir string, patterns ...string) (*Loader, []*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,DepOnly,Standard,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}
	l := &Loader{Dir: dir, Fset: token.NewFileSet(), exports: make(map[string]string)}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, &p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l, targets, nil
}

// lookup feeds export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	exp, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(exp)
}

// Check parses and type-checks one package from its directory and file
// list. It never fails outright: parse and type errors become "load"
// diagnostics on a Degraded package so syntax-only checks still run (and
// the run exits nonzero).
func (l *Loader) Check(importPath, dir string, goFiles []string) *Package {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Sources:    make(map[string][]byte, len(goFiles)),
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	loadDiag := func(pos token.Position, format string, args ...any) {
		pkg.LoadDiags = append(pkg.LoadDiags, Diagnostic{
			Analyzer: "load", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, name := range goFiles {
		fname := filepath.Join(dir, name)
		src, err := os.ReadFile(fname)
		if err != nil {
			pkg.Degraded = true
			loadDiag(token.Position{Filename: fname, Line: 1, Column: 1}, "reading file: %v", err)
			continue
		}
		pkg.Sources[fname] = src
		file, err := parser.ParseFile(l.Fset, fname, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.Degraded = true
			reportParseErrors(err, fname, loadDiag)
			if file == nil {
				continue
			}
		}
		if pkg.Name == "" {
			pkg.Name = file.Name.Name
		}
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return pkg
	}
	var typeErrs []types.Error
	conf := types.Config{
		Importer:         l.imp,
		Error:            func(err error) { typeErrs = append(typeErrs, err.(types.Error)) },
		IgnoreFuncBodies: false,
	}
	tpkg, err := conf.Check(importPath, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if len(typeErrs) > 0 || err != nil {
		pkg.Degraded = true
		if len(typeErrs) == 0 {
			loadDiag(token.Position{Filename: filepath.Join(dir, goFiles[0]), Line: 1, Column: 1}, "type-checking: %v", err)
		}
		for _, te := range typeErrs {
			loadDiag(l.Fset.Position(te.Pos), "type-checking degraded to syntax-only: %s", te.Msg)
		}
	}
	return pkg
}

// reportParseErrors unpacks a scanner.ErrorList into one load diagnostic
// per syntax error.
func reportParseErrors(err error, fname string, loadDiag func(token.Position, string, ...any)) {
	if list, ok := err.(scanner.ErrorList); ok {
		for _, e := range list {
			loadDiag(e.Pos, "parsing: %s", e.Msg)
		}
		return
	}
	loadDiag(token.Position{Filename: fname, Line: 1, Column: 1}, "parsing: %v", err)
}

// Load discovers, parses and type-checks the packages matched by the
// patterns, rooted at dir.
func Load(dir string, patterns ...string) ([]*Package, error) {
	l, targets, err := NewLoader(dir, patterns...)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg := l.Check(t.ImportPath, t.Dir, t.GoFiles)
		if t.Error != nil && !pkg.Degraded {
			// go list saw an error the type-checker did not reproduce
			// (e.g. an unresolved import of a broken dependency).
			pkg.Degraded = true
			pkg.LoadDiags = append(pkg.LoadDiags, Diagnostic{
				Analyzer: "load", File: filepath.Join(t.Dir, "-"), Line: 1, Col: 1,
				Message: t.Error.Err,
			})
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Run is the full tcvet pipeline: load the patterns from dir, run the
// analyzers, fold in ignore directives, and return the result.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return Analyze(dir, pkgs, analyzers), nil
}
