package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// metricNameRE is the Prometheus metric-name grammar.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// MetricHygiene checks every internal/metrics registration site: the
// metric name must be a compile-time constant matching the Prometheus
// naming grammar, each name must be registered from exactly one source
// site (the registry is idempotent at runtime, but two sites sharing a
// name silently merge series), and histogram bucket literals must ascend.
// Package-level []float64 variables whose name contains "Bucket" are
// checked for ascending order too, covering bounds declared away from
// the registration call.
func MetricHygiene() *Analyzer {
	a := &Analyzer{
		Name: "metrichygiene",
		Doc:  "Prometheus-legal metric names, single registration site, ascending buckets",
	}
	type regSite struct {
		pos  token.Position
		name string
	}
	var sites []regSite
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					kind := registryCallKind(info, n)
					if kind == "" || len(n.Args) == 0 {
						return true
					}
					tv, ok := info.Types[n.Args[0]]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						pass.Reportf(n.Args[0].Pos(), "metric name must be a compile-time constant string for hygiene checking")
						return true
					}
					name := constant.StringVal(tv.Value)
					if !metricNameRE.MatchString(name) {
						pass.Reportf(n.Args[0].Pos(), "metric name %q is not a legal Prometheus name (%s)", name, metricNameRE)
					}
					sites = append(sites, regSite{pos: pass.Pkg.Fset.Position(n.Args[0].Pos()), name: name})
					if kind == "Histogram" && len(n.Args) >= 3 {
						checkBucketExpr(pass, n.Args[2])
					}
				case *ast.ValueSpec:
					// Package-level ...Bucket... variable initializers.
					for i, vname := range n.Names {
						if !strings.Contains(vname.Name, "Bucket") || i >= len(n.Values) {
							continue
						}
						if t := info.TypeOf(n.Values[i]); t != nil {
							if sl, ok := t.Underlying().(*types.Slice); !ok || !isFloat64(sl.Elem()) {
								continue
							}
						}
						checkBucketExpr(pass, n.Values[i])
					}
				}
				return true
			})
		}
	}
	a.Finish = func(report func(Diagnostic)) {
		byName := make(map[string][]regSite)
		for _, s := range sites {
			byName[s.name] = append(byName[s.name], s)
		}
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ss := byName[n]
			if len(ss) < 2 {
				continue
			}
			sort.Slice(ss, func(i, j int) bool {
				if ss[i].pos.Filename != ss[j].pos.Filename {
					return ss[i].pos.Filename < ss[j].pos.Filename
				}
				return ss[i].pos.Line < ss[j].pos.Line
			})
			for _, s := range ss[1:] {
				report(Diagnostic{
					Analyzer: "metrichygiene",
					File:     s.pos.Filename, Line: s.pos.Line, Col: s.pos.Column,
					Message: fmt.Sprintf("metric %q is registered at %s:%d already; a metric name must have exactly one registration site",
						n, filepath.Base(ss[0].pos.Filename), ss[0].pos.Line),
				})
			}
		}
	}
	return a
}

// registryCallKind returns "Counter", "Gauge" or "Histogram" when the
// call is a registration on internal/metrics.Registry, else "".
func registryCallKind(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || !strings.HasSuffix(f.Pkg().Path(), "internal/metrics") {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if named := namedPointee(sig.Recv().Type()); named == nil || named.Obj().Name() != "Registry" {
		return ""
	}
	switch f.Name() {
	case "Counter", "Gauge", "Histogram":
		return f.Name()
	}
	return ""
}

// checkBucketExpr verifies a []float64 composite literal of constant
// elements ascends strictly. Non-literal or non-constant bounds are left
// to the runtime check in internal/metrics.
func checkBucketExpr(pass *Pass, e ast.Expr) {
	cl, ok := unparen(e).(*ast.CompositeLit)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	prev := 0.0
	havePrev := false
	for _, el := range cl.Elts {
		tv, ok := info.Types[el]
		if !ok || tv.Value == nil {
			return // not all constant: cannot check statically
		}
		v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
		if !ok {
			return
		}
		if havePrev && v <= prev {
			pass.Reportf(el.Pos(), "histogram bucket bounds must ascend strictly: %v after %v", v, prev)
		}
		prev, havePrev = v, true
	}
}

// isFloat64 reports whether t is float64.
func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
