package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilSafe enforces the nil-receiver contract on types annotated
// //tc:nilsafe (the obs.Bus / sim.Metrics / journal.Writer pattern: a nil
// pointer is a valid, permanently-disabled instance):
//
//   - every method must use a pointer receiver (a value receiver derefs
//     the nil pointer at the call site);
//   - a method that touches receiver fields must nil-guard the receiver
//     first;
//   - no value of the pointer type may be boxed into an interface — the
//     interface would be non-nil even when the pointer inside it is nil,
//     defeating the callers' nil checks.
func NilSafe() *Analyzer {
	a := &Analyzer{
		Name: "nilsafe",
		Doc:  "//tc:nilsafe types: guarded methods, pointer receivers, no interface boxing",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkNilSafeMethod(pass, fd)
				}
			}
			checkNilSafeBoxing(pass, file)
			checkNilSafeReturns(pass, file)
		}
	}
	return a
}

// checkNilSafeMethod verifies receiver discipline for methods on marked
// types declared in this package.
func checkNilSafeMethod(pass *Pass, fd *ast.FuncDecl) {
	recvIdent, pointer := recvTypeName(fd)
	if recvIdent == nil {
		return
	}
	if !pass.Facts.NilSafe[pass.Pkg.ImportPath+"."+recvIdent.Name] {
		return
	}
	if !pointer {
		pass.Reportf(fd.Pos(), "method %s on nil-safe type %s must use a pointer receiver (a nil caller derefs here)",
			fd.Name.Name, recvIdent.Name)
		return
	}
	if fd.Body == nil || len(fd.Recv.List[0].Names) == 0 {
		return // unnamed receiver: the body cannot touch fields
	}
	recvName := fd.Recv.List[0].Names[0]
	if recvName.Name == "_" {
		return
	}
	info := pass.Pkg.Info
	recvObj := info.Defs[recvName]

	isRecv := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		if recvObj != nil {
			return info.ObjectOf(id) == recvObj
		}
		return id.Name == recvName.Name // degraded fallback
	}

	// Earliest nil comparison of the receiver.
	guardPos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if (isRecv(be.X) && isNilIdent(be.Y)) || (isRecv(be.Y) && isNilIdent(be.X)) {
			if !guardPos.IsValid() || be.Pos() < guardPos {
				guardPos = be.Pos()
			}
		}
		return true
	})

	// Earliest receiver field access (selection resolving to a field, or
	// — degraded — any selector on the receiver).
	fieldPos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isRecv(sel.X) {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() != types.FieldVal {
			return true // method value/call on the receiver: checked at its own decl
		}
		if !fieldPos.IsValid() || sel.Pos() < fieldPos {
			fieldPos = sel.Pos()
		}
		return true
	})

	if fieldPos.IsValid() && (!guardPos.IsValid() || guardPos > fieldPos) {
		pass.Reportf(fieldPos, "receiver field access before nil guard in method %s on nil-safe type %s; start with `if %s == nil`",
			fd.Name.Name, recvIdent.Name, recvName.Name)
	}
}

// isNilIdent reports whether the expression is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// markedNilSafe returns the qualified name of t's pointee when t is a
// pointer to a //tc:nilsafe type, else "".
func markedNilSafe(pass *Pass, t types.Type) string {
	if t == nil {
		return ""
	}
	name := qualifiedName(namedPointee(t))
	if name != "" && pass.Facts.NilSafe[name] {
		return name
	}
	return ""
}

// reportNilSafeBox records one boxing violation.
func reportNilSafeBox(pass *Pass, pos token.Pos, name string) {
	pass.Reportf(pos, "storing *%s in an interface defeats its nil-receiver contract (interface becomes non-nil)", name)
}

// checkNilSafeBoxing flags conversions of pointers-to-marked-types into
// interfaces anywhere in the file (any package, since the marked type may
// be imported).
func checkNilSafeBoxing(pass *Pass, file *ast.File) {
	info := pass.Pkg.Info
	marked := func(t types.Type) string { return markedNilSafe(pass, t) }
	reportBox := func(pos token.Pos, name string) { reportNilSafeBox(pass, pos, name) }
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				src := info.TypeOf(n.Rhs[i])
				if name := marked(src); name != "" && boxesInterface(info.TypeOf(lhs), src) {
					reportBox(n.Rhs[i].Pos(), name)
				}
			}
		case *ast.ValueSpec:
			if n.Type == nil {
				break
			}
			dst := info.TypeOf(n.Type)
			for _, v := range n.Values {
				src := info.TypeOf(v)
				if name := marked(src); name != "" && boxesInterface(dst, src) {
					reportBox(v.Pos(), name)
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				if len(n.Args) == 1 {
					src := info.TypeOf(n.Args[0])
					if name := marked(src); name != "" && boxesInterface(tv.Type, src) {
						reportBox(n.Pos(), name)
					}
				}
				return true
			}
			t := info.TypeOf(n.Fun)
			if t == nil {
				return true
			}
			sig, ok := t.Underlying().(*types.Signature)
			if !ok {
				return true
			}
			params := sig.Params()
			for i, arg := range n.Args {
				var pt types.Type
				switch {
				case sig.Variadic() && i >= params.Len()-1:
					if n.Ellipsis.IsValid() {
						continue
					}
					if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
						pt = sl.Elem()
					}
				case i < params.Len():
					pt = params.At(i).Type()
				}
				src := info.TypeOf(arg)
				if name := marked(src); name != "" && boxesInterface(pt, src) {
					reportBox(arg.Pos(), name)
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				break
			}
			var elem types.Type
			switch u := t.Underlying().(type) {
			case *types.Slice:
				elem = u.Elem()
			case *types.Array:
				elem = u.Elem()
			case *types.Map:
				elem = u.Elem()
			}
			if elem == nil || !isInterface(elem) {
				break
			}
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				src := info.TypeOf(el)
				if name := marked(src); name != "" && boxesInterface(elem, src) {
					reportBox(el.Pos(), name)
				}
			}
		}
		return true
	})
}

// checkNilSafeReturns flags returning a pointer-to-marked-type through an
// interface-typed result, the remaining boxing channel checkNilSafeBoxing
// does not see. Function literals are walked against their own result
// types.
func checkNilSafeReturns(pass *Pass, file *ast.File) {
	info := pass.Pkg.Info
	var walk func(body ast.Node, results *types.Tuple)
	walk = func(body ast.Node, results *types.Tuple) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if sig, ok := info.TypeOf(n).(*types.Signature); ok && sig != nil {
					walk(n.Body, sig.Results())
				}
				return false
			case *ast.ReturnStmt:
				if results == nil || len(n.Results) != results.Len() {
					return true // bare return, or multi-value call: nothing to match
				}
				for i, e := range n.Results {
					src := info.TypeOf(e)
					if name := markedNilSafe(pass, src); name != "" && boxesInterface(results.At(i).Type(), src) {
						reportNilSafeBox(pass, e.Pos(), name)
					}
				}
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, _ := info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		if sig, ok := obj.Type().(*types.Signature); ok {
			walk(fd.Body, sig.Results())
		}
	}
}
