package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// noPanicPkgs are the input-facing packages whose exported API must
// return errors instead of panicking: user-supplied configs, cache and
// trace-cache geometries, experiment selections, journals and metric
// registrations all flow in through them.
var noPanicPkgs = map[string]bool{
	"config": true, "cache": true, "core": true,
	"experiments": true, "journal": true, "metrics": true, "trace": true,
	"sampling": true, "resultstore": true, "server": true,
}

// NoPanic flags panic calls reachable from exported entry points of the
// input-facing packages, via the static intra-package call graph.
// Dynamic calls (interface methods, function values) are not traced, so
// the check is an under-approximation; direct panics in exported API and
// their helper chains are exactly what it catches. Invariant panics that
// cannot fire on user input need an explicit
// //tcvet:ignore nopanic <reason>.
func NoPanic() *Analyzer {
	a := &Analyzer{
		Name: "nopanic",
		Doc:  "no panic reachable from exported entry points of input-facing packages",
	}
	a.Run = func(pass *Pass) {
		if !internalPkg(pass.Pkg.ImportPath, noPanicPkgs) {
			return
		}
		checkNoPanic(pass)
	}
	return a
}

// fnode is one declared function in the package call graph.
type fnode struct {
	decl   *ast.FuncDecl
	obj    *types.Func
	panics []token.Pos
	calls  []*types.Func
	root   string // exported entry point it is reachable from, "" if none
}

func checkNoPanic(pass *Pass) {
	info := pass.Pkg.Info
	nodes := make(map[*types.Func]*fnode)
	var order []*fnode

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			n := &fnode{decl: fd, obj: obj}
			if obj != nil {
				nodes[obj] = n
			}
			order = append(order, n)
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isBuiltin(info, call, "panic") {
					n.panics = append(n.panics, call.Pos())
					return true
				}
				if f := calleeFunc(info, call); f != nil && f.Pkg() != nil && pass.Pkg.Types != nil && f.Pkg() == pass.Pkg.Types {
					n.calls = append(n.calls, f)
				}
				return true
			})
		}
	}

	// Seed the worklist with the exported entry points: exported
	// functions, and exported methods on exported types.
	var work []*fnode
	for _, n := range order {
		fd := n.decl
		if !fd.Name.IsExported() {
			continue
		}
		if recv, _ := recvTypeName(fd); recv != nil && !recv.IsExported() {
			continue
		}
		n.root = fd.Name.Name
		work = append(work, n)
	}
	// Propagate reachability breadth-first, keeping the first root found
	// (deterministic: seeded in declaration order).
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, callee := range n.calls {
			cn := nodes[callee]
			if cn == nil || cn.root != "" {
				continue
			}
			cn.root = n.root
			work = append(work, cn)
		}
	}

	var diags []struct {
		pos token.Pos
		n   *fnode
	}
	for _, n := range order {
		if n.root == "" {
			continue
		}
		for _, p := range n.panics {
			diags = append(diags, struct {
				pos token.Pos
				n   *fnode
			}{p, n})
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	for _, d := range diags {
		via := ""
		if d.n.decl.Name.Name != d.n.root {
			via = " via " + d.n.decl.Name.Name
		}
		pass.Reportf(d.pos, "panic reachable from exported %s%s; return an error, or annotate the invariant with %q",
			d.n.root, via, dirIgnore+" nopanic <reason>")
	}
}
