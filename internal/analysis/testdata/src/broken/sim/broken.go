// Package sim is a tcvet test fixture exercising degraded analysis: it
// parses cleanly but fails the type checker, so the load reports the
// type error, marks the package Degraded, and syntax-level checks still
// run. Loaded by the analysis tests only.
package sim

import "time"

// Stamp must still be flagged by the determinism analyzer in degraded
// mode.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Broken references an undefined identifier, failing the type check.
func Broken() int {
	return undefinedIdentifier
}
