// Package sim is a tcvet test fixture for the determinism analyzer. It
// is loaded by the analysis tests only; the go tool never builds it
// (testdata directories are invisible to package patterns). The package
// base name "sim" puts it in the result-affecting set.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Table is keyed by PC, like the simulator's per-address structures.
type Table map[int]int

// KeysUnsorted lets map-iteration order escape into the returned slice
// with no sort: a determinism violation.
func KeysUnsorted(t Table) []int {
	var out []int
	for pc := range t {
		out = append(out, pc)
	}
	return out
}

// KeysSorted collects then sorts: the canonical deterministic idiom,
// exempt because the sort call follows the loop.
func KeysSorted(t Table) []int {
	var out []int
	for pc := range t {
		out = append(out, pc)
	}
	sort.Ints(out)
	return out
}

// Harmless only touches loop-local state, so iteration order cannot
// escape.
func Harmless(t Table) {
	for _, v := range t {
		doubled := v * 2
		_ = doubled
	}
}

// Stamp reads the wall clock: a determinism violation.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter draws from math/rand's shared global source: a determinism
// violation.
func Jitter() int {
	return rand.Intn(8)
}

// Seeded builds a locally-seeded generator; constructors and methods on
// *rand.Rand are exempt.
func Seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(8)
}

// Timed demonstrates trailing-comment suppression: the directive covers
// its own line only.
func Timed() int64 {
	now := time.Now().UnixNano() //tcvet:ignore determinism fixture: provenance stamp, not simulated state
	return now
}

// MergeAnnotated demonstrates standalone-line suppression: the directive
// covers the line directly below it.
func MergeAnnotated(t Table, out map[int]int) {
	//tcvet:ignore determinism fixture: per-key build, no ordering dependence
	for k, v := range t {
		out[k] = v
	}
}
