// Package hot is a tcvet test fixture for the hotalloc analyzer: one
// //tc:hotpath function per allocation source, plus the allowed reuse
// idioms. Loaded by the analysis tests only.
package hot

import "fmt"

// State carries preallocated scratch buffers, PR 3 style.
type State struct {
	buf  []int
	out  []int
	sink any
}

// Bad exhibits every per-call allocation source the analyzer flags.
//
//tc:hotpath
func (s *State) Bad(vs []int) []int {
	f := func() int { return 1 }
	_ = f
	p := &State{}
	_ = p
	tmp := []int{1, 2, 3}
	_ = tmp
	m := map[int]int{}
	_ = m
	grown := append(vs, 4)
	s.sink = vs
	_ = fmt.Sprint()
	return grown
}

// Good uses only the allowed reuse forms: growing in place, reslicing a
// persistent buffer, and panic (whose argument boxes only on the dead
// path).
//
//tc:hotpath
func (s *State) Good(vs []int) {
	s.out = append(s.out[:0], vs...)
	local := append(s.buf[:0], vs...)
	if len(local) > cap(s.buf) {
		panic("hot: scratch buffer overflow")
	}
}

// Boundary allocates by design — the result outlives the call — and
// demonstrates declaration-scope suppression: the directive in the doc
// comment covers the whole declaration.
//
//tc:hotpath
//tcvet:ignore hotalloc fixture: ownership transfer at the boundary
func (s *State) Boundary(vs []int) *State {
	return &State{out: append([]int(nil), vs...)}
}
