// Package fleet is a tcvet test fixture for the metrichygiene analyzer,
// registering metrics against the real internal/metrics registry. Loaded
// by the analysis tests only.
package fleet

import "tracecache/internal/metrics"

// waitBuckets descends between its last two bounds: a violation caught
// at the package-level declaration.
var waitBuckets = []float64{0.01, 0.1, 1, 0.5}

// Register exercises the registration-site checks.
func Register(r *metrics.Registry) {
	r.Counter("fleet_ops_total", "Operations started.")
	r.Counter("fleet-ops-bad", "Name with dashes: not Prometheus-legal.")
	r.Counter("fleet_ops_total", "Second site for an already-registered name.")
	r.Histogram("fleet_wait_seconds", "Queue wait.", []float64{1, 2, 2})
	_ = waitBuckets
}

// RegisterDynamic computes the metric name at run time, defeating static
// hygiene checking: a violation.
func RegisterDynamic(r *metrics.Registry, suffix string) {
	r.Counter("fleet_"+suffix, "Dynamically named.")
}
