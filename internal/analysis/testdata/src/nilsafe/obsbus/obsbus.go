// Package obsbus is a tcvet test fixture for the nilsafe analyzer: a
// //tc:nilsafe type with one compliant method and each way of violating
// the contract. Loaded by the analysis tests only.
package obsbus

// Bus is disabled when nil, like obs.Bus.
//
//tc:nilsafe
type Bus struct {
	n     int
	sinks []func(int)
}

// Observer is any event consumer.
type Observer interface {
	Count() int
}

// Count guards the receiver before touching fields: compliant.
func (b *Bus) Count() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Emit touches a receiver field with no nil guard: a violation.
func (b *Bus) Emit(v int) {
	b.n += v
}

// Len uses a value receiver, which derefs a nil caller: a violation.
func (b Bus) Len() int {
	return b.n
}

// Register boxes the bus into an interface variable: a violation.
func Register(b *Bus) {
	var o Observer = b
	_ = o
}

// observe consumes any Observer.
func observe(o Observer) int {
	return o.Count()
}

// Watch boxes the bus into an interface parameter: a violation.
func Watch(b *Bus) int {
	return observe(b)
}

// AsObserver boxes the bus through an interface return: a violation.
func AsObserver(b *Bus) Observer {
	return b
}
