// Package config is a tcvet test fixture for the nopanic analyzer. The
// package base name "config" puts it in the input-facing set. Loaded by
// the analysis tests only.
package config

import "fmt"

// Parse panics directly from an exported entry point: a violation.
func Parse(s string) int {
	if s == "" {
		panic("config: empty input")
	}
	return len(s)
}

// Load reaches a panic through an unexported helper: a violation
// attributed to Load via validate.
func Load(s string) (int, error) {
	return validate(s), nil
}

func validate(s string) int {
	if len(s) > 64 {
		panic("config: oversized input")
	}
	return len(s)
}

// Check returns an error instead of panicking: compliant.
func Check(s string) error {
	if s == "" {
		return fmt.Errorf("config: empty input")
	}
	return nil
}

// MustLen panics by documented Must* contract; the standalone ignore
// line suppresses the panic directly below it.
func MustLen(s string) int {
	if s == "" {
		//tcvet:ignore nopanic fixture: Must* idiom, panic is the documented contract
		panic("config: empty input")
	}
	return len(s)
}

// unreachable panics but no exported entry point reaches it, so it is
// not reported.
func unreachable() {
	panic("config: never")
}
