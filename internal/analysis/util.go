package analysis

import (
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// internalPkg reports whether the import path is one of the repository's
// internal packages (or a fixture standing in for one) whose directory
// base name is in names. Fixture packages under
// internal/analysis/testdata/src mirror the real layout, so matching on
// "internal" anywhere in the path covers both.
func internalPkg(importPath string, names map[string]bool) bool {
	return strings.Contains(importPath, "internal") && names[path.Base(importPath)]
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// baseIdent chases an assignable expression (x, x.f, x[i], *x) to its
// base identifier, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// calleeFunc resolves a call expression to the *types.Func it statically
// invokes, or nil (builtins, function values, conversions, degraded
// packages).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if obj, ok := info.Uses[id]; ok {
		b, ok := obj.(*types.Builtin)
		return ok && b.Name() == name
	}
	// Degraded: fall back to the name alone.
	return true
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxesInterface reports whether assigning an expression of type src to a
// destination of type dst converts a concrete value into an interface.
func boxesInterface(dst, src types.Type) bool {
	if dst == nil || src == nil || !isInterface(dst) {
		return false
	}
	if isInterface(src) {
		return false
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// namedPointee returns the named type T when t is *T, otherwise nil.
func namedPointee(t types.Type) *types.Named {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		if alias, ok2 := t.(*types.Alias); ok2 {
			return namedPointee(types.Unalias(alias))
		}
		return nil
	}
	named, _ := ptr.Elem().(*types.Named)
	return named
}

// qualifiedName renders a named type as "importpath.Name" (empty for
// types outside any package).
func qualifiedName(named *types.Named) string {
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// recvTypeName returns the base type identifier of a method receiver
// (stripping pointer and generic instantiation), plus whether the
// receiver is a pointer.
func recvTypeName(fd *ast.FuncDecl) (name *ast.Ident, pointer bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil, false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		pointer = true
		t = star.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x, pointer
	case *ast.IndexExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id, pointer
		}
	case *ast.IndexListExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id, pointer
		}
	}
	return nil, pointer
}
