// Package atomicfile installs files atomically: content is written to a
// temporary file in the destination directory, synced, and renamed into
// place, so readers never observe a partially written file and a crash
// leaves at most a stray temporary.
//
// Rename degrades gracefully on EXDEV: some filesystems report
// cross-device links even for paths that appear to share a mount point
// (bind mounts, overlayfs layers as used by containers), where a plain
// os.Rename fails. The fallback copies the source next to the
// destination, syncs, and renames within the destination directory —
// preserving the readers-never-see-partial-content guarantee, since the
// final installing rename is always same-directory.
package atomicfile

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// renameOS is the rename syscall wrapper; tests swap it to inject EXDEV.
var renameOS = os.Rename

// WriteFile atomically installs data at path: temp file in the
// destination directory, write, sync, close, rename. On any error the
// temporary is removed and path is untouched (it keeps its previous
// content, if any).
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Rename moves oldpath to newpath. When the rename fails with EXDEV
// (destination on a different filesystem, or an overlay/bind-mount
// boundary), it falls back to copy+sync into a temporary beside newpath
// followed by a same-directory rename, then removes oldpath. Any other
// rename error is returned as-is (wrapped).
func Rename(oldpath, newpath string) error {
	err := renameOS(oldpath, newpath)
	if err == nil {
		return nil
	}
	if !isEXDEV(err) {
		return fmt.Errorf("atomicfile: %w", err)
	}
	data, rerr := os.ReadFile(oldpath)
	if rerr != nil {
		return fmt.Errorf("atomicfile: exdev fallback: %w", rerr)
	}
	dir := filepath.Dir(newpath)
	tmp, terr := os.CreateTemp(dir, filepath.Base(newpath)+".xdev*")
	if terr != nil {
		return fmt.Errorf("atomicfile: exdev fallback: %w", terr)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: exdev fallback: %w", err)
	}
	if _, werr := tmp.Write(data); werr != nil {
		return cleanup(werr)
	}
	if serr := tmp.Sync(); serr != nil {
		return cleanup(serr)
	}
	if cerr := tmp.Close(); cerr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: exdev fallback: %w", cerr)
	}
	// The installing rename is same-directory; if even that reports
	// EXDEV the destination directory itself is unusable for atomic
	// installs and the error is real.
	if ferr := renameOS(tmpName, newpath); ferr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: exdev fallback: %w", ferr)
	}
	os.Remove(oldpath)
	return nil
}

// isEXDEV reports whether err is the cross-device link errno, on any
// wrapping level (os wraps it in *os.LinkError).
func isEXDEV(err error) bool {
	return errors.Is(err, syscall.EXDEV)
}
