package atomicfile_test

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"tracecache/internal/atomicfile"
)

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	want := []byte("hello atomic world")
	if err := atomicfile.WriteFile(path, want, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("content = %q, want %q", got, want)
	}
	// No stray temporaries.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries, want 1 (no stray temp files)", len(ents))
	}
}

func TestWriteFileOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := atomicfile.WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := atomicfile.WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
}

// TestRenameEXDEVFallback injects EXDEV on the first (cross-directory)
// rename and verifies the copy+sync+rename fallback installs the content
// and removes the source — the -tracedir-on-a-mounted-volume scenario.
func TestRenameEXDEVFallback(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src := filepath.Join(srcDir, "payload.tmp")
	dst := filepath.Join(dstDir, "payload.bin")
	if err := os.WriteFile(src, []byte("cross-device payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	restore := atomicfile.SetRename(func(old, new string) error {
		// The first rename (src in a different dir) reports EXDEV, the
		// same-directory installing rename of the fallback succeeds.
		if filepath.Dir(old) != filepath.Dir(new) {
			return &os.LinkError{Op: "rename", Old: old, New: new, Err: syscall.EXDEV}
		}
		return os.Rename(old, new)
	})
	defer restore()

	if err := atomicfile.Rename(src, dst); err != nil {
		t.Fatalf("Rename with EXDEV: %v", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatalf("destination missing: %v", err)
	}
	if string(got) != "cross-device payload" {
		t.Fatalf("content = %q", got)
	}
	if _, err := os.Stat(src); !os.IsNotExist(err) {
		t.Fatalf("source still present after fallback (err=%v)", err)
	}
	ents, _ := os.ReadDir(dstDir)
	if len(ents) != 1 {
		t.Fatalf("destination dir holds %d entries, want 1", len(ents))
	}
}

// TestWriteFileEXDEV drives WriteFile end to end under an always-EXDEV
// first rename, as overlayfs can produce even for same-directory paths
// when the destination exists on a lower layer.
func TestWriteFileEXDEV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.entry")
	if err := os.WriteFile(path, []byte("lower-layer original"), 0o644); err != nil {
		t.Fatal(err)
	}
	fired := false
	restore := atomicfile.SetRename(func(old, new string) error {
		if !fired {
			fired = true
			return &os.LinkError{Op: "rename", Old: old, New: new, Err: syscall.EXDEV}
		}
		return os.Rename(old, new)
	})
	defer restore()
	if err := atomicfile.WriteFile(path, []byte("replacement"), 0o644); err != nil {
		t.Fatalf("WriteFile under EXDEV: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "replacement" {
		t.Fatalf("content = %q", got)
	}
	if !fired {
		t.Fatal("injected EXDEV never fired")
	}
}

func TestRenameOtherErrorPropagates(t *testing.T) {
	restore := atomicfile.SetRename(func(old, new string) error {
		return &os.LinkError{Op: "rename", Old: old, New: new, Err: syscall.EACCES}
	})
	defer restore()
	dir := t.TempDir()
	src := filepath.Join(dir, "a")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := atomicfile.Rename(src, filepath.Join(dir, "b"))
	if err == nil || !strings.Contains(err.Error(), "permission denied") {
		t.Fatalf("err = %v, want wrapped EACCES", err)
	}
}
