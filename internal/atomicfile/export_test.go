package atomicfile

import "os"

// SetRename swaps the rename syscall wrapper for tests (EXDEV injection)
// and returns a restore function.
func SetRename(f func(old, new string) error) (restore func()) {
	prev := renameOS
	if f == nil {
		f = os.Rename
	}
	renameOS = f
	return func() { renameOS = prev }
}
