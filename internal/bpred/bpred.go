// Package bpred implements the branch prediction hardware of the paper's
// fetch mechanisms:
//
//   - the gshare tree multiple-branch predictor used with the trace cache
//     (16K entries of 7 two-bit counters, up to three predictions per
//     cycle; Figure 3 of the paper),
//   - the restructured three-table predictor used once branches are
//     promoted (64K/16K/8K two-bit counters; Section 4),
//   - the hybrid gshare+PAs predictor with a selector used by the
//     instruction-cache-only reference front end (Section 3), and
//   - a last-target predictor for indirect jumps.
//
// Returns are predicted by an ideal return address stack, which the fetch
// engine models directly.
package bpred

// Counter2 is a 2-bit saturating counter. Values 0..1 predict not taken,
// 2..3 predict taken.
type Counter2 uint8

// Taken returns the counter's prediction.
func (c Counter2) Taken() bool { return c >= 2 }

// Update moves the counter toward the outcome, saturating at 0 and 3.
func (c Counter2) Update(taken bool) Counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// weaklyNotTaken is the initial counter state.
const weaklyNotTaken Counter2 = 1

// History is a global branch history register of a fixed width. It is a
// value type: the fetch engine checkpoints it by copying.
type History struct {
	Bits uint
	Reg  uint64
}

// Push shifts an outcome into the history.
func (h *History) Push(taken bool) {
	h.Reg <<= 1
	if taken {
		h.Reg |= 1
	}
	h.Reg &= (1 << h.Bits) - 1
}

// PredCtx captures everything a predictor needs to update the counter that
// produced a prediction. It is carried with the branch from fetch to
// retire.
type PredCtx struct {
	Index uint32 // table index computed at prediction time
	Slot  uint8  // which of the (up to three) predictions this cycle
	Path  uint8  // predicted outcomes of earlier slots this cycle (bit i = slot i)
}

// Counters aggregates predictor activity telemetry: how many dynamic
// predictions the front end demanded (wrong path included) and how many
// training updates retired branches applied. The observability layer
// samples these at interval boundaries to report prediction-bandwidth
// demand over time.
type Counters struct {
	Predictions uint64 // dynamic predictions supplied
	Updates     uint64 // training updates applied
}

// MultiPredictor supplies conditional branch predictions for the trace
// cache front end.
type MultiPredictor interface {
	// Predict returns the prediction for the slot-th dynamic branch of
	// the current fetch. start is the fetch-group start PC (the paper's
	// tree predictor is indexed once per fetch by fetch address), brPC the
	// branch's own PC (used by per-branch predictors such as
	// SingleHybridMBP), hist the global history at fetch, and path the
	// predicted outcomes of earlier slots this cycle.
	Predict(start, brPC int, hist uint64, slot int, path uint8) (bool, PredCtx)
	// Update trains the counter that produced the prediction.
	Update(ctx PredCtx, taken bool)
	// MaxSlots returns the number of predictions available per cycle.
	MaxSlots() int
	// Counters returns the predictor's activity telemetry.
	Counters() Counters
}

// TreeMBP is the multiple branch predictor of Figure 3: a gshare-indexed
// pattern history table whose entries each hold seven 2-bit counters
// forming a depth-3 tree. Counter 0 predicts the first branch; counters
// 1-2 predict the second branch conditioned on the first prediction;
// counters 3-6 predict the third conditioned on the first two.
type TreeMBP struct {
	entries  [][7]Counter2
	mask     uint32
	histBits uint
	ctr      Counters
}

// NewTreeMBP builds the predictor with the given number of entries (a
// power of two; the paper uses 16K entries = 32KB of storage).
func NewTreeMBP(entries int) *TreeMBP {
	t := &TreeMBP{
		entries:  make([][7]Counter2, entries),
		mask:     uint32(entries - 1),
		histBits: log2(entries),
	}
	for i := range t.entries {
		for j := range t.entries[i] {
			t.entries[i][j] = weaklyNotTaken
		}
	}
	return t
}

func log2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}

// counterFor returns the tree position for a slot given earlier predicted
// outcomes this cycle.
func counterFor(slot int, path uint8) int {
	switch slot {
	case 0:
		return 0
	case 1:
		return 1 + int(path&1)
	default:
		return 3 + int(path&3)
	}
}

// Predict implements MultiPredictor; the branch PC is ignored (the table
// is indexed by fetch address, per Figure 3).
func (t *TreeMBP) Predict(start, brPC int, hist uint64, slot int, path uint8) (bool, PredCtx) {
	t.ctr.Predictions++
	idx := (uint32(start) ^ uint32(hist)) & t.mask
	c := counterFor(slot, path)
	taken := t.entries[idx][c].Taken()
	return taken, PredCtx{Index: idx, Slot: uint8(slot), Path: path}
}

// Update implements MultiPredictor.
func (t *TreeMBP) Update(ctx PredCtx, taken bool) {
	t.ctr.Updates++
	c := counterFor(int(ctx.Slot), ctx.Path)
	e := &t.entries[ctx.Index&t.mask]
	e[c] = e[c].Update(taken)
}

// MaxSlots implements MultiPredictor.
func (t *TreeMBP) MaxSlots() int { return 3 }

// Counters implements MultiPredictor.
func (t *TreeMBP) Counters() Counters { return t.ctr }

// SplitMBP is the restructured predictor of Section 4: three independent
// gshare tables sized for the post-promotion demand (the paper uses
// 64K/16K/8K counters, 24KB total including storage savings relative to the
// baseline once the 8KB bias table is added).
type SplitMBP struct {
	tables [3][]Counter2
	masks  [3]uint32
	ctr    Counters
}

// NewSplitMBP builds the predictor with per-slot table sizes (powers of
// two).
func NewSplitMBP(first, second, third int) *SplitMBP {
	s := &SplitMBP{}
	sizes := [3]int{first, second, third}
	for i, n := range sizes {
		s.tables[i] = make([]Counter2, n)
		for j := range s.tables[i] {
			s.tables[i][j] = weaklyNotTaken
		}
		s.masks[i] = uint32(n - 1)
	}
	return s
}

// Predict implements MultiPredictor; the branch PC is ignored (each table
// is indexed by fetch address).
func (s *SplitMBP) Predict(start, brPC int, hist uint64, slot int, path uint8) (bool, PredCtx) {
	s.ctr.Predictions++
	if slot > 2 {
		slot = 2
	}
	idx := (uint32(start) ^ uint32(hist)) & s.masks[slot]
	return s.tables[slot][idx].Taken(), PredCtx{Index: idx, Slot: uint8(slot), Path: path}
}

// Update implements MultiPredictor.
func (s *SplitMBP) Update(ctx PredCtx, taken bool) {
	s.ctr.Updates++
	slot := int(ctx.Slot)
	if slot > 2 {
		slot = 2
	}
	tb := s.tables[slot]
	idx := ctx.Index & s.masks[slot]
	tb[idx] = tb[idx].Update(taken)
}

// MaxSlots implements MultiPredictor.
func (s *SplitMBP) MaxSlots() int { return 3 }

// Counters implements MultiPredictor.
func (s *SplitMBP) Counters() Counters { return s.ctr }

// SingleHybridMBP adapts the aggressive hybrid single-branch predictor to
// the trace cache front end: one highly accurate prediction per cycle,
// indexed by the branch's own address. Section 4 suggests exactly this
// once branch promotion has collapsed prediction-bandwidth demand ("for an
// 8-wide machine ... promotion opens the possibility of using aggressive
// hybrid single branch prediction with the trace cache").
type SingleHybridMBP struct {
	h *Hybrid
}

// NewSingleHybridMBP wraps the hybrid predictor (which must use the
// default 2^15 gshare geometry so contexts pack into PredCtx).
func NewSingleHybridMBP(h *Hybrid) *SingleHybridMBP { return &SingleHybridMBP{h: h} }

// hybrid context packing inside PredCtx: Index holds the 15-bit gshare
// index in the low bits and the branch PC above; Path bits 0/1 hold the
// component predictions.
const singleHybridIndexBits = 15

// Predict implements MultiPredictor.
func (s *SingleHybridMBP) Predict(start, brPC int, hist uint64, slot int, path uint8) (bool, PredCtx) {
	if slot > 0 {
		return false, PredCtx{}
	}
	taken, hc := s.h.Predict(brPC, hist)
	ctx := PredCtx{Index: hc.GIndex | uint32(brPC)<<singleHybridIndexBits}
	if hc.GPred {
		ctx.Path |= 1
	}
	if hc.PPred {
		ctx.Path |= 2
	}
	return taken, ctx
}

// Update implements MultiPredictor.
func (s *SingleHybridMBP) Update(ctx PredCtx, taken bool) {
	gi := ctx.Index & (1<<singleHybridIndexBits - 1)
	pc := int(ctx.Index >> singleHybridIndexBits)
	s.h.Update(HybridCtx{
		GIndex: gi, SIndex: gi, PC: pc,
		GPred: ctx.Path&1 != 0, PPred: ctx.Path&2 != 0,
	}, taken)
}

// MaxSlots implements MultiPredictor.
func (s *SingleHybridMBP) MaxSlots() int { return 1 }

// Counters implements MultiPredictor, reporting the wrapped hybrid's
// telemetry.
func (s *SingleHybridMBP) Counters() Counters { return s.h.Counters() }
