package bpred

import (
	"testing"
	"testing/quick"
)

func TestCounter2Saturation(t *testing.T) {
	c := Counter2(0)
	if c.Taken() {
		t.Error("0 should predict not taken")
	}
	c = c.Update(false)
	if c != 0 {
		t.Error("must saturate at 0")
	}
	for i := 0; i < 5; i++ {
		c = c.Update(true)
	}
	if c != 3 || !c.Taken() {
		t.Errorf("counter = %d after 5 increments", c)
	}
	c = c.Update(false)
	if c != 2 || !c.Taken() {
		t.Errorf("counter = %d after one decrement, want 2 (still taken)", c)
	}
}

// Property: a counter always stays within [0,3] and two consecutive
// same-direction updates always make it predict that direction.
func TestCounter2Property(t *testing.T) {
	f := func(start uint8, outcomes []bool) bool {
		c := Counter2(start % 4)
		for _, o := range outcomes {
			c = c.Update(o)
			if c > 3 {
				return false
			}
		}
		if len(outcomes) >= 2 {
			last := outcomes[len(outcomes)-1]
			if outcomes[len(outcomes)-2] == last {
				c2 := c // already updated twice with 'last'
				if c2.Taken() != last {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryPush(t *testing.T) {
	h := History{Bits: 4}
	h.Push(true)
	h.Push(false)
	h.Push(true)
	if h.Reg != 0b101 {
		t.Errorf("history = %b", h.Reg)
	}
	h.Push(true)
	h.Push(true)
	if h.Reg != 0b0111 {
		t.Errorf("history after overflow = %b, want 0111", h.Reg)
	}
}

func TestCounterFor(t *testing.T) {
	cases := []struct {
		slot int
		path uint8
		want int
	}{
		{0, 0, 0}, {0, 3, 0},
		{1, 0, 1}, {1, 1, 2},
		{2, 0b00, 3}, {2, 0b01, 4}, {2, 0b10, 5}, {2, 0b11, 6},
	}
	for _, c := range cases {
		if got := counterFor(c.slot, c.path); got != c.want {
			t.Errorf("counterFor(%d,%b) = %d, want %d", c.slot, c.path, got, c.want)
		}
	}
}

func TestTreeMBPLearnsPattern(t *testing.T) {
	p := NewTreeMBP(1 << 14)
	pc, hist := 100, uint64(0x3a)
	// Train the first slot to taken.
	for i := 0; i < 4; i++ {
		_, ctx := p.Predict(pc, pc, hist, 0, 0)
		p.Update(ctx, true)
	}
	if taken, _ := p.Predict(pc, pc, hist, 0, 0); !taken {
		t.Error("slot 0 did not learn taken")
	}
	// Second slot conditioned on first prediction path.
	for i := 0; i < 4; i++ {
		_, ctx := p.Predict(pc, pc, hist, 1, 1)
		p.Update(ctx, false)
	}
	if taken, _ := p.Predict(pc, pc, hist, 1, 1); taken {
		t.Error("slot 1 path=1 did not learn not-taken")
	}
	// A different path uses a different counter: still cold.
	if taken, _ := p.Predict(pc, pc, hist, 1, 0); taken {
		t.Error("slot 1 path=0 should still be weakly not taken")
	}
	_, ctx := p.Predict(pc, pc, hist, 1, 0)
	p.Update(ctx, true)
	p.Update(ctx, true)
	if taken, _ := p.Predict(pc, pc, hist, 1, 0); !taken {
		t.Error("slot 1 path=0 did not learn independently")
	}
	// Third slot uses counters 3-6.
	for path := uint8(0); path < 4; path++ {
		want := path%2 == 0
		_, c3 := p.Predict(pc, pc, hist, 2, path)
		p.Update(c3, want)
		p.Update(c3, want)
		if got, _ := p.Predict(pc, pc, hist, 2, path); got != want {
			t.Errorf("slot 2 path=%b = %v, want %v", path, got, want)
		}
	}
	if p.MaxSlots() != 3 {
		t.Errorf("MaxSlots = %d", p.MaxSlots())
	}
}

func TestTreeMBPIndexMixesHistory(t *testing.T) {
	p := NewTreeMBP(1 << 14)
	pc := 0x123
	_, a := p.Predict(pc, pc, 0, 0, 0)
	_, b := p.Predict(pc, pc, 0x7fff, 0, 0)
	if a.Index == b.Index {
		t.Error("different histories should map to different entries (gshare)")
	}
}

func TestSplitMBPIndependentTables(t *testing.T) {
	p := NewSplitMBP(1<<16, 1<<14, 1<<13)
	pc, hist := 42, uint64(7)
	// Train slot 0 taken, slot 1 not-taken at the same pc/history.
	for i := 0; i < 4; i++ {
		_, c0 := p.Predict(pc, pc, hist, 0, 0)
		p.Update(c0, true)
		_, c1 := p.Predict(pc, pc, hist, 1, 1)
		p.Update(c1, false)
	}
	if got, _ := p.Predict(pc, pc, hist, 0, 0); !got {
		t.Error("slot 0 not trained")
	}
	if got, _ := p.Predict(pc, pc, hist, 1, 1); got {
		t.Error("slot 1 not trained")
	}
	// Slots beyond 2 clamp to table 2.
	_, c3 := p.Predict(pc, pc, hist, 5, 0)
	if c3.Slot != 2 {
		t.Errorf("slot clamp = %d, want 2", c3.Slot)
	}
	if p.MaxSlots() != 3 {
		t.Errorf("MaxSlots = %d", p.MaxSlots())
	}
}

func TestSplitMBPUpdateClampsSlot(t *testing.T) {
	p := NewSplitMBP(16, 16, 16)
	// Must not panic with an out-of-range slot in the context.
	p.Update(PredCtx{Index: 3, Slot: 9}, true)
}

func TestPAsLearnsAlternation(t *testing.T) {
	p := NewPAs(1<<12, 1<<15)
	pc := 77
	// Alternating branch: T N T N ... PAs learns it via local history.
	for i := 0; i < 64; i++ {
		p.Update(pc, i%2 == 0)
	}
	correct := 0
	for i := 64; i < 96; i++ {
		if p.Predict(pc) == (i%2 == 0) {
			correct++
		}
		p.Update(pc, i%2 == 0)
	}
	if correct < 30 {
		t.Errorf("PAs got %d/32 on alternating pattern", correct)
	}
}

func TestHybridSelectsBetterComponent(t *testing.T) {
	h := NewHybridSized(1<<12, 1<<10, 1<<12)
	pc := 300
	// A strictly alternating branch with constant global history: gshare
	// sees one history and cannot learn it; PAs can. The selector should
	// migrate to PAs.
	for i := 0; i < 200; i++ {
		_, ctx := h.Predict(pc, 0)
		h.Update(ctx, i%2 == 0)
	}
	correct := 0
	for i := 200; i < 264; i++ {
		pred, ctx := h.Predict(pc, 0)
		if pred == (i%2 == 0) {
			correct++
		}
		h.Update(ctx, i%2 == 0)
	}
	if correct < 56 {
		t.Errorf("hybrid got %d/64 on alternating pattern", correct)
	}
}

func TestHybridBiasedBranch(t *testing.T) {
	h := NewHybrid()
	pc := 12
	for i := 0; i < 16; i++ {
		_, ctx := h.Predict(pc, uint64(i))
		h.Update(ctx, true)
	}
	pred, _ := h.Predict(pc, 3)
	if !pred {
		t.Error("hybrid failed on an always-taken branch")
	}
}

func TestIndirectPredictor(t *testing.T) {
	ip := NewIndirectPredictor(1 << 10)
	if _, ok := ip.Predict(55); ok {
		t.Error("cold entry reported valid")
	}
	ip.Update(55, 1234)
	tgt, ok := ip.Predict(55)
	if !ok || tgt != 1234 {
		t.Errorf("predict = (%d,%v)", tgt, ok)
	}
	ip.Update(55, 999)
	if tgt, _ := ip.Predict(55); tgt != 999 {
		t.Errorf("last-target update failed: %d", tgt)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]uint{1: 0, 2: 1, 1024: 10, 1 << 14: 14}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSingleHybridMBPAdapts(t *testing.T) {
	s := NewSingleHybridMBP(NewHybrid())
	if s.MaxSlots() != 1 {
		t.Fatalf("MaxSlots = %d", s.MaxSlots())
	}
	// Slot 0 predictions train through the packed context: an
	// always-taken branch becomes predicted taken.
	brPC := 1234
	for i := 0; i < 8; i++ {
		_, ctx := s.Predict(0, brPC, uint64(i), 0, 0)
		s.Update(ctx, true)
	}
	taken, _ := s.Predict(0, brPC, 3, 0, 0)
	if !taken {
		t.Error("single hybrid did not learn an always-taken branch")
	}
	// The packed context round-trips the branch PC (PAs needs it).
	_, ctx := s.Predict(0, brPC, 0, 0, 0)
	if int(ctx.Index>>singleHybridIndexBits) != brPC {
		t.Errorf("packed pc = %d, want %d", ctx.Index>>singleHybridIndexBits, brPC)
	}
	// Slots beyond 0 yield no prediction.
	if taken, ctx := s.Predict(0, brPC, 0, 1, 0); taken || ctx.Index != 0 {
		t.Error("slot >0 must be inert")
	}
}

func TestSingleHybridMBPAlternating(t *testing.T) {
	// The PAs component (per-branch local history) should learn a strict
	// alternation under constant global history, as the raw hybrid does.
	s := NewSingleHybridMBP(NewHybridSized(1<<15, 1<<10, 1<<12))
	brPC := 77
	for i := 0; i < 200; i++ {
		_, ctx := s.Predict(0, brPC, 0, 0, 0)
		s.Update(ctx, i%2 == 0)
	}
	correct := 0
	for i := 200; i < 264; i++ {
		pred, ctx := s.Predict(0, brPC, 0, 0, 0)
		if pred == (i%2 == 0) {
			correct++
		}
		s.Update(ctx, i%2 == 0)
	}
	if correct < 56 {
		t.Errorf("single hybrid got %d/64 on alternation", correct)
	}
}
