package bpred

// HybridCtx carries update state for the hybrid predictor from fetch to
// retire.
type HybridCtx struct {
	GIndex  uint32 // gshare table index
	SIndex  uint32 // selector index
	PC      int
	GPred   bool
	PPred   bool
	UsedPAs bool
}

// Hybrid is the aggressive single-branch predictor used with the
// instruction-cache-only front end (Section 3): a gshare component with 15
// bits of global history, a PAs component with 15 bits of local history
// and a 4K-entry branch history table, and a 2-bit selector indexed with
// the gshare index.
type Hybrid struct {
	gshare   []Counter2
	gmask    uint32
	selector []Counter2
	pas      *PAs
	ctr      Counters
}

// NewHybrid builds the hybrid predictor with the paper's geometry.
func NewHybrid() *Hybrid {
	return NewHybridSized(1<<15, 1<<12, 1<<15)
}

// NewHybridSized builds a hybrid predictor with a gshare/selector table of
// gsize counters, a PAs branch history table of bhtSize entries, and a PAs
// pattern history table of psize counters.
func NewHybridSized(gsize, bhtSize, psize int) *Hybrid {
	h := &Hybrid{
		gshare:   make([]Counter2, gsize),
		gmask:    uint32(gsize - 1),
		selector: make([]Counter2, gsize),
		pas:      NewPAs(bhtSize, psize),
	}
	for i := range h.gshare {
		h.gshare[i] = weaklyNotTaken
		h.selector[i] = weaklyNotTaken
	}
	return h
}

// Predict returns the hybrid prediction for the branch at pc under the
// given global history.
func (h *Hybrid) Predict(pc int, hist uint64) (bool, HybridCtx) {
	h.ctr.Predictions++
	gi := (uint32(pc) ^ uint32(hist)) & h.gmask
	g := h.gshare[gi].Taken()
	p := h.pas.Predict(pc)
	usePAs := h.selector[gi].Taken()
	pred := g
	if usePAs {
		pred = p
	}
	return pred, HybridCtx{GIndex: gi, SIndex: gi, PC: pc, GPred: g, PPred: p, UsedPAs: usePAs}
}

// Update trains both components and the selector with the branch outcome.
func (h *Hybrid) Update(ctx HybridCtx, taken bool) {
	h.ctr.Updates++
	h.gshare[ctx.GIndex] = h.gshare[ctx.GIndex].Update(taken)
	h.pas.Update(ctx.PC, taken)
	if ctx.GPred != ctx.PPred {
		// Train the selector toward the component that was right.
		h.selector[ctx.SIndex] = h.selector[ctx.SIndex].Update(ctx.PPred == taken)
	}
}

// Counters returns the hybrid's activity telemetry.
func (h *Hybrid) Counters() Counters { return h.ctr }

// PAs is a per-address two-level predictor: a branch history table of
// local histories indexing a shared pattern history table.
type PAs struct {
	bht      []uint32
	bhtMask  uint32
	pht      []Counter2
	phtMask  uint32
	histBits uint
}

// NewPAs builds a PAs predictor with bhtSize local-history entries and a
// pattern history table of phtSize counters (both powers of two).
func NewPAs(bhtSize, phtSize int) *PAs {
	p := &PAs{
		bht:      make([]uint32, bhtSize),
		bhtMask:  uint32(bhtSize - 1),
		pht:      make([]Counter2, phtSize),
		phtMask:  uint32(phtSize - 1),
		histBits: log2(phtSize),
	}
	for i := range p.pht {
		p.pht[i] = weaklyNotTaken
	}
	return p
}

// Predict returns the PAs prediction for the branch at pc.
func (p *PAs) Predict(pc int) bool {
	lh := p.bht[uint32(pc)&p.bhtMask]
	return p.pht[lh&p.phtMask].Taken()
}

// Update trains the pattern entry selected by the current local history and
// then shifts the outcome into the local history.
func (p *PAs) Update(pc int, taken bool) {
	bi := uint32(pc) & p.bhtMask
	lh := p.bht[bi]
	pi := lh & p.phtMask
	p.pht[pi] = p.pht[pi].Update(taken)
	lh <<= 1
	if taken {
		lh |= 1
	}
	p.bht[bi] = lh & ((1 << p.histBits) - 1)
}

// IndirectPredictor predicts indirect-jump targets with a last-target
// table.
type IndirectPredictor struct {
	targets []int
	valid   []bool
	mask    uint32
}

// NewIndirectPredictor builds a last-target table with size entries (a
// power of two).
func NewIndirectPredictor(size int) *IndirectPredictor {
	return &IndirectPredictor{
		targets: make([]int, size),
		valid:   make([]bool, size),
		mask:    uint32(size - 1),
	}
}

// Predict returns the predicted target for the indirect jump at pc and
// whether the table has an entry.
func (ip *IndirectPredictor) Predict(pc int) (int, bool) {
	i := uint32(pc) & ip.mask
	return ip.targets[i], ip.valid[i]
}

// Update records the resolved target.
func (ip *IndirectPredictor) Update(pc, target int) {
	i := uint32(pc) & ip.mask
	ip.targets[i] = target
	ip.valid[i] = true
}
