// Package buildinfo identifies the binary that produced a result: the
// module version (or VCS revision) baked in by the Go linker, via
// runtime/debug.ReadBuildInfo. Every command exposes it behind -version,
// and the simulator records it in run metadata.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version returns the best available version string for this build:
// the module version when built from a tagged module, otherwise the VCS
// revision (suffixed with "+dirty" for modified trees), otherwise
// "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return "devel"
}

// String renders the one-line -version output for the named tool.
func String(tool string) string {
	return fmt.Sprintf("%s %s (%s)", tool, Version(), runtime.Version())
}
