// Package cache models set-associative caches with LRU replacement and the
// two-level memory hierarchy of the paper's experimental machine: small L1
// caches backed by a 1MB unified L2 with 6-cycle latency, backed by memory
// with a minimum 50-cycle latency. Only tags are modelled; data values come
// from the architectural simulator.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
}

// Lines returns the total number of lines in the cache.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Assoc }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%c.LineBytes != 0 {
		return fmt.Errorf("cache %q: size %d not a multiple of line %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	if c.Lines()%c.Assoc != 0 {
		return fmt.Errorf("cache %q: lines %d not a multiple of assoc %d", c.Name, c.Lines(), c.Assoc)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("cache %q: sets %d not a power of two", c.Name, s)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type way struct {
	tag   uint64
	valid bool
	lru   uint64
}

// Cache is a set-associative, LRU, allocate-on-miss tag array.
type Cache struct {
	cfg       Config
	sets      [][]way
	setMask   uint64
	lineShift uint
	clock     uint64
	stats     Stats
}

// New builds a cache from the configuration, which must be valid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg}
	nsets := cfg.Sets()
	c.setMask = uint64(nsets - 1)
	for sh := uint(0); ; sh++ {
		if 1<<sh == cfg.LineBytes {
			c.lineShift = sh
			break
		}
		if 1<<sh > cfg.LineBytes {
			return nil, fmt.Errorf("cache %q: line size %d not a power of two", cfg.Name, cfg.LineBytes)
		}
	}
	backing := make([]way, nsets*cfg.Assoc)
	c.sets = make([][]way, nsets)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns activity counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) locate(addr uint64) (set []way, tag uint64) {
	line := addr >> c.lineShift
	return c.sets[line&c.setMask], line >> 0
}

// Access looks up addr, allocating the line on a miss, and reports whether
// it hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	set, tag := c.locate(addr)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	c.stats.Misses++
	set[victim] = way{tag: tag, valid: true, lru: c.clock}
	return false
}

// Probe reports whether addr is resident without touching LRU state or
// statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.lineShift << c.lineShift
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Latencies of the lower levels of the hierarchy (Section 3 of the paper).
const (
	L2Latency  = 6
	MemLatency = 50
)

// Hierarchy ties first-level caches to a shared L2 and memory, returning
// access latencies beyond an L1 hit.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// access performs an L1 access and walks the lower levels on a miss,
// returning the additional latency beyond an L1 hit.
func (h *Hierarchy) access(l1 *Cache, addr uint64) int {
	if l1.Access(addr) {
		return 0
	}
	if h.L2 == nil || h.L2.Access(addr) {
		return L2Latency
	}
	return L2Latency + MemLatency
}

// FetchInst models an instruction fetch touching addr; the returned latency
// is 0 on an L1I hit, the L2 latency on an L1I miss, and the memory latency
// on an L2 miss.
func (h *Hierarchy) FetchInst(addr uint64) int { return h.access(h.L1I, addr) }

// AccessData models a data access (load or store commit).
func (h *Hierarchy) AccessData(addr uint64) int { return h.access(h.L1D, addr) }

// ProbeInst reports whether the instruction line is resident in L1I
// without side effects.
func (h *Hierarchy) ProbeInst(addr uint64) bool { return h.L1I.Probe(addr) }
