package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Name: "t", SizeBytes: 256, LineBytes: 32, Assoc: 2}
}

func TestConfigGeometry(t *testing.T) {
	c := small()
	if c.Lines() != 8 || c.Sets() != 4 {
		t.Errorf("lines=%d sets=%d", c.Lines(), c.Sets())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "mod", SizeBytes: 100, LineBytes: 32, Assoc: 2},
		{Name: "assoc", SizeBytes: 256, LineBytes: 32, Assoc: 3},
		{Name: "pow2", SizeBytes: 192, LineBytes: 32, Assoc: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted: %+v", c.Name, c)
		}
	}
	if _, err := New(Config{Name: "line", SizeBytes: 240, LineBytes: 30, Assoc: 2}); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(small())
	if c.Access(0x100) {
		t.Error("cold access hit")
	}
	if !c.Access(0x100) {
		t.Error("second access missed")
	}
	if !c.Access(0x11f) {
		t.Error("same-line access missed")
	}
	if c.Access(0x120) {
		t.Error("next line hit cold")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(small()) // 4 sets, 2 ways, 32B lines: set stride = 128B
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.Access(a) // miss, fills way 0
	c.Access(b) // miss, fills way 1
	c.Access(a) // hit: b is now LRU
	c.Access(d) // miss, evicts b
	if !c.Probe(a) {
		t.Error("a evicted; should have stayed (MRU)")
	}
	if c.Probe(b) {
		t.Error("b not evicted; LRU broken")
	}
	if !c.Probe(d) {
		t.Error("d not resident after fill")
	}
}

func TestProbeHasNoSideEffects(t *testing.T) {
	c := MustNew(small())
	if c.Probe(0x40) {
		t.Error("probe hit empty cache")
	}
	st := c.Stats()
	if st.Accesses != 0 {
		t.Errorf("probe counted as access: %+v", st)
	}
	if c.Access(0x40) {
		t.Error("probe must not allocate")
	}
}

func TestReset(t *testing.T) {
	c := MustNew(small())
	c.Access(0x40)
	c.Reset()
	if c.Probe(0x40) {
		t.Error("line survived reset")
	}
	if st := c.Stats(); st.Accesses != 0 || st.Misses != 0 {
		t.Errorf("stats survived reset: %+v", st)
	}
}

func TestLineAddr(t *testing.T) {
	c := MustNew(small())
	if c.LineAddr(0x15) != 0 || c.LineAddr(0x3f) != 0x20 {
		t.Error("LineAddr misaligned")
	}
	if c.LineBytes() != 32 {
		t.Errorf("LineBytes = %d", c.LineBytes())
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty miss rate should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

// Property: a cache never reports more misses than accesses, and an access
// immediately repeated always hits.
func TestAccessRepeatProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := MustNew(Config{Name: "p", SizeBytes: 1024, LineBytes: 64, Assoc: 4})
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false
			}
		}
		st := c.Stats()
		return st.Misses <= st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the working set fits, so after a warmup pass everything hits.
func TestWorkingSetProperty(t *testing.T) {
	c := MustNew(Config{Name: "w", SizeBytes: 4096, LineBytes: 64, Assoc: 4})
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			hit := c.Access(addr)
			if pass == 1 && !hit {
				t.Fatalf("addr %#x missed on warm pass", addr)
			}
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := &Hierarchy{
		L1I: MustNew(Config{Name: "l1i", SizeBytes: 4096, LineBytes: 64, Assoc: 4}),
		L1D: MustNew(Config{Name: "l1d", SizeBytes: 4096, LineBytes: 64, Assoc: 4}),
		L2:  MustNew(Config{Name: "l2", SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8}),
	}
	// Cold: miss everywhere -> L2 + memory.
	if lat := h.FetchInst(0); lat != L2Latency+MemLatency {
		t.Errorf("cold fetch latency = %d", lat)
	}
	// Warm L1.
	if lat := h.FetchInst(0); lat != 0 {
		t.Errorf("warm fetch latency = %d", lat)
	}
	// Data address in L2 only (evict from a tiny L1 by conflict): first
	// access cold, second through L2 after L1 eviction.
	if lat := h.AccessData(1 << 16); lat != L2Latency+MemLatency {
		t.Errorf("cold data latency = %d", lat)
	}
	// Evict from L1D (4 ways per set): access 5 conflicting lines.
	for i := 1; i <= 5; i++ {
		h.AccessData(uint64(1<<16 + i*4096))
	}
	if lat := h.AccessData(1 << 16); lat != L2Latency {
		t.Errorf("L2-resident latency = %d, want %d", lat, L2Latency)
	}
}

func TestHierarchyNilL2(t *testing.T) {
	h := &Hierarchy{L1I: MustNew(Config{Name: "l1i", SizeBytes: 4096, LineBytes: 64, Assoc: 4})}
	if lat := h.FetchInst(0); lat != L2Latency {
		t.Errorf("nil L2 miss latency = %d, want %d", lat, L2Latency)
	}
}

func TestProbeInst(t *testing.T) {
	h := &Hierarchy{L1I: MustNew(Config{Name: "l1i", SizeBytes: 4096, LineBytes: 64, Assoc: 4})}
	if h.ProbeInst(0x40) {
		t.Error("cold probe hit")
	}
	h.FetchInst(0x40)
	if !h.ProbeInst(0x40) {
		t.Error("warm probe missed")
	}
}

// MustNew is a test helper that builds a cache from a known-good config.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// TestNewRejectsBadGeometry pins the error path that replaced the
// panicking constructor, including the line-size power-of-two rule that
// Validate now covers on New's behalf.
func TestNewRejectsBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Name: "neg", SizeBytes: -1, LineBytes: 32, Assoc: 2},
		{Name: "line", SizeBytes: 1024, LineBytes: 48, Assoc: 2}, // not a power of two
		{Name: "mult", SizeBytes: 1000, LineBytes: 64, Assoc: 2},
		{Name: "assoc", SizeBytes: 1024, LineBytes: 64, Assoc: 3},
		{Name: "sets", SizeBytes: 1536, LineBytes: 64, Assoc: 2}, // 12 sets
	} {
		if c, err := New(cfg); err == nil || c != nil {
			t.Errorf("New(%+v) = %v, %v; want nil, error", cfg, c, err)
		}
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a geometry New rejects", cfg)
		}
	}
}
