package cache

import (
	"math/rand"
	"testing"
)

// refCache is a deliberately naive set-associative LRU cache used as a
// behavioural reference: each set is an ordered slice, most recent first.
type refCache struct {
	sets      map[uint64][]uint64
	assoc     int
	lineShift uint
	setMask   uint64
}

func newRef(cfg Config) *refCache {
	sh := uint(0)
	for 1<<sh < cfg.LineBytes {
		sh++
	}
	return &refCache{
		sets:      make(map[uint64][]uint64),
		assoc:     cfg.Assoc,
		lineShift: sh,
		setMask:   uint64(cfg.Sets() - 1),
	}
}

func (r *refCache) access(addr uint64) bool {
	line := addr >> r.lineShift
	set := line & r.setMask
	tags := r.sets[set]
	for i, t := range tags {
		if t == line {
			// Move to front.
			copy(tags[1:i+1], tags[:i])
			tags[0] = line
			return true
		}
	}
	tags = append([]uint64{line}, tags...)
	if len(tags) > r.assoc {
		tags = tags[:r.assoc]
	}
	r.sets[set] = tags
	return false
}

// TestCacheMatchesReferenceModel drives the production cache and the naive
// reference with the same random access stream and requires identical
// hit/miss behaviour on every access.
func TestCacheMatchesReferenceModel(t *testing.T) {
	cfgs := []Config{
		{Name: "dm", SizeBytes: 1024, LineBytes: 32, Assoc: 1},
		{Name: "2w", SizeBytes: 2048, LineBytes: 64, Assoc: 2},
		{Name: "4w", SizeBytes: 4096, LineBytes: 64, Assoc: 4},
		{Name: "full", SizeBytes: 512, LineBytes: 64, Assoc: 8},
	}
	rnd := rand.New(rand.NewSource(3))
	for _, cfg := range cfgs {
		c := MustNew(cfg)
		ref := newRef(cfg)
		// A mix of hot lines (locality) and cold misses.
		hot := make([]uint64, 16)
		for i := range hot {
			hot[i] = uint64(rnd.Intn(1 << 16))
		}
		for i := 0; i < 50000; i++ {
			var addr uint64
			if rnd.Intn(3) > 0 {
				addr = hot[rnd.Intn(len(hot))] + uint64(rnd.Intn(64))
			} else {
				addr = uint64(rnd.Intn(1 << 18))
			}
			got := c.Access(addr)
			want := ref.access(addr)
			if got != want {
				t.Fatalf("%s: access %d addr %#x: got hit=%v, reference %v",
					cfg.Name, i, addr, got, want)
			}
		}
		st := c.Stats()
		if st.Accesses != 50000 {
			t.Errorf("%s: accesses = %d", cfg.Name, st.Accesses)
		}
	}
}
