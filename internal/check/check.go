// Package check is the simulator's opt-in self-verification layer
// (sim.Config.Check, tcsim -check, tcbench -check). It enforces three
// families of properties while a detailed run executes:
//
//  1. Lockstep differential execution: a functional reference model (the
//     same exec.State machinery the fast-forward path uses) runs in
//     parallel with the detailed engine. Every committed instruction is
//     compared against the reference — PC, branch direction and target,
//     memory effect, destination value — and the first divergence is
//     reported with the run's config hash so it can be replayed.
//  2. Structural invariants: the paper's segment/promotion/packing
//     contract, asserted on every fill-unit finalize and every
//     trace-cache hit — at most Fill.MaxInsts instructions and
//     Fill.MaxBranches non-promoted conditional branches per segment,
//     promoted branches carry an embedded prediction and never consume a
//     predictor slot, packing splits blocks between instructions (never
//     through one) and cost-regulated packing fires only under its two
//     trigger conditions, path continuity and code-image agreement of
//     every segment and fetched bundle.
//  3. Conservation identities at end of run: fetch-cycle buckets sum to
//     the total measured cycles (within a documented slack, see below),
//     trace-cache hits+misses equal lookups, the measured retired count
//     equals the lockstep commit count (hence IPC == committed/cycles),
//     and the trace cache's incremental live-promoted-branch counter
//     (promotions inserted minus demotions/evictions) equals a full
//     recount of resident promoted branches.
//
// Violations are recorded as structured Violation values and emitted on
// the observability bus (obs.KindCheckViolation); the checker never
// panics. The simulator exposes them via Simulator.CheckViolations.
//
// # Documented approximations
//
// Rules listed in Approximations are checked with an explicit tolerance
// or deliberately relaxed; each entry records why. They are suppressions
// in the sense of the self-check contract: a deviation inside the
// documented envelope is not a violation.
package check

import (
	"fmt"
	"strings"

	"tracecache/internal/core"
	"tracecache/internal/exec"
	"tracecache/internal/fetch"
	"tracecache/internal/isa"
	"tracecache/internal/obs"
	"tracecache/internal/program"
	"tracecache/internal/stats"
)

// Layer identifies which verification layer a violation came from.
type Layer uint8

// Verification layers.
const (
	// LayerLockstep is the differential reference-model comparison.
	LayerLockstep Layer = iota
	// LayerStructural is the segment/promotion/packing contract.
	LayerStructural
	// LayerConservation is the end-of-run statistics identities.
	LayerConservation
	// LayerReplay is the replay-fidelity comparison: a front-end-only
	// replay of a recorded retired stream against the detailed run that
	// produced it (CompareReplay).
	LayerReplay
	// LayerSampling covers the sampled execution mode: per-run phase
	// conservation identities (SamplingAudit) and the sampled-vs-detailed
	// fidelity comparison (CompareSampled).
	LayerSampling
)

var layerNames = [...]string{"lockstep", "structural", "conservation", "replay", "sampling"}

// String names the layer.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Violation is one self-check failure. Violations are diagnostic values:
// producing one never stops the run.
type Violation struct {
	Layer  Layer
	Rule   string // stable rule identifier, e.g. "lockstep/next-pc"
	Cycle  uint64 // simulator cycle when detected (0 if outside the loop)
	Seq    uint64 // dynamic instruction sequence number, when applicable
	PC     int    // instruction or fetch address, when applicable
	Detail string // human-readable expected-vs-got
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: cycle=%d seq=%d pc=%d: %s",
		v.Layer, v.Rule, v.Cycle, v.Seq, v.PC, v.Detail)
}

// Approximations documents the rules that are checked with an explicit
// tolerance, and why exact equality is not the contract. See the package
// comment.
var Approximations = map[string]string{
	"conservation/cycle-sum": "fetch-cycle buckets are charged when a fetch record " +
		"finalizes, so records still in flight at the end of the run, records that " +
		"straddle the warmup boundary, records released without classification when " +
		"a recovery empties the inject queue, and the final halt cycle each shift the " +
		"sum by at most one cycle; the checker bounds the drift by the exact count of " +
		"those events instead of requiring equality",
	"structural/costreg-trigger": "packingWorthwhile compares unused slots against the " +
		"pending segment's current length (unused*2 >= len(pending)), not against half " +
		"the segment capacity; the checker verifies the implemented rule, which is what " +
		"every committed number was produced with (see the fill-unit tests pinning both " +
		"trigger conditions)",
	"replay/counts": "replay cuts the warmup and budget boundaries at fetch-bundle " +
		"granularity while the detailed machine cuts them at retire-burst granularity, " +
		"so the near-exact counters (retired, branch/jump/return populations, promoted " +
		"faults) carry an absolute slack of a few bundles rather than exact equality",
	"replay/rates": "the replay issues no wrong-path fetches and trains predictors at " +
		"replay commit rather than retire-lagged, so effective fetch rate and mispredict " +
		"rate are bounded within documented percentage envelopes; the trace cache hit " +
		"rate carries the widest bound because the detailed machine's lookup population " +
		"includes every wrong-path fetch (a different denominator, measured 11-27pp " +
		"apart on the standard workloads)",
}

// maxViolations bounds the recorded violation list; Total keeps counting
// beyond it.
const maxViolations = 64

// Params configures a Checker.
type Params struct {
	Prog *program.Program
	// Fill is the fill-unit configuration when a trace cache front end is
	// in use (HasTC); the segment contract is derived from it.
	Fill  core.FillConfig
	HasTC bool
	// FetchWidth bounds delivered bundles; MaxSlots bounds predictor
	// slots consumed per fetch.
	FetchWidth int
	MaxSlots   int
	// ConfigHash is the run's sim.Config.Hash, embedded in divergence
	// reports so they are replayable.
	ConfigHash string
}

// Commit describes one committed instruction for lockstep comparison.
type Commit struct {
	Cycle   uint64
	Seq     uint64
	PC      int
	Taken   bool
	NextPC  int
	MemAddr uint64
	MemVal  int64
	HasDest bool
	DestReg isa.Reg
	DestVal int64
	Halted  bool
}

// Final carries the end-of-run state for the conservation identities.
type Final struct {
	Run *stats.Run
	// LiveRecords is the number of unfinalized live fetch records at the
	// end of the run; each owns at most one unclassified cycle.
	LiveRecords int
	// EngineErr, when non-nil, is an execution-core invariant failure.
	EngineErr error
	// Trace cache state (valid when Params.HasTC).
	TCStats          core.TraceCacheStats
	LivePromoted     int
	ResidentPromoted int
}

// Checker verifies one simulation. It is not safe for concurrent use; the
// owning simulator drives it from its single-threaded loop.
type Checker struct {
	p   Params
	bus *obs.Bus

	// Lockstep reference model.
	ref      *exec.State
	refPC    int
	diverged bool

	// Counters for the conservation identities.
	commits      uint64 // detailed committed instructions observed
	measuredBase uint64 // commits when measurement started
	liveAtReset  int    // unfinalized live records at the warmup boundary
	dropped      int    // records released without classification
	fetches      uint64 // fetch-engine bundles observed
	tcHits       uint64
	tcMisses     uint64

	violations []Violation
	total      int
	suppressed map[string]bool
}

// New builds a checker with a fresh reference model at the program entry.
func New(p Params) *Checker {
	return &Checker{
		p:          p,
		ref:        exec.NewState(p.Prog),
		refPC:      p.Prog.Entry,
		suppressed: map[string]bool{},
	}
}

// SetObserver attaches an event bus; every recorded violation is also
// emitted as an obs.KindCheckViolation event (V1 = layer).
func (c *Checker) SetObserver(b *obs.Bus) { c.bus = b }

// Suppress disables one rule (by its stable identifier). Used by harnesses
// exploring configurations where a documented approximation is expected to
// be exceeded.
func (c *Checker) Suppress(rule string) { c.suppressed[rule] = true }

// Violations returns the recorded violations (capped; see Total).
func (c *Checker) Violations() []Violation { return c.violations }

// Total returns the number of violations detected, including any beyond
// the recording cap.
func (c *Checker) Total() int { return c.total }

// Commits returns the number of committed instructions compared against
// the reference model.
func (c *Checker) Commits() uint64 { return c.commits }

// Report renders the violations for humans; empty when the run was clean.
func (c *Checker) Report() string {
	if c.total == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "self-check: %d violation(s), config %s\n", c.total, c.p.ConfigHash)
	for _, v := range c.violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if c.total > len(c.violations) {
		fmt.Fprintf(&b, "  ... and %d more\n", c.total-len(c.violations))
	}
	return b.String()
}

func (c *Checker) record(v Violation) {
	if c.suppressed[v.Rule] {
		return
	}
	c.total++
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, v)
	}
	if c.bus.Enabled(obs.KindCheckViolation) {
		c.bus.Emit(obs.Event{
			Kind: obs.KindCheckViolation, Cycle: v.Cycle, PC: v.PC,
			V1: uint64(v.Layer), V2: v.Seq,
		})
	}
}

func (c *Checker) lockstepf(cy, seq uint64, pc int, rule, format string, args ...any) {
	c.record(Violation{
		Layer: LayerLockstep, Rule: rule, Cycle: cy, Seq: seq, PC: pc,
		Detail: fmt.Sprintf(format, args...) + " (replay: config " + c.p.ConfigHash + ")",
	})
}

func (c *Checker) structuralf(pc int, rule, format string, args ...any) {
	c.record(Violation{
		Layer: LayerStructural, Rule: rule, PC: pc,
		Detail: fmt.Sprintf(format, args...),
	})
}

// ---------------------------------------------------------------- lockstep

// FastForward advances the reference model by up to n committed
// instructions, mirroring the simulator's functional fast-forward
// (stepping stops at a halt without consuming it), then verifies the
// reference resumed at the same PC the simulator will fetch from.
func (c *Checker) FastForward(n uint64, simPC int) {
	var done uint64
	for done < n {
		info := c.ref.StepAt(c.refPC)
		if info.Halted {
			break
		}
		done++
		c.ref.CompactTo(c.ref.Checkpoint())
		c.refPC = info.NextPC
	}
	if c.refPC != simPC && !c.diverged {
		c.diverged = true
		c.lockstepf(0, 0, simPC, "lockstep/ffwd-pc",
			"after fast-forward of %d insts: reference at pc %d, simulator at pc %d",
			n, c.refPC, simPC)
	}
}

// Restore resets the reference model from the same architectural
// checkpoint the simulator restored.
func (c *Checker) Restore(restore func(*exec.State) error, pc int) error {
	if err := restore(c.ref); err != nil {
		return err
	}
	c.refPC = pc
	return nil
}

// Commit compares one committed instruction against the reference model.
// After the first divergence the comparison stops (everything downstream
// of a divergence would mismatch); the violation records where the two
// machines split.
func (c *Checker) Commit(cm Commit) {
	c.commits++
	if c.diverged {
		return
	}
	if cm.PC != c.refPC {
		c.diverged = true
		c.lockstepf(cm.Cycle, cm.Seq, cm.PC, "lockstep/pc",
			"committed pc %d, reference expects %d", cm.PC, c.refPC)
		return
	}
	info := c.ref.StepAt(c.refPC)
	switch {
	case cm.Halted != info.Halted:
		c.diverged = true
		c.lockstepf(cm.Cycle, cm.Seq, cm.PC, "lockstep/halt",
			"committed halted=%v, reference halted=%v", cm.Halted, info.Halted)
	case info.Inst.IsCondBranch() && cm.Taken != info.Taken:
		c.diverged = true
		c.lockstepf(cm.Cycle, cm.Seq, cm.PC, "lockstep/direction",
			"committed taken=%v, reference taken=%v", cm.Taken, info.Taken)
	case cm.NextPC != info.NextPC:
		c.diverged = true
		c.lockstepf(cm.Cycle, cm.Seq, cm.PC, "lockstep/next-pc",
			"committed next pc %d, reference next pc %d", cm.NextPC, info.NextPC)
	case info.Inst.IsMem() && cm.MemAddr != info.MemAddr:
		c.diverged = true
		c.lockstepf(cm.Cycle, cm.Seq, cm.PC, "lockstep/mem-addr",
			"committed effective address %d, reference %d", cm.MemAddr, info.MemAddr)
	case info.Inst.IsMem() && cm.MemVal != info.Value:
		c.diverged = true
		c.lockstepf(cm.Cycle, cm.Seq, cm.PC, "lockstep/mem-value",
			"committed memory value %d, reference %d", cm.MemVal, info.Value)
	case cm.HasDest && cm.DestVal != c.ref.Regs[cm.DestReg]:
		c.diverged = true
		c.lockstepf(cm.Cycle, cm.Seq, cm.PC, "lockstep/dest-value",
			"committed r%d=%d, reference r%d=%d",
			cm.DestReg, cm.DestVal, cm.DestReg, c.ref.Regs[cm.DestReg])
	}
	// The committed path never rolls back: run with an empty undo log.
	c.ref.CompactTo(c.ref.Checkpoint())
	c.refPC = info.NextPC
}

// -------------------------------------------------------------- structural

// OnSegment verifies the segment contract on a fill-unit finalize.
func (c *Checker) OnSegment(seg *core.Segment) {
	n := seg.Len()
	if n == 0 || n > c.p.Fill.MaxInsts {
		c.structuralf(seg.Start, "structural/segment-size",
			"segment holds %d instructions, limit %d", n, c.p.Fill.MaxInsts)
	}
	if n > 0 && seg.Start != seg.Insts[0].PC {
		c.structuralf(seg.Start, "structural/segment-start",
			"segment start %d but first instruction at %d", seg.Start, seg.Insts[0].PC)
	}
	branches := 0
	for i, si := range seg.Insts {
		if si.PC < 0 || si.PC >= len(c.p.Prog.Code) {
			c.structuralf(si.PC, "structural/segment-image",
				"segment instruction %d outside the code image", si.PC)
			continue
		}
		if c.p.Prog.Code[si.PC] != si.Inst {
			c.structuralf(si.PC, "structural/segment-image",
				"segment instruction at %d disagrees with the code image", si.PC)
		}
		if si.Promoted {
			if !si.Inst.IsCondBranch() {
				c.structuralf(si.PC, "structural/promoted-not-branch",
					"promoted non-branch %v", si.Inst.Op)
			}
			if c.p.Fill.PromoteThreshold == 0 && c.p.Fill.StaticPromotions == nil {
				c.structuralf(si.PC, "structural/promotion-disabled",
					"promoted branch embedded with promotion disabled")
			}
		}
		if si.Inst.IsCondBranch() && !si.Promoted {
			branches++
		}
		if si.Inst.TerminatesSegment() && i != n-1 {
			c.structuralf(si.PC, "structural/terminator-mid-segment",
				"segment-terminating %v at position %d of %d", si.Inst.Op, i, n)
		}
		if i < n-1 {
			if next, ok := si.NextPC(); ok && next != seg.Insts[i+1].PC {
				c.structuralf(si.PC, "structural/path-continuity",
					"embedded path continues at %d but segment holds %d",
					next, seg.Insts[i+1].PC)
			}
		}
	}
	if branches != seg.NumBranches() {
		c.structuralf(seg.Start, "structural/branch-count",
			"segment records %d non-promoted branches, recount %d",
			seg.NumBranches(), branches)
	}
	if branches > c.p.Fill.MaxBranches {
		c.structuralf(seg.Start, "structural/max-branches",
			"%d non-promoted branches, limit %d", branches, c.p.Fill.MaxBranches)
	}
	switch seg.Reason {
	case core.FinalMaxSize:
		if n != c.p.Fill.MaxInsts {
			c.structuralf(seg.Start, "structural/finalize-reason",
				"finalized for size with %d of %d instructions", n, c.p.Fill.MaxInsts)
		}
	case core.FinalMaxBranches:
		if branches != c.p.Fill.MaxBranches {
			c.structuralf(seg.Start, "structural/finalize-reason",
				"finalized for branches with %d of %d", branches, c.p.Fill.MaxBranches)
		}
	case core.FinalTerminator:
		if n > 0 && !seg.Insts[n-1].Inst.TerminatesSegment() {
			c.structuralf(seg.Start, "structural/finalize-reason",
				"finalized for terminator but last op is %v", seg.Insts[n-1].Inst.Op)
		}
	}
}

// OnPack verifies one packing split against the configured policy.
// pending is the pending segment before the packed prefix is appended,
// space the free slots, take the instructions packed, blockLen the length
// of the block being split.
func (c *Checker) OnPack(pending []core.SegInst, space, take, blockLen int) {
	pc := 0
	if len(pending) > 0 {
		pc = pending[0].PC
	}
	if take <= 0 || take > space {
		c.structuralf(pc, "structural/pack-bounds",
			"packed %d instructions into %d free slots", take, space)
		return
	}
	switch c.p.Fill.Packing {
	case core.PackAtomic:
		// Atomic packing splits only blocks that cannot fit in any
		// segment, and then fills every slot.
		if blockLen <= c.p.Fill.MaxInsts {
			c.structuralf(pc, "structural/pack-atomic",
				"atomic policy split a %d-instruction block (segment size %d)",
				blockLen, c.p.Fill.MaxInsts)
		} else if take != space {
			c.structuralf(pc, "structural/pack-atomic",
				"oversized-block split packed %d of %d free slots", take, space)
		}
	case core.PackUnregulated:
		if take != space {
			c.structuralf(pc, "structural/pack-unregulated",
				"unregulated packing left %d free slots", space-take)
		}
	case core.PackChunk2, core.PackChunk4:
		chunk := 2
		if c.p.Fill.Packing == core.PackChunk4 {
			chunk = 4
		}
		if take%chunk != 0 || take != space/chunk*chunk {
			c.structuralf(pc, "structural/pack-chunk",
				"chunk-%d packing took %d of %d free slots", chunk, take, space)
		}
	case core.PackCostRegulated:
		// Re-derive the implemented trigger conditions independently (see
		// Approximations["structural/costreg-trigger"]).
		if !costRegWorthwhile(pending, c.p.Fill.MaxInsts) &&
			!(blockLen > c.p.Fill.MaxInsts && len(pending) == 0) {
			c.structuralf(pc, "structural/costreg-trigger",
				"cost-regulated packing fired with %d pending instructions and a %d-instruction block",
				len(pending), blockLen)
		} else if take != space {
			c.structuralf(pc, "structural/costreg-trigger",
				"cost-regulated packing took %d of %d free slots", take, space)
		}
	}
}

// costRegWorthwhile re-derives the cost-regulated trigger: unused slots at
// least half the pending length, or a tight backward branch in the pending
// segment. Kept independent of the fill unit's own packingWorthwhile so
// the check is a genuine cross-implementation.
func costRegWorthwhile(pending []core.SegInst, maxInsts int) bool {
	if (maxInsts-len(pending))*2 >= len(pending) {
		return true
	}
	for _, si := range pending {
		if si.Inst.Op == isa.OpBr && si.Inst.Target <= si.PC &&
			si.PC-si.Inst.Target <= core.TightLoopDisplacement {
			return true
		}
	}
	return false
}

// OnBundle verifies one delivered fetch bundle and counts it toward the
// trace-cache conservation identities.
func (c *Checker) OnBundle(b *fetch.Bundle) {
	c.fetches++
	if b.FromTC {
		c.tcHits++
	}
	if b.TCMiss {
		c.tcMisses++
	}
	if b.FromTC && b.TCMiss {
		c.structuralf(b.NextPC, "structural/bundle-hit-miss",
			"bundle flagged both a trace-cache hit and a miss")
	}
	slots := 0
	inactiveSeen := false
	for i := range b.Insts {
		fi := &b.Insts[i]
		if fi.PC < 0 || fi.PC >= len(c.p.Prog.Code) {
			c.structuralf(fi.PC, "structural/bundle-image",
				"fetched instruction %d outside the code image", fi.PC)
			continue
		}
		if c.p.Prog.Code[fi.PC] != fi.Inst {
			c.structuralf(fi.PC, "structural/bundle-image",
				"fetched instruction at %d disagrees with the code image", fi.PC)
		}
		if fi.UsedSlot || fi.UsedHybrid {
			slots++
		}
		if fi.Promoted && (fi.UsedSlot || fi.UsedHybrid) {
			c.structuralf(fi.PC, "structural/promoted-used-predictor",
				"promoted branch consumed a dynamic prediction")
		}
		if fi.Inactive {
			inactiveSeen = true
		} else if inactiveSeen {
			c.structuralf(fi.PC, "structural/inactive-suffix",
				"active instruction after the inactive suffix began")
		}
	}
	if b.FromTC {
		if len(b.Insts) > c.p.Fill.MaxInsts {
			c.structuralf(b.Insts[0].PC, "structural/bundle-size",
				"trace-cache bundle of %d instructions, segment limit %d",
				len(b.Insts), c.p.Fill.MaxInsts)
		}
		unpromoted := 0
		for i := range b.Insts {
			if b.Insts[i].Inst.IsCondBranch() && !b.Insts[i].Promoted {
				unpromoted++
			}
		}
		if unpromoted > c.p.Fill.MaxBranches {
			c.structuralf(b.Insts[0].PC, "structural/bundle-branches",
				"trace-cache bundle holds %d non-promoted branches, limit %d",
				unpromoted, c.p.Fill.MaxBranches)
		}
	}
	if b.PredsUsed != slots || slots > c.p.MaxSlots {
		pc := 0
		if len(b.Insts) > 0 {
			pc = b.Insts[0].PC
		}
		c.structuralf(pc, "structural/preds-used",
			"bundle reports %d predictions, %d slot consumers, predictor provides %d",
			b.PredsUsed, slots, c.p.MaxSlots)
	}
}

// ------------------------------------------------------------ conservation

// MarkMeasureStart notes the warmup boundary: measured commits are counted
// from here, and liveRecords unfinalized fetch records may classify cycles
// across the boundary.
func (c *Checker) MarkMeasureStart(liveRecords int) {
	c.measuredBase = c.commits
	c.liveAtReset = liveRecords
}

// OnRecordDropped notes a fetch record released without classifying its
// delivery cycle (a recovery emptied the inject queue it was feeding); the
// cycle-sum identity widens by one.
func (c *Checker) OnRecordDropped() { c.dropped++ }

// Finalize verifies the end-of-run conservation identities.
func (c *Checker) Finalize(f Final) {
	run := f.Run
	var sum uint64
	for _, v := range run.Cycle {
		sum += v
	}
	// See Approximations["conservation/cycle-sum"] for the slack terms.
	slack := uint64(f.LiveRecords + c.liveAtReset + c.dropped + 2)
	var drift uint64
	if sum > run.Cycles {
		drift = sum - run.Cycles
	} else {
		drift = run.Cycles - sum
	}
	if drift > slack {
		c.record(Violation{
			Layer: LayerConservation, Rule: "conservation/cycle-sum",
			Detail: fmt.Sprintf("cycle buckets sum to %d, measured cycles %d (drift %d > slack %d)",
				sum, run.Cycles, drift, slack),
		})
	}
	if measured := c.commits - c.measuredBase; measured != run.Retired {
		c.record(Violation{
			Layer: LayerConservation, Rule: "conservation/retired",
			Detail: fmt.Sprintf("lockstep observed %d measured commits, statistics report %d retired",
				measured, run.Retired),
		})
	}
	if f.EngineErr != nil {
		c.record(Violation{
			Layer: LayerConservation, Rule: "conservation/engine-window",
			Detail: f.EngineErr.Error(),
		})
	}
	if !c.p.HasTC {
		return
	}
	st := f.TCStats
	if c.tcHits+c.tcMisses != c.fetches {
		c.record(Violation{
			Layer: LayerConservation, Rule: "conservation/tc-hits-misses",
			Detail: fmt.Sprintf("%d hits + %d misses != %d fetches",
				c.tcHits, c.tcMisses, c.fetches),
		})
	}
	if st.Lookups != c.fetches || st.Hits != c.tcHits {
		c.record(Violation{
			Layer: LayerConservation, Rule: "conservation/tc-lookups",
			Detail: fmt.Sprintf("trace cache counted %d lookups/%d hits, fetch stream delivered %d/%d",
				st.Lookups, st.Hits, c.fetches, c.tcHits),
		})
	}
	if f.LivePromoted != f.ResidentPromoted {
		c.record(Violation{
			Layer: LayerConservation, Rule: "conservation/live-promoted",
			Detail: fmt.Sprintf("incremental promoted-branch count %d, resident recount %d",
				f.LivePromoted, f.ResidentPromoted),
		})
	}
}
