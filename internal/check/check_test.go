package check_test

import (
	"strings"
	"testing"

	"tracecache/internal/check"
	"tracecache/internal/core"
	"tracecache/internal/isa"
	"tracecache/internal/program"
	"tracecache/internal/stats"
)

// testProgram builds a tiny program with a known image: a counted loop
// followed by a halt.
func testProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("check-test")
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 10})
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 2, Imm: 0})
	b.Here("loop")
	b.Emit(isa.Inst{Op: isa.OpAdd, Rd: 2, Rs1: 2, Rs2: 1})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: 1, Rs2: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testChecker(t *testing.T, fill core.FillConfig) *check.Checker {
	t.Helper()
	return check.New(check.Params{
		Prog:       testProgram(t),
		Fill:       fill,
		HasTC:      true,
		FetchWidth: 16,
		MaxSlots:   3,
		ConfigHash: "testhash",
	})
}

// seg builds a segment from consecutive instructions of the program
// image, starting at start.
func seg(p *program.Program, start, n int, reason core.FinalizeReason) *core.Segment {
	s := &core.Segment{Start: start, Reason: reason}
	for pc := start; pc < start+n; pc++ {
		s.Insts = append(s.Insts, core.SegInst{PC: pc, Inst: p.Code[pc]})
	}
	return s
}

func TestViolationString(t *testing.T) {
	v := check.Violation{
		Layer: check.LayerLockstep, Rule: "lockstep/pc",
		Cycle: 7, Seq: 3, PC: 42, Detail: "boom",
	}
	s := v.String()
	for _, want := range []string{"lockstep", "lockstep/pc", "42", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestOnSegmentCleanAccepted(t *testing.T) {
	c := testChecker(t, core.DefaultFillConfig(core.PackAtomic, 0))
	p := testProgram(t)
	// Instructions 0..3 are straight-line (the branch at 4 would end the
	// path); a genuine atomic segment.
	c.OnSegment(seg(p, 0, 4, core.FinalAtomic))
	if c.Total() != 0 {
		t.Fatalf("clean segment rejected:\n%s", c.Report())
	}
}

func TestOnSegmentViolations(t *testing.T) {
	p := testProgram(t)
	cases := []struct {
		name string
		fill core.FillConfig
		seg  func() *core.Segment
		rule string
	}{
		{"empty", core.DefaultFillConfig(core.PackAtomic, 0),
			func() *core.Segment { return &core.Segment{} },
			"structural/segment-size"},
		{"oversize", core.FillConfig{MaxInsts: 2, MaxBranches: 3},
			func() *core.Segment { return seg(p, 0, 4, core.FinalAtomic) },
			"structural/segment-size"},
		{"wrong start", core.DefaultFillConfig(core.PackAtomic, 0),
			func() *core.Segment {
				s := seg(p, 0, 3, core.FinalAtomic)
				s.Start = 1
				return s
			},
			"structural/segment-start"},
		{"image mismatch", core.DefaultFillConfig(core.PackAtomic, 0),
			func() *core.Segment {
				s := seg(p, 0, 3, core.FinalAtomic)
				s.Insts[1].Inst = isa.Inst{Op: isa.OpSub, Rd: 9}
				return s
			},
			"structural/segment-image"},
		{"outside image", core.DefaultFillConfig(core.PackAtomic, 0),
			func() *core.Segment {
				s := seg(p, 0, 3, core.FinalAtomic)
				s.Insts[2].PC = len(p.Code) + 5
				return s
			},
			"structural/segment-image"},
		{"promoted non-branch", core.DefaultFillConfig(core.PackAtomic, 64),
			func() *core.Segment {
				s := seg(p, 0, 3, core.FinalAtomic)
				s.Insts[0].Promoted = true
				return s
			},
			"structural/promoted-not-branch"},
		{"promotion disabled", core.DefaultFillConfig(core.PackAtomic, 0),
			func() *core.Segment {
				s := seg(p, 2, 3, core.FinalAtomic)
				s.Insts[2].Promoted = true // the loop branch at pc 4
				s.Insts[2].Taken = true
				return s
			},
			"structural/promotion-disabled"},
		{"path discontinuity", core.DefaultFillConfig(core.PackAtomic, 0),
			func() *core.Segment {
				s := seg(p, 0, 3, core.FinalAtomic)
				s.Insts[1].PC = 3 // 0 -> 3 skips pc 1
				s.Insts[1].Inst = p.Code[3]
				return s
			},
			"structural/path-continuity"},
		{"size reason without full segment", core.DefaultFillConfig(core.PackAtomic, 0),
			func() *core.Segment { return seg(p, 0, 3, core.FinalMaxSize) },
			"structural/finalize-reason"},
	}
	for _, tc := range cases {
		c := check.New(check.Params{
			Prog: p, Fill: tc.fill, HasTC: true, FetchWidth: 16,
			MaxSlots: 3, ConfigHash: "testhash",
		})
		c.OnSegment(tc.seg())
		if c.Total() == 0 {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		found := false
		for _, v := range c.Violations() {
			if v.Rule == tc.rule {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no %s violation in:\n%s", tc.name, tc.rule, c.Report())
		}
	}
}

func TestOnPackPerPolicy(t *testing.T) {
	p := testProgram(t)
	// Branch-free pending so the cost-regulated tight-loop trigger cannot
	// legitimately fire.
	pending := make([]core.SegInst, 12)
	for i := range pending {
		pending[i] = core.SegInst{PC: 0, Inst: p.Code[0]}
	}
	cases := []struct {
		name    string
		policy  core.PackPolicy
		space   int
		take    int
		block   int
		wantBad bool
	}{
		{"bounds: take exceeds space", core.PackUnregulated, 4, 5, 8, true},
		{"unregulated fills space", core.PackUnregulated, 4, 4, 8, false},
		{"unregulated leaves space", core.PackUnregulated, 4, 3, 8, true},
		{"atomic splits small block", core.PackAtomic, 4, 4, 8, true},
		{"atomic splits oversized block", core.PackAtomic, 4, 4, 20, false},
		{"chunk2 even take", core.PackChunk2, 5, 4, 8, false},
		{"chunk2 odd take", core.PackChunk2, 5, 3, 8, true},
		{"chunk4 rounds down", core.PackChunk4, 7, 4, 8, false},
		{"costreg without trigger", core.PackCostRegulated, 4, 4, 8, true},
	}
	for _, tc := range cases {
		fill := core.DefaultFillConfig(tc.policy, 0)
		c := check.New(check.Params{
			Prog: p, Fill: fill, HasTC: true, FetchWidth: 16,
			MaxSlots: 3, ConfigHash: "testhash",
		})
		c.OnPack(pending[:16-tc.space], tc.space, tc.take, tc.block)
		if bad := c.Total() > 0; bad != tc.wantBad {
			t.Errorf("%s: violations=%d, wantBad=%v:\n%s", tc.name, c.Total(), tc.wantBad, c.Report())
		}
	}
}

func TestOnPackCostRegTriggers(t *testing.T) {
	p := testProgram(t)
	fill := core.DefaultFillConfig(core.PackCostRegulated, 0)
	mk := func(n int) []core.SegInst {
		out := make([]core.SegInst, n)
		for i := range out {
			out[i] = core.SegInst{PC: 0, Inst: p.Code[0]}
		}
		return out
	}
	// Half-empty trigger at its boundary: 10 pending, 6 unused -> legal.
	c := testChecker(t, fill)
	c.OnPack(mk(10), 6, 6, 8)
	if c.Total() != 0 {
		t.Errorf("boundary pack rejected:\n%s", c.Report())
	}
	// 11 pending, 5 unused -> the trigger is off; packing violates.
	c = testChecker(t, fill)
	c.OnPack(mk(11), 5, 5, 8)
	if c.Total() == 0 {
		t.Error("pack beyond the half-empty boundary accepted")
	}
	// Tight backward branch overrides: pending holds the loop branch
	// (pc 4, target 2, displacement 2).
	withLoop := mk(11)
	withLoop[10] = core.SegInst{PC: 4, Inst: p.Code[4], Taken: true}
	c = testChecker(t, fill)
	c.OnPack(withLoop, 5, 5, 8)
	if c.Total() != 0 {
		t.Errorf("tight-loop pack rejected:\n%s", c.Report())
	}
}

func TestCommitLockstep(t *testing.T) {
	p := testProgram(t)
	c := check.New(check.Params{
		Prog: p, Fill: core.DefaultFillConfig(core.PackAtomic, 0),
		FetchWidth: 16, MaxSlots: 3, ConfigHash: "testhash",
	})
	// The first instruction: LoadI r1, 10 at the entry.
	c.Commit(check.Commit{PC: p.Entry, NextPC: p.Entry + 1, HasDest: true, DestReg: 1, DestVal: 10})
	if c.Total() != 0 {
		t.Fatalf("correct commit rejected:\n%s", c.Report())
	}
	// Wrong destination value on the second.
	c.Commit(check.Commit{PC: p.Entry + 1, NextPC: p.Entry + 2, HasDest: true, DestReg: 2, DestVal: 999})
	if c.Total() != 1 {
		t.Fatalf("wrong dest value not caught (total=%d)", c.Total())
	}
	if v := c.Violations()[0]; v.Rule != "lockstep/dest-value" || !strings.Contains(v.Detail, "testhash") {
		t.Errorf("violation = %+v, want lockstep/dest-value carrying the config hash", v)
	}
	// After divergence the comparison stops: garbage commits add nothing.
	c.Commit(check.Commit{PC: 12345})
	if c.Total() != 1 {
		t.Errorf("post-divergence commit recorded a violation")
	}
}

func TestCommitWrongPC(t *testing.T) {
	p := testProgram(t)
	c := check.New(check.Params{
		Prog: p, Fill: core.DefaultFillConfig(core.PackAtomic, 0),
		FetchWidth: 16, MaxSlots: 3, ConfigHash: "testhash",
	})
	c.Commit(check.Commit{PC: p.Entry + 3, NextPC: p.Entry + 4})
	if c.Total() != 1 || c.Violations()[0].Rule != "lockstep/pc" {
		t.Fatalf("wrong-pc commit not caught: %s", c.Report())
	}
}

func TestFastForwardMirrorsSimulator(t *testing.T) {
	p := testProgram(t)
	c := check.New(check.Params{
		Prog: p, Fill: core.DefaultFillConfig(core.PackAtomic, 0),
		FetchWidth: 16, MaxSlots: 3, ConfigHash: "testhash",
	})
	// Two steps from the entry: LoadI, LoadI -> pc Entry+2.
	c.FastForward(2, p.Entry+2)
	if c.Total() != 0 {
		t.Fatalf("matching fast-forward flagged:\n%s", c.Report())
	}
	c2 := check.New(check.Params{
		Prog: p, Fill: core.DefaultFillConfig(core.PackAtomic, 0),
		FetchWidth: 16, MaxSlots: 3, ConfigHash: "testhash",
	})
	c2.FastForward(2, p.Entry) // simulator claims a different resume PC
	if c2.Total() != 1 || c2.Violations()[0].Rule != "lockstep/ffwd-pc" {
		t.Fatalf("fast-forward mismatch not caught: %s", c2.Report())
	}
}

func TestFinalizeConservation(t *testing.T) {
	p := testProgram(t)
	mk := func() *check.Checker {
		return check.New(check.Params{
			Prog: p, Fill: core.DefaultFillConfig(core.PackAtomic, 0),
			HasTC: true, FetchWidth: 16, MaxSlots: 3, ConfigHash: "testhash",
		})
	}
	// Clean: zero commits, zero retired, consistent TC stats.
	c := mk()
	c.MarkMeasureStart(0)
	c.Finalize(check.Final{Run: &stats.Run{}})
	if c.Total() != 0 {
		t.Fatalf("clean finalize flagged:\n%s", c.Report())
	}

	// Retired count disagrees with observed commits.
	c = mk()
	c.MarkMeasureStart(0)
	c.Finalize(check.Final{Run: &stats.Run{Retired: 5}})
	if c.Total() == 0 || c.Violations()[0].Rule != "conservation/retired" {
		t.Errorf("retired mismatch not caught: %s", c.Report())
	}

	// Cycle buckets drift beyond the slack.
	c = mk()
	c.MarkMeasureStart(0)
	run := &stats.Run{Cycles: 100}
	run.Cycle[stats.CycleUseful] = 50
	c.Finalize(check.Final{Run: run})
	found := false
	for _, v := range c.Violations() {
		if v.Rule == "conservation/cycle-sum" {
			found = true
		}
	}
	if !found {
		t.Errorf("cycle-sum drift not caught: %s", c.Report())
	}

	// Trace-cache lookup count disagrees with the fetch stream.
	c = mk()
	c.MarkMeasureStart(0)
	c.Finalize(check.Final{
		Run:     &stats.Run{},
		TCStats: core.TraceCacheStats{Lookups: 9},
	})
	found = false
	for _, v := range c.Violations() {
		if v.Rule == "conservation/tc-lookups" {
			found = true
		}
	}
	if !found {
		t.Errorf("tc-lookups mismatch not caught: %s", c.Report())
	}

	// Promoted-branch census disagrees.
	c = mk()
	c.MarkMeasureStart(0)
	c.Finalize(check.Final{Run: &stats.Run{}, LivePromoted: 3, ResidentPromoted: 1})
	found = false
	for _, v := range c.Violations() {
		if v.Rule == "conservation/live-promoted" {
			found = true
		}
	}
	if !found {
		t.Errorf("live-promoted mismatch not caught: %s", c.Report())
	}
}

func TestSuppress(t *testing.T) {
	c := testChecker(t, core.DefaultFillConfig(core.PackAtomic, 0))
	c.Suppress("structural/segment-size")
	c.OnSegment(&core.Segment{})
	if c.Total() != 0 {
		t.Errorf("suppressed rule still recorded: %s", c.Report())
	}
}

func TestViolationCapAndReport(t *testing.T) {
	c := testChecker(t, core.DefaultFillConfig(core.PackAtomic, 0))
	for i := 0; i < 80; i++ {
		c.OnSegment(&core.Segment{})
	}
	if c.Total() != 80 {
		t.Errorf("Total = %d, want 80", c.Total())
	}
	if len(c.Violations()) >= 80 {
		t.Errorf("violation recording not capped: %d", len(c.Violations()))
	}
	if r := c.Report(); !strings.Contains(r, "80 violation(s)") {
		t.Errorf("report does not carry the true count:\n%s", r)
	}
}

func TestApproximationsDocumented(t *testing.T) {
	for _, rule := range []string{"conservation/cycle-sum", "structural/costreg-trigger"} {
		if _, ok := check.Approximations[rule]; !ok {
			t.Errorf("approximation %s undocumented", rule)
		}
	}
}
