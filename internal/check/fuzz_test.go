package check_test

import (
	"testing"

	"tracecache/internal/core"
	"tracecache/internal/sim"
	"tracecache/internal/workload"
)

// fuzzConfig decodes one byte into a legal machine configuration, covering
// every packing policy, promotion on and off at several thresholds, both
// fetch mechanisms, both fetch widths, and both predictor organizations.
func fuzzConfig(sel uint8) sim.Config {
	if sel&0x10 != 0 {
		cfg := sim.ICacheConfig()
		cfg.Name = "fuzz-icache"
		return cfg
	}
	cfg := sim.DefaultConfig()
	cfg.Name = "fuzz-trace"
	policy := []core.PackPolicy{
		core.PackAtomic, core.PackUnregulated, core.PackChunk2, core.PackCostRegulated,
	}[sel&0x3]
	threshold := []uint32{0, 1, 8, 64}[(sel>>2)&0x3]
	cfg.Fill = core.DefaultFillConfig(policy, threshold)
	if sel&0x20 != 0 {
		cfg.FetchWidth = 8
		cfg.Fill.MaxInsts = 8
	}
	cfg.SplitMBP = sel&0x40 != 0
	cfg.SingleHybrid = sel&0x80 != 0
	return cfg
}

// FuzzDifferential drives randomized programs through randomized legal
// configurations with the full self-check layer enabled: lockstep
// differential execution, structural invariants, and the conservation
// identities. Any violation fails the fuzz target. Minimized seeds live
// under testdata/fuzz/FuzzDifferential.
func FuzzDifferential(f *testing.F) {
	// Seed corpus: every front end and packing policy, the promotion
	// thresholds, the single-hybrid predictor (the organization whose
	// wrong-path suffix injection this layer originally flushed out),
	// and a spread of program generators.
	for sel := 0; sel < 8; sel++ {
		f.Add(uint8(sel), uint8(sel<<2), int64(1))
	}
	f.Add(uint8(0x10), uint8(0), int64(2))      // icache front end
	f.Add(uint8(0x20|0x80), uint8(1), int64(3)) // 8-wide, single hybrid
	f.Add(uint8(0x40|0xf), uint8(4), int64(4))  // split MBP, costreg, threshold 64

	names := workload.Names()
	f.Fuzz(func(t *testing.T, sel uint8, profSel uint8, seed int64) {
		prof, ok := workload.ByName(names[int(profSel)%len(names)])
		if !ok {
			t.Skip("unknown profile")
		}
		prof.Seed = seed
		if err := prof.Validate(); err != nil {
			t.Skip(err)
		}
		prog, err := prof.Generate()
		if err != nil {
			t.Skip(err)
		}

		cfg := fuzzConfig(sel)
		cfg.WarmupInsts = 2_000
		cfg.MaxInsts = 6_000
		cfg.MaxCycles = 300_000
		cfg.Check = true
		s, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		chk := s.Checker()
		if chk == nil {
			t.Fatal("Check=true built no checker")
		}
		if chk.Total() > 0 {
			t.Fatalf("sel=%#x profile=%s seed=%d:\n%s",
				sel, prof.Name, seed, chk.Report())
		}
	})
}
