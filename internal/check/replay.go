package check

import (
	"fmt"

	"tracecache/internal/stats"
)

// ReplayStats packages what a replay-fidelity comparison needs from one
// run: the statistics plus the trace cache probe counters (zero for the
// icache front end, where the TC hit-rate rule is skipped).
type ReplayStats struct {
	Run       *stats.Run
	TCLookups uint64
	TCHits    uint64
}

// ReplayTolerance bounds the documented divergence between a detailed run
// and a front-end-only replay of the same configuration over the same
// recorded stream. The divergence sources are structural, not noise (see
// DESIGN.md §9): boundary cuts are fetch-granular instead of
// retire-burst-granular, predictors train at replay commit instead of
// lagging the pipeline, and the replay issues no wrong-path fetches —
// which in particular means its trace cache and L1I are probed by a
// strictly smaller, cleaner access stream.
type ReplayTolerance struct {
	// CountSlack is the absolute slack on the near-exact counters
	// (Retired, CondBranches, IndirectJumps, Returns, PromotedFaults):
	// both engines cut the warmup and budget boundaries at different
	// granularities, shifting counts by at most a couple of fetch bundles.
	CountSlack uint64
	// PromotedRelPct bounds the relative PromotedExecuted deviation (in
	// percent). Whether a committed branch was fetched in promoted form
	// depends on trace cache content, which wrong-path fetches perturb.
	PromotedRelPct float64
	// EffRatePct bounds the relative effective-fetch-rate deviation (in
	// percent).
	EffRatePct float64
	// MispredPP bounds the conditional mispredict-rate deviation in
	// percentage points.
	MispredPP float64
	// TCHitPP bounds the trace cache hit-rate deviation in percentage
	// points. This is the loosest bound: the detailed machine's lookup
	// population includes every wrong-path fetch, so the two hit rates
	// are ratios over different denominators (measured 11-27pp apart on
	// the standard workloads; see Approximations).
	TCHitPP float64
}

// DefaultReplayTolerance is the committed fidelity envelope, set from
// measurement with roughly 2-3x headroom: across the standard
// configurations and workloads at test budgets, observed worst cases
// were count slack 7, promoted deviation 5%, effective fetch rate 3.6%,
// mispredict rate 2.4pp, and trace cache hit rate 27pp.
func DefaultReplayTolerance() ReplayTolerance {
	return ReplayTolerance{
		CountSlack:     64,
		PromotedRelPct: 15,
		EffRatePct:     8,
		MispredPP:      4,
		TCHitPP:        40,
	}
}

// CompareReplay verifies a replayed run against its detailed twin under
// the fidelity contract: near-exact counters within CountSlack,
// approximate rates within their documented envelopes, and every
// cycle-domain statistic — undefined under replay — exactly zero.
// Violations use LayerReplay; an empty slice means the replay ties out.
func CompareReplay(detailed, replayed ReplayStats, tol ReplayTolerance) []Violation {
	var vs []Violation
	d, r := detailed.Run, replayed.Run

	counts := []struct {
		rule string
		d, r uint64
	}{
		{"replay/retired", d.Retired, r.Retired},
		{"replay/cond-branches", d.CondBranches, r.CondBranches},
		{"replay/indirect-jumps", d.IndirectJumps, r.IndirectJumps},
		{"replay/returns", d.Returns, r.Returns},
		{"replay/promoted-faults", d.PromotedFaults, r.PromotedFaults},
	}
	for _, c := range counts {
		if absDiff(c.d, c.r) > tol.CountSlack {
			vs = append(vs, Violation{
				Layer: LayerReplay, Rule: c.rule,
				Detail: fmt.Sprintf("detailed=%d replayed=%d (slack %d)", c.d, c.r, tol.CountSlack),
			})
		}
	}

	if diff := absDiff(d.PromotedExecuted, r.PromotedExecuted); diff > tol.CountSlack {
		limit := tol.PromotedRelPct / 100 * float64(d.PromotedExecuted)
		if float64(diff) > limit {
			vs = append(vs, Violation{
				Layer: LayerReplay, Rule: "replay/promoted-executed",
				Detail: fmt.Sprintf("detailed=%d replayed=%d (%.1f%% > %.1f%%)",
					d.PromotedExecuted, r.PromotedExecuted,
					100*float64(diff)/float64(d.PromotedExecuted), tol.PromotedRelPct),
			})
		}
	}

	if de, re := d.EffFetchRate(), r.EffFetchRate(); de > 0 {
		if pct := 100 * absF(re-de) / de; pct > tol.EffRatePct {
			vs = append(vs, Violation{
				Layer: LayerReplay, Rule: "replay/eff-fetch-rate",
				Detail: fmt.Sprintf("detailed=%.4f replayed=%.4f (%.2f%% > %.2f%%)", de, re, pct, tol.EffRatePct),
			})
		}
	}

	if dm, rm := d.CondMispredictRate(), r.CondMispredictRate(); d.CondBranches > 0 {
		if pp := 100 * absF(rm-dm); pp > tol.MispredPP {
			vs = append(vs, Violation{
				Layer: LayerReplay, Rule: "replay/cond-mispredict-rate",
				Detail: fmt.Sprintf("detailed=%.4f%% replayed=%.4f%% (%.2fpp > %.2fpp)",
					100*dm, 100*rm, pp, tol.MispredPP),
			})
		}
	}

	if detailed.TCLookups > 0 && replayed.TCLookups > 0 {
		dh := float64(detailed.TCHits) / float64(detailed.TCLookups)
		rh := float64(replayed.TCHits) / float64(replayed.TCLookups)
		if pp := 100 * absF(rh-dh); pp > tol.TCHitPP {
			vs = append(vs, Violation{
				Layer: LayerReplay, Rule: "replay/tc-hit-rate",
				Detail: fmt.Sprintf("detailed=%.2f%% replayed=%.2f%% (%.2fpp > %.2fpp)",
					100*dh, 100*rh, pp, tol.TCHitPP),
			})
		}
	}

	zeros := []struct {
		rule string
		got  uint64
	}{
		{"replay/zero-cycles", r.Cycles},
		{"replay/zero-fetched-wrong", r.FetchedWrong},
		{"replay/zero-tc-miss-cycles", r.TCMissCycles},
		{"replay/zero-resolutions", r.ResolutionsCounted},
		{"replay/zero-cycle-classes", r.CycleSum()},
	}
	for _, z := range zeros {
		if z.got != 0 {
			vs = append(vs, Violation{
				Layer: LayerReplay, Rule: z.rule,
				Detail: fmt.Sprintf("cycle-domain statistic undefined under replay, got %d", z.got),
			})
		}
	}

	if r.Meta != nil && r.Meta.Provenance != stats.ProvReplay {
		vs = append(vs, Violation{
			Layer: LayerReplay, Rule: "replay/provenance",
			Detail: fmt.Sprintf("provenance %q, want %q", r.Meta.Provenance, stats.ProvReplay),
		})
	}
	return vs
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
