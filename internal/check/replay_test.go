package check

import (
	"strings"
	"testing"

	"tracecache/internal/stats"
)

// twin builds a detailed/replayed pair that ties out exactly.
func twin() (ReplayStats, ReplayStats) {
	mk := func() *stats.Run {
		r := &stats.Run{
			Retired: 60_000, Fetches: 5_000, FetchedCorrect: 60_000,
			CondBranches: 13_000, CondMispredicts: 1_300,
			IndirectJumps: 230, Returns: 28,
			PromotedExecuted: 3_800, PromotedFaults: 26,
		}
		return r
	}
	d, r := mk(), mk()
	d.Cycles = 20_000
	d.Cycle[stats.CycleUseful] = 5_000
	r.Meta = &stats.Meta{Provenance: stats.ProvReplay}
	return ReplayStats{Run: d, TCLookups: 10_000, TCHits: 8_000},
		ReplayStats{Run: r, TCLookups: 5_200, TCHits: 4_900}
}

func ruleSet(vs []Violation) map[string]bool {
	out := make(map[string]bool, len(vs))
	for _, v := range vs {
		out[v.Rule] = true
	}
	return out
}

func TestCompareReplayClean(t *testing.T) {
	d, r := twin()
	if vs := CompareReplay(d, r, DefaultReplayTolerance()); len(vs) != 0 {
		t.Fatalf("violations on a clean twin: %v", vs)
	}
}

func TestCompareReplayWithinSlack(t *testing.T) {
	d, r := twin()
	r.Run.Retired += 30
	r.Run.CondBranches -= 12
	r.Run.PromotedExecuted += 300 // ~8% relative, inside the 15% envelope
	if vs := CompareReplay(d, r, DefaultReplayTolerance()); len(vs) != 0 {
		t.Fatalf("violations inside the envelope: %v", vs)
	}
}

func TestCompareReplayCountViolations(t *testing.T) {
	d, r := twin()
	r.Run.Retired += 1_000
	r.Run.IndirectJumps = 0
	r.Run.PromotedExecuted = 5_000 // >30% off
	vs := ruleSet(CompareReplay(d, r, DefaultReplayTolerance()))
	for _, want := range []string{"replay/retired", "replay/indirect-jumps", "replay/promoted-executed"} {
		if !vs[want] {
			t.Errorf("missing violation %s (got %v)", want, vs)
		}
	}
}

func TestCompareReplayRateViolations(t *testing.T) {
	d, r := twin()
	r.Run.Fetches = 7_000         // eff rate 20%+ low
	r.Run.CondMispredicts = 2_600 // +10pp
	r.TCHits = 1_000              // hit rate 75pp apart
	vs := ruleSet(CompareReplay(d, r, DefaultReplayTolerance()))
	for _, want := range []string{"replay/eff-fetch-rate", "replay/cond-mispredict-rate", "replay/tc-hit-rate"} {
		if !vs[want] {
			t.Errorf("missing violation %s (got %v)", want, vs)
		}
	}
}

func TestCompareReplayUndefinedMustBeZero(t *testing.T) {
	d, r := twin()
	r.Run.Cycles = 100
	r.Run.FetchedWrong = 5
	r.Run.Cycle[stats.CycleUseful] = 7
	vs := ruleSet(CompareReplay(d, r, DefaultReplayTolerance()))
	for _, want := range []string{"replay/zero-cycles", "replay/zero-fetched-wrong", "replay/zero-cycle-classes"} {
		if !vs[want] {
			t.Errorf("missing violation %s (got %v)", want, vs)
		}
	}
}

func TestCompareReplayProvenance(t *testing.T) {
	d, r := twin()
	r.Run.Meta.Provenance = stats.ProvCold
	vs := CompareReplay(d, r, DefaultReplayTolerance())
	if len(vs) != 1 || vs[0].Rule != "replay/provenance" {
		t.Fatalf("violations = %v, want exactly replay/provenance", vs)
	}
	if vs[0].Layer != LayerReplay || vs[0].Layer.String() != "replay" {
		t.Errorf("layer = %v", vs[0].Layer)
	}
	if !strings.Contains(vs[0].String(), "replay/provenance") {
		t.Errorf("String() = %q", vs[0].String())
	}
}
