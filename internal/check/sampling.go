package check

import (
	"fmt"

	"tracecache/internal/stats"
)

// This file is the sampling verification layer (LayerSampling), in two
// halves. SamplingAudit runs alongside every sampled run and verifies
// the phase-conservation identities of the schedule: the driver's
// committed-stream position advances gap by gap and window by window
// with no instruction executed twice or skipped, every measurement
// window retires its budget (within retirement burst granularity), and
// the run covers its total budget. CompareSampled is the offline
// fidelity comparison: the sampled interval estimates of a small-budget
// run are held against a fully detailed run of the same budget, and each
// mean must cover the detailed truth within its own confidence interval
// plus a documented tolerance.
//
// The audit takes plain integers (committed-stream positions from
// Simulator.CommittedInsts) rather than simulator state: sim imports
// check, so this package cannot see the simulator, and positions are the
// whole contract anyway.

// SamplingAudit verifies the phase-conservation identities of one
// sampled run. The driver reports every phase transition; Finalize
// returns the collected violations.
type SamplingAudit struct {
	start       uint64 // committed position at construction
	pos         uint64 // expected committed position
	budget      uint64 // total committed-stream budget
	windowInsts uint64
	retireSlack uint64 // per-segment overshoot: retirement is burst-granular
	drainSlack  uint64 // bound on drain-tail retirements past a captured sample
	windows     int
	measured    uint64 // sum of captured window Retired counts
	halted      bool
	vs          []Violation
}

// NewSamplingAudit starts an audit at the given committed-stream
// position. budget is the total committed-stream extent the run must
// cover (unless the program halts); windowInsts the per-window
// measurement budget; retireWidth the machine's retirement width (the
// overshoot granularity); drainBound an upper bound on instructions a
// pipeline drain can retire past a captured sample (window capacity plus
// a fetch bundle).
func NewSamplingAudit(startPos, budget, windowInsts uint64, retireWidth, drainBound int) *SamplingAudit {
	a := &SamplingAudit{
		start:       startPos,
		pos:         startPos,
		budget:      budget,
		windowInsts: windowInsts,
		drainSlack:  uint64(drainBound),
	}
	if retireWidth > 0 {
		a.retireSlack = uint64(retireWidth - 1)
	}
	return a
}

func (a *SamplingAudit) violatef(rule, format string, args ...any) {
	a.vs = append(a.vs, Violation{
		Layer: LayerSampling, Rule: rule,
		Detail: fmt.Sprintf(format, args...),
	})
}

// checkPos verifies the driver and the machine agree on where the
// committed stream stands before a phase.
func (a *SamplingAudit) checkPos(phase string, before uint64) {
	if before != a.pos {
		a.violatef("sampling/phase-position",
			"%s began at committed position %d, audit expected %d", phase, before, a.pos)
	}
	a.pos = before
}

// OnGap records one functional fast-forward gap: requested length, the
// count the simulator reports executing, and the committed positions
// around it. A gap shorter than requested is legal only at program halt.
func (a *SamplingAudit) OnGap(before, requested, done, after uint64, halted bool) {
	a.checkPos("gap", before)
	if after-before != done {
		a.violatef("sampling/gap-executed-once",
			"gap advanced the committed stream by %d but reported %d executed", after-before, done)
	}
	if done != requested && !halted {
		a.violatef("sampling/gap-short",
			"gap executed %d of %d requested without halting", done, requested)
	}
	a.halted = a.halted || halted
	a.pos = after
}

// OnWarmup records one detailed warmup segment (statistics discarded).
func (a *SamplingAudit) OnWarmup(before, target, after uint64, halted bool) {
	a.checkPos("warmup", before)
	a.checkSegment("warmup", target, after-before, halted)
	a.halted = a.halted || halted
	a.pos = after
}

// OnWindow records one measurement window: the committed positions
// around the {measure, drain} pair and the Retired count of the captured
// sample. The drain tail (after the sample was captured) is bounded by
// drainBound; the sample itself must cover the window budget.
func (a *SamplingAudit) OnWindow(before, after, sampleRetired uint64, halted bool) {
	a.checkPos("window", before)
	a.checkSegment("window", a.windowInsts, sampleRetired, halted)
	total := after - before
	if total < sampleRetired {
		a.violatef("sampling/window-drain",
			"window committed %d total but the sample alone retired %d", total, sampleRetired)
	} else if tail := total - sampleRetired; tail > a.drainSlack {
		a.violatef("sampling/window-drain",
			"drain tail retired %d instructions, bound %d", tail, a.drainSlack)
	}
	a.windows++
	a.measured += sampleRetired
	a.halted = a.halted || halted
	a.pos = after
}

func (a *SamplingAudit) checkSegment(phase string, target, got uint64, halted bool) {
	if got < target && !halted {
		a.violatef("sampling/"+phase+"-short",
			"%s retired %d of %d without halting", phase, got, target)
	}
	if got > target+a.retireSlack {
		a.violatef("sampling/"+phase+"-overrun",
			"%s retired %d, budget %d + retire slack %d", phase, got, target, a.retireSlack)
	}
}

// Windows returns the number of measurement windows recorded so far.
func (a *SamplingAudit) Windows() int { return a.windows }

// Finalize verifies the end-of-run identities — the final committed
// position matches the audited phases, the run covered its budget (or
// halted), and the window samples sum to the measured total — and
// returns every violation collected.
func (a *SamplingAudit) Finalize(final uint64, measuredTotal uint64) []Violation {
	if final != a.pos {
		a.violatef("sampling/final-position",
			"run ended at committed position %d, audited phases account for %d", final, a.pos)
	}
	if covered := final - a.start; covered < a.budget && !a.halted {
		a.violatef("sampling/budget-covered",
			"run covered %d of budget %d without halting", covered, a.budget)
	}
	if measuredTotal != a.measured {
		a.violatef("sampling/measured-sum",
			"window samples sum to %d retired, aggregate reports %d", a.measured, measuredTotal)
	}
	return a.vs
}

// GroundTruth packages a fully detailed run for CompareSampled: its
// statistics plus the trace cache probe counters (zero for the icache
// front end, where the TC hit-rate rule is skipped).
type GroundTruth struct {
	Run       *stats.Run
	TCLookups uint64
	TCHits    uint64
}

// SampledTolerance widens each sampled confidence interval before it
// must cover the detailed truth. Pure CI coverage is the wrong contract
// here: the synthetic workloads are highly stationary, so per-window
// variance — and with it the CI — can collapse toward zero while the
// estimate still carries structural bias against a fully detailed run
// (windows measure post-warmup steady state; the detailed run includes
// every transient, and its microarchitectural state never resets).
// The slack bounds that structural bias, exactly as ReplayTolerance
// bounds the replay engine's.
type SampledTolerance struct {
	// IPCRelPct and EffRateRelPct widen the IPC and effective-fetch-rate
	// intervals by a relative percentage of the detailed truth.
	IPCRelPct     float64
	EffRateRelPct float64
	// MispredPP and TCHitPP widen the mispredict-rate and TC hit-rate
	// intervals by absolute percentage points.
	MispredPP float64
	TCHitPP   float64
}

// DefaultSampledTolerance is the committed fidelity envelope, set from
// measurement with roughly 2-3x headroom (see the sampling block of
// BENCH_perf.json and DESIGN.md §10 for the observed deviations).
func DefaultSampledTolerance() SampledTolerance {
	return SampledTolerance{
		IPCRelPct:     8,
		EffRateRelPct: 6,
		MispredPP:     2,
		TCHitPP:       10,
	}
}

// CompareSampled verifies a sampled run against a fully detailed run of
// the same total budget: each sampled mean must fall within its own 95%
// confidence interval — widened by the documented tolerance — of the
// detailed truth, and the sampled provenance must be marked. Violations
// use LayerSampling; an empty slice means the estimates tie out.
func CompareSampled(detailed GroundTruth, sampled *stats.Sampled, tol SampledTolerance) []Violation {
	var vs []Violation
	d := detailed.Run

	cover := func(rule string, e stats.Estimate, truth, slack float64) {
		if e.N == 0 {
			return
		}
		if truth < e.CILow-slack || truth > e.CIHigh+slack {
			vs = append(vs, Violation{
				Layer: LayerSampling, Rule: rule,
				Detail: fmt.Sprintf(
					"detailed truth %.4f outside sampled CI [%.4f, %.4f] ± slack %.4f (mean %.4f, n=%d)",
					truth, e.CILow, e.CIHigh, slack, e.Mean, e.N),
			})
		}
	}

	cover("sampling/ipc", sampled.IPC, d.IPC(), tol.IPCRelPct/100*d.IPC())
	cover("sampling/eff-fetch-rate", sampled.EffFetchRate, d.EffFetchRate(),
		tol.EffRateRelPct/100*d.EffFetchRate())
	cover("sampling/cond-mispredict-rate", sampled.MispredictRate,
		d.CondMispredictRate(), tol.MispredPP/100)
	if detailed.TCLookups > 0 {
		truth := float64(detailed.TCHits) / float64(detailed.TCLookups)
		cover("sampling/tc-hit-rate", sampled.TCHitRate, truth, tol.TCHitPP/100)
	}

	if sampled.Meta == nil || sampled.Meta.Provenance != stats.ProvSampled {
		got := "<nil>"
		if sampled.Meta != nil {
			got = sampled.Meta.Provenance
		}
		vs = append(vs, Violation{
			Layer: LayerSampling, Rule: "sampling/provenance",
			Detail: fmt.Sprintf("provenance %q, want %q", got, stats.ProvSampled),
		})
	} else if sm := sampled.Meta.Sampling; sm == nil {
		vs = append(vs, Violation{
			Layer: LayerSampling, Rule: "sampling/provenance",
			Detail: "sampled run carries no Meta.Sampling schedule block",
		})
	} else if sm.Windows != len(sampled.Windows) {
		vs = append(vs, Violation{
			Layer: LayerSampling, Rule: "sampling/window-count",
			Detail: fmt.Sprintf("Meta.Sampling.Windows=%d, %d window samples recorded",
				sm.Windows, len(sampled.Windows)),
		})
	}
	return vs
}
