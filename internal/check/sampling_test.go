package check

import (
	"strings"
	"testing"

	"tracecache/internal/stats"
)

// rules extracts the rule names of a violation slice for compact asserts.
func rules(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Rule
	}
	return out
}

func assertRules(t *testing.T, vs []Violation, want ...string) {
	t.Helper()
	got := rules(vs)
	if len(got) != len(want) {
		t.Fatalf("violations = %v, want rules %v", vs, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("violation %d rule = %q, want %q (all: %v)", i, got[i], want[i], vs)
		}
	}
	for _, v := range vs {
		if v.Layer != LayerSampling {
			t.Fatalf("violation %+v not on the sampling layer", v)
		}
	}
}

// TestSamplingAuditCleanRun: a well-formed gap/warmup/window/drain
// sequence covering the budget produces no violations.
func TestSamplingAuditCleanRun(t *testing.T) {
	a := NewSamplingAudit(1000, 10_000, 100, 4, 256)
	// Period 1: gap to 3000, warmup 50, window 100 + drain tail 7.
	a.OnGap(1000, 2000, 2000, 3000, false)
	a.OnWarmup(3000, 50, 3050, false)
	a.OnWindow(3050, 3157, 100, false)
	// Period 2: window overshoots by retire slack (3), no drain tail.
	a.OnGap(3157, 4843, 4843, 8000, false)
	a.OnWarmup(8000, 50, 8050, false)
	a.OnWindow(8050, 8153, 103, false)
	// Trailing gap to the budget end.
	a.OnGap(8153, 2847, 2847, 11_000, false)
	if a.Windows() != 2 {
		t.Fatalf("Windows() = %d, want 2", a.Windows())
	}
	assertRules(t, a.Finalize(11_000, 203))
}

// TestSamplingAuditHaltedRun: a run that halts mid-gap may fall short of
// its budget without violating anything.
func TestSamplingAuditHaltedRun(t *testing.T) {
	a := NewSamplingAudit(0, 10_000, 100, 4, 256)
	a.OnGap(0, 2000, 2000, 2000, false)
	a.OnWarmup(2000, 50, 2050, false)
	a.OnWindow(2050, 2150, 100, false)
	a.OnGap(2150, 4000, 1200, 3350, true) // halt inside the gap
	assertRules(t, a.Finalize(3350, 100))
}

// TestSamplingAuditGapIdentities: a gap whose reported count disagrees
// with the committed-position delta, or that falls short without a halt,
// is flagged.
func TestSamplingAuditGapIdentities(t *testing.T) {
	a := NewSamplingAudit(0, 100_000, 100, 4, 256)
	a.OnGap(0, 2000, 2000, 1999, false) // advanced 1999, reported 2000
	a.OnGap(1999, 500, 400, 2399, false)
	vs := a.vs
	assertRules(t, vs, "sampling/gap-executed-once", "sampling/gap-short")
}

// TestSamplingAuditPhasePosition: a phase starting anywhere but where the
// previous one ended means instructions were skipped or replayed between
// phases.
func TestSamplingAuditPhasePosition(t *testing.T) {
	a := NewSamplingAudit(0, 100_000, 100, 4, 256)
	a.OnGap(0, 1000, 1000, 1000, false)
	a.OnWarmup(1010, 50, 1060, false) // 10 instructions unaccounted
	assertRules(t, a.vs, "sampling/phase-position")
}

// TestSamplingAuditWindowBounds: short windows, overruns past retire
// slack, and drain tails past the drain bound are each flagged.
func TestSamplingAuditWindowBounds(t *testing.T) {
	t.Run("short", func(t *testing.T) {
		a := NewSamplingAudit(0, 100_000, 100, 4, 256)
		a.OnWindow(0, 90, 90, false)
		assertRules(t, a.vs, "sampling/window-short")
	})
	t.Run("overrun", func(t *testing.T) {
		a := NewSamplingAudit(0, 100_000, 100, 4, 256)
		a.OnWindow(0, 104, 104, false) // slack is RetireWidth-1 = 3
		assertRules(t, a.vs, "sampling/window-overrun")
	})
	t.Run("drain-tail", func(t *testing.T) {
		a := NewSamplingAudit(0, 100_000, 100, 4, 256)
		a.OnWindow(0, 100+257, 100, false) // tail 257 > drain bound 256
		assertRules(t, a.vs, "sampling/window-drain")
	})
	t.Run("impossible-sample", func(t *testing.T) {
		a := NewSamplingAudit(0, 100_000, 100, 4, 256)
		a.OnWindow(0, 100, 104, false) // sample retired more than committed
		assertRules(t, a.vs, "sampling/window-overrun", "sampling/window-drain")
	})
}

// TestSamplingAuditFinalize: final-position, budget-coverage, and
// measured-sum identities.
func TestSamplingAuditFinalize(t *testing.T) {
	a := NewSamplingAudit(0, 10_000, 100, 4, 256)
	a.OnGap(0, 5000, 5000, 5000, false)
	a.OnWindow(5000, 5100, 100, false)
	vs := a.Finalize(5099, 99)
	assertRules(t, vs,
		"sampling/final-position", // ended at 5099, phases account for 5100
		"sampling/budget-covered", // covered 5099 < 10000 without halt
		"sampling/measured-sum")   // samples sum to 100, aggregate says 99
}

// sampledFixture builds a Sampled whose three windows straddle the given
// detailed truth, then aggregates it. Window metrics are mean±spread.
func sampledFixture(ipc, eff, mis, tch, spread float64) *stats.Sampled {
	s := &stats.Sampled{
		Benchmark: "gcc", Config: "baseline",
		WindowInsts: 100, PeriodInsts: 1000, WarmupInsts: 50, Seed: 1,
		TotalInsts: 10_000,
		Meta: &stats.Meta{
			Provenance: stats.ProvSampled,
			Sampling:   &stats.SamplingMeta{WindowInsts: 100, PeriodInsts: 1000, WarmupInsts: 50, Seed: 1, Windows: 3},
		},
	}
	for i, d := range []float64{-spread, 0, spread} {
		s.Windows = append(s.Windows, stats.WindowSample{
			Index: i, Retired: 100, Cycles: 50,
			IPC: ipc + d, EffFetchRate: eff + d, MispredictRate: mis + d/10,
			TCHitRate: tch + d/10, TCLookups: 40, TCHits: 30,
		})
	}
	s.Aggregate()
	return s
}

// TestCompareSampledPass: estimates whose intervals cover the detailed
// truth tie out with no violations.
func TestCompareSampledPass(t *testing.T) {
	d := GroundTruth{
		Run: &stats.Run{
			Retired: 10_000, Cycles: 5000,
			Fetches: 2000, FetchedCorrect: 8000,
			CondBranches: 1000, CondMispredicts: 50,
		},
		TCLookups: 4000, TCHits: 3000,
	}
	// Truth: IPC 2.0, eff rate 4.0, mispredict 0.05, TC hit 0.75.
	s := sampledFixture(2.0, 4.0, 0.05, 0.75, 0.2)
	if vs := CompareSampled(d, s, DefaultSampledTolerance()); len(vs) != 0 {
		t.Fatalf("clean comparison produced violations: %v", vs)
	}
}

// TestCompareSampledDetectsBias: an estimate far from the truth is
// flagged on its own rule even with the default tolerance.
func TestCompareSampledDetectsBias(t *testing.T) {
	d := GroundTruth{
		Run: &stats.Run{
			Retired: 10_000, Cycles: 5000,
			Fetches: 2000, FetchedCorrect: 8000,
			CondBranches: 1000, CondMispredicts: 50,
		},
		TCLookups: 4000, TCHits: 3000,
	}
	// IPC estimate centered at 3.0 vs truth 2.0: far outside CI+8%.
	s := sampledFixture(3.0, 4.0, 0.05, 0.75, 0.05)
	vs := CompareSampled(d, s, DefaultSampledTolerance())
	if len(vs) != 1 || vs[0].Rule != "sampling/ipc" {
		t.Fatalf("violations = %v, want exactly sampling/ipc", vs)
	}
	if !strings.Contains(vs[0].Detail, "outside sampled CI") {
		t.Fatalf("detail %q does not describe the interval", vs[0].Detail)
	}
}

// TestCompareSampledZeroToleranceIsStrict: with zero slack, pure CI
// coverage decides — a tight interval away from the truth fails all four
// metric rules.
func TestCompareSampledZeroToleranceIsStrict(t *testing.T) {
	d := GroundTruth{
		Run: &stats.Run{
			Retired: 10_000, Cycles: 5000,
			Fetches: 2000, FetchedCorrect: 8000,
			CondBranches: 1000, CondMispredicts: 50,
		},
		TCLookups: 4000, TCHits: 3000,
	}
	s := sampledFixture(2.5, 4.5, 0.10, 0.60, 0.001)
	vs := CompareSampled(d, s, SampledTolerance{})
	assertRules(t, vs,
		"sampling/ipc", "sampling/eff-fetch-rate",
		"sampling/cond-mispredict-rate", "sampling/tc-hit-rate")
}

// TestCompareSampledSkipsTCWithoutLookups: against an icache ground truth
// (no TC probes) the TC rule is skipped entirely.
func TestCompareSampledSkipsTCWithoutLookups(t *testing.T) {
	d := GroundTruth{
		Run: &stats.Run{
			Retired: 10_000, Cycles: 5000,
			Fetches: 2000, FetchedCorrect: 8000,
			CondBranches: 1000, CondMispredicts: 50,
		},
	}
	s := sampledFixture(2.0, 4.0, 0.05, 0.0, 0.1)
	if vs := CompareSampled(d, s, DefaultSampledTolerance()); len(vs) != 0 {
		t.Fatalf("icache comparison produced violations: %v", vs)
	}
}

// TestCompareSampledProvenance: a sampled result without ProvSampled
// metadata, or with a window count disagreeing with its samples, is
// flagged.
func TestCompareSampledProvenance(t *testing.T) {
	d := GroundTruth{Run: &stats.Run{Retired: 10_000, Cycles: 5000,
		Fetches: 2000, FetchedCorrect: 8000, CondBranches: 1000, CondMispredicts: 50}}

	s := sampledFixture(2.0, 4.0, 0.05, 0.75, 0.2)
	s.Meta = nil
	assertRules(t, CompareSampled(d, s, DefaultSampledTolerance()), "sampling/provenance")

	s = sampledFixture(2.0, 4.0, 0.05, 0.75, 0.2)
	s.Meta.Provenance = stats.ProvCold
	assertRules(t, CompareSampled(d, s, DefaultSampledTolerance()), "sampling/provenance")

	s = sampledFixture(2.0, 4.0, 0.05, 0.75, 0.2)
	s.Meta.Sampling = nil
	assertRules(t, CompareSampled(d, s, DefaultSampledTolerance()), "sampling/provenance")

	s = sampledFixture(2.0, 4.0, 0.05, 0.75, 0.2)
	s.Meta.Sampling.Windows = 7
	assertRules(t, CompareSampled(d, s, DefaultSampledTolerance()), "sampling/window-count")
}

// TestLayerSamplingName: the sampling layer stringifies for reports.
func TestLayerSamplingName(t *testing.T) {
	if got := LayerSampling.String(); got != "sampling" {
		t.Fatalf("LayerSampling.String() = %q", got)
	}
}
