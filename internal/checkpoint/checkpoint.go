// Package checkpoint implements architectural warm-state checkpointing:
// snapshot and restore of the configuration-independent machine state
// (registers, memory pages, call stack, PC, committed-instruction count and
// the architectural branch-outcome history) after a functional fast-forward
// of the committed path.
//
// A checkpoint captures no microarchitectural state — caches, predictors,
// the trace cache and the bias table all depend on the machine
// configuration — so one checkpoint can be forked across every
// configuration of a sweep: the shared program prefix is executed once per
// workload instead of once per sweep point, and each configuration then
// warms its own structures with a (much shorter) detailed warmup. A
// Checkpoint is immutable after Capture and safe to Restore into any number
// of states concurrently.
package checkpoint

import (
	"fmt"

	"tracecache/internal/exec"
	"tracecache/internal/isa"
	"tracecache/internal/program"
)

// Checkpoint is a snapshot of the configuration-independent architectural
// state of a program at an instruction boundary on the committed path.
type Checkpoint struct {
	// Program is the name of the program the checkpoint was captured from;
	// Restore refuses a mismatched program.
	Program string
	// PC is the next instruction to execute.
	PC int
	// Insts is the number of committed instructions executed before PC.
	Insts uint64
	// Hist is the architectural global branch history at PC: the actual
	// outcomes of the most recent conditional branches, youngest in bit 0.
	// Front ends mask it to their configured history width.
	Hist uint64
	// Regs is the architectural register file.
	Regs [isa.NumRegs]int64
	// CallStack holds the return targets of the in-progress calls, oldest
	// first.
	CallStack []int
	// pages maps page number to a private copy of the page contents.
	pages map[uint64][]int64
}

// Capture executes the program functionally (committed path only, no
// timing, no speculation) for up to n instructions and returns the
// checkpoint at that boundary. If the program halts before n instructions,
// the checkpoint is taken at the halt instruction (Insts counts only the
// instructions before it), so a simulation restored from it halts
// immediately — exactly where a longer detailed run would have stopped.
func Capture(prog *program.Program, n uint64) *Checkpoint {
	st := exec.NewState(prog)
	pc := prog.Entry
	var hist uint64
	var insts uint64
	for insts < n {
		info := st.StepAt(pc)
		if info.Halted {
			break
		}
		insts++
		if info.Inst.IsCondBranch() {
			hist <<= 1
			if info.Taken {
				hist |= 1
			}
		}
		pc = info.NextPC
		// The committed path never rolls back: run with an empty undo log.
		st.CompactTo(st.Checkpoint())
	}
	return FromState(st, prog.Name, pc, insts, hist)
}

// FromState snapshots an existing architectural state. pc is the next
// instruction to execute, insts the committed instructions executed so far,
// hist the architectural branch history (see Checkpoint.Hist).
func FromState(st *exec.State, progName string, pc int, insts uint64, hist uint64) *Checkpoint {
	cp := &Checkpoint{
		Program:   progName,
		PC:        pc,
		Insts:     insts,
		Hist:      hist,
		Regs:      st.Regs,
		CallStack: st.CallStack(),
		pages:     make(map[uint64][]int64),
	}
	st.Mem().ForEachPage(func(page uint64, words []int64) {
		cp.pages[page] = append([]int64(nil), words...)
	})
	return cp
}

// Restore applies the checkpoint to a state built for the same program,
// replacing registers, memory and call stack, and discarding any undo
// history. The state behaves exactly as if it had executed the Insts
// committed instructions itself.
func (c *Checkpoint) Restore(st *exec.State) error {
	if st.Program().Name != c.Program {
		return fmt.Errorf("checkpoint: program mismatch: checkpoint %q, state %q",
			c.Program, st.Program().Name)
	}
	st.Regs = c.Regs
	st.SetCallStack(c.CallStack)
	mem := st.Mem()
	mem.Clear()
	for page, words := range c.pages {
		mem.SetPage(page, words)
	}
	st.ResetUndo()
	return nil
}

// Pages returns the number of captured memory pages (for diagnostics and
// tests).
func (c *Checkpoint) Pages() int { return len(c.pages) }
