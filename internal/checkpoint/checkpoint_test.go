package checkpoint_test

import (
	"testing"

	"tracecache/internal/checkpoint"
	"tracecache/internal/exec"
	"tracecache/internal/isa"
	"tracecache/internal/program"
	"tracecache/internal/workload"
)

func benchProg(t *testing.T, name string) *program.Program {
	t.Helper()
	p, err := workload.SharedProgram(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// stepN executes n committed instructions from the entry and returns the
// state and the next PC.
func stepN(t *testing.T, p *program.Program, n uint64) (*exec.State, int) {
	t.Helper()
	st := exec.NewState(p)
	pc := p.Entry
	for i := uint64(0); i < n; i++ {
		info := st.StepAt(pc)
		if info.Halted {
			t.Fatalf("program halted after %d steps", i)
		}
		pc = info.NextPC
	}
	return st, pc
}

// assertLockstep steps both states from their PCs for n instructions and
// fails on the first divergence in PC, outcome, or register state.
func assertLockstep(t *testing.T, a, b *exec.State, pcA, pcB int, n int) {
	t.Helper()
	if pcA != pcB {
		t.Fatalf("start PC %d vs %d", pcA, pcB)
	}
	for i := 0; i < n; i++ {
		ia := a.StepAt(pcA)
		ib := b.StepAt(pcB)
		if ia.NextPC != ib.NextPC || ia.Taken != ib.Taken || ia.Value != ib.Value || ia.Halted != ib.Halted {
			t.Fatalf("step %d diverged: %+v vs %+v", i, ia, ib)
		}
		if ia.Halted {
			break
		}
		pcA, pcB = ia.NextPC, ib.NextPC
	}
	if a.Regs != b.Regs {
		t.Fatalf("register files diverged after %d lockstep steps", n)
	}
	if a.CallDepth() != b.CallDepth() {
		t.Fatalf("call depth %d vs %d", a.CallDepth(), b.CallDepth())
	}
}

func TestCaptureMatchesFunctionalExecution(t *testing.T) {
	p := benchProg(t, "compress")
	const n = 50_000
	cp := checkpoint.Capture(p, n)
	if cp.Insts != n {
		t.Fatalf("Insts = %d, want %d", cp.Insts, n)
	}
	ref, refPC := stepN(t, p, n)
	if cp.PC != refPC {
		t.Fatalf("PC = %d, want %d", cp.PC, refPC)
	}
	if cp.Regs != ref.Regs {
		t.Fatal("captured registers differ from functional execution")
	}
	st := exec.NewState(p)
	if err := cp.Restore(st); err != nil {
		t.Fatal(err)
	}
	if st.UndoLen() != 0 {
		t.Errorf("restored state has %d undo records, want 0", st.UndoLen())
	}
	// The restored state must continue exactly like the reference.
	assertLockstep(t, st, ref, cp.PC, refPC, 20_000)
}

func TestRestoreOverwritesDivergedState(t *testing.T) {
	p := benchProg(t, "go")
	const n = 20_000
	cp := checkpoint.Capture(p, n)
	// Diverge a state far past the checkpoint, then restore into it.
	diverged, _ := stepN(t, p, 3*n)
	diverged.Regs[5] = -12345
	if err := cp.Restore(diverged); err != nil {
		t.Fatal(err)
	}
	fresh := exec.NewState(p)
	if err := cp.Restore(fresh); err != nil {
		t.Fatal(err)
	}
	assertLockstep(t, diverged, fresh, cp.PC, cp.PC, 20_000)
}

// TestCheckpointImmutableAcrossRestores verifies a restored state does not
// alias checkpoint storage: mutating one restored state must not corrupt a
// later restore (the sweep runner restores one checkpoint into many
// concurrently constructed simulators).
func TestCheckpointImmutableAcrossRestores(t *testing.T) {
	p := benchProg(t, "compress")
	const n = 10_000
	cp := checkpoint.Capture(p, n)
	a := exec.NewState(p)
	if err := cp.Restore(a); err != nil {
		t.Fatal(err)
	}
	// Trash a's architectural state.
	for i := 0; i < 5_000; i++ {
		a.StepAt(i % len(p.Code))
	}
	b := exec.NewState(p)
	if err := cp.Restore(b); err != nil {
		t.Fatal(err)
	}
	ref, _ := stepN(t, p, n)
	if b.Regs != ref.Regs {
		t.Fatal("second restore corrupted by mutations of the first")
	}
	assertLockstep(t, b, ref, cp.PC, cp.PC, 10_000)
}

func TestCaptureStopsAtHalt(t *testing.T) {
	b := program.NewBuilder("tiny")
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 7})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp := checkpoint.Capture(p, 1_000)
	if cp.Insts != 2 {
		t.Fatalf("Insts = %d, want 2 (halt not consumed)", cp.Insts)
	}
	st := exec.NewState(p)
	if err := cp.Restore(st); err != nil {
		t.Fatal(err)
	}
	if info := st.StepAt(cp.PC); !info.Halted {
		t.Fatal("restored state does not halt immediately")
	}
	if st.Regs[1] != 8 {
		t.Fatalf("r1 = %d, want 8", st.Regs[1])
	}
}

func TestRestoreRejectsProgramMismatch(t *testing.T) {
	pa := benchProg(t, "compress")
	pb := benchProg(t, "go")
	cp := checkpoint.Capture(pa, 100)
	if err := cp.Restore(exec.NewState(pb)); err == nil {
		t.Fatal("restore into a different program's state succeeded")
	}
}

func TestCaptureCarriesMemoryPages(t *testing.T) {
	p := benchProg(t, "compress")
	cp := checkpoint.Capture(p, 50_000)
	if cp.Pages() == 0 {
		t.Fatal("no memory pages captured from a store-heavy benchmark")
	}
}
