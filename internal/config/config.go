// Package config names the machine configurations of the paper's
// evaluation: the instruction-cache reference machine, the baseline trace
// cache, branch promotion at each studied threshold, trace packing and its
// regulation schemes, the combined configurations, and the
// perfect-memory-disambiguation variants of Section 6.
package config

import (
	"fmt"

	"tracecache/internal/core"
	"tracecache/internal/sim"
)

// ICache returns the reference front end (128KB dual-ported icache, hybrid
// predictor).
func ICache() sim.Config { return sim.ICacheConfig() }

// Baseline returns the paper's baseline trace cache: atomic blocks, no
// promotion, inactive issue, gshare tree predictor.
func Baseline() sim.Config { return sim.DefaultConfig() }

// Promotion returns the baseline plus branch promotion at the given
// threshold, using the restructured three-table predictor of Section 4.
func Promotion(threshold uint32) sim.Config {
	c := sim.DefaultConfig()
	c.Name = fmt.Sprintf("promo-t%d", threshold)
	c.Fill = core.DefaultFillConfig(core.PackAtomic, threshold)
	c.SplitMBP = true
	return c
}

// Packing returns the baseline plus unregulated trace packing (no
// promotion).
func Packing() sim.Config {
	c := sim.DefaultConfig()
	c.Name = "packing"
	c.Fill = core.DefaultFillConfig(core.PackUnregulated, 0)
	return c
}

// PromotionPacking returns promotion (threshold 64 unless overridden) plus
// the given packing policy.
func PromotionPacking(policy core.PackPolicy, threshold uint32) sim.Config {
	c := sim.DefaultConfig()
	c.Name = fmt.Sprintf("promo-pack-%s", policy)
	c.Fill = core.DefaultFillConfig(policy, threshold)
	c.SplitMBP = true
	return c
}

// Oracle returns the configuration with the perfect-memory-disambiguation
// execution core of Section 6.
func Oracle(c sim.Config) sim.Config {
	c.Name += "-oracle"
	c.Engine.MemOracle = true
	return c
}

// PromotionThreshold is the threshold the paper settles on for the
// combined experiments.
const PromotionThreshold = 64

// Best returns the paper's recommended configuration: promotion at
// threshold 64 with cost-regulated trace packing.
func Best() sim.Config {
	return PromotionPacking(core.PackCostRegulated, PromotionThreshold)
}

// EightWide narrows a configuration to an 8-wide fetch machine with
// 8-instruction trace segments (Section 4's near-term design point).
func EightWide(c sim.Config) sim.Config {
	c.Name = "8wide-" + c.Name
	c.FetchWidth = 8
	c.Fill.MaxInsts = 8
	return c
}

// EightWidePromotionHybrid returns the Section 4 suggestion: an 8-wide
// trace cache with branch promotion sequenced by the aggressive hybrid
// single-branch predictor.
func EightWidePromotionHybrid() sim.Config {
	c := EightWide(Promotion(PromotionThreshold))
	c.Name = "8wide-promo-hybrid"
	c.SplitMBP = false
	c.SingleHybrid = true
	return c
}

// All returns every named configuration used by the experiments.
func All() []sim.Config {
	out := []sim.Config{ICache(), Baseline(), Packing()}
	for _, t := range []uint32{8, 16, 32, 64, 128, 256} {
		out = append(out, Promotion(t))
	}
	for _, p := range []core.PackPolicy{core.PackUnregulated, core.PackCostRegulated, core.PackChunk2, core.PackChunk4} {
		out = append(out, PromotionPacking(p, PromotionThreshold))
	}
	out = append(out, Oracle(ICache()), Oracle(Baseline()), Oracle(Best()))
	out = append(out, EightWide(Baseline()), EightWide(Promotion(PromotionThreshold)), EightWidePromotionHybrid())
	return out
}

// aliases maps convenience names to canonical configurations.
var aliases = map[string]func() sim.Config{
	"promote": func() sim.Config { return Promotion(PromotionThreshold) },
	"best":    Best,
	"pack":    Packing,
}

// ByName returns the named configuration. Besides the canonical names
// from All(), a few aliases are accepted: "promote" (promotion at the
// paper's settled threshold), "best" (the recommended combined
// configuration), and "pack" (unregulated packing).
func ByName(name string) (sim.Config, bool) {
	for _, c := range All() {
		if c.Name == name {
			return c, true
		}
	}
	if f, ok := aliases[name]; ok {
		return f(), true
	}
	return sim.Config{}, false
}

// Names lists all configuration names.
func Names() []string {
	cs := All()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}
