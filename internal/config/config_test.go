package config

import (
	"testing"

	"tracecache/internal/core"
)

func TestAllConfigsValid(t *testing.T) {
	cs := All()
	if len(cs) < 12 {
		t.Fatalf("only %d configs", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if seen[c.Name] {
			t.Errorf("duplicate config name %s", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestPromotionConfig(t *testing.T) {
	c := Promotion(64)
	if c.Name != "promo-t64" {
		t.Errorf("name = %s", c.Name)
	}
	if c.Fill.PromoteThreshold != 64 || c.Fill.Packing != core.PackAtomic {
		t.Errorf("fill = %+v", c.Fill)
	}
	if !c.SplitMBP {
		t.Error("promotion should use the restructured predictor")
	}
}

func TestPackingConfig(t *testing.T) {
	c := Packing()
	if c.Fill.Packing != core.PackUnregulated || c.Fill.PromoteThreshold != 0 {
		t.Errorf("fill = %+v", c.Fill)
	}
	if c.SplitMBP {
		t.Error("packing alone keeps the tree predictor")
	}
}

func TestPromotionPackingNames(t *testing.T) {
	c := PromotionPacking(core.PackChunk2, 64)
	if c.Name != "promo-pack-chunk2" {
		t.Errorf("name = %s", c.Name)
	}
	if c.Fill.Packing != core.PackChunk2 || c.Fill.PromoteThreshold != 64 {
		t.Errorf("fill = %+v", c.Fill)
	}
}

func TestOracle(t *testing.T) {
	c := Oracle(Baseline())
	if c.Name != "baseline-oracle" || !c.Engine.MemOracle {
		t.Errorf("oracle = %+v", c)
	}
	// The original is unchanged (value semantics).
	if Baseline().Engine.MemOracle {
		t.Error("Baseline mutated")
	}
}

func TestBest(t *testing.T) {
	c := Best()
	if c.Fill.Packing != core.PackCostRegulated || c.Fill.PromoteThreshold != PromotionThreshold {
		t.Errorf("best = %+v", c.Fill)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		c, ok := ByName(name)
		if !ok || c.Name != name {
			t.Errorf("ByName(%s) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name found")
	}
}

func TestICacheGeometry(t *testing.T) {
	c := ICache()
	if c.ICacheBytes != 128<<10 {
		t.Errorf("icache bytes = %d", c.ICacheBytes)
	}
	if Baseline().ICacheBytes != 4<<10 {
		t.Errorf("supporting icache bytes = %d", Baseline().ICacheBytes)
	}
}
