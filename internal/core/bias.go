// Package core implements the paper's primary contribution: the trace
// cache, the fill unit that builds trace segments from the retired
// instruction stream, branch promotion driven by a branch bias table
// (Section 4), and trace packing with its regulation schemes (Section 5).
package core

// BiasTable detects strongly biased conditional branches (Figure 5). Each
// tagged entry records the previous outcome of a branch and the number of
// consecutive times that outcome has repeated, in a saturating counter.
// The fill unit promotes a branch whose consecutive-outcome count has
// reached the promotion threshold.
type BiasTable struct {
	entries  []biasEntry
	mask     uint32
	tagShift uint
	maxCount uint32
}

type biasEntry struct {
	tag   uint32
	count uint32
	dir   bool
	valid bool
}

// NewBiasTable builds a tagged bias table with size entries (a power of
// two; the paper uses 8K) whose consecutive-outcome counter saturates at
// maxCount.
func NewBiasTable(size int, maxCount uint32) *BiasTable {
	return &BiasTable{
		entries:  make([]biasEntry, size),
		mask:     uint32(size - 1),
		tagShift: log2(size),
		maxCount: maxCount,
	}
}

func log2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}

// Update records a retired branch outcome. A tag mismatch replaces the
// entry (direct-mapped, tagged).
//
//tc:hotpath
func (b *BiasTable) Update(pc int, taken bool) {
	i := uint32(pc) & b.mask
	tag := uint32(pc) >> b.tagShift
	e := &b.entries[i]
	if !e.valid || e.tag != tag {
		*e = biasEntry{tag: tag, count: 1, dir: taken, valid: true}
		return
	}
	if e.dir == taken {
		if e.count < b.maxCount {
			e.count++
		}
		return
	}
	e.dir = taken
	e.count = 1
}

// Lookup returns the recorded direction and consecutive count for the
// branch, and whether the table holds an entry for it.
//
//tc:hotpath
func (b *BiasTable) Lookup(pc int) (dir bool, count uint32, ok bool) {
	i := uint32(pc) & b.mask
	tag := uint32(pc) >> b.tagShift
	e := b.entries[i]
	if !e.valid || e.tag != tag {
		return false, 0, false
	}
	return e.dir, e.count, true
}

// ShouldDemote implements the paper's demotion rule: a faulting promoted
// branch is demoted back to a normal branch if the bias table records two
// or more consecutive outcomes in the direction opposite the promoted one,
// or if the branch misses in the bias table. (A single opposite outcome —
// e.g. the final iteration of a loop — does not demote.)
//
//tc:hotpath
func (b *BiasTable) ShouldDemote(pc int, promotedDir bool) bool {
	dir, count, ok := b.Lookup(pc)
	if !ok {
		return true
	}
	return dir != promotedDir && count >= 2
}
