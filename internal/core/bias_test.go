package core

import (
	"testing"
	"testing/quick"
)

func TestBiasTableConsecutiveCount(t *testing.T) {
	b := NewBiasTable(1024, 1023)
	pc := 42
	if _, _, ok := b.Lookup(pc); ok {
		t.Fatal("cold lookup hit")
	}
	for i := 0; i < 5; i++ {
		b.Update(pc, true)
	}
	dir, count, ok := b.Lookup(pc)
	if !ok || !dir || count != 5 {
		t.Errorf("lookup = (%v,%d,%v), want (true,5,true)", dir, count, ok)
	}
	// A flip resets the count and direction.
	b.Update(pc, false)
	dir, count, ok = b.Lookup(pc)
	if !ok || dir || count != 1 {
		t.Errorf("after flip = (%v,%d,%v), want (false,1,true)", dir, count, ok)
	}
}

func TestBiasTableSaturates(t *testing.T) {
	b := NewBiasTable(64, 7)
	pc := 3
	for i := 0; i < 100; i++ {
		b.Update(pc, true)
	}
	if _, count, _ := b.Lookup(pc); count != 7 {
		t.Errorf("count = %d, want saturated 7", count)
	}
}

func TestBiasTableTagConflict(t *testing.T) {
	b := NewBiasTable(16, 1023)
	// pc=5 and pc=5+16 share an index but differ in tag.
	b.Update(5, true)
	b.Update(5, true)
	b.Update(5+16, false)
	if _, _, ok := b.Lookup(5); ok {
		t.Error("conflicting tag should have replaced the entry")
	}
	dir, count, ok := b.Lookup(5 + 16)
	if !ok || dir || count != 1 {
		t.Errorf("replacement entry = (%v,%d,%v)", dir, count, ok)
	}
}

func TestShouldDemote(t *testing.T) {
	b := NewBiasTable(64, 1023)
	pc := 9
	// Missing entry: demote.
	if !b.ShouldDemote(pc, true) {
		t.Error("miss should demote")
	}
	// One opposite outcome (loop exit): keep the promotion.
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	b.Update(pc, false)
	if b.ShouldDemote(pc, true) {
		t.Error("a single opposite outcome must not demote")
	}
	// Two consecutive opposites: demote.
	b.Update(pc, false)
	if !b.ShouldDemote(pc, true) {
		t.Error("two opposite outcomes must demote")
	}
	// Same-direction history never demotes.
	b.Update(pc, true)
	b.Update(pc, true)
	if b.ShouldDemote(pc, true) {
		t.Error("same-direction history demoted")
	}
}

// Property: after n same-direction updates of a resident branch the count
// is min(n, max) and the direction matches.
func TestBiasTableCountProperty(t *testing.T) {
	f := func(pcRaw uint16, n uint8, dir bool) bool {
		b := NewBiasTable(256, 50)
		pc := int(pcRaw)
		reps := int(n%60) + 1
		for i := 0; i < reps; i++ {
			b.Update(pc, dir)
		}
		d, c, ok := b.Lookup(pc)
		want := uint32(reps)
		if want > 50 {
			want = 50
		}
		return ok && d == dir && c == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
