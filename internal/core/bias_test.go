package core

import (
	"testing"
	"testing/quick"

	"tracecache/internal/isa"
)

func TestBiasTableConsecutiveCount(t *testing.T) {
	b := NewBiasTable(1024, 1023)
	pc := 42
	if _, _, ok := b.Lookup(pc); ok {
		t.Fatal("cold lookup hit")
	}
	for i := 0; i < 5; i++ {
		b.Update(pc, true)
	}
	dir, count, ok := b.Lookup(pc)
	if !ok || !dir || count != 5 {
		t.Errorf("lookup = (%v,%d,%v), want (true,5,true)", dir, count, ok)
	}
	// A flip resets the count and direction.
	b.Update(pc, false)
	dir, count, ok = b.Lookup(pc)
	if !ok || dir || count != 1 {
		t.Errorf("after flip = (%v,%d,%v), want (false,1,true)", dir, count, ok)
	}
}

func TestBiasTableSaturates(t *testing.T) {
	b := NewBiasTable(64, 7)
	pc := 3
	for i := 0; i < 100; i++ {
		b.Update(pc, true)
	}
	if _, count, _ := b.Lookup(pc); count != 7 {
		t.Errorf("count = %d, want saturated 7", count)
	}
}

func TestBiasTableTagConflict(t *testing.T) {
	b := NewBiasTable(16, 1023)
	// pc=5 and pc=5+16 share an index but differ in tag.
	b.Update(5, true)
	b.Update(5, true)
	b.Update(5+16, false)
	if _, _, ok := b.Lookup(5); ok {
		t.Error("conflicting tag should have replaced the entry")
	}
	dir, count, ok := b.Lookup(5 + 16)
	if !ok || dir || count != 1 {
		t.Errorf("replacement entry = (%v,%d,%v)", dir, count, ok)
	}
}

func TestShouldDemote(t *testing.T) {
	b := NewBiasTable(64, 1023)
	pc := 9
	// Missing entry: demote.
	if !b.ShouldDemote(pc, true) {
		t.Error("miss should demote")
	}
	// One opposite outcome (loop exit): keep the promotion.
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	b.Update(pc, false)
	if b.ShouldDemote(pc, true) {
		t.Error("a single opposite outcome must not demote")
	}
	// Two consecutive opposites: demote.
	b.Update(pc, false)
	if !b.ShouldDemote(pc, true) {
		t.Error("two opposite outcomes must demote")
	}
	// Same-direction history never demotes.
	b.Update(pc, true)
	b.Update(pc, true)
	if b.ShouldDemote(pc, true) {
		t.Error("same-direction history demoted")
	}
}

// Property: after n same-direction updates of a resident branch the count
// is min(n, max) and the direction matches.
func TestBiasTableCountProperty(t *testing.T) {
	f := func(pcRaw uint16, n uint8, dir bool) bool {
		b := NewBiasTable(256, 50)
		pc := int(pcRaw)
		reps := int(n%60) + 1
		for i := 0; i < reps; i++ {
			b.Update(pc, dir)
		}
		d, c, ok := b.Lookup(pc)
		want := uint32(reps)
		if want > 50 {
			want = 50
		}
		return ok && d == dir && c == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPromotionThresholdBoundary pins the promotion boundary: the fill
// unit updates the bias table before consulting it, so the t-th
// consecutive same-direction instance of a branch is the first one
// embedded promoted (its update raises the count to exactly t).
func TestPromotionThresholdBoundary(t *testing.T) {
	for _, threshold := range []uint32{1, 2, 8, 64} {
		f := NewFillUnit(FillConfig{PromoteThreshold: threshold}, nil)
		br := isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 2000}
		for i := uint32(0); i < threshold-1; i++ {
			f.Retire(7, br, true)
		}
		if got := f.Stats().Promotions; got != 0 {
			t.Errorf("t=%d: %d instances promoted before the threshold", threshold, got)
		}
		f.Retire(7, br, true)
		if got := f.Stats().Promotions; got != 1 {
			t.Errorf("t=%d: promotions after threshold-th instance = %d, want 1", threshold, got)
		}
		// Every later consecutive instance stays promoted.
		for i := 0; i < 5; i++ {
			f.Retire(7, br, true)
		}
		if got := f.Stats().Promotions; got != 6 {
			t.Errorf("t=%d: promotions after 5 more instances = %d, want 6", threshold, got)
		}
	}
}

// TestPromotionSurvivesSaturation pins that counter saturation does not
// end promotion: once the count saturates at BiasMaxCount >= threshold,
// later same-direction instances keep promoting.
func TestPromotionSurvivesSaturation(t *testing.T) {
	f := NewFillUnit(FillConfig{PromoteThreshold: 8, BiasMaxCount: 8}, nil)
	br := isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 2000}
	for i := 0; i < 100; i++ {
		f.Retire(7, br, true)
	}
	// Instances 8..100 are promoted; the count has long been pinned at 8.
	if got := f.Stats().Promotions; got != 93 {
		t.Errorf("promotions = %d, want 93", got)
	}
	if _, count, _ := f.Bias().Lookup(7); count != 8 {
		t.Errorf("count = %d, want saturated 8", count)
	}
}

// TestBiasMaxCountClampedToThreshold pins the constructor clamp: a
// configuration whose saturation ceiling is below its promotion threshold
// would otherwise never promote (the count could never reach the
// threshold), so NewFillUnit raises the ceiling to the threshold.
func TestBiasMaxCountClampedToThreshold(t *testing.T) {
	f := NewFillUnit(FillConfig{PromoteThreshold: 64, BiasMaxCount: 4}, nil)
	br := isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 2000}
	for i := 0; i < 64; i++ {
		f.Retire(7, br, true)
	}
	if got := f.Stats().Promotions; got != 1 {
		t.Errorf("promotions = %d, want 1 (64th instance)", got)
	}
}

// TestPromotionFlipResets pins that one opposite outcome restarts the
// consecutive count: after a flip the branch must repeat the threshold
// again before promoting.
func TestPromotionFlipResets(t *testing.T) {
	const threshold = 4
	f := NewFillUnit(FillConfig{PromoteThreshold: threshold}, nil)
	br := isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 2000}
	for i := 0; i < 10; i++ {
		f.Retire(7, br, true)
	}
	base := f.Stats().Promotions // instances 4..10
	f.Retire(7, br, false)       // flip: count=1 toward not-taken
	for i := 0; i < threshold-1; i++ {
		f.Retire(7, br, true) // counts 1..3 toward taken
	}
	if got := f.Stats().Promotions; got != base {
		t.Errorf("promotions grew to %d during re-bias (base %d)", got, base)
	}
	f.Retire(7, br, true) // count 4: promoted again
	if got := f.Stats().Promotions; got != base+1 {
		t.Errorf("promotions = %d, want %d", got, base+1)
	}
}

// TestShouldDemoteTable drives the demotion rule through its boundary
// cases: a miss demotes, a single opposite outcome does not, two or more
// consecutive opposite outcomes do, and same-direction history never does.
func TestShouldDemoteTable(t *testing.T) {
	cases := []struct {
		name        string
		outcomes    []bool // Update sequence for the branch
		promotedDir bool
		want        bool
	}{
		{"miss demotes", nil, true, true},
		{"one opposite keeps", []bool{true, true, true, false}, true, false},
		{"two opposite demote", []bool{true, true, false, false}, true, true},
		{"three opposite demote", []bool{false, false, false}, true, true},
		{"same direction keeps", []bool{true, true, true}, true, false},
		{"opposite promoted dir", []bool{false, false}, false, false},
		{"single outcome opposite keeps", []bool{false}, true, false},
	}
	for _, tc := range cases {
		b := NewBiasTable(64, 1023)
		for _, taken := range tc.outcomes {
			b.Update(9, taken)
		}
		if got := b.ShouldDemote(9, tc.promotedDir); got != tc.want {
			t.Errorf("%s: ShouldDemote = %v, want %v", tc.name, got, tc.want)
		}
	}
}
