package core

import (
	"fmt"

	"tracecache/internal/isa"
	"tracecache/internal/obs"
)

// PackPolicy selects how the fill unit treats fetch blocks that do not fit
// in the pending segment (Section 5).
type PackPolicy uint8

// Packing policies.
const (
	// PackAtomic never splits a block across segments (unless the block
	// itself exceeds the segment size). This is the baseline behaviour.
	PackAtomic PackPolicy = iota
	// PackUnregulated greedily fills every remaining slot.
	PackUnregulated
	// PackChunk2 packs only even numbers of instructions.
	PackChunk2
	// PackChunk4 packs only multiples of four instructions.
	PackChunk4
	// PackCostRegulated packs only when at least half the pending segment
	// is empty, or the pending segment contains a short backward branch
	// (a tight loop, where unrolling pays for the redundancy).
	PackCostRegulated
)

var packNames = [...]string{"atomic", "unregulated", "chunk2", "chunk4", "costreg"}

// String names the policy.
func (p PackPolicy) String() string {
	if int(p) < len(packNames) {
		return packNames[p]
	}
	return fmt.Sprintf("pack(%d)", uint8(p))
}

// chunk returns the packing granularity for chunk-regulated policies.
func (p PackPolicy) chunk() int {
	switch p {
	case PackChunk2:
		return 2
	case PackChunk4:
		return 4
	}
	return 1
}

// TightLoopDisplacement is the maximum backward-branch displacement (in
// instructions) that cost-regulated packing treats as a tight loop.
const TightLoopDisplacement = 32

// FillConfig parameterises the fill unit.
type FillConfig struct {
	MaxInsts    int // instructions per segment (paper: 16)
	MaxBranches int // non-promoted conditional branches per segment (paper: 3)
	Packing     PackPolicy
	// PromoteThreshold is the consecutive-outcome count at which a branch
	// is promoted; 0 disables promotion.
	PromoteThreshold uint32
	// BiasTableSize is the number of bias table entries (paper: 8K).
	BiasTableSize int
	// BiasMaxCount saturates the consecutive-outcome counter; 0 selects a
	// default comfortably above the largest threshold studied (1023).
	BiasMaxCount uint32
	// StaticPromotions, when non-nil, switches the fill unit to static
	// promotion (Section 4's compile-time variant): a conditional branch
	// is promoted iff it is annotated here and its retired outcome matches
	// the annotated direction. The bias table and PromoteThreshold are
	// not used.
	StaticPromotions map[int]bool
}

// DefaultFillConfig returns the paper's fill unit geometry with the given
// packing policy and promotion threshold.
func DefaultFillConfig(p PackPolicy, threshold uint32) FillConfig {
	return FillConfig{
		MaxInsts:         16,
		MaxBranches:      3,
		Packing:          p,
		PromoteThreshold: threshold,
		BiasTableSize:    8192,
	}
}

// FillStats counts fill unit activity.
type FillStats struct {
	Retired      uint64
	Segments     uint64
	InstsWritten uint64
	Promotions   uint64 // promoted branch instances embedded in segments
	Branches     uint64 // conditional branch instances embedded in segments
	Splits       uint64 // blocks fragmented across segments
	Reasons      [FinalAtomic + 1]uint64
}

// AvgSegmentLen returns the mean built-segment length.
func (s FillStats) AvgSegmentLen() float64 {
	if s.Segments == 0 {
		return 0
	}
	return float64(s.InstsWritten) / float64(s.Segments)
}

// maxBlockBuffer bounds the in-progress block collector; straight-line runs
// longer than this are force-broken (they exceed the segment size many
// times over, so every policy would split them anyway).
const maxBlockBuffer = 256

// FillUnit collects blocks from the retired instruction stream and builds
// trace segments (Section 3: "the fill unit collects blocks after they
// retire"). Finalized segments are written to the trace cache.
type FillUnit struct {
	cfg             FillConfig
	tc              *TraceCache
	bias            *BiasTable
	pending         []SegInst
	pendingBranches int
	block           []SegInst
	blockScratch    []SegInst // mergeBlock working copy, reused across calls
	stats           FillStats
	obs             *obs.Bus
	// OnSegment, when set, observes every finalized segment.
	OnSegment func(*Segment)
	// OnPack, when set, observes every packing split before the packed
	// prefix is appended: the pending segment as it stood, the free slots,
	// the instructions taken, and the length of the block being split.
	OnPack func(pending []SegInst, space, take, blockLen int)
}

// NewFillUnit builds a fill unit writing into tc (which may be nil for
// analysis-only use).
func NewFillUnit(cfg FillConfig, tc *TraceCache) *FillUnit {
	if cfg.MaxInsts <= 0 {
		cfg.MaxInsts = 16
	}
	if cfg.MaxBranches <= 0 {
		cfg.MaxBranches = 3
	}
	if cfg.BiasMaxCount == 0 {
		cfg.BiasMaxCount = 1023
	}
	// The consecutive-outcome counter must be able to reach the promotion
	// threshold: a saturation cap below it would silently disable
	// promotion (count saturates at BiasMaxCount and the >= threshold
	// test never passes). The shipped configurations use thresholds well
	// under the default cap, so the clamp is behaviour-neutral for them.
	if cfg.BiasMaxCount < cfg.PromoteThreshold {
		cfg.BiasMaxCount = cfg.PromoteThreshold
	}
	f := &FillUnit{cfg: cfg, tc: tc}
	if cfg.PromoteThreshold > 0 && cfg.StaticPromotions == nil {
		size := cfg.BiasTableSize
		if size <= 0 {
			size = 8192
		}
		f.bias = NewBiasTable(size, cfg.BiasMaxCount)
	}
	return f
}

// Config returns the fill configuration.
func (f *FillUnit) Config() FillConfig { return f.cfg }

// Bias returns the branch bias table (nil when promotion is disabled).
func (f *FillUnit) Bias() *BiasTable { return f.bias }

// Stats returns fill activity counters.
func (f *FillUnit) Stats() FillStats { return f.stats }

// SetObserver attaches an event bus; the fill unit emits segment
// finalize, packing split, and branch promotion events to it. Events
// carry no cycle (the fill unit has no clock); the bus stamps them.
func (f *FillUnit) SetObserver(b *obs.Bus) { f.obs = b }

// Retire feeds one retired instruction to the fill unit. taken is the
// outcome for conditional branches.
//
//tc:hotpath
func (f *FillUnit) Retire(pc int, in isa.Inst, taken bool) {
	f.stats.Retired++
	si := SegInst{PC: pc, Inst: in, Taken: taken}
	switch {
	case in.IsCondBranch() && f.cfg.StaticPromotions != nil:
		if dir, ok := f.cfg.StaticPromotions[pc]; ok && dir == taken {
			si.Promoted = true
		}
	case in.IsCondBranch() && f.bias != nil:
		f.bias.Update(pc, taken)
		if dir, count, ok := f.bias.Lookup(pc); ok && count >= f.cfg.PromoteThreshold && dir == taken {
			si.Promoted = true
		}
	}
	if si.Promoted && f.obs.Enabled(obs.KindPromote) {
		ev := obs.Event{Kind: obs.KindPromote, PC: pc}
		if taken {
			ev.Flags |= obs.FlagTaken
		}
		f.obs.Emit(ev)
	}
	f.block = append(f.block, si)
	if in.IsControl() || len(f.block) >= maxBlockBuffer {
		f.mergeBlock()
	}
}

// mergeBlock folds the completed block into the pending segment, splitting
// it per the packing policy when it does not fit. The block is copied into
// a reusable scratch buffer so the collector buffer can be truncated and
// refilled in place instead of growing a fresh array per block.
//
//tc:hotpath
func (f *FillUnit) mergeBlock() {
	blk := append(f.blockScratch[:0], f.block...)
	f.blockScratch = blk[:0]
	f.block = f.block[:0]
	for len(blk) > 0 {
		space := f.cfg.MaxInsts - len(f.pending)
		if len(blk) <= space {
			f.appendInsts(blk)
			last := blk[len(blk)-1]
			blk = nil
			switch {
			case len(f.pending) == f.cfg.MaxInsts:
				f.finalize(FinalMaxSize)
			case last.Inst.TerminatesSegment():
				f.finalize(FinalTerminator)
			case f.pendingBranches >= f.cfg.MaxBranches:
				f.finalize(FinalMaxBranches)
			}
			return
		}
		take := f.packAmount(space, len(blk))
		if take <= 0 {
			f.finalize(FinalAtomic)
			continue
		}
		if f.OnPack != nil {
			f.OnPack(f.pending, space, take, len(blk))
		}
		f.appendInsts(blk[:take])
		blk = blk[take:]
		f.stats.Splits++
		if f.obs.Enabled(obs.KindSegPack) {
			f.obs.Emit(obs.Event{Kind: obs.KindSegPack, PC: blk[0].PC, V1: uint64(take)})
		}
		if len(f.pending) == f.cfg.MaxInsts {
			f.finalize(FinalMaxSize)
		} else {
			f.finalize(FinalAtomic)
		}
	}
}

// packAmount decides how many instructions of an unfitting block to pack
// into the remaining space.
//
//tc:hotpath
func (f *FillUnit) packAmount(space, blockLen int) int {
	switch f.cfg.Packing {
	case PackAtomic:
		if blockLen > f.cfg.MaxInsts {
			// Oversized blocks must be split under every policy.
			return space
		}
		return 0
	case PackUnregulated:
		return space
	case PackChunk2, PackChunk4:
		n := f.cfg.Packing.chunk()
		return space / n * n
	case PackCostRegulated:
		if f.packingWorthwhile() {
			return space
		}
		if blockLen > f.cfg.MaxInsts && len(f.pending) == 0 {
			return space
		}
		return 0
	}
	return 0
}

// packingWorthwhile implements the cost-regulated test: the segment is
// "half empty" in the sense that the unused slots amount to at least half
// of the instructions already pending (unused*2 >= len(pending), i.e. the
// segment is at most two-thirds full), or the pending segment contains a
// tight backward branch. Note the first trigger compares against the
// pending length, not against half the segment capacity; the self-check
// layer and the fill-unit tests pin this exact rule.
//
//tc:hotpath
func (f *FillUnit) packingWorthwhile() bool {
	unused := f.cfg.MaxInsts - len(f.pending)
	if unused*2 >= len(f.pending) {
		return true
	}
	for _, si := range f.pending {
		if si.Inst.Op == isa.OpBr && si.Inst.Target <= si.PC &&
			si.PC-si.Inst.Target <= TightLoopDisplacement {
			return true
		}
	}
	return false
}

//tc:hotpath
func (f *FillUnit) appendInsts(insts []SegInst) {
	for _, si := range insts {
		f.pending = append(f.pending, si)
		if si.Inst.IsCondBranch() {
			f.stats.Branches++
			if si.Promoted {
				f.stats.Promotions++
			} else {
				f.pendingBranches++
			}
		}
	}
}

// finalize writes the pending segment to the trace cache and resets it.
//
//tc:hotpath
func (f *FillUnit) finalize(reason FinalizeReason) {
	if len(f.pending) == 0 {
		return
	}
	// The segment and its instruction clone outlive the fill unit: they are
	// handed to the trace cache, which keeps them until eviction. Allocating
	// here is the ownership transfer, not leakage from the hot loop.
	//tcvet:ignore hotalloc segment persists in the trace cache; per-finalize allocation is intentional
	seg := &Segment{
		Start: f.pending[0].PC,
		//tcvet:ignore hotalloc clone gives the cached segment its own backing array
		Insts:    append([]SegInst(nil), f.pending...),
		Reason:   reason,
		branches: f.pendingBranches,
	}
	f.pending = f.pending[:0]
	f.pendingBranches = 0
	f.stats.Segments++
	f.stats.InstsWritten += uint64(seg.Len())
	f.stats.Reasons[reason]++
	if f.tc != nil {
		f.tc.Insert(seg)
	}
	if f.obs.Enabled(obs.KindSegFinalize) {
		f.obs.Emit(obs.Event{
			Kind: obs.KindSegFinalize, PC: seg.Start,
			V1: uint64(seg.Len()), V2: uint64(reason), V3: uint64(seg.NumPromoted()),
		})
	}
	if f.OnSegment != nil {
		f.OnSegment(seg)
	}
}

// Align finalizes the pending segment so the next retired instruction
// starts a new one. The simulator calls it when the next retiring
// instruction was the start of a trace-cache-miss fetch: real fill units
// capture the missed trace starting exactly at the missed fetch address,
// keeping trace cache contents aligned with the addresses the front end
// requests.
func (f *FillUnit) Align() {
	if len(f.block) > 0 {
		// Flush the in-progress partial block through the normal merge
		// path so the segment capacity limits hold; the boundary falls
		// mid-block only when the previous fetch ended mid-block.
		f.mergeBlock()
	}
	f.finalize(FinalAtomic)
}

// Pending returns the current pending segment length (for tests).
func (f *FillUnit) Pending() int { return len(f.pending) }
