package core

import (
	"testing"
	"testing/quick"

	"tracecache/internal/isa"
)

// feeder drives a fill unit with synthetic retired blocks and collects the
// segments it builds.
type feeder struct {
	f    *FillUnit
	segs []*Segment
	pc   int
}

func newFeeder(cfg FillConfig) *feeder {
	fd := &feeder{f: NewFillUnit(cfg, nil)}
	fd.f.OnSegment = func(s *Segment) { fd.segs = append(fd.segs, s) }
	return fd
}

// block retires n-1 ALU instructions followed by a conditional branch
// whose target is far forward (so it never looks like a tight loop).
func (fd *feeder) block(n int, taken bool) {
	for i := 0; i < n-1; i++ {
		fd.f.Retire(fd.pc, isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}, false)
		fd.pc++
	}
	fd.f.Retire(fd.pc, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: fd.pc + 1000}, taken)
	fd.pc++
}

// run retires n ALU instructions ending with op.
func (fd *feeder) run(n int, op isa.Op) {
	for i := 0; i < n-1; i++ {
		fd.f.Retire(fd.pc, isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}, false)
		fd.pc++
	}
	fd.f.Retire(fd.pc, isa.Inst{Op: op, Target: 0}, false)
	fd.pc++
}

func TestFillAtomicThreeBranchLimit(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackAtomic, 0))
	fd.block(4, true)
	fd.block(4, false)
	fd.block(4, true) // third branch finalizes
	if len(fd.segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(fd.segs))
	}
	s := fd.segs[0]
	if s.Len() != 12 || s.NumBranches() != 3 || s.Reason != FinalMaxBranches {
		t.Errorf("segment = %v", s)
	}
}

func TestFillAtomicBlockDoesNotFit(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackAtomic, 0))
	fd.block(13, true)
	fd.block(9, true) // 9 > 3 remaining: atomic finalize at 13
	if len(fd.segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(fd.segs))
	}
	if fd.segs[0].Len() != 13 || fd.segs[0].Reason != FinalAtomic {
		t.Errorf("segment = %v", fd.segs[0])
	}
	if fd.f.Pending() != 9 {
		t.Errorf("pending = %d, want 9", fd.f.Pending())
	}
}

func TestFillMaxSizeExactFit(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackAtomic, 0))
	fd.block(8, true)
	fd.block(8, false)
	if len(fd.segs) != 1 || fd.segs[0].Len() != 16 || fd.segs[0].Reason != FinalMaxSize {
		t.Fatalf("segments = %v", fd.segs)
	}
}

func TestFillTerminator(t *testing.T) {
	for _, op := range []isa.Op{isa.OpRet, isa.OpJmpInd, isa.OpTrap, isa.OpHalt} {
		fd := newFeeder(DefaultFillConfig(PackAtomic, 0))
		fd.run(5, op)
		if len(fd.segs) != 1 || fd.segs[0].Reason != FinalTerminator {
			t.Errorf("%v: segments = %v", op, fd.segs)
		}
	}
}

func TestFillCallDoesNotTerminate(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackAtomic, 0))
	fd.run(4, isa.OpCall)
	if len(fd.segs) != 0 {
		t.Fatalf("call terminated segment: %v", fd.segs)
	}
	if fd.f.Pending() != 4 {
		t.Errorf("pending = %d", fd.f.Pending())
	}
	fd.run(4, isa.OpJmp)
	if len(fd.segs) != 0 {
		t.Fatalf("jmp terminated segment")
	}
}

func TestFillUnregulatedPackingSplits(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackUnregulated, 0))
	fd.block(13, true)
	fd.block(9, true) // 3 packed into first segment; 6 start the next
	if len(fd.segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(fd.segs))
	}
	s := fd.segs[0]
	if s.Len() != 16 || s.Reason != FinalMaxSize {
		t.Errorf("segment = %v", s)
	}
	// Packed fragment contains no branch.
	if s.NumBranches() != 1 {
		t.Errorf("branches = %d, want 1", s.NumBranches())
	}
	if fd.f.Pending() != 6 {
		t.Errorf("pending remainder = %d, want 6", fd.f.Pending())
	}
	if fd.f.Stats().Splits != 1 {
		t.Errorf("splits = %d", fd.f.Stats().Splits)
	}
}

func TestFillChunk2PacksEvenCounts(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackChunk2, 0))
	fd.block(13, true)
	fd.block(9, true) // space 3 -> pack 2, finalize at 15 (FinalAtomic)
	if len(fd.segs) != 1 {
		t.Fatalf("segments = %d", len(fd.segs))
	}
	if fd.segs[0].Len() != 15 || fd.segs[0].Reason != FinalAtomic {
		t.Errorf("segment = %v", fd.segs[0])
	}
	if fd.f.Pending() != 7 {
		t.Errorf("pending = %d, want 7", fd.f.Pending())
	}
}

func TestFillChunk4RefusesSmallSpace(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackChunk4, 0))
	fd.block(13, true)
	fd.block(9, true) // space 3 -> pack 0 -> atomic finalize at 13
	if len(fd.segs) != 1 {
		t.Fatalf("segments = %d", len(fd.segs))
	}
	if fd.segs[0].Len() != 13 || fd.segs[0].Reason != FinalAtomic {
		t.Errorf("segment = %v", fd.segs[0])
	}
	if fd.f.Pending() != 9 {
		t.Errorf("pending = %d", fd.f.Pending())
	}
}

func TestFillCostRegulatedPacksWhenHalfEmpty(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackCostRegulated, 0))
	fd.block(10, true) // pending 10, unused 6 >= 5: packing allowed
	fd.block(9, true)
	if len(fd.segs) != 1 || fd.segs[0].Len() != 16 {
		t.Fatalf("segments = %v", fd.segs)
	}
	if fd.f.Pending() != 3 {
		t.Errorf("pending = %d, want 3", fd.f.Pending())
	}
}

func TestFillCostRegulatedRefusesWhenNearlyFull(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackCostRegulated, 0))
	fd.block(13, true) // pending 13, unused 3 < 6.5: refuse (no tight loop)
	fd.block(9, true)
	if len(fd.segs) != 1 || fd.segs[0].Len() != 13 || fd.segs[0].Reason != FinalAtomic {
		t.Fatalf("segments = %v", fd.segs)
	}
}

func TestFillCostRegulatedTightLoopOverride(t *testing.T) {
	cfg := DefaultFillConfig(PackCostRegulated, 0)
	f := NewFillUnit(cfg, nil)
	var segs []*Segment
	f.OnSegment = func(s *Segment) { segs = append(segs, s) }
	// A 13-instruction block ending in a short backward branch (tight
	// loop): packing proceeds despite the nearly-full segment.
	pc := 100
	for i := 0; i < 12; i++ {
		f.Retire(pc, isa.Inst{Op: isa.OpAdd}, false)
		pc++
	}
	f.Retire(pc, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 100}, true)
	// Next block of 9 does not fit; tight loop allows packing.
	for i := 0; i < 8; i++ {
		f.Retire(100+i, isa.Inst{Op: isa.OpAdd}, false)
	}
	f.Retire(108, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 100}, true)
	if len(segs) != 1 || segs[0].Len() != 16 || segs[0].Reason != FinalMaxSize {
		t.Fatalf("segments = %v", segs)
	}
}

func TestFillOversizedBlockSplitsEvenAtomic(t *testing.T) {
	fd := newFeeder(DefaultFillConfig(PackAtomic, 0))
	fd.block(40, true)
	// 40-instruction block: two full segments and an 8-instruction pending.
	if len(fd.segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(fd.segs))
	}
	for _, s := range fd.segs {
		if s.Len() != 16 || s.Reason != FinalMaxSize {
			t.Errorf("segment = %v", s)
		}
	}
	if fd.f.Pending() != 8 {
		t.Errorf("pending = %d, want 8", fd.f.Pending())
	}
}

func TestFillPromotionEmbedsStaticPrediction(t *testing.T) {
	cfg := DefaultFillConfig(PackAtomic, 4)
	f := NewFillUnit(cfg, nil)
	var segs []*Segment
	f.OnSegment = func(s *Segment) { segs = append(segs, s) }
	// Retire the same taken branch enough times to cross the threshold.
	retireBlock := func() {
		f.Retire(0, isa.Inst{Op: isa.OpAdd}, false)
		f.Retire(1, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 0}, true)
	}
	for i := 0; i < 3; i++ {
		retireBlock()
	}
	// Not yet promoted: 3 branches finalize a segment.
	if len(segs) != 1 || segs[0].NumPromoted() != 0 {
		t.Fatalf("premature promotion: %v", segs)
	}
	// The 4th..th outcomes promote.
	for i := 0; i < 8; i++ {
		retireBlock()
	}
	last := segs[len(segs)-1]
	if last.NumPromoted() == 0 {
		t.Errorf("no promotion after threshold: %v", last)
	}
	for _, si := range last.Insts {
		if si.Promoted && (!si.Taken || si.Inst.Op != isa.OpBr) {
			t.Errorf("promoted inst wrong: %+v", si)
		}
	}
	if f.Stats().Promotions == 0 {
		t.Error("promotion stats not counted")
	}
}

func TestFillPromotedBranchesDoNotCountTowardLimit(t *testing.T) {
	cfg := DefaultFillConfig(PackAtomic, 2)
	f := NewFillUnit(cfg, nil)
	var segs []*Segment
	f.OnSegment = func(s *Segment) { segs = append(segs, s) }
	// Warm the bias table so branch 1 promotes, then flush pending state.
	for i := 0; i < 4; i++ {
		f.Retire(0, isa.Inst{Op: isa.OpAdd}, false)
		f.Retire(1, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 0}, true)
	}
	f.Retire(2, isa.Inst{Op: isa.OpRet}, false)
	segs = segs[:0]
	// Now a run: promoted branch repeated 5 times then a terminator. A
	// non-promoted branch would finalize after 3; promoted ones must not.
	for i := 0; i < 5; i++ {
		f.Retire(0, isa.Inst{Op: isa.OpAdd}, false)
		f.Retire(1, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 0}, true)
	}
	f.Retire(2, isa.Inst{Op: isa.OpRet}, false)
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1 (promoted branches must not finalize)", len(segs))
	}
	if segs[0].Len() != 11 || segs[0].NumPromoted() != 5 || segs[0].NumBranches() != 0 {
		t.Errorf("segment = %v", segs[0])
	}
}

func TestFillWritesToTraceCache(t *testing.T) {
	tc := MustNewTraceCache(TraceCacheConfig{Entries: 64, Assoc: 4})
	f := NewFillUnit(DefaultFillConfig(PackAtomic, 0), tc)
	f.Retire(10, isa.Inst{Op: isa.OpAdd}, false)
	f.Retire(11, isa.Inst{Op: isa.OpRet}, false)
	if s := tc.Lookup(10); s == nil || s.Len() != 2 {
		t.Errorf("segment not written: %v", s)
	}
}

func TestFillStatsAverages(t *testing.T) {
	var st FillStats
	if st.AvgSegmentLen() != 0 {
		t.Error("empty average")
	}
	fd := newFeeder(DefaultFillConfig(PackAtomic, 0))
	fd.run(4, isa.OpRet)
	fd.run(8, isa.OpRet)
	st = fd.f.Stats()
	if st.AvgSegmentLen() != 6 {
		t.Errorf("avg = %v, want 6", st.AvgSegmentLen())
	}
	if st.Retired != 12 || st.Segments != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFillDefaultsApplied(t *testing.T) {
	f := NewFillUnit(FillConfig{PromoteThreshold: 8}, nil)
	cfg := f.Config()
	if cfg.MaxInsts != 16 || cfg.MaxBranches != 3 || cfg.BiasMaxCount != 1023 {
		t.Errorf("defaults = %+v", cfg)
	}
	if f.Bias() == nil {
		t.Error("bias table missing with promotion enabled")
	}
	f2 := NewFillUnit(FillConfig{}, nil)
	if f2.Bias() != nil {
		t.Error("bias table created with promotion disabled")
	}
}

// Property: under any policy, every built segment obeys the structural
// invariants: 1..16 instructions, at most 3 non-promoted branches,
// terminator only at the end, and consecutive instructions linked by the
// embedded path.
func TestFillSegmentInvariantsProperty(t *testing.T) {
	policies := []PackPolicy{PackAtomic, PackUnregulated, PackChunk2, PackChunk4, PackCostRegulated}
	f := func(sizes []uint8, seed int64) bool {
		for _, pol := range policies {
			cfg := DefaultFillConfig(pol, 3)
			fu := NewFillUnit(cfg, nil)
			ok := true
			fu.OnSegment = func(s *Segment) {
				if s.Len() < 1 || s.Len() > 16 || s.NumBranches() > 3 {
					ok = false
				}
				for i, si := range s.Insts {
					if si.Inst.TerminatesSegment() && i != s.Len()-1 {
						ok = false
					}
					if i+1 < s.Len() {
						next, known := si.NextPC()
						if !known || next != s.Insts[i+1].PC {
							ok = false
						}
					}
				}
			}
			pc := 0
			rnd := seed
			next := func() int64 {
				rnd = rnd*6364136223846793005 + 1442695040888963407
				return rnd >> 33
			}
			for _, raw := range sizes {
				n := int(raw%20) + 1
				for i := 0; i < n-1; i++ {
					fu.Retire(pc, isa.Inst{Op: isa.OpAdd}, false)
					pc++
				}
				switch next() % 4 {
				case 0:
					fu.Retire(pc, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: pc + 1}, next()%2 == 0)
					pc++
				case 1:
					fu.Retire(pc, isa.Inst{Op: isa.OpJmp, Target: pc + 1}, false)
					pc++
				case 2:
					fu.Retire(pc, isa.Inst{Op: isa.OpRet}, false)
					pc++
				default:
					fu.Retire(pc, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: pc + 1}, false)
					pc++
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPackPolicyString(t *testing.T) {
	if PackAtomic.String() != "atomic" || PackCostRegulated.String() != "costreg" {
		t.Error("policy names wrong")
	}
	if PackPolicy(99).String() != "pack(99)" {
		t.Error("unknown policy name wrong")
	}
}

// TestFillCostRegulatedPendingLengthBoundary pins the implemented
// half-empty trigger, unused*2 >= len(pending): with 16-instruction
// segments, 10 pending instructions still pack (6 unused, 12 >= 10) while
// 11 do not (5 unused, 10 < 11). A capacity-halves reading (pack iff at
// most 8 pending) would fail both cases.
func TestFillCostRegulatedPendingLengthBoundary(t *testing.T) {
	cases := []struct {
		pending   int
		wantSplit bool
	}{
		{8, true},  // exactly half the capacity: both readings pack
		{10, true}, // boundary of the implemented rule: 12 >= 10
		{11, false},
		{14, false},
	}
	for _, tc := range cases {
		fd := newFeeder(DefaultFillConfig(PackCostRegulated, 0))
		fd.block(tc.pending, true)
		// The follow-on block must exceed the free space so a packing
		// decision happens at all.
		fd.block(17-tc.pending, true)
		splits := fd.f.Stats().Splits
		if tc.wantSplit && (splits != 1 || len(fd.segs) != 1 || fd.segs[0].Len() != 16) {
			t.Errorf("pending=%d: splits=%d segs=%d, want a packed max-size segment",
				tc.pending, splits, len(fd.segs))
		}
		if !tc.wantSplit && (splits != 0 || len(fd.segs) != 1 || fd.segs[0].Len() != tc.pending) {
			t.Errorf("pending=%d: splits=%d segs=%d, want an unpacked atomic segment",
				tc.pending, splits, len(fd.segs))
		}
		if !tc.wantSplit && fd.segs[0].Reason != FinalAtomic {
			t.Errorf("pending=%d: reason = %v, want FinalAtomic", tc.pending, fd.segs[0].Reason)
		}
	}
}

// TestFillCostRegulatedTightLoopDisplacementBoundary pins the second
// trigger's displacement cutoff: a backward branch exactly
// TightLoopDisplacement instructions back forces packing even when the
// segment is nearly full; one instruction further does not.
func TestFillCostRegulatedTightLoopDisplacementBoundary(t *testing.T) {
	for _, tc := range []struct {
		disp      int
		wantSplit bool
	}{
		{TightLoopDisplacement, true},
		{TightLoopDisplacement + 1, false},
	} {
		cfg := DefaultFillConfig(PackCostRegulated, 0)
		f := NewFillUnit(cfg, nil)
		var segs []*Segment
		f.OnSegment = func(s *Segment) { segs = append(segs, s) }
		pc := 1000
		// 12 pending instructions (5 unused, 10 < 12: half-empty trigger
		// off) ending in a backward branch of the given displacement.
		for i := 0; i < 11; i++ {
			f.Retire(pc, isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}, false)
			pc++
		}
		f.Retire(pc, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: pc - tc.disp}, true)
		pc++
		// An 8-instruction block that does not fit in the 4 free slots.
		for i := 0; i < 7; i++ {
			f.Retire(pc, isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}, false)
			pc++
		}
		f.Retire(pc, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: pc + 1000}, false)
		splits := f.Stats().Splits
		if tc.wantSplit && (splits != 1 || len(segs) != 1 || segs[0].Len() != 16) {
			t.Errorf("disp=%d: splits=%d segs=%d, want tight-loop packing", tc.disp, splits, len(segs))
		}
		if !tc.wantSplit && (splits != 0 || len(segs) != 1 || segs[0].Len() != 12) {
			t.Errorf("disp=%d: splits=%d segs=%d, want no packing", tc.disp, splits, len(segs))
		}
	}
}
