package core

import (
	"testing"

	"tracecache/internal/isa"
)

// FuzzFillUnit drives the fill unit with arbitrary retire streams under
// every packing policy and checks the structural segment invariants: the
// fill unit faces whatever the retire stream contains.
func FuzzFillUnit(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 0, 2, 3, 0, 0, 0, 0, 4}, uint8(1), uint8(8))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1}, uint8(4), uint8(2))
	f.Add([]byte{5, 0, 0, 5, 0, 0, 5}, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, stream []byte, policy, threshold uint8) {
		cfg := DefaultFillConfig(PackPolicy(policy%5), uint32(threshold%16))
		fu := NewFillUnit(cfg, nil)
		bad := ""
		fu.OnSegment = func(s *Segment) {
			if s.Len() < 1 || s.Len() > cfg.MaxInsts {
				bad = "segment length out of range"
			}
			if s.NumBranches() > cfg.MaxBranches {
				bad = "too many branches"
			}
			for i, si := range s.Insts {
				if si.Inst.TerminatesSegment() && i != s.Len()-1 {
					bad = "terminator mid-segment"
				}
			}
		}
		pc := 0
		for _, b := range stream {
			var in isa.Inst
			taken := b&0x80 != 0
			switch b % 6 {
			case 0:
				in = isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}
			case 1:
				in = isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: int(b) % 64}
			case 2:
				in = isa.Inst{Op: isa.OpJmp, Target: int(b) % 64}
			case 3:
				in = isa.Inst{Op: isa.OpCall, Target: int(b) % 64}
			case 4:
				in = isa.Inst{Op: isa.OpRet}
			default:
				in = isa.Inst{Op: isa.OpTrap}
			}
			fu.Retire(pc, in, taken)
			pc = (pc + 1) % 4096
			if bad != "" {
				t.Fatalf("%s (stream %v, policy %d)", bad, stream, policy%5)
			}
		}
		if fu.Pending() > cfg.MaxInsts {
			t.Fatalf("pending overflow: %d", fu.Pending())
		}
	})
}
