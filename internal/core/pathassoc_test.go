package core

import (
	"testing"

	"tracecache/internal/isa"
)

// pathSeg builds a two-branch segment at start whose embedded outcomes are
// given by the two booleans.
func pathSeg(start int, b0, b1 bool) *Segment {
	return &Segment{Start: start, Insts: []SegInst{
		{PC: start, Inst: isa.Inst{Op: isa.OpAdd}},
		{PC: start + 1, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: start + 10}, Taken: b0},
		{PC: pathNext(start+1, b0, start+10), Inst: isa.Inst{Op: isa.OpAdd}},
		{PC: pathNext(start+1, b0, start+10) + 1, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: start + 20}, Taken: b1},
	}, branches: 2}
}

func pathNext(pc int, taken bool, target int) int {
	if taken {
		return target
	}
	return pc + 1
}

func TestPathSig(t *testing.T) {
	s := pathSeg(0, true, false)
	sig, n := s.PathSig()
	if n != 2 || sig != 0b01 {
		t.Errorf("sig = %b, n = %d", sig, n)
	}
	// Promoted branches are excluded from the signature.
	s.Insts[1].Promoted = true
	sig, n = s.PathSig()
	if n != 1 || sig != 0b0 {
		t.Errorf("promoted-adjusted sig = %b, n = %d", sig, n)
	}
}

func TestPathAssocInsertKeepsDistinctPaths(t *testing.T) {
	tc := MustNewTraceCache(TraceCacheConfig{Entries: 16, Assoc: 4, PathAssoc: true})
	a := pathSeg(5, true, true)
	b := pathSeg(5, false, true)
	tc.Insert(a)
	tc.Insert(b)
	// Both paths resident: select by predicted path.
	if got := tc.LookupPath(5, 0b11); got != a {
		t.Errorf("path 11 = %v", got)
	}
	if got := tc.LookupPath(5, 0b10); got != b {
		t.Errorf("path 10 = %v", got)
	}
	// Same start and same path replaces.
	a2 := pathSeg(5, true, true)
	tc.Insert(a2)
	if got := tc.LookupPath(5, 0b11); got != a2 {
		t.Error("same-path insert did not replace")
	}
	if tc.Stats().Overwrites != 1 {
		t.Errorf("overwrites = %d", tc.Stats().Overwrites)
	}
}

func TestNonPathAssocReplacesRegardlessOfPath(t *testing.T) {
	tc := MustNewTraceCache(TraceCacheConfig{Entries: 16, Assoc: 4})
	a := pathSeg(5, true, true)
	b := pathSeg(5, false, true)
	tc.Insert(a)
	tc.Insert(b)
	if got := tc.Lookup(5); got != b {
		t.Error("non-path-assoc must keep one segment per start")
	}
}

func TestLookupPathPrefixMatch(t *testing.T) {
	tc := MustNewTraceCache(TraceCacheConfig{Entries: 16, Assoc: 4, PathAssoc: true})
	a := pathSeg(5, true, true)
	b := pathSeg(5, false, false)
	tc.Insert(a)
	tc.Insert(b)
	// Predicted path 01: first branch taken (matches a's first bit),
	// second not-taken: a matches 1 leading bit, b matches 0.
	if got := tc.LookupPath(5, 0b01); got != a {
		t.Error("longest-prefix selection failed")
	}
	if tc.LookupPath(99, 0) != nil {
		t.Error("miss returned a segment")
	}
}

func TestMatchLen(t *testing.T) {
	cases := []struct {
		sig, path uint8
		n, want   int
	}{
		{0b11, 0b11, 2, 2},
		{0b11, 0b01, 2, 1},
		{0b11, 0b10, 2, 0},
		{0b0, 0b0, 0, 0},
		{0b101, 0b101, 3, 3},
	}
	for _, c := range cases {
		if got := matchLen(c.sig, c.path, c.n); got != c.want {
			t.Errorf("matchLen(%b,%b,%d) = %d, want %d", c.sig, c.path, c.n, got, c.want)
		}
	}
}
