package core

import (
	"fmt"
	"strings"

	"tracecache/internal/isa"
)

// SegInst is one instruction within a trace segment. For conditional
// branches, Taken records the outcome embedded in the segment (the path
// the following instructions continue along), and Promoted marks branches
// the fill unit converted to static predictions.
type SegInst struct {
	PC       int
	Inst     isa.Inst
	Taken    bool
	Promoted bool
}

// NextPC returns the PC that follows this instruction along the segment's
// embedded path, and whether it is statically known (false for returns and
// indirect jumps, whose targets come from the RAS or indirect predictor).
func (si SegInst) NextPC() (int, bool) {
	switch {
	case si.Inst.Op == isa.OpBr:
		if si.Taken {
			return si.Inst.Target, true
		}
		return si.PC + 1, true
	case si.Inst.IsUncondDirect():
		return si.Inst.Target, true
	case si.Inst.TerminatesSegment():
		return 0, false
	default:
		return si.PC + 1, true
	}
}

// FinalizeReason records why the fill unit finalized a segment; the fetch
// engine uses it to classify fetch terminations (Figures 4 and 6).
type FinalizeReason uint8

// Finalize reasons.
const (
	FinalNone        FinalizeReason = iota
	FinalMaxSize                    // segment reached 16 instructions
	FinalMaxBranches                // segment reached 3 non-promoted branches
	FinalTerminator                 // return, indirect jump, or trap
	FinalAtomic                     // next block did not fit (atomic or regulated packing)
)

var finalNames = [...]string{"none", "maxsize", "maxbranches", "terminator", "atomic"}

// String names the reason.
func (r FinalizeReason) String() string {
	if int(r) < len(finalNames) {
		return finalNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Segment is one trace cache line: up to 16 instructions spanning up to
// three fetch blocks (delimited by non-promoted conditional branches), with
// embedded outcomes.
type Segment struct {
	Start    int
	Insts    []SegInst
	Reason   FinalizeReason
	branches int
}

// Len returns the number of instructions in the segment.
func (s *Segment) Len() int { return len(s.Insts) }

// NumBranches returns the number of non-promoted conditional branches.
func (s *Segment) NumBranches() int { return s.branches }

// PathSig returns the embedded outcomes of the segment's non-promoted
// conditional branches as a bit vector (bit i = i-th branch taken), used
// by path-associative lookup.
func (s *Segment) PathSig() (sig uint8, n int) {
	for _, si := range s.Insts {
		if si.Inst.IsCondBranch() && !si.Promoted {
			if si.Taken {
				sig |= 1 << uint(n)
			}
			n++
			if n == 8 {
				break
			}
		}
	}
	return sig, n
}

// NumPromoted returns the number of promoted branches in the segment.
func (s *Segment) NumPromoted() int {
	n := 0
	for _, si := range s.Insts {
		if si.Promoted {
			n++
		}
	}
	return n
}

// Blocks returns the indices (into Insts) at which fetch blocks begin.
// A new block begins after each non-promoted conditional branch.
func (s *Segment) Blocks() []int {
	starts := []int{0}
	for i, si := range s.Insts {
		if si.Inst.IsCondBranch() && !si.Promoted && i+1 < len(s.Insts) {
			starts = append(starts, i+1)
		}
	}
	return starts
}

// ContainsPromoted reports whether the segment holds a promoted branch at
// pc.
func (s *Segment) ContainsPromoted(pc int) bool {
	for _, si := range s.Insts {
		if si.Promoted && si.PC == pc {
			return true
		}
	}
	return false
}

// String renders the segment for diagnostics.
func (s *Segment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "segment@%d[%d insts, %d br, %s]:", s.Start, s.Len(), s.branches, s.Reason)
	for _, si := range s.Insts {
		tag := ""
		if si.Inst.IsCondBranch() {
			switch {
			case si.Promoted && si.Taken:
				tag = "(P:T)"
			case si.Promoted:
				tag = "(P:N)"
			case si.Taken:
				tag = "(T)"
			default:
				tag = "(N)"
			}
		}
		fmt.Fprintf(&b, " %d:%s%s", si.PC, si.Inst.Op, tag)
	}
	return b.String()
}

// TraceCacheConfig sets the geometry of the trace cache.
type TraceCacheConfig struct {
	Entries int // total lines (paper: 2048, ~128KB of instruction storage)
	Assoc   int // ways per set (paper: 4)
	// PathAssoc enables path associativity: segments with the same start
	// but different embedded paths may be resident simultaneously, and
	// lookup selects the way matching the predicted path. The paper's
	// machine does not use it (Section 3 points to [9] for analysis);
	// this is the ablation.
	PathAssoc bool
}

// Validate reports configuration errors.
func (c TraceCacheConfig) Validate() error {
	if c.Entries <= 0 || c.Assoc <= 0 || c.Entries%c.Assoc != 0 {
		return fmt.Errorf("trace cache: bad geometry %+v", c)
	}
	if s := c.Entries / c.Assoc; s&(s-1) != 0 {
		return fmt.Errorf("trace cache: sets %d not a power of two", s)
	}
	return nil
}

// TraceCacheStats counts trace cache activity.
type TraceCacheStats struct {
	Lookups    uint64
	Hits       uint64
	Inserts    uint64
	Overwrites uint64 // inserts that replaced a segment with the same start
	Evictions  uint64 // inserts that displaced a different segment
	Demotions  uint64 // lines invalidated by branch demotion
}

// HitRate returns hits per lookup.
func (s TraceCacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

type tcWay struct {
	seg *Segment
	lru uint64
	// sig/nsig cache seg.PathSig() under path associativity: a resident
	// segment is immutable (demotion invalidates whole lines), so the
	// signature computed at insert stays valid for the segment's lifetime.
	sig  uint8
	nsig int
}

// TraceCache stores trace segments indexed by starting fetch address. In
// the paper's configuration it is not path associative: only one segment
// starting at a given address is resident at a time (inserting a segment
// replaces any existing segment with the same start, per Section 3). With
// TraceCacheConfig.PathAssoc, distinct paths from the same start coexist
// and LookupPath selects among them.
type TraceCache struct {
	sets      [][]tcWay
	mask      uint32
	clock     uint64
	pathAssoc bool
	stats     TraceCacheStats
	// livePromoted tracks the promoted-branch instances embedded in
	// resident segments, maintained incrementally by Insert,
	// InvalidatePromoted and Reset. ResidentPromoted recounts it from
	// scratch; the self-check layer compares the two.
	livePromoted int
}

// NewTraceCache builds a trace cache.
func NewTraceCache(cfg TraceCacheConfig) (*TraceCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Entries / cfg.Assoc
	t := &TraceCache{mask: uint32(nsets - 1), pathAssoc: cfg.PathAssoc}
	backing := make([]tcWay, cfg.Entries)
	t.sets = make([][]tcWay, nsets)
	for i := range t.sets {
		t.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return t, nil
}

// Stats returns activity counters.
func (t *TraceCache) Stats() TraceCacheStats { return t.stats }

// LivePromoted returns the incrementally maintained count of promoted
// branch instances embedded in resident segments.
func (t *TraceCache) LivePromoted() int { return t.livePromoted }

// ResidentPromoted recounts the promoted branch instances embedded in
// resident segments by walking the whole cache. It exists for the
// self-check layer, which verifies it against LivePromoted.
func (t *TraceCache) ResidentPromoted() int {
	n := 0
	for _, set := range t.sets {
		for i := range set {
			if set[i].seg != nil {
				n += set[i].seg.NumPromoted()
			}
		}
	}
	return n
}

// Lookup returns the segment starting at start, or nil on a miss.
func (t *TraceCache) Lookup(start int) *Segment {
	t.clock++
	t.stats.Lookups++
	set := t.sets[uint32(start)&t.mask]
	for i := range set {
		if set[i].seg != nil && set[i].seg.Start == start {
			set[i].lru = t.clock
			t.stats.Hits++
			return set[i].seg
		}
	}
	return nil
}

// Insert writes a segment. Without path associativity any resident
// segment with the same start is replaced; with it, only a segment with
// the same start and the same embedded path is replaced. Otherwise the
// LRU way is evicted.
func (t *TraceCache) Insert(seg *Segment) {
	t.clock++
	t.stats.Inserts++
	set := t.sets[uint32(seg.Start)&t.mask]
	var sig uint8
	var nsig int
	if t.pathAssoc {
		// The signature is only consulted under path associativity; it is
		// computed once here and cached in the way for LookupPath.
		sig, nsig = seg.PathSig()
	}
	victim := 0
	for i := range set {
		if set[i].seg != nil && set[i].seg.Start == seg.Start {
			if t.pathAssoc && (set[i].sig != sig || set[i].nsig != nsig) {
				continue // a different path may stay resident
			}
			if set[i].seg != seg {
				t.stats.Overwrites++
			}
			t.livePromoted += seg.NumPromoted() - set[i].seg.NumPromoted()
			set[i] = tcWay{seg: seg, lru: t.clock, sig: sig, nsig: nsig}
			return
		}
		if set[i].seg == nil {
			victim = i
		} else if set[victim].seg != nil && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].seg != nil {
		t.stats.Evictions++
		t.livePromoted -= set[victim].seg.NumPromoted()
	}
	t.livePromoted += seg.NumPromoted()
	set[victim] = tcWay{seg: seg, lru: t.clock, sig: sig, nsig: nsig}
}

// LookupPath returns the resident segment starting at start whose embedded
// path matches the longest prefix of the predicted path bits (bit i = i-th
// predicted branch outcome). Without path associativity at most one
// candidate exists and it is returned regardless of path.
func (t *TraceCache) LookupPath(start int, path uint8) *Segment {
	t.clock++
	t.stats.Lookups++
	set := t.sets[uint32(start)&t.mask]
	best := -1
	bestLen := -1
	for i := range set {
		if set[i].seg == nil || set[i].seg.Start != start {
			continue
		}
		l := matchLen(set[i].sig, path, set[i].nsig)
		if l > bestLen || (l == bestLen && best >= 0 && set[i].lru > set[best].lru) {
			best, bestLen = i, l
		}
	}
	if best < 0 {
		return nil
	}
	set[best].lru = t.clock
	t.stats.Hits++
	return set[best].seg
}

// matchLen counts how many leading branch outcomes of sig agree with path.
func matchLen(sig, path uint8, n int) int {
	l := 0
	for i := 0; i < n; i++ {
		if (sig>>uint(i))&1 != (path>>uint(i))&1 {
			break
		}
		l++
	}
	return l
}

// InvalidatePromoted removes every segment containing a promoted branch at
// pc, returning the number of lines invalidated. The simulator calls this
// when a faulting promoted branch is demoted so stale segments stop
// faulting.
func (t *TraceCache) InvalidatePromoted(pc int) int {
	n := 0
	for _, set := range t.sets {
		for i := range set {
			if set[i].seg != nil && set[i].seg.ContainsPromoted(pc) {
				t.livePromoted -= set[i].seg.NumPromoted()
				set[i] = tcWay{}
				n++
			}
		}
	}
	t.stats.Demotions += uint64(n)
	return n
}

// Reset clears contents and statistics.
func (t *TraceCache) Reset() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = tcWay{}
		}
	}
	t.clock = 0
	t.stats = TraceCacheStats{}
	t.livePromoted = 0
}
