package core

import (
	"strings"
	"testing"

	"tracecache/internal/isa"
)

func br(pc, target int, taken bool) SegInst {
	return SegInst{PC: pc, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: target}, Taken: taken}
}

func alu(pc int) SegInst {
	return SegInst{PC: pc, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}}
}

func TestSegInstNextPC(t *testing.T) {
	cases := []struct {
		si     SegInst
		want   int
		wantOK bool
	}{
		{alu(10), 11, true},
		{br(10, 50, true), 50, true},
		{br(10, 50, false), 11, true},
		{SegInst{PC: 10, Inst: isa.Inst{Op: isa.OpJmp, Target: 99}}, 99, true},
		{SegInst{PC: 10, Inst: isa.Inst{Op: isa.OpCall, Target: 7}}, 7, true},
		{SegInst{PC: 10, Inst: isa.Inst{Op: isa.OpRet}}, 0, false},
		{SegInst{PC: 10, Inst: isa.Inst{Op: isa.OpJmpInd}}, 0, false},
		{SegInst{PC: 10, Inst: isa.Inst{Op: isa.OpTrap}}, 0, false},
	}
	for _, c := range cases {
		got, ok := c.si.NextPC()
		if ok != c.wantOK || (ok && got != c.want) {
			t.Errorf("%v NextPC = (%d,%v), want (%d,%v)", c.si.Inst, got, ok, c.want, c.wantOK)
		}
	}
}

func TestSegmentBlocks(t *testing.T) {
	s := &Segment{Start: 0, Insts: []SegInst{
		alu(0), alu(1), br(2, 20, true),
		alu(20), br(21, 40, false),
		alu(22), alu(23),
	}, branches: 2}
	blocks := s.Blocks()
	if len(blocks) != 3 || blocks[0] != 0 || blocks[1] != 3 || blocks[2] != 5 {
		t.Errorf("blocks = %v", blocks)
	}
}

func TestSegmentBlocksPromotedDoesNotSplit(t *testing.T) {
	p := br(2, 20, true)
	p.Promoted = true
	s := &Segment{Insts: []SegInst{alu(0), alu(1), p, alu(20), br(21, 0, false)}, branches: 1}
	blocks := s.Blocks()
	if len(blocks) != 1 {
		t.Errorf("promoted branch split blocks: %v", blocks)
	}
}

func TestSegmentTrailingBranchNoEmptyBlock(t *testing.T) {
	s := &Segment{Insts: []SegInst{alu(0), br(1, 9, true)}, branches: 1}
	if blocks := s.Blocks(); len(blocks) != 1 {
		t.Errorf("trailing branch created empty block: %v", blocks)
	}
}

func TestSegmentCounters(t *testing.T) {
	p := br(5, 2, true)
	p.Promoted = true
	s := &Segment{Insts: []SegInst{alu(0), p, br(6, 0, false)}, branches: 1}
	if s.Len() != 3 || s.NumBranches() != 1 || s.NumPromoted() != 1 {
		t.Errorf("len=%d br=%d promo=%d", s.Len(), s.NumBranches(), s.NumPromoted())
	}
	if !s.ContainsPromoted(5) || s.ContainsPromoted(6) {
		t.Error("ContainsPromoted wrong")
	}
}

func TestSegmentString(t *testing.T) {
	p := br(5, 2, false)
	p.Promoted = true
	s := &Segment{Start: 4, Insts: []SegInst{alu(4), p}, branches: 0, Reason: FinalTerminator}
	str := s.String()
	for _, want := range []string{"segment@4", "(P:N)", "terminator"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q: %s", want, str)
		}
	}
}

func TestFinalizeReasonString(t *testing.T) {
	if FinalMaxSize.String() != "maxsize" || FinalizeReason(99).String() != "reason(99)" {
		t.Error("reason names wrong")
	}
}

func TestTraceCacheConfigValidate(t *testing.T) {
	if err := (TraceCacheConfig{Entries: 2048, Assoc: 4}).Validate(); err != nil {
		t.Errorf("paper config rejected: %v", err)
	}
	bad := []TraceCacheConfig{
		{},
		{Entries: 10, Assoc: 4},
		{Entries: 24, Assoc: 4}, // 6 sets, not a power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config accepted: %+v", c)
		}
	}
}

func seg(start int, insts ...SegInst) *Segment {
	if len(insts) == 0 {
		insts = []SegInst{alu(start)}
	}
	return &Segment{Start: start, Insts: insts}
}

func TestTraceCacheLookupInsert(t *testing.T) {
	tc := MustNewTraceCache(TraceCacheConfig{Entries: 16, Assoc: 2})
	if tc.Lookup(5) != nil {
		t.Error("cold lookup hit")
	}
	s := seg(5)
	tc.Insert(s)
	if got := tc.Lookup(5); got != s {
		t.Error("lookup after insert missed")
	}
	st := tc.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Inserts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTraceCacheNoPathAssociativity(t *testing.T) {
	tc := MustNewTraceCache(TraceCacheConfig{Entries: 16, Assoc: 2})
	s1 := seg(5, alu(5), br(6, 50, true))
	s2 := seg(5, alu(5), br(6, 50, false))
	tc.Insert(s1)
	tc.Insert(s2)
	if got := tc.Lookup(5); got != s2 {
		t.Error("same-start insert must replace (no path associativity)")
	}
	if tc.Stats().Overwrites != 1 {
		t.Errorf("overwrites = %d, want 1", tc.Stats().Overwrites)
	}
}

func TestTraceCacheLRUEviction(t *testing.T) {
	tc := MustNewTraceCache(TraceCacheConfig{Entries: 4, Assoc: 2}) // 2 sets
	// starts 0, 2, 4 map to set 0.
	a, b, c := seg(0), seg(2), seg(4)
	tc.Insert(a)
	tc.Insert(b)
	tc.Lookup(0) // refresh a
	tc.Insert(c) // evicts b
	if tc.Lookup(0) == nil {
		t.Error("MRU segment evicted")
	}
	if tc.Lookup(2) != nil {
		t.Error("LRU segment survived")
	}
	if tc.Lookup(4) == nil {
		t.Error("inserted segment missing")
	}
	if tc.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", tc.Stats().Evictions)
	}
}

func TestTraceCacheInvalidatePromoted(t *testing.T) {
	tc := MustNewTraceCache(TraceCacheConfig{Entries: 16, Assoc: 2})
	p := br(7, 2, true)
	p.Promoted = true
	with := seg(6, alu(6), p)
	without := seg(30, alu(30), br(31, 0, true))
	tc.Insert(with)
	tc.Insert(without)
	if n := tc.InvalidatePromoted(7); n != 1 {
		t.Errorf("invalidated %d, want 1", n)
	}
	if tc.Lookup(6) != nil {
		t.Error("segment with promoted branch survived")
	}
	if tc.Lookup(30) == nil {
		t.Error("unrelated segment invalidated")
	}
	if tc.Stats().Demotions != 1 {
		t.Errorf("demotions = %d", tc.Stats().Demotions)
	}
}

func TestTraceCacheReset(t *testing.T) {
	tc := MustNewTraceCache(TraceCacheConfig{Entries: 16, Assoc: 2})
	tc.Insert(seg(1))
	tc.Reset()
	if tc.Lookup(1) != nil {
		t.Error("segment survived reset")
	}
	if st := tc.Stats(); st.Lookups != 1 || st.Inserts != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestTraceCacheHitRate(t *testing.T) {
	var st TraceCacheStats
	if st.HitRate() != 0 {
		t.Error("empty hit rate")
	}
	st = TraceCacheStats{Lookups: 4, Hits: 3}
	if st.HitRate() != 0.75 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

// MustNewTraceCache is a test helper for known-good configurations.
func MustNewTraceCache(cfg TraceCacheConfig) *TraceCache {
	tc, err := NewTraceCache(cfg)
	if err != nil {
		panic(err)
	}
	return tc
}

// TestNewTraceCacheRejectsBadGeometry pins the error path that replaced
// the panicking constructor: invalid geometries return errors.
func TestNewTraceCacheRejectsBadGeometry(t *testing.T) {
	for _, cfg := range []TraceCacheConfig{
		{},
		{Entries: 16},
		{Entries: 0, Assoc: 4},
		{Entries: 15, Assoc: 4},
		{Entries: 24, Assoc: 4}, // 6 sets: not a power of two
	} {
		if tc, err := NewTraceCache(cfg); err == nil || tc != nil {
			t.Errorf("NewTraceCache(%+v) = %v, %v; want nil, error", cfg, tc, err)
		}
	}
	if _, err := NewTraceCache(TraceCacheConfig{Entries: 2048, Assoc: 4}); err != nil {
		t.Errorf("paper geometry rejected: %v", err)
	}
}
