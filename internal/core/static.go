package core

import (
	"tracecache/internal/exec"
	"tracecache/internal/program"
)

// Section 4 notes that branch promotion "can be done statically, as well",
// given ISA encodings that communicate strongly biased branches to the
// hardware, with the advantages that branches need no warm-up before being
// detected as promotable and that irregular-but-biased branches are easier
// to catch — at the cost of missing input-sensitive branches. This file
// implements the profile-and-annotate flow: a profiling run identifies
// strongly biased branch sites, and the fill unit promotes them with their
// static direction instead of consulting the bias table.

// StaticProfileConfig parameterises static promotion profiling.
type StaticProfileConfig struct {
	// Budget is the number of instructions to profile.
	Budget uint64
	// BiasThreshold is the minimum dominant-direction fraction for a
	// branch to be annotated (e.g. 0.95).
	BiasThreshold float64
	// MinExecutions filters out branches too cold to judge.
	MinExecutions uint64
}

// DefaultStaticProfileConfig returns a sensible profiling setup.
func DefaultStaticProfileConfig() StaticProfileConfig {
	return StaticProfileConfig{Budget: 500_000, BiasThreshold: 0.95, MinExecutions: 32}
}

// ProfileStaticPromotions executes the program sequentially for the
// configured budget and returns, for every conditional branch whose
// dominant direction reaches the bias threshold, that direction keyed by
// PC. The result feeds FillConfig.StaticPromotions.
func ProfileStaticPromotions(p *program.Program, cfg StaticProfileConfig) map[int]bool {
	if cfg.Budget == 0 {
		cfg = DefaultStaticProfileConfig()
	}
	type tally struct{ taken, total uint64 }
	counts := make(map[int]*tally)
	exec.Trace(p, cfg.Budget, func(si exec.StepInfo) bool {
		if !si.Inst.IsCondBranch() {
			return true
		}
		t := counts[si.PC]
		if t == nil {
			t = &tally{}
			counts[si.PC] = t
		}
		t.total++
		if si.Taken {
			t.taken++
		}
		return true
	})
	out := make(map[int]bool)
	//tcvet:ignore determinism per-key map build: each PC decided independently, order cannot reach results
	for pc, t := range counts {
		if t.total < cfg.MinExecutions {
			continue
		}
		frac := float64(t.taken) / float64(t.total)
		switch {
		case frac >= cfg.BiasThreshold:
			out[pc] = true
		case 1-frac >= cfg.BiasThreshold:
			out[pc] = false
		}
	}
	return out
}
