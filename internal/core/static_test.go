package core

import (
	"testing"

	"tracecache/internal/isa"
	"tracecache/internal/program"
)

// biasedProg builds a loop with one heavily biased branch (taken ~97%) and
// one alternating branch.
func biasedProg(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("biased")
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 4000}) // loop counter
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 2, Imm: 0})    // iteration index
	b.Here("loop")
	// Biased branch: taken unless index % 32 == 0.
	b.Emit(isa.Inst{Op: isa.OpAndI, Rd: 3, Rs1: 2, Imm: 31})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondNE, Rs1: 3, Rs2: 0}, "skip1")
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 4, Rs1: 4, Imm: 1})
	b.Here("skip1")
	// Alternating branch: taken when index is even.
	b.Emit(isa.Inst{Op: isa.OpAndI, Rd: 5, Rs1: 2, Imm: 1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Rs1: 5, Rs2: 0}, "skip2")
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 6, Rs1: 6, Imm: 1})
	b.Here("skip2")
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 2, Rs1: 2, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: 1, Rs2: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileStaticPromotions(t *testing.T) {
	p := biasedProg(t)
	promos := ProfileStaticPromotions(p, StaticProfileConfig{
		Budget: 50_000, BiasThreshold: 0.9, MinExecutions: 100,
	})
	// The biased branch (pc 3) and the loop backedge should be annotated;
	// the alternating branch (pc 7) must not be.
	if dir, ok := promos[3]; !ok || !dir {
		t.Errorf("biased branch not annotated taken: %v", promos)
	}
	if _, ok := promos[7]; ok {
		t.Error("alternating branch annotated")
	}
	// Loop backedge at the br.gt: strongly taken.
	backedge := len(p.Code) - 2
	if dir, ok := promos[backedge]; !ok || !dir {
		t.Errorf("backedge not annotated: %v", promos)
	}
}

func TestProfileStaticPromotionsDefaults(t *testing.T) {
	p := biasedProg(t)
	promos := ProfileStaticPromotions(p, StaticProfileConfig{})
	if len(promos) == 0 {
		t.Error("default config found nothing")
	}
}

func TestProfileStaticPromotionsMinExecutions(t *testing.T) {
	p := biasedProg(t)
	promos := ProfileStaticPromotions(p, StaticProfileConfig{
		Budget: 50_000, BiasThreshold: 0.9, MinExecutions: 1 << 30,
	})
	if len(promos) != 0 {
		t.Errorf("cold branches annotated: %v", promos)
	}
}

func TestFillUnitStaticPromotion(t *testing.T) {
	cfg := DefaultFillConfig(PackAtomic, 0)
	cfg.StaticPromotions = map[int]bool{1: true}
	f := NewFillUnit(cfg, nil)
	if f.Bias() != nil {
		t.Error("static mode must not build a bias table")
	}
	var segs []*Segment
	f.OnSegment = func(s *Segment) { segs = append(segs, s) }
	// Annotated branch retiring in the annotated direction: promoted
	// immediately (no warm-up).
	f.Retire(0, isa.Inst{Op: isa.OpAdd}, false)
	f.Retire(1, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 0}, true)
	f.Retire(2, isa.Inst{Op: isa.OpRet}, false)
	if len(segs) != 1 || segs[0].NumPromoted() != 1 {
		t.Fatalf("segments = %v", segs)
	}
	// Retiring against the annotation: not promoted.
	segs = segs[:0]
	f.Retire(0, isa.Inst{Op: isa.OpAdd}, false)
	f.Retire(1, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 0}, false)
	f.Retire(2, isa.Inst{Op: isa.OpRet}, false)
	if len(segs) != 1 || segs[0].NumPromoted() != 0 {
		t.Fatalf("off-direction promoted: %v", segs)
	}
	// Unannotated branch: never promoted.
	segs = segs[:0]
	f.Retire(4, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 0}, true)
	f.Retire(5, isa.Inst{Op: isa.OpRet}, false)
	if segs[0].NumPromoted() != 0 {
		t.Error("unannotated branch promoted")
	}
}

func TestStaticPromotionOverridesThreshold(t *testing.T) {
	cfg := DefaultFillConfig(PackAtomic, 4)
	cfg.StaticPromotions = map[int]bool{}
	f := NewFillUnit(cfg, nil)
	var segs []*Segment
	f.OnSegment = func(s *Segment) { segs = append(segs, s) }
	// With an (empty) static table, dynamic promotion is off: repeated
	// outcomes never promote.
	for i := 0; i < 20; i++ {
		f.Retire(0, isa.Inst{Op: isa.OpAdd}, false)
		f.Retire(1, isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 0}, true)
	}
	f.Retire(2, isa.Inst{Op: isa.OpRet}, false)
	for _, s := range segs {
		if s.NumPromoted() != 0 {
			t.Fatal("dynamic promotion active in static mode")
		}
	}
}
