// Package engine implements the execution core of the paper's machine
// (Section 3): 16 universal functional units fed from 64-entry reservation
// stations (node tables), dataflow wakeup/select scheduling, a
// conservative memory scheduler in which no load may bypass a store with
// an unknown address — plus the oracle ("perfect disambiguation")
// scheduler of Section 6 — with store-to-load forwarding and a data cache
// hierarchy.
//
// The engine tracks timing only; instruction semantics are executed by the
// simulator against internal/exec state at dispatch. Squash is O(1):
// every cross-instruction reference carries the target's dispatch epoch
// and is validated lazily.
package engine

import (
	"fmt"

	"tracecache/internal/cache"
)

// Config parameterises the core.
type Config struct {
	FUs        int  // functional units (paper: 16, each capable of all ops)
	RSPerFU    int  // reservation station entries per unit (paper: 64)
	MemOracle  bool // perfect memory disambiguation (Section 6)
	DCacheHit  int  // L1 data cache hit latency
	ForwardLat int  // store-to-load forwarding latency
}

// DefaultConfig returns the paper's execution core.
func DefaultConfig() Config {
	return Config{FUs: 16, RSPerFU: 64, DCacheHit: 1, ForwardLat: 1}
}

// Window returns the instruction window capacity.
func (c Config) Window() int { return c.FUs * c.RSPerFU }

// ref is an epoch-validated reference to an in-flight instruction.
type ref struct {
	seq uint64
	ep  uint32
}

// event kinds in the time-bucket ring.
const (
	evComplete uint8 = iota // instruction finishes execution
	evReady                 // instruction becomes eligible for scheduling
)

type event struct {
	ref  ref
	kind uint8
}

type inst struct {
	seq      uint64
	ep       uint32
	live     bool
	done     bool
	started  bool // handed to a functional unit
	memDone  bool // loads: memory phase scheduled
	isLoad   bool
	isStore  bool
	addr     uint64
	latency  int
	depCount int
	deps     []ref // instructions waiting on this one's result
	doneAt   uint64
}

// seqHeap is a min-heap of refs ordered by seq (oldest first). The push/pop
// methods are hand-rolled rather than going through container/heap: the
// interface{} boxing of heap.Push/heap.Pop allocates on every call, and
// these run millions of times per simulated second.
type seqHeap []ref

func (h seqHeap) Len() int { return len(h) }

//tc:hotpath
func (h *seqHeap) push(r ref) {
	*h = append(*h, r)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].seq <= s[i].seq {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

//tc:hotpath
func (h *seqHeap) pop() ref {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s[r].seq < s[l].seq {
			min = r
		}
		if s[i].seq <= s[min].seq {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// bucketRing must exceed the longest scheduling horizon: schedule (1) +
// divide (12) + L2 (6) + memory (50) with slack.
const bucketRing = 128

// Engine is the timing model of the execution core.
type Engine struct {
	cfg   Config
	hier  *cache.Hierarchy
	insts []inst
	mask  uint64
	head  uint64 // oldest unretired seq
	tail  uint64 // next seq to dispatch

	cycle        uint64
	buckets      [bucketRing][]event
	ready        seqHeap
	pendingStore seqHeap // conservative: stores with unresolved addresses
	blockedLoads seqHeap // loads held by the memory scheduler
	storesByAddr map[uint64][]ref
	// storeFree recycles the backing arrays of emptied storesByAddr
	// entries: recovery-heavy runs would otherwise reallocate an entry for
	// every store address revisited after a squash.
	storeFree [][]ref

	// completedBuf backs Tick's return value; it is reused every cycle, so
	// callers must consume the slice before the next Tick.
	completedBuf []uint64

	stats Stats
}

// Stats counts engine activity.
type Stats struct {
	Dispatched   uint64
	Executed     uint64
	Squashed     uint64
	LoadsBlocked uint64 // loads delayed by the conservative scheduler
	Forwards     uint64 // store-to-load forwards
	HighWater    int    // peak instruction window occupancy observed
}

// New builds an engine over the given data-cache hierarchy.
func New(cfg Config, hier *cache.Hierarchy) *Engine {
	size := 1
	for size < 2*cfg.Window() {
		size <<= 1
	}
	return &Engine{
		cfg:          cfg,
		hier:         hier,
		insts:        make([]inst, size),
		mask:         uint64(size - 1),
		storesByAddr: make(map[uint64][]ref),
	}
}

// Stats returns activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

//tc:hotpath
func (e *Engine) slot(seq uint64) *inst { return &e.insts[seq&e.mask] }

// valid reports whether a reference still names a live instruction.
func (e *Engine) valid(r ref) *inst {
	in := e.slot(r.seq)
	if in.live && in.seq == r.seq && in.ep == r.ep {
		return in
	}
	return nil
}

// InFlight returns the number of occupied window slots.
func (e *Engine) InFlight() int { return int(e.tail - e.head) }

// CheckInvariants verifies the instruction-window bookkeeping: the
// occupancy is within [0, Window] and every slot in [head, tail) holds a
// live instruction whose stored sequence number matches its position.
// Used by the self-check layer; returns the first failure found.
func (e *Engine) CheckInvariants() error {
	if e.tail < e.head {
		return fmt.Errorf("engine: window tail %d behind head %d", e.tail, e.head)
	}
	if n := e.InFlight(); n > e.cfg.Window() {
		return fmt.Errorf("engine: %d instructions in flight, window holds %d", n, e.cfg.Window())
	}
	for s := e.head; s < e.tail; s++ {
		in := e.slot(s)
		if !in.live || in.seq != s {
			return fmt.Errorf("engine: window slot for seq %d holds live=%v seq=%d", s, in.live, in.seq)
		}
	}
	return nil
}

// SpaceFor reports whether n more instructions fit in the window.
func (e *Engine) SpaceFor(n int) bool { return e.InFlight()+n <= e.cfg.Window() }

// IsDone reports whether the instruction has finished executing.
func (e *Engine) IsDone(seq uint64) bool {
	in := e.slot(seq)
	return in.live && in.seq == seq && in.done
}

// DoneAt returns the completion cycle of a done instruction.
func (e *Engine) DoneAt(seq uint64) uint64 { return e.slot(seq).doneAt }

// NextSeq returns the sequence number the next Dispatch will use.
func (e *Engine) NextSeq() uint64 { return e.tail }

// Dispatch enters an instruction into the window at the current cycle and
// returns its sequence number. srcs lists the sequence numbers of the
// producing instructions still possibly in flight; isLoad/isStore and addr
// describe memory behaviour; latency is the functional-unit latency.
//
//tc:hotpath
func (e *Engine) Dispatch(srcs []uint64, isLoad, isStore bool, addr uint64, latency int) uint64 {
	seq := e.tail
	e.tail++
	in := e.slot(seq)
	in.ep++
	*in = inst{
		seq: seq, ep: in.ep, live: true,
		isLoad: isLoad, isStore: isStore, addr: addr, latency: latency,
		deps: in.deps[:0],
	}
	e.stats.Dispatched++
	if occ := e.InFlight(); occ > e.stats.HighWater {
		e.stats.HighWater = occ
	}
	r := ref{seq: seq, ep: in.ep}
	for _, s := range srcs {
		if s >= e.head && s < seq {
			if p := e.valid(ref{seq: s, ep: e.slot(s).ep}); p != nil && !p.done {
				p.deps = append(p.deps, r)
				in.depCount++
			}
		}
	}
	if isStore {
		e.pendingStore.push(r)
		list, ok := e.storesByAddr[addr]
		if !ok {
			if n := len(e.storeFree); n > 0 {
				list = e.storeFree[n-1]
				e.storeFree = e.storeFree[:n-1]
			}
		}
		//tcvet:ignore hotalloc list comes from the storeFree free list; backing arrays are recycled across stores
		e.storesByAddr[addr] = append(list, r)
	}
	if in.depCount == 0 {
		e.schedule(ref{seq: seq, ep: in.ep}, e.cycle+1, evReady)
	}
	return seq
}

// schedule queues an event at the given cycle.
//
//tc:hotpath
func (e *Engine) schedule(r ref, at uint64, kind uint8) {
	if at <= e.cycle {
		at = e.cycle + 1
	}
	if at-e.cycle >= bucketRing {
		at = e.cycle + bucketRing - 1 // defensive clamp; cannot occur with paper latencies
	}
	e.buckets[at%bucketRing] = append(e.buckets[at%bucketRing], event{ref: r, kind: kind})
}

// minUnresolvedStore returns the oldest in-flight store whose address is
// not yet resolved, or ^0 when none.
//
//tc:hotpath
func (e *Engine) minUnresolvedStore() uint64 {
	for e.pendingStore.Len() > 0 {
		r := e.pendingStore[0]
		in := e.valid(r)
		if in == nil || in.done {
			e.pendingStore.pop()
			continue
		}
		return r.seq
	}
	return ^uint64(0)
}

// storeFreeMax bounds the recycled-slice pool; beyond it, emptied entries
// are left to the garbage collector.
const storeFreeMax = 256

// recycleStoreList removes an emptied address entry and keeps its backing
// array for the next store to a fresh address.
func (e *Engine) recycleStoreList(addr uint64, list []ref) {
	delete(e.storesByAddr, addr)
	if cap(list) > 0 && len(e.storeFree) < storeFreeMax {
		e.storeFree = append(e.storeFree, list[:0])
	}
}

// olderStore returns the youngest in-flight same-address store older than
// the load, pruning dead references as it goes. Pruning compacts the list
// in place — the backing array is kept (or recycled via the free list when
// the entry empties) so revisited addresses do not reallocate.
//
//tc:hotpath
func (e *Engine) olderStore(addr uint64, loadSeq uint64) *inst {
	list := e.storesByAddr[addr]
	n := 0
	for _, r := range list {
		if e.valid(r) != nil {
			list[n] = r
			n++
		}
	}
	list = list[:n]
	if n == 0 {
		if list != nil {
			e.recycleStoreList(addr, list)
		}
		return nil
	}
	e.storesByAddr[addr] = list
	for i := n - 1; i >= 0; i-- {
		if list[i].seq < loadSeq {
			return e.slot(list[i].seq)
		}
	}
	return nil
}

// startMemPhase begins a load's memory access (after AGEN and once the
// memory scheduler allows), scheduling its completion.
//
//tc:hotpath
func (e *Engine) startMemPhase(in *inst) {
	in.memDone = true
	r := ref{seq: in.seq, ep: in.ep}
	if st := e.olderStore(in.addr, in.seq); st != nil {
		e.stats.Forwards++
		if st.done {
			e.schedule(r, e.cycle+uint64(e.cfg.ForwardLat), evComplete)
		} else {
			// Wait for the store's data, then forward.
			st.deps = append(st.deps, r)
			in.depCount = -1 // sentinel: completion via forward wake
		}
		return
	}
	lat := uint64(e.cfg.DCacheHit + e.hier.AccessData(in.addr))
	e.schedule(r, e.cycle+lat, evComplete)
}

// tryStartLoads releases blocked loads permitted by the memory scheduler.
//
//tc:hotpath
func (e *Engine) tryStartLoads() {
	if e.blockedLoads.Len() == 0 {
		return
	}
	minStore := e.minUnresolvedStore()
	for e.blockedLoads.Len() > 0 {
		r := e.blockedLoads[0]
		in := e.valid(r)
		if in == nil || in.memDone {
			e.blockedLoads.pop()
			continue
		}
		if r.seq > minStore {
			return // oldest blocked load still cannot bypass
		}
		e.blockedLoads.pop()
		e.startMemPhase(in)
	}
}

// complete finishes an instruction and wakes its dependents.
//
//tc:hotpath
func (e *Engine) complete(in *inst) {
	if in.done {
		return
	}
	in.done = true
	in.doneAt = e.cycle
	e.stats.Executed++
	for _, d := range in.deps {
		w := e.valid(d)
		if w == nil || w.done {
			continue
		}
		if w.depCount == -1 {
			// A load waiting on this store's data: forward.
			e.schedule(d, e.cycle+uint64(e.cfg.ForwardLat), evComplete)
			continue
		}
		w.depCount--
		if w.depCount == 0 && !w.started {
			e.schedule(d, e.cycle+1, evReady)
		}
	}
	in.deps = in.deps[:0]
	if in.isStore {
		// Address now resolved; blocked loads may proceed.
		e.tryStartLoads()
	}
}

// execute hands an instruction to a functional unit at the current cycle.
//
//tc:hotpath
func (e *Engine) execute(in *inst) {
	in.started = true
	r := ref{seq: in.seq, ep: in.ep}
	if !in.isLoad {
		e.schedule(r, e.cycle+uint64(in.latency), evComplete)
		return
	}
	// Loads: AGEN takes the unit latency; then the memory scheduler rules.
	if !e.cfg.MemOracle && e.minUnresolvedStore() < in.seq {
		e.stats.LoadsBlocked++
		e.blockedLoads.push(r)
		return
	}
	e.startMemPhase(in)
}

// Tick advances the engine one cycle and returns the sequence numbers of
// instructions that completed execution this cycle, in ascending order.
// The returned slice is reused by the next Tick; the caller must consume
// it before ticking again.
//
//tc:hotpath
func (e *Engine) Tick(cycle uint64) []uint64 {
	e.cycle = cycle
	completed := e.completedBuf[:0]
	bucket := e.buckets[cycle%bucketRing]
	// Reuse the bucket's array: schedule() always targets a future cycle
	// strictly inside the ring (at most cycle+bucketRing-1), so no event
	// scheduled while draining can land back in this bucket.
	e.buckets[cycle%bucketRing] = bucket[:0]
	for _, ev := range bucket {
		in := e.valid(ev.ref)
		if in == nil {
			continue
		}
		switch ev.kind {
		case evComplete:
			if !in.done {
				e.complete(in)
				completed = append(completed, in.seq)
			}
		case evReady:
			if !in.started && !in.done {
				e.ready.push(ev.ref)
			}
		}
	}
	// Memory scheduler: re-examine blocked loads (store resolution may
	// have happened via completions above).
	e.tryStartLoads()
	// Select: each functional unit starts the oldest ready instruction.
	for fu := 0; fu < e.cfg.FUs && e.ready.Len() > 0; {
		r := e.ready.pop()
		in := e.valid(r)
		if in == nil || in.started || in.done {
			continue
		}
		e.execute(in)
		fu++
	}
	e.completedBuf = completed
	return completed
}

// dropStoreRef truncates the squashed tail (seq >= from) of a store-address
// list eagerly, so squashed references do not pile up waiting for a load to
// the same address to prune them. A reference with seq >= from sitting
// below a seq < from entry was killed by an earlier squash; it stays for
// lazy pruning, which is harmless.
func (e *Engine) dropStoreRef(addr uint64, from uint64) {
	list := e.storesByAddr[addr]
	n := len(list)
	for n > 0 && list[n-1].seq >= from {
		n--
	}
	switch {
	case n == len(list):
	case n == 0:
		e.recycleStoreList(addr, list)
	default:
		e.storesByAddr[addr] = list[:n]
	}
}

// Squash removes every instruction with seq >= from. References from
// surviving instructions are invalidated lazily via epochs; store-address
// references are dropped eagerly so recovery does not leave garbage behind.
func (e *Engine) Squash(from uint64) {
	if from >= e.tail {
		return
	}
	for s := from; s < e.tail; s++ {
		in := e.slot(s)
		if in.live && in.seq == s {
			in.live = false
			e.stats.Squashed++
			if in.isStore {
				e.dropStoreRef(in.addr, from)
			}
		}
	}
	e.tail = from
}

// Retire releases the oldest instruction, which must be done. The caller
// enforces in-order retirement.
//
//tc:hotpath
func (e *Engine) Retire(seq uint64) {
	in := e.slot(seq)
	if seq != e.head || !in.live || in.seq != seq || !in.done {
		panic("engine: out-of-order or premature retire")
	}
	in.live = false
	e.head = seq + 1
}
