// Package engine implements the execution core of the paper's machine
// (Section 3): 16 universal functional units fed from 64-entry reservation
// stations (node tables), dataflow wakeup/select scheduling, a
// conservative memory scheduler in which no load may bypass a store with
// an unknown address — plus the oracle ("perfect disambiguation")
// scheduler of Section 6 — with store-to-load forwarding and a data cache
// hierarchy.
//
// The engine tracks timing only; instruction semantics are executed by the
// simulator against internal/exec state at dispatch. Squash is O(1):
// every cross-instruction reference carries the target's dispatch epoch
// and is validated lazily.
package engine

import (
	"container/heap"

	"tracecache/internal/cache"
)

// Config parameterises the core.
type Config struct {
	FUs        int  // functional units (paper: 16, each capable of all ops)
	RSPerFU    int  // reservation station entries per unit (paper: 64)
	MemOracle  bool // perfect memory disambiguation (Section 6)
	DCacheHit  int  // L1 data cache hit latency
	ForwardLat int  // store-to-load forwarding latency
}

// DefaultConfig returns the paper's execution core.
func DefaultConfig() Config {
	return Config{FUs: 16, RSPerFU: 64, DCacheHit: 1, ForwardLat: 1}
}

// Window returns the instruction window capacity.
func (c Config) Window() int { return c.FUs * c.RSPerFU }

// ref is an epoch-validated reference to an in-flight instruction.
type ref struct {
	seq uint64
	ep  uint32
}

// event kinds in the time-bucket ring.
const (
	evComplete uint8 = iota // instruction finishes execution
	evReady                 // instruction becomes eligible for scheduling
)

type event struct {
	ref  ref
	kind uint8
}

type inst struct {
	seq      uint64
	ep       uint32
	live     bool
	done     bool
	started  bool // handed to a functional unit
	memDone  bool // loads: memory phase scheduled
	isLoad   bool
	isStore  bool
	addr     uint64
	latency  int
	depCount int
	deps     []ref // instructions waiting on this one's result
	doneAt   uint64
}

// seqHeap is a min-heap of refs ordered by seq (oldest first).
type seqHeap []ref

func (h seqHeap) Len() int            { return len(h) }
func (h seqHeap) Less(i, j int) bool  { return h[i].seq < h[j].seq }
func (h seqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *seqHeap) Push(x interface{}) { *h = append(*h, x.(ref)) }
func (h *seqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// bucketRing must exceed the longest scheduling horizon: schedule (1) +
// divide (12) + L2 (6) + memory (50) with slack.
const bucketRing = 128

// Engine is the timing model of the execution core.
type Engine struct {
	cfg   Config
	hier  *cache.Hierarchy
	insts []inst
	mask  uint64
	head  uint64 // oldest unretired seq
	tail  uint64 // next seq to dispatch

	cycle        uint64
	buckets      [bucketRing][]event
	ready        seqHeap
	pendingStore seqHeap // conservative: stores with unresolved addresses
	blockedLoads seqHeap // loads held by the memory scheduler
	storesByAddr map[uint64][]ref

	stats Stats
}

// Stats counts engine activity.
type Stats struct {
	Dispatched   uint64
	Executed     uint64
	Squashed     uint64
	LoadsBlocked uint64 // loads delayed by the conservative scheduler
	Forwards     uint64 // store-to-load forwards
	HighWater    int    // peak instruction window occupancy observed
}

// New builds an engine over the given data-cache hierarchy.
func New(cfg Config, hier *cache.Hierarchy) *Engine {
	size := 1
	for size < 2*cfg.Window() {
		size <<= 1
	}
	return &Engine{
		cfg:          cfg,
		hier:         hier,
		insts:        make([]inst, size),
		mask:         uint64(size - 1),
		storesByAddr: make(map[uint64][]ref),
	}
}

// Stats returns activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

func (e *Engine) slot(seq uint64) *inst { return &e.insts[seq&e.mask] }

// valid reports whether a reference still names a live instruction.
func (e *Engine) valid(r ref) *inst {
	in := e.slot(r.seq)
	if in.live && in.seq == r.seq && in.ep == r.ep {
		return in
	}
	return nil
}

// InFlight returns the number of occupied window slots.
func (e *Engine) InFlight() int { return int(e.tail - e.head) }

// SpaceFor reports whether n more instructions fit in the window.
func (e *Engine) SpaceFor(n int) bool { return e.InFlight()+n <= e.cfg.Window() }

// IsDone reports whether the instruction has finished executing.
func (e *Engine) IsDone(seq uint64) bool {
	in := e.slot(seq)
	return in.live && in.seq == seq && in.done
}

// DoneAt returns the completion cycle of a done instruction.
func (e *Engine) DoneAt(seq uint64) uint64 { return e.slot(seq).doneAt }

// NextSeq returns the sequence number the next Dispatch will use.
func (e *Engine) NextSeq() uint64 { return e.tail }

// Dispatch enters an instruction into the window at the current cycle and
// returns its sequence number. srcs lists the sequence numbers of the
// producing instructions still possibly in flight; isLoad/isStore and addr
// describe memory behaviour; latency is the functional-unit latency.
func (e *Engine) Dispatch(srcs []uint64, isLoad, isStore bool, addr uint64, latency int) uint64 {
	seq := e.tail
	e.tail++
	in := e.slot(seq)
	in.ep++
	*in = inst{
		seq: seq, ep: in.ep, live: true,
		isLoad: isLoad, isStore: isStore, addr: addr, latency: latency,
		deps: in.deps[:0],
	}
	e.stats.Dispatched++
	if occ := e.InFlight(); occ > e.stats.HighWater {
		e.stats.HighWater = occ
	}
	r := ref{seq: seq, ep: in.ep}
	for _, s := range srcs {
		if s >= e.head && s < seq {
			if p := e.valid(ref{seq: s, ep: e.slot(s).ep}); p != nil && !p.done {
				p.deps = append(p.deps, r)
				in.depCount++
			}
		}
	}
	if isStore {
		heap.Push(&e.pendingStore, r)
		e.storesByAddr[addr] = append(e.storesByAddr[addr], r)
	}
	if in.depCount == 0 {
		e.schedule(ref{seq: seq, ep: in.ep}, e.cycle+1, evReady)
	}
	return seq
}

// schedule queues an event at the given cycle.
func (e *Engine) schedule(r ref, at uint64, kind uint8) {
	if at <= e.cycle {
		at = e.cycle + 1
	}
	if at-e.cycle >= bucketRing {
		at = e.cycle + bucketRing - 1 // defensive clamp; cannot occur with paper latencies
	}
	e.buckets[at%bucketRing] = append(e.buckets[at%bucketRing], event{ref: r, kind: kind})
}

// minUnresolvedStore returns the oldest in-flight store whose address is
// not yet resolved, or ^0 when none.
func (e *Engine) minUnresolvedStore() uint64 {
	for e.pendingStore.Len() > 0 {
		r := e.pendingStore[0]
		in := e.valid(r)
		if in == nil || in.done {
			heap.Pop(&e.pendingStore)
			continue
		}
		return r.seq
	}
	return ^uint64(0)
}

// olderStore returns the youngest in-flight same-address store older than
// the load, pruning dead references as it goes.
func (e *Engine) olderStore(addr uint64, loadSeq uint64) *inst {
	list := e.storesByAddr[addr]
	// Prune retired prefix and squashed suffix lazily.
	for len(list) > 0 {
		if e.valid(list[0]) == nil {
			list = list[1:]
			continue
		}
		break
	}
	n := len(list)
	for n > 0 && e.valid(list[n-1]) == nil {
		n--
	}
	list = list[:n]
	if len(list) == 0 {
		delete(e.storesByAddr, addr)
		return nil
	}
	e.storesByAddr[addr] = list
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].seq >= loadSeq {
			continue
		}
		// Slot reuse can leave dead references mid-list; skip them.
		if in := e.valid(list[i]); in != nil {
			return in
		}
	}
	return nil
}

// startMemPhase begins a load's memory access (after AGEN and once the
// memory scheduler allows), scheduling its completion.
func (e *Engine) startMemPhase(in *inst) {
	in.memDone = true
	r := ref{seq: in.seq, ep: in.ep}
	if st := e.olderStore(in.addr, in.seq); st != nil {
		e.stats.Forwards++
		if st.done {
			e.schedule(r, e.cycle+uint64(e.cfg.ForwardLat), evComplete)
		} else {
			// Wait for the store's data, then forward.
			st.deps = append(st.deps, r)
			in.depCount = -1 // sentinel: completion via forward wake
		}
		return
	}
	lat := uint64(e.cfg.DCacheHit + e.hier.AccessData(in.addr))
	e.schedule(r, e.cycle+lat, evComplete)
}

// tryStartLoads releases blocked loads permitted by the memory scheduler.
func (e *Engine) tryStartLoads() {
	if e.blockedLoads.Len() == 0 {
		return
	}
	minStore := e.minUnresolvedStore()
	for e.blockedLoads.Len() > 0 {
		r := e.blockedLoads[0]
		in := e.valid(r)
		if in == nil || in.memDone {
			heap.Pop(&e.blockedLoads)
			continue
		}
		if r.seq > minStore {
			return // oldest blocked load still cannot bypass
		}
		heap.Pop(&e.blockedLoads)
		e.startMemPhase(in)
	}
}

// complete finishes an instruction and wakes its dependents.
func (e *Engine) complete(in *inst) {
	if in.done {
		return
	}
	in.done = true
	in.doneAt = e.cycle
	e.stats.Executed++
	for _, d := range in.deps {
		w := e.valid(d)
		if w == nil || w.done {
			continue
		}
		if w.depCount == -1 {
			// A load waiting on this store's data: forward.
			e.schedule(d, e.cycle+uint64(e.cfg.ForwardLat), evComplete)
			continue
		}
		w.depCount--
		if w.depCount == 0 && !w.started {
			e.schedule(d, e.cycle+1, evReady)
		}
	}
	in.deps = in.deps[:0]
	if in.isStore {
		// Address now resolved; blocked loads may proceed.
		e.tryStartLoads()
	}
}

// execute hands an instruction to a functional unit at the current cycle.
func (e *Engine) execute(in *inst) {
	in.started = true
	r := ref{seq: in.seq, ep: in.ep}
	if !in.isLoad {
		e.schedule(r, e.cycle+uint64(in.latency), evComplete)
		return
	}
	// Loads: AGEN takes the unit latency; then the memory scheduler rules.
	if !e.cfg.MemOracle && e.minUnresolvedStore() < in.seq {
		e.stats.LoadsBlocked++
		heap.Push(&e.blockedLoads, r)
		return
	}
	e.startMemPhase(in)
}

// Tick advances the engine one cycle and returns the sequence numbers of
// instructions that completed execution this cycle, in ascending order.
func (e *Engine) Tick(cycle uint64) []uint64 {
	e.cycle = cycle
	var completed []uint64
	bucket := e.buckets[cycle%bucketRing]
	e.buckets[cycle%bucketRing] = bucket[:0:0]
	for _, ev := range bucket {
		in := e.valid(ev.ref)
		if in == nil {
			continue
		}
		switch ev.kind {
		case evComplete:
			if !in.done {
				e.complete(in)
				completed = append(completed, in.seq)
			}
		case evReady:
			if !in.started && !in.done {
				heap.Push(&e.ready, ev.ref)
			}
		}
	}
	// Memory scheduler: re-examine blocked loads (store resolution may
	// have happened via completions above).
	e.tryStartLoads()
	// Select: each functional unit starts the oldest ready instruction.
	for fu := 0; fu < e.cfg.FUs && e.ready.Len() > 0; {
		r := heap.Pop(&e.ready).(ref)
		in := e.valid(r)
		if in == nil || in.started || in.done {
			continue
		}
		e.execute(in)
		fu++
	}
	return completed
}

// Squash removes every instruction with seq >= from. References from
// surviving instructions are invalidated lazily via epochs.
func (e *Engine) Squash(from uint64) {
	if from >= e.tail {
		return
	}
	for s := from; s < e.tail; s++ {
		in := e.slot(s)
		if in.live && in.seq == s {
			in.live = false
			e.stats.Squashed++
		}
	}
	e.tail = from
}

// Retire releases the oldest instruction, which must be done. The caller
// enforces in-order retirement.
func (e *Engine) Retire(seq uint64) {
	in := e.slot(seq)
	if seq != e.head || !in.live || in.seq != seq || !in.done {
		panic("engine: out-of-order or premature retire")
	}
	in.live = false
	e.head = seq + 1
}
