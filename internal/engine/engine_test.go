package engine

import (
	"testing"

	"tracecache/internal/cache"
)

func testHier() *cache.Hierarchy {
	return &cache.Hierarchy{
		L1I: mustCache(cache.Config{Name: "l1i", SizeBytes: 4096, LineBytes: 64, Assoc: 4}),
		L1D: mustCache(cache.Config{Name: "l1d", SizeBytes: 1 << 16, LineBytes: 64, Assoc: 4}),
		L2:  mustCache(cache.Config{Name: "l2", SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8}),
	}
}

func newEngine(oracle bool) *Engine {
	cfg := DefaultConfig()
	cfg.MemOracle = oracle
	return New(cfg, testHier())
}

// run advances the engine until seq completes or maxCycles pass, returning
// the completion cycle.
func runUntilDone(t *testing.T, e *Engine, seq uint64, start, maxCycles uint64) uint64 {
	t.Helper()
	for c := start; c < start+maxCycles; c++ {
		for _, s := range e.Tick(c) {
			if s == seq {
				return c
			}
		}
	}
	t.Fatalf("seq %d did not complete within %d cycles", seq, maxCycles)
	return 0
}

func TestSimpleALUCompletion(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	seq := e.Dispatch(nil, false, false, 0, 1)
	// Ready at 1, scheduled at 1, executes, completes at 1+1=2.
	done := runUntilDone(t, e, seq, 1, 10)
	if done != 2 {
		t.Errorf("ALU op completed at %d, want 2", done)
	}
	if !e.IsDone(seq) || e.DoneAt(seq) != done {
		t.Error("IsDone/DoneAt inconsistent")
	}
}

func TestDependencyChainTiming(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	a := e.Dispatch(nil, false, false, 0, 1)
	b := e.Dispatch([]uint64{a}, false, false, 0, 1)
	c := e.Dispatch([]uint64{b}, false, false, 0, 1)
	// a done at 2, b ready 3, done 4; c ready 5, done 6.
	if got := runUntilDone(t, e, c, 1, 20); got != 6 {
		t.Errorf("chain completed at %d, want 6", got)
	}
}

func TestMulLatency(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	seq := e.Dispatch(nil, false, false, 0, 3)
	if got := runUntilDone(t, e, seq, 1, 20); got != 4 {
		t.Errorf("mul completed at %d, want 4", got)
	}
}

func TestIndependentOpsRunInParallel(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	var seqs []uint64
	for i := 0; i < 16; i++ {
		seqs = append(seqs, e.Dispatch(nil, false, false, 0, 1))
	}
	done := map[uint64]bool{}
	for c := uint64(1); c <= 2; c++ {
		for _, s := range e.Tick(c) {
			done[s] = true
		}
	}
	if len(done) != 16 {
		t.Errorf("%d of 16 independent ops done after FU-width cycle", len(done))
	}
}

func TestFULimitSerialises(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	last := uint64(0)
	for i := 0; i < 32; i++ {
		last = e.Dispatch(nil, false, false, 0, 1)
	}
	// 32 ready ops, 16 FUs: two waves; second wave completes one cycle later.
	if got := runUntilDone(t, e, last, 1, 10); got != 3 {
		t.Errorf("last of 32 completed at %d, want 3", got)
	}
}

func TestLoadHitLatency(t *testing.T) {
	e := newEngine(false)
	// Warm the D-cache.
	e.hier.AccessData(0x100)
	e.Tick(0)
	seq := e.Dispatch(nil, true, false, 0x100, 1)
	// Ready 1, mem phase starts at 1, completes 1 + DCacheHit = 2.
	if got := runUntilDone(t, e, seq, 1, 10); got != 2 {
		t.Errorf("load hit completed at %d, want 2", got)
	}
}

func TestLoadMissLatency(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	seq := e.Dispatch(nil, true, false, 0x4000, 1)
	// Cold miss: 1 + DCacheHit + L2 + Mem = 1 + 1 + 56 = 58.
	want := uint64(1 + 1 + cache.L2Latency + cache.MemLatency)
	if got := runUntilDone(t, e, seq, 1, 100); got != want {
		t.Errorf("load miss completed at %d, want %d", got, want)
	}
}

func TestConservativeLoadWaitsForStoreAddress(t *testing.T) {
	e := newEngine(false)
	e.hier.AccessData(0x100)
	e.hier.AccessData(0x4000)
	e.Tick(0)
	// A slow producer feeds the store's address; the load (different
	// address) must wait for the store to resolve.
	slow := e.Dispatch(nil, false, false, 0, 12) // div: done at 13
	_ = e.Dispatch([]uint64{slow}, false, true, 0x100, 1)
	load := e.Dispatch(nil, true, false, 0x4000, 1)
	done := runUntilDone(t, e, load, 1, 100)
	// Store done at 15; load unblocked then, completes ~16-17.
	if done < 15 {
		t.Errorf("load completed at %d; bypassed an unresolved store", done)
	}
	if e.Stats().LoadsBlocked == 0 {
		t.Error("blocked-load statistic not counted")
	}
}

func TestOracleLoadBypassesUnknownStore(t *testing.T) {
	e := newEngine(true)
	e.hier.AccessData(0x100)
	e.hier.AccessData(0x4000)
	e.Tick(0)
	slow := e.Dispatch(nil, false, false, 0, 12)
	_ = e.Dispatch([]uint64{slow}, false, true, 0x100, 1)
	load := e.Dispatch(nil, true, false, 0x4000, 1)
	if done := runUntilDone(t, e, load, 1, 100); done != 2 {
		t.Errorf("oracle load completed at %d, want 2 (no blocking)", done)
	}
	if e.Stats().LoadsBlocked != 0 {
		t.Error("oracle scheduler blocked a load")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	e := newEngine(true)
	e.hier.AccessData(0x4000) // would be a hit anyway; forwarding beats it
	e.Tick(0)
	slow := e.Dispatch(nil, false, false, 0, 5)              // data producer, done at 6
	st := e.Dispatch([]uint64{slow}, false, true, 0x4000, 1) // store done at 8
	load := e.Dispatch(nil, true, false, 0x4000, 1)
	done := runUntilDone(t, e, load, 1, 100)
	stDone := e.DoneAt(st)
	if done != stDone+1 {
		t.Errorf("forwarded load done at %d, store at %d; want store+1", done, stDone)
	}
	if e.Stats().Forwards == 0 {
		t.Error("forward not counted")
	}
}

func TestForwardingFromCompletedStore(t *testing.T) {
	e := newEngine(true)
	e.Tick(0)
	st := e.Dispatch(nil, false, true, 0x8000, 1)
	// Let the store complete first.
	var c uint64
	for c = 1; !e.IsDone(st); c++ {
		e.Tick(c)
	}
	load := e.Dispatch(nil, true, false, 0x8000, 1)
	done := runUntilDone(t, e, load, c, 50)
	// Forward latency, not the cold-miss latency.
	if done > c+3 {
		t.Errorf("load should forward from completed in-flight store; done at %d (start %d)", done, c)
	}
}

func TestWindowCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FUs = 2
	cfg.RSPerFU = 4
	e := New(cfg, testHier())
	e.Tick(0)
	if !e.SpaceFor(8) {
		t.Fatal("empty window rejects full dispatch")
	}
	var last uint64
	for i := 0; i < 8; i++ {
		last = e.Dispatch(nil, false, false, 0, 1)
	}
	if e.SpaceFor(1) {
		t.Error("full window accepts more")
	}
	if e.InFlight() != 8 {
		t.Errorf("in flight = %d", e.InFlight())
	}
	// Complete and retire everything in order.
	for c := uint64(1); c < 20 && !e.IsDone(last); c++ {
		e.Tick(c)
	}
	for s := uint64(0); s <= last; s++ {
		e.Retire(s)
	}
	if e.InFlight() != 0 || !e.SpaceFor(8) {
		t.Error("retire did not free window")
	}
}

func TestSquashDropsInstructions(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	a := e.Dispatch(nil, false, false, 0, 1)
	b := e.Dispatch(nil, false, false, 0, 12)
	c := e.Dispatch([]uint64{b}, false, false, 0, 1)
	e.Squash(b)
	if e.InFlight() != 1 {
		t.Errorf("in flight after squash = %d", e.InFlight())
	}
	_ = c
	// a still completes; b and c never do.
	var got []uint64
	for cyc := uint64(1); cyc < 30; cyc++ {
		got = append(got, e.Tick(cyc)...)
	}
	if len(got) != 1 || got[0] != a {
		t.Errorf("completions after squash = %v, want [%d]", got, a)
	}
	if e.Stats().Squashed != 2 {
		t.Errorf("squashed = %d", e.Stats().Squashed)
	}
}

func TestSquashThenRedispatchSameSeq(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	a := e.Dispatch(nil, false, false, 0, 12) // slow producer
	b := e.Dispatch([]uint64{a}, false, false, 0, 1)
	e.Squash(b)
	// Reuse seq b's slot for a fresh independent instruction.
	b2 := e.Dispatch(nil, false, false, 0, 1)
	if b2 != b {
		t.Fatalf("expected seq reuse: %d vs %d", b2, b)
	}
	if got := runUntilDone(t, e, b2, 1, 30); got != 2 {
		t.Errorf("redispatched inst done at %d, want 2 (stale dep applied?)", got)
	}
}

func TestSquashedStoreUnblocksLoads(t *testing.T) {
	e := newEngine(false)
	e.hier.AccessData(0x100)
	e.hier.AccessData(0x4000)
	e.Tick(0)
	slow := e.Dispatch(nil, false, false, 0, 12)
	st := e.Dispatch([]uint64{slow}, false, true, 0x100, 1)
	load := e.Dispatch(nil, true, false, 0x4000, 1)
	e.Tick(1) // load AGENs, gets blocked behind the store
	e.Squash(st)
	// The load was squashed too (younger). Redispatch a load: with the
	// store gone it must not block.
	load2 := e.Dispatch(nil, true, false, 0x4000, 1)
	if load2 != st {
		t.Fatalf("seq layout unexpected: %d", load2)
	}
	_ = load
	done := runUntilDone(t, e, load2, 2, 30)
	if done > 4 {
		t.Errorf("load after squash done at %d; still blocked by dead store", done)
	}
}

func TestRetirePanicsOutOfOrder(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	e.Dispatch(nil, false, false, 0, 1)
	b := e.Dispatch(nil, false, false, 0, 1)
	for c := uint64(1); !e.IsDone(b); c++ {
		e.Tick(c)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order retire did not panic")
		}
	}()
	e.Retire(b)
}

func TestNextSeqAdvances(t *testing.T) {
	e := newEngine(false)
	if e.NextSeq() != 0 {
		t.Error("first seq not 0")
	}
	e.Dispatch(nil, false, false, 0, 1)
	if e.NextSeq() != 1 {
		t.Error("seq did not advance")
	}
}

// mustCache builds a cache from a known-good test config.
func mustCache(cfg cache.Config) *cache.Cache {
	c, err := cache.New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}
