package engine

import "testing"

// TestSquashTruncatesStoreLists verifies Squash eagerly drops squashed
// store references and recycles emptied address lists, so recovery-heavy
// runs do not reallocate a map entry per revisited store address.
func TestSquashTruncatesStoreLists(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	keep := e.Dispatch(nil, false, true, 0x100, 1)
	e.Dispatch(nil, false, true, 0x100, 1) // squashed below
	e.Dispatch(nil, false, true, 0x200, 1) // squashed below, empties 0x200
	e.Squash(keep + 1)
	if got := len(e.storesByAddr[0x100]); got != 1 {
		t.Errorf("0x100 list length = %d, want 1 (squashed tail dropped)", got)
	}
	if _, ok := e.storesByAddr[0x200]; ok {
		t.Error("0x200 entry survived squash of its only store")
	}
	if len(e.storeFree) != 1 {
		t.Errorf("storeFree length = %d, want 1 recycled list", len(e.storeFree))
	}
	// A store to a fresh address must reuse the recycled backing array.
	e.Dispatch(nil, false, true, 0x300, 1)
	if len(e.storeFree) != 0 {
		t.Error("fresh-address store did not take the recycled list")
	}
	if got := len(e.storesByAddr[0x300]); got != 1 {
		t.Errorf("0x300 list length = %d, want 1", got)
	}
}

// TestOlderStoreCompactsInPlace verifies pruning keeps the slice anchored
// at its backing array (retired-prefix pruning must not strand capacity)
// and that forwarding still finds the youngest older store.
func TestOlderStoreCompactsInPlace(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	a := e.Dispatch(nil, false, true, 0x40, 1)
	b := e.Dispatch(nil, false, true, 0x40, 1)
	runUntilDone(t, e, a, 1, 10)
	e.Retire(a)
	// Load younger than both stores: forwards from b; a's dead ref pruned.
	load := e.tail + 10
	if st := e.olderStore(0x40, load); st == nil || st.seq != b {
		t.Fatalf("olderStore = %+v, want seq %d", st, b)
	}
	if got := len(e.storesByAddr[0x40]); got != 1 {
		t.Errorf("list length after prune = %d, want 1", got)
	}
	// Retire b, then prune to empty: entry recycled.
	if !e.IsDone(b) {
		runUntilDone(t, e, b, 5, 10)
	}
	e.Retire(b)
	if st := e.olderStore(0x40, load); st != nil {
		t.Fatalf("olderStore after retires = %+v, want nil", st)
	}
	if _, ok := e.storesByAddr[0x40]; ok {
		t.Error("emptied entry not removed")
	}
	if len(e.storeFree) != 1 {
		t.Errorf("storeFree length = %d, want 1", len(e.storeFree))
	}
}

// TestForwardingAcrossSquashEpochs re-checks store-to-load forwarding
// correctness when seq numbers are reused after a squash (the eager
// truncation must never drop a live reference).
func TestForwardingAcrossSquashEpochs(t *testing.T) {
	e := newEngine(false)
	e.Tick(0)
	s1 := e.Dispatch(nil, false, true, 0x80, 1)
	e.Dispatch(nil, false, true, 0x80, 1)
	e.Squash(s1 + 1) // kill the second store only
	s2 := e.Dispatch(nil, false, true, 0x80, 1)
	if s2 != s1+1 {
		t.Fatalf("redispatch seq = %d, want %d", s2, s1+1)
	}
	runUntilDone(t, e, s2, 1, 10)
	if st := e.olderStore(0x80, s2+5); st == nil || st.seq != s2 {
		t.Fatalf("olderStore = %+v, want live store seq %d", st, s2)
	}
}
