package engine

import (
	"math/rand"
	"testing"
)

// TestEngineLivenessUnderRandomTraffic drives the engine with randomized
// dispatch, squash and retire traffic and checks the liveness invariant:
// every instruction that is dispatched and never squashed eventually
// completes and retires, and the window never leaks slots.
func TestEngineLivenessUnderRandomTraffic(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	cfg := DefaultConfig()
	cfg.FUs = 4
	cfg.RSPerFU = 8
	e := New(cfg, testHier())

	var (
		cycle      uint64
		retireSeq  uint64
		dispatched int
		retired    int
	)
	alive := map[uint64]bool{}
	for step := 0; step < 20000; step++ {
		cycle++
		e.Tick(cycle)
		// Retire completed instructions in order.
		for e.InFlight() > 0 && e.IsDone(retireSeq) {
			e.Retire(retireSeq)
			delete(alive, retireSeq)
			retireSeq++
			retired++
		}
		switch r := rnd.Intn(100); {
		case r < 55 && e.SpaceFor(1):
			// Dispatch with random deps on recent instructions.
			var srcs []uint64
			next := e.NextSeq()
			for i := 0; i < rnd.Intn(3); i++ {
				if next > 0 {
					back := uint64(rnd.Intn(8) + 1)
					if back <= next {
						srcs = append(srcs, next-back)
					}
				}
			}
			isLoad := r%7 == 0
			isStore := !isLoad && r%5 == 0
			lat := 1 + rnd.Intn(3)
			seq := e.Dispatch(srcs, isLoad, isStore, uint64(rnd.Intn(64))*8, lat)
			alive[seq] = true
			dispatched++
		case r < 60 && e.InFlight() > 0:
			// Squash a random suffix.
			span := e.NextSeq() - retireSeq
			if span > 0 {
				from := retireSeq + uint64(rnd.Intn(int(span)))
				if from == retireSeq {
					from++ // keep at least the oldest (mirrors branch recovery)
				}
				if from < e.NextSeq() {
					e.Squash(from)
					for s := range alive {
						if s >= from {
							delete(alive, s)
						}
					}
				}
			}
		}
	}
	// Drain: everything alive must complete within a bounded horizon.
	for i := 0; i < 500 && e.InFlight() > 0; i++ {
		cycle++
		e.Tick(cycle)
		for e.InFlight() > 0 && e.IsDone(retireSeq) {
			e.Retire(retireSeq)
			delete(alive, retireSeq)
			retireSeq++
			retired++
		}
	}
	if e.InFlight() != 0 {
		t.Fatalf("engine wedged: %d in flight, oldest seq %d, alive %d",
			e.InFlight(), retireSeq, len(alive))
	}
	if len(alive) != 0 {
		t.Fatalf("%d instructions lost", len(alive))
	}
	if retired == 0 || dispatched == 0 {
		t.Fatal("stress produced no traffic")
	}
	t.Logf("dispatched %d, retired %d, squashed %d", dispatched, retired, e.Stats().Squashed)
}

// TestEngineOracleLivenessUnderRandomTraffic repeats the stress with the
// perfect-disambiguation scheduler.
func TestEngineOracleLivenessUnderRandomTraffic(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	cfg := DefaultConfig()
	cfg.FUs = 2
	cfg.RSPerFU = 16
	cfg.MemOracle = true
	e := New(cfg, testHier())
	var cycle, retireSeq uint64
	for step := 0; step < 8000; step++ {
		cycle++
		e.Tick(cycle)
		for e.InFlight() > 0 && e.IsDone(retireSeq) {
			e.Retire(retireSeq)
			retireSeq++
		}
		if e.SpaceFor(1) && rnd.Intn(2) == 0 {
			var srcs []uint64
			if n := e.NextSeq(); n > retireSeq {
				srcs = append(srcs, retireSeq+uint64(rnd.Intn(int(n-retireSeq))))
			}
			e.Dispatch(srcs, rnd.Intn(3) == 0, rnd.Intn(4) == 0, uint64(rnd.Intn(32))*8, 1+rnd.Intn(12))
		}
	}
	for i := 0; i < 500 && e.InFlight() > 0; i++ {
		cycle++
		e.Tick(cycle)
		for e.InFlight() > 0 && e.IsDone(retireSeq) {
			e.Retire(retireSeq)
			retireSeq++
		}
	}
	if e.InFlight() != 0 {
		t.Fatalf("oracle engine wedged with %d in flight", e.InFlight())
	}
}
