package exec

import (
	"testing"

	"tracecache/internal/isa"
	"tracecache/internal/program"
)

// grow executes reg-writing steps until the undo log holds n records.
func grow(s *State, p int, n int) {
	for s.UndoLen() < n {
		s.StepAt(p)
	}
}

func TestCompactToReleasesOversizedLog(t *testing.T) {
	p := buildLoop(t)
	s := NewState(p)
	grow(s, 0, undoRetainCap+100) // pc 0 is a register write
	sn := s.Checkpoint()
	s.CompactTo(sn)
	if s.UndoLen() != 0 {
		t.Fatalf("undo length = %d, want 0", s.UndoLen())
	}
	if cap(s.undo) != 0 {
		t.Errorf("oversized undo capacity retained: %d", cap(s.undo))
	}
	// The state must remain fully usable: new snapshots roll back.
	before := s.Regs[1]
	sn2 := s.Checkpoint()
	s.StepAt(0)
	s.Rollback(sn2)
	if s.Regs[1] != before {
		t.Error("rollback after compaction lost register state")
	}
}

func TestCompactToKeepsModestCapacity(t *testing.T) {
	p := buildLoop(t)
	s := NewState(p)
	grow(s, 0, 100)
	s.CompactTo(s.Checkpoint())
	if s.UndoLen() != 0 {
		t.Fatalf("undo length = %d, want 0", s.UndoLen())
	}
	if cap(s.undo) == 0 {
		t.Error("modest capacity freed; steady state should reuse it")
	}
}

// TestCompactToPartialRelease verifies CompactTo with a mid-log snapshot
// behaves like ReleaseBefore: older records drop, newer ones stay valid.
func TestCompactToPartialRelease(t *testing.T) {
	p := buildLoop(t)
	s := NewState(p)
	s.StepAt(0) // r1 = 5
	mid := s.Checkpoint()
	s.StepAt(1) // r2 = 0
	s.StepAt(0)
	s.CompactTo(mid)
	if s.UndoLen() != 2 {
		t.Fatalf("undo length = %d, want 2", s.UndoLen())
	}
	s.Rollback(mid)
	if s.Regs[1] != 5 {
		t.Errorf("r1 = %d, want 5 after rollback to mid", s.Regs[1])
	}
}

func TestResetUndoKeepsMarksMonotonic(t *testing.T) {
	p := buildLoop(t)
	s := NewState(p)
	s.StepAt(0)
	s.StepAt(1)
	s.ResetUndo()
	if s.UndoLen() != 0 {
		t.Fatalf("undo length = %d, want 0", s.UndoLen())
	}
	// A snapshot taken after the reset must be a valid rollback point.
	sn := s.Checkpoint()
	before := s.Regs[1]
	s.StepAt(0)
	s.Rollback(sn)
	if s.Regs[1] != before {
		t.Error("post-reset snapshot did not roll back correctly")
	}
	// A stale pre-reset rollback must not underflow (clamped to empty log).
	s.Rollback(Snapshot{})
}

func TestCallStackCopySemantics(t *testing.T) {
	b := program.NewBuilder("call")
	b.Here("main")
	b.EmitTo(isa.Inst{Op: isa.OpCall}, "fn")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Here("fn")
	b.Emit(isa.Inst{Op: isa.OpRet})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	s.StepAt(0) // call
	cs := s.CallStack()
	if len(cs) != 1 || cs[0] != 1 {
		t.Fatalf("call stack = %v, want [1]", cs)
	}
	cs[0] = 99 // mutating the copy must not touch the state
	if got := s.CallStack(); got[0] != 1 {
		t.Errorf("CallStack aliased internal storage: %v", got)
	}
	s.SetCallStack([]int{4, 7})
	if got := s.CallStack(); len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Errorf("SetCallStack = %v, want [4 7]", got)
	}
}
