package exec

import (
	"testing"
	"testing/quick"

	"tracecache/internal/isa"
	"tracecache/internal/program"
)

func buildLoop(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("loop")
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 5}) // r1 = 5
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 2, Imm: 0}) // r2 = 0
	b.Here("loop")
	b.Emit(isa.Inst{Op: isa.OpAdd, Rd: 2, Rs1: 2, Rs2: 1}) // r2 += r1
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: 1, Rs2: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunLoopComputesSum(t *testing.T) {
	p := buildLoop(t)
	s := NewState(p)
	steps, halted := s.Run(1000)
	if !halted {
		t.Fatal("program did not halt")
	}
	if s.Regs[2] != 5+4+3+2+1 {
		t.Errorf("r2 = %d, want 15", s.Regs[2])
	}
	if steps == 0 || steps > 1000 {
		t.Errorf("steps = %d", steps)
	}
}

func TestRunRespectsLimit(t *testing.T) {
	b := program.NewBuilder("spin")
	b.Here("top")
	b.EmitTo(isa.Inst{Op: isa.OpJmp}, "top")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("top")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	steps, halted := s.Run(100)
	if halted || steps != 100 {
		t.Errorf("steps=%d halted=%v, want 100,false", steps, halted)
	}
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.OpAdd, 3, 4, 7},
		{isa.OpSub, 3, 4, -1},
		{isa.OpMul, 3, 4, 12},
		{isa.OpDiv, 12, 4, 3},
		{isa.OpDiv, 12, 0, 0}, // division by zero is defined as 0
		{isa.OpAnd, 0b1100, 0b1010, 0b1000},
		{isa.OpOr, 0b1100, 0b1010, 0b1110},
		{isa.OpXor, 0b1100, 0b1010, 0b0110},
		{isa.OpShl, 1, 4, 16},
		{isa.OpShr, 16, 4, 1},
		{isa.OpShl, 1, 64 + 2, 4}, // shift amounts are masked to 6 bits
	}
	for _, c := range cases {
		b := program.NewBuilder("alu")
		b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: c.a})
		b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 2, Imm: c.b})
		b.Emit(isa.Inst{Op: c.op, Rd: 3, Rs1: 1, Rs2: 2})
		b.Emit(isa.Inst{Op: isa.OpHalt})
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		s := NewState(p)
		s.Run(10)
		if s.Regs[3] != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, s.Regs[3], c.want)
		}
	}
}

func TestImmediateOps(t *testing.T) {
	b := program.NewBuilder("imm")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 10})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 2, Rs1: 1, Imm: 5})
	b.Emit(isa.Inst{Op: isa.OpMulI, Rd: 3, Rs1: 1, Imm: 3})
	b.Emit(isa.Inst{Op: isa.OpAndI, Rd: 4, Rs1: 1, Imm: 8})
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	s.Run(10)
	if s.Regs[2] != 15 || s.Regs[3] != 30 || s.Regs[4] != 8 {
		t.Errorf("regs = %d %d %d", s.Regs[2], s.Regs[3], s.Regs[4])
	}
}

func TestZeroRegisterIsConstant(t *testing.T) {
	b := program.NewBuilder("zero")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 0, Imm: 99})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 0, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	s.Run(10)
	if s.Regs[0] != 0 {
		t.Errorf("r0 = %d, want 0", s.Regs[0])
	}
	if s.Regs[1] != 1 {
		t.Errorf("r1 = %d, want 1", s.Regs[1])
	}
}

func TestLoadStore(t *testing.T) {
	b := program.NewBuilder("mem")
	b.Word(0x1000, 7)
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 0x1000})
	b.Emit(isa.Inst{Op: isa.OpLoad, Rd: 2, Rs1: 1})            // r2 = mem[0x1000] = 7
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 3, Rs1: 2, Imm: 1})    // r3 = 8
	b.Emit(isa.Inst{Op: isa.OpStore, Rs1: 1, Rs2: 3, Imm: 8})  // mem[0x1008] = 8
	b.Emit(isa.Inst{Op: isa.OpLoad, Rd: 4, Rs1: 1, Imm: 8})    // r4 = 8
	b.Emit(isa.Inst{Op: isa.OpLoad, Rd: 5, Rs1: 1, Imm: 4096}) // unmapped = 0
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	s.Run(10)
	if s.Regs[2] != 7 || s.Regs[4] != 8 || s.Regs[5] != 0 {
		t.Errorf("r2=%d r4=%d r5=%d", s.Regs[2], s.Regs[4], s.Regs[5])
	}
}

func TestCallReturn(t *testing.T) {
	b := program.NewBuilder("call")
	b.Here("main")
	b.EmitTo(isa.Inst{Op: isa.OpCall}, "fn")
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 2, Rs1: 1, Imm: 1}) // after return: r2 = r1+1
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Here("fn")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 41})
	b.Emit(isa.Inst{Op: isa.OpRet})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	_, halted := s.Run(100)
	if !halted || s.Regs[2] != 42 {
		t.Errorf("halted=%v r2=%d", halted, s.Regs[2])
	}
	if s.CallDepth() != 0 {
		t.Errorf("call depth = %d, want 0", s.CallDepth())
	}
}

func TestIndirectJump(t *testing.T) {
	b := program.NewBuilder("ind")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 0x2000})
	b.Emit(isa.Inst{Op: isa.OpLoad, Rd: 2, Rs1: 1}) // r2 = target
	b.Emit(isa.Inst{Op: isa.OpJmpInd, Rs1: 2})
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 3, Imm: 1}) // skipped
	b.Here("dest")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 4, Imm: 2})
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Word(0x2000, 4) // instruction index of "dest"
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	s.Run(100)
	if s.Regs[3] != 0 || s.Regs[4] != 2 {
		t.Errorf("r3=%d r4=%d", s.Regs[3], s.Regs[4])
	}
}

func TestStepAtWrongPathSafety(t *testing.T) {
	p := buildLoop(t)
	s := NewState(p)
	// Off-image PC must not panic and must fall through.
	info := s.StepAt(len(p.Code) + 10)
	if !info.OffImage || info.NextPC != len(p.Code)+11 {
		t.Errorf("off-image step = %+v", info)
	}
	info = s.StepAt(-3)
	if !info.OffImage {
		t.Errorf("negative step = %+v", info)
	}
	// Unbalanced return falls through.
	b := program.NewBuilder("ret")
	b.Emit(isa.Inst{Op: isa.OpRet})
	b.Emit(isa.Inst{Op: isa.OpHalt})
	rp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rs := NewState(rp)
	ri := rs.StepAt(0)
	if ri.NextPC != 1 {
		t.Errorf("unbalanced ret NextPC = %d, want 1", ri.NextPC)
	}
}

func TestCheckpointRollbackRegisters(t *testing.T) {
	p := buildLoop(t)
	s := NewState(p)
	s.writeReg(1, 100)
	sn := s.Checkpoint()
	s.writeReg(1, 200)
	s.writeReg(2, 300)
	s.Rollback(sn)
	if s.Regs[1] != 100 || s.Regs[2] != 0 {
		t.Errorf("after rollback r1=%d r2=%d", s.Regs[1], s.Regs[2])
	}
	// Writes to r0 are discarded and not logged.
	s.writeReg(0, 7)
	if s.Regs[0] != 0 {
		t.Error("r0 written")
	}
}

func TestCheckpointRollbackMemory(t *testing.T) {
	b := program.NewBuilder("m")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	s.writeMem(0x100, 1)
	sn := s.Checkpoint()
	s.writeMem(0x100, 2)
	s.writeMem(0x108, 3)
	s.writeMem(0x100, 4)
	s.Rollback(sn)
	if got := s.Mem().Read(0x100); got != 1 {
		t.Errorf("mem[0x100] = %d, want 1", got)
	}
	if got := s.Mem().Read(0x108); got != 0 {
		t.Errorf("mem[0x108] = %d, want 0", got)
	}
}

func TestNestedCheckpoints(t *testing.T) {
	b := program.NewBuilder("m")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	s.writeMem(0x0, 1)
	sn1 := s.Checkpoint()
	s.writeMem(0x0, 2)
	sn2 := s.Checkpoint()
	s.writeMem(0x0, 3)
	s.Rollback(sn2)
	if got := s.Mem().Read(0); got != 2 {
		t.Errorf("after inner rollback mem = %d, want 2", got)
	}
	s.Rollback(sn1)
	if got := s.Mem().Read(0); got != 1 {
		t.Errorf("after outer rollback mem = %d, want 1", got)
	}
}

func TestRollbackRestoresCallStack(t *testing.T) {
	b := program.NewBuilder("c")
	b.Here("main")
	b.EmitTo(isa.Inst{Op: isa.OpCall}, "fn")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Here("fn")
	b.Emit(isa.Inst{Op: isa.OpRet})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	s.StepAt(0) // call: depth 1
	sn := s.Checkpoint()
	s.StepAt(2) // ret: depth 0
	if s.CallDepth() != 0 {
		t.Fatalf("depth after ret = %d", s.CallDepth())
	}
	s.Rollback(sn)
	if s.CallDepth() != 1 {
		t.Errorf("depth after rollback = %d, want 1", s.CallDepth())
	}
	// Re-execute the return; it must pop the restored entry.
	info := s.StepAt(2)
	if info.NextPC != 1 {
		t.Errorf("ret NextPC = %d, want 1", info.NextPC)
	}
}

func TestReleaseBeforeTrimsUndo(t *testing.T) {
	b := program.NewBuilder("m")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(p)
	for i := 0; i < 100; i++ {
		s.writeMem(uint64(i*8), int64(i))
	}
	sn := s.Checkpoint()
	s.writeMem(0x5000, 1)
	s.ReleaseBefore(sn)
	if s.UndoLen() != 1 {
		t.Errorf("undo len = %d, want 1", s.UndoLen())
	}
	// Rollback to the surviving checkpoint must still work.
	s.Rollback(sn)
	if got := s.Mem().Read(0x5000); got != 0 {
		t.Errorf("mem = %d, want 0", got)
	}
	if got := s.Mem().Read(8 * 50); got != 50 {
		t.Errorf("released history disturbed: mem = %d, want 50", got)
	}
}

// Property: a rollback after an arbitrary sequence of stores restores every
// touched address exactly.
func TestRollbackProperty(t *testing.T) {
	b := program.NewBuilder("m")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := func(addrs []uint16, vals []int64) bool {
		s := NewState(p)
		// Pre-populate some state.
		s.writeMem(0x10, 111)
		before := map[uint64]int64{0x10: 111}
		sn := s.Checkpoint()
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		touched := map[uint64]bool{}
		for i := 0; i < n; i++ {
			a := uint64(addrs[i]) &^ 7
			touched[a] = true
			s.writeMem(a, vals[i])
		}
		s.Rollback(sn)
		for a := range touched {
			if s.Mem().Read(a) != before[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryAlignment(t *testing.T) {
	m := NewMemory()
	m.Write(17, 5) // aligns down to 16
	if m.Read(16) != 5 || m.Read(23) != 5 {
		t.Error("unaligned access must alias the containing word")
	}
	if m.Read(24) != 0 {
		t.Error("adjacent word must be independent")
	}
}

func TestMemoryZeroWriteDoesNotAllocate(t *testing.T) {
	m := NewMemory()
	m.Write(0x100000, 0)
	if m.Pages() != 0 {
		t.Errorf("pages = %d, want 0", m.Pages())
	}
	m.Write(0x100000, 1)
	if m.Pages() != 1 {
		t.Errorf("pages = %d, want 1", m.Pages())
	}
}

func TestTraceStreamsSteps(t *testing.T) {
	p := buildLoop(t)
	var condBranches, taken int
	steps, halted := Trace(p, 10000, func(si StepInfo) bool {
		if si.Inst.IsCondBranch() {
			condBranches++
			if si.Taken {
				taken++
			}
		}
		return true
	})
	if !halted {
		t.Fatal("trace did not reach halt")
	}
	if condBranches != 5 || taken != 4 {
		t.Errorf("branches=%d taken=%d, want 5 taken 4", condBranches, taken)
	}
	if steps == 0 {
		t.Error("no steps recorded")
	}
}

func TestTraceEarlyStop(t *testing.T) {
	p := buildLoop(t)
	n := 0
	steps, halted := Trace(p, 10000, func(StepInfo) bool {
		n++
		return n < 3
	})
	if halted || steps != 3 {
		t.Errorf("steps=%d halted=%v", steps, halted)
	}
}

func TestStateAccessors(t *testing.T) {
	p := buildLoop(t)
	s := NewState(p)
	if s.Program() != p {
		t.Error("Program accessor")
	}
	s.StepAt(0)
	if s.Steps() != 1 {
		t.Errorf("Steps = %d", s.Steps())
	}
}

func TestRollbackBelowReleaseMarkClamps(t *testing.T) {
	p := buildLoop(t)
	s := NewState(p)
	s.writeMem(0, 1)
	early := s.Checkpoint()
	s.writeMem(0, 2)
	late := s.Checkpoint()
	s.ReleaseBefore(late)
	// Rolling back to a released snapshot clamps at the release point
	// rather than corrupting the log.
	s.Rollback(early)
	if got := s.Mem().Read(0); got != 2 {
		t.Errorf("mem = %d, want 2 (history released)", got)
	}
	// ReleaseBefore past the end is also safe.
	s.writeMem(0, 3)
	s.ReleaseBefore(Snapshot{undoMark: 1 << 40})
	if s.UndoLen() != 0 {
		t.Errorf("undo = %d", s.UndoLen())
	}
}

func TestTraceUndoTrimming(t *testing.T) {
	// A long trace must not accumulate unbounded undo history.
	b := program.NewBuilder("longstore")
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 1 << 20})
	b.Here("loop")
	b.Emit(isa.Inst{Op: isa.OpStore, Rs1: 2, Rs2: 1})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: 1, Rs2: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	steps, _ := Trace(p, 400_000, func(StepInfo) bool { return true })
	if steps != 400_000 {
		t.Errorf("steps = %d", steps)
	}
}
