package exec

import (
	"testing"

	"tracecache/internal/isa"
	"tracecache/internal/program"
)

// FuzzStepAt feeds arbitrary decoded instructions and machine state to the
// interpreter. StepAt must never panic: the timing simulator executes
// whatever the wrong path reaches, including garbage control flow.
func FuzzStepAt(f *testing.F) {
	f.Add(uint8(isa.OpAdd), uint8(0), uint8(1), uint8(2), uint8(3), int64(7), int(2), int64(11))
	f.Add(uint8(isa.OpDiv), uint8(0), uint8(1), uint8(2), uint8(0), int64(0), int(0), int64(0))
	f.Add(uint8(isa.OpBr), uint8(3), uint8(0), uint8(30), uint8(31), int64(-1), int(1), int64(1<<40))
	f.Add(uint8(isa.OpJmpInd), uint8(0), uint8(0), uint8(5), uint8(5), int64(1<<50), int(0), int64(-9))
	f.Add(uint8(isa.OpRet), uint8(0), uint8(0), uint8(0), uint8(0), int64(0), int(0), int64(0))
	f.Add(uint8(isa.OpStore), uint8(0), uint8(0), uint8(9), uint8(8), int64(^0), int(0), int64(3))
	f.Fuzz(func(t *testing.T, op, cond, rd, rs1, rs2 uint8, imm int64, target int, regVal int64) {
		b := program.NewBuilder("fuzz")
		// Keep targets in range so Build accepts the program; the fuzz
		// interest is in semantics, not validation (tested elsewhere).
		tgt := target & 3
		if tgt < 0 {
			tgt = 0
		}
		in := isa.Inst{
			Op:     isa.Op(op % 24),
			Cond:   isa.Cond(cond % 6),
			Rd:     isa.Reg(rd % isa.NumRegs),
			Rs1:    isa.Reg(rs1 % isa.NumRegs),
			Rs2:    isa.Reg(rs2 % isa.NumRegs),
			Imm:    imm,
			Target: tgt,
		}
		b.Emit(in)
		b.Emit(isa.Inst{Op: isa.OpNop})
		b.Emit(isa.Inst{Op: isa.OpNop})
		b.Emit(isa.Inst{Op: isa.OpHalt})
		p, err := b.Build()
		if err != nil {
			t.Skip() // malformed combinations are Validate's job
		}
		s := NewState(p)
		if r := in.Rs1; r != isa.ZeroReg {
			s.Regs[r] = regVal
		}
		sn := s.Checkpoint()
		info := s.StepAt(0)
		// Off-path probes must also be safe.
		s.StepAt(-1)
		s.StepAt(1 << 20)
		s.Rollback(sn)
		if in.Op == isa.OpBr && info.Taken && info.NextPC != in.Target {
			t.Fatalf("taken branch went to %d, want %d", info.NextPC, in.Target)
		}
		if s.Regs[0] != 0 {
			t.Fatal("r0 corrupted")
		}
	})
}
