// Package exec implements the architectural instruction-set simulator: a
// paged data memory, a register file, single-instruction semantics, and
// checkpoint/rollback so the timing model can execute speculatively (wrong
// path included) and recover on mispredictions and promoted-branch faults.
package exec

// pageWords is the number of 8-byte words per memory page.
const pageWords = 512

// pageShift converts a word index to a page number.
const pageShift = 9 // log2(pageWords)

// Memory is a sparse, paged, word-granular data memory. Addresses are byte
// addresses; accesses are 8-byte words and are aligned down to 8 bytes.
// Reads of unmapped memory return zero without allocating. A one-entry
// page cache short-circuits the map lookup for consecutive accesses to the
// same page — the common case in the simulator's load/store stream.
type Memory struct {
	pages    map[uint64]*[pageWords]int64
	lastPage uint64
	lastPtr  *[pageWords]int64
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]int64)}
}

func split(addr uint64) (page, offset uint64) {
	w := addr >> 3 // word index
	return w >> pageShift, w & (pageWords - 1)
}

// Read returns the word at addr (aligned down to 8 bytes).
//
//tc:hotpath
func (m *Memory) Read(addr uint64) int64 {
	pg, off := split(addr)
	if m.lastPtr != nil && m.lastPage == pg {
		return m.lastPtr[off]
	}
	p := m.pages[pg]
	if p == nil {
		return 0
	}
	m.lastPage, m.lastPtr = pg, p
	return p[off]
}

// Write stores v at addr (aligned down to 8 bytes).
//
//tc:hotpath
func (m *Memory) Write(addr uint64, v int64) {
	pg, off := split(addr)
	if m.lastPtr != nil && m.lastPage == pg {
		m.lastPtr[off] = v
		return
	}
	p := m.pages[pg]
	if p == nil {
		if v == 0 {
			return // writing zero to unmapped memory is a no-op
		}
		p = new([pageWords]int64)
		m.pages[pg] = p
	}
	m.lastPage, m.lastPtr = pg, p
	p[off] = v
}

// Pages returns the number of allocated pages (for footprint diagnostics).
func (m *Memory) Pages() int { return len(m.pages) }

// PageWords is the exported page size, for checkpointing.
const PageWords = pageWords

// ForEachPage invokes fn for every allocated page with its page number and
// word contents. Iteration order is unspecified. The words slice aliases
// live memory; fn must copy what it keeps.
func (m *Memory) ForEachPage(fn func(page uint64, words []int64)) {
	//tcvet:ignore determinism per-page callback: the only consumer (checkpoint.Capture) stores pages keyed by page number
	for pg, p := range m.pages {
		fn(pg, p[:])
	}
}

// SetPage replaces the contents of a page (checkpoint restore). words must
// hold exactly PageWords values; it is copied.
func (m *Memory) SetPage(page uint64, words []int64) {
	p := m.pages[page]
	if p == nil {
		p = new([pageWords]int64)
		m.pages[page] = p
	}
	copy(p[:], words)
}

// Clear drops every allocated page, returning the memory to the unmapped
// (all-zero) image.
func (m *Memory) Clear() {
	m.pages = make(map[uint64]*[pageWords]int64)
	m.lastPtr = nil
	m.lastPage = 0
}
