package exec

import (
	"tracecache/internal/isa"
	"tracecache/internal/program"
)

// StepInfo records the architectural effects of executing one instruction.
type StepInfo struct {
	PC      int
	Inst    isa.Inst
	NextPC  int    // actual next PC on this execution path
	Taken   bool   // conditional branch outcome
	MemAddr uint64 // effective address for loads and stores
	Value   int64  // value loaded or stored
	Halted  bool   // instruction was a halt
	// OffImage is set when pc was outside the code segment (possible only
	// on the wrong path); the step is then a no-op falling through.
	OffImage bool
}

// undo record kinds.
const (
	undoReg uint8 = iota
	undoMem
	undoPush // a call pushed; undo by popping
	undoPop  // a return popped; undo by pushing old back
)

type undoRec struct {
	kind uint8
	reg  isa.Reg
	addr uint64
	old  int64
}

// State is the architectural machine state. The timing simulator executes
// instructions against it in dispatch order — including down mispredicted
// paths — and uses Checkpoint/Rollback to recover, mirroring the
// checkpoint-repair execution core of the paper. Every architectural
// mutation is undo-logged, so a Snapshot is just a log position and
// checkpoints are O(1).
type State struct {
	prog      *program.Program
	Regs      [isa.NumRegs]int64
	mem       *Memory
	callStack []int
	undo      []undoRec
	undoBase  uint64 // absolute index of undo[0]
	steps     uint64
}

// NewState builds machine state for the program, loading its initial data
// image.
func NewState(p *program.Program) *State {
	s := &State{prog: p, mem: NewMemory()}
	//tcvet:ignore determinism disjoint writes: each data word lands at its own address, final image is order-independent
	for addr, v := range p.Data {
		s.mem.Write(addr, v)
	}
	return s
}

// Program returns the program this state executes.
func (s *State) Program() *program.Program { return s.prog }

// Mem returns the data memory (for inspection in tests and examples).
func (s *State) Mem() *Memory { return s.mem }

// Steps returns the number of instructions executed, including speculative
// ones that were later rolled back.
func (s *State) Steps() uint64 { return s.steps }

// CallDepth returns the current call-stack depth.
func (s *State) CallDepth() int { return len(s.callStack) }

// CallStack returns a copy of the call stack (return targets, oldest
// first), for checkpointing and for seeding a return address stack.
func (s *State) CallStack() []int {
	return append([]int(nil), s.callStack...)
}

// SetCallStack replaces the call stack (checkpoint restore). The slice is
// copied.
func (s *State) SetCallStack(cs []int) {
	s.callStack = append(s.callStack[:0], cs...)
}

// ResetUndo discards the entire undo history while keeping snapshot marks
// monotonic, so snapshots taken after the reset remain valid. Used by
// checkpoint restore: a restored state has nothing to roll back to.
func (s *State) ResetUndo() {
	s.undoBase += uint64(len(s.undo))
	s.undo = nil
}

func (s *State) writeReg(r isa.Reg, v int64) {
	if r == isa.ZeroReg {
		return
	}
	s.undo = append(s.undo, undoRec{kind: undoReg, reg: r, old: s.Regs[r]})
	s.Regs[r] = v
}

func (s *State) writeMem(addr uint64, v int64) {
	s.undo = append(s.undo, undoRec{kind: undoMem, addr: addr, old: s.mem.Read(addr)})
	s.mem.Write(addr, v)
}

// StepAt executes the instruction at pc against the current state and
// returns its effects. The caller decides what executes next; NextPC
// reports where this execution path actually goes. StepAt never panics:
// out-of-range PCs, division by zero, unmapped loads and unbalanced returns
// are all well defined, because the timing model executes wrong-path
// instructions.
func (s *State) StepAt(pc int) StepInfo {
	s.steps++
	if pc < 0 || pc >= len(s.prog.Code) {
		return StepInfo{PC: pc, NextPC: pc + 1, OffImage: true}
	}
	in := s.prog.Code[pc]
	info := StepInfo{PC: pc, Inst: in, NextPC: pc + 1}
	rv := func(r isa.Reg) int64 { return s.Regs[r] }
	switch in.Op {
	case isa.OpNop, isa.OpTrap:
		// no architectural effect
	case isa.OpAdd:
		s.writeReg(in.Rd, rv(in.Rs1)+rv(in.Rs2))
	case isa.OpSub:
		s.writeReg(in.Rd, rv(in.Rs1)-rv(in.Rs2))
	case isa.OpMul:
		s.writeReg(in.Rd, rv(in.Rs1)*rv(in.Rs2))
	case isa.OpDiv:
		d := rv(in.Rs2)
		if d == 0 {
			s.writeReg(in.Rd, 0)
		} else {
			s.writeReg(in.Rd, rv(in.Rs1)/d)
		}
	case isa.OpAnd:
		s.writeReg(in.Rd, rv(in.Rs1)&rv(in.Rs2))
	case isa.OpOr:
		s.writeReg(in.Rd, rv(in.Rs1)|rv(in.Rs2))
	case isa.OpXor:
		s.writeReg(in.Rd, rv(in.Rs1)^rv(in.Rs2))
	case isa.OpShl:
		s.writeReg(in.Rd, rv(in.Rs1)<<(uint64(rv(in.Rs2))&63))
	case isa.OpShr:
		s.writeReg(in.Rd, int64(uint64(rv(in.Rs1))>>(uint64(rv(in.Rs2))&63)))
	case isa.OpAddI:
		s.writeReg(in.Rd, rv(in.Rs1)+in.Imm)
	case isa.OpMulI:
		s.writeReg(in.Rd, rv(in.Rs1)*in.Imm)
	case isa.OpAndI:
		s.writeReg(in.Rd, rv(in.Rs1)&in.Imm)
	case isa.OpShrI:
		s.writeReg(in.Rd, int64(uint64(rv(in.Rs1))>>(uint64(in.Imm)&63)))
	case isa.OpLoadI:
		s.writeReg(in.Rd, in.Imm)
	case isa.OpLoad:
		addr := uint64(rv(in.Rs1)+in.Imm) &^ 7
		v := s.mem.Read(addr)
		s.writeReg(in.Rd, v)
		info.MemAddr, info.Value = addr, v
	case isa.OpStore:
		addr := uint64(rv(in.Rs1)+in.Imm) &^ 7
		v := rv(in.Rs2)
		s.writeMem(addr, v)
		info.MemAddr, info.Value = addr, v
	case isa.OpBr:
		info.Taken = in.Cond.Eval(rv(in.Rs1), rv(in.Rs2))
		if info.Taken {
			info.NextPC = in.Target
		}
	case isa.OpJmp:
		info.NextPC = in.Target
	case isa.OpCall:
		s.undo = append(s.undo, undoRec{kind: undoPush})
		s.callStack = append(s.callStack, pc+1)
		info.NextPC = in.Target
	case isa.OpRet:
		if n := len(s.callStack); n > 0 {
			top := s.callStack[n-1]
			s.undo = append(s.undo, undoRec{kind: undoPop, old: int64(top)})
			info.NextPC = top
			s.callStack = s.callStack[:n-1]
		} // unbalanced return (wrong path): fall through
	case isa.OpJmpInd:
		info.NextPC = int(rv(in.Rs1))
	case isa.OpHalt:
		info.Halted = true
		info.NextPC = pc
	}
	return info
}

// Snapshot is a recoverable point in execution: a position in the undo
// log. The timing model takes one per dispatched instruction, so recovery
// can roll back to any instruction boundary.
type Snapshot struct {
	undoMark uint64 // absolute undo-log position
}

// Checkpoint captures the current state as an O(1) log position.
func (s *State) Checkpoint() Snapshot {
	return Snapshot{undoMark: s.undoBase + uint64(len(s.undo))}
}

// Rollback restores the state captured by the snapshot, undoing every
// mutation performed since it was taken. The snapshot must not be older
// than the last ReleaseBefore mark.
func (s *State) Rollback(sn Snapshot) {
	keep := int(sn.undoMark - s.undoBase)
	if keep < 0 {
		keep = 0
	}
	for i := len(s.undo) - 1; i >= keep; i-- {
		u := s.undo[i]
		switch u.kind {
		case undoReg:
			s.Regs[u.reg] = u.old
		case undoMem:
			s.mem.Write(u.addr, u.old)
		case undoPush:
			s.callStack = s.callStack[:len(s.callStack)-1]
		case undoPop:
			s.callStack = append(s.callStack, int(u.old))
		}
	}
	s.undo = s.undo[:keep]
}

// ReleaseBefore discards undo history older than the snapshot, bounding
// memory use. Call it when a snapshot can no longer be rolled back to (the
// instruction that took it has retired).
func (s *State) ReleaseBefore(sn Snapshot) {
	drop := int(sn.undoMark - s.undoBase)
	if drop <= 0 {
		return
	}
	if drop > len(s.undo) {
		drop = len(s.undo)
	}
	n := copy(s.undo, s.undo[drop:])
	s.undo = s.undo[:n]
	s.undoBase += uint64(drop)
}

// undoRetainCap is the undo capacity kept across CompactTo calls: large
// enough that steady-state speculation never reallocates, small enough that
// a pathological speculative burst does not pin its high-water capacity for
// the rest of the run.
const undoRetainCap = 1 << 14

// CompactTo is ReleaseBefore plus capacity management: once the live
// portion of the undo log is empty, backing capacity beyond a small retained
// buffer is returned to the allocator. The simulator calls it when recovery
// settles (the speculative burst that grew the log is over); fast-forward,
// which never speculates, calls it every step so it runs with a zero-length
// undo log regardless of how long the snapshot it holds lives.
func (s *State) CompactTo(sn Snapshot) {
	s.ReleaseBefore(sn)
	if len(s.undo) == 0 && cap(s.undo) > undoRetainCap {
		s.undo = nil
	}
}

// UndoLen returns the number of live undo records (for tests).
func (s *State) UndoLen() int { return len(s.undo) }

// Run executes sequentially from the entry point until halt or until limit
// instructions have executed, returning the count and whether the program
// halted. It is the non-speculative "oracle" execution used by workload
// analysis and tests.
func (s *State) Run(limit uint64) (steps uint64, halted bool) {
	pc := s.prog.Entry
	for steps < limit {
		info := s.StepAt(pc)
		steps++
		// Sequential execution never rolls back; discard undo history but
		// keep marks monotonic.
		s.undoBase += uint64(len(s.undo))
		s.undo = s.undo[:0]
		if info.Halted {
			return steps, true
		}
		pc = info.NextPC
	}
	return steps, false
}

// Trace executes sequentially from the program entry, invoking fn for each
// retired instruction until fn returns false, the program halts, or limit
// instructions have executed. It is used to analyse dynamic instruction
// streams.
func Trace(p *program.Program, limit uint64, fn func(StepInfo) bool) (steps uint64, halted bool) {
	s := NewState(p)
	pc := p.Entry
	for steps < limit {
		info := s.StepAt(pc)
		steps++
		if len(s.undo) > 1<<16 {
			s.undoBase += uint64(len(s.undo))
			s.undo = s.undo[:0]
		}
		if !fn(info) {
			return steps, false
		}
		if info.Halted {
			return steps, true
		}
		pc = info.NextPC
	}
	return steps, false
}
