package experiments

import (
	"fmt"
	"strings"

	"tracecache/internal/config"
	"tracecache/internal/core"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/textplot"
	"tracecache/internal/workload"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	// Paper summarises the result the paper reports, for side-by-side
	// comparison in EXPERIMENTS.md.
	Paper string
	// Run renders the experiment. Simulation failures (bad configuration,
	// self-check violations) surface as errors rather than panics so a
	// parallel tcbench reports them per-experiment.
	Run func(*Runner) (string, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Benchmarks", "15 SPECint95 + UNIX benchmarks, 41M-500M instructions each", Table1},
		{"fig4", "Fetch width breakdown, gcc, baseline", "many fetches limited by the 3-branch limit; avg 9.64", Fig4},
		{"table2", "Effective fetch rate vs promotion threshold", "icache 5.11, baseline 10.67, promotion 11.33-11.40 (+7% at t=64)", Table2},
		{"fig6", "Fetch width breakdown, gcc, promotion t=64", "fewer MaxBR terminations; avg 10.24 (+6%)", Fig6},
		{"fig7", "Mispredicted branches vs baseline (promotion)", "most benchmarks improve (gcc/go to ~80%); plot worsens from faults", Fig7},
		{"table3", "Predictions needed per fetch", "baseline 54/18/28%; promotion t=64 85/12/3%", Table3},
		{"fig9", "Effective fetch rate with trace packing", "+7% average over baseline", Fig9},
		{"fig10", "Effective fetch rate, all techniques", "+17% for promotion+packing; superadditive on gcc, chess, plot, ss", Fig10},
		{"table4", "Cache-miss cycles of packing regulation", "unreg +27-96%; regulation cuts it; tex worst; eff rates 12.18-12.47", Table4},
		{"fig11", "IPC, realistic core", "promotion+packing +4% over baseline, +36% over icache", Fig11},
		{"fig12", "Fetch cycle accounting", "most lost bandwidth from branch misses (except vortex)", Fig12},
		{"fig13", "Cycles lost to mispredictions", "most benchmarks increase", Fig13},
		{"fig14", "Mispredicted branches (promotion+packing)", "most benchmarks decrease", Fig14},
		{"fig15", "Misprediction resolution time", "+8% average", Fig15},
		{"fig16", "IPC, perfect memory disambiguation", "+11% over baseline, +63% over icache", Fig16},
	}
}

// ByID returns the experiment with the given ID, searching the paper's
// experiments and the extensions.
func ByID(id string) (Experiment, bool) {
	for _, e := range append(All(), Extensions()...) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment IDs in paper order.
func IDs() []string {
	es := All()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

// ---------------------------------------------------------------- table 1

// Table1 reports the benchmark suite: the paper's instruction counts and
// inputs alongside the synthetic stand-ins' static properties.
func Table1(r *Runner) (string, error) {
	rows := make([][]string, 0, 15)
	for _, name := range workload.Names() {
		prof, _ := workload.ByName(name)
		p, err := workload.SharedProgram(name)
		if err != nil {
			return "", err
		}
		st := p.Stats()
		rows = append(rows, []string{
			name,
			prof.PaperInsts,
			prof.PaperInput,
			fmt.Sprintf("%d", len(p.Code)),
			fmt.Sprintf("%.1f", st.MeanBlockSize()),
			fmt.Sprintf("%.1f%%", 100*float64(st.CondBranches)/float64(st.Insts)),
		})
	}
	return textplot.Table(
		[]string{"Benchmark", "Paper Insts", "Paper Input", "Synth Code", "Blk Size", "CondBr"},
		rows), nil
}

// ------------------------------------------------------- figures 4 and 6

func fetchBreakdown(run *stats.Run) string {
	var b strings.Builder
	bySize := run.Hist.BySize()
	labels := make([]string, len(bySize))
	freqs := make([]float64, len(bySize))
	for i := range bySize {
		labels[i] = fmt.Sprintf("%2d", i)
		freqs[i] = bySize[i]
	}
	b.WriteString(textplot.Histogram("Fetch size distribution (fraction of fetches)", labels, freqs, 50))
	b.WriteString(fmt.Sprintf("\nAve fetch size %.2f\n\n", run.Hist.Mean()))
	byEnd := run.Hist.ByEnd()
	endLabels := make([]string, stats.NumFetchEnds)
	endFreqs := make([]float64, stats.NumFetchEnds)
	for e := stats.FetchEnd(0); e < stats.NumFetchEnds; e++ {
		endLabels[e] = e.String()
		endFreqs[e] = byEnd[e]
	}
	b.WriteString(textplot.Bars("Termination condition (fraction of fetches)", endLabels, endFreqs, 50))
	return b.String()
}

// Fig4 is the fetch width breakdown for gcc under the baseline trace
// cache.
func Fig4(r *Runner) (string, error) {
	run, err := r.RunE(config.Baseline(), "gcc")
	if err != nil {
		return "", err
	}
	return "gcc, baseline 128KB trace cache\n\n" + fetchBreakdown(run), nil
}

// Fig6 is the fetch width breakdown for gcc with branch promotion at
// threshold 64.
func Fig6(r *Runner) (string, error) {
	run, err := r.RunE(config.Promotion(64), "gcc")
	if err != nil {
		return "", err
	}
	return "gcc, 128KB trace cache with branch promotion (threshold 64)\n\n" + fetchBreakdown(run), nil
}

// ---------------------------------------------------------------- table 2

// Table2Thresholds are the promotion thresholds the paper sweeps.
var Table2Thresholds = []uint32{8, 16, 32, 64, 128, 256}

// Table2 reports the average effective fetch rate with and without branch
// promotion.
func Table2(r *Runner) (string, error) {
	var rows [][]string
	add := func(label string, cfg sim.Config) error {
		rate, err := r.AvgEffRateE(cfg)
		if err != nil {
			return err
		}
		rows = append(rows, []string{label, fmt.Sprintf("%.2f", rate)})
		return nil
	}
	if err := add("icache", config.ICache()); err != nil {
		return "", err
	}
	if err := add("baseline", config.Baseline()); err != nil {
		return "", err
	}
	for _, t := range Table2Thresholds {
		if err := add(fmt.Sprintf("threshold = %d", t), config.Promotion(t)); err != nil {
			return "", err
		}
	}
	return textplot.Table([]string{"Configuration", "Ave effective fetch rate"}, rows), nil
}

// ---------------------------------------------------------------- fig 7

// Fig7 reports the percent change, relative to the baseline, in the
// number of mispredicted conditional branches when branches are promoted
// (promoted-branch faults count as mispredictions).
func Fig7(r *Runner) (string, error) {
	var b strings.Builder
	for _, t := range []uint32{64, 128, 256} {
		base, err := r.SweepE(config.Baseline())
		if err != nil {
			return "", err
		}
		promo, err := r.SweepE(config.Promotion(t))
		if err != nil {
			return "", err
		}
		vals := make([]float64, len(base))
		for i := range base {
			vals[i] = stats.PercentChange(float64(base[i].CondMispredicts), float64(promo[i].CondMispredicts))
		}
		b.WriteString(textplot.SignedBars(
			fmt.Sprintf("threshold=%d: %% change in mispredicted conditional branches", t),
			r.ShortBenchmarks(), vals, 40))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// ---------------------------------------------------------------- table 3

// Table3 reports the number of dynamic predictions required each fetch
// cycle, averaged over all benchmarks.
func Table3(r *Runner) (string, error) {
	row := func(name string, cfg sim.Config) ([]string, error) {
		var z, two, three float64
		runs, err := r.SweepE(cfg)
		if err != nil {
			return nil, err
		}
		for _, run := range runs {
			a, b, c := run.PredsFracs()
			z += a
			two += b
			three += c
		}
		n := float64(len(runs))
		return []string{
			name,
			fmt.Sprintf("%.0f%%", 100*z/n),
			fmt.Sprintf("%.0f%%", 100*two/n),
			fmt.Sprintf("%.0f%%", 100*three/n),
		}, nil
	}
	base, err := row("baseline", config.Baseline())
	if err != nil {
		return "", err
	}
	promo, err := row("threshold = 64", config.Promotion(config.PromotionThreshold))
	if err != nil {
		return "", err
	}
	return textplot.Table(
		[]string{"Configuration", "0 or 1 predictions", "2 predictions", "3 predictions"},
		[][]string{base, promo}), nil
}

// ---------------------------------------------------------------- fig 9

// Fig9 compares effective fetch rates with and without trace packing.
func Fig9(r *Runner) (string, error) {
	base, err := r.SweepE(config.Baseline())
	if err != nil {
		return "", err
	}
	pack, err := r.SweepE(config.Packing())
	if err != nil {
		return "", err
	}
	bv := make([]float64, len(base))
	pv := make([]float64, len(base))
	var notes []string
	for i := range base {
		bv[i] = base[i].EffFetchRate()
		pv[i] = pack[i].EffFetchRate()
		notes = append(notes, fmt.Sprintf("%s %+.0f%%", r.ShortBenchmarks()[i],
			stats.PercentChange(bv[i], pv[i])))
	}
	out := textplot.GroupedBars("Effective fetch rate: baseline vs trace packing",
		r.ShortBenchmarks(), []string{"baseline", "packing"}, [][]float64{bv, pv}, 40)
	out += "\nPacking gain: " + strings.Join(notes, ", ") + "\n"
	out += fmt.Sprintf("Average: baseline %.2f, packing %.2f (%+.0f%%)\n",
		avg(bv), avg(pv), stats.PercentChange(avg(bv), avg(pv)))
	return out, nil
}

// ---------------------------------------------------------------- fig 10

// Fig10Configs are the five front ends the figure compares.
func Fig10Configs() []sim.Config {
	return []sim.Config{
		config.ICache(),
		config.Baseline(),
		config.Packing(),
		config.Promotion(config.PromotionThreshold),
		config.PromotionPacking(core.PackUnregulated, config.PromotionThreshold),
	}
}

// Fig10 compares effective fetch rates for all techniques.
func Fig10(r *Runner) (string, error) {
	cfgs := Fig10Configs()
	names := []string{"icache", "baseline", "packing", "promotion", "promotion+packing"}
	values := make([][]float64, len(cfgs))
	for i, cfg := range cfgs {
		runs, err := r.SweepE(cfg)
		if err != nil {
			return "", err
		}
		values[i] = make([]float64, len(runs))
		for j, run := range runs {
			values[i][j] = run.EffFetchRate()
		}
	}
	out := textplot.GroupedBars("Effective fetch rates for all techniques",
		r.ShortBenchmarks(), names, values, 40)
	out += "\nAverages:"
	for i, n := range names {
		out += fmt.Sprintf(" %s %.2f;", n, avg(values[i]))
	}
	out += fmt.Sprintf("\nPromotion+packing over baseline: %+.0f%%\n",
		stats.PercentChange(avg(values[1]), avg(values[4])))
	return out, nil
}

// ---------------------------------------------------------------- table 4

// Table4Benchmarks are the six benchmarks the paper reports (those with
// significant trace cache miss traffic).
var Table4Benchmarks = []string{"gcc", "go", "vortex", "ghostscript", "python", "tex"}

// Table4 reports the percent increase in cache-miss cycles of each packing
// scheme over the promotion-only configuration, plus average effective
// fetch rates.
func Table4(r *Runner) (string, error) {
	promo := config.Promotion(config.PromotionThreshold)
	schemes := []struct {
		label string
		cfg   sim.Config
	}{
		{"unreg", config.PromotionPacking(core.PackUnregulated, config.PromotionThreshold)},
		{"cost-reg", config.PromotionPacking(core.PackCostRegulated, config.PromotionThreshold)},
		{"n=2", config.PromotionPacking(core.PackChunk2, config.PromotionThreshold)},
		{"n=4", config.PromotionPacking(core.PackChunk4, config.PromotionThreshold)},
	}
	rows := make([][]string, 0, len(Table4Benchmarks)+1)
	for _, bench := range Table4Benchmarks {
		base, err := r.RunE(promo, bench)
		if err != nil {
			return "", err
		}
		row := []string{workload.ShortName(bench)}
		for _, s := range schemes {
			run, err := r.RunE(s.cfg, bench)
			if err != nil {
				return "", err
			}
			row = append(row, fmt.Sprintf("%+.1f%%",
				stats.PercentChange(float64(base.TCMissCycles), float64(run.TCMissCycles))))
		}
		rows = append(rows, row)
	}
	effRow := []string{"Ave Eff Fetch Rate"}
	for _, s := range schemes {
		rate, err := r.AvgEffRateE(s.cfg)
		if err != nil {
			return "", err
		}
		effRow = append(effRow, fmt.Sprintf("%.2f", rate))
	}
	rows = append(rows, effRow)
	return textplot.Table([]string{"Benchmark", "unreg", "cost-reg", "n=2", "n=4"}, rows), nil
}

// ------------------------------------------------------- figures 11-16

// perfFigure renders an IPC comparison for the three machines of Figures
// 11 and 16.
func perfFigure(r *Runner, title string, icache, baseline, best sim.Config) (string, error) {
	ic, err := r.SweepE(icache)
	if err != nil {
		return "", err
	}
	bl, err := r.SweepE(baseline)
	if err != nil {
		return "", err
	}
	pp, err := r.SweepE(best)
	if err != nil {
		return "", err
	}
	iv, bv, pv := make([]float64, len(ic)), make([]float64, len(ic)), make([]float64, len(ic))
	for i := range ic {
		iv[i], bv[i], pv[i] = ic[i].IPC(), bl[i].IPC(), pp[i].IPC()
	}
	out := textplot.GroupedBars(title, r.ShortBenchmarks(),
		[]string{"icache", "baseline", "promo+pack"}, [][]float64{iv, bv, pv}, 40)
	var gains []string
	for i := range bv {
		gains = append(gains, fmt.Sprintf("%s %+.0f%%", r.ShortBenchmarks()[i],
			stats.PercentChange(bv[i], pv[i])))
	}
	out += "\nGain over baseline: " + strings.Join(gains, ", ") + "\n"
	out += fmt.Sprintf("Average IPC: icache %.2f, baseline %.2f, promo+pack %.2f\n", avg(iv), avg(bv), avg(pv))
	out += fmt.Sprintf("Overall: %+.0f%% over baseline, %+.0f%% over icache\n",
		stats.PercentChange(avg(bv), avg(pv)), stats.PercentChange(avg(iv), avg(pv)))
	return out, nil
}

// Fig11 is the overall performance of promotion and cost-regulated trace
// packing under the realistic execution core.
func Fig11(r *Runner) (string, error) {
	return perfFigure(r, "IPC (realistic core, conservative memory scheduling)",
		config.ICache(), config.Baseline(), config.Best())
}

// Fig12 accounts for every fetch cycle of the promotion+packing machine.
func Fig12(r *Runner) (string, error) {
	runs, err := r.SweepE(config.Best())
	if err != nil {
		return "", err
	}
	series := make([]string, stats.NumCycleClasses)
	values := make([][]float64, stats.NumCycleClasses)
	for c := stats.CycleClass(0); c < stats.NumCycleClasses; c++ {
		series[c] = c.String()
		values[c] = make([]float64, len(runs))
		for i, run := range runs {
			if run.Cycles > 0 {
				values[c][i] = 100 * float64(run.Cycle[c]) / float64(run.Cycles)
			}
		}
	}
	return textplot.GroupedBars("Fetch cycle accounting (% of cycles), promotion+packing",
		r.ShortBenchmarks(), series, values, 40), nil
}

// baseBest sweeps the baseline and promotion+packing machines.
func baseBest(r *Runner) (base, best []*stats.Run, err error) {
	if base, err = r.SweepE(config.Baseline()); err != nil {
		return nil, nil, err
	}
	if best, err = r.SweepE(config.Best()); err != nil {
		return nil, nil, err
	}
	return base, best, nil
}

// Fig13 reports the percent change in fetch cycles lost to branch
// mispredictions between the baseline and promotion+packing.
func Fig13(r *Runner) (string, error) {
	base, best, err := baseBest(r)
	if err != nil {
		return "", err
	}
	vals := make([]float64, len(base))
	for i := range base {
		vals[i] = stats.PercentChange(float64(base[i].LostToMispredicts()), float64(best[i].LostToMispredicts()))
	}
	return textplot.SignedBars("% change in fetch cycles lost to mispredictions",
		r.ShortBenchmarks(), vals, 40), nil
}

// Fig14 reports the percent change in mispredicted branches (conditional
// and indirect; returns are ideal).
func Fig14(r *Runner) (string, error) {
	base, best, err := baseBest(r)
	if err != nil {
		return "", err
	}
	vals := make([]float64, len(base))
	for i := range base {
		vals[i] = stats.PercentChange(float64(base[i].TotalMispredicts()), float64(best[i].TotalMispredicts()))
	}
	return textplot.SignedBars("% change in mispredicted branches (cond + indirect)",
		r.ShortBenchmarks(), vals, 40), nil
}

// Fig15 reports the percent change in mispredicted-branch resolution time.
func Fig15(r *Runner) (string, error) {
	base, best, err := baseBest(r)
	if err != nil {
		return "", err
	}
	vals := make([]float64, len(base))
	sum := 0.0
	for i := range base {
		vals[i] = stats.PercentChange(base[i].AvgResolution(), best[i].AvgResolution())
		sum += vals[i]
	}
	out := textplot.SignedBars("% change in misprediction resolution time",
		r.ShortBenchmarks(), vals, 40)
	out += fmt.Sprintf("\nAverage change: %+.1f%%\n", sum/float64(len(vals)))
	return out, nil
}

// Fig16 is the overall performance with an ideal, aggressive execution
// engine (perfect memory disambiguation on all three machines).
func Fig16(r *Runner) (string, error) {
	return perfFigure(r, "IPC (perfect memory disambiguation)",
		config.Oracle(config.ICache()), config.Oracle(config.Baseline()), config.Oracle(config.Best()))
}

func avg(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
