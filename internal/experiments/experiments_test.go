package experiments

import (
	"strings"
	"testing"

	"tracecache/internal/config"
	"tracecache/internal/program"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
)

// testRunner uses tiny budgets: these tests verify structure and plumbing,
// not calibration (cmd/tcbench and the root benchmarks run full budgets).
func testRunner() *Runner { return NewRunner(15_000, 25_000) }

func TestRegistryComplete(t *testing.T) {
	es := All()
	if len(es) != 15 {
		t.Fatalf("experiments = %d, want 15", len(es))
	}
	want := []string{"table1", "fig4", "table2", "fig6", "fig7", "table3",
		"fig9", "fig10", "table4", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}
	for i, id := range want {
		if es[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, es[i].ID, id)
		}
		if es[i].Title == "" || es[i].Paper == "" || es[i].Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("fig10"); !ok {
		t.Error("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID found")
	}
	if len(IDs()) != 15 {
		t.Error("IDs wrong")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := testRunner()
	a := runT(t, r, config.Baseline(), "compress")
	b := runT(t, r, config.Baseline(), "compress")
	if a != b {
		t.Error("runs not memoized")
	}
	if len(r.CachedKeys()) != 1 {
		t.Errorf("cached = %v", r.CachedKeys())
	}
	c := runT(t, r, config.ICache(), "compress")
	if c == a || len(r.CachedKeys()) != 2 {
		t.Error("distinct configs must not collide")
	}
}

func TestSweepOrder(t *testing.T) {
	r := testRunner()
	runs, err := r.SweepE(config.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 15 {
		t.Fatalf("sweep = %d", len(runs))
	}
	if runs[0].Benchmark != "compress" || runs[14].Benchmark != "tex" {
		t.Errorf("order: %s ... %s", runs[0].Benchmark, runs[14].Benchmark)
	}
}

func TestTable1Smoke(t *testing.T) {
	out := outT(t, Table1, testRunner())
	for _, want := range []string{"compress", "tex", "95M", "jump.i"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestFig4Fig6Smoke(t *testing.T) {
	r := testRunner()
	for _, f := range []func(*Runner) (string, error){Fig4, Fig6} {
		out := outT(t, f, r)
		for _, want := range []string{"gcc", "Ave fetch size", "PartialMatch", "MaximumBRs"} {
			if !strings.Contains(out, want) {
				t.Errorf("breakdown missing %q:\n%s", want, out)
			}
		}
	}
}

func TestTable2Smoke(t *testing.T) {
	out := outT(t, Table2, testRunner())
	for _, want := range []string{"icache", "baseline", "threshold = 8", "threshold = 256"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	out := outT(t, Table3, testRunner())
	if !strings.Contains(out, "0 or 1 predictions") || !strings.Contains(out, "threshold = 64") {
		t.Errorf("table3:\n%s", out)
	}
}

func TestTable4Smoke(t *testing.T) {
	out := outT(t, Table4, testRunner())
	for _, want := range []string{"tex", "unreg", "cost-reg", "n=2", "n=4", "Ave Eff Fetch Rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresSmoke(t *testing.T) {
	r := testRunner()
	cases := map[string][]string{
		"fig7":  {"threshold=64", "plot"},
		"fig9":  {"baseline", "packing", "Average"},
		"fig10": {"promotion+packing", "over baseline"},
		"fig11": {"icache", "promo+pack", "Overall"},
		"fig12": {"Useful Fetch", "Branch Misses", "Misfetches"},
		"fig13": {"%"},
		"fig14": {"%"},
		"fig15": {"Average change"},
		"fig16": {"Overall"},
	}
	for id, wants := range cases {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s missing %q", id, w)
			}
		}
	}
}

func TestFig10ConfigsAreTheFive(t *testing.T) {
	cfgs := Fig10Configs()
	if len(cfgs) != 5 {
		t.Fatalf("fig10 configs = %d", len(cfgs))
	}
}

func TestAvg(t *testing.T) {
	if avg(nil) != 0 {
		t.Error("empty avg")
	}
	if avg([]float64{1, 2, 3}) != 2 {
		t.Error("avg wrong")
	}
}

func TestExtensionsRegistry(t *testing.T) {
	exts := Extensions()
	if len(exts) != 5 {
		t.Fatalf("extensions = %d", len(exts))
	}
	for _, e := range exts {
		if !strings.HasPrefix(e.ID, "ext-") || e.Run == nil || e.Paper == "" {
			t.Errorf("extension %q malformed", e.ID)
		}
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("extension %s not resolvable by ID", e.ID)
		}
	}
}

func TestExtInactiveSmoke(t *testing.T) {
	out := outT(t, ExtInactive, testRunner())
	if !strings.Contains(out, "inactive issue") || !strings.Contains(out, "Average") {
		t.Errorf("ext-inactive:\n%s", out)
	}
}

func TestExtPathAssocSmoke(t *testing.T) {
	out := outT(t, ExtPathAssoc, testRunner())
	if !strings.Contains(out, "path associativity") || !strings.Contains(out, "baseline") {
		t.Errorf("ext-pathassoc:\n%s", out)
	}
}

func TestExtStaticSmoke(t *testing.T) {
	out := outT(t, ExtStatic, testRunner())
	for _, want := range []string{"dynamic eff", "static eff", "AVG"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-static missing %q:\n%s", want, out)
		}
	}
}

func TestExtTCSizeSmoke(t *testing.T) {
	out := outT(t, ExtTCSize, testRunner())
	for _, want := range []string{"256", "2048", "atomic eff", "costreg eff"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-tcsize missing %q:\n%s", want, out)
		}
	}
}

func TestRunConfiguredMemoizes(t *testing.T) {
	r := testRunner()
	cfg, prep := StaticPromotionConfig()
	calls := 0
	wrapped := func(c *sim.Config, p *program.Program) {
		calls++
		prep(c, p)
	}
	a, err := r.RunConfiguredE(cfg, "compress", wrapped)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunConfiguredE(cfg, "compress", wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || calls != 1 {
		t.Errorf("memoization failed: calls = %d", calls)
	}
}

// runT simulates or fails the test; smoke tests care about outputs, not
// plumbing errors.
func runT(t *testing.T, r *Runner, cfg sim.Config, bench string) *stats.Run {
	t.Helper()
	run, err := r.RunE(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// outT renders an experiment body or fails the test.
func outT(t *testing.T, f func(*Runner) (string, error), r *Runner) string {
	t.Helper()
	out, err := f(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
