package experiments

import (
	"fmt"
	"strings"

	"tracecache/internal/config"
	"tracecache/internal/core"
	"tracecache/internal/program"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/textplot"
	"tracecache/internal/workload"
)

// Extensions returns ablation experiments grounded in the paper's text but
// beyond its figures: static promotion (Section 4 sketches it), path
// associativity (Section 3 defers to [9]), inactive issue (the baseline
// includes it per [5]), and the trace-cache size sensitivity Section 5's
// closing paragraph predicts ("such techniques to regulate redundancy may
// be necessary" below 128KB).
func Extensions() []Experiment {
	return []Experiment{
		{"ext-static", "Static vs dynamic branch promotion",
			"Section 4: static promotion skips warm-up but misses input-sensitive branches", ExtStatic},
		{"ext-pathassoc", "Path associativity",
			"Section 3 baseline stores one path per start; [9] analyses the alternative", ExtPathAssoc},
		{"ext-inactive", "Inactive issue ablation",
			"the baseline includes inactive issue [5]; removing it wastes partial matches", ExtInactive},
		{"ext-tcsize", "Packing regulation vs trace cache size",
			"Section 5: redundancy regulation becomes crucial below 128KB", ExtTCSize},
		{"ext-8wide", "8-wide trace cache with hybrid single-branch prediction",
			"Section 4: promotion enables aggressive single hybrid prediction for an 8-wide engine", Ext8Wide},
	}
}

// StaticPromotionConfig returns the static-promotion machine for one
// program: the promotion configuration with profile-derived annotations in
// place of the bias table.
func StaticPromotionConfig() (sim.Config, func(*sim.Config, *program.Program)) {
	cfg := config.Promotion(config.PromotionThreshold)
	cfg.Name = "static-promo"
	return cfg, func(c *sim.Config, p *program.Program) {
		c.Fill.StaticPromotions = core.ProfileStaticPromotions(p, core.DefaultStaticProfileConfig())
	}
}

// ExtStatic compares dynamic promotion against profile-guided static
// promotion.
func ExtStatic(r *Runner) (string, error) {
	staticCfg, prep := StaticPromotionConfig()
	rows := make([][]string, 0, 16)
	var dSum, sSum, bSum float64
	for _, bench := range workload.Names() {
		base, err := r.RunE(config.Baseline(), bench)
		if err != nil {
			return "", err
		}
		dyn, err := r.RunE(config.Promotion(config.PromotionThreshold), bench)
		if err != nil {
			return "", err
		}
		st, err := r.RunConfiguredE(staticCfg, bench, prep)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			workload.ShortName(bench),
			fmt.Sprintf("%.2f", base.EffFetchRate()),
			fmt.Sprintf("%.2f", dyn.EffFetchRate()),
			fmt.Sprintf("%.2f", st.EffFetchRate()),
			fmt.Sprintf("%d", dyn.PromotedFaults),
			fmt.Sprintf("%d", st.PromotedFaults),
		})
		bSum += base.EffFetchRate()
		dSum += dyn.EffFetchRate()
		sSum += st.EffFetchRate()
	}
	n := float64(len(workload.Names()))
	rows = append(rows, []string{"AVG",
		fmt.Sprintf("%.2f", bSum/n), fmt.Sprintf("%.2f", dSum/n),
		fmt.Sprintf("%.2f", sSum/n), "", ""})
	return textplot.Table(
		[]string{"Benchmark", "baseline eff", "dynamic eff", "static eff", "dyn faults", "static faults"},
		rows), nil
}

// ExtPathAssoc measures path associativity on the baseline and the packed
// trace cache.
func ExtPathAssoc(r *Runner) (string, error) {
	pa := func(c sim.Config) sim.Config {
		c.Name += "+pathassoc"
		c.TC.PathAssoc = true
		return c
	}
	var b strings.Builder
	for _, pair := range []struct {
		label string
		cfg   sim.Config
	}{
		{"baseline", config.Baseline()},
		{"promo+pack-unreg", config.PromotionPacking(core.PackUnregulated, config.PromotionThreshold)},
	} {
		plain, err := r.SweepE(pair.cfg)
		if err != nil {
			return "", err
		}
		assoc, err := r.SweepE(pa(pair.cfg))
		if err != nil {
			return "", err
		}
		var pe, ae float64
		var pm, am uint64
		for i := range plain {
			pe += plain[i].EffFetchRate()
			ae += assoc[i].EffFetchRate()
			pm += plain[i].TCMissCycles
			am += assoc[i].TCMissCycles
		}
		n := float64(len(plain))
		fmt.Fprintf(&b, "%s: eff %.2f -> %.2f with path associativity (%+.1f%%); TC miss cycles %+.1f%%\n",
			pair.label, pe/n, ae/n, stats.PercentChange(pe/n, ae/n),
			stats.PercentChange(float64(pm), float64(am)))
	}
	return b.String(), nil
}

// ExtInactive removes inactive issue from the baseline.
func ExtInactive(r *Runner) (string, error) {
	off := config.Baseline()
	off.Name = "baseline-no-inactive"
	off.DisableInactiveIssue = true
	with, err := r.SweepE(config.Baseline())
	if err != nil {
		return "", err
	}
	without, err := r.SweepE(off)
	if err != nil {
		return "", err
	}
	we, wo := make([]float64, len(with)), make([]float64, len(with))
	for i := range with {
		we[i] = with[i].EffFetchRate()
		wo[i] = without[i].EffFetchRate()
	}
	out := textplot.GroupedBars("Effective fetch rate with and without inactive issue",
		r.ShortBenchmarks(), []string{"inactive issue", "no inactive issue"},
		[][]float64{we, wo}, 40)
	out += fmt.Sprintf("\nAverage: %.2f with, %.2f without (%+.1f%%)\n",
		avg(we), avg(wo), stats.PercentChange(avg(we), avg(wo)))
	return out, nil
}

// ExtTCSizeBenchmarks are the miss-sensitive benchmarks used by the size
// sweep (the Table 4 set).
var ExtTCSizeBenchmarks = Table4Benchmarks

// ExtTCSize sweeps the trace cache size for three packing policies under
// promotion, showing regulation mattering more as the cache shrinks.
func ExtTCSize(r *Runner) (string, error) {
	sizes := []int{256, 512, 1024, 2048}
	policies := []core.PackPolicy{core.PackAtomic, core.PackUnregulated, core.PackCostRegulated}
	var b strings.Builder
	header := []string{"TC entries"}
	for _, p := range policies {
		header = append(header, p.String()+" eff", p.String()+" missCyc")
	}
	rows := make([][]string, 0, len(sizes))
	for _, size := range sizes {
		row := []string{fmt.Sprintf("%d (%dKB)", size, size*16*4/1024)}
		for _, pol := range policies {
			cfg := config.PromotionPacking(pol, config.PromotionThreshold)
			cfg.Name = fmt.Sprintf("ext-tc%d-%s", size, pol)
			cfg.TC.Entries = size
			var eff float64
			var miss uint64
			for _, bench := range ExtTCSizeBenchmarks {
				run, err := r.RunE(cfg, bench)
				if err != nil {
					return "", err
				}
				eff += run.EffFetchRate()
				miss += run.TCMissCycles
			}
			n := float64(len(ExtTCSizeBenchmarks))
			row = append(row, fmt.Sprintf("%.2f", eff/n), fmt.Sprintf("%d", miss))
		}
		rows = append(rows, row)
	}
	b.WriteString(textplot.Table(header, rows))
	b.WriteString("\n(effective fetch rate and trace-cache miss cycles averaged/summed over ")
	b.WriteString(strings.Join(ExtTCSizeBenchmarks, ", "))
	b.WriteString(")\n")
	return b.String(), nil
}

// Ext8Wide evaluates Section 4's near-term design point: an 8-wide trace
// cache where branch promotion collapses prediction-bandwidth demand to
// roughly one branch per fetch, letting an aggressive hybrid single-branch
// predictor sequence the trace cache.
func Ext8Wide(r *Runner) (string, error) {
	cfgs := []sim.Config{
		config.EightWide(config.Baseline()),
		config.EightWide(config.Promotion(config.PromotionThreshold)),
		config.EightWidePromotionHybrid(),
	}
	labels := []string{"8-wide baseline (tree MBP)", "8-wide promotion (tree MBP)", "8-wide promotion (hybrid 1-br)"}
	rows := make([][]string, 0, len(cfgs))
	for i, cfg := range cfgs {
		runs, err := r.SweepE(cfg)
		if err != nil {
			return "", err
		}
		var eff, mis, ipc float64
		for _, run := range runs {
			eff += run.EffFetchRate()
			mis += run.CondMispredictRate()
			ipc += run.IPC()
		}
		n := float64(len(runs))
		rows = append(rows, []string{
			labels[i],
			fmt.Sprintf("%.2f", eff/n),
			fmt.Sprintf("%.2f%%", 100*mis/n),
			fmt.Sprintf("%.2f", ipc/n),
		})
	}
	return textplot.Table([]string{"Configuration", "Eff fetch", "Cond mispredict", "IPC"}, rows), nil
}
