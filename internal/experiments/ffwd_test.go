package experiments

import (
	"testing"

	"tracecache/internal/config"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/workload"
)

// TestRunnerFastForwardProvenance: runs under a fast-forwarding runner are
// restored from the shared checkpoint and say so in their metadata.
func TestRunnerFastForwardProvenance(t *testing.T) {
	r := NewRunner(5_000, 20_000)
	r.FastForward = 50_000
	r.Workers = 1
	for _, cfg := range []sim.Config{config.Baseline(), config.Best()} {
		run, err := r.RunE(cfg, "gcc")
		if err != nil {
			t.Fatal(err)
		}
		if run.Meta == nil || run.Meta.FastForwardInsts != 50_000 || !run.Meta.CheckpointShared {
			t.Fatalf("%s: meta = %+v, want checkpoint-shared ffwd 50000", cfg.Name, run.Meta)
		}
	}
}

// TestRunnerFastForwardMatchesDirectSimulation: the runner's
// checkpoint-restored result carries the same statistics as assembling the
// same run by hand, so sharing the prefix does not change any simulated
// number.
func TestRunnerFastForwardMatchesDirectSimulation(t *testing.T) {
	const ffwd, warm, meas = 50_000, 5_000, 20_000
	r := NewRunner(warm, meas)
	r.FastForward = ffwd
	r.Workers = 1
	got, err := r.RunE(config.Baseline(), "gcc")
	if err != nil {
		t.Fatal(err)
	}

	prog, err := workload.SharedProgram("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Baseline()
	cfg.FastForwardInsts, cfg.WarmupInsts, cfg.MaxInsts = ffwd, warm, meas
	s, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := workload.SharedCheckpoint("gcc", ffwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	want := s.Run()

	gc, wc := *got, *want
	gc.Meta, wc.Meta = nil, nil // wall time and hostname legitimately differ
	if gc.Retired != wc.Retired || gc.Cycles != wc.Cycles ||
		gc.CondBranches != wc.CondBranches || gc.CondMispredicts != wc.CondMispredicts {
		t.Fatalf("runner run differs from direct simulation:\n got %+v\nwant %+v", gc, wc)
	}
}

// TestRunnerFastForwardParallelDeterminism: checkpoint sharing across a
// parallel sweep yields bit-identical statistics to sequential execution.
func TestRunnerFastForwardParallelDeterminism(t *testing.T) {
	sweep := func(workers int) []*stats.Run {
		r := NewRunner(5_000, 15_000)
		r.FastForward = 30_000
		r.Workers = workers
		runs, err := r.SweepE(config.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		return runs
	}
	seq := sweep(1)
	par := sweep(4)
	if len(seq) != len(par) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := *seq[i], *par[i]
		a.Meta, b.Meta = nil, nil
		if a.Retired != b.Retired || a.Cycles != b.Cycles ||
			a.CondMispredicts != b.CondMispredicts || a.TCMissCycles != b.TCMissCycles {
			t.Errorf("%s: parallel sweep diverged from sequential", seq[i].Benchmark)
		}
	}
}
