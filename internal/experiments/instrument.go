package experiments

import (
	"time"

	"tracecache/internal/metrics"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
)

// RunPhase identifies where in its lifecycle a run request is.
type RunPhase uint8

// Run lifecycle phases.
const (
	// RunQueued: the key was registered in the memo; the simulation is
	// waiting for a worker slot.
	RunQueued RunPhase = iota
	// RunStarted: a worker slot was acquired; the simulation is executing.
	RunStarted
	// RunDone: the request resolved — simulated to completion, failed, or
	// shared from the memo.
	RunDone
)

var phaseNames = [...]string{"queued", "started", "done"}

// String names the phase.
func (p RunPhase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase(?)"
}

// RunEvent is one run-lifecycle notification delivered to Runner.OnRun.
// Every RunE/RunConfiguredE resolution produces exactly one RunDone event:
// the executing request emits it with the simulation's provenance
// (stats.ProvCold or stats.ProvCheckpointFork), and every memo-sharing
// request emits one with Memoized set and stats.ProvMemoized — so journal
// records and progress trackers built on these events tie out against the
// runner's counters.
type RunEvent struct {
	Phase                  RunPhase
	Key, Config, Benchmark string

	// RunDone payload. Run is nil when Err is set.
	Run *stats.Run
	Err error
	// Memoized marks a result shared from the memo: this request
	// simulated nothing, and QueueWait and Wall are zero.
	Memoized   bool
	Provenance string
	// QueueWait is the time from memo registration to worker-slot
	// acquisition (also carried by RunStarted); Wall is the time the slot
	// was held, simulation included.
	QueueWait, Wall time.Duration
}

// MultiListener fans one RunEvent to every non-nil listener, in order.
// It returns nil when no listeners remain, so Runner.OnRun stays a plain
// nil check on the disabled path.
func MultiListener(ls ...func(RunEvent)) func(RunEvent) {
	live := make([]func(RunEvent), 0, len(ls))
	for _, l := range ls {
		if l != nil {
			live = append(live, l)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev RunEvent) {
		for _, l := range live {
			l(ev)
		}
	}
}

// RunnerMetrics is the fleet-level counter set a Runner feeds when its
// Metrics field is non-nil. All members are registry-backed atomics, so
// one RunnerMetrics serves any number of concurrent sweeps; the identities
//
//	MemoMisses == RunsCompleted + RunsFailed (every miss simulates)
//	RunsCompleted == CheckpointForks + ColdStarts + Replays + SampledRuns + StoreServed
//
// hold whenever the runner is quiescent.
type RunnerMetrics struct {
	// RunsStarted counts simulations that acquired a worker slot;
	// RunsCompleted and RunsFailed partition their outcomes.
	RunsStarted, RunsCompleted, RunsFailed *metrics.Counter
	// MemoHits counts requests resolved by singleflight sharing;
	// MemoMisses counts requests that had to simulate.
	MemoHits, MemoMisses *metrics.Counter
	// CheckpointForks, ColdStarts, Replays, SampledRuns and StoreServed
	// partition completed runs by provenance: restored from a shared warm
	// checkpoint, simulated from scratch, resolved by the front-end replay
	// fast path, estimated by the statistical-sampling path (which counts
	// as sampled regardless of whether its functional prefix was forked),
	// or served verbatim from the persistent result store (zero
	// simulation).
	CheckpointForks, ColdStarts, Replays, SampledRuns, StoreServed *metrics.Counter
	// WorkersBusy is the current worker-pool occupancy; WorkersLimit is
	// the pool size (set when the pool is created).
	WorkersBusy, WorkersLimit *metrics.Gauge
	// QueueWait and RunWall are per-run distributions in seconds: time
	// waiting for a slot, and time holding it.
	QueueWait, RunWall *metrics.Histogram
	// Sim carries the shared simulator counters (committed instructions,
	// cycles); the runner attaches it to every simulator it builds.
	Sim *sim.Metrics
}

// InstrumentRunner registers the runner counter set in the registry.
// Assign the result to Runner.Metrics before the first Run call.
func InstrumentRunner(r *metrics.Registry) *RunnerMetrics {
	return &RunnerMetrics{
		RunsStarted: r.Counter("tracecache_runner_runs_started_total",
			"Simulations that acquired a worker slot."),
		RunsCompleted: r.Counter("tracecache_runner_runs_completed_total",
			"Simulations that finished successfully."),
		RunsFailed: r.Counter("tracecache_runner_runs_failed_total",
			"Simulations that finished with an error."),
		MemoHits: r.Counter("tracecache_runner_memo_hits_total",
			"Run requests resolved by singleflight memo sharing."),
		MemoMisses: r.Counter("tracecache_runner_memo_misses_total",
			"Run requests that had to simulate."),
		CheckpointForks: r.Counter("tracecache_runner_checkpoint_forks_total",
			"Completed simulations whose prefix was restored from a shared warm checkpoint."),
		ColdStarts: r.Counter("tracecache_runner_cold_starts_total",
			"Completed simulations executed from scratch."),
		Replays: r.Counter("tracecache_runner_replays_total",
			"Completed runs resolved by the front-end replay fast path."),
		SampledRuns: r.Counter("tracecache_runner_sampled_runs_total",
			"Completed runs estimated by the statistical-sampling path."),
		StoreServed: r.Counter("tracecache_runner_store_served_total",
			"Completed runs served verbatim from the persistent result store."),
		WorkersBusy: r.Gauge("tracecache_runner_workers_busy",
			"Worker slots currently held by executing simulations."),
		WorkersLimit: r.Gauge("tracecache_runner_workers_limit",
			"Size of the worker pool."),
		QueueWait: r.Histogram("tracecache_runner_queue_wait_seconds",
			"Per-run wait for a worker slot.", metrics.DefSecondsBuckets),
		RunWall: r.Histogram("tracecache_runner_run_wall_seconds",
			"Per-run wall time holding a worker slot.", metrics.DefSecondsBuckets),
		Sim: sim.NewMetrics(r),
	}
}
