package experiments

import (
	"strings"
	"sync"
	"testing"

	"tracecache/internal/config"
	"tracecache/internal/metrics"
	"tracecache/internal/obs"
	"tracecache/internal/stats"
)

// eventLog collects RunEvents under a mutex (OnRun is called from many
// goroutines).
type eventLog struct {
	mu  sync.Mutex
	evs []RunEvent
}

func (l *eventLog) listen(ev RunEvent) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) byPhase(p RunPhase) []RunEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []RunEvent
	for _, ev := range l.evs {
		if ev.Phase == p {
			out = append(out, ev)
		}
	}
	return out
}

// TestInstrumentedSweep checks the counter identities after a concurrent
// sweep with duplicate requests: every unique key simulates exactly once
// (a memo miss and a cold start), every duplicate is a memo hit, and the
// per-run histograms saw exactly one observation per started simulation.
func TestInstrumentedSweep(t *testing.T) {
	r := parallelBudgetRunner(4)
	reg := metrics.NewRegistry()
	m := InstrumentRunner(reg)
	r.Metrics = m
	log := &eventLog{}
	r.OnRun = log.listen

	cfg := config.Baseline()
	benches := r.Benchmarks()
	const dup = 3
	var wg sync.WaitGroup
	for range dup {
		for _, b := range benches {
			wg.Add(1)
			go func(b string) {
				defer wg.Done()
				if _, err := r.RunE(cfg, b); err != nil {
					t.Errorf("RunE(%s): %v", b, err)
				}
			}(b)
		}
	}
	wg.Wait()

	unique := uint64(len(benches))
	total := uint64(dup) * unique
	if got := m.MemoMisses.Value(); got != unique {
		t.Errorf("memo misses = %d, want %d", got, unique)
	}
	if got := m.MemoHits.Value(); got != total-unique {
		t.Errorf("memo hits = %d, want %d", got, total-unique)
	}
	if got := m.RunsStarted.Value(); got != unique {
		t.Errorf("runs started = %d, want %d", got, unique)
	}
	if got := m.RunsCompleted.Value(); got != unique {
		t.Errorf("runs completed = %d, want %d", got, unique)
	}
	if got := m.RunsFailed.Value(); got != 0 {
		t.Errorf("runs failed = %d, want 0", got)
	}
	if got := m.ColdStarts.Value(); got != unique {
		t.Errorf("cold starts = %d, want %d (no fast-forward configured)", got, unique)
	}
	if got := m.CheckpointForks.Value(); got != 0 {
		t.Errorf("checkpoint forks = %d, want 0", got)
	}
	if got := m.WorkersBusy.Value(); got != 0 {
		t.Errorf("workers busy = %d after quiescence, want 0", got)
	}
	if got := m.WorkersLimit.Value(); got != 4 {
		t.Errorf("workers limit = %d, want 4", got)
	}
	if got := m.QueueWait.Count(); got != unique {
		t.Errorf("queue-wait observations = %d, want %d", got, unique)
	}
	if got := m.RunWall.Count(); got != unique {
		t.Errorf("run-wall observations = %d, want %d", got, unique)
	}
	if got := m.Sim.Insts.Value(); got == 0 {
		t.Error("sim insts counter did not move")
	}

	// Event stream: one queued+started per unique key, one done per
	// request; memoized done events carry the identical *stats.Run.
	if got := len(log.byPhase(RunQueued)); got != int(unique) {
		t.Errorf("queued events = %d, want %d", got, unique)
	}
	if got := len(log.byPhase(RunStarted)); got != int(unique) {
		t.Errorf("started events = %d, want %d", got, unique)
	}
	dones := log.byPhase(RunDone)
	if len(dones) != int(total) {
		t.Fatalf("done events = %d, want %d", len(dones), total)
	}
	byKey := map[string]*stats.Run{}
	var memoized int
	for _, ev := range dones {
		if ev.Err != nil {
			t.Fatalf("done event with error: %v", ev.Err)
		}
		if ev.Memoized {
			memoized++
			if ev.Provenance != stats.ProvMemoized {
				t.Errorf("memoized done provenance = %q, want %q", ev.Provenance, stats.ProvMemoized)
			}
		} else if ev.Provenance != stats.ProvCold {
			t.Errorf("executed done provenance = %q, want %q", ev.Provenance, stats.ProvCold)
		}
		if prev, ok := byKey[ev.Key]; ok {
			if prev != ev.Run {
				t.Errorf("%s: done events disagree on the run pointer", ev.Key)
			}
		} else {
			byKey[ev.Key] = ev.Run
		}
	}
	if memoized != int(total-unique) {
		t.Errorf("memoized done events = %d, want %d", memoized, total-unique)
	}
}

// TestCheckpointForkProvenance checks fast-forwarded runs are counted and
// reported as checkpoint forks, matching the simulator's Meta.Provenance.
func TestCheckpointForkProvenance(t *testing.T) {
	r := NewRunner(1_000, 3_000)
	r.Workers = 2
	r.FastForward = 2_000
	m := InstrumentRunner(metrics.NewRegistry())
	r.Metrics = m
	log := &eventLog{}
	r.OnRun = log.listen

	run, err := r.RunE(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	if run.Meta == nil || run.Meta.Provenance != stats.ProvCheckpointFork {
		t.Errorf("Meta.Provenance = %v, want %q", run.Meta, stats.ProvCheckpointFork)
	}
	if got := m.CheckpointForks.Value(); got != 1 {
		t.Errorf("checkpoint forks = %d, want 1", got)
	}
	if got := m.ColdStarts.Value(); got != 0 {
		t.Errorf("cold starts = %d, want 0", got)
	}
	dones := log.byPhase(RunDone)
	if len(dones) != 1 || dones[0].Provenance != stats.ProvCheckpointFork {
		t.Errorf("done events = %+v, want one with checkpoint-fork provenance", dones)
	}
	if dones[0].Wall <= 0 {
		t.Errorf("done event wall = %v, want > 0", dones[0].Wall)
	}
}

// TestFailedRunMetrics checks a failing request increments RunsFailed and
// emits a done event carrying the error.
func TestFailedRunMetrics(t *testing.T) {
	r := parallelBudgetRunner(2)
	m := InstrumentRunner(metrics.NewRegistry())
	r.Metrics = m
	log := &eventLog{}
	r.OnRun = log.listen

	if _, err := r.RunE(config.Baseline(), "no-such-benchmark"); err == nil {
		t.Fatal("expected an error for an unknown benchmark")
	}
	if got := m.RunsFailed.Value(); got != 1 {
		t.Errorf("runs failed = %d, want 1", got)
	}
	if got := m.RunsCompleted.Value(); got != 0 {
		t.Errorf("runs completed = %d, want 0", got)
	}
	dones := log.byPhase(RunDone)
	if len(dones) != 1 || dones[0].Err == nil || dones[0].Run != nil {
		t.Errorf("done events = %+v, want one carrying the error and a nil run", dones)
	}
}

// TestRunnerObserverBridge checks the per-simulation bus factory feeds a
// shared metrics.BusSink across a concurrent sweep.
func TestRunnerObserverBridge(t *testing.T) {
	r := parallelBudgetRunner(4)
	reg := metrics.NewRegistry()
	sink := metrics.NewBusSink(reg)
	r.NewObserver = func() *obs.Bus {
		b := obs.NewBus(0)
		b.Attach(sink)
		return b
	}
	if _, err := r.SweepE(config.Baseline()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `tracecache_obs_events_total{kind="`) {
		t.Errorf("no obs events reached the bridge; exposition:\n%s", sb.String())
	}
}

// TestMultiListener checks fan-out order and nil-listener elision.
func TestMultiListener(t *testing.T) {
	if MultiListener(nil, nil) != nil {
		t.Error("MultiListener of nils should be nil")
	}
	var order []string
	a := func(RunEvent) { order = append(order, "a") }
	b := func(RunEvent) { order = append(order, "b") }
	l := MultiListener(a, nil, b)
	l(RunEvent{})
	if strings.Join(order, "") != "ab" {
		t.Errorf("fan-out order = %v, want [a b]", order)
	}
}

// TestInstrumentationPreservesOutput pins that attaching the full
// instrumentation stack changes no experiment output byte.
func TestInstrumentationPreservesOutput(t *testing.T) {
	render := func(instrument bool) string {
		r := parallelBudgetRunner(4)
		if instrument {
			reg := metrics.NewRegistry()
			r.Metrics = InstrumentRunner(reg)
			sink := metrics.NewBusSink(reg)
			r.NewObserver = func() *obs.Bus {
				b := obs.NewBus(0)
				b.Attach(sink)
				return b
			}
			r.OnRun = MultiListener(func(RunEvent) {})
		}
		var sb strings.Builder
		err := RunAll(r, parallelTestExperiments(t), func(e Experiment, out string) {
			sb.WriteString(out)
		})
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if plain, metered := render(false), render(true); plain != metered {
		t.Error("instrumentation changed experiment output")
	}
}
