package experiments

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"tracecache/internal/config"
	"tracecache/internal/stats"
)

// parallelBudgetRunner uses very small budgets: these tests exercise the
// scheduler, not the statistics.
func parallelBudgetRunner(workers int) *Runner {
	r := NewRunner(1_000, 3_000)
	r.Workers = workers
	return r
}

// parallelTestExperiments picks a cross-section of experiments whose
// configurations overlap heavily (shared baseline sweeps), so the
// parallel run exercises singleflight dedup, not just fan-out.
func parallelTestExperiments(t *testing.T) []Experiment {
	t.Helper()
	out := make([]Experiment, 0, 3)
	for _, id := range []string{"fig4", "table2", "fig9"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		out = append(out, e)
	}
	return out
}

func renderAll(t *testing.T, workers int) string {
	t.Helper()
	var sb strings.Builder
	err := RunAll(parallelBudgetRunner(workers), parallelTestExperiments(t),
		func(e Experiment, out string) {
			fmt.Fprintf(&sb, "== %s ==\n%s\n", e.ID, out)
		})
	if err != nil {
		t.Fatalf("RunAll(j=%d): %v", workers, err)
	}
	return sb.String()
}

// TestParallelDeterminism asserts the acceptance criterion that a parallel
// run renders byte-identical experiment output to a sequential one.
func TestParallelDeterminism(t *testing.T) {
	seq := renderAll(t, 1)
	par := renderAll(t, 8)
	if seq != par {
		t.Fatalf("parallel output differs from sequential:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", seq, par)
	}
}

// countingLog counts "running" progress lines, i.e. actual simulations.
type countingLog struct {
	mu sync.Mutex
	n  int
}

func (c *countingLog) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.n += strings.Count(string(p), "running ")
	c.mu.Unlock()
	return len(p), nil
}

// TestSingleflightStress hammers one Runner from many goroutines with
// overlapping configuration×benchmark keys (run under -race in CI) and
// checks every key was simulated exactly once and all callers share the
// memoized result.
func TestSingleflightStress(t *testing.T) {
	r := parallelBudgetRunner(8)
	log := &countingLog{}
	r.Log = log

	cfgs := []string{"baseline", "icache"}
	benches := []string{"compress", "go", "li"}
	const goroutines = 24

	got := make([][]*stats.Run, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			runs := make([]*stats.Run, 0, len(cfgs)*len(benches))
			for _, cn := range cfgs {
				cfg, _ := config.ByName(cn)
				for _, b := range benches {
					run, err := r.RunE(cfg, b)
					if err != nil {
						t.Errorf("RunE(%s/%s): %v", cn, b, err)
						return
					}
					runs = append(runs, run)
				}
			}
			got[g] = runs
		}(g)
	}
	wg.Wait()

	if want := len(cfgs) * len(benches); log.n != want {
		t.Errorf("simulations = %d, want %d (singleflight dedup failed)", log.n, want)
	}
	if keys := r.CachedKeys(); len(keys) != len(cfgs)*len(benches) {
		t.Errorf("cached keys = %v", keys)
	}
	for g := 1; g < goroutines; g++ {
		if got[g] == nil {
			continue // that goroutine already reported an error
		}
		for i := range got[g] {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d result %d not shared with goroutine 0", g, i)
			}
		}
	}
}

// TestRunEError checks an invalid configuration surfaces as an error (not a
// process-killing panic), is memoized, and leaves the runner usable.
func TestRunEError(t *testing.T) {
	r := parallelBudgetRunner(4)
	bad := config.Baseline()
	bad.Name = "bad-engine"
	bad.Engine.FUs = 0
	if _, err := r.RunE(bad, "compress"); err == nil {
		t.Fatal("RunE accepted an invalid config")
	}
	// The failure is memoized under its key and returned again.
	if _, err := r.RunE(bad, "compress"); err == nil {
		t.Fatal("memoized failure lost")
	}
	if _, err := r.RunE(bad, "no-such-benchmark"); err == nil {
		t.Fatal("RunE accepted an unknown benchmark")
	}
	// A good run on the same runner still works.
	if _, err := r.RunE(config.Baseline(), "compress"); err != nil {
		t.Fatalf("runner unusable after error: %v", err)
	}
}

// TestSweepEPropagatesError checks a failing config fails the sweep cleanly
// in both the sequential and parallel paths.
func TestSweepEPropagatesError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		r := parallelBudgetRunner(workers)
		bad := config.Baseline()
		bad.Name = "bad-width"
		bad.IssueWidth = -1
		runs, err := r.SweepE(bad)
		if err == nil || runs != nil {
			t.Fatalf("j=%d: SweepE(bad) = %v, %v; want nil, error", workers, runs, err)
		}
	}
}

// TestRunAllStopsAtFailure checks RunAll emits experiments preceding the
// first failure, in order, and reports the failure as an error.
func TestRunAllStopsAtFailure(t *testing.T) {
	good, ok := ByID("fig9")
	if !ok {
		t.Fatal("missing fig9")
	}
	boom := Experiment{ID: "boom", Title: "always fails", Paper: "none",
		Run: func(r *Runner) (string, error) { panic("kaboom") }}
	for _, workers := range []int{1, 8} {
		r := parallelBudgetRunner(workers)
		var emitted []string
		err := RunAll(r, []Experiment{good, boom, good},
			func(e Experiment, out string) { emitted = append(emitted, e.ID) })
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("j=%d: err = %v, want kaboom", workers, err)
		}
		if len(emitted) != 1 || emitted[0] != "fig9" {
			t.Fatalf("j=%d: emitted = %v, want [fig9]", workers, emitted)
		}
	}
}

// TestParallelSweepMatchesSequential compares the run pointers and values
// of a parallel sweep against a fresh sequential runner: same order, and
// bit-identical simulated statistics.
func TestParallelSweepMatchesSequential(t *testing.T) {
	cfg := config.Baseline()
	seq, err := parallelBudgetRunner(1).SweepE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := parallelBudgetRunner(8).SweepE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := *seq[i], *par[i]
		// Run provenance (wall time, timestamps) legitimately differs;
		// every simulated statistic must not.
		a.Meta, b.Meta = nil, nil
		if a != b {
			t.Errorf("run %d (%s) differs between sequential and parallel", i, seq[i].Benchmark)
		}
	}
}
