package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"tracecache/internal/atomicfile"
	"tracecache/internal/program"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/trace"
)

// traceEntry is one per-benchmark recording slot, singleflight like
// runEntry: the first request for a benchmark resolves it (loading a
// persisted stream or recording during its own detailed run); done closes
// once data/coreHash/err are final, and they are immutable afterwards.
type traceEntry struct {
	done chan struct{}
	// hdr/recs are the decoded retired stream (recs nil when resolution
	// failed). The stream is decoded exactly once per benchmark; every
	// replay-eligible sweep point indexes the shared slice directly.
	hdr  trace.Header
	recs []trace.Rec
	// coreHash is the recording configuration's CoreHash; a request may
	// replay only when its own CoreHash matches (sim.FrontEndEquivalent),
	// so points that vary core-side axes fall back to detailed simulation.
	coreHash string
	err      error
}

// traceEntryFor returns the benchmark's recording slot, creating it if
// this request is the first: the second result is true for the creator,
// which must resolve the entry (and close done on every path).
func (r *Runner) traceEntryFor(bench string) (*traceEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traces == nil {
		r.traces = make(map[string]*traceEntry)
	}
	if e, ok := r.traces[bench]; ok {
		return e, false
	}
	e := &traceEntry{done: make(chan struct{})}
	r.traces[bench] = e
	return e, true
}

// traceWant is the stream content a run under cfg requires; its FileName
// is where TraceDir would persist it (content-addressed, so the name is
// a pure function of the program identity and the total budget).
func traceWant(cfg sim.Config, prog *program.Program) trace.Header {
	return trace.Header{
		ProgHash:         prog.Hash(),
		CodeLen:          len(prog.Code),
		Entry:            prog.Entry,
		FastForwardInsts: cfg.FastForwardInsts,
		WarmupInsts:      cfg.WarmupInsts,
		MeasureInsts:     cfg.MaxInsts,
		Name:             prog.Name,
	}
}

// loadTrace attempts to resolve a persisted recording from TraceDir,
// decoding it fully (which also verifies the record count and CRC). Any
// failure — no directory, missing file, undecodable or mismatched stream
// — reports false, and the caller records afresh (overwriting the stale
// file under the same content-addressed name).
func (r *Runner) loadTrace(cfg sim.Config, prog *program.Program) (trace.Header, []trace.Rec, bool) {
	if r.TraceDir == "" {
		return trace.Header{}, nil, false
	}
	want := traceWant(cfg, prog)
	data, err := os.ReadFile(filepath.Join(r.TraceDir, want.FileName()))
	if err != nil {
		return trace.Header{}, nil, false
	}
	h, recs, err := trace.ReadAll(data)
	if err != nil {
		return trace.Header{}, nil, false
	}
	if err := h.Matches(want); err != nil {
		return trace.Header{}, nil, false
	}
	return h, recs, true
}

// saveTrace persists a completed recording under its content-addressed
// name, atomically (temp + rename with an EXDEV copy fallback, so a
// -tracedir on a mounted volume works; see internal/atomicfile).
// Persistence is best-effort: a failure is logged, never fails the
// simulation that produced the recording.
func (r *Runner) saveTrace(key string, data []byte, h trace.Header) {
	if r.TraceDir == "" {
		return
	}
	path := filepath.Join(r.TraceDir, h.FileName())
	if err := atomicfile.WriteFile(path, data, 0o644); err != nil {
		r.logf("warning: %s: persist trace: %v\n", key, err)
	}
}

// replayTrace replays a decoded stream under cfg and returns the
// front-end statistics (stats.ProvReplay provenance, cycle-domain
// statistics zero; see DESIGN.md §9). Replay never mutates recs, so
// concurrent sweep points share one decoded slice.
func replayTrace(cfg sim.Config, prog *program.Program, h trace.Header, recs []trace.Rec) (*stats.Run, error) {
	rp, err := sim.NewReplayer(cfg, prog)
	if err != nil {
		return nil, err
	}
	return rp.ReplayRecords(h, recs)
}

// errRecordingIncomplete marks a trace entry whose recording run exited
// without finishing the stream (failed simulation, panic); waiters fall
// back to detailed simulation.
func errRecordingIncomplete(key string) error {
	return fmt.Errorf("experiments: %s: recording run did not complete", key)
}
