package experiments

import (
	"math"
	"testing"

	"tracecache/internal/config"
	"tracecache/internal/metrics"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
)

// replayRunner builds a sequential runner with the replay fast path on:
// Workers == 1 makes which point records deterministic (the first).
func replayRunner() *Runner {
	r := NewRunner(5_000, 15_000)
	r.Workers = 1
	r.Replay = true
	return r
}

// frontEndSweep is a small sweep varying only front-end axes.
func frontEndSweep() []sim.Config {
	return []sim.Config{config.Baseline(), config.Promotion(64), config.Packing(), config.Best()}
}

func provenanceOf(t *testing.T, run *stats.Run) string {
	t.Helper()
	if run.Meta == nil {
		t.Fatal("run has no Meta")
	}
	return run.Meta.Provenance
}

// TestRunnerReplaySweep drives a front-end sweep through a replaying
// runner: the first point records during its detailed run (cold even
// under FastForward — a recording cannot restore a checkpoint), every
// later point replays, and replayed statistics stay within the fidelity
// envelope of a detailed twin.
func TestRunnerReplaySweep(t *testing.T) {
	r := replayRunner()
	r.FastForward = 2_000
	reg := metrics.NewRegistry()
	r.Metrics = InstrumentRunner(reg)

	const bench = "gcc"
	runs := make(map[string]*stats.Run)
	for _, cfg := range frontEndSweep() {
		run, err := r.RunE(cfg, bench)
		if err != nil {
			t.Fatal(err)
		}
		runs[cfg.Name] = run
	}
	if p := provenanceOf(t, runs["baseline"]); p != stats.ProvCold {
		t.Errorf("recording point provenance = %q, want %q", p, stats.ProvCold)
	}
	for _, name := range []string{"promo-t64", "packing", "promo-pack-costreg"} {
		run := runs[name]
		if p := provenanceOf(t, run); p != stats.ProvReplay {
			t.Errorf("%s provenance = %q, want %q", name, p, stats.ProvReplay)
		}
		if run.Cycles != 0 || run.IPC() != 0 {
			t.Errorf("%s: cycle-domain stats defined under replay: cycles=%d", name, run.Cycles)
		}
		if run.Retired == 0 || run.Fetches == 0 {
			t.Errorf("%s: empty replay stats: %+v", name, run)
		}
	}
	if got := r.Metrics.Replays.Value(); got != 3 {
		t.Errorf("Replays counter = %d, want 3", got)
	}

	// Fidelity: a detailed runner with the same budgets must agree on the
	// effective fetch rate within the documented envelope.
	det := NewRunner(r.Warmup, r.Budget)
	det.Workers = 1
	det.FastForward = r.FastForward
	for _, cfg := range frontEndSweep()[1:] {
		dRun, err := det.RunE(cfg, bench)
		if err != nil {
			t.Fatal(err)
		}
		dr, rr := dRun.EffFetchRate(), runs[cfg.Name].EffFetchRate()
		if delta := math.Abs(rr-dr) / dr * 100; delta > 8 {
			t.Errorf("%s: eff rate detailed=%.4f replayed=%.4f (%.2f%% apart)", cfg.Name, dr, rr, delta)
		}
	}
}

// TestRunnerReplayTraceDir persists the recording and requires a second
// runner (a fresh process in miniature) to replay every point, including
// the one that recorded.
func TestRunnerReplayTraceDir(t *testing.T) {
	dir := t.TempDir()
	a := replayRunner()
	a.TraceDir = dir
	if _, err := a.RunE(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}

	b := replayRunner()
	b.TraceDir = dir
	run, err := b.RunE(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	if p := provenanceOf(t, run); p != stats.ProvReplay {
		t.Errorf("persisted-trace provenance = %q, want %q", p, stats.ProvReplay)
	}

	// A runner with different budgets must not accept the persisted
	// stream (content-addressed name depends on the total budget).
	c := NewRunner(5_000, 50_000)
	c.Workers = 1
	c.Replay = true
	c.TraceDir = dir
	run, err = c.RunE(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	if p := provenanceOf(t, run); p != stats.ProvCold {
		t.Errorf("budget-mismatch provenance = %q, want %q", p, stats.ProvCold)
	}
}

// TestRunnerReplayCoreAxisDetailed pins eligibility: a point that varies
// a core-side axis (the perfect-disambiguation oracle) must simulate
// detailed even though a front-end-equivalent recording exists.
func TestRunnerReplayCoreAxisDetailed(t *testing.T) {
	r := replayRunner()
	if _, err := r.RunE(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}
	run, err := r.RunE(config.Oracle(config.Best()), "compress")
	if err != nil {
		t.Fatal(err)
	}
	if p := provenanceOf(t, run); p != stats.ProvCold {
		t.Errorf("oracle provenance = %q, want %q", p, stats.ProvCold)
	}
	if run.Cycles == 0 {
		t.Error("oracle run has no cycle-domain stats; replay was not bypassed")
	}
}

// TestRunnerReplayCheckBypass pins the Check interaction: checked runs
// are always detailed (the self-verification layer needs the core), so
// Replay+Check must produce fully detailed, checked results.
func TestRunnerReplayCheckBypass(t *testing.T) {
	r := replayRunner()
	r.Check = true
	for _, cfg := range []sim.Config{config.Baseline(), config.Packing()} {
		run, err := r.RunE(cfg, "compress")
		if err != nil {
			t.Fatal(err)
		}
		if p := provenanceOf(t, run); p != stats.ProvCold {
			t.Errorf("%s checked provenance = %q, want %q", cfg.Name, p, stats.ProvCold)
		}
		if run.Cycles == 0 {
			t.Errorf("%s: checked run missing cycle stats", cfg.Name)
		}
	}
}
