// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 1-4, Figures 4-16) on the synthetic benchmark suite.
// Each experiment formats the same rows and series the paper reports;
// absolute values differ (different workloads and substrate), but the
// comparative shapes are the reproduction target.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"tracecache/internal/program"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/workload"
)

// Runner executes simulations with memoization, so configurations shared
// between experiments (baseline, promotion, packing) are simulated once.
type Runner struct {
	// Warmup instructions retire before measurement; Budget instructions
	// are then measured.
	Warmup uint64
	Budget uint64
	// Log, when non-nil, receives progress lines.
	Log io.Writer

	progs map[string]*program.Program
	runs  map[string]*stats.Run
}

// NewRunner builds a runner with the given instruction budgets.
func NewRunner(warmup, budget uint64) *Runner {
	return &Runner{
		Warmup: warmup,
		Budget: budget,
		progs:  make(map[string]*program.Program),
		runs:   make(map[string]*stats.Run),
	}
}

// Benchmarks returns the benchmark names in paper order.
func (r *Runner) Benchmarks() []string { return workload.Names() }

// ShortBenchmarks returns the abbreviated axis labels of the paper's
// figures.
func (r *Runner) ShortBenchmarks() []string {
	names := workload.Names()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = workload.ShortName(n)
	}
	return out
}

func (r *Runner) prog(bench string) *program.Program {
	if p, ok := r.progs[bench]; ok {
		return p
	}
	prof, ok := workload.ByName(bench)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown benchmark %q", bench))
	}
	p := prof.MustGenerate()
	r.progs[bench] = p
	return p
}

// Run simulates the benchmark under the configuration (memoized by
// configuration name).
func (r *Runner) Run(cfg sim.Config, bench string) *stats.Run {
	key := cfg.Name + "/" + bench
	if run, ok := r.runs[key]; ok {
		return run
	}
	cfg.WarmupInsts = r.Warmup
	cfg.MaxInsts = r.Budget
	s, err := sim.New(cfg, r.prog(bench))
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", key, err))
	}
	if r.Log != nil {
		fmt.Fprintf(r.Log, "running %s...\n", key)
	}
	run := s.Run()
	r.runs[key] = run
	return run
}

// Sweep runs the configuration over every benchmark and returns runs in
// paper order.
func (r *Runner) Sweep(cfg sim.Config) []*stats.Run {
	out := make([]*stats.Run, 0, len(workload.Names()))
	for _, b := range workload.Names() {
		out = append(out, r.Run(cfg, b))
	}
	return out
}

// AvgEffRate returns the mean effective fetch rate of the configuration
// across all benchmarks.
func (r *Runner) AvgEffRate(cfg sim.Config) float64 {
	runs := r.Sweep(cfg)
	sum := 0.0
	for _, run := range runs {
		sum += run.EffFetchRate()
	}
	return sum / float64(len(runs))
}

// CachedKeys lists memoized runs (for tests).
func (r *Runner) CachedKeys() []string {
	keys := make([]string, 0, len(r.runs))
	for k := range r.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
