// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 1-4, Figures 4-16) on the synthetic benchmark suite.
// Each experiment formats the same rows and series the paper reports;
// absolute values differ (different workloads and substrate), but the
// comparative shapes are the reproduction target.
//
// # Concurrency
//
// A Runner is safe for concurrent use. Memoization is singleflight: the
// first caller of a (configuration, benchmark) key simulates it, every
// concurrent caller of the same key blocks until that simulation finishes
// and then shares the identical *stats.Run — a run in flight is awaited,
// never duplicated. Actual simulations are bounded by a worker pool of
// Workers slots (default GOMAXPROCS); goroutines waiting on an in-flight
// key do not hold a slot, so fan-out can be arbitrarily wide without
// deadlock. Each simulation runs single-threaded and is a pure function of
// its configuration, program, and budgets, so results are bit-identical to
// sequential execution regardless of Workers (run provenance metadata such
// as wall time necessarily differs; no simulated statistic does). Sweep,
// SweepE and RunAll fan work across the pool while returning or emitting
// results in paper order; with Workers == 1 they degrade to strictly
// sequential execution, which also makes the Log line order deterministic.
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"tracecache/internal/obs"
	"tracecache/internal/program"
	"tracecache/internal/resultstore"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/trace"
	"tracecache/internal/workload"
)

// Runner executes simulations with memoization, so configurations shared
// between experiments (baseline, promotion, packing) are simulated once.
// See the package comment for the concurrency contract.
type Runner struct {
	// Warmup instructions retire before measurement; Budget instructions
	// are then measured.
	Warmup uint64
	Budget uint64
	// FastForward, when non-zero, executes that many committed instructions
	// functionally before the detailed phases — restored from one shared
	// architectural checkpoint per benchmark (captured once per process, see
	// workload.SharedCheckpoint), so a sweep of N configurations pays for
	// the prefix once instead of N times. Microarchitectural structures are
	// not checkpointed; Warmup should stay large enough to warm them.
	FastForward uint64
	// Log, when non-nil, receives progress lines. Writes are serialized by
	// the runner, but their order under Workers > 1 follows completion
	// order, not paper order.
	Log io.Writer
	// Workers bounds concurrently executing simulations; non-positive
	// selects GOMAXPROCS. It must be set before the first Run/Sweep call;
	// later changes have no effect.
	Workers int
	// Check runs every simulation with the self-verification layer
	// (sim.Config.Check) enabled. Checking changes no simulated
	// statistic; a run that reports violations fails with an error
	// carrying the violation report. Set before the first Run call.
	Check bool
	// Replay enables the front-end replay fast path: the first simulation
	// of each benchmark runs detailed with the retired-stream recorder
	// attached, and every later point whose configuration differs from
	// the recording only in front-end axes (sim.FrontEndEquivalent) is
	// replayed from the stream instead of simulated — producing front-end
	// statistics with stats.ProvReplay provenance and zero cycle-domain
	// statistics, within the fidelity envelope of check.CompareReplay
	// (see DESIGN.md §9). Points that vary core-side axes, and all runs
	// when Check is set, bypass replay and simulate detailed. Under
	// Workers > 1 which point records is completion-order dependent;
	// every simulated statistic of each individual point is still
	// deterministic. Set before the first Run call.
	Replay bool
	// TraceDir, when non-empty with Replay, persists recordings under
	// content-addressed names so later processes replay every point,
	// recording each benchmark exactly once across process lifetimes.
	// Set before the first Run call.
	TraceDir string
	// Store, when non-nil, is the persistent content-addressed result
	// store consulted before every simulation (after the in-process memo,
	// before replay and the worker's detailed run): a valid entry whose
	// key — full configuration hash, benchmark, execution mode — matches
	// the request is served verbatim with stats.ProvStore provenance and
	// zero simulation; a completed simulation is persisted back, so later
	// processes and users pay nothing for the same point. Mode matching is
	// fidelity-preserving (DESIGN.md §11): detailed requests are served
	// only from detailed entries, Replay-mode requests may also accept
	// replay entries, sampled requests only sampled ones. Check runs
	// bypass the store entirely in both directions — a checked run must
	// actually simulate, and its purpose is to distrust stored numbers.
	// Set before the first Run call.
	Store *resultstore.Store
	// Sampling, when enabled, is the schedule RunSampledE and SweepSampledE
	// drive (see internal/sampling): Budget becomes the total committed-
	// stream extent each sampled run covers, window/period/warmup/seed come
	// from here, and Warmup is unused on the sampled path (each window
	// carries its own warmup). The detailed path (RunE, SweepE) ignores
	// this field entirely. Set before the first RunSampledE call.
	Sampling sim.SamplingParams
	// Metrics, when non-nil, receives fleet-level counters for every run
	// request (see RunnerMetrics); r.Metrics.Sim is attached to every
	// simulator the runner builds. Instrumentation changes no simulated
	// statistic and no Runner output. Set before the first Run call.
	Metrics *RunnerMetrics
	// OnRun, when non-nil, receives run-lifecycle events (see RunEvent).
	// It is called from the goroutines executing or awaiting runs, so it
	// may be called concurrently; listeners serialize internally (see
	// MultiListener, journal.RunnerListener, monitor.Progress.Listener).
	// Set before the first Run call.
	OnRun func(RunEvent)
	// NewObserver, when non-nil, builds one obs.Bus per simulation, which
	// the runner attaches before Run. A bus is not safe for concurrent
	// use, so the factory must return a fresh bus per call; sinks shared
	// across buses must be concurrency-safe (metrics.BusSink is). Set
	// before the first Run call.
	NewObserver func() *obs.Bus

	logMu sync.Mutex

	mu     sync.Mutex
	sem    chan struct{} // sized from Workers on first use
	runs   map[string]*runEntry
	traces map[string]*traceEntry // per-benchmark recordings (Replay)
}

// runEntry is one singleflight memoization slot: done closes once run/err
// are final, and they are immutable afterwards.
type runEntry struct {
	done chan struct{}
	run  *stats.Run
	// sampled is set only on sampled-path entries (RunSampledE), whose
	// keys carry the sampling schedule; run then holds the pooled window
	// counters.
	sampled *stats.Sampled
	err     error
}

// NewRunner builds a runner with the given instruction budgets.
func NewRunner(warmup, budget uint64) *Runner {
	return &Runner{
		Warmup: warmup,
		Budget: budget,
		runs:   make(map[string]*runEntry),
	}
}

// workers resolves the effective worker-pool size.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// acquire claims a worker slot, creating the pool on first use, and
// returns the release function.
func (r *Runner) acquire() func() {
	r.mu.Lock()
	if r.sem == nil {
		r.sem = make(chan struct{}, r.workers())
		if m := r.Metrics; m != nil {
			m.WorkersLimit.Set(int64(r.workers()))
		}
	}
	sem := r.sem
	r.mu.Unlock()
	sem <- struct{}{}
	return func() { <-sem }
}

// emit delivers a run-lifecycle event to the OnRun listener, if any.
func (r *Runner) emit(ev RunEvent) {
	if r.OnRun != nil {
		r.OnRun(ev)
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log == nil {
		return
	}
	r.logMu.Lock()
	defer r.logMu.Unlock()
	fmt.Fprintf(r.Log, format, args...)
}

// Benchmarks returns the benchmark names in paper order.
func (r *Runner) Benchmarks() []string { return workload.Names() }

// ShortBenchmarks returns the abbreviated axis labels of the paper's
// figures.
func (r *Runner) ShortBenchmarks() []string {
	names := workload.Names()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = workload.ShortName(n)
	}
	return out
}

// RunE simulates the benchmark under the configuration, memoized by
// configuration name. Concurrent calls with the same key share one
// simulation.
func (r *Runner) RunE(cfg sim.Config, bench string) (*stats.Run, error) {
	return r.shared(cfg, bench, nil)
}

// RunConfiguredE is RunE with a per-benchmark configuration hook applied
// before simulation; static promotion uses it because its annotations
// depend on the program. Memoization keys on the configuration name, so
// the hook runs at most once per key.
func (r *Runner) RunConfiguredE(cfg sim.Config, bench string, prep func(*sim.Config, *program.Program)) (*stats.Run, error) {
	return r.shared(cfg, bench, prep)
}

// shared is the singleflight core: at most one goroutine simulates a key;
// the rest wait for its entry and share the result. The executing request
// emits RunQueued/RunStarted/RunDone with the simulation's provenance;
// every sharing request emits one memoized RunDone after the result is
// final, carrying the identical *stats.Run.
func (r *Runner) shared(cfg sim.Config, bench string, prep func(*sim.Config, *program.Program)) (*stats.Run, error) {
	key := cfg.Name + "/" + bench
	r.mu.Lock()
	if e, ok := r.runs[key]; ok {
		r.mu.Unlock()
		if m := r.Metrics; m != nil {
			m.MemoHits.Inc()
		}
		<-e.done
		r.emit(RunEvent{
			Phase: RunDone, Key: key, Config: cfg.Name, Benchmark: bench,
			Run: e.run, Err: e.err,
			Memoized: true, Provenance: stats.ProvMemoized,
		})
		return e.run, e.err
	}
	e := &runEntry{done: make(chan struct{})}
	r.runs[key] = e
	r.mu.Unlock()

	if m := r.Metrics; m != nil {
		m.MemoMisses.Inc()
	}
	r.emit(RunEvent{Phase: RunQueued, Key: key, Config: cfg.Name, Benchmark: bench})
	res := r.simulate(key, cfg, bench, prep)
	e.run, e.err = res.run, res.err
	if m := r.Metrics; m != nil {
		if res.err != nil {
			m.RunsFailed.Inc()
		} else {
			m.RunsCompleted.Inc()
			switch res.provenance {
			case stats.ProvCheckpointFork:
				m.CheckpointForks.Inc()
			case stats.ProvReplay:
				m.Replays.Inc()
			case stats.ProvStore:
				m.StoreServed.Inc()
			default:
				m.ColdStarts.Inc()
			}
		}
	}
	r.emit(RunEvent{
		Phase: RunDone, Key: key, Config: cfg.Name, Benchmark: bench,
		Run: res.run, Err: res.err,
		Provenance: res.provenance,
		QueueWait:  res.queueWait, Wall: res.wall,
	})
	close(e.done)
	return e.run, e.err
}

// simResult carries one simulation's outcome plus the request-level
// provenance and timing that counters, events, and journal records need.
type simResult struct {
	run        *stats.Run
	err        error
	provenance string
	queueWait  time.Duration
	wall       time.Duration
}

// simulate executes one simulation under a worker slot, converting panics
// from configuration or simulator internals into errors so a bad config in
// a parallel sweep fails that sweep instead of the process.
func (r *Runner) simulate(key string, cfg sim.Config, bench string, prep func(*sim.Config, *program.Program)) (res simResult) {
	// Registered before the recover defer, so it runs after it (LIFO) and
	// observes the final result — including panics converted to errors,
	// which it must not persist.
	defer func() {
		r.storePut(cfg, bench, res.provenance, res.run, nil)
	}()
	defer func() {
		if p := recover(); p != nil {
			res = simResult{err: fmt.Errorf("experiments: %s: panic: %v", key, p),
				queueWait: res.queueWait, wall: res.wall}
		}
	}()
	fail := func(err error) simResult {
		return simResult{err: fmt.Errorf("experiments: %s: %w", key, err),
			queueWait: res.queueWait, wall: res.wall}
	}
	prog, err := workload.SharedProgram(bench)
	if err != nil {
		return fail(err)
	}
	//tcvet:ignore determinism wall-clock telemetry only: queue-wait measurement start, never simulated state
	queuedAt := time.Now()
	release := r.acquire()
	defer release()
	//tcvet:ignore determinism wall-clock telemetry only: queue-wait histogram and journal, never simulated state
	res.queueWait = time.Since(queuedAt)
	if m := r.Metrics; m != nil {
		m.RunsStarted.Inc()
		m.WorkersBusy.Add(1)
		m.QueueWait.Observe(res.queueWait.Seconds())
	}
	r.emit(RunEvent{Phase: RunStarted, Key: key, Config: cfg.Name, Benchmark: bench,
		QueueWait: res.queueWait})
	//tcvet:ignore determinism wall-clock telemetry only: run-wall measurement start, never simulated state
	startedAt := time.Now()
	defer func() {
		//tcvet:ignore determinism wall-clock telemetry only: run-wall histogram and journal, never simulated state
		res.wall = time.Since(startedAt)
		if m := r.Metrics; m != nil {
			m.WorkersBusy.Add(-1)
			m.RunWall.Observe(res.wall.Seconds())
		}
	}()
	if prep != nil {
		prep(&cfg, prog)
	}
	cfg.WarmupInsts = r.Warmup
	cfg.MaxInsts = r.Budget
	cfg.FastForwardInsts = r.FastForward
	cfg.Check = r.Check

	// Persistent-store fast path: a prior process (or job) that simulated
	// this exact point — same full configuration hash, benchmark, and
	// fidelity mode — left its result on disk; serve it verbatim. Checked
	// runs must actually simulate, so Check bypasses the store.
	if r.Store != nil && !r.Check {
		modes := []string{resultstore.ModeDetailed}
		if r.Replay {
			// A replay-mode request accepts either fidelity class it could
			// itself have produced: a replayed point or the detailed run
			// that recorded the stream.
			modes = []string{resultstore.ModeReplay, resultstore.ModeDetailed}
		}
		if e := r.storeGet(cfg, bench, modes); e != nil {
			res.run = e.Run
			res.provenance = stats.ProvStore
			return res
		}
	}

	// Replay fast path: the benchmark's first request resolves the shared
	// recording (from TraceDir or by recording during its own detailed
	// run); every front-end-equivalent point after that replays it.
	var rec *traceEntry
	if r.Replay && !r.Check {
		te, creator := r.traceEntryFor(bench)
		if creator {
			if h, recs, ok := r.loadTrace(cfg, prog); ok {
				te.hdr, te.recs, te.coreHash = h, recs, h.CoreHash
				close(te.done)
			} else {
				rec = te
				defer func() {
					// Backstop for error and panic exits: resolve the entry
					// so waiters fall back to detailed simulation.
					if rec != nil {
						rec.err = errRecordingIncomplete(key)
						close(rec.done)
						rec = nil
					}
				}()
			}
		} else {
			<-te.done
		}
		if rec == nil && te.err == nil && len(te.recs) > 0 && te.coreHash == cfg.CoreHash() {
			r.logf("replaying %s...\n", key)
			run, err := replayTrace(cfg, prog, te.hdr, te.recs)
			if err != nil {
				return fail(err)
			}
			res.run = run
			res.provenance = stats.ProvReplay
			return res
		}
	}

	s, err := sim.New(cfg, prog)
	if err != nil {
		return fail(err)
	}
	if m := r.Metrics; m != nil {
		s.AttachMetrics(m.Sim)
	}
	if r.NewObserver != nil {
		if bus := r.NewObserver(); bus != nil {
			s.AttachObserver(bus)
		}
	}
	var recBuf bytes.Buffer
	var recW *trace.Writer
	var recHdr trace.Header
	if rec != nil {
		recHdr = s.TraceHeader("commit-tap")
		w, err := trace.NewWriter(&recBuf, recHdr)
		if err != nil {
			return fail(err)
		}
		recW = w
		s.AttachRecorder(recW)
	}
	res.provenance = stats.ProvCold
	if r.FastForward > 0 && recW == nil {
		// The capture itself is memoized process-wide; the first arrival
		// captures (under its worker slot), later arrivals block on the
		// OnceValues and then restore, which is a cheap copy.
		// A recording run skips the restore: the stream must start at the
		// program entry, so it fast-forwards functionally under the tap
		// (cfg.FastForwardInsts is set) and its provenance stays cold.
		cp, err := workload.SharedCheckpoint(bench, r.FastForward)
		if err != nil {
			return fail(err)
		}
		if err := s.ApplyCheckpoint(cp); err != nil {
			return fail(err)
		}
		res.provenance = stats.ProvCheckpointFork
	}
	r.logf("running %s...\n", key)
	res.run = s.Run()
	if chk := s.Checker(); chk != nil && chk.Total() > 0 {
		res.run = nil
		return fail(fmt.Errorf("%s", chk.Report()))
	}
	if recW != nil {
		if err := recW.Close(); err != nil {
			rec.err = fmt.Errorf("experiments: %s: recording: %w", key, err)
		} else if h, recs, err := trace.ReadAll(recBuf.Bytes()); err != nil {
			rec.err = fmt.Errorf("experiments: %s: recording: %w", key, err)
		} else {
			rec.hdr, rec.recs = h, recs
			rec.coreHash = cfg.CoreHash()
			r.saveTrace(key, recBuf.Bytes(), recHdr)
		}
		close(rec.done)
		rec = nil
	}
	return res
}

// SweepE runs the configuration over every benchmark, fanning the runs
// across the worker pool, and returns them in paper order. The first error
// (in paper order) is returned with a nil slice.
func (r *Runner) SweepE(cfg sim.Config) ([]*stats.Run, error) {
	names := workload.Names()
	out := make([]*stats.Run, len(names))
	if r.workers() <= 1 {
		for i, b := range names {
			run, err := r.RunE(cfg, b)
			if err != nil {
				return nil, err
			}
			out[i] = run
		}
		return out, nil
	}
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, b := range names {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			out[i], errs[i] = r.RunE(cfg, b)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AvgEffRateE returns the mean effective fetch rate of the configuration
// across all benchmarks.
func (r *Runner) AvgEffRateE(cfg sim.Config) (float64, error) {
	runs, err := r.SweepE(cfg)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, run := range runs {
		sum += run.EffFetchRate()
	}
	return sum / float64(len(runs)), nil
}

// CachedKeys lists memoized runs (for tests). In-flight keys are included;
// completed and failed runs are not distinguished.
func (r *Runner) CachedKeys() []string {
	r.mu.Lock()
	keys := make([]string, 0, len(r.runs))
	for k := range r.runs {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// RunAll executes the experiments against the runner, fanning them across
// the worker pool, and calls emit with each experiment's output in the
// given order (streaming: an experiment is emitted as soon as it and all
// its predecessors have finished). Panics inside an experiment are
// converted to errors; emission stops at the first failed experiment and
// its error is returned, joined with any later failures. With Workers == 1
// the experiments run strictly sequentially, and later experiments are not
// started after a failure.
func RunAll(r *Runner, exps []Experiment, emit func(Experiment, string)) error {
	if r.workers() <= 1 {
		for _, e := range exps {
			out, err := runExperiment(r, e)
			if err != nil {
				return err
			}
			emit(e, out)
		}
		return nil
	}
	type result struct {
		done chan struct{}
		out  string
		err  error
	}
	results := make([]*result, len(exps))
	for i, e := range exps {
		res := &result{done: make(chan struct{})}
		results[i] = res
		go func(e Experiment, res *result) {
			defer close(res.done)
			res.out, res.err = runExperiment(r, e)
		}(e, res)
	}
	var errs []error
	for i, res := range results {
		<-res.done
		if res.err != nil {
			errs = append(errs, res.err)
			continue
		}
		if errs == nil {
			emit(exps[i], res.out)
		}
	}
	return errors.Join(errs...)
}

// runExperiment renders one experiment. Simulation failures propagate as
// errors through the experiment bodies; the recover is a backstop for
// programming errors inside a body, so a parallel tcbench fails that
// experiment instead of the process.
func runExperiment(r *Runner, e Experiment) (out string, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiment %s: panic: %v", e.ID, p)
		}
	}()
	out, err = e.Run(r)
	if err != nil {
		return "", fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	return out, nil
}
