package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tracecache/internal/config"
	"tracecache/internal/core"
	"tracecache/internal/resultstore"
	"tracecache/internal/sampling"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/textplot"
	"tracecache/internal/workload"
)

// This file is the runner's sampled execution path: RunSampledE and
// SweepSampledE drive internal/sampling under the same singleflight memo,
// worker pool, checkpoint sharing, metrics, and run-event plumbing as the
// detailed path — but memo keys carry the sampling schedule, so a sampled
// estimate can never be conflated with (or shared as) a detailed
// measurement of the same configuration. SampledComparison renders the
// paper-scale headline table with confidence intervals.

// sampledKey is the memo key of one sampled request. The schedule is part
// of the key for the same reason it is part of Config.Hash: a sampled
// result is an estimate parameterized by its schedule, not the same
// number as a detailed run of the key's configuration.
func sampledKey(cfg string, bench string, p sim.SamplingParams) string {
	return fmt.Sprintf("%s/%s#sampled-w%d-p%d-u%d-s%d",
		cfg, bench, p.WindowInsts, p.PeriodInsts, p.WarmupInsts, p.Seed)
}

// RunSampledE estimates the benchmark under the configuration with the
// runner's sampling schedule (Runner.Sampling must be enabled; Budget is
// the total committed-stream extent the schedule covers). Requests are
// memoized and singleflighted exactly like RunE, under a key that carries
// the schedule. The returned aggregate carries ProvSampled metadata; its
// pooled counters are also recorded in the journal via the usual RunDone
// event.
func (r *Runner) RunSampledE(cfg sim.Config, bench string) (*stats.Sampled, error) {
	p := r.Sampling
	if !p.Enabled() {
		return nil, fmt.Errorf("experiments: RunSampledE without a sampling schedule (set Runner.Sampling)")
	}
	key := sampledKey(cfg.Name, bench, p)
	r.mu.Lock()
	if e, ok := r.runs[key]; ok {
		r.mu.Unlock()
		if m := r.Metrics; m != nil {
			m.MemoHits.Inc()
		}
		<-e.done
		r.emit(RunEvent{
			Phase: RunDone, Key: key, Config: cfg.Name, Benchmark: bench,
			Run: e.run, Err: e.err,
			Memoized: true, Provenance: stats.ProvMemoized,
		})
		return e.sampled, e.err
	}
	e := &runEntry{done: make(chan struct{})}
	r.runs[key] = e
	r.mu.Unlock()

	if m := r.Metrics; m != nil {
		m.MemoMisses.Inc()
	}
	r.emit(RunEvent{Phase: RunQueued, Key: key, Config: cfg.Name, Benchmark: bench})
	res := r.simulateSampled(key, cfg, bench)
	e.run, e.sampled, e.err = res.run, res.sampled, res.err
	if m := r.Metrics; m != nil {
		if res.err != nil {
			m.RunsFailed.Inc()
		} else {
			m.RunsCompleted.Inc()
			if res.provenance == stats.ProvStore {
				m.StoreServed.Inc()
			} else {
				m.SampledRuns.Inc()
			}
		}
	}
	r.emit(RunEvent{
		Phase: RunDone, Key: key, Config: cfg.Name, Benchmark: bench,
		Run: res.run, Err: res.err,
		Provenance: res.provenance,
		QueueWait:  res.queueWait, Wall: res.wall,
	})
	close(e.done)
	return e.sampled, e.err
}

// sampledSimResult mirrors simResult for the sampled path.
type sampledSimResult struct {
	run        *stats.Run
	sampled    *stats.Sampled
	err        error
	provenance string
	queueWait  time.Duration
	wall       time.Duration
}

// simulateSampled executes one sampled run under a worker slot: shared
// checkpoint for the functional prefix when the runner fast-forwards, the
// sampling driver for the schedule, and a hard failure on any sampling-
// audit or self-check violation.
func (r *Runner) simulateSampled(key string, cfg sim.Config, bench string) (res sampledSimResult) {
	// Registered before the recover defer so it runs after it (LIFO) and
	// never persists a panic-converted result.
	defer func() {
		r.storePut(cfg, bench, res.provenance, res.run, res.sampled)
	}()
	defer func() {
		if p := recover(); p != nil {
			res = sampledSimResult{err: fmt.Errorf("experiments: %s: panic: %v", key, p),
				queueWait: res.queueWait, wall: res.wall}
		}
	}()
	fail := func(err error) sampledSimResult {
		return sampledSimResult{err: fmt.Errorf("experiments: %s: %w", key, err),
			queueWait: res.queueWait, wall: res.wall}
	}
	prog, err := workload.SharedProgram(bench)
	if err != nil {
		return fail(err)
	}
	//tcvet:ignore determinism wall-clock telemetry only: queue-wait measurement start, never simulated state
	queuedAt := time.Now()
	release := r.acquire()
	defer release()
	//tcvet:ignore determinism wall-clock telemetry only: queue-wait histogram and journal, never simulated state
	res.queueWait = time.Since(queuedAt)
	if m := r.Metrics; m != nil {
		m.RunsStarted.Inc()
		m.WorkersBusy.Add(1)
		m.QueueWait.Observe(res.queueWait.Seconds())
	}
	r.emit(RunEvent{Phase: RunStarted, Key: key, Config: cfg.Name, Benchmark: bench,
		QueueWait: res.queueWait})
	//tcvet:ignore determinism wall-clock telemetry only: run-wall measurement start, never simulated state
	startedAt := time.Now()
	defer func() {
		//tcvet:ignore determinism wall-clock telemetry only: run-wall histogram and journal, never simulated state
		res.wall = time.Since(startedAt)
		if m := r.Metrics; m != nil {
			m.WorkersBusy.Add(-1)
			m.RunWall.Observe(res.wall.Seconds())
		}
	}()
	cfg.WarmupInsts = 0 // each window carries its own warmup
	cfg.MaxInsts = r.Budget
	cfg.FastForwardInsts = r.FastForward
	cfg.Sampling = r.Sampling
	cfg.Check = r.Check
	res.provenance = stats.ProvSampled

	// Persistent-store fast path: sampled estimates are their own fidelity
	// class, so only a sampled entry — same configuration hash (schedule
	// included) and benchmark — can serve a sampled request.
	if r.Store != nil && !r.Check {
		if e := r.storeGet(cfg, bench, []string{resultstore.ModeSampled}); e != nil && e.Sampled != nil {
			res.run, res.sampled = e.Run, e.Sampled
			res.provenance = stats.ProvStore
			return res
		}
	}

	s, err := sim.New(cfg, prog)
	if err != nil {
		return fail(err)
	}
	if m := r.Metrics; m != nil {
		s.AttachMetrics(m.Sim)
	}
	if r.NewObserver != nil {
		if bus := r.NewObserver(); bus != nil {
			s.AttachObserver(bus)
		}
	}
	forked := false
	if r.FastForward > 0 {
		cp, err := workload.SharedCheckpoint(bench, r.FastForward)
		if err != nil {
			return fail(err)
		}
		if err := s.ApplyCheckpoint(cp); err != nil {
			return fail(err)
		}
		forked = true
	}
	r.logf("sampling %s...\n", key)
	out, err := sampling.Run(s)
	if err != nil {
		return fail(err)
	}
	if chk := s.Checker(); chk != nil && chk.Total() > 0 {
		return fail(fmt.Errorf("%s", chk.Report()))
	}
	if len(out.Violations) > 0 {
		return fail(fmt.Errorf("sampling audit: %d violation(s), first: %s",
			len(out.Violations), out.Violations[0].Detail))
	}
	if forked && out.Sampled.Meta != nil {
		// Meta is shared between the aggregate and the pooled run.
		out.Sampled.Meta.CheckpointShared = true
	}
	res.run, res.sampled = out.Run, out.Sampled
	return res
}

// SweepSampledE estimates the configuration over every benchmark, fanning
// across the worker pool, in paper order.
func (r *Runner) SweepSampledE(cfg sim.Config) ([]*stats.Sampled, error) {
	names := workload.Names()
	out := make([]*stats.Sampled, len(names))
	if r.workers() <= 1 {
		for i, b := range names {
			sm, err := r.RunSampledE(cfg, b)
			if err != nil {
				return nil, err
			}
			out[i] = sm
		}
		return out, nil
	}
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, b := range names {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			out[i], errs[i] = r.RunSampledE(cfg, b)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SampledComparisonConfigs is the headline comparison set: the reference
// front end, the baseline trace cache, each technique alone, and the two
// regulated/unregulated combinations the paper settles between.
func SampledComparisonConfigs() []sim.Config {
	return []sim.Config{
		config.ICache(),
		config.Baseline(),
		config.Packing(),
		config.Promotion(config.PromotionThreshold),
		config.PromotionPacking(core.PackUnregulated, config.PromotionThreshold),
		config.Best(),
	}
}

// SampledComparison renders the promotion/packing headline comparison at
// the runner's sampled budget: per benchmark and configuration, the
// effective fetch rate and IPC as mean ±95% CI half-width, plus the
// suite-average table the paper's Figures 10 and 11 summarize. It is the
// paper-scale counterpart of Fig10/Fig11, with error bars.
func SampledComparison(r *Runner) (string, error) {
	cfgs := SampledComparisonConfigs()
	var b strings.Builder
	fmt.Fprintf(&b, "total budget %s insts/benchmark: window %d, period %s, warmup %d, seed %d\n",
		group(r.Budget), r.Sampling.WindowInsts, group(r.Sampling.PeriodInsts),
		r.Sampling.WarmupInsts, r.Sampling.Seed)
	fmt.Fprintf(&b, "each cell: mean ±95%% CI half-width over the completed windows\n\n")

	sweeps := make([][]*stats.Sampled, len(cfgs))
	for i, cfg := range cfgs {
		sw, err := r.SweepSampledE(cfg)
		if err != nil {
			return "", err
		}
		sweeps[i] = sw
	}

	head := []string{"Benchmark"}
	for _, cfg := range cfgs {
		head = append(head, cfg.Name)
	}

	section := func(title string, pick func(*stats.Sampled) stats.Estimate, digits int) {
		rows := make([][]string, 0, len(workload.Names())+1)
		means := make([]float64, len(cfgs))
		for bi, bench := range workload.Names() {
			cells := []string{workload.ShortName(bench)}
			for ci := range cfgs {
				e := pick(sweeps[ci][bi])
				cells = append(cells, fmt.Sprintf("%.*f ±%.*f", digits, e.Mean, digits, e.HalfWidth()))
				means[ci] += e.Mean
			}
			rows = append(rows, cells)
		}
		avg := []string{"average"}
		for ci := range cfgs {
			avg = append(avg, fmt.Sprintf("%.*f", digits, means[ci]/float64(len(workload.Names()))))
		}
		rows = append(rows, avg)
		b.WriteString(title + "\n")
		b.WriteString(textplot.Table(head, rows))
		b.WriteString("\n")
	}

	section("Effective fetch rate (paper Fig 10)", func(s *stats.Sampled) stats.Estimate { return s.EffFetchRate }, 2)
	section("IPC (paper Fig 11)", func(s *stats.Sampled) stats.Estimate { return s.IPC }, 3)
	section("Conditional mispredict rate", func(s *stats.Sampled) stats.Estimate { return s.MispredictRate }, 4)
	return b.String(), nil
}

// group formats an instruction count with thousands separators for the
// table headers (40_000_000 -> "40,000,000").
func group(n uint64) string {
	s := fmt.Sprintf("%d", n)
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
