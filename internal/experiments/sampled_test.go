package experiments

import (
	"testing"

	"tracecache/internal/config"
	"tracecache/internal/metrics"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
)

func sampledRunner(workers int) *Runner {
	r := NewRunner(2000, 100_000)
	r.Workers = workers
	r.Sampling = sim.SamplingParams{
		WindowInsts: 1000,
		PeriodInsts: 20_000,
		WarmupInsts: 1000,
		Seed:        1,
	}
	return r
}

// TestRunSampledMemoSeparation: a sampled request and a detailed request
// of the same (config, benchmark) occupy distinct memo slots, and the
// sampled result is marked as the estimate it is — sampled provenance,
// schedule metadata, and a schedule-bearing config hash distinct from the
// detailed twin's.
func TestRunSampledMemoSeparation(t *testing.T) {
	r := sampledRunner(1)
	det, err := r.RunE(config.Baseline(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	sm, err := r.RunSampledE(config.Baseline(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	keys := r.CachedKeys()
	if len(keys) != 2 {
		t.Fatalf("memo holds %v, want one detailed and one sampled slot", keys)
	}
	if sm.Meta == nil || sm.Meta.Provenance != stats.ProvSampled || sm.Meta.Sampling == nil {
		t.Fatalf("sampled meta = %+v, want ProvSampled with schedule", sm.Meta)
	}
	if det.Meta.Provenance == stats.ProvSampled {
		t.Fatal("detailed run acquired sampled provenance")
	}
	if det.Meta.ConfigHash == sm.Meta.ConfigHash {
		t.Fatal("sampled and detailed config hashes collide: memoization/journal would conflate them")
	}

	// A second sampled request must share the slot, not re-simulate.
	sm2, err := r.RunSampledE(config.Baseline(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if sm2 != sm {
		t.Fatal("repeated sampled request did not share the memoized aggregate")
	}
}

// TestSweepSampledParallelDeterminism: a sampled sweep is bit-identical
// across worker counts — schedules, per-window samples, and estimates.
func TestSweepSampledParallelDeterminism(t *testing.T) {
	seq, err := sampledRunner(1).SweepSampledE(config.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	par, err := sampledRunner(4).SweepSampledE(config.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if len(a.Windows) != len(b.Windows) {
			t.Fatalf("%s: window counts differ", a.Benchmark)
		}
		for w := range a.Windows {
			if a.Windows[w] != b.Windows[w] {
				t.Fatalf("%s window %d: parallel sweep diverged:\n%+v\nvs\n%+v",
					a.Benchmark, w, a.Windows[w], b.Windows[w])
			}
		}
		if a.IPC != b.IPC || a.EffFetchRate != b.EffFetchRate {
			t.Fatalf("%s: estimates diverged across worker counts", a.Benchmark)
		}
	}
}

// TestRunSampledMetricsAndEvents: the sampled path feeds the runner
// counters (SampledRuns partitions RunsCompleted) and emits the same
// queued/started/done event shape as the detailed path, with sampled
// provenance on the executing request and memoized on sharing ones.
func TestRunSampledMetricsAndEvents(t *testing.T) {
	r := sampledRunner(1)
	m := InstrumentRunner(metrics.NewRegistry())
	r.Metrics = m
	var events []RunEvent
	r.OnRun = func(ev RunEvent) { events = append(events, ev) }

	if _, err := r.RunSampledE(config.Baseline(), "gcc"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunSampledE(config.Baseline(), "gcc"); err != nil {
		t.Fatal(err)
	}

	if got := m.SampledRuns.Value(); got != 1 {
		t.Fatalf("SampledRuns = %d, want 1", got)
	}
	if m.RunsCompleted.Value() != m.CheckpointForks.Value()+m.ColdStarts.Value()+
		m.Replays.Value()+m.SampledRuns.Value() {
		t.Fatal("provenance counters do not partition RunsCompleted")
	}
	if m.MemoHits.Value() != 1 || m.MemoMisses.Value() != 1 {
		t.Fatalf("memo hits/misses = %d/%d, want 1/1",
			m.MemoHits.Value(), m.MemoMisses.Value())
	}

	var phases []RunPhase
	var provs []string
	for _, ev := range events {
		phases = append(phases, ev.Phase)
		if ev.Phase == RunDone {
			provs = append(provs, ev.Provenance)
			if ev.Run == nil || ev.Run.Meta == nil || ev.Run.Meta.Sampling == nil {
				t.Fatalf("RunDone event run lacks sampling metadata: %+v", ev.Run)
			}
		}
	}
	wantPhases := []RunPhase{RunQueued, RunStarted, RunDone, RunDone}
	for i := range wantPhases {
		if i >= len(phases) || phases[i] != wantPhases[i] {
			t.Fatalf("event phases = %v, want %v", phases, wantPhases)
		}
	}
	if provs[0] != stats.ProvSampled || provs[1] != stats.ProvMemoized {
		t.Fatalf("RunDone provenances = %v, want [sampled memoized]", provs)
	}
}

// TestRunSampledCheckpointFork: with FastForward set, the sampled run
// restores the shared checkpoint and says so in its metadata while
// keeping sampled provenance.
func TestRunSampledCheckpointFork(t *testing.T) {
	r := sampledRunner(1)
	r.FastForward = 30_000
	sm, err := r.RunSampledE(config.Baseline(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if sm.Meta == nil || !sm.Meta.CheckpointShared || sm.Meta.FastForwardInsts != 30_000 {
		t.Fatalf("meta = %+v, want checkpoint-shared ffwd 30000", sm.Meta)
	}
	if sm.Meta.Provenance != stats.ProvSampled {
		t.Fatalf("provenance = %q, want sampled", sm.Meta.Provenance)
	}
}

// TestRunSampledRequiresSchedule: RunSampledE without Runner.Sampling
// fails fast instead of silently running detailed.
func TestRunSampledRequiresSchedule(t *testing.T) {
	r := NewRunner(2000, 100_000)
	if _, err := r.RunSampledE(config.Baseline(), "gcc"); err == nil {
		t.Fatal("RunSampledE accepted a runner without a sampling schedule")
	}
}
