package experiments

import (
	"tracecache/internal/resultstore"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
)

// storeKey addresses one point in the persistent store: the full
// configuration hash (cfg must carry its final budgets — WarmupInsts,
// MaxInsts, FastForwardInsts, Sampling — when called, matching what
// stats.Meta.ConfigHash records), the benchmark, and the fidelity mode.
func storeKey(cfg sim.Config, bench, mode string) resultstore.Key {
	return resultstore.Key{ConfigHash: cfg.Hash(), Benchmark: bench, Mode: mode}
}

// storeGet looks the point up under each acceptable mode in preference
// order and returns the first usable entry, or nil on miss. Store
// corruption is logged and treated as a miss — the point re-simulates.
func (r *Runner) storeGet(cfg sim.Config, bench string, modes []string) *resultstore.Entry {
	for _, mode := range modes {
		e, err := r.Store.Get(storeKey(cfg, bench, mode))
		if err != nil {
			r.logf("result store: %v\n", err)
			continue
		}
		if e != nil && e.Run != nil {
			return e
		}
	}
	return nil
}

// storeModeOf maps a run's provenance to its store fidelity mode.
func storeModeOf(provenance string) string {
	switch provenance {
	case stats.ProvReplay:
		return resultstore.ModeReplay
	case stats.ProvSampled:
		return resultstore.ModeSampled
	default:
		// Cold and checkpoint-fork runs are both full detailed
		// measurements; the checkpoint only changed who executed the
		// functional prefix.
		return resultstore.ModeDetailed
	}
}

// storePut persists one completed result. It is a no-op without a store,
// for failed or store-served results, and for checked runs (their
// purpose is to distrust cached numbers, so they neither read nor seed
// the store). Persistence errors are logged, never fatal: the store is a
// cache, and losing a put only costs a future re-simulation.
func (r *Runner) storePut(cfg sim.Config, bench, provenance string, run *stats.Run, sampled *stats.Sampled) {
	if r.Store == nil || r.Check || run == nil || provenance == stats.ProvStore {
		return
	}
	e := &resultstore.Entry{
		Key:     storeKey(cfg, bench, storeModeOf(provenance)),
		Config:  cfg.Name,
		Run:     run,
		Sampled: sampled,
	}
	if err := r.Store.Put(e); err != nil {
		r.logf("result store: %v\n", err)
	}
}
