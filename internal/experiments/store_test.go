package experiments_test

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"tracecache/internal/config"
	"tracecache/internal/experiments"
	"tracecache/internal/journal"
	"tracecache/internal/metrics"
	"tracecache/internal/resultstore"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
)

// storeSweep fans a small sweep (2 configurations × 3 benchmarks, every
// request duplicated once for memo hits) through a fresh instrumented,
// journaled runner sharing the given store, and returns the runner's
// metrics, the journal records, and the runs in request order.
func storeSweep(t *testing.T, store *resultstore.Store) (*experiments.RunnerMetrics, []journal.Record, map[string]*stats.Run) {
	t.Helper()
	r := experiments.NewRunner(1_000, 3_000)
	r.Workers = 4
	r.Store = store
	m := experiments.InstrumentRunner(metrics.NewRegistry())
	r.Metrics = m

	var buf bytes.Buffer
	w := journal.NewWriter(&buf)
	r.OnRun = journal.RunnerListener(w, func(err error) { t.Errorf("journal: %v", err) })

	cfgA := config.Baseline()
	cfgB := config.Packing()
	benches := r.Benchmarks()[:3]
	runs := make(map[string]*stats.Run)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for range 2 { // duplicate every request once → memo hits
		for _, b := range benches {
			for _, c := range []sim.Config{cfgA, cfgB} {
				wg.Add(1)
				go func(c sim.Config, b string) {
					defer wg.Done()
					run, err := r.RunE(c, b)
					if err != nil {
						t.Errorf("RunE(%s/%s): %v", c.Name, b, err)
						return
					}
					mu.Lock()
					runs[c.Name+"/"+b] = run
					mu.Unlock()
				}(c, b)
			}
		}
	}
	wg.Wait()
	recs, truncated, err := journal.Read(&buf)
	if err != nil || truncated {
		t.Fatalf("journal read back: err=%v truncated=%v", err, truncated)
	}
	return m, recs, runs
}

// TestSweepStoreTieOut mirrors PR 6's journal tie-out across the
// persistent store: a first sweep populates the store (all simulated), a
// second sweep through a fresh runner — the restarted-process shape — is
// served entirely from disk, and on both sides the store traffic ties out
// against the journal records and runner counters. The served numbers are
// the verbatim originals.
func TestSweepStoreTieOut(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Metrics = resultstore.InstrumentStore(metrics.NewRegistry())
	const points = 6 // 2 configurations × 3 benchmarks

	// First sweep: every point misses the store and simulates.
	m1, recs1, runs1 := storeSweep(t, store)
	if got := m1.StoreServed.Value(); got != 0 {
		t.Errorf("first sweep store-served = %d, want 0", got)
	}
	if got := store.Metrics.Misses.Value(); got != points {
		t.Errorf("first sweep store misses = %d, want %d", got, points)
	}
	if got := store.Metrics.Puts.Value(); got != points {
		t.Errorf("first sweep store puts = %d, want %d", got, points)
	}
	if n, _ := store.Len(); n != points {
		t.Errorf("store holds %d entries, want %d", n, points)
	}
	// Store traffic ties out against the journal: every non-memoized
	// record is one lookup (hit or miss).
	var executed1 int
	for _, rec := range recs1 {
		if rec.Provenance != stats.ProvMemoized {
			executed1++
		}
	}
	if got := store.Metrics.Hits.Value() + store.Metrics.Misses.Value(); got != uint64(executed1) {
		t.Errorf("store hits+misses = %d, want %d executed journal records", got, executed1)
	}

	// Second sweep, fresh runner sharing the directory: the restarted
	// process. Zero simulations — every executing request is store-served.
	hitsBefore, missesBefore := store.Metrics.Hits.Value(), store.Metrics.Misses.Value()
	m2, recs2, runs2 := storeSweep(t, store)
	if got := m2.StoreServed.Value(); got != points {
		t.Errorf("second sweep store-served = %d, want %d", got, points)
	}
	if cold, forks, replays := m2.ColdStarts.Value(), m2.CheckpointForks.Value(), m2.Replays.Value(); cold+forks+replays != 0 {
		t.Errorf("second sweep simulated: cold=%d forks=%d replays=%d, want all 0", cold, forks, replays)
	}
	if got := store.Metrics.Hits.Value() - hitsBefore; got != points {
		t.Errorf("second sweep store hits = %d, want %d", got, points)
	}
	if got := store.Metrics.Misses.Value() - missesBefore; got != 0 {
		t.Errorf("second sweep store misses = %d, want 0", got)
	}

	// Journal provenance: every executed record of the second sweep says
	// "store", and counts tie out against the runner's partition.
	prov := map[string]uint64{}
	for _, rec := range recs2 {
		if rec.Error != "" {
			t.Errorf("failed record: %+v", rec)
		}
		prov[rec.Provenance]++
		if rec.Provenance == stats.ProvStore && rec.Meta == nil {
			t.Errorf("store record lost its meta: %+v", rec)
		}
	}
	if got := prov[stats.ProvStore]; got != m2.StoreServed.Value() {
		t.Errorf("journal store records = %d, want %d", got, m2.StoreServed.Value())
	}
	if got := prov[stats.ProvCold] + prov[stats.ProvCheckpointFork]; got != 0 {
		t.Errorf("journal shows %d simulated records, want 0", got)
	}
	if got, want := uint64(len(recs2)), m2.MemoHits.Value()+m2.MemoMisses.Value(); got != want {
		t.Errorf("journal records = %d, want memo hits+misses = %d", got, want)
	}

	// Served results are the verbatim originals, provenance metadata and
	// all — the store changes where numbers come from, never the numbers.
	if len(runs2) != len(runs1) {
		t.Fatalf("second sweep resolved %d points, want %d", len(runs2), len(runs1))
	}
	for key, a := range runs1 {
		b := runs2[key]
		if b == nil {
			t.Fatalf("point %s missing from second sweep", key)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("point %s differs:\nfirst  %+v\nsecond %+v", key, a, b)
		}
	}
}

// TestStoreCheckBypass checks that self-verified runs neither read nor
// seed the store: a checked run must actually simulate.
func TestStoreCheckBypass(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Metrics = resultstore.InstrumentStore(metrics.NewRegistry())

	r := experiments.NewRunner(1_000, 3_000)
	r.Workers = 1
	r.Store = store
	r.Check = true
	if _, err := r.RunE(config.Baseline(), r.Benchmarks()[0]); err != nil {
		t.Fatal(err)
	}
	if n, _ := store.Len(); n != 0 {
		t.Errorf("checked run seeded the store with %d entries", n)
	}
	if got := store.Metrics.Hits.Value() + store.Metrics.Misses.Value(); got != 0 {
		t.Errorf("checked run consulted the store %d times", got)
	}
}

// TestStoreSampledFidelity checks mode separation: a detailed run never
// serves a sampled request and vice versa, even for the same
// configuration name and benchmark.
func TestStoreSampledFidelity(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Metrics = resultstore.InstrumentStore(metrics.NewRegistry())
	bench := "compress"

	// Detailed run populates a detailed entry.
	rd := experiments.NewRunner(1_000, 3_000)
	rd.Workers = 1
	rd.Store = store
	if _, err := rd.RunE(config.Baseline(), bench); err != nil {
		t.Fatal(err)
	}

	// A sampled request of the same configuration must not be served from
	// the detailed entry; it samples and stores its own.
	rs := experiments.NewRunner(0, 12_000)
	rs.Workers = 1
	rs.Store = store
	rs.Sampling = sim.SamplingParams{WindowInsts: 1_000, PeriodInsts: 4_000, WarmupInsts: 200}
	sm, err := rs.RunSampledE(config.Baseline(), bench)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Meta == nil || sm.Meta.Provenance != stats.ProvSampled {
		t.Fatalf("sampled run provenance = %+v, want freshly sampled", sm.Meta)
	}
	if n, _ := store.Len(); n != 2 {
		t.Errorf("store holds %d entries, want detailed + sampled", n)
	}

	// A second sampled runner with the same schedule is store-served, and
	// the aggregate comes back verbatim.
	rs2 := experiments.NewRunner(0, 12_000)
	rs2.Workers = 1
	rs2.Store = store
	rs2.Sampling = rs.Sampling
	m2 := experiments.InstrumentRunner(metrics.NewRegistry())
	rs2.Metrics = m2
	sm2, err := rs2.RunSampledE(config.Baseline(), bench)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.StoreServed.Value(); got != 1 {
		t.Errorf("sampled resubmission store-served = %d, want 1", got)
	}
	if !reflect.DeepEqual(sm, sm2) {
		t.Errorf("sampled aggregate differs:\nfirst  %+v\nsecond %+v", sm, sm2)
	}
}
