// Package fetch implements the two front ends of the paper's experiments:
// the trace-cache fetch mechanism (trace cache + supporting instruction
// cache + multiple branch predictor, with partial matching and inactive
// issue) and the reference instruction-cache front end (large dual-ported
// icache + hybrid predictor, one fetch block per cycle).
//
// Both engines maintain the speculative fetch state — global branch
// history and an ideal return address stack — and expose O(1) recovery so
// the simulator can restore the state of any in-flight instruction on a
// misprediction or promoted-branch fault.
package fetch

import (
	"tracecache/internal/bpred"
	"tracecache/internal/isa"
	"tracecache/internal/obs"
	"tracecache/internal/stats"
)

// RASNode is a node of the persistent (immutable) return address stack.
// Persistence makes per-instruction checkpoints O(1).
type RASNode struct {
	target int
	prev   *RASNode
}

func rasPush(top *RASNode, target int) *RASNode {
	return &RASNode{target: target, prev: top}
}

// rasPop returns the predicted return target. An empty stack (possible
// only on the wrong path) predicts fallthrough.
func rasPop(top *RASNode, pc int) (int, *RASNode) {
	if top == nil {
		return pc + 1, nil
	}
	return top.target, top.prev
}

// RASDepth returns the stack depth (for tests).
func RASDepth(top *RASNode) int {
	n := 0
	for ; top != nil; top = top.prev {
		n++
	}
	return n
}

// BuildRAS builds a return address stack holding the given return targets,
// oldest first — the shape of an architectural call stack. Fast-forward and
// checkpoint restore use it to seed the speculative RAS with the committed
// call nesting.
func BuildRAS(targets []int) *RASNode {
	var top *RASNode
	for _, t := range targets {
		top = rasPush(top, t)
	}
	return top
}

// FetchedInst is one instruction delivered by a fetch, with the prediction
// and recovery state the simulator needs.
type FetchedInst struct {
	PC         int
	Inst       isa.Inst
	BlockStart bool // first instruction of a fetch block (checkpoint point)
	Inactive   bool // issued inactively (beyond the predicted path)

	// Control prediction.
	Predicted  bool // predicted direction (static direction for promoted)
	Promoted   bool
	UsedSlot   bool            // consumed a multiple-branch-predictor slot
	Ctx        bpred.PredCtx   // update context when UsedSlot
	UsedHybrid bool            // predicted by the hybrid predictor
	HCtx       bpred.HybridCtx // update context when UsedHybrid
	PredTarget int             // predicted PC following this instruction

	// Fetch state before this instruction, for recovery.
	HistBefore uint64
	RASBefore  *RASNode
}

// Bundle is the result of one fetch cycle.
type Bundle struct {
	Insts     []FetchedInst
	NextPC    int  // predicted fetch address for the next cycle
	FromTC    bool // instructions came from the trace cache
	TCMiss    bool // a trace cache lookup missed this cycle
	Latency   int  // stall cycles before the bundle is available (icache miss)
	Reason    stats.FetchEnd
	PredsUsed int
	// EndsInSerial is set when the bundle ends with a trap or halt: fetch
	// must block until it retires.
	EndsInSerial bool
}

// ActiveLen returns the number of non-inactive instructions.
func (b *Bundle) ActiveLen() int {
	n := 0
	for i := range b.Insts {
		if !b.Insts[i].Inactive {
			n++
		}
	}
	return n
}

// Engine is a fetch mechanism.
type Engine interface {
	// Fetch runs one fetch cycle at pc. The returned bundle is owned by
	// the engine and reused by the next Fetch call; the caller must copy
	// what it keeps.
	Fetch(pc int) *Bundle
	// Restore resets the speculative fetch state (for recovery).
	Restore(hist uint64, ras *RASNode)
	// ResolveEffect restores the state to just after fi, with the
	// conditional outcome corrected to actualTaken.
	ResolveEffect(fi *FetchedInst, actualTaken bool)
	// ApplyEffects re-applies the embedded fetch-state effects of
	// instructions (used when inactive instructions become the path) and
	// returns the PC at which fetch resumes after the last of them.
	ApplyEffects(fis []*FetchedInst) int
	// Hist returns the current speculative global history.
	Hist() uint64
	// RAS returns the current return address stack.
	RAS() *RASNode
	// SetObserver attaches an event bus; the engine emits trace cache
	// hit/miss and icache fetch events to it. A nil bus disables emission.
	SetObserver(*obs.Bus)
}

// frontState is the speculative fetch state shared by both engines.
type frontState struct {
	hist bpred.History
	ras  *RASNode
	obs  *obs.Bus
}

// SetObserver implements Engine.
func (f *frontState) SetObserver(b *obs.Bus) { f.obs = b }

// Hist implements Engine.
func (f *frontState) Hist() uint64 { return f.hist.Reg }

// RAS implements Engine.
func (f *frontState) RAS() *RASNode { return f.ras }

// Restore implements Engine.
func (f *frontState) Restore(hist uint64, ras *RASNode) {
	f.hist.Reg = hist
	f.ras = ras
}

// applyEffect applies one instruction's fetch-state effect with the given
// conditional outcome.
func (f *frontState) applyEffect(fi *FetchedInst, taken bool) {
	switch {
	case fi.Inst.IsCondBranch():
		f.hist.Push(taken)
	case fi.Inst.Op == isa.OpCall:
		f.ras = rasPush(f.ras, fi.PC+1)
	case fi.Inst.Op == isa.OpRet:
		_, f.ras = rasPop(f.ras, fi.PC)
	}
}

// ResolveEffect implements Engine.
func (f *frontState) ResolveEffect(fi *FetchedInst, actualTaken bool) {
	f.Restore(fi.HistBefore, fi.RASBefore)
	f.applyEffect(fi, actualTaken)
}

// ApplyEffects implements Engine.
func (f *frontState) ApplyEffects(fis []*FetchedInst) int {
	next := 0
	for _, fi := range fis {
		switch {
		case fi.Inst.IsCondBranch():
			f.hist.Push(fi.Predicted)
			if fi.Predicted {
				next = fi.Inst.Target
			} else {
				next = fi.PC + 1
			}
		case fi.Inst.Op == isa.OpCall:
			f.ras = rasPush(f.ras, fi.PC+1)
			next = fi.Inst.Target
		case fi.Inst.Op == isa.OpJmp:
			next = fi.Inst.Target
		case fi.Inst.Op == isa.OpRet:
			next, f.ras = rasPop(f.ras, fi.PC)
		case fi.Inst.IsIndirect():
			next = fi.PredTarget
		default:
			next = fi.PC + 1
		}
	}
	return next
}

// clampPC keeps a (possibly wrong-path) fetch address inside the image.
func clampPC(pc, codeLen int) int {
	if pc < 0 {
		return 0
	}
	if pc >= codeLen {
		return codeLen - 1
	}
	return pc
}
