package fetch

import (
	"testing"

	"tracecache/internal/bpred"
	"tracecache/internal/cache"
	"tracecache/internal/core"
	"tracecache/internal/isa"
	"tracecache/internal/program"
	"tracecache/internal/stats"
)

// testProg builds a small program:
//
//	 0: add            (block A)
//	 1: add
//	 2: br.eq -> 10
//	 3: add            (block B, fallthrough)
//	 4: br.eq -> 20
//	 5: add
//	 6: call 30
//	 7: add
//	 8: ret
//	 9: halt
//	10: add            (block T, taken target)
//	11: ret
//	20: add
//	21: trap
//	22..29: nops
//	30: add            (callee)
//	31: ret
func testProg(t *testing.T) *program.Program {
	t.Helper()
	p := program.New("fetchtest")
	code := make([]isa.Inst, 32)
	for i := range code {
		code[i] = isa.Inst{Op: isa.OpNop}
	}
	code[0] = isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}
	code[1] = isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}
	code[2] = isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Rs1: 1, Rs2: 2, Target: 10}
	code[3] = isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}
	code[4] = isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Rs1: 1, Rs2: 2, Target: 20}
	code[5] = isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}
	code[6] = isa.Inst{Op: isa.OpCall, Target: 30}
	code[7] = isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}
	code[8] = isa.Inst{Op: isa.OpRet}
	code[9] = isa.Inst{Op: isa.OpHalt}
	code[10] = isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 3, Rs2: 3}
	code[11] = isa.Inst{Op: isa.OpRet}
	code[20] = isa.Inst{Op: isa.OpAdd, Rd: 4, Rs1: 4, Rs2: 4}
	code[21] = isa.Inst{Op: isa.OpTrap}
	code[30] = isa.Inst{Op: isa.OpAdd, Rd: 5, Rs1: 5, Rs2: 5}
	code[31] = isa.Inst{Op: isa.OpRet}
	p.Code = code
	return p
}

func smallHier() *cache.Hierarchy {
	return &cache.Hierarchy{
		L1I: mustCache(cache.Config{Name: "l1i", SizeBytes: 4096, LineBytes: 64, Assoc: 4}),
		L1D: mustCache(cache.Config{Name: "l1d", SizeBytes: 1 << 16, LineBytes: 64, Assoc: 4}),
		L2:  mustCache(cache.Config{Name: "l2", SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8}),
	}
}

func newTrace(t *testing.T) (*TraceEngine, *core.TraceCache, *bpred.TreeMBP) {
	t.Helper()
	tc := mustTC(core.TraceCacheConfig{Entries: 64, Assoc: 4})
	mbp := bpred.NewTreeMBP(1 << 14)
	e := NewTraceEngine(TraceConfig{
		Prog:     testProg(t),
		TC:       tc,
		MBP:      mbp,
		Indirect: bpred.NewIndirectPredictor(1 << 8),
		Hier:     smallHier(),
	})
	return e, tc, mbp
}

// seg builds a trace segment matching testProg's path A(not-taken) B.
func testSegment() *core.Segment {
	insts := []core.SegInst{
		{PC: 0, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}},
		{PC: 1, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}},
		{PC: 2, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Rs1: 1, Rs2: 2, Target: 10}, Taken: false},
		{PC: 3, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}},
		{PC: 4, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Rs1: 1, Rs2: 2, Target: 20}, Taken: true},
		{PC: 20, Inst: isa.Inst{Op: isa.OpAdd, Rd: 4, Rs1: 4, Rs2: 4}},
	}
	s := &core.Segment{Start: 0, Insts: insts, Reason: core.FinalAtomic}
	// count branches via the package's own accounting: rebuild through a
	// fill unit would be overkill; set via exported field check below.
	return s
}

func TestICacheFetchBasicBlock(t *testing.T) {
	e, _, _ := newTrace(t)
	b := e.Fetch(0)
	if !b.TCMiss || b.FromTC {
		t.Fatal("expected trace cache miss path")
	}
	if len(b.Insts) != 3 {
		t.Fatalf("fetched %d instructions, want 3 (up to branch)", len(b.Insts))
	}
	if b.Insts[2].PC != 2 || !b.Insts[2].Inst.IsCondBranch() {
		t.Errorf("last inst = %+v", b.Insts[2])
	}
	if !b.Insts[0].BlockStart || b.Insts[1].BlockStart {
		t.Error("block start marking wrong")
	}
	if b.Reason != stats.EndICache {
		t.Errorf("reason = %v", b.Reason)
	}
	if b.PredsUsed != 1 {
		t.Errorf("preds used = %d", b.PredsUsed)
	}
	// Weakly-not-taken counters predict not taken: fallthrough.
	if b.NextPC != 3 {
		t.Errorf("next pc = %d", b.NextPC)
	}
	if b.Latency == 0 {
		t.Error("cold icache fetch should have miss latency")
	}
	// Second fetch of the same line hits.
	b2 := e.Fetch(0)
	if b2.Latency != 0 {
		t.Errorf("warm fetch latency = %d", b2.Latency)
	}
}

func TestICacheFetchCallPushesRAS(t *testing.T) {
	e, _, _ := newTrace(t)
	b := e.Fetch(5) // add, call 30
	if len(b.Insts) != 2 || b.NextPC != 30 {
		t.Fatalf("call fetch = %d insts, next %d", len(b.Insts), b.NextPC)
	}
	if RASDepth(e.RAS()) != 1 {
		t.Errorf("RAS depth = %d", RASDepth(e.RAS()))
	}
	// Fetch the callee: add, ret -> returns to 7.
	b2 := e.Fetch(30)
	if b2.NextPC != 7 {
		t.Errorf("return predicted to %d, want 7", b2.NextPC)
	}
	if RASDepth(e.RAS()) != 0 {
		t.Errorf("RAS depth after return = %d", RASDepth(e.RAS()))
	}
}

func TestICacheFetchTrapBlocks(t *testing.T) {
	e, _, _ := newTrace(t)
	b := e.Fetch(20)
	if !b.EndsInSerial {
		t.Error("trap fetch did not set EndsInSerial")
	}
	if len(b.Insts) != 2 {
		t.Errorf("insts = %d", len(b.Insts))
	}
}

func TestICacheHistoryPush(t *testing.T) {
	e, _, _ := newTrace(t)
	before := e.Hist()
	e.Fetch(0) // ends in a branch prediction
	if e.Hist() == before<<1 && e.Hist() != before {
		t.Error("history should shift in the prediction")
	}
	// Weakly not taken: expect a 0 shifted in.
	if e.Hist()&1 != 0 {
		t.Errorf("predicted bit = %d, want 0", e.Hist()&1)
	}
}

func TestTraceHitFullMatch(t *testing.T) {
	e, tc, _ := newTrace(t)
	tc.Insert(testSegment())
	b := e.Fetch(0)
	if !b.FromTC || b.TCMiss {
		t.Fatal("expected trace cache hit")
	}
	if len(b.Insts) != 6 {
		t.Fatalf("insts = %d, want 6", len(b.Insts))
	}
	// Predictor is weakly-not-taken everywhere: slot 0 (branch @2,
	// embedded not-taken) agrees; slot 1 (branch @4, embedded taken)
	// disagrees -> partial match at @4.
	if b.Insts[4].Inactive {
		t.Error("diverging branch itself must be active")
	}
	if !b.Insts[5].Inactive {
		t.Error("post-divergence instruction must be inactive")
	}
	if b.Reason != stats.EndPartialMatch {
		t.Errorf("reason = %v", b.Reason)
	}
	if b.NextPC != 5 {
		t.Errorf("next pc = %d, want 5 (predicted not-taken fallthrough)", b.NextPC)
	}
	if b.PredsUsed != 2 {
		t.Errorf("preds = %d", b.PredsUsed)
	}
	if b.ActiveLen() != 5 {
		t.Errorf("active = %d", b.ActiveLen())
	}
}

func TestTraceHitAgreesWhenTrained(t *testing.T) {
	e, tc, mbp := newTrace(t)
	tc.Insert(testSegment())
	// Train slot 1 at (start=0, hist=0, path=00) to predict taken.
	_, ctx := mbp.Predict(0, 0, 0, 1, 0)
	mbp.Update(ctx, true)
	mbp.Update(ctx, true)
	b := e.Fetch(0)
	if b.Reason == stats.EndPartialMatch {
		t.Fatal("trained predictor still diverges")
	}
	if b.ActiveLen() != 6 {
		t.Errorf("active = %d, want 6", b.ActiveLen())
	}
	if b.Reason != stats.EndAtomicBlocks {
		t.Errorf("reason = %v, want AtomicBlocks (segment reason)", b.Reason)
	}
	// Fall-through of the full segment: after inst @20, next pc 21.
	if b.NextPC != 21 {
		t.Errorf("next pc = %d, want 21", b.NextPC)
	}
	// Two predictions pushed into history: taken(slot1), not-taken(slot0):
	// history = 01.
	if e.Hist() != 0b01 {
		t.Errorf("hist = %b, want 01", e.Hist())
	}
}

func TestTraceHitPromotedBranchUsesNoSlot(t *testing.T) {
	e, tc, _ := newTrace(t)
	seg := testSegment()
	seg.Insts[2].Promoted = true // branch @2 promoted (static not-taken)
	tc.Insert(seg)
	b := e.Fetch(0)
	if b.Insts[2].UsedSlot || !b.Insts[2].Promoted {
		t.Error("promoted branch consumed a predictor slot")
	}
	if !b.Insts[2].Predicted == seg.Insts[2].Taken {
		t.Error("promoted prediction should follow the static direction")
	}
	// Only the branch @4 needs a dynamic prediction now (slot 0).
	if b.PredsUsed != 1 {
		t.Errorf("preds = %d, want 1", b.PredsUsed)
	}
}

func TestTraceSegmentEndingInReturn(t *testing.T) {
	e, tc, _ := newTrace(t)
	seg := &core.Segment{Start: 30, Insts: []core.SegInst{
		{PC: 30, Inst: isa.Inst{Op: isa.OpAdd, Rd: 5, Rs1: 5, Rs2: 5}},
		{PC: 31, Inst: isa.Inst{Op: isa.OpRet}},
	}, Reason: core.FinalTerminator}
	tc.Insert(seg)
	// Prime the RAS via an icache fetch of the call.
	e.Fetch(5)
	b := e.Fetch(30)
	if !b.FromTC {
		t.Fatal("expected hit")
	}
	if b.NextPC != 7 {
		t.Errorf("return target = %d, want 7", b.NextPC)
	}
	if b.Reason != stats.EndRetIndirTrap {
		t.Errorf("reason = %v", b.Reason)
	}
}

func TestTraceSegmentIndirectUsesPredictor(t *testing.T) {
	e, tc, _ := newTrace(t)
	prog := testProg(t)
	_ = prog
	seg := &core.Segment{Start: 22, Insts: []core.SegInst{
		{PC: 22, Inst: isa.Inst{Op: isa.OpNop}},
		{PC: 23, Inst: isa.Inst{Op: isa.OpJmpInd, Rs1: 2}},
	}, Reason: core.FinalTerminator}
	tc.Insert(seg)
	b := e.Fetch(22)
	if b.NextPC != 24 {
		t.Errorf("unknown indirect target predicted %d, want fallthrough 24", b.NextPC)
	}
	e.cfg.Indirect.Update(23, 10)
	b = e.Fetch(22)
	if b.NextPC != 10 {
		t.Errorf("indirect predicted %d, want 10", b.NextPC)
	}
}

func TestResolveEffectRestoresAndCorrects(t *testing.T) {
	e, tc, _ := newTrace(t)
	tc.Insert(testSegment())
	b := e.Fetch(0)
	// The diverging branch @4 was predicted not-taken; suppose it resolves
	// taken: restore state to after-the-branch with the actual outcome.
	var fi FetchedInst
	for i := range b.Insts {
		if b.Insts[i].PC == 4 {
			fi = b.Insts[i]
		}
	}
	e.ResolveEffect(&fi, true)
	// History: after slot0's not-taken push (bit 0), then actual taken.
	if e.Hist() != 0b01 {
		t.Errorf("hist after resolve = %b, want 01", e.Hist())
	}
}

func TestApplyEffects(t *testing.T) {
	e, _, _ := newTrace(t)
	fis := []*FetchedInst{
		{PC: 6, Inst: isa.Inst{Op: isa.OpCall, Target: 30}},
		{PC: 2, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ}, Predicted: true},
	}
	e.ApplyEffects(fis)
	if RASDepth(e.RAS()) != 1 {
		t.Errorf("RAS depth = %d", RASDepth(e.RAS()))
	}
	if e.Hist() != 1 {
		t.Errorf("hist = %b", e.Hist())
	}
	e.Restore(0, nil)
	if e.Hist() != 0 || e.RAS() != nil {
		t.Error("restore failed")
	}
}

func TestSplitLineFetchStopsAtMissingLine(t *testing.T) {
	// A 64B line holds 16 instructions; build a program with a long
	// straight-line run crossing a boundary.
	p := program.New("long")
	code := make([]isa.Inst, 64)
	for i := range code {
		code[i] = isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}
	}
	code[63] = isa.Inst{Op: isa.OpHalt}
	p.Code = code
	hier := smallHier()
	e := NewTraceEngine(TraceConfig{
		Prog:     p,
		TC:       mustTC(core.TraceCacheConfig{Entries: 64, Assoc: 4}),
		MBP:      bpred.NewTreeMBP(1 << 14),
		Indirect: bpred.NewIndirectPredictor(256),
		Hier:     hier,
	})
	// Fetch from pc=8: the block would cross into line 1 at pc=16, which
	// is not resident: terminate at the boundary.
	b := e.Fetch(8)
	if len(b.Insts) != 8 {
		t.Fatalf("insts = %d, want 8 (stop at line boundary)", len(b.Insts))
	}
	if b.Reason != stats.EndICache {
		t.Errorf("reason = %v", b.Reason)
	}
	// Warm line 1, then a crossing fetch proceeds to the full width.
	hier.FetchInst(isa.Addr(16))
	b = e.Fetch(8)
	if len(b.Insts) != 16 {
		t.Fatalf("split-line insts = %d, want 16", len(b.Insts))
	}
	if b.Reason != stats.EndMaxSize {
		t.Errorf("reason = %v", b.Reason)
	}
}

func TestICacheEngineReference(t *testing.T) {
	p := testProg(t)
	hier := &cache.Hierarchy{
		L1I: mustCache(cache.Config{Name: "bigicache", SizeBytes: 128 << 10, LineBytes: 64, Assoc: 4}),
		L1D: mustCache(cache.Config{Name: "l1d", SizeBytes: 1 << 16, LineBytes: 64, Assoc: 4}),
		L2:  mustCache(cache.Config{Name: "l2", SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8}),
	}
	e := NewICacheEngine(ICacheConfig{
		Prog:     p,
		Hier:     hier,
		Hybrid:   bpred.NewHybrid(),
		Indirect: bpred.NewIndirectPredictor(1 << 10),
	})
	b := e.Fetch(0)
	if len(b.Insts) != 3 || !b.Insts[2].UsedHybrid {
		t.Fatalf("icache engine fetch = %+v", b)
	}
	if b.FromTC {
		t.Error("icache engine cannot hit a trace cache")
	}
}

func TestRASPopEmptyPredictsFallthrough(t *testing.T) {
	target, rest := rasPop(nil, 41)
	if target != 42 || rest != nil {
		t.Errorf("empty pop = (%d, %v)", target, rest)
	}
}

func TestClampPC(t *testing.T) {
	if clampPC(-5, 10) != 0 || clampPC(15, 10) != 9 || clampPC(5, 10) != 5 {
		t.Error("clamp wrong")
	}
}

func TestTracePathAssocSelectsPredictedPath(t *testing.T) {
	tc := mustTC(core.TraceCacheConfig{Entries: 64, Assoc: 4, PathAssoc: true})
	mbp := bpred.NewTreeMBP(1 << 14)
	e := NewTraceEngine(TraceConfig{
		Prog:      testProg(t),
		TC:        tc,
		MBP:       mbp,
		Indirect:  bpred.NewIndirectPredictor(1 << 8),
		Hier:      smallHier(),
		PathAssoc: true,
	})
	// Two same-start segments: one embeds branch@2 not-taken, the other
	// taken (ending at 10's block).
	ntSeg := testSegment()
	tkSeg := &core.Segment{Start: 0, Insts: []core.SegInst{
		{PC: 0, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}},
		{PC: 1, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}},
		{PC: 2, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Rs1: 1, Rs2: 2, Target: 10}, Taken: true},
		{PC: 10, Inst: isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 3, Rs2: 3}},
	}, Reason: core.FinalTerminator}
	tc.Insert(ntSeg)
	tc.Insert(tkSeg)
	// Weakly-not-taken predictor: the not-taken segment should be chosen.
	b := e.Fetch(0)
	if !b.FromTC {
		t.Fatal("miss")
	}
	if len(b.Insts) < 4 || b.Insts[3].PC != 3 {
		t.Fatalf("selected wrong path: %+v", b.Insts)
	}
	// Train the first slot toward taken: selection flips.
	_, ctx := mbp.Predict(0, 0, 0, 0, 0)
	mbp.Update(ctx, true)
	mbp.Update(ctx, true)
	b = e.Fetch(0)
	if len(b.Insts) != 4 || b.Insts[3].PC != 10 {
		t.Fatalf("selection did not follow prediction: %+v", b.Insts)
	}
}

func TestTraceDisableInactiveIssueTruncates(t *testing.T) {
	tc := mustTC(core.TraceCacheConfig{Entries: 64, Assoc: 4})
	e := NewTraceEngine(TraceConfig{
		Prog:                 testProg(t),
		TC:                   tc,
		MBP:                  bpred.NewTreeMBP(1 << 14),
		Indirect:             bpred.NewIndirectPredictor(1 << 8),
		Hier:                 smallHier(),
		DisableInactiveIssue: true,
	})
	tc.Insert(testSegment())
	b := e.Fetch(0)
	// The weakly-not-taken predictor diverges at branch @4 (embedded
	// taken): with inactive issue disabled the bundle ends there.
	if len(b.Insts) != 5 {
		t.Fatalf("insts = %d, want 5 (no inactive suffix)", len(b.Insts))
	}
	for _, fi := range b.Insts {
		if fi.Inactive {
			t.Fatal("inactive instruction issued")
		}
	}
	if b.Reason != stats.EndPartialMatch {
		t.Errorf("reason = %v", b.Reason)
	}
}

func TestResolveEffectAllKinds(t *testing.T) {
	e, _, _ := newTrace(t)
	// Call: RAS push applied on resolve.
	call := FetchedInst{PC: 6, Inst: isa.Inst{Op: isa.OpCall, Target: 30}, HistBefore: 0b1, RASBefore: nil}
	e.ResolveEffect(&call, false)
	if e.Hist() != 0b1 || RASDepth(e.RAS()) != 1 {
		t.Errorf("call resolve: hist=%b depth=%d", e.Hist(), RASDepth(e.RAS()))
	}
	// Return: pops the restored RAS.
	ret := FetchedInst{PC: 31, Inst: isa.Inst{Op: isa.OpRet}, HistBefore: 0, RASBefore: e.RAS()}
	e.ResolveEffect(&ret, false)
	if RASDepth(e.RAS()) != 0 {
		t.Errorf("ret resolve depth = %d", RASDepth(e.RAS()))
	}
	// Indirect: no fetch-state effect beyond restore.
	ind := FetchedInst{PC: 23, Inst: isa.Inst{Op: isa.OpJmpInd}, HistBefore: 0b11, RASBefore: nil}
	e.ResolveEffect(&ind, false)
	if e.Hist() != 0b11 || e.RAS() != nil {
		t.Error("indirect resolve must restore state unchanged")
	}
}

func TestApplyEffectsResumeTargets(t *testing.T) {
	e, _, _ := newTrace(t)
	// Suffix: taken branch -> jmp -> plain add; resume after the add.
	resume := e.ApplyEffects([]*FetchedInst{
		{PC: 2, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 10}, Predicted: true},
		{PC: 10, Inst: isa.Inst{Op: isa.OpAdd}},
	})
	if resume != 11 {
		t.Errorf("resume = %d, want 11", resume)
	}
	if e.Hist() != 1 {
		t.Errorf("hist = %b", e.Hist())
	}
	// Not-taken branch falls through.
	e.Restore(0, nil)
	if r := e.ApplyEffects([]*FetchedInst{
		{PC: 2, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 10}, Predicted: false},
	}); r != 3 {
		t.Errorf("not-taken resume = %d", r)
	}
	// Jump resumes at its target.
	if r := e.ApplyEffects([]*FetchedInst{
		{PC: 5, Inst: isa.Inst{Op: isa.OpJmp, Target: 40}},
	}); r != 40 {
		t.Errorf("jmp resume = %d", r)
	}
	// Call pushes and resumes at the callee.
	e.Restore(0, nil)
	if r := e.ApplyEffects([]*FetchedInst{
		{PC: 6, Inst: isa.Inst{Op: isa.OpCall, Target: 30}},
	}); r != 30 || RASDepth(e.RAS()) != 1 {
		t.Errorf("call resume = %d depth = %d", r, RASDepth(e.RAS()))
	}
	// Return pops and resumes at the return address.
	if r := e.ApplyEffects([]*FetchedInst{
		{PC: 31, Inst: isa.Inst{Op: isa.OpRet}},
	}); r != 7 || RASDepth(e.RAS()) != 0 {
		t.Errorf("ret resume = %d depth = %d", r, RASDepth(e.RAS()))
	}
	// Indirect uses its fetch-time predicted target.
	if r := e.ApplyEffects([]*FetchedInst{
		{PC: 23, Inst: isa.Inst{Op: isa.OpJmpInd}, PredTarget: 12},
	}); r != 12 {
		t.Errorf("indirect resume = %d", r)
	}
}

func TestWalkSegmentBeyondPredictorBandwidth(t *testing.T) {
	// A segment with more branches than predictor slots: the extra branch
	// is treated as diverged-with-embedded-prediction.
	e, tc, _ := newTrace(t)
	insts := []core.SegInst{
		{PC: 0, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 100}, Taken: false},
		{PC: 1, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 100}, Taken: false},
		{PC: 2, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 100}, Taken: false},
		{PC: 3, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 100}, Taken: false},
		{PC: 4, Inst: isa.Inst{Op: isa.OpAdd}},
	}
	tc.Insert(&core.Segment{Start: 0, Insts: insts, Reason: core.FinalMaxBranches})
	b := e.Fetch(0)
	if b.PredsUsed != 3 {
		t.Errorf("preds = %d, want 3 (bandwidth limit)", b.PredsUsed)
	}
	if !b.Insts[4].Inactive {
		t.Error("instructions past the 4th branch must be inactive")
	}
	if b.Reason != stats.EndPartialMatch {
		t.Errorf("reason = %v", b.Reason)
	}
}

func TestWalkSegmentPromotedInactiveDoesNotPushHistory(t *testing.T) {
	e, tc, _ := newTrace(t)
	p1 := core.SegInst{PC: 2, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 10}, Taken: true, Promoted: true}
	insts := []core.SegInst{
		{PC: 0, Inst: isa.Inst{Op: isa.OpAdd}},
		// Diverging dynamic branch (embedded taken, predictor says not).
		{PC: 1, Inst: isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Target: 2}, Taken: true},
		p1, // inactive promoted branch: no history push
		{PC: 10, Inst: isa.Inst{Op: isa.OpAdd}},
	}
	tc.Insert(&core.Segment{Start: 0, Insts: insts, Reason: core.FinalAtomic})
	before := e.Hist()
	b := e.Fetch(0)
	if b.Reason != stats.EndPartialMatch {
		t.Fatalf("reason = %v", b.Reason)
	}
	// Exactly one push (the diverging dynamic branch).
	if e.Hist() != before<<1 {
		t.Errorf("hist = %b, want single push of 0", e.Hist())
	}
}

// mustCache builds a cache from a known-good test config.
func mustCache(cfg cache.Config) *cache.Cache {
	c, err := cache.New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// mustTC builds a trace cache from a known-good test config.
func mustTC(cfg core.TraceCacheConfig) *core.TraceCache {
	tc, err := core.NewTraceCache(cfg)
	if err != nil {
		panic(err)
	}
	return tc
}
