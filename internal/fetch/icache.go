package fetch

import (
	"tracecache/internal/bpred"
	"tracecache/internal/cache"
	"tracecache/internal/isa"
	"tracecache/internal/obs"
	"tracecache/internal/program"
	"tracecache/internal/stats"
)

// condPredictor supplies the prediction for the conditional branch that
// terminates an instruction-cache fetch block, and a function that records
// the predictor's update context on the fetched instruction.
type condPredictor func(brPC int) (taken bool, annotate func(*FetchedInst))

// icacheFetcher collects one fetch block per cycle from an instruction
// cache, with split-line fetching: a fetch may continue into the next
// cache line, but terminates at the boundary if the second line is not
// resident (Section 4, footnote 2).
type icacheFetcher struct {
	prog      *program.Program
	hier      *cache.Hierarchy
	maxWidth  int
	lineInsts int
}

func newICacheFetcher(prog *program.Program, hier *cache.Hierarchy, maxWidth int) icacheFetcher {
	return icacheFetcher{
		prog:      prog,
		hier:      hier,
		maxWidth:  maxWidth,
		lineInsts: hier.L1I.LineBytes() / isa.InstBytes,
	}
}

// fetchBlock fills b with one fetch block starting at pc. fs is the
// speculative fetch state, predictBr the conditional-branch predictor, ind
// the indirect-jump predictor.
func (f *icacheFetcher) fetchBlock(b *Bundle, pc int, fs *frontState, predictBr condPredictor, ind *bpred.IndirectPredictor) {
	code := f.prog.Code
	b.Latency = f.hier.FetchInst(isa.Addr(pc))
	line := pc / f.lineInsts
	crossed := false
	b.NextPC = pc
	for len(b.Insts) < f.maxWidth && pc < len(code) {
		if l := pc / f.lineInsts; l != line {
			// Crossing a line boundary: split-line fetch reaches one more
			// line, and only if it is resident.
			if crossed || !f.hier.ProbeInst(isa.Addr(pc)) {
				break
			}
			f.hier.FetchInst(isa.Addr(pc)) // hit; refresh LRU
			line, crossed = l, true
		}
		in := code[pc]
		// Construct in place: the bundle slice is the instruction's only
		// home, so the hot loop never copies a FetchedInst by value.
		b.Insts = append(b.Insts, FetchedInst{
			PC: pc, Inst: in,
			BlockStart: len(b.Insts) == 0,
			HistBefore: fs.hist.Reg,
			RASBefore:  fs.ras,
			PredTarget: pc + 1,
		})
		fi := &b.Insts[len(b.Insts)-1]
		stop := false
		switch {
		case in.IsCondBranch():
			taken, annotate := predictBr(pc)
			fi.Predicted = taken
			annotate(fi)
			fs.hist.Push(taken)
			if taken {
				fi.PredTarget = in.Target
			}
			b.PredsUsed++
			stop = true
		case in.Op == isa.OpJmp:
			fi.PredTarget = in.Target
			stop = true
		case in.Op == isa.OpCall:
			fs.ras = rasPush(fs.ras, pc+1)
			fi.PredTarget = in.Target
			stop = true
		case in.Op == isa.OpRet:
			fi.PredTarget, fs.ras = rasPop(fs.ras, pc)
			stop = true
		case in.IsIndirect():
			if t, ok := ind.Predict(pc); ok {
				fi.PredTarget = t
			}
			stop = true
		case in.IsTrap() || in.Op == isa.OpHalt:
			b.EndsInSerial = true
			stop = true
		}
		b.NextPC = fi.PredTarget
		pc++
		if stop {
			break
		}
	}
	if len(b.Insts) == f.maxWidth {
		b.Reason = stats.EndMaxSize
	} else {
		b.Reason = stats.EndICache
	}
}

// ICacheEngine is the reference front end of Section 3: a large
// dual-ported instruction cache supplying a single fetch block per cycle,
// predicted by an aggressive hybrid single-branch predictor.
type ICacheEngine struct {
	frontState
	icf    icacheFetcher
	hybrid *bpred.Hybrid
	ind    *bpred.IndirectPredictor
	bundle Bundle
}

// ICacheConfig parameterises the reference front end.
type ICacheConfig struct {
	Prog     *program.Program
	Hier     *cache.Hierarchy
	Hybrid   *bpred.Hybrid
	Indirect *bpred.IndirectPredictor
	MaxWidth int // default 16
	HistBits uint
}

// NewICacheEngine builds the reference front end.
func NewICacheEngine(cfg ICacheConfig) *ICacheEngine {
	if cfg.MaxWidth <= 0 {
		cfg.MaxWidth = stats.MaxFetchWidth
	}
	if cfg.HistBits == 0 {
		cfg.HistBits = 15
	}
	e := &ICacheEngine{
		icf:    newICacheFetcher(cfg.Prog, cfg.Hier, cfg.MaxWidth),
		hybrid: cfg.Hybrid,
		ind:    cfg.Indirect,
	}
	e.hist.Bits = cfg.HistBits
	e.bundle.Insts = make([]FetchedInst, 0, cfg.MaxWidth)
	return e
}

// Fetch implements Engine.
func (e *ICacheEngine) Fetch(pc int) *Bundle {
	b := &e.bundle
	*b = Bundle{Insts: b.Insts[:0]}
	pc = clampPC(pc, len(e.icf.prog.Code))
	e.icf.fetchBlock(b, pc, &e.frontState, func(brPC int) (bool, func(*FetchedInst)) {
		taken, ctx := e.hybrid.Predict(brPC, e.hist.Reg)
		return taken, func(fi *FetchedInst) {
			fi.UsedHybrid = true
			fi.HCtx = ctx
		}
	}, e.ind)
	if e.obs.Enabled(obs.KindICacheFetch) {
		e.obs.Emit(obs.Event{
			Kind: obs.KindICacheFetch, PC: pc,
			V1: uint64(len(b.Insts)), V2: uint64(b.Latency),
		})
	}
	return b
}
