package fetch

import (
	"tracecache/internal/bpred"
	"tracecache/internal/cache"
	"tracecache/internal/core"
	"tracecache/internal/isa"
	"tracecache/internal/obs"
	"tracecache/internal/program"
	"tracecache/internal/stats"
)

// TraceConfig parameterises the trace-cache front end.
type TraceConfig struct {
	Prog     *program.Program
	TC       *core.TraceCache
	MBP      bpred.MultiPredictor
	Indirect *bpred.IndirectPredictor
	Hier     *cache.Hierarchy // L1I is the small supporting icache
	MaxWidth int              // default 16
	HistBits uint             // default 14 (16K-entry gshare)
	// PathAssoc selects among same-start segments by predicted path
	// (requires a path-associative trace cache).
	PathAssoc bool
	// DisableInactiveIssue reverts to the pre-inactive-issue trace cache:
	// instructions past the predicted path are not issued at all.
	DisableInactiveIssue bool
}

// TraceEngine is the trace-cache fetch mechanism: a trace cache lookup per
// cycle, sequenced by a multiple branch predictor, with inactive issue
// (all blocks of a hit segment are issued; blocks past the predicted path
// are inactive) and a supporting instruction cache on trace cache misses.
type TraceEngine struct {
	frontState
	cfg    TraceConfig
	icf    icacheFetcher
	bundle Bundle
}

// NewTraceEngine builds the trace-cache front end.
func NewTraceEngine(cfg TraceConfig) *TraceEngine {
	if cfg.MaxWidth <= 0 {
		cfg.MaxWidth = stats.MaxFetchWidth
	}
	if cfg.HistBits == 0 {
		cfg.HistBits = 14
	}
	e := &TraceEngine{
		cfg: cfg,
		icf: newICacheFetcher(cfg.Prog, cfg.Hier, cfg.MaxWidth),
	}
	e.hist.Bits = cfg.HistBits
	e.bundle.Insts = make([]FetchedInst, 0, cfg.MaxWidth)
	return e
}

// Fetch implements Engine: a trace cache lookup, falling back to the
// supporting instruction cache on a miss.
//
//tc:hotpath
func (e *TraceEngine) Fetch(pc int) *Bundle {
	b := &e.bundle
	*b = Bundle{Insts: b.Insts[:0]}
	pc = clampPC(pc, len(e.cfg.Prog.Code))
	var seg *core.Segment
	if e.cfg.PathAssoc {
		seg = e.cfg.TC.LookupPath(pc, e.predictPathBits(pc))
	} else {
		seg = e.cfg.TC.Lookup(pc)
	}
	if seg == nil {
		b.TCMiss = true
		if e.obs.Enabled(obs.KindTCMiss) {
			e.obs.Emit(obs.Event{Kind: obs.KindTCMiss, PC: pc})
		}
		// The predictor callback runs only on the trace-cache-miss path.
		// go build -gcflags=-m: the outer literal does not escape (stack
		// allocated); only the inner per-branch closure escapes, once per
		// predicted branch of a miss fill — amortized, and carrying ctx
		// state that has no fixed-size home.
		//tcvet:ignore hotalloc miss-path closure; outer literal is stack-allocated per escape analysis
		e.icf.fetchBlock(b, pc, &e.frontState, func(brPC int) (bool, func(*FetchedInst)) {
			taken, ctx := e.cfg.MBP.Predict(pc, brPC, e.hist.Reg, 0, 0)
			return taken, func(fi *FetchedInst) {
				fi.UsedSlot = true
				fi.Ctx = ctx
			}
		}, e.cfg.Indirect)
		return b
	}
	b.FromTC = true
	e.walkSegment(b, seg)
	if e.obs.Enabled(obs.KindTCHit) {
		e.obs.Emit(obs.Event{
			Kind: obs.KindTCHit, PC: pc,
			V1: uint64(len(b.Insts)), V2: uint64(b.PredsUsed),
		})
	}
	return b
}

// predictPathBits precomputes the predicted outcomes of up to three
// branches for path-associative segment selection. The predictions are
// pure reads; walkSegment recomputes them identically.
//
//tc:hotpath
func (e *TraceEngine) predictPathBits(pc int) uint8 {
	var path uint8
	for slot := 0; slot < e.cfg.MBP.MaxSlots(); slot++ {
		taken, _ := e.cfg.MBP.Predict(pc, pc, e.hist.Reg, slot, path)
		if taken {
			path |= 1 << uint(slot)
		}
	}
	return path
}

// targetOf returns the PC following a conditional branch given a
// direction.
func targetOf(si *core.SegInst, taken bool) int {
	if taken {
		return si.Inst.Target
	}
	return si.PC + 1
}

// walkSegment issues a hit segment: the multiple branch predictor
// sequences through the embedded branches; the first disagreement ends the
// active portion and the remainder issues inactively.
//
//tc:hotpath
func (e *TraceEngine) walkSegment(b *Bundle, seg *core.Segment) {
	histStart := e.hist.Reg
	maxSlots := e.cfg.MBP.MaxSlots()
	var (
		diverged   bool
		path       uint8
		preds      int
		blockStart = true
	)
	for i := range seg.Insts {
		si := &seg.Insts[i]
		if diverged && e.cfg.DisableInactiveIssue {
			break
		}
		// Construct in place: the bundle slice is the instruction's only
		// home, so the hot loop never copies a FetchedInst by value.
		b.Insts = append(b.Insts, FetchedInst{
			PC: si.PC, Inst: si.Inst,
			BlockStart: blockStart,
			Inactive:   diverged,
			HistBefore: e.hist.Reg,
			RASBefore:  e.ras,
			PredTarget: si.PC + 1,
		})
		fi := &b.Insts[len(b.Insts)-1]
		blockStart = false
		switch {
		case si.Inst.IsCondBranch() && !si.Promoted:
			blockStart = true
			if !diverged && preds < maxSlots {
				taken, ctx := e.cfg.MBP.Predict(seg.Start, si.PC, histStart, preds, path)
				fi.UsedSlot, fi.Ctx, fi.Predicted = true, ctx, taken
				if taken {
					path |= 1 << uint(preds)
				}
				preds++
				e.hist.Push(taken)
				fi.PredTarget = targetOf(si, taken)
				if taken != si.Taken {
					// Partial match: the predictor leaves the segment
					// here; the rest issues inactively.
					diverged = true
					b.NextPC = fi.PredTarget
				}
			} else {
				// Inactive (or past the predictor's bandwidth): the
				// segment's embedded outcome stands in for a prediction.
				fi.Predicted = si.Taken
				fi.PredTarget = targetOf(si, si.Taken)
				if !diverged {
					diverged = true
					b.NextPC = fi.PredTarget
				}
			}
		case si.Promoted:
			fi.Promoted, fi.Predicted = true, si.Taken
			fi.PredTarget = targetOf(si, si.Taken)
			if !diverged {
				e.hist.Push(si.Taken)
			}
		case si.Inst.Op == isa.OpCall:
			fi.PredTarget = si.Inst.Target
			if !diverged {
				e.ras = rasPush(e.ras, si.PC+1)
			}
		case si.Inst.Op == isa.OpJmp:
			fi.PredTarget = si.Inst.Target
		case si.Inst.Op == isa.OpRet:
			if !diverged {
				fi.PredTarget, e.ras = rasPop(e.ras, si.PC)
			}
		case si.Inst.IsIndirect():
			if t, ok := e.cfg.Indirect.Predict(si.PC); ok {
				fi.PredTarget = t
			}
		case si.Inst.IsTrap() || si.Inst.Op == isa.OpHalt:
			// Only an active serializing instruction blocks fetch; an
			// inactive one is dispatched (and blocks) only if it is later
			// injected on a misprediction.
			if !diverged {
				b.EndsInSerial = true
			}
		}
		if !diverged {
			b.NextPC = fi.PredTarget
		}
	}
	b.PredsUsed = preds
	if diverged {
		b.Reason = stats.EndPartialMatch
		return
	}
	switch seg.Reason {
	case core.FinalMaxSize:
		b.Reason = stats.EndMaxSize
	case core.FinalMaxBranches:
		b.Reason = stats.EndMaxBRs
	case core.FinalTerminator:
		b.Reason = stats.EndRetIndirTrap
	default:
		b.Reason = stats.EndAtomicBlocks
	}
}
