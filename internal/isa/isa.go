// Package isa defines the instruction set architecture simulated by the
// trace cache model: a small load/store RISC ISA with fixed-size
// instructions, conditional branches, direct and indirect jumps,
// call/return, and a serializing trap instruction.
//
// The ISA stands in for the SimpleScalar PISA instruction set used by the
// paper. Instructions are represented as decoded structs rather than bit
// encodings; the fetch and cache models only need each instruction's
// 4-byte footprint, which Addr exposes.
package isa

import "fmt"

// Reg names an architectural register. Register 0 is hardwired to zero.
type Reg uint8

// NumRegs is the number of architectural registers.
const NumRegs = 32

// ZeroReg reads as zero and ignores writes.
const ZeroReg Reg = 0

// InstBytes is the storage footprint of one instruction, used by the
// instruction cache and trace cache models.
const InstBytes = 4

// Addr converts an instruction index (PC) into a byte address for cache
// indexing.
func Addr(pc int) uint64 { return uint64(pc) * InstBytes }

// Op identifies an operation.
type Op uint8

// Operations. ALU operations take two register sources (or a source and an
// immediate) and write a destination. Memory operations use base+offset
// addressing. Control operations are classified by the Is* helpers.
const (
	OpNop Op = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpAddI   // rd = rs1 + imm
	OpMulI   // rd = rs1 * imm
	OpAndI   // rd = rs1 & imm
	OpShrI   // rd = uint(rs1) >> (imm & 63)
	OpLoadI  // rd = imm
	OpLoad   // rd = mem[rs1 + imm]
	OpStore  // mem[rs1 + imm] = rs2
	OpBr     // if cond(rs1, rs2) goto Target
	OpJmp    // goto Target
	OpCall   // push return address, goto Target
	OpRet    // pop return address, jump there
	OpJmpInd // goto value(rs1)
	OpTrap   // serializing instruction
	OpHalt   // terminate the program
	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddI: "addi", OpMulI: "muli", OpAndI: "andi", OpShrI: "shri", OpLoadI: "li",
	OpLoad: "ld", OpStore: "st", OpBr: "br", OpJmp: "jmp", OpCall: "call",
	OpRet: "ret", OpJmpInd: "jr", OpTrap: "trap", OpHalt: "halt",
}

// String returns the mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o names a defined operation.
func (o Op) Valid() bool { return o < numOps }

// Cond is the comparison applied by a conditional branch.
type Cond uint8

// Branch conditions compare the values of Rs1 and Rs2.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondGE
	CondGT
	CondLE
	numConds
)

var condNames = [numConds]string{"eq", "ne", "lt", "ge", "gt", "le"}

// String returns the mnemonic suffix for the condition.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Valid reports whether c names a defined condition.
func (c Cond) Valid() bool { return c < numConds }

// Eval applies the condition to two operand values.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondGE:
		return a >= b
	case CondGT:
		return a > b
	case CondLE:
		return a <= b
	}
	return false
}

// Inst is one decoded instruction.
type Inst struct {
	Op     Op
	Cond   Cond // valid when Op == OpBr
	Rd     Reg  // destination register
	Rs1    Reg  // first source register (also base for memory, target for jr)
	Rs2    Reg  // second source register (also store data)
	Imm    int64
	Target int // branch/jump/call target as an instruction index
}

// IsControl reports whether the instruction can redirect the PC.
func (i Inst) IsControl() bool {
	switch i.Op {
	case OpBr, OpJmp, OpCall, OpRet, OpJmpInd, OpTrap, OpHalt:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Inst) IsCondBranch() bool { return i.Op == OpBr }

// IsUncondDirect reports whether the instruction is an unconditional
// direct control transfer (jump or call). Per the paper, these do not
// terminate fetch blocks within trace segments.
func (i Inst) IsUncondDirect() bool { return i.Op == OpJmp || i.Op == OpCall }

// IsReturn reports whether the instruction is a subroutine return.
func (i Inst) IsReturn() bool { return i.Op == OpRet }

// IsIndirect reports whether the instruction is an indirect jump (not a
// return).
func (i Inst) IsIndirect() bool { return i.Op == OpJmpInd }

// IsTrap reports whether the instruction is a serializing trap.
func (i Inst) IsTrap() bool { return i.Op == OpTrap }

// IsLoad reports whether the instruction reads memory.
func (i Inst) IsLoad() bool { return i.Op == OpLoad }

// IsStore reports whether the instruction writes memory.
func (i Inst) IsStore() bool { return i.Op == OpStore }

// IsMem reports whether the instruction accesses memory.
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// EndsFetchBlock reports whether the instruction terminates a fetch block.
// Conditional branches end fetch blocks (a fetch block runs from the
// current fetch address to the next control instruction). Unconditional
// direct jumps and calls also end the *contiguous* run of instructions but,
// within trace segments, do not count toward the three-branch limit and do
// not terminate the segment. Returns, indirect jumps, traps and halts
// terminate the segment itself; see TerminatesSegment.
func (i Inst) EndsFetchBlock() bool { return i.IsControl() }

// TerminatesSegment reports whether the instruction forces the fill unit to
// finalize the pending trace segment (returns, indirect jumps, and
// serializing instructions, per Section 3 of the paper).
func (i Inst) TerminatesSegment() bool {
	switch i.Op {
	case OpRet, OpJmpInd, OpTrap, OpHalt:
		return true
	}
	return false
}

// WritesReg returns the destination register and whether the instruction
// writes one.
func (i Inst) WritesReg() (Reg, bool) {
	switch i.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpAddI, OpMulI, OpAndI, OpShrI, OpLoadI, OpLoad:
		if i.Rd == ZeroReg {
			return 0, false
		}
		return i.Rd, true
	}
	return 0, false
}

// SrcRegs appends the source registers read by the instruction to dst and
// returns the extended slice. Register 0 is never reported (it is constant).
func (i Inst) SrcRegs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != ZeroReg {
			dst = append(dst, r)
		}
	}
	switch i.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr:
		add(i.Rs1)
		add(i.Rs2)
	case OpAddI, OpMulI, OpAndI, OpShrI:
		add(i.Rs1)
	case OpLoad:
		add(i.Rs1)
	case OpStore:
		add(i.Rs1)
		add(i.Rs2)
	case OpBr:
		add(i.Rs1)
		add(i.Rs2)
	case OpJmpInd:
		add(i.Rs1)
	}
	return dst
}

// Latency returns the execution latency in cycles for the instruction,
// excluding memory-hierarchy time for loads (the data cache model adds
// that). The values follow common superscalar models: single-cycle simple
// ALU, 3-cycle multiply, 12-cycle divide, 1-cycle address generation.
func (i Inst) Latency() int {
	switch i.Op {
	case OpMul, OpMulI:
		return 3
	case OpDiv:
		return 12
	default:
		return 1
	}
}

// String renders the instruction in assembly-like form.
func (i Inst) String() string {
	switch i.Op {
	case OpNop, OpTrap, OpHalt, OpRet:
		return i.Op.String()
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case OpAddI, OpMulI, OpAndI, OpShrI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpLoadI:
		return fmt.Sprintf("li r%d, %d", i.Rd, i.Imm)
	case OpLoad:
		return fmt.Sprintf("ld r%d, %d(r%d)", i.Rd, i.Imm, i.Rs1)
	case OpStore:
		return fmt.Sprintf("st r%d, %d(r%d)", i.Rs2, i.Imm, i.Rs1)
	case OpBr:
		return fmt.Sprintf("br.%s r%d, r%d, @%d", i.Cond, i.Rs1, i.Rs2, i.Target)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", i.Target)
	case OpCall:
		return fmt.Sprintf("call @%d", i.Target)
	case OpJmpInd:
		return fmt.Sprintf("jr r%d", i.Rs1)
	}
	return fmt.Sprintf("%s ?", i.Op)
}

// Validate reports an error if the instruction is malformed with respect to
// a program of length codeLen.
func (i Inst) Validate(codeLen int) error {
	if !i.Op.Valid() {
		return fmt.Errorf("isa: invalid op %d", i.Op)
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return fmt.Errorf("isa: %v: register out of range", i)
	}
	switch i.Op {
	case OpBr:
		if !i.Cond.Valid() {
			return fmt.Errorf("isa: %v: invalid condition", i)
		}
		fallthrough
	case OpJmp, OpCall:
		if i.Target < 0 || i.Target >= codeLen {
			return fmt.Errorf("isa: %v: target %d out of range [0,%d)", i, i.Target, codeLen)
		}
	}
	return nil
}
