package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpNop: "nop", OpAdd: "add", OpLoad: "ld", OpStore: "st",
		OpBr: "br", OpJmp: "jmp", OpCall: "call", OpRet: "ret",
		OpJmpInd: "jr", OpTrap: "trap", OpHalt: "halt",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("invalid op string = %q", got)
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int64
		want bool
	}{
		{CondEQ, 1, 1, true},
		{CondEQ, 1, 2, false},
		{CondNE, 1, 2, true},
		{CondNE, 2, 2, false},
		{CondLT, -5, 3, true},
		{CondLT, 3, 3, false},
		{CondGE, 3, 3, true},
		{CondGE, 2, 3, false},
		{CondGT, 4, 3, true},
		{CondGT, 3, 3, false},
		{CondLE, 3, 3, true},
		{CondLE, 4, 3, false},
		{Cond(99), 1, 1, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("Cond(%v).Eval(%d,%d) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

// Property: exactly one of (taken, not taken) holds for complementary
// condition pairs on any operands.
func TestCondComplementProperty(t *testing.T) {
	pairs := [][2]Cond{{CondEQ, CondNE}, {CondLT, CondGE}, {CondGT, CondLE}}
	f := func(a, b int64) bool {
		for _, p := range pairs {
			if p[0].Eval(a, b) == p[1].Eval(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		in        Inst
		control   bool
		condBr    bool
		uncond    bool
		termSeg   bool
		endsBlock bool
	}{
		{Inst{Op: OpAdd}, false, false, false, false, false},
		{Inst{Op: OpLoad}, false, false, false, false, false},
		{Inst{Op: OpBr}, true, true, false, false, true},
		{Inst{Op: OpJmp}, true, false, true, false, true},
		{Inst{Op: OpCall}, true, false, true, false, true},
		{Inst{Op: OpRet}, true, false, false, true, true},
		{Inst{Op: OpJmpInd}, true, false, false, true, true},
		{Inst{Op: OpTrap}, true, false, false, true, true},
		{Inst{Op: OpHalt}, true, false, false, true, true},
	}
	for _, c := range cases {
		if got := c.in.IsControl(); got != c.control {
			t.Errorf("%v IsControl = %v, want %v", c.in.Op, got, c.control)
		}
		if got := c.in.IsCondBranch(); got != c.condBr {
			t.Errorf("%v IsCondBranch = %v, want %v", c.in.Op, got, c.condBr)
		}
		if got := c.in.IsUncondDirect(); got != c.uncond {
			t.Errorf("%v IsUncondDirect = %v, want %v", c.in.Op, got, c.uncond)
		}
		if got := c.in.TerminatesSegment(); got != c.termSeg {
			t.Errorf("%v TerminatesSegment = %v, want %v", c.in.Op, got, c.termSeg)
		}
		if got := c.in.EndsFetchBlock(); got != c.endsBlock {
			t.Errorf("%v EndsFetchBlock = %v, want %v", c.in.Op, got, c.endsBlock)
		}
	}
}

func TestWritesReg(t *testing.T) {
	if r, ok := (Inst{Op: OpAdd, Rd: 5}).WritesReg(); !ok || r != 5 {
		t.Errorf("add r5 WritesReg = (%d,%v)", r, ok)
	}
	if _, ok := (Inst{Op: OpAdd, Rd: ZeroReg}).WritesReg(); ok {
		t.Error("write to r0 should be discarded")
	}
	if _, ok := (Inst{Op: OpStore, Rd: 5}).WritesReg(); ok {
		t.Error("store writes no register")
	}
	if r, ok := (Inst{Op: OpLoad, Rd: 7}).WritesReg(); !ok || r != 7 {
		t.Errorf("load WritesReg = (%d,%v)", r, ok)
	}
	if _, ok := (Inst{Op: OpBr, Rd: 3}).WritesReg(); ok {
		t.Error("branch writes no register")
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: OpAdd, Rs1: 1, Rs2: 2}, []Reg{1, 2}},
		{Inst{Op: OpAdd, Rs1: 0, Rs2: 2}, []Reg{2}},
		{Inst{Op: OpAddI, Rs1: 3}, []Reg{3}},
		{Inst{Op: OpLoadI}, nil},
		{Inst{Op: OpLoad, Rs1: 4}, []Reg{4}},
		{Inst{Op: OpStore, Rs1: 4, Rs2: 5}, []Reg{4, 5}},
		{Inst{Op: OpBr, Rs1: 6, Rs2: 7}, []Reg{6, 7}},
		{Inst{Op: OpJmpInd, Rs1: 8}, []Reg{8}},
		{Inst{Op: OpJmp}, nil},
		{Inst{Op: OpRet}, nil},
	}
	for _, c := range cases {
		got := c.in.SrcRegs(nil)
		if len(got) != len(c.want) {
			t.Errorf("%v SrcRegs = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v SrcRegs = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestSrcRegsAppends(t *testing.T) {
	base := []Reg{9}
	got := (Inst{Op: OpAdd, Rs1: 1, Rs2: 2}).SrcRegs(base)
	if len(got) != 3 || got[0] != 9 || got[1] != 1 || got[2] != 2 {
		t.Errorf("SrcRegs append = %v", got)
	}
}

func TestLatency(t *testing.T) {
	if got := (Inst{Op: OpAdd}).Latency(); got != 1 {
		t.Errorf("add latency = %d", got)
	}
	if got := (Inst{Op: OpMul}).Latency(); got != 3 {
		t.Errorf("mul latency = %d", got)
	}
	if got := (Inst{Op: OpDiv}).Latency(); got != 12 {
		t.Errorf("div latency = %d", got)
	}
	if got := (Inst{Op: OpLoad}).Latency(); got != 1 {
		t.Errorf("load agen latency = %d", got)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAddI, Rd: 1, Rs1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: OpLoadI, Rd: 9, Imm: 42}, "li r9, 42"},
		{Inst{Op: OpLoad, Rd: 1, Rs1: 2, Imm: 8}, "ld r1, 8(r2)"},
		{Inst{Op: OpStore, Rs1: 2, Rs2: 3, Imm: 16}, "st r3, 16(r2)"},
		{Inst{Op: OpBr, Cond: CondLT, Rs1: 1, Rs2: 2, Target: 77}, "br.lt r1, r2, @77"},
		{Inst{Op: OpJmp, Target: 5}, "jmp @5"},
		{Inst{Op: OpCall, Target: 6}, "call @6"},
		{Inst{Op: OpJmpInd, Rs1: 4}, "jr r4"},
		{Inst{Op: OpRet}, "ret"},
		{Inst{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}).Validate(10); err != nil {
		t.Errorf("valid add: %v", err)
	}
	if err := (Inst{Op: Op(250)}).Validate(10); err == nil {
		t.Error("invalid op accepted")
	}
	if err := (Inst{Op: OpAdd, Rd: 40}).Validate(10); err == nil {
		t.Error("out-of-range register accepted")
	}
	if err := (Inst{Op: OpBr, Cond: Cond(40), Target: 5}).Validate(10); err == nil {
		t.Error("invalid condition accepted")
	}
	if err := (Inst{Op: OpBr, Cond: CondEQ, Target: 10}).Validate(10); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	if err := (Inst{Op: OpJmp, Target: -1}).Validate(10); err == nil {
		t.Error("negative jump target accepted")
	}
	if err := (Inst{Op: OpCall, Target: 9}).Validate(10); err != nil {
		t.Errorf("valid call: %v", err)
	}
}

func TestAddr(t *testing.T) {
	if Addr(0) != 0 || Addr(1) != 4 || Addr(100) != 400 {
		t.Error("Addr must scale by InstBytes")
	}
}

func TestPredicateHelpers(t *testing.T) {
	if !(Inst{Op: OpRet}).IsReturn() || (Inst{Op: OpJmp}).IsReturn() {
		t.Error("IsReturn")
	}
	if !(Inst{Op: OpJmpInd}).IsIndirect() || (Inst{Op: OpRet}).IsIndirect() {
		t.Error("IsIndirect")
	}
	if !(Inst{Op: OpTrap}).IsTrap() || (Inst{Op: OpHalt}).IsTrap() {
		t.Error("IsTrap")
	}
	if !(Inst{Op: OpLoad}).IsLoad() || (Inst{Op: OpStore}).IsLoad() {
		t.Error("IsLoad")
	}
	if !(Inst{Op: OpStore}).IsStore() || (Inst{Op: OpLoad}).IsStore() {
		t.Error("IsStore")
	}
	if !(Inst{Op: OpLoad}).IsMem() || !(Inst{Op: OpStore}).IsMem() || (Inst{Op: OpAdd}).IsMem() {
		t.Error("IsMem")
	}
}

func TestShrISemantics(t *testing.T) {
	in := Inst{Op: OpShrI, Rd: 1, Rs1: 2, Imm: 8}
	if got := in.String(); got != "shri r1, r2, 8" {
		t.Errorf("shri string = %q", got)
	}
	if r, ok := in.WritesReg(); !ok || r != 1 {
		t.Error("shri WritesReg")
	}
	srcs := in.SrcRegs(nil)
	if len(srcs) != 1 || srcs[0] != 2 {
		t.Errorf("shri srcs = %v", srcs)
	}
}
