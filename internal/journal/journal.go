// Package journal persists one JSONL record per simulation request, so a
// sweep's full history — which points ran, how they were produced
// (cold, checkpoint-forked, or shared from the memo), what they measured,
// and how long they took — survives the process and can be summarized or
// diffed later without re-simulating anything.
//
// The format is append-only JSON Lines: one compact JSON object per line.
// Each record — JSON plus its trailing newline — is marshaled into one
// buffer and issued as a single Write, under a mutex against goroutines
// of the same Writer and on an O_APPEND descriptor against other
// processes (POSIX makes each O_APPEND write one atomic append), so any
// number of appenders sharing a journal file — a tcserve daemon and a
// CLI run, say — interleave at whole-record granularity, never inside a
// line. A process killed mid-write leaves at most one truncated final
// line, which readers skip (with a warning flag) rather than rejecting
// the whole journal; corruption anywhere else is an error.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"tracecache/internal/stats"
)

// Record is one journal line: a run request and its outcome.
type Record struct {
	// Time is the record's wall-clock timestamp in RFC 3339 UTC.
	Time string `json:"time,omitempty"`
	// Config and Benchmark identify the sweep point.
	Config    string `json:"config"`
	Benchmark string `json:"benchmark"`
	// Provenance is the request-level result provenance: stats.ProvCold,
	// stats.ProvCheckpointFork, stats.ProvReplay, stats.ProvSampled,
	// stats.ProvMemoized for requests that shared another request's
	// result, or stats.ProvStore for requests served from the persistent
	// result store. Empty on failed requests.
	Provenance string `json:"provenance,omitempty"`
	// Error is the failure message of an unsuccessful request; the
	// headline statistics are zero when it is set.
	Error string `json:"error,omitempty"`

	// Headline statistics of the measured window.
	Cycles            uint64  `json:"cycles,omitempty"`
	Retired           uint64  `json:"retired,omitempty"`
	IPC               float64 `json:"ipc,omitempty"`
	EffFetchRate      float64 `json:"effFetchRate,omitempty"`
	CondMispredictPct float64 `json:"condMispredictPct,omitempty"`

	// WallMillis is the time this request held a worker slot (zero for
	// memoized requests, which simulated nothing); QueueWaitMillis is the
	// time it waited for the slot.
	WallMillis      float64 `json:"wallMillis,omitempty"`
	QueueWaitMillis float64 `json:"queueWaitMillis,omitempty"`

	// Meta is the simulator's full provenance block for the underlying
	// run (shared verbatim by memoized records; nil on failures).
	Meta *stats.Meta `json:"meta,omitempty"`
}

// FromRun builds the statistics portion of a record from a completed run.
func FromRun(run *stats.Run) Record {
	return Record{
		Config:            run.Config,
		Benchmark:         run.Benchmark,
		Cycles:            run.Cycles,
		Retired:           run.Retired,
		IPC:               run.IPC(),
		EffFetchRate:      run.EffFetchRate(),
		CondMispredictPct: run.CondMispredictRate() * 100,
		Meta:              run.Meta,
	}
}

// Writer appends records to an underlying stream, one JSON line each.
// It is safe for concurrent use. A nil *Writer is a valid, permanently-
// disabled journal: Append discards and Close is a no-op, so listeners
// can hold an optional writer without guarding every call.
//
//tc:nilsafe
type Writer struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer
}

// NewWriter wraps an open stream. The caller keeps ownership of it.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// OpenFile opens (creating if needed) a journal file for appending. The
// descriptor is opened O_APPEND, which is what makes the file safe to
// share between processes: each record's single Write is one atomic
// append at the kernel-maintained end of file, wherever other writers
// have moved it. Close the writer to release it.
func OpenFile(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Writer{w: f, c: f}, nil
}

// Append writes one record as a single JSON line: record and newline are
// marshaled into one buffer (outside the lock) and issued as exactly one
// Write, so concurrent appenders — goroutines of this Writer, and other
// processes appending to the same O_APPEND file — interleave only at
// record granularity, never inside a line. Append on a closed writer
// discards, like a disabled one.
func (w *Writer) Append(rec Record) error {
	if w == nil {
		return nil // disabled journal: discard
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.w == nil {
		return nil // closed: discard
	}
	if _, err := w.w.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close closes the underlying file, if the writer owns one, under the
// same lock as Append — an in-flight append completes its record before
// the descriptor closes, and appends after Close discard instead of
// hitting a closed fd. Idempotent; a no-op on a nil (disabled) writer.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w = nil
	if w.c == nil {
		return nil
	}
	c := w.c
	w.c = nil
	return c.Close()
}

// Read parses a journal stream. A final line missing its newline (the
// signature of a process killed mid-append) is skipped and reported via
// truncatedTail; malformed JSON anywhere else is an error.
func Read(r io.Reader) (recs []Record, truncatedTail bool, err error) {
	br := bufio.NewReader(r)
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, false, fmt.Errorf("journal: %w", err)
		}
		complete := len(line) > 0 && line[len(line)-1] == '\n'
		line = bytes.TrimSuffix(line, []byte("\n"))
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				if !complete {
					return recs, true, nil
				}
				return nil, false, fmt.Errorf("journal: line %d: %w", lineNo, jerr)
			}
			if !complete {
				// Parsed but unterminated: the final flush may still have
				// been cut short (e.g. inside a trailing field), so treat
				// it as truncated rather than trusting it.
				return recs, true, nil
			}
			recs = append(recs, rec)
		}
		if err == io.EOF {
			return recs, false, nil
		}
	}
}

// ReadFile reads a journal file. See Read for the truncated-tail contract.
func ReadFile(path string) (recs []Record, truncatedTail bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return Read(f)
}
