package journal

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tracecache/internal/config"
	"tracecache/internal/experiments"
	"tracecache/internal/metrics"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

func sampleRecords() []Record {
	return []Record{
		{Time: "2026-08-08T10:00:00Z", Config: "baseline", Benchmark: "gcc",
			Provenance: stats.ProvCold, Cycles: 1200, Retired: 3000, IPC: 2.5,
			EffFetchRate: 2.914, CondMispredictPct: 6.21, WallMillis: 41.5,
			Meta: &stats.Meta{Tool: "tcbench", WarmupInsts: 1000, MaxInsts: 3000,
				Provenance: stats.ProvCold}},
		{Time: "2026-08-08T10:00:01Z", Config: "baseline", Benchmark: "go",
			Provenance: stats.ProvCheckpointFork, Cycles: 1500, Retired: 3000,
			IPC: 2, EffFetchRate: 2.618, CondMispredictPct: 8.4, WallMillis: 38.2,
			QueueWaitMillis: 1.25},
		{Time: "2026-08-08T10:00:02Z", Config: "packing", Benchmark: "gcc",
			Provenance: stats.ProvMemoized, Cycles: 1200, Retired: 3000, IPC: 2.5,
			EffFetchRate: 2.914, CondMispredictPct: 6.21},
		{Time: "2026-08-08T10:00:03Z", Config: "packing", Benchmark: "go",
			Error: "experiments: packing/go: boom"},
	}
}

// TestRoundTrip checks Append/Read preserve records exactly.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := sampleRecords()
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, truncated, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("clean journal reported a truncated tail")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestOpenFileAppends checks OpenFile appends across reopenings.
func TestOpenFileAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	recs := sampleRecords()
	for _, rec := range recs[:2] {
		w, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Benchmark != "gcc" || got[1].Benchmark != "go" {
		t.Errorf("reopened journal = %+v", got)
	}
}

// TestMultiWriterInterleaving is the regression test for concurrent
// appenders sharing one journal file, as a tcserve daemon and a CLI run
// do: several Writers on independently opened O_APPEND descriptors (the
// multi-process shape, minus fork), each appending from several
// goroutines. Every record must come back intact — records interleave,
// lines never do.
func TestMultiWriterInterleaving(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	const writers, goroutines, perG = 3, 4, 50

	// A long padding field makes each line span multiple kilobytes, so a
	// write split into pieces would almost surely interleave mid-line.
	pad := strings.Repeat("x", 4096)
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		w, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(wi, g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					rec := Record{
						Config:    "baseline",
						Benchmark: "gcc",
						// Error doubles as the payload slot: writer/goroutine/
						// sequence identity plus padding.
						Error:   fmt.Sprintf("w%d-g%d-i%d:%s", wi, g, i, pad),
						Retired: uint64(wi*1000 + g*100 + i),
					}
					if err := w.Append(rec); err != nil {
						t.Errorf("Append: %v", err)
						return
					}
				}
			}(wi, g)
		}
	}
	wg.Wait()

	recs, truncated, err := ReadFile(path)
	if err != nil {
		t.Fatalf("interleaved journal does not parse: %v", err)
	}
	if truncated {
		t.Error("fully flushed journal reported a truncated tail")
	}
	if want := writers * goroutines * perG; len(recs) != want {
		t.Fatalf("read back %d records, want %d", len(recs), want)
	}
	seen := make(map[string]bool, len(recs))
	for _, rec := range recs {
		id, _, ok := strings.Cut(rec.Error, ":")
		if !ok || rec.Error[len(id)+1:] != pad {
			t.Fatalf("record payload corrupted: %.80q...", rec.Error)
		}
		if seen[id] {
			t.Fatalf("record %s appears twice", id)
		}
		seen[id] = true
	}
}

// TestAppendAfterCloseDiscards checks the Close/Append race contract: a
// writer closed mid-sweep discards later appends instead of writing to a
// closed descriptor.
func TestAppendAfterCloseDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := w.Append(sampleRecords()[1]); err != nil {
		t.Errorf("Append after Close should discard, got %v", err)
	}
	recs, _, err := ReadFile(path)
	if err != nil || len(recs) != 1 {
		t.Errorf("journal holds %d records (err=%v), want the pre-Close record only", len(recs), err)
	}
}

// TestTruncatedTail checks a final line cut mid-record is skipped with the
// truncated flag, while mid-file corruption is an error.
func TestTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rec := range sampleRecords()[:2] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.String()

	// Simulate a crash mid-append: cut the final line short.
	cut := full[:len(full)-10]
	got, truncated, err := Read(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated tail should not error: %v", err)
	}
	if !truncated {
		t.Error("truncated tail not reported")
	}
	if len(got) != 1 || got[0].Benchmark != "gcc" {
		t.Errorf("records before the cut = %+v, want the first record only", got)
	}

	// An unterminated but parseable final line is also treated as suspect.
	got, truncated, err = Read(strings.NewReader(strings.TrimSuffix(full, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(got) != 1 {
		t.Errorf("unterminated final line: records=%d truncated=%v, want 1/true", len(got), truncated)
	}

	// Corruption before the tail is an error, not silent data loss.
	corrupt := "{bogus\n" + full
	if _, _, err := Read(strings.NewReader(corrupt)); err == nil {
		t.Error("mid-file corruption should error")
	}

	// Blank lines are ignored.
	got, _, err = Read(strings.NewReader("\n" + full + "\n"))
	if err != nil || len(got) != 2 {
		t.Errorf("blank-line tolerance: records=%d err=%v", len(got), err)
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestReportGolden pins the summary rendering.
func TestReportGolden(t *testing.T) {
	checkGolden(t, "report.golden", Report(sampleRecords(), false))
}

// TestDiffGolden pins the journal-diff rendering.
func TestDiffGolden(t *testing.T) {
	a := sampleRecords()
	b := append([]Record(nil), a...)
	// b: improved gcc, regressed go, dropped the failed point, added one.
	b[0].EffFetchRate, b[0].IPC = 3.205, 2.75
	b[1].EffFetchRate, b[1].IPC = 2.549, 1.9
	b = b[:3]
	b = append(b, Record{Config: "promotion", Benchmark: "gcc",
		Provenance: stats.ProvCold, IPC: 2.6, EffFetchRate: 3.01,
		CondMispredictPct: 5.9})
	checkGolden(t, "diff.golden", Diff(sampleRecords(), b))
}

// TestSweepTieOut runs a real 10-point sweep (2 configurations × 5
// benchmarks, with duplicate requests) through an instrumented, journaled
// runner and checks the journal alone reproduces the runner's counters:
// every request has exactly one record, and per-provenance record counts
// equal the memo/cold/fork counters.
func TestSweepTieOut(t *testing.T) {
	r := experiments.NewRunner(1_000, 3_000)
	r.Workers = 4
	m := experiments.InstrumentRunner(metrics.NewRegistry())
	r.Metrics = m

	var buf bytes.Buffer
	w := NewWriter(&buf)
	var errMu sync.Mutex
	var appendErrs []error
	r.OnRun = RunnerListener(w, func(err error) {
		errMu.Lock()
		appendErrs = append(appendErrs, err)
		errMu.Unlock()
	})

	cfgA := config.Baseline()
	cfgB := config.Baseline()
	cfgB.Name = "baseline-copy"
	benches := r.Benchmarks()[:5]
	var wg sync.WaitGroup
	for range 2 { // duplicate every request once → memo hits
		for _, b := range benches {
			for _, c := range []sim.Config{cfgA, cfgB} {
				wg.Add(1)
				go func(c sim.Config, b string) {
					defer wg.Done()
					if _, err := r.RunE(c, b); err != nil {
						t.Errorf("RunE: %v", err)
					}
				}(c, b)
			}
		}
	}
	wg.Wait()
	if len(appendErrs) > 0 {
		t.Fatalf("journal append errors: %v", appendErrs)
	}

	recs, truncated, err := Read(&buf)
	if err != nil || truncated {
		t.Fatalf("read back: err=%v truncated=%v", err, truncated)
	}
	if got, want := uint64(len(recs)), m.MemoHits.Value()+m.MemoMisses.Value(); got != want {
		t.Errorf("journal records = %d, want memo hits+misses = %d", got, want)
	}
	prov := map[string]uint64{}
	for _, rec := range recs {
		if rec.Error != "" {
			t.Errorf("unexpected failed record: %+v", rec)
		}
		prov[rec.Provenance]++
		if rec.Retired == 0 || rec.IPC == 0 {
			t.Errorf("record missing statistics: %+v", rec)
		}
		if rec.Meta == nil {
			t.Errorf("record missing meta: %+v", rec)
		}
	}
	if got := prov[stats.ProvMemoized]; got != m.MemoHits.Value() {
		t.Errorf("memoized records = %d, want %d", got, m.MemoHits.Value())
	}
	if got := prov[stats.ProvCold]; got != m.ColdStarts.Value() {
		t.Errorf("cold records = %d, want %d", got, m.ColdStarts.Value())
	}
	if got := prov[stats.ProvCheckpointFork]; got != m.CheckpointForks.Value() {
		t.Errorf("fork records = %d, want %d", got, m.CheckpointForks.Value())
	}

	// The report reproduces the sweep summary from the journal alone.
	rep := Report(recs, false)
	if !strings.Contains(rep, "10 cold") || !strings.Contains(rep, "10 memoized") {
		t.Errorf("report does not reflect the sweep:\n%s", rep)
	}
}
