package journal

import (
	"time"

	"tracecache/internal/experiments"
)

// RunnerListener adapts a Writer into an experiments.Runner.OnRun
// listener: every resolved request (RunDone) appends exactly one record,
// so the journal's provenance counts tie out against the runner's
// memo-hit/miss and cold/fork counters. Queued and started events are not
// journaled. Append failures are reported to onErr (if non-nil) and do
// not disturb the run.
func RunnerListener(w *Writer, onErr func(error)) func(experiments.RunEvent) {
	return func(ev experiments.RunEvent) {
		if ev.Phase != experiments.RunDone {
			return
		}
		var rec Record
		if ev.Run != nil {
			rec = FromRun(ev.Run)
		}
		rec.Time = time.Now().UTC().Format(time.RFC3339)
		rec.Config = ev.Config
		rec.Benchmark = ev.Benchmark
		rec.Provenance = ev.Provenance
		if ev.Err != nil {
			rec.Error = ev.Err.Error()
		}
		rec.WallMillis = float64(ev.Wall) / float64(time.Millisecond)
		rec.QueueWaitMillis = float64(ev.QueueWait) / float64(time.Millisecond)
		if err := w.Append(rec); err != nil && onErr != nil {
			onErr(err)
		}
	}
}
