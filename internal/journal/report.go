package journal

import (
	"fmt"
	"sort"
	"strings"

	"tracecache/internal/stats"
	"tracecache/internal/textplot"
)

// pointKey orders records by sweep point. Sampled records carry their
// schedule in the key: a sampled estimate and a detailed measurement of
// the same (config, benchmark) are different points, never each other's
// "latest result".
func pointKey(r Record) string {
	k := r.Config + "/" + r.Benchmark
	if r.Meta != nil && r.Meta.Sampling != nil {
		s := r.Meta.Sampling
		k += fmt.Sprintf("#sampled-w%d-p%d-u%d-s%d",
			s.WindowInsts, s.PeriodInsts, s.WarmupInsts, s.Seed)
	}
	return k
}

// latestResult picks, per sweep point, the authoritative record: the last
// successful one (memoized records share the executed run's statistics, so
// any successful record for a key carries the same numbers), or the last
// failure when the point never succeeded.
func latestResult(recs []Record) map[string]Record {
	out := make(map[string]Record)
	for _, r := range recs {
		k := pointKey(r)
		if prev, ok := out[k]; ok && prev.Error == "" && r.Error != "" {
			continue
		}
		out[k] = r
	}
	return out
}

func sortedKeys(m map[string]Record) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Report renders a human-readable summary of a journal: record and
// provenance counts (which tie out against the runner's counters),
// aggregate simulated throughput, and one table row per sweep point. It
// reproduces a sweep's summary from the journal alone — no re-simulation.
func Report(recs []Record, truncatedTail bool) string {
	var sb strings.Builder
	if truncatedTail {
		sb.WriteString("warning: journal tail truncated (unterminated final line skipped)\n")
	}
	var ok, failed int
	prov := map[string]int{}
	var retired uint64
	var wallMs float64
	for _, r := range recs {
		if r.Error != "" {
			failed++
		} else {
			ok++
			prov[r.Provenance]++
		}
		// Memoized and store-served requests simulated nothing in this
		// process; counting their (shared) statistics would inflate the
		// throughput line.
		if r.Provenance != stats.ProvMemoized && r.Provenance != stats.ProvStore {
			retired += r.Retired
			wallMs += r.WallMillis
		}
	}
	fmt.Fprintf(&sb, "journal: %d records (%d ok, %d failed)\n", len(recs), ok, failed)
	fmt.Fprintf(&sb, "provenance: %d cold, %d checkpoint-fork, %d replay, %d sampled, %d memoized, %d store\n",
		prov[stats.ProvCold], prov[stats.ProvCheckpointFork], prov[stats.ProvReplay],
		prov[stats.ProvSampled], prov[stats.ProvMemoized], prov[stats.ProvStore])
	if wallMs > 0 {
		fmt.Fprintf(&sb, "simulated: %d measured insts in %.1fs slot wall (%.0f insts/s)\n",
			retired, wallMs/1000, float64(retired)/(wallMs/1000))
	}
	points := latestResult(recs)
	if len(points) == 0 {
		return sb.String()
	}
	sb.WriteString("\n")
	rows := make([][]string, 0, len(points))
	for _, k := range sortedKeys(points) {
		r := points[k]
		if r.Error != "" {
			rows = append(rows, []string{r.Config, r.Benchmark, r.Provenance,
				"failed: " + r.Error, "", ""})
			continue
		}
		rows = append(rows, []string{r.Config, r.Benchmark, r.Provenance,
			fmt.Sprintf("%.3f", r.IPC),
			fmt.Sprintf("%.3f", r.EffFetchRate),
			fmt.Sprintf("%.2f", r.CondMispredictPct)})
	}
	sb.WriteString(textplot.Table(
		[]string{"config", "benchmark", "prov", "IPC", "eff.rate", "mispred%"}, rows))
	return sb.String()
}

// Diff renders a point-by-point comparison of two journals (labelled a
// and b): effective fetch rate and IPC deltas for common points, plus the
// points present on only one side.
func Diff(a, b []Record) string {
	pa, pb := latestResult(a), latestResult(b)
	keys := map[string]bool{}
	for k := range pa {
		keys[k] = true
	}
	for k := range pb {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)

	var rows [][]string
	var onlyA, onlyB []string
	for _, k := range ordered {
		ra, inA := pa[k]
		rb, inB := pb[k]
		switch {
		case !inB:
			onlyA = append(onlyA, k)
		case !inA:
			onlyB = append(onlyB, k)
		case ra.Error != "" || rb.Error != "":
			rows = append(rows, []string{ra.Config, ra.Benchmark,
				statusOf(ra), statusOf(rb), "", ""})
		default:
			rows = append(rows, []string{ra.Config, ra.Benchmark,
				fmt.Sprintf("%.3f", ra.EffFetchRate),
				fmt.Sprintf("%.3f", rb.EffFetchRate),
				fmt.Sprintf("%+.2f%%", pctDelta(ra.EffFetchRate, rb.EffFetchRate)),
				fmt.Sprintf("%+.2f%%", pctDelta(ra.IPC, rb.IPC))})
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "diff: %d points in a, %d in b, %d compared\n\n",
		len(pa), len(pb), len(rows))
	if len(rows) > 0 {
		sb.WriteString(textplot.Table(
			[]string{"config", "benchmark", "eff.rate a", "eff.rate b", "Δeff.rate", "ΔIPC"}, rows))
	}
	for _, k := range onlyA {
		fmt.Fprintf(&sb, "only in a: %s\n", k)
	}
	for _, k := range onlyB {
		fmt.Fprintf(&sb, "only in b: %s\n", k)
	}
	return sb.String()
}

func statusOf(r Record) string {
	if r.Error != "" {
		return "failed"
	}
	return "ok"
}

func pctDelta(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}
