// Package metrics is the simulator's fleet-level instrumentation layer: a
// low-overhead, process-wide registry of atomic counters, gauges and
// fixed-bucket histograms, exposed in the Prometheus text format by the
// monitoring HTTP surface (internal/monitor).
//
// The layer follows the same opt-in contract as internal/obs: producers
// hold pointers that are nil by default, so the disabled path costs one
// pointer comparison per instrumentation site. Once created, a Counter,
// Gauge or Histogram is updated with single atomic operations and is safe
// for unsynchronized concurrent use from any number of simulations.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value that can go up and down
// (worker-pool occupancy, queue depth).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets follow the Prometheus
// convention: bucket i counts observations v <= bounds[i], plus an
// implicit +Inf bucket, and the exposition is cumulative.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

// newHistogram builds a histogram over the bounds, which must be sorted
// ascending; an empty slice yields a single +Inf bucket.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			//tcvet:ignore nopanic programmer invariant: bounds are compiled-in literals, metrichygiene checks ascending order statically
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; len(bounds) selects +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Cumulative returns the upper bounds (excluding +Inf) and the cumulative
// bucket counts (including the final +Inf bucket, equal to Count up to
// concurrent-update skew).
func (h *Histogram) Cumulative() ([]float64, []uint64) {
	counts := make([]uint64, len(h.buckets))
	var acc uint64
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		counts[i] = acc
	}
	return h.bounds, counts
}

// DefSecondsBuckets are the default bounds for wall-time histograms, in
// seconds (sub-millisecond memo hits up to minute-long simulations).
var DefSecondsBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metricKind discriminates family types.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

var kindNames = [...]string{"counter", "gauge", "histogram"}

// series is one labelled instance within a family.
type series struct {
	labels string // canonical rendered label pairs, "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	bounds     []float64
	series     []*series
	byLabel    map[string]*series
}

// Registry is a set of metric families. The zero value is not usable; use
// NewRegistry. Registration (Counter/Gauge/Histogram) takes a lock and is
// idempotent — the same name and label set returns the same instance —
// while updates on the returned metrics are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry used by tools that do not need
// registry isolation.
var Default = NewRegistry()

// Counter returns the counter with the name and label pairs (key, value,
// key, value, ...), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge with the name and label pairs, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// Histogram returns the histogram with the name, bucket upper bounds
// (ascending, +Inf implicit) and label pairs, creating it on first use.
// Later calls for an existing family ignore the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(name, help, kindHistogram, bounds, labels).h
}

// lookup finds or creates the family and series. Mismatched reuse of a
// name (wrong kind, odd label pairs) is a programming error and panics.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []string) *series {
	if len(labels)%2 != 0 {
		//tcvet:ignore nopanic programmer invariant: label pairs are compiled-in literals, metrichygiene checks them statically
		panic(fmt.Sprintf("metrics: %s: odd label pairs %q", name, labels))
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, bounds: bounds,
			byLabel: make(map[string]*series)}
		r.families[name] = fam
	} else if fam.kind != kind {
		//tcvet:ignore nopanic programmer invariant: a metric name cannot change kind between compiled-in registration sites
		panic(fmt.Sprintf("metrics: %s already registered as a %s", name, kindNames[fam.kind]))
	}
	if s, ok := fam.byLabel[sig]; ok {
		return s
	}
	s := &series{labels: sig}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(fam.bounds)
	}
	fam.byLabel[sig] = s
	fam.series = append(fam.series, s)
	sort.Slice(fam.series, func(i, j int) bool { return fam.series[i].labels < fam.series[j].labels })
	return s
}

// labelSignature renders label pairs canonically: sorted by key, each as
// key="escaped-value", comma-joined.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabelValue applies the Prometheus label-value escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// Snapshot returns every series as a flat name{labels} -> value map
// (histograms contribute _count and _sum entries). The monitoring surface
// publishes it under /debug/vars.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, fam := range r.sortedFamilies() {
		for _, s := range fam.series {
			suffix := ""
			if s.labels != "" {
				suffix = "{" + s.labels + "}"
			}
			switch fam.kind {
			case kindCounter:
				out[fam.name+suffix] = float64(s.c.Value())
			case kindGauge:
				out[fam.name+suffix] = float64(s.g.Value())
			case kindHistogram:
				out[fam.name+"_count"+suffix] = float64(s.h.Count())
				out[fam.name+"_sum"+suffix] = s.h.Sum()
			}
		}
	}
	return out
}
