package metrics

import (
	"strings"
	"sync"
	"testing"

	"tracecache/internal/obs"
)

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines (run under -race in CI) and checks the totals are exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	h := r.Histogram("h_seconds", "test histogram", []float64{1, 10})

	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j % 3 * 5)) // 0, 5, 10
			}
			// Registration of the same series must be idempotent and safe
			// concurrently with updates.
			if got := r.Counter("c_total", "test counter"); got != c {
				t.Errorf("goroutine %d: re-registration returned a new counter", i)
			}
		}(i)
	}
	wg.Wait()

	if got, want := c.Value(), uint64(goroutines*perG); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var perGoroutineSum float64
	for j := 0; j < perG; j++ {
		perGoroutineSum += float64(j % 3 * 5)
	}
	if got, want := h.Sum(), float64(goroutines)*perGoroutineSum; got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) bucket
// semantics: an observation equal to an upper bound lands in that bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "t", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 6} {
		h.Observe(v)
	}
	bounds, cum := h.Cumulative()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bounds %v cum %v", bounds, cum)
	}
	// le=1: {0.5, 1}; le=2: +{1.5, 2}; le=5: +{3, 5}; +Inf: +{6}.
	want := []uint64{2, 4, 6, 7}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+5+6; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
}

// TestZeroValueExposition checks created-but-untouched metrics expose
// explicit zero samples (Prometheus scrapes must see the series exist).
func TestZeroValueExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "runs")
	r.Gauge("busy", "busy workers")
	r.Histogram("wall_seconds", "wall", []float64{1})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"runs_total 0\n",
		"busy 0\n",
		`wall_seconds_bucket{le="1"} 0` + "\n",
		`wall_seconds_bucket{le="+Inf"} 0` + "\n",
		"wall_seconds_sum 0\n",
		"wall_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestLabelledFamilies checks one family holds several labelled series
// under a single HELP/TYPE header, with canonical label ordering.
func TestLabelledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("events_total", "events", "kind", "hit")
	b := r.Counter("events_total", "events", "kind", "miss")
	if a == b {
		t.Fatal("distinct label sets shared one counter")
	}
	// Same pairs in a different key order must resolve to the same series.
	c := r.Counter("multi_total", "m", "b", "2", "a", "1")
	d := r.Counter("multi_total", "m", "a", "1", "b", "2")
	if c != d {
		t.Fatal("label order changed series identity")
	}
	a.Add(3)
	b.Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE events_total counter"); n != 1 {
		t.Errorf("TYPE lines for events_total = %d, want 1\n%s", n, out)
	}
	for _, want := range []string{
		`events_total{kind="hit"} 3`,
		`events_total{kind="miss"} 1`,
		`multi_total{a="1",b="2"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestKindMismatchPanics pins that reusing a name across metric kinds is
// reported as a programming error.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x")
	defer func() {
		if recover() == nil {
			t.Error("Gauge on a counter name did not panic")
		}
	}()
	r.Gauge("x", "x")
}

// TestSnapshot checks the flat expvar-facing view.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(2)
	r.Gauge("g", "g").Set(-3)
	h := r.Histogram("h", "h", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap["a_total"] != 2 || snap["g"] != -3 || snap["h_count"] != 1 || snap["h_sum"] != 0.5 {
		t.Errorf("snapshot = %v", snap)
	}
}

// TestBusSink checks the obs bridge counts events by kind.
func TestBusSink(t *testing.T) {
	r := NewRegistry()
	sink := NewBusSink(r)
	bus := obs.NewBus(16)
	bus.Attach(sink)
	bus.Emit(obs.Event{Kind: obs.KindTCHit})
	bus.Emit(obs.Event{Kind: obs.KindTCHit})
	bus.Emit(obs.Event{Kind: obs.KindTCMiss})

	hit := r.Counter("tracecache_obs_events_total", "", "kind", obs.KindTCHit.String())
	miss := r.Counter("tracecache_obs_events_total", "", "kind", obs.KindTCMiss.String())
	promote := r.Counter("tracecache_obs_events_total", "", "kind", obs.KindPromote.String())
	if hit.Value() != 2 || miss.Value() != 1 || promote.Value() != 0 {
		t.Errorf("bridge counts: hit %d miss %d promote %d", hit.Value(), miss.Value(), promote.Value())
	}
}
