package metrics

import "tracecache/internal/obs"

// BusSink bridges the structured event bus into the metrics registry: it
// counts every event by kind under tracecache_obs_events_total, so the
// existing producers (fetch engine, fill unit, recovery machinery,
// self-check layer) surface on /metrics with no new plumbing. Counters are
// atomic, so one sink may be shared by the per-simulation buses of a
// concurrent sweep.
type BusSink struct {
	kinds [obs.NumKinds]*Counter
}

// NewBusSink builds a sink counting into the registry.
func NewBusSink(r *Registry) *BusSink {
	s := &BusSink{}
	for k := obs.Kind(0); k < obs.NumKinds; k++ {
		s.kinds[k] = r.Counter("tracecache_obs_events_total",
			"Structured simulator events by kind (see internal/obs).",
			"kind", k.String())
	}
	return s
}

// Kinds implements obs.Sink: every kind is observed.
func (s *BusSink) Kinds() uint64 { return obs.AllKinds }

// Emit implements obs.Sink.
func (s *BusSink) Emit(ev obs.Event) {
	if ev.Kind < obs.NumKinds {
		s.kinds[ev.Kind].Inc()
	}
}
