package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families in name order, one HELP and
// TYPE line each, series in canonical label order, histograms as
// cumulative le-buckets plus _sum and _count. Values are read atomically;
// a concurrent update may land between two lines, which the format
// permits.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.sortedFamilies() {
		if fam.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fam.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(kindNames[fam.kind])
		bw.WriteByte('\n')
		for _, s := range fam.series {
			switch fam.kind {
			case kindCounter:
				writeSample(bw, fam.name, s.labels, "", formatUint(s.c.Value()))
			case kindGauge:
				writeSample(bw, fam.name, s.labels, "", strconv.FormatInt(s.g.Value(), 10))
			case kindHistogram:
				bounds, cum := s.h.Cumulative()
				for i, b := range bounds {
					writeSample(bw, fam.name+"_bucket", s.labels,
						`le="`+formatFloat(b)+`"`, formatUint(cum[i]))
				}
				writeSample(bw, fam.name+"_bucket", s.labels,
					`le="+Inf"`, formatUint(cum[len(cum)-1]))
				writeSample(bw, fam.name+"_sum", s.labels, "", formatFloat(s.h.Sum()))
				writeSample(bw, fam.name+"_count", s.labels, "", formatUint(s.h.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample writes one sample line, merging the series labels with an
// optional extra pair (the histogram le label).
func writeSample(bw *bufio.Writer, name, labels, extra, value string) {
	bw.WriteString(name)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp applies the HELP-line escapes (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
