package metrics

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (NaN|[-+]?Inf|[-+]?[0-9.eE+-]+)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
)

// validatePrometheus is a minimal parser for the text exposition format:
// every line must be a HELP comment, a TYPE comment, or a well-formed
// sample; TYPE must precede its family's samples; histogram families must
// expose cumulative monotone le-buckets ending in +Inf, with the +Inf
// bucket equal to _count, and a _sum sample.
func validatePrometheus(t *testing.T, out string) {
	t.Helper()
	typeOf := map[string]string{}
	samples := map[string][]string{} // family -> values in order (histograms: bucket values)
	var sums, counts map[string]float64
	sums, counts = map[string]float64{}, map[string]float64{}

	family := func(name string) string {
		for base, typ := range typeOf {
			if typ == "histogram" &&
				(name == base+"_bucket" || name == base+"_sum" || name == base+"_count") {
				return base
			}
		}
		return name
	}

	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || !nameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[1])
			}
			if _, dup := typeOf[parts[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[0])
			}
			typeOf[parts[0]] = parts[1]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !labelRe.MatchString(pair) {
					t.Fatalf("line %d: malformed label %q in %q", ln+1, pair, line)
				}
			}
		}
		base := family(name)
		if _, ok := typeOf[base]; !ok {
			t.Fatalf("line %d: sample %q precedes its TYPE line", ln+1, line)
		}
		if typeOf[base] == "histogram" {
			switch {
			case name == base+"_bucket":
				samples[base] = append(samples[base], value)
			case name == base+"_sum":
				sums[base], _ = strconv.ParseFloat(value, 64)
			case name == base+"_count":
				counts[base], _ = strconv.ParseFloat(value, 64)
			default:
				t.Fatalf("line %d: stray histogram sample %q", ln+1, line)
			}
			if name == base+"_bucket" && !strings.Contains(labels, `le="`) {
				t.Fatalf("line %d: bucket without le label: %q", ln+1, line)
			}
		} else {
			samples[base] = append(samples[base], value)
		}
	}

	for base, typ := range typeOf {
		if typ != "histogram" {
			if len(samples[base]) == 0 {
				t.Errorf("family %s has no samples", base)
			}
			continue
		}
		vals := samples[base]
		if len(vals) == 0 {
			t.Errorf("histogram %s has no buckets", base)
			continue
		}
		prev := -1.0
		for i, v := range vals {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < prev {
				t.Errorf("histogram %s: bucket %d value %q not cumulative", base, i, v)
			}
			prev = f
		}
		if prev != counts[base] {
			t.Errorf("histogram %s: +Inf bucket %v != count %v", base, prev, counts[base])
		}
		if _, ok := sums[base]; !ok {
			t.Errorf("histogram %s: missing _sum", base)
		}
	}
}

// splitLabels splits a rendered label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// TestWritePrometheusValid fills a registry with every metric kind,
// including labelled families and escaped values, and validates the full
// exposition.
func TestWritePrometheusValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("tracecache_runner_runs_started_total", "Simulations started.").Add(7)
	r.Counter("tracecache_obs_events_total", "Events.", "kind", "tc-hit").Add(41)
	r.Counter("tracecache_obs_events_total", "Events.", "kind", `we"ird\nk`).Inc()
	r.Gauge("tracecache_runner_workers_busy", "Busy workers.").Set(3)
	h := r.Histogram("tracecache_runner_run_wall_seconds", "Run wall time.", DefSecondsBuckets)
	for _, v := range []float64{0.004, 0.2, 3, 100} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	validatePrometheus(t, sb.String())
}

// TestPrometheusGolden pins the exact exposition of a small registry, so
// format regressions (ordering, spacing, label rendering) are visible.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "counts b", "kind", "y").Add(2)
	r.Counter("b_total", "counts b", "kind", "x").Add(1)
	r.Gauge("a_gauge", "gauges a").Set(-5)
	h := r.Histogram("c_seconds", "times c", []float64{0.5, 2})
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge gauges a
# TYPE a_gauge gauge
a_gauge -5
# HELP b_total counts b
# TYPE b_total counter
b_total{kind="x"} 1
b_total{kind="y"} 2
# HELP c_seconds times c
# TYPE c_seconds histogram
c_seconds_bucket{le="0.5"} 1
c_seconds_bucket{le="2"} 1
c_seconds_bucket{le="+Inf"} 2
c_seconds_sum 3.5
c_seconds_count 2
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	validatePrometheus(t, sb.String())
}

// TestPrometheusFloatFormatting spot-checks float rendering of bounds and
// sums.
func TestPrometheusFloatFormatting(t *testing.T) {
	if got := formatFloat(0.005); got != "0.005" {
		t.Errorf("formatFloat(0.005) = %q", got)
	}
	if got := formatFloat(float64(1) / 3); !strings.HasPrefix(got, "0.333") {
		t.Errorf("formatFloat(1/3) = %q", got)
	}
	if got := fmt.Sprint(formatUint(1 << 60)); got != "1152921504606846976" {
		t.Errorf("formatUint = %q", got)
	}
}
