package monitor

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"tracecache/internal/metrics"
)

// Server is the monitoring HTTP surface: Prometheus metrics, live sweep
// progress (JSON and SSE), expvar, and pprof. Zero values disable the
// corresponding endpoints' content, not the endpoints.
type Server struct {
	// Registry feeds /metrics and the expvar snapshot. Nil serves an
	// empty exposition.
	Registry *metrics.Registry
	// Progress feeds /progress. Nil serves a zero snapshot.
	Progress *Progress

	httpSrv *http.Server

	// done signals in-flight streaming handlers (progressSSE) to return
	// promptly on Close, instead of lingering until their next ticker
	// fire. Lazily created so a Server used via Handler alone (httptest)
	// still shuts its streams down.
	mu        sync.Mutex
	done      chan struct{}
	closeOnce sync.Once
}

// shutdownChan returns the server's close-signal channel, creating it on
// first use.
func (s *Server) shutdownChan() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done == nil {
		s.done = make(chan struct{})
	}
	return s.done
}

// expvarOnce guards the process-global expvar publication: the first
// server's registry becomes the "tracecache_metrics" var (expvar.Publish
// panics on duplicates).
var expvarOnce sync.Once

// Handler builds the monitoring mux.
func (s *Server) Handler() http.Handler {
	if s.Registry != nil {
		reg := s.Registry
		expvarOnce.Do(func() {
			expvar.Publish("tracecache_metrics", expvar.Func(func() any {
				return reg.Snapshot()
			}))
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/progress", s.progress)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. "127.0.0.1:0"), serves the monitoring mux
// in the background, and returns the bound address. Close the server to
// stop it.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: %w", err)
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		// ErrServerClosed (and listener-closed errors) are the normal
		// shutdown path; the server has no other way to fail that the
		// caller could act on.
		_ = s.httpSrv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Close stops a started server. The shutdown signal fires before the
// listener closes, so in-flight SSE handlers return promptly (they
// select on it alongside their tick) rather than lingering until the
// next ticker fire. Idempotent.
func (s *Server) Close() error {
	ch := s.shutdownChan()
	s.closeOnce.Do(func() { close(ch) })
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><head><title>tracecache monitor</title></head><body>
<h1>tracecache monitor</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/progress">/progress</a> — sweep progress (JSON; add ?sse=1 for a live stream)</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — profiling</li>
</ul></body></html>
`)
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.Registry == nil {
		return
	}
	_ = s.Registry.WritePrometheus(w)
}

// snapshot returns the current progress, or a zero snapshot without a
// tracker.
func (s *Server) snapshot() Snapshot {
	if s.Progress == nil {
		return Snapshot{ETASeconds: -1, Points: []PointState{}}
	}
	return s.Progress.Snapshot()
}

func (s *Server) progress(w http.ResponseWriter, r *http.Request) {
	ProgressHandler(s.snapshot, s.shutdownChan())(w, r)
}

// wantSSE selects the streaming variant via Accept: text/event-stream or
// ?sse=1.
func wantSSE(r *http.Request) bool {
	if r.URL.Query().Get("sse") == "1" {
		return true
	}
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			part = strings.TrimSpace(part)
			if media, _, ok := strings.Cut(part, ";"); ok {
				part = strings.TrimSpace(media)
			}
			if part == "text/event-stream" {
				return true
			}
		}
	}
	return false
}

// ProgressHandler serves a progress snapshot source as JSON, or — when
// the request asks for text/event-stream or ?sse=1 — as a Server-Sent
// Events stream of snapshots every ?interval milliseconds (default 1000,
// minimum 10) until the snapshot reports Complete, the client
// disconnects, or shutdown closes. The event reporting Complete is the
// last. shutdown may be nil for a handler with no server lifecycle;
// monitor.Server and the tcserve job endpoints share this handler.
func ProgressHandler(snap func() Snapshot, shutdown <-chan struct{}) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !wantSSE(r) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snap())
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusNotImplemented)
			return
		}
		interval := 1000
		if v := r.URL.Query().Get("interval"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				interval = n
			}
		}
		if interval < 10 {
			interval = 10
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		ticker := time.NewTicker(time.Duration(interval) * time.Millisecond)
		defer ticker.Stop()
		for {
			s := snap()
			data, err := json.Marshal(s)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
			if s.Complete {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-shutdown:
				return
			case <-ticker.C:
			}
		}
	}
}
