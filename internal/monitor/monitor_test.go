package monitor

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"tracecache/internal/config"
	"tracecache/internal/experiments"
	"tracecache/internal/metrics"
)

// TestProgressLifecycle drives the tracker through a three-point sweep.
func TestProgressLifecycle(t *testing.T) {
	p := NewProgress(2, nil)
	p.PointQueued("a/x")
	p.PointQueued("a/y")
	p.PointStarted("a/x")
	s := p.Snapshot()
	if s.Total != 2 || s.Running != 1 || s.Queued != 1 || s.Done != 0 {
		t.Errorf("mid-sweep snapshot = %+v", s)
	}
	if s.ETASeconds != -1 {
		t.Errorf("ETA before any completion = %v, want -1", s.ETASeconds)
	}
	if s.Points[0].Key != "a/x" || s.Points[0].Status != StatusRunning {
		t.Errorf("points not active-first: %+v", s.Points)
	}

	p.PointDone("a/x", nil, 100*time.Millisecond)
	p.PointStarted("a/y")
	p.PointDone("a/y", errors.New("boom"), 50*time.Millisecond)
	p.Finish()
	s = p.Snapshot()
	if s.Done != 1 || s.Failed != 1 || s.Running != 0 || !s.Complete {
		t.Errorf("final snapshot = %+v", s)
	}
	if s.ETASeconds != 0 {
		t.Errorf("ETA with nothing remaining = %v, want 0", s.ETASeconds)
	}
	for _, ps := range s.Points {
		if ps.Key == "a/y" && ps.Error == "" {
			t.Error("failed point lost its error")
		}
	}
}

// TestProgressListener checks the RunEvent adapter feeds the tracker,
// memo hits included.
func TestProgressListener(t *testing.T) {
	p := NewProgress(1, nil)
	l := p.Listener()
	l(experiments.RunEvent{Phase: experiments.RunQueued, Key: "c/b"})
	l(experiments.RunEvent{Phase: experiments.RunStarted, Key: "c/b"})
	l(experiments.RunEvent{Phase: experiments.RunDone, Key: "c/b", Wall: time.Millisecond})
	l(experiments.RunEvent{Phase: experiments.RunDone, Key: "c/b", Memoized: true})
	s := p.Snapshot()
	if s.Total != 1 || s.Done != 1 || s.MemoHits != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

// TestEndpoints exercises every route of a started server.
func TestEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("tracecache_test_total", "Test counter.").Add(7)
	p := NewProgress(1, nil)
	p.PointQueued("a/x")
	srv := &Server{Registry: reg, Progress: p}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "tracecache_test_total 7") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/progress"); code != 200 {
		t.Errorf("/progress: code=%d", code)
	} else {
		var s Snapshot
		if err := json.Unmarshal([]byte(body), &s); err != nil || s.Total != 1 {
			t.Errorf("/progress body = %q (err %v)", body, err)
		}
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "tracecache_metrics") {
		t.Errorf("/debug/vars: code=%d body=%.80q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code=%d body=%.80q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path: code=%d, want 404", code)
	}
}

// TestProgressSSE checks the stream emits JSON events and terminates on
// completion.
func TestProgressSSE(t *testing.T) {
	p := NewProgress(1, nil)
	p.PointQueued("a/x")
	srv := httptest.NewServer((&Server{Progress: p}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/progress?sse=1&interval=20")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}

	go func() {
		time.Sleep(50 * time.Millisecond)
		p.PointDone("a/x", nil, time.Millisecond)
		p.Finish()
	}()

	var events []Snapshot
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var s Snapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least an initial and a final one", len(events))
	}
	if last := events[len(events)-1]; !last.Complete || last.Done != 1 {
		t.Errorf("final event = %+v, want complete with one done point", last)
	}
}

// sseHandlerGoroutines counts live goroutines currently inside the
// ProgressHandler SSE loop.
func sseHandlerGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.Count(string(buf[:n]), "ProgressHandler.func")
}

// TestCloseTerminatesSSE is the regression test for Server.Close leaving
// in-flight SSE handlers alive until their next ticker fire: with a 60s
// client interval and an incomplete sweep, Close must still unblock the
// stream promptly and the handler goroutine must exit — no leak.
func TestCloseTerminatesSSE(t *testing.T) {
	p := NewProgress(1, nil)
	p.PointQueued("a/x") // never completes, so only Close can end the stream
	srv := &Server{Progress: p}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/progress?sse=1&interval=60000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	// First event: the handler is now parked in its 60s select.
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first SSE event: %v", err)
	}
	if got := sseHandlerGoroutines(); got == 0 {
		t.Fatal("SSE handler goroutine not observable before Close")
	}

	streamClosed := make(chan struct{})
	go func() {
		defer close(streamClosed)
		_, _ = io.Copy(io.Discard, br)
	}()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-streamClosed:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open 5s after Close; handler is waiting out its 60s ticker")
	}
	deadline := time.Now().Add(5 * time.Second)
	for sseHandlerGoroutines() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE handler goroutine leaked after Close")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestAcceptHeaderSSE checks content negotiation picks the stream.
func TestAcceptHeaderSSE(t *testing.T) {
	p := NewProgress(1, nil)
	p.Finish()
	srv := httptest.NewServer((&Server{Progress: p}).Handler())
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL+"/progress", nil)
	req.Header.Set("Accept", "text/event-stream; q=0.9, application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
}

// TestLiveSweepMonitoring monitors a real concurrent sweep end to end:
// while the sweep runs, /progress and /metrics must respond; afterwards
// the snapshot must account for every point and the fleet instruction
// counter must have moved.
func TestLiveSweepMonitoring(t *testing.T) {
	r := experiments.NewRunner(1_000, 3_000)
	r.Workers = 4
	reg := metrics.NewRegistry()
	m := experiments.InstrumentRunner(reg)
	r.Metrics = m
	prog := NewProgress(4, m.Sim.Insts.Value)
	r.OnRun = prog.Listener()

	srv := &Server{Registry: reg, Progress: prog}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		_, err := r.SweepE(config.Baseline())
		prog.Finish()
		done <- err
	}()

	deadline := time.After(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/progress")
		if err != nil {
			t.Fatal(err)
		}
		var s Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if s.Complete {
			if s.Done != s.Total || s.Failed != 0 {
				t.Errorf("final snapshot = %+v", s)
			}
			if s.Done == 0 {
				t.Error("sweep completed with zero points")
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("sweep did not complete in time")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"tracecache_runner_runs_completed_total",
		"tracecache_sim_instructions_committed_total",
		"tracecache_runner_run_wall_seconds_count",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	if m.Sim.Insts.Value() == 0 {
		t.Error("fleet instruction counter did not move")
	}
}

// TestMonitoringPreservesOutput pins the stdout-purity requirement at the
// library layer: a monitored parallel RunAll renders byte-identical
// experiment output to a bare sequential one.
func TestMonitoringPreservesOutput(t *testing.T) {
	exps := make([]experiments.Experiment, 0, 2)
	for _, id := range []string{"fig4", "table2"} {
		e, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		exps = append(exps, e)
	}
	render := func(monitored bool, workers int) string {
		r := experiments.NewRunner(1_000, 3_000)
		r.Workers = workers
		var srv *Server
		if monitored {
			reg := metrics.NewRegistry()
			m := experiments.InstrumentRunner(reg)
			r.Metrics = m
			prog := NewProgress(workers, m.Sim.Insts.Value)
			r.OnRun = prog.Listener()
			srv = &Server{Registry: reg, Progress: prog}
			if _, err := srv.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
		}
		var sb strings.Builder
		err := experiments.RunAll(r, exps, func(e experiments.Experiment, out string) {
			fmt.Fprintf(&sb, "== %s ==\n%s\n", e.ID, out)
		})
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if bare, monitored := render(false, 1), render(true, 4); bare != monitored {
		t.Error("monitoring changed experiment output")
	}
}
