// Package monitor is the opt-in live observability surface of a sweep: a
// Progress tracker fed by runner events, and an HTTP server exposing it
// alongside Prometheus metrics, expvar, and pprof. Nothing here runs
// unless a binary passes -http; all monitoring output is out-of-band
// (HTTP and stderr), never stdout, so enabling it cannot change a
// sweep's committed results.
package monitor

import (
	"sort"
	"sync"
	"time"

	"tracecache/internal/experiments"
)

// Point statuses reported by Snapshot.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusMemoized = "memoized"
)

// PointState is one sweep point's live status.
type PointState struct {
	Key        string  `json:"key"`
	Status     string  `json:"status"`
	WallMillis float64 `json:"wallMillis,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// Snapshot is one consistent view of sweep progress, serialized on
// /progress.
type Snapshot struct {
	// Total counts distinct simulation points seen so far; Done, Failed,
	// Running and Queued partition them. Totals grow as a sweep's
	// experiments queue work — they are discovered, not preannounced.
	Total   int `json:"total"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Running int `json:"running"`
	Queued  int `json:"queued"`
	// MemoHits counts requests resolved by memo sharing (not points).
	MemoHits int `json:"memoHits"`
	// Complete is set by Finish: the sweep has ended and no more points
	// will arrive; SSE streams close after reporting it.
	Complete bool `json:"complete"`
	// Workers is the worker-pool size the ETA divides by.
	Workers        int     `json:"workers"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// ETASeconds estimates remaining wall time as mean completed-run wall
	// times the remaining point count over the worker pool; -1 until a
	// first completion calibrates it.
	ETASeconds float64 `json:"etaSeconds"`
	// InstsCommitted is the fleet committed-instruction counter;
	// InstsPerSec is its rate over the recent sampling window (0 until
	// two samples exist).
	InstsCommitted uint64       `json:"instsCommitted"`
	InstsPerSec    float64      `json:"instsPerSec"`
	Points         []PointState `json:"points"`
}

// Progress aggregates run-lifecycle events into live sweep status. It is
// safe for concurrent use; feed it with Listener or the Point methods.
type Progress struct {
	mu       sync.Mutex
	workers  int
	insts    func() uint64
	start    time.Time
	points   map[string]*PointState
	order    []string
	memoHits int
	done     int
	failed   int
	wallSum  float64 // milliseconds over completed points
	complete bool

	lastSample time.Time
	lastInsts  uint64
	rate       float64
}

// NewProgress builds a tracker. workers sizes the ETA divisor; insts,
// when non-nil, reads the fleet committed-instruction counter (e.g.
// sim.Metrics.Insts.Value) for the live throughput estimate.
func NewProgress(workers int, insts func() uint64) *Progress {
	if workers < 1 {
		workers = 1
	}
	now := time.Now()
	return &Progress{
		workers:    workers,
		insts:      insts,
		start:      now,
		points:     make(map[string]*PointState),
		lastSample: now,
	}
}

// Listener adapts the tracker into an experiments.Runner.OnRun listener.
func (p *Progress) Listener() func(experiments.RunEvent) {
	return func(ev experiments.RunEvent) {
		switch {
		case ev.Phase == experiments.RunQueued:
			p.PointQueued(ev.Key)
		case ev.Phase == experiments.RunStarted:
			p.PointStarted(ev.Key)
		case ev.Memoized:
			p.memoHit()
		default:
			p.PointDone(ev.Key, ev.Err, ev.Wall)
		}
	}
}

// point returns the state for key, creating it in arrival order.
func (p *Progress) point(key string) *PointState {
	ps, ok := p.points[key]
	if !ok {
		ps = &PointState{Key: key, Status: StatusQueued}
		p.points[key] = ps
		p.order = append(p.order, key)
	}
	return ps
}

// PointQueued records a point waiting for a worker slot.
func (p *Progress) PointQueued(key string) {
	p.mu.Lock()
	p.point(key)
	p.mu.Unlock()
}

// PointStarted records a point acquiring its worker slot.
func (p *Progress) PointStarted(key string) {
	p.mu.Lock()
	p.point(key).Status = StatusRunning
	p.mu.Unlock()
}

// PointDone records a point's resolution.
func (p *Progress) PointDone(key string, err error, wall time.Duration) {
	p.mu.Lock()
	ps := p.point(key)
	ps.WallMillis = float64(wall) / float64(time.Millisecond)
	if err != nil {
		ps.Status = StatusFailed
		ps.Error = err.Error()
		p.failed++
	} else {
		ps.Status = StatusDone
		p.done++
	}
	p.wallSum += ps.WallMillis
	p.mu.Unlock()
}

func (p *Progress) memoHit() {
	p.mu.Lock()
	p.memoHits++
	p.mu.Unlock()
}

// Finish marks the sweep complete; SSE streams end after the next send.
func (p *Progress) Finish() {
	p.mu.Lock()
	p.complete = true
	p.mu.Unlock()
}

// sampleRate refreshes the insts/s estimate over windows of at least
// 200ms, so rapid polling cannot alias the rate to zero. Callers hold mu.
func (p *Progress) sampleRate(now time.Time) {
	if p.insts == nil {
		return
	}
	cur := p.insts()
	dt := now.Sub(p.lastSample).Seconds()
	if dt >= 0.2 {
		p.rate = float64(cur-p.lastInsts) / dt
		p.lastInsts = cur
		p.lastSample = now
	}
}

// Snapshot returns a consistent copy of the current progress.
func (p *Progress) Snapshot() Snapshot {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sampleRate(now)
	s := Snapshot{
		Total:          len(p.points),
		Done:           p.done,
		Failed:         p.failed,
		MemoHits:       p.memoHits,
		Complete:       p.complete,
		Workers:        p.workers,
		ElapsedSeconds: now.Sub(p.start).Seconds(),
		ETASeconds:     -1,
		InstsPerSec:    p.rate,
		Points:         make([]PointState, 0, len(p.order)),
	}
	if p.insts != nil {
		s.InstsCommitted = p.insts()
	}
	for _, key := range p.order {
		ps := *p.points[key]
		s.Points = append(s.Points, ps)
		switch ps.Status {
		case StatusRunning:
			s.Running++
		case StatusQueued:
			s.Queued++
		}
	}
	sort.SliceStable(s.Points, func(i, j int) bool {
		return statusRank(s.Points[i].Status) < statusRank(s.Points[j].Status)
	})
	if finished := p.done + p.failed; finished > 0 {
		meanWall := p.wallSum / float64(finished)
		remaining := s.Running + s.Queued
		s.ETASeconds = meanWall / 1000 * float64(remaining) / float64(p.workers)
	}
	return s
}

// statusRank orders snapshot points: active first, then queued, then
// settled — the order a live dashboard wants.
func statusRank(status string) int {
	switch status {
	case StatusRunning:
		return 0
	case StatusQueued:
		return 1
	case StatusFailed:
		return 2
	default:
		return 3
	}
}
