package obs

import (
	"encoding/json"
	"io"

	"tracecache/internal/stats"
)

// TraceEvent is one entry of the Chrome trace-event format ("traceEvents"
// schema), as consumed by Perfetto (ui.perfetto.dev) and chrome://tracing.
// Timestamps are nominally microseconds; the exporter writes one simulated
// cycle per microsecond, so durations in the viewer read directly as
// cycles.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level Chrome trace JSON object.
type TraceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Track (tid) assignments of the exporter.
const (
	tracePid        = 1
	TidTraceFetch   = 1 // fetch records served by the trace cache
	TidICacheFetch  = 2 // fetch records served by the instruction cache
	TidRecovery     = 3 // misprediction recovery windows
	TidFillUnit     = 4 // fill unit segment builds
	TidPromotion    = 5 // promotion / demotion / fault instants
	defaultMaxTrace = 1 << 20
)

// ChromeTrace is a Sink converting bus events into Chrome trace events:
// fetch-record lifetimes as slices on per-front-end tracks, misprediction
// recovery windows as slices on a recovery track, fill unit and promotion
// activity as instants, and window occupancy as a counter track.
type ChromeTrace struct {
	events  []TraceEvent
	max     int
	dropped uint64
}

// NewChromeTrace builds the exporter, capping the number of retained
// trace events (non-positive selects a default; events beyond the cap are
// counted as dropped).
func NewChromeTrace(maxEvents int) *ChromeTrace {
	if maxEvents <= 0 {
		maxEvents = defaultMaxTrace
	}
	return &ChromeTrace{max: maxEvents}
}

// Kinds implements Sink.
func (c *ChromeTrace) Kinds() uint64 {
	return KindFetchRecord.Bit() | KindRedirect.Bit() | KindSegFinalize.Bit() |
		KindSegPack.Bit() | KindPromote.Bit() | KindDemote.Bit() |
		KindPromotedFault.Bit() | KindWindowSample.Bit()
}

// Emit implements Sink.
func (c *ChromeTrace) Emit(ev Event) {
	if len(c.events) >= c.max {
		c.dropped++
		return
	}
	switch ev.Kind {
	case KindFetchRecord:
		tid := TidICacheFetch
		if ev.Flags&FlagFromTC != 0 {
			tid = TidTraceFetch
		}
		name := stats.FetchEnd(ev.V3).String()
		dur := ev.Dur
		if dur == 0 {
			dur = 1 // zero-width slices are invisible in the viewer
		}
		c.add(TraceEvent{
			Name: name, Ph: "X", Ts: ev.Cycle, Dur: dur, Pid: tracePid, Tid: tid,
			Args: map[string]any{
				"pc": ev.PC, "dispatched": ev.V1, "retired": ev.V2,
				"mispredict": ev.Flags&FlagMispredict != 0,
			},
		})
	case KindRedirect:
		dur := ev.Dur
		if dur == 0 {
			dur = 1
		}
		c.add(TraceEvent{
			Name: stats.CycleClass(ev.V1).String(), Ph: "X",
			Ts: ev.Cycle, Dur: dur, Pid: tracePid, Tid: TidRecovery,
			Args: map[string]any{"pc": ev.PC},
		})
	case KindSegFinalize:
		c.add(TraceEvent{
			Name: "segment", Ph: "i", Ts: ev.Cycle, Pid: tracePid, Tid: TidFillUnit,
			Args: map[string]any{
				"start": ev.PC, "len": ev.V1, "reason": ev.V2, "promoted": ev.V3,
			},
		})
	case KindSegPack:
		c.add(TraceEvent{
			Name: "pack-split", Ph: "i", Ts: ev.Cycle, Pid: tracePid, Tid: TidFillUnit,
			Args: map[string]any{"pc": ev.PC, "packed": ev.V1},
		})
	case KindPromote:
		c.add(TraceEvent{
			Name: "promote", Ph: "i", Ts: ev.Cycle, Pid: tracePid, Tid: TidPromotion,
			Args: map[string]any{"pc": ev.PC, "taken": ev.Flags&FlagTaken != 0},
		})
	case KindDemote:
		c.add(TraceEvent{
			Name: "demote", Ph: "i", Ts: ev.Cycle, Pid: tracePid, Tid: TidPromotion,
			Args: map[string]any{"pc": ev.PC, "invalidated": ev.V1},
		})
	case KindPromotedFault:
		c.add(TraceEvent{
			Name: "promoted-fault", Ph: "i", Ts: ev.Cycle, Pid: tracePid, Tid: TidPromotion,
			Args: map[string]any{"pc": ev.PC},
		})
	case KindWindowSample:
		c.add(TraceEvent{
			Name: "window occupancy", Ph: "C", Ts: ev.Cycle, Pid: tracePid,
			Args: map[string]any{"occupied": ev.V1},
		})
	}
}

func (c *ChromeTrace) add(ev TraceEvent) { c.events = append(c.events, ev) }

// Len returns the number of retained trace events.
func (c *ChromeTrace) Len() int { return len(c.events) }

// Dropped returns the number of events discarded over the cap.
func (c *ChromeTrace) Dropped() uint64 { return c.dropped }

// WriteJSON writes the trace file. meta, when non-nil, is embedded in
// otherData so the trace is self-describing. The output opens directly in
// Perfetto or chrome://tracing.
func (c *ChromeTrace) WriteJSON(w io.Writer, meta *stats.Meta) error {
	events := make([]TraceEvent, 0, len(c.events)+8)
	for tid, name := range [...]string{
		TidTraceFetch:  "fetch (trace cache)",
		TidICacheFetch: "fetch (icache)",
		TidRecovery:    "mispredict recovery",
		TidFillUnit:    "fill unit",
		TidPromotion:   "promotion",
	} {
		if name == "" {
			continue
		}
		events = append(events, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	events = append(events, TraceEvent{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "tracecache simulator"},
	})
	events = append(events, c.events...)
	tf := TraceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"timeUnit": "1 cycle = 1us"},
	}
	if c.dropped > 0 {
		tf.OtherData["droppedEvents"] = c.dropped
	}
	if meta != nil {
		tf.OtherData["meta"] = meta
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
