package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"tracecache/internal/stats"
)

// TestChromeTraceMapping checks each bus event kind maps to a well-formed
// trace event on its assigned track.
func TestChromeTraceMapping(t *testing.T) {
	c := NewChromeTrace(0)
	c.Emit(Event{Kind: KindFetchRecord, Cycle: 10, Dur: 3, Flags: FlagFromTC, V3: uint64(stats.EndMaxSize)})
	c.Emit(Event{Kind: KindFetchRecord, Cycle: 20}) // icache, zero-dur
	c.Emit(Event{Kind: KindRedirect, Cycle: 30, Dur: 12, V1: uint64(stats.CycleBranchMiss)})
	c.Emit(Event{Kind: KindSegFinalize, Cycle: 40, V1: 16})
	c.Emit(Event{Kind: KindSegPack, Cycle: 41, V1: 5})
	c.Emit(Event{Kind: KindPromote, Cycle: 42, Flags: FlagTaken})
	c.Emit(Event{Kind: KindDemote, Cycle: 43, V1: 2})
	c.Emit(Event{Kind: KindPromotedFault, Cycle: 44})
	c.Emit(Event{Kind: KindWindowSample, Cycle: 256, V1: 100})
	if c.Len() != 9 {
		t.Fatalf("Len = %d, want 9", c.Len())
	}

	if ev := c.events[0]; ev.Tid != TidTraceFetch || ev.Name != stats.EndMaxSize.String() {
		t.Errorf("trace-cache fetch = tid %d name %q", ev.Tid, ev.Name)
	}
	if ev := c.events[1]; ev.Tid != TidICacheFetch || ev.Dur == 0 {
		t.Errorf("icache fetch = tid %d dur %d (zero-dur slice not widened)", ev.Tid, ev.Dur)
	}
	if ev := c.events[2]; ev.Tid != TidRecovery || ev.Name != stats.CycleBranchMiss.String() {
		t.Errorf("recovery slice = tid %d name %q", ev.Tid, ev.Name)
	}
	if ev := c.events[8]; ev.Ph != "C" || ev.Args["occupied"] != uint64(100) {
		t.Errorf("counter sample = %+v", ev)
	}
}

// TestChromeTraceCap checks the event cap drops and counts the excess.
func TestChromeTraceCap(t *testing.T) {
	c := NewChromeTrace(3)
	for i := 0; i < 10; i++ {
		c.Emit(Event{Kind: KindPromote, Cycle: uint64(i + 1)})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", c.Dropped())
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	other := tf["otherData"].(map[string]any)
	if other["droppedEvents"].(float64) != 7 {
		t.Fatalf("droppedEvents = %v", other["droppedEvents"])
	}
}

// TestChromeTraceSchema validates the written file against the trace-event
// schema: every event has a name, a known phase, and the simulator pid;
// metadata announces the track names.
func TestChromeTraceSchema(t *testing.T) {
	c := NewChromeTrace(0)
	c.Emit(Event{Kind: KindFetchRecord, Cycle: 1, Dur: 2, Flags: FlagFromTC})
	c.Emit(Event{Kind: KindWindowSample, Cycle: 256, V1: 17})
	meta := &stats.Meta{Tool: "schema-test", ConfigHash: "abcd"}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf, meta); err != nil {
		t.Fatal(err)
	}

	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *uint64        `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace file does not parse: %v", err)
	}
	known := map[string]bool{"X": true, "i": true, "C": true, "M": true}
	var threadNames int
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			t.Errorf("event %d has no name", i)
		}
		if !known[ev.Ph] {
			t.Errorf("event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Pid == 0 {
			t.Errorf("event %d has no pid", i)
		}
		if ev.Name == "thread_name" {
			threadNames++
		}
	}
	if threadNames != 5 {
		t.Errorf("thread_name metadata events = %d, want 5", threadNames)
	}
	if tf.OtherData["meta"] == nil {
		t.Error("meta missing from otherData")
	}
}
