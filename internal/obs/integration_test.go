package obs_test

import (
	"math"
	"testing"

	"tracecache"
	"tracecache/internal/obs"
)

func smallConfig() tracecache.Config {
	cfg := tracecache.PromotionConfig(64)
	cfg.WarmupInsts = 20_000
	cfg.MaxInsts = 60_000
	return cfg
}

// TestIntervalIntegration runs a real simulation with the collector
// attached and checks the windowed telemetry reconstructs the run: at
// least two intervals whose aggregate IPC matches the final IPC within
// 1% (by construction it matches exactly).
func TestIntervalIntegration(t *testing.T) {
	prog, err := tracecache.BenchmarkProgram("compress")
	if err != nil {
		t.Fatal(err)
	}
	s, err := tracecache.NewSimulator(smallConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	coll := tracecache.NewIntervalCollector(5_000)
	s.SetIntervalCollector(coll)
	run := s.Run()

	ts := coll.Series()
	if len(ts.Intervals) < 2 {
		t.Fatalf("intervals = %d, want >= 2", len(ts.Intervals))
	}
	if ts.Benchmark != run.Benchmark || ts.Config != run.Config {
		t.Errorf("series identity %q/%q vs run %q/%q",
			ts.Benchmark, ts.Config, run.Benchmark, run.Config)
	}
	if ts.Meta == nil || ts.Meta.ConfigHash == "" {
		t.Error("series missing provenance metadata")
	}
	agg, ipc := ts.AggregateIPC(), run.IPC()
	if ipc == 0 || math.Abs(agg-ipc)/ipc > 0.01 {
		t.Fatalf("aggregate IPC %v vs run IPC %v (>1%% apart)", agg, ipc)
	}
	var cycles, retired uint64
	for _, iv := range ts.Intervals {
		cycles += iv.Cycles
		retired += iv.Retired
	}
	if cycles != run.Cycles || retired != run.Retired {
		t.Fatalf("interval totals %d cycles / %d retired vs run %d / %d",
			cycles, retired, run.Cycles, run.Retired)
	}
}

// TestBusIntegration runs a simulation with a bus attached and checks the
// event stream is consistent with the run statistics.
func TestBusIntegration(t *testing.T) {
	prog, err := tracecache.BenchmarkProgram("compress")
	if err != nil {
		t.Fatal(err)
	}
	s, err := tracecache.NewSimulator(smallConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	bus := tracecache.NewEventBus(1024)
	var counts [obs.NumKinds]uint64
	var lastCycle uint64
	bus.Attach(obs.FuncSink(func(ev obs.Event) {
		counts[ev.Kind]++
		if ev.Cycle > lastCycle {
			lastCycle = ev.Cycle
		}
	}))
	s.AttachObserver(bus)
	run := s.Run()

	if bus.Count() == 0 {
		t.Fatal("no events emitted")
	}
	for _, k := range []obs.Kind{
		obs.KindFetchRecord, obs.KindTCHit, obs.KindTCMiss,
		obs.KindSegFinalize, obs.KindPromote, obs.KindRedirect,
		obs.KindWindowSample,
	} {
		if counts[k] == 0 {
			t.Errorf("no %v events", k)
		}
	}
	if lastCycle == 0 {
		t.Error("events carry no cycle stamps")
	}
	// Fill unit events are stamped by the bus clock, so promote events must
	// appear with non-zero cycles once the clock advances.
	if run.PromotedExecuted == 0 {
		t.Error("run executed no promoted branches; bus test is vacuous")
	}
	if got := bus.Recent(); len(got) == 0 {
		t.Error("ring buffer retained nothing")
	}
}

// TestChromeTraceIntegration renders a trace from a real run and checks
// both fetch lifetimes and recovery windows appear.
func TestChromeTraceIntegration(t *testing.T) {
	prog, err := tracecache.BenchmarkProgram("compress")
	if err != nil {
		t.Fatal(err)
	}
	s, err := tracecache.NewSimulator(smallConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	chrome := tracecache.NewChromeTrace(0)
	bus := tracecache.NewEventBus(0)
	bus.Attach(chrome)
	s.AttachObserver(bus)
	run := s.Run()
	if run.Retired == 0 {
		t.Fatal("run retired nothing")
	}
	if chrome.Len() == 0 {
		t.Fatal("no trace events")
	}
}

// BenchmarkSimulatorObsDisabled measures the simulator with no observer
// attached: the baseline the <=1% overhead criterion compares against.
func BenchmarkSimulatorObsDisabled(b *testing.B) {
	benchmarkSim(b, false, false)
}

// BenchmarkSimulatorObsEnabled measures the simulator with a bus, a
// Chrome trace sink, and an interval collector all attached.
func BenchmarkSimulatorObsEnabled(b *testing.B) {
	benchmarkSim(b, true, true)
}

func benchmarkSim(b *testing.B, withBus, withColl bool) {
	prog, err := tracecache.BenchmarkProgram("compress")
	if err != nil {
		b.Fatal(err)
	}
	cfg := tracecache.PromotionConfig(64)
	cfg.WarmupInsts = 0
	cfg.MaxInsts = 200_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := tracecache.NewSimulator(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		if withBus {
			bus := tracecache.NewEventBus(0)
			bus.Attach(tracecache.NewChromeTrace(0))
			s.AttachObserver(bus)
		}
		if withColl {
			s.SetIntervalCollector(tracecache.NewIntervalCollector(10_000))
		}
		run := s.Run()
		b.SetBytes(int64(run.Retired))
	}
}
