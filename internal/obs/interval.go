package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"tracecache/internal/stats"
)

// Probe is one sample of the simulator's cumulative measured state, taken
// at interval boundaries. The collector diffs consecutive probes, so every
// field is a running total since measurement began.
type Probe struct {
	// Cycles is the measured cycles elapsed (post-warmup).
	Cycles uint64
	// Run is the cumulative measured statistics.
	Run stats.Run
	// TCLookups/TCHits are the trace cache's cumulative counters (zero for
	// the icache front end).
	TCLookups, TCHits uint64
	// PredLookups is the cumulative number of dynamic conditional-branch
	// predictions supplied by the front end's predictor (wrong path
	// included): the prediction-bandwidth demand.
	PredLookups uint64
	// OccSum is the cumulative per-cycle sum of instruction window
	// occupancy.
	OccSum uint64
}

// Interval is one windowed snapshot: the change in the headline metrics
// over a span of cycles.
type Interval struct {
	Index      int    `json:"index"`
	StartCycle uint64 `json:"startCycle"`
	Cycles     uint64 `json:"cycles"`

	Retired uint64  `json:"retired"`
	IPC     float64 `json:"ipc"`

	Fetches        uint64  `json:"fetches"`
	FetchedCorrect uint64  `json:"fetchedCorrect"`
	EffFetchRate   float64 `json:"effFetchRate"`

	TCLookups uint64  `json:"tcLookups"`
	TCHitRate float64 `json:"tcHitRate"`

	CondBranches     uint64  `json:"condBranches"`
	CondMispredicts  uint64  `json:"condMispredicts"`
	MispredictRate   float64 `json:"mispredictRate"`
	PromotedExecuted uint64  `json:"promotedExecuted"`
	// PromotionCoverage is the fraction of retired conditional branches
	// covered by a promoted (static) prediction.
	PromotionCoverage float64 `json:"promotionCoverage"`
	PromotedFaults    uint64  `json:"promotedFaults"`

	// PredLookups and PredsPerCycle quantify prediction-bandwidth demand.
	PredLookups   uint64  `json:"predLookups"`
	PredsPerCycle float64 `json:"predsPerCycle"`

	// AvgWindowOcc is the mean instruction window occupancy.
	AvgWindowOcc float64 `json:"avgWindowOcc"`
}

// TimeSeries is the full windowed telemetry of one run.
type TimeSeries struct {
	Benchmark      string      `json:"benchmark"`
	Config         string      `json:"config"`
	IntervalCycles uint64      `json:"intervalCycles"`
	Meta           *stats.Meta `json:"meta,omitempty"`
	Intervals      []Interval  `json:"intervals"`
}

// AggregateIPC returns total retired over total cycles across all
// intervals; by construction it equals the run's final IPC.
func (t *TimeSeries) AggregateIPC() float64 {
	var retired, cycles uint64
	for _, iv := range t.Intervals {
		retired += iv.Retired
		cycles += iv.Cycles
	}
	if cycles == 0 {
		return 0
	}
	return float64(retired) / float64(cycles)
}

// WriteJSON renders the time series as indented JSON.
func (t *TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteCSV renders the intervals as CSV with a header row.
func (t *TimeSeries) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "index,startCycle,cycles,retired,ipc,"+
		"fetches,effFetchRate,tcLookups,tcHitRate,condBranches,"+
		"mispredictRate,promotionCoverage,promotedFaults,predLookups,"+
		"predsPerCycle,avgWindowOcc"); err != nil {
		return err
	}
	for _, iv := range t.Intervals {
		if _, err := fmt.Fprintf(w,
			"%d,%d,%d,%d,%.6f,%d,%.6f,%d,%.6f,%d,%.6f,%.6f,%d,%d,%.6f,%.6f\n",
			iv.Index, iv.StartCycle, iv.Cycles, iv.Retired, iv.IPC,
			iv.Fetches, iv.EffFetchRate, iv.TCLookups, iv.TCHitRate,
			iv.CondBranches, iv.MispredictRate, iv.PromotionCoverage,
			iv.PromotedFaults, iv.PredLookups, iv.PredsPerCycle,
			iv.AvgWindowOcc); err != nil {
			return err
		}
	}
	return nil
}

// Collector accumulates windowed interval snapshots. The simulator drives
// it: Reset at the start of measurement (end of warmup), Observe at each
// interval boundary, and Finish at the end of the run to capture the final
// partial interval. A nil *Collector is a valid, disabled collector.
type Collector struct {
	every   uint64
	started bool
	prev    Probe
	ts      TimeSeries
}

// NewCollector builds a collector with the given interval length in
// cycles (non-positive selects 10000).
func NewCollector(everyCycles uint64) *Collector {
	if everyCycles == 0 {
		everyCycles = 10000
	}
	return &Collector{every: everyCycles, ts: TimeSeries{IntervalCycles: everyCycles}}
}

// Every returns the interval length in cycles.
func (c *Collector) Every() uint64 {
	if c == nil {
		return 0
	}
	return c.every
}

// Reset establishes the measurement baseline, discarding any intervals
// collected before it (e.g. if warmup restarted).
func (c *Collector) Reset(p Probe) {
	if c == nil {
		return
	}
	c.started = true
	c.prev = p
	c.ts.Benchmark = p.Run.Benchmark
	c.ts.Config = p.Run.Config
	c.ts.Intervals = c.ts.Intervals[:0]
}

// Observe closes the current interval at the probe.
func (c *Collector) Observe(p Probe) {
	if c == nil || !c.started {
		return
	}
	c.append(p)
}

// Finish closes the final (possibly partial) interval and attaches the
// run's provenance metadata.
func (c *Collector) Finish(p Probe, meta *stats.Meta) {
	if c == nil || !c.started {
		return
	}
	if p.Cycles > c.prev.Cycles {
		c.append(p)
	}
	c.ts.Meta = meta
}

// Series returns the collected time series.
func (c *Collector) Series() *TimeSeries {
	if c == nil {
		return &TimeSeries{}
	}
	return &c.ts
}

func (c *Collector) append(p Probe) {
	prev := &c.prev
	cycles := p.Cycles - prev.Cycles
	if cycles == 0 {
		return
	}
	iv := Interval{
		Index:            len(c.ts.Intervals),
		StartCycle:       prev.Cycles,
		Cycles:           cycles,
		Retired:          p.Run.Retired - prev.Run.Retired,
		Fetches:          p.Run.Fetches - prev.Run.Fetches,
		FetchedCorrect:   p.Run.FetchedCorrect - prev.Run.FetchedCorrect,
		TCLookups:        p.TCLookups - prev.TCLookups,
		CondBranches:     p.Run.CondBranches - prev.Run.CondBranches,
		CondMispredicts:  p.Run.CondMispredicts - prev.Run.CondMispredicts,
		PromotedExecuted: p.Run.PromotedExecuted - prev.Run.PromotedExecuted,
		PromotedFaults:   p.Run.PromotedFaults - prev.Run.PromotedFaults,
		PredLookups:      p.PredLookups - prev.PredLookups,
	}
	iv.IPC = float64(iv.Retired) / float64(cycles)
	iv.PredsPerCycle = float64(iv.PredLookups) / float64(cycles)
	iv.AvgWindowOcc = float64(p.OccSum-prev.OccSum) / float64(cycles)
	if iv.Fetches > 0 {
		iv.EffFetchRate = float64(iv.FetchedCorrect) / float64(iv.Fetches)
	}
	if iv.TCLookups > 0 {
		iv.TCHitRate = float64(p.TCHits-prev.TCHits) / float64(iv.TCLookups)
	}
	if iv.CondBranches > 0 {
		iv.MispredictRate = float64(iv.CondMispredicts) / float64(iv.CondBranches)
		iv.PromotionCoverage = float64(iv.PromotedExecuted) / float64(iv.CondBranches)
	}
	c.ts.Intervals = append(c.ts.Intervals, iv)
	c.prev = p
}
