package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"tracecache/internal/stats"
)

// TestNilCollector exercises the disabled collector.
func TestNilCollector(t *testing.T) {
	var c *Collector
	if c.Every() != 0 {
		t.Fatalf("nil Every = %d", c.Every())
	}
	c.Reset(Probe{})
	c.Observe(Probe{})
	c.Finish(Probe{}, nil)
	ts := c.Series()
	if ts == nil || len(ts.Intervals) != 0 {
		t.Fatalf("nil collector series = %+v", ts)
	}
}

func probeAt(cycles, retired, fetches, correct uint64) Probe {
	return Probe{
		Cycles: cycles,
		Run: stats.Run{
			Benchmark: "b", Config: "c",
			Retired: retired, Fetches: fetches, FetchedCorrect: correct,
		},
	}
}

// TestCollectorDiffing checks interval snapshots are deltas of the
// cumulative probes and that Finish captures the final partial interval.
func TestCollectorDiffing(t *testing.T) {
	c := NewCollector(100)
	c.Reset(probeAt(0, 0, 0, 0))
	c.Observe(probeAt(100, 250, 20, 240))
	c.Observe(probeAt(200, 450, 45, 430))
	meta := &stats.Meta{Tool: "test"}
	c.Finish(probeAt(250, 500, 60, 480), meta)

	ts := c.Series()
	if ts.Benchmark != "b" || ts.Config != "c" {
		t.Fatalf("series identity = %q/%q", ts.Benchmark, ts.Config)
	}
	if ts.Meta != meta {
		t.Fatalf("meta not attached")
	}
	if len(ts.Intervals) != 3 {
		t.Fatalf("intervals = %d, want 3", len(ts.Intervals))
	}
	want := []struct {
		start, cycles, retired uint64
		ipc                    float64
	}{
		{0, 100, 250, 2.5},
		{100, 100, 200, 2.0},
		{200, 50, 50, 1.0},
	}
	for i, w := range want {
		iv := ts.Intervals[i]
		if iv.Index != i || iv.StartCycle != w.start || iv.Cycles != w.cycles ||
			iv.Retired != w.retired || iv.IPC != w.ipc {
			t.Errorf("interval %d = %+v, want %+v", i, iv, w)
		}
	}
	// 500 retired / 250 cycles.
	if got := ts.AggregateIPC(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("AggregateIPC = %v, want 2.0", got)
	}
}

// TestCollectorEmptyRun checks the zero-cycle edge case: a run that never
// advances past the baseline produces no intervals and a zero aggregate.
func TestCollectorEmptyRun(t *testing.T) {
	c := NewCollector(100)
	c.Reset(probeAt(0, 0, 0, 0))
	c.Finish(probeAt(0, 0, 0, 0), nil)
	ts := c.Series()
	if len(ts.Intervals) != 0 {
		t.Fatalf("empty run produced %d intervals", len(ts.Intervals))
	}
	if ts.AggregateIPC() != 0 {
		t.Fatalf("empty run AggregateIPC = %v", ts.AggregateIPC())
	}
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back TimeSeries
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("empty-run JSON does not parse: %v", err)
	}
}

// TestCollectorResetDiscards checks Reset drops intervals collected before
// it (the warmup restart path).
func TestCollectorResetDiscards(t *testing.T) {
	c := NewCollector(100)
	c.Reset(probeAt(0, 0, 0, 0))
	c.Observe(probeAt(100, 100, 10, 90))
	c.Reset(probeAt(150, 0, 0, 0))
	c.Observe(probeAt(250, 300, 30, 280))
	c.Finish(probeAt(250, 300, 30, 280), nil)
	ts := c.Series()
	if len(ts.Intervals) != 1 {
		t.Fatalf("intervals after Reset = %d, want 1", len(ts.Intervals))
	}
	if iv := ts.Intervals[0]; iv.StartCycle != 150 || iv.Retired != 300 {
		t.Fatalf("interval after Reset = %+v", iv)
	}
}

// TestTimeSeriesJSONRoundTrip marshals and unmarshals a series and
// requires identity.
func TestTimeSeriesJSONRoundTrip(t *testing.T) {
	c := NewCollector(10)
	c.Reset(probeAt(0, 0, 0, 0))
	c.Observe(probeAt(10, 30, 3, 28))
	c.Finish(probeAt(17, 40, 5, 38), &stats.Meta{Tool: "rt", ConfigHash: "ff"})
	ts := c.Series()
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back TimeSeries
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != ts.Benchmark || back.IntervalCycles != ts.IntervalCycles ||
		len(back.Intervals) != len(ts.Intervals) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, ts)
	}
	for i := range back.Intervals {
		if back.Intervals[i] != ts.Intervals[i] {
			t.Errorf("interval %d: %+v vs %+v", i, back.Intervals[i], ts.Intervals[i])
		}
	}
	if back.Meta == nil || *back.Meta != *ts.Meta {
		t.Errorf("meta: %+v vs %+v", back.Meta, ts.Meta)
	}
}

// TestTimeSeriesCSV checks the CSV header matches the row arity.
func TestTimeSeriesCSV(t *testing.T) {
	c := NewCollector(10)
	c.Reset(probeAt(0, 0, 0, 0))
	c.Finish(probeAt(10, 25, 2, 24), nil)
	var buf bytes.Buffer
	if err := c.Series().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want 2", len(lines))
	}
	if h, r := strings.Count(lines[0], ","), strings.Count(lines[1], ","); h != r {
		t.Fatalf("header has %d commas, row has %d", h, r)
	}
}
