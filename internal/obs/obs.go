// Package obs is the simulator's observability layer: a low-overhead
// structured event bus with pluggable sinks, windowed time-series
// collection of the paper's headline metrics (IPC, effective fetch rate,
// trace cache hit rate, promotion coverage, prediction-bandwidth demand),
// and a Chrome/Perfetto trace-event exporter.
//
// The layer is opt-in and compiles out of the hot path via a nil-check:
// every producer holds a *Bus that is nil by default, and both Enabled and
// Emit are safe to call on a nil receiver. With no bus attached the only
// cost at an instrumentation site is a pointer comparison.
package obs

// Kind identifies the type of an Event.
type Kind uint8

// Event kinds. The payload fields each kind uses are documented inline;
// unused fields are zero.
const (
	// KindFetchRecord is the lifetime of one fetch delivery, emitted when
	// the record finalizes (all its instructions retired or squashed).
	// Span: Cycle is the delivery cycle, Dur the cycles until finalize.
	// PC is the fetch address, V1 instructions dispatched, V2 instructions
	// retired, V3 the stats.FetchEnd termination reason. FlagFromTC and
	// FlagMispredict apply.
	KindFetchRecord Kind = iota
	// KindTCHit is a trace cache hit. PC is the fetch address, V1 the
	// segment length in instructions, V2 the predictions consumed.
	KindTCHit
	// KindTCMiss is a trace cache miss. PC is the fetch address.
	KindTCMiss
	// KindICacheFetch is an instruction-cache fetch block. PC is the fetch
	// address, V1 the block length, V2 the miss latency in cycles.
	KindICacheFetch
	// KindSegFinalize is a trace segment written by the fill unit. PC is
	// the segment start, V1 its length, V2 the core.FinalizeReason, V3 the
	// number of promoted branches embedded.
	KindSegFinalize
	// KindSegPack is a fetch block split across segments by trace packing.
	// PC is the block's first instruction, V1 the instructions packed into
	// the earlier segment.
	KindSegPack
	// KindPromote is a promoted branch instance embedded by the fill unit.
	// PC is the branch; FlagTaken carries the promoted direction.
	KindPromote
	// KindDemote is a promoted branch demoted after a fault. PC is the
	// branch, V1 the number of trace cache lines invalidated.
	KindDemote
	// KindPromotedFault is a promoted branch whose static prediction was
	// wrong. PC is the branch.
	KindPromotedFault
	// KindRedirect is a misprediction recovery window. Span: Cycle is the
	// fetch cycle of the mispredicted instruction, Dur the resolution time
	// in cycles. PC is the instruction, V1 the stats.CycleClass of the
	// recovery.
	KindRedirect
	// KindWindowSample is a periodic counter sample of instruction window
	// occupancy. V1 is the number of occupied window slots.
	KindWindowSample
	// KindCheckViolation is a self-check violation (internal/check). PC is
	// the offending instruction or fetch address, V1 the check.Layer, V2
	// the dynamic sequence number when applicable.
	KindCheckViolation
	// NumKinds bounds the kind space.
	NumKinds
)

var kindNames = [NumKinds]string{
	"fetch-record", "tc-hit", "tc-miss", "icache-fetch",
	"seg-finalize", "seg-pack", "promote", "demote", "promoted-fault",
	"redirect", "window-sample", "check-violation",
}

// String names the kind.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "kind(?)"
}

// Bit returns the kind's position in a sink interest mask.
func (k Kind) Bit() uint64 { return 1 << uint(k) }

// AllKinds is the sink interest mask selecting every kind.
const AllKinds = uint64(1)<<uint(NumKinds) - 1

// Event flags.
const (
	// FlagFromTC marks a fetch served by the trace cache.
	FlagFromTC uint8 = 1 << iota
	// FlagTaken carries a branch direction.
	FlagTaken
	// FlagMispredict marks a fetch record terminated by a misprediction.
	FlagMispredict
)

// Event is one structured observation. Events are small fixed-size values
// so the ring buffer and sinks never allocate per event.
type Event struct {
	Kind  Kind
	Flags uint8
	// Cycle is when the event happened; for span kinds (KindFetchRecord,
	// KindRedirect) it is the span start. Producers without a cycle counter
	// leave it zero and the bus stamps it from the attached clock.
	Cycle uint64
	// Dur is the span length in cycles (span kinds only).
	Dur uint64
	// PC is the instruction or fetch address the event concerns.
	PC int
	// V1, V2, V3 are kind-specific payloads (see the Kind docs).
	V1, V2, V3 uint64
}

// Sink consumes events from a Bus.
type Sink interface {
	// Kinds returns the interest mask (union of Kind.Bit values, or
	// AllKinds). The bus only delivers matching events.
	Kinds() uint64
	// Emit consumes one event. Called synchronously on the emitting
	// goroutine; sinks must not retain pointers into the event.
	Emit(Event)
}

// defaultRing is the ring capacity when NewBus is given a non-positive
// size.
const defaultRing = 4096

// Bus is the event hub: it records every event into a fixed ring buffer
// (for post-mortem diagnostics) and forwards it to the attached sinks.
// A nil *Bus is a valid, permanently-disabled bus: every method is safe
// on a nil receiver, and tcvet's nilsafe analyzer enforces that each one
// guards the receiver before touching fields and that a *Bus is never
// boxed into an interface (which would defeat callers' nil checks).
//
//tc:nilsafe
type Bus struct {
	ring  []Event
	mask  uint64
	n     uint64 // total events emitted
	sinks []Sink
	clock func() uint64
}

// NewBus builds a bus whose ring holds ringSize events (rounded up to a
// power of two; non-positive selects a default).
func NewBus(ringSize int) *Bus {
	if ringSize <= 0 {
		ringSize = defaultRing
	}
	size := 1
	for size < ringSize {
		size <<= 1
	}
	return &Bus{ring: make([]Event, size), mask: uint64(size - 1)}
}

// Attach adds a sink. On a nil (disabled) bus it is a no-op: the sink
// will simply never see events.
func (b *Bus) Attach(s Sink) {
	if b == nil {
		return
	}
	b.sinks = append(b.sinks, s)
}

// SetClock installs a cycle source used to stamp events emitted with a
// zero Cycle (producers below the simulator, such as the fill unit, have
// no cycle counter of their own). A no-op on a nil bus.
func (b *Bus) SetClock(fn func() uint64) {
	if b == nil {
		return
	}
	b.clock = fn
}

// Enabled reports whether events of the kind are being observed. It is
// the fast-path guard: nil-safe, so instrumentation sites read
//
//	if bus.Enabled(obs.KindX) { bus.Emit(obs.Event{...}) }
//
// and cost one pointer comparison when observability is off.
func (b *Bus) Enabled(Kind) bool { return b != nil }

// Emit records the event and forwards it to interested sinks. Safe on a
// nil bus (a no-op).
func (b *Bus) Emit(ev Event) {
	if b == nil {
		return
	}
	if ev.Cycle == 0 && b.clock != nil {
		ev.Cycle = b.clock()
	}
	b.ring[b.n&b.mask] = ev
	b.n++
	bit := ev.Kind.Bit()
	for _, s := range b.sinks {
		if s.Kinds()&bit != 0 {
			s.Emit(ev)
		}
	}
}

// Count returns the total number of events emitted.
func (b *Bus) Count() uint64 {
	if b == nil {
		return 0
	}
	return b.n
}

// Recent returns the events still held by the ring, oldest first.
func (b *Bus) Recent() []Event {
	if b == nil || b.n == 0 {
		return nil
	}
	size := uint64(len(b.ring))
	start, count := uint64(0), b.n
	if b.n > size {
		start, count = b.n-size, size
	}
	out := make([]Event, 0, count)
	for i := start; i < b.n; i++ {
		out = append(out, b.ring[i&b.mask])
	}
	return out
}

// FuncSink adapts a function to the Sink interface, observing every kind.
type FuncSink func(Event)

// Kinds implements Sink.
func (FuncSink) Kinds() uint64 { return AllKinds }

// Emit implements Sink.
func (f FuncSink) Emit(ev Event) { f(ev) }
