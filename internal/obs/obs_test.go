package obs

import "testing"

// TestNilBus exercises every method on a nil *Bus: the disabled path must
// be safe at every instrumentation site.
func TestNilBus(t *testing.T) {
	var b *Bus
	if b.Enabled(KindTCHit) {
		t.Fatal("nil bus reports enabled")
	}
	b.Emit(Event{Kind: KindTCHit}) // must not panic
	if b.Count() != 0 {
		t.Fatalf("nil bus Count = %d", b.Count())
	}
	if got := b.Recent(); got != nil {
		t.Fatalf("nil bus Recent = %v", got)
	}
}

// TestRingWraparound checks that Recent returns the newest ring-capacity
// events, oldest first, once the ring has wrapped.
func TestRingWraparound(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 10; i++ {
		b.Emit(Event{Kind: KindTCMiss, PC: i})
	}
	if b.Count() != 10 {
		t.Fatalf("Count = %d, want 10", b.Count())
	}
	got := b.Recent()
	if len(got) != 4 {
		t.Fatalf("Recent len = %d, want 4", len(got))
	}
	for i, ev := range got {
		if want := 6 + i; ev.PC != want {
			t.Errorf("Recent[%d].PC = %d, want %d", i, ev.PC, want)
		}
	}
}

// maskSink records events and advertises a fixed interest mask.
type maskSink struct {
	mask uint64
	got  []Event
}

func (s *maskSink) Kinds() uint64 { return s.mask }
func (s *maskSink) Emit(ev Event) { s.got = append(s.got, ev) }

// TestSinkFiltering checks that the bus delivers only the kinds a sink
// asked for.
func TestSinkFiltering(t *testing.T) {
	b := NewBus(8)
	hits := &maskSink{mask: KindTCHit.Bit()}
	all := &maskSink{mask: AllKinds}
	b.Attach(hits)
	b.Attach(all)
	b.Emit(Event{Kind: KindTCHit})
	b.Emit(Event{Kind: KindTCMiss})
	b.Emit(Event{Kind: KindPromote})
	if len(hits.got) != 1 || hits.got[0].Kind != KindTCHit {
		t.Fatalf("filtered sink got %v", hits.got)
	}
	if len(all.got) != 3 {
		t.Fatalf("AllKinds sink got %d events, want 3", len(all.got))
	}
}

// TestClockStamping checks that zero-cycle events are stamped from the
// attached clock and explicit cycles are preserved.
func TestClockStamping(t *testing.T) {
	b := NewBus(8)
	now := uint64(42)
	b.SetClock(func() uint64 { return now })
	var got []Event
	b.Attach(FuncSink(func(ev Event) { got = append(got, ev) }))
	b.Emit(Event{Kind: KindPromote})            // stamped
	b.Emit(Event{Kind: KindRedirect, Cycle: 7}) // preserved
	if got[0].Cycle != 42 {
		t.Errorf("stamped cycle = %d, want 42", got[0].Cycle)
	}
	if got[1].Cycle != 7 {
		t.Errorf("explicit cycle = %d, want 7", got[1].Cycle)
	}
}

// TestKindStrings checks every kind names itself.
func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" || k.String() == "kind(?)" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if NumKinds.String() != "kind(?)" {
		t.Errorf("out-of-range kind should name as kind(?)")
	}
	if AllKinds != uint64(1)<<uint(NumKinds)-1 {
		t.Errorf("AllKinds mask out of sync with NumKinds")
	}
}
