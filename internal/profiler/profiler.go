// Package profiler wires pprof CPU and heap profiling into the command-line
// tools behind two flags, so perf work on the simulator (see BENCH_perf.json)
// can collect profiles from any real workload, not just the Go benchmarks.
package profiler

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (when non-empty, after a final GC so the profile reflects live objects).
// Either path may be empty; with both empty, Start is a no-op and stop
// returns nil. Call stop exactly once, before process exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiler: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiler: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiler: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiler: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialise final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiler: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
