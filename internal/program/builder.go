package program

import (
	"fmt"

	"tracecache/internal/isa"
)

// Builder assembles a Program incrementally, with label resolution for
// forward branch targets.
type Builder struct {
	prog    *Program
	labels  map[string]int
	patches []patch
	errs    []error
}

type patch struct {
	pc    int
	label string
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		prog:   New(name),
		labels: make(map[string]int),
	}
}

// PC returns the index of the next instruction to be emitted.
func (b *Builder) PC() int { return len(b.prog.Code) }

// Emit appends an instruction and returns its index.
func (b *Builder) Emit(in isa.Inst) int {
	pc := len(b.prog.Code)
	b.prog.Code = append(b.prog.Code, in)
	return pc
}

// Here defines a label at the current PC.
func (b *Builder) Here(label string) {
	if _, dup := b.labels[label]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", label))
		return
	}
	b.labels[label] = b.PC()
	b.prog.Label(b.PC(), label)
}

// EmitTo appends a control instruction whose target is the given label,
// which may be defined later.
func (b *Builder) EmitTo(in isa.Inst, label string) int {
	pc := b.Emit(in)
	if target, ok := b.labels[label]; ok {
		b.prog.Code[pc].Target = target
	} else {
		b.patches = append(b.patches, patch{pc: pc, label: label})
	}
	return pc
}

// Word sets an initial data word at the given byte address.
func (b *Builder) Word(addr uint64, v int64) { b.prog.Data[addr] = v }

// Entry marks the program entry point at the given label.
func (b *Builder) Entry(label string) {
	if pc, ok := b.labels[label]; ok {
		b.prog.Entry = pc
		return
	}
	b.patches = append(b.patches, patch{pc: -1, label: label})
}

// Build resolves all pending labels, validates, and returns the program.
func (b *Builder) Build() (*Program, error) {
	for _, p := range b.patches {
		target, ok := b.labels[p.label]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined label %q", b.prog.Name, p.label)
		}
		if p.pc == -1 {
			b.prog.Entry = target
		} else {
			b.prog.Code[p.pc].Target = target
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}
