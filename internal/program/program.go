// Package program defines the executable image consumed by the simulator:
// a code segment of decoded instructions, an initial data image, and
// optional symbol information for diagnostics.
package program

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tracecache/internal/isa"
)

// Program is a complete executable image. The PC space is the index space
// of Code; data addresses live in a separate byte-addressed space whose
// initial contents are given by Data.
type Program struct {
	Name  string
	Code  []isa.Inst
	Entry int
	// Data holds the initial memory image as 8-byte words keyed by byte
	// address (addresses are 8-byte aligned by construction).
	Data map[uint64]int64
	// Symbols maps instruction indices to labels (function entries, loop
	// heads) for disassembly output.
	Symbols map[int]string

	// hashOnce/hashVal memoize Hash: programs are immutable after
	// construction (execution state copies Data; symbols are excluded),
	// and trace eligibility checks hash on every sweep point.
	hashOnce sync.Once
	hashVal  uint64
}

// New returns an empty program with initialized maps.
func New(name string) *Program {
	return &Program{
		Name:    name,
		Data:    make(map[uint64]int64),
		Symbols: make(map[int]string),
	}
}

// Validate checks that every instruction is well formed, the entry point is
// in range, and the program contains a halt (so a run can terminate).
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q: empty code segment", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Code) {
		return fmt.Errorf("program %q: entry %d out of range", p.Name, p.Entry)
	}
	halt := false
	for pc, in := range p.Code {
		if err := in.Validate(len(p.Code)); err != nil {
			return fmt.Errorf("program %q: pc %d: %w", p.Name, pc, err)
		}
		if in.Op == isa.OpHalt {
			halt = true
		}
	}
	if !halt {
		return fmt.Errorf("program %q: no halt instruction", p.Name)
	}
	return nil
}

// Hash returns a content hash of the program: FNV-64a over the code
// segment, entry point, and initial data image (symbols and the display
// name are excluded — they do not affect execution). Two programs with
// equal hashes produce the same retired instruction stream for the same
// budget, which is what the trace store keys on. The hash is computed
// once and memoized; the program must not change after the first call.
func (p *Program) Hash() uint64 {
	p.hashOnce.Do(func() { p.hashVal = p.hashContent() })
	return p.hashVal
}

func (p *Program) hashContent() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(p.Entry))
	mix(uint64(len(p.Code)))
	for _, in := range p.Code {
		mix(uint64(in.Op) | uint64(in.Cond)<<8 | uint64(in.Rd)<<16 |
			uint64(in.Rs1)<<24 | uint64(in.Rs2)<<32)
		mix(uint64(in.Imm))
		mix(uint64(in.Target))
	}
	addrs := make([]uint64, 0, len(p.Data))
	for a := range p.Data {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		mix(a)
		mix(uint64(p.Data[a]))
	}
	return h
}

// Label records a symbol for the given instruction index.
func (p *Program) Label(pc int, name string) {
	if p.Symbols == nil {
		p.Symbols = make(map[int]string)
	}
	p.Symbols[pc] = name
}

// Disassemble renders the code segment as an assembly listing.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s, %d instructions, entry @%d\n", p.Name, len(p.Code), p.Entry)
	for pc, in := range p.Code {
		if sym, ok := p.Symbols[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", sym)
		}
		fmt.Fprintf(&b, "%6d: %s\n", pc, in)
	}
	return b.String()
}

// StaticStats summarises the static properties of a program.
type StaticStats struct {
	Insts        int
	CondBranches int
	Jumps        int
	Calls        int
	Returns      int
	Indirects    int
	Traps        int
	Loads        int
	Stores       int
	// BlockSizes is the distribution of static basic-block lengths, where
	// a block runs from a leader to the next control instruction.
	BlockSizes []int
}

// Stats computes static statistics over the code segment.
func (p *Program) Stats() StaticStats {
	var s StaticStats
	s.Insts = len(p.Code)
	blockLen := 0
	for _, in := range p.Code {
		blockLen++
		switch in.Op {
		case isa.OpBr:
			s.CondBranches++
		case isa.OpJmp:
			s.Jumps++
		case isa.OpCall:
			s.Calls++
		case isa.OpRet:
			s.Returns++
		case isa.OpJmpInd:
			s.Indirects++
		case isa.OpTrap:
			s.Traps++
		case isa.OpLoad:
			s.Loads++
		case isa.OpStore:
			s.Stores++
		}
		if in.IsControl() {
			s.BlockSizes = append(s.BlockSizes, blockLen)
			blockLen = 0
		}
	}
	if blockLen > 0 {
		s.BlockSizes = append(s.BlockSizes, blockLen)
	}
	return s
}

// MeanBlockSize returns the mean static basic-block length.
func (s StaticStats) MeanBlockSize() float64 {
	if len(s.BlockSizes) == 0 {
		return 0
	}
	total := 0
	for _, n := range s.BlockSizes {
		total += n
	}
	return float64(total) / float64(len(s.BlockSizes))
}

// SortedSymbols returns symbols ordered by address, for stable listings.
func (p *Program) SortedSymbols() []string {
	pcs := make([]int, 0, len(p.Symbols))
	for pc := range p.Symbols {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	out := make([]string, 0, len(pcs))
	for _, pc := range pcs {
		out = append(out, fmt.Sprintf("%6d %s", pc, p.Symbols[pc]))
	}
	return out
}
