// Package program defines the executable image consumed by the simulator:
// a code segment of decoded instructions, an initial data image, and
// optional symbol information for diagnostics.
package program

import (
	"fmt"
	"sort"
	"strings"

	"tracecache/internal/isa"
)

// Program is a complete executable image. The PC space is the index space
// of Code; data addresses live in a separate byte-addressed space whose
// initial contents are given by Data.
type Program struct {
	Name  string
	Code  []isa.Inst
	Entry int
	// Data holds the initial memory image as 8-byte words keyed by byte
	// address (addresses are 8-byte aligned by construction).
	Data map[uint64]int64
	// Symbols maps instruction indices to labels (function entries, loop
	// heads) for disassembly output.
	Symbols map[int]string
}

// New returns an empty program with initialized maps.
func New(name string) *Program {
	return &Program{
		Name:    name,
		Data:    make(map[uint64]int64),
		Symbols: make(map[int]string),
	}
}

// Validate checks that every instruction is well formed, the entry point is
// in range, and the program contains a halt (so a run can terminate).
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q: empty code segment", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Code) {
		return fmt.Errorf("program %q: entry %d out of range", p.Name, p.Entry)
	}
	halt := false
	for pc, in := range p.Code {
		if err := in.Validate(len(p.Code)); err != nil {
			return fmt.Errorf("program %q: pc %d: %w", p.Name, pc, err)
		}
		if in.Op == isa.OpHalt {
			halt = true
		}
	}
	if !halt {
		return fmt.Errorf("program %q: no halt instruction", p.Name)
	}
	return nil
}

// Label records a symbol for the given instruction index.
func (p *Program) Label(pc int, name string) {
	if p.Symbols == nil {
		p.Symbols = make(map[int]string)
	}
	p.Symbols[pc] = name
}

// Disassemble renders the code segment as an assembly listing.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s, %d instructions, entry @%d\n", p.Name, len(p.Code), p.Entry)
	for pc, in := range p.Code {
		if sym, ok := p.Symbols[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", sym)
		}
		fmt.Fprintf(&b, "%6d: %s\n", pc, in)
	}
	return b.String()
}

// StaticStats summarises the static properties of a program.
type StaticStats struct {
	Insts        int
	CondBranches int
	Jumps        int
	Calls        int
	Returns      int
	Indirects    int
	Traps        int
	Loads        int
	Stores       int
	// BlockSizes is the distribution of static basic-block lengths, where
	// a block runs from a leader to the next control instruction.
	BlockSizes []int
}

// Stats computes static statistics over the code segment.
func (p *Program) Stats() StaticStats {
	var s StaticStats
	s.Insts = len(p.Code)
	blockLen := 0
	for _, in := range p.Code {
		blockLen++
		switch in.Op {
		case isa.OpBr:
			s.CondBranches++
		case isa.OpJmp:
			s.Jumps++
		case isa.OpCall:
			s.Calls++
		case isa.OpRet:
			s.Returns++
		case isa.OpJmpInd:
			s.Indirects++
		case isa.OpTrap:
			s.Traps++
		case isa.OpLoad:
			s.Loads++
		case isa.OpStore:
			s.Stores++
		}
		if in.IsControl() {
			s.BlockSizes = append(s.BlockSizes, blockLen)
			blockLen = 0
		}
	}
	if blockLen > 0 {
		s.BlockSizes = append(s.BlockSizes, blockLen)
	}
	return s
}

// MeanBlockSize returns the mean static basic-block length.
func (s StaticStats) MeanBlockSize() float64 {
	if len(s.BlockSizes) == 0 {
		return 0
	}
	total := 0
	for _, n := range s.BlockSizes {
		total += n
	}
	return float64(total) / float64(len(s.BlockSizes))
}

// SortedSymbols returns symbols ordered by address, for stable listings.
func (p *Program) SortedSymbols() []string {
	pcs := make([]int, 0, len(p.Symbols))
	for pc := range p.Symbols {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	out := make([]string, 0, len(pcs))
	for _, pc := range pcs {
		out = append(out, fmt.Sprintf("%6d %s", pc, p.Symbols[pc]))
	}
	return out
}
