package program

import (
	"strings"
	"testing"

	"tracecache/internal/isa"
)

func tiny(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("tiny")
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 3})
	b.Here("loop")
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: 1, Rs2: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderResolvesBackwardLabel(t *testing.T) {
	p := tiny(t)
	if p.Code[2].Target != 1 {
		t.Errorf("loop branch target = %d, want 1", p.Code[2].Target)
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0", p.Entry)
	}
}

func TestBuilderResolvesForwardLabel(t *testing.T) {
	b := NewBuilder("fwd")
	b.EmitTo(isa.Inst{Op: isa.OpJmp}, "end")
	b.Emit(isa.Inst{Op: isa.OpNop})
	b.Here("end")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("end")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Target != 2 {
		t.Errorf("forward target = %d, want 2", p.Code[0].Target)
	}
	if p.Entry != 2 {
		t.Errorf("entry = %d, want 2", p.Entry)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.EmitTo(isa.Inst{Op: isa.OpJmp}, "nowhere")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Here("x")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Here("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestValidateRejectsEmptyAndNoHalt(t *testing.T) {
	p := New("empty")
	if err := p.Validate(); err == nil {
		t.Error("empty program accepted")
	}
	p.Code = []isa.Inst{{Op: isa.OpNop}}
	if err := p.Validate(); err == nil {
		t.Error("program without halt accepted")
	}
	p.Code = []isa.Inst{{Op: isa.OpHalt}}
	if err := p.Validate(); err != nil {
		t.Errorf("minimal program rejected: %v", err)
	}
	p.Entry = 5
	if err := p.Validate(); err == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestBuilderDataWords(t *testing.T) {
	b := NewBuilder("data")
	b.Word(0x1000, 42)
	b.Word(0x1008, -7)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Data[0x1000] != 42 || p.Data[0x1008] != -7 {
		t.Errorf("data image = %v", p.Data)
	}
}

func TestDisassembleIncludesSymbols(t *testing.T) {
	p := tiny(t)
	asm := p.Disassemble()
	for _, want := range []string{"main:", "loop:", "br.gt r1, r0, @1", "halt"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder("stats")
	b.Here("f")
	b.Emit(isa.Inst{Op: isa.OpLoad, Rd: 1, Rs1: 2})
	b.Emit(isa.Inst{Op: isa.OpStore, Rs1: 2, Rs2: 1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ}, "f")
	b.EmitTo(isa.Inst{Op: isa.OpCall}, "f")
	b.Emit(isa.Inst{Op: isa.OpRet})
	b.Emit(isa.Inst{Op: isa.OpJmpInd, Rs1: 3})
	b.Emit(isa.Inst{Op: isa.OpTrap})
	b.EmitTo(isa.Inst{Op: isa.OpJmp}, "f")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("f")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.CondBranches != 1 || s.Calls != 1 || s.Returns != 1 || s.Indirects != 1 ||
		s.Traps != 1 || s.Jumps != 1 || s.Loads != 1 || s.Stores != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Blocks: [ld,st,br], [call], [ret], [jr], [trap], [jmp], [halt]
	if len(s.BlockSizes) != 7 {
		t.Errorf("block count = %d, want 7 (%v)", len(s.BlockSizes), s.BlockSizes)
	}
	if got := s.MeanBlockSize(); got <= 1 || got > 2 {
		t.Errorf("mean block size = %v", got)
	}
}

func TestMeanBlockSizeEmpty(t *testing.T) {
	var s StaticStats
	if s.MeanBlockSize() != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestSortedSymbols(t *testing.T) {
	p := tiny(t)
	syms := p.SortedSymbols()
	if len(syms) != 2 || !strings.Contains(syms[0], "main") || !strings.Contains(syms[1], "loop") {
		t.Errorf("symbols = %v", syms)
	}
}
