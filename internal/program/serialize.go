package program

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// fileMagic identifies serialized program images.
const fileMagic = "TCPROG1\n"

// Save writes the program to w in a self-describing binary format, so
// generated workloads can be stored and rerun without regeneration.
func (p *Program) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return fmt.Errorf("program: save: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(p); err != nil {
		return fmt.Errorf("program: save %q: %w", p.Name, err)
	}
	return bw.Flush()
}

// Load reads a program written by Save and validates it.
func Load(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("program: load: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("program: load: bad magic %q", magic)
	}
	var p Program
	if err := gob.NewDecoder(br).Decode(&p); err != nil {
		return nil, fmt.Errorf("program: load: %w", err)
	}
	if p.Data == nil {
		p.Data = make(map[uint64]int64)
	}
	if p.Symbols == nil {
		p.Symbols = make(map[int]string)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// SaveFile writes the program image to a file.
func (p *Program) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a program image from a file.
func LoadFile(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
