package program

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"tracecache/internal/isa"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := tiny(t)
	p.Data[0x1000] = 42
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Entry != p.Entry || len(got.Code) != len(p.Code) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range p.Code {
		if got.Code[i] != p.Code[i] {
			t.Fatalf("code[%d] = %v, want %v", i, got.Code[i], p.Code[i])
		}
	}
	if got.Data[0x1000] != 42 {
		t.Errorf("data lost: %v", got.Data)
	}
	if got.Symbols[0] != p.Symbols[0] {
		t.Errorf("symbols lost: %v", got.Symbols)
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(strings.NewReader("NOTAPROG........")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	p := tiny(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestLoadValidates(t *testing.T) {
	// An image whose program fails validation (no halt) must be rejected.
	bad := New("bad")
	bad.Code = []isa.Inst{{Op: isa.OpNop}}
	var buf bytes.Buffer
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	p := tiny(t)
	path := filepath.Join(t.TempDir(), "prog.tc")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name {
		t.Errorf("name = %q", got.Name)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.tc")); err == nil {
		t.Fatal("missing file accepted")
	}
}
