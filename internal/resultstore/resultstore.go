// Package resultstore is the persistent, content-addressed result cache
// behind the sweep service: one file per simulated point, keyed by the
// full configuration hash (stats.Meta.ConfigHash — budgets and sampling
// schedule included), the benchmark name, the execution mode, and the
// store format version. A point simulated by any process is thereafter
// served from disk by every process and user that asks for the identical
// point, so repeated sweeps cost zero simulation (journal provenance
// "store"; see DESIGN.md §11 for the keying and fidelity contract).
//
// Durability: entries are installed atomically (temp file + rename via
// internal/atomicfile, EXDEV-safe) and carry a CRC-32 of their payload.
// A truncated, corrupt, or mismatched entry is never fatal: Get
// quarantines the file (renamed aside with a ".quarantined" suffix for
// post-mortem) and reports a miss, so the point is simply re-simulated
// and re-stored.
package resultstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"tracecache/internal/atomicfile"
	"tracecache/internal/metrics"
	"tracecache/internal/stats"
)

// FormatVersion is the on-disk entry format version. It is part of the
// content address, so a format change simply misses every old entry
// instead of misreading it.
const FormatVersion = 1

// Execution modes a key can record. Results of different modes are
// different fidelity classes (DESIGN.md §11): a detailed measurement, a
// front-end-only replay (cycle-domain statistics undefined), and a
// sampled interval estimate are never each other's cache hits.
const (
	ModeDetailed = "detailed"
	ModeReplay   = "replay"
	ModeSampled  = "sampled"
)

// magic is the first token of every entry file.
const magic = "tcresult"

// quarantineSuffix marks entries set aside by Get after a failed load.
const quarantineSuffix = ".quarantined"

// Key is the content address of one stored result.
type Key struct {
	// ConfigHash is the full machine-configuration digest (sim.Config.Hash,
	// recorded as stats.Meta.ConfigHash), which covers every simulated
	// parameter including the run budgets and the sampling schedule.
	ConfigHash string `json:"configHash"`
	// Benchmark is the workload name.
	Benchmark string `json:"benchmark"`
	// Mode is the execution mode: ModeDetailed, ModeReplay or ModeSampled.
	Mode string `json:"mode"`
}

// Validate reports key shape errors.
func (k Key) Validate() error {
	if k.ConfigHash == "" || k.Benchmark == "" {
		return fmt.Errorf("resultstore: incomplete key %+v", k)
	}
	switch k.Mode {
	case ModeDetailed, ModeReplay, ModeSampled:
		return nil
	}
	return fmt.Errorf("resultstore: unknown mode %q", k.Mode)
}

// digest folds the key and the format version into the address hash.
func (k Key) digest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|%s|%s|%s", FormatVersion, k.ConfigHash, k.Benchmark, k.Mode)
	return h.Sum64()
}

// FileName is the content-addressed file name of the key's entry: a
// sanitized benchmark prefix for human browsing, the mode, and the
// digest. It is a pure function of the key and the format version, so
// the same point maps to the same file across processes and machines.
func (k Key) FileName() string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		}
		return '-'
	}, k.Benchmark)
	if name == "" {
		name = "point"
	}
	return fmt.Sprintf("%s-%s-%016x.tcresult", name, k.Mode, k.digest())
}

// Entry is one stored result: the key it was stored under (verified on
// load, so a digest collision reads as a miss, not as wrong numbers),
// the display configuration name, and the result payload — a full
// stats.Run, plus the interval estimates for sampled entries. Meta
// travels inside Run/Sampled verbatim, describing the run that
// originally produced the numbers.
type Entry struct {
	Version int    `json:"version"`
	Key     Key    `json:"key"`
	Config  string `json:"config,omitempty"`

	Run     *stats.Run     `json:"run,omitempty"`
	Sampled *stats.Sampled `json:"sampled,omitempty"`
}

// Metrics counts store traffic. All fields are registry-backed atomics;
// a nil *Metrics disables counting.
type Metrics struct {
	Hits        *metrics.Counter
	Misses      *metrics.Counter
	Puts        *metrics.Counter
	Quarantined *metrics.Counter
}

// InstrumentStore registers the store counter set in the registry.
func InstrumentStore(r *metrics.Registry) *Metrics {
	return &Metrics{
		Hits: r.Counter("tracecache_store_hits_total",
			"Run requests served from the persistent result store."),
		Misses: r.Counter("tracecache_store_misses_total",
			"Store lookups that found no usable entry."),
		Puts: r.Counter("tracecache_store_puts_total",
			"Results persisted to the store."),
		Quarantined: r.Counter("tracecache_store_quarantined_total",
			"Corrupt store entries renamed aside during load."),
	}
}

// Store is an on-disk result cache rooted at one directory. It is safe
// for concurrent use by any number of goroutines and processes: reads
// see either a complete entry or none (atomic installs), and concurrent
// writers of the same key install identical content.
type Store struct {
	dir string
	// Metrics, when non-nil, counts hits/misses/puts/quarantines.
	// Set before first use.
	Metrics *Metrics
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// encode renders an entry file: a one-line header carrying the magic,
// the format version and the payload CRC, then the JSON payload.
func encode(e *Entry) ([]byte, error) {
	e.Version = FormatVersion
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	head := fmt.Sprintf("%s %d %08x\n", magic, FormatVersion, crc32.ChecksumIEEE(payload))
	out := make([]byte, 0, len(head)+len(payload)+1)
	out = append(out, head...)
	out = append(out, payload...)
	out = append(out, '\n')
	return out, nil
}

// decode parses and verifies an entry file against the key it was looked
// up under. Every failure is returned as an error; the caller decides
// whether to quarantine.
func decode(data []byte, want Key) (*Entry, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("truncated header")
	}
	var version int
	var crc uint32
	var gotMagic string
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %d %08x", &gotMagic, &version, &crc); err != nil || gotMagic != magic {
		return nil, fmt.Errorf("bad header %q", string(data[:nl]))
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("format version %d, want %d", version, FormatVersion)
	}
	payload := bytes.TrimSuffix(data[nl+1:], []byte("\n"))
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("payload CRC %08x, want %08x", got, crc)
	}
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}
	if e.Key != want {
		return nil, fmt.Errorf("entry key %+v, want %+v (digest collision or stale store)", e.Key, want)
	}
	if e.Run == nil {
		return nil, fmt.Errorf("entry holds no result")
	}
	return &e, nil
}

// Get loads the entry stored under key. A missing file is a plain miss
// (nil, nil). A file that fails verification — truncated, corrupt CRC,
// undecodable payload, version or key mismatch — is quarantined (renamed
// aside, best-effort) and reported as a miss with a non-nil error
// describing what was found; the caller can log it and re-simulate.
func (s *Store) Get(key Key) (*Entry, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	path := filepath.Join(s.dir, key.FileName())
	data, err := os.ReadFile(path)
	if err != nil {
		if m := s.Metrics; m != nil {
			m.Misses.Inc()
		}
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	e, derr := decode(data, key)
	if derr != nil {
		s.quarantine(path)
		if m := s.Metrics; m != nil {
			m.Misses.Inc()
		}
		return nil, fmt.Errorf("resultstore: %s: quarantined: %w", filepath.Base(path), derr)
	}
	if m := s.Metrics; m != nil {
		m.Hits.Inc()
	}
	return e, nil
}

// quarantine sets a failed entry aside so it stops shadowing the key but
// stays inspectable. Best-effort: on rename failure it falls back to
// removal, and a failure of that too leaves the file for the next Get to
// retry.
func (s *Store) quarantine(path string) {
	if m := s.Metrics; m != nil {
		m.Quarantined.Inc()
	}
	if err := os.Rename(path, path+quarantineSuffix); err != nil {
		os.Remove(path)
	}
}

// Put persists an entry under its key, atomically, overwriting any
// previous entry for the key. The entry must carry a Run (Sampled is
// optional and accompanies ModeSampled entries).
func (s *Store) Put(e *Entry) error {
	if err := e.Key.Validate(); err != nil {
		return err
	}
	if e.Run == nil {
		return fmt.Errorf("resultstore: entry without a result")
	}
	data, err := encode(e)
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, e.Key.FileName())
	if err := atomicfile.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if m := s.Metrics; m != nil {
		m.Puts.Inc()
	}
	return nil
}

// Len counts the live (non-quarantined, non-temporary) entries on disk.
func (s *Store) Len() (int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("resultstore: %w", err)
	}
	n := 0
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".tcresult") {
			n++
		}
	}
	return n, nil
}
