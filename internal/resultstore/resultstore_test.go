package resultstore_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tracecache/internal/metrics"
	"tracecache/internal/resultstore"
	"tracecache/internal/stats"
)

func sampleEntry() *resultstore.Entry {
	return &resultstore.Entry{
		Key: resultstore.Key{
			ConfigHash: "cafebabe00112233",
			Benchmark:  "gcc",
			Mode:       resultstore.ModeDetailed,
		},
		Config: "baseline",
		Run: &stats.Run{
			Benchmark: "gcc", Config: "baseline",
			Cycles: 1200, Retired: 3000,
			Fetches: 1100, FetchedCorrect: 2950, FetchedWrong: 40,
			CondBranches: 400, CondMispredicts: 25,
			Meta: &stats.Meta{
				Tool: "tcbench", ConfigHash: "cafebabe00112233",
				WarmupInsts: 1000, MaxInsts: 3000,
				Provenance: stats.ProvCold, WallMillis: 41.5,
			},
		},
	}
}

func openStore(t *testing.T, dir string) *resultstore.Store {
	t.Helper()
	s, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Metrics = resultstore.InstrumentStore(metrics.NewRegistry())
	return s
}

// entryPath locates the single live entry file of a one-entry store.
func entryPath(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tcresult") {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no entry file in store")
	return ""
}

func TestRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir())
	want := sampleEntry()
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(want.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("stored entry not found")
	}
	if !reflect.DeepEqual(got.Run, want.Run) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got.Run, want.Run)
	}
	if got.Config != "baseline" || got.Key != want.Key {
		t.Errorf("entry identity = (%q, %+v)", got.Config, got.Key)
	}
	if n, _ := s.Len(); n != 1 {
		t.Errorf("store holds %d entries, want 1", n)
	}
	if s.Metrics.Hits.Value() != 1 || s.Metrics.Puts.Value() != 1 {
		t.Errorf("hits=%d puts=%d, want 1/1", s.Metrics.Hits.Value(), s.Metrics.Puts.Value())
	}
}

func TestMissingKeyIsPlainMiss(t *testing.T) {
	s := openStore(t, t.TempDir())
	e, err := s.Get(sampleEntry().Key)
	if e != nil || err != nil {
		t.Fatalf("empty-store Get = (%v, %v), want (nil, nil)", e, err)
	}
	if s.Metrics.Misses.Value() != 1 {
		t.Errorf("misses = %d, want 1", s.Metrics.Misses.Value())
	}
}

// TestTruncatedEntryQuarantined covers the crash-mid-install shape: a cut
// file must be set aside (not fatal, not served) and the key must read as
// a miss afterwards.
func TestTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	want := sampleEntry()
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, dir)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	e, err := s.Get(want.Key)
	if e != nil {
		t.Fatal("truncated entry was served")
	}
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("err = %v, want a quarantine report", err)
	}
	if _, serr := os.Stat(path + ".quarantined"); serr != nil {
		t.Errorf("quarantine file missing: %v", serr)
	}
	if n, _ := s.Len(); n != 0 {
		t.Errorf("store still counts %d live entries", n)
	}
	// The key is now a plain miss and can be repopulated.
	if e, err := s.Get(want.Key); e != nil || err != nil {
		t.Fatalf("post-quarantine Get = (%v, %v), want (nil, nil)", e, err)
	}
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	if e, err := s.Get(want.Key); e == nil || err != nil {
		t.Fatalf("repopulated Get = (%v, %v)", e, err)
	}
	if s.Metrics.Quarantined.Value() != 1 {
		t.Errorf("quarantined = %d, want 1", s.Metrics.Quarantined.Value())
	}
}

// TestCorruptPayloadQuarantined flips one payload byte: the CRC must
// reject it.
func TestCorruptPayloadQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	want := sampleEntry()
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, dir)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x20 // still likely valid JSON text, but wrong bytes
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := s.Get(want.Key)
	if e != nil || err == nil {
		t.Fatalf("corrupt entry Get = (%v, %v), want quarantine error", e, err)
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Errorf("err = %v, want a CRC mismatch", err)
	}
}

// TestKeyMismatchQuarantined plants a valid entry under another key's
// file name (digest collision / hand-copied store): served as a miss, not
// as wrong numbers.
func TestKeyMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	a := sampleEntry()
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	b := a.Key
	b.Benchmark = "compress"
	data, _ := os.ReadFile(entryPath(t, dir))
	if err := os.WriteFile(filepath.Join(dir, b.FileName()), data, 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := s.Get(b)
	if e != nil || err == nil {
		t.Fatalf("mismatched entry Get = (%v, %v), want quarantine error", e, err)
	}
	// The original key is untouched.
	if e, err := s.Get(a.Key); e == nil || err != nil {
		t.Fatalf("original key Get = (%v, %v)", e, err)
	}
}

// TestKeyStability pins the content address: the same key must map to the
// same file name across runs, processes, and machines — renaming the
// digest scheme invalidates every deployed store, so it must be
// deliberate (bump FormatVersion).
func TestKeyStability(t *testing.T) {
	k := resultstore.Key{ConfigHash: "cafebabe00112233", Benchmark: "gcc", Mode: resultstore.ModeDetailed}
	const want = "gcc-detailed-68e40e89e2a4b70e.tcresult"
	if got := k.FileName(); got != want {
		t.Errorf("FileName() = %q, want pinned %q (a deliberate format change must bump FormatVersion)", got, want)
	}
	k2 := resultstore.Key{ConfigHash: "CAFEBABE00112233", Benchmark: "gcc", Mode: resultstore.ModeDetailed}
	if k2.FileName() == k.FileName() {
		t.Error("distinct keys share a file name")
	}
	sane := resultstore.Key{ConfigHash: "x", Benchmark: "Name With/Spaces", Mode: resultstore.ModeReplay}
	name := sane.FileName()
	if strings.ContainsAny(name, " /\\") || name != strings.ToLower(name) {
		t.Errorf("sanitized file name %q", name)
	}
}

// TestConcurrentCrossProcessReuse hammers one directory through several
// independent Store handles (the multi-process shape): concurrent writers
// re-install entries while readers load them. Every successful Get must
// return a complete, CRC-valid entry — atomic installs mean no reader
// ever sees a partial file.
func TestConcurrentCrossProcessReuse(t *testing.T) {
	dir := t.TempDir()
	keys := make([]*resultstore.Entry, 4)
	for i := range keys {
		e := sampleEntry()
		e.Key.ConfigHash = strings.Repeat("ab", 4) + string(rune('a'+i))
		e.Run.Retired = uint64(1000 * (i + 1))
		keys[i] = e
	}
	seed := openStore(t, dir)
	for _, e := range keys {
		if err := seed.Put(e); err != nil {
			t.Fatal(err)
		}
	}

	const handles, iters = 4, 50
	var wg sync.WaitGroup
	for h := 0; h < handles; h++ {
		store := openStore(t, dir) // independent handle, like another process
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e := keys[(h+i)%len(keys)]
				if i%3 == 0 {
					if err := store.Put(e); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
					continue
				}
				got, err := store.Get(e.Key)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if got == nil || got.Run.Retired != e.Run.Retired {
					t.Errorf("Get returned %+v, want retired=%d", got, e.Run.Retired)
					return
				}
			}
		}(h)
	}
	wg.Wait()
	if n, _ := openStore(t, dir).Len(); n != len(keys) {
		t.Errorf("store holds %d entries, want %d", n, len(keys))
	}
}
