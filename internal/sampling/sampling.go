// Package sampling drives a simulator through SMARTS-style statistical
// sampling (Wunderlich et al., ISCA '03): the committed-instruction
// budget is covered by alternating functional fast-forward gaps and
// short detailed windows, and the per-window measurements aggregate into
// interval estimates of the paper's headline metrics. This is what makes
// paper-scale budgets (41M-500M instructions per benchmark) affordable:
// the functional executor runs roughly an order of magnitude faster than
// the detailed engine, so measuring ~1-2% of the stream in detail costs
// wall-clock comparable to a 1M-instruction all-detailed run while
// observing program phases a single-prefix run never reaches.
//
// Schedule. One measurement window per period: period k covers
// committed-stream offsets [k·P, (k+1)·P); its window of W instructions
// starts at k·P + u_k, where the jitter u_k is drawn uniformly from
// [warmup, P−W] by a splitmix64 generator seeded from the schedule seed
// (stratified systematic sampling: every period is sampled, the
// placement varies to avoid aliasing with program loops). The window is
// preceded by a detailed warmup of `warmup` instructions whose
// statistics are discarded — the functional executor warms the
// retired-stream structures (trace cache, fill unit, bias table,
// predictors, caches: see internal/sim/ffwd.go), and the warmup heals
// what it cannot reproduce (pipeline, wrong-path effects, in-flight
// timing).
//
// Every phase transition is audited by check.SamplingAudit (layer
// "sampling"): gaps execute functionally exactly once, windows retire
// their budget, the run covers the total. Fidelity against fully
// detailed truth is bounded by check.CompareSampled on budgets where
// detailed execution is feasible; see DESIGN.md §10 for the contract.
package sampling

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"tracecache/internal/check"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
)

// rng is a splitmix64 generator: deterministic, seedable, allocation-
// free — the schedule must be a pure function of the seed.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform returns a value in [0, n) without modulo bias beyond 2^-32
// (n is far below 2^32 in every schedule).
func (r *rng) uniform(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// Plan is the deterministic window schedule of one sampled run: the
// committed-stream offset (from the sampling origin) at which each
// measurement window starts. Exposed so tests can assert determinism
// and seed sensitivity without running a simulator.
func Plan(p sim.SamplingParams, totalInsts uint64) []uint64 {
	periods := int(totalInsts / p.PeriodInsts)
	if periods <= 0 {
		return nil
	}
	r := rng{state: p.Seed}
	span := p.PeriodInsts - p.WindowInsts - p.WarmupInsts
	starts := make([]uint64, periods)
	for k := range starts {
		starts[k] = uint64(k)*p.PeriodInsts + p.WarmupInsts + r.uniform(span+1)
	}
	return starts
}

// Result is one sampled run: the pooled counters of the measured
// windows (ratio statistics become instruction-weighted estimates over
// the measured subset), the per-window aggregate with confidence
// intervals, and any violations from the sampling audit and the
// simulator's self-check layer.
type Result struct {
	// Run pools the window counters; its Meta carries ProvSampled and
	// the schedule, so journals and memo keys never conflate it with a
	// detailed run.
	Run *stats.Run
	// Sampled is the per-window aggregate with interval estimates.
	Sampled *stats.Sampled
	// Violations collects sampling-audit findings (and, when the
	// simulator runs with Config.Check, the lockstep/structural layers'
	// findings surface via sim.CheckViolations as usual).
	Violations []check.Violation
}

// Run drives the simulator through its configured sampling schedule.
// The configuration's MaxInsts is the total committed-stream budget
// (functional and detailed combined) measured from the end of the
// FastForwardInsts prefix; Config.Sampling fixes window, period,
// per-window warmup and seed. Config.WarmupInsts is not used in sampled
// mode (each window carries its own warmup). The simulator must be
// fresh (or freshly restored from a checkpoint).
func Run(s *sim.Simulator) (*Result, error) {
	//tcvet:ignore determinism wall-clock provenance only: run start time for stats.Meta, never simulated state
	start := time.Now()
	cfg := s.Config()
	p := cfg.Sampling
	if !p.Enabled() {
		return nil, fmt.Errorf("sampling: config %q has no sampling schedule", cfg.Name)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	periods := cfg.MaxInsts / p.PeriodInsts
	if periods == 0 {
		return nil, fmt.Errorf("sampling: budget %d smaller than one period %d",
			cfg.MaxInsts, p.PeriodInsts)
	}

	// Functional prefix, exactly as a detailed run would execute it (a
	// restored checkpoint counts toward it).
	if ff := cfg.FastForwardInsts; ff > s.FastForwarded() {
		if _, err := s.SkipFunctional(ff - s.FastForwarded()); err != nil {
			return nil, err
		}
	}

	origin := s.CommittedInsts()
	starts := Plan(p, cfg.MaxInsts)
	audit := check.NewSamplingAudit(origin, cfg.MaxInsts, p.WindowInsts,
		cfg.RetireWidth, cfg.Engine.Window()+64)

	sampled := &stats.Sampled{
		Benchmark:   s.Stats().Benchmark,
		Config:      cfg.Name,
		WindowInsts: p.WindowInsts,
		PeriodInsts: p.PeriodInsts,
		WarmupInsts: p.WarmupInsts,
		Seed:        p.Seed,
		TotalInsts:  cfg.MaxInsts,
		Windows:     make([]stats.WindowSample, 0, len(starts)),
	}
	pooled := &stats.Run{Benchmark: s.Stats().Benchmark, Config: cfg.Name}

	// win is the single reused window buffer: CaptureWindow copies into
	// it, the sample and the pooled accumulation read from it, and the
	// next window overwrites it — no per-window Run allocation.
	var win stats.Run
	for k, ws := range starts {
		measureStart := origin + ws
		warmupStart := measureStart - p.WarmupInsts

		// Gap: fast-forward to the warmup start (the previous window's
		// drain tail may already have passed it; then no gap runs and
		// the window sits a drain-tail later than planned).
		pos := s.CommittedInsts()
		if warmupStart > pos {
			gap := warmupStart - pos
			done, err := s.SkipFunctional(gap)
			if err != nil {
				return nil, fmt.Errorf("sampling window %d: %w", k, err)
			}
			audit.OnGap(pos, gap, done, s.CommittedInsts(), done < gap)
			if done < gap {
				break // program halted inside the gap
			}
		}

		// Detailed warmup, statistics discarded.
		if p.WarmupInsts > 0 {
			pos = s.CommittedInsts()
			s.ResetWindowStats()
			if err := s.RunDetailed(p.WarmupInsts); err != nil {
				return nil, fmt.Errorf("sampling window %d: %w", k, err)
			}
			audit.OnWarmup(pos, p.WarmupInsts, s.CommittedInsts(), s.Halted())
			if s.Halted() {
				break
			}
		}

		// Measurement window, then drain to a committed boundary. The
		// sample is captured before the drain so drain cycles and
		// drain-tail retirements stay out of it.
		pos = s.CommittedInsts()
		s.ResetWindowStats()
		tcBase := s.TraceCacheStats()
		if err := s.RunDetailed(p.WindowInsts); err != nil {
			return nil, fmt.Errorf("sampling window %d: %w", k, err)
		}
		s.CaptureWindow(&win)
		tcNow := s.TraceCacheStats()
		if err := s.DrainPipeline(); err != nil {
			return nil, fmt.Errorf("sampling window %d: %w", k, err)
		}
		audit.OnWindow(pos, s.CommittedInsts(), win.Retired, s.Halted())

		ws := stats.WindowSample{
			Index:           k,
			StartInst:       pos,
			Retired:         win.Retired,
			Cycles:          win.Cycles,
			IPC:             win.IPC(),
			EffFetchRate:    win.EffFetchRate(),
			MispredictRate:  win.CondMispredictRate(),
			CondBranches:    win.CondBranches,
			CondMispredicts: win.CondMispredicts,
			FetchedCorrect:  win.FetchedCorrect,
			UsefulCycles:    win.Cycle[stats.CycleUseful],
			TCLookups:       tcNow.Lookups - tcBase.Lookups,
			TCHits:          tcNow.Hits - tcBase.Hits,
			PromotedFaults:  win.PromotedFaults,
		}
		if ws.TCLookups > 0 {
			ws.TCHitRate = float64(ws.TCHits) / float64(ws.TCLookups)
		}
		sampled.Windows = append(sampled.Windows, ws)
		pooled.Accumulate(&win)
		if s.Halted() {
			break
		}
	}

	// Trailing gap: cover the budget remainder (MaxInsts mod period plus
	// whatever the last period left after its window) so TotalInsts means
	// what it says.
	if pos, end := s.CommittedInsts(), origin+cfg.MaxInsts; !s.Halted() && end > pos {
		gap := end - pos
		done, err := s.SkipFunctional(gap)
		if err != nil {
			return nil, err
		}
		audit.OnGap(pos, gap, done, s.CommittedInsts(), done < gap)
	}

	sampled.Aggregate()
	vs := audit.Finalize(s.CommittedInsts(), sampled.MeasuredInsts)

	//tcvet:ignore determinism wall-clock provenance only: feeds stats.Meta wall time, never simulated state
	wall := time.Since(start)
	host, _ := os.Hostname()
	meta := &stats.Meta{
		ConfigHash:       cfg.Hash(),
		WarmupInsts:      p.WarmupInsts,
		MaxInsts:         cfg.MaxInsts,
		FastForwardInsts: cfg.FastForwardInsts,
		Provenance:       stats.ProvSampled,
		WallMillis:       float64(wall.Microseconds()) / 1000,
		GoVersion:        runtime.Version(),
		Hostname:         host,
		//tcvet:ignore determinism wall-clock provenance only: stats.Meta timestamp, never simulated state
		StartedAt: start.UTC().Format(time.RFC3339),
		Sampling: &stats.SamplingMeta{
			WindowInsts: p.WindowInsts,
			PeriodInsts: p.PeriodInsts,
			WarmupInsts: p.WarmupInsts,
			Seed:        p.Seed,
			Windows:     len(sampled.Windows),
		},
	}
	sampled.Meta = meta
	pooled.Meta = meta

	return &Result{Run: pooled, Sampled: sampled, Violations: vs}, nil
}
