package sampling

import (
	"bytes"
	"testing"

	"tracecache/internal/check"
	"tracecache/internal/config"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/workload"
)

// testParams is a small schedule that still exercises every phase:
// 10 windows of 1k instructions at 20k periods over a 200k budget.
func testParams() sim.SamplingParams {
	return sim.SamplingParams{
		WindowInsts: 1000,
		PeriodInsts: 20_000,
		WarmupInsts: 1000,
		Seed:        1,
	}
}

func sampledConfig(t *testing.T) sim.Config {
	t.Helper()
	cfg := config.Baseline()
	cfg.MaxInsts = 200_000
	cfg.WarmupInsts = 0
	cfg.Sampling = testParams()
	return cfg
}

func runSampled(t *testing.T, cfg sim.Config, bench string) *Result {
	t.Helper()
	prog, err := workload.SharedProgram(bench)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if vs := s.CheckViolations(); len(vs) != 0 {
		t.Fatalf("simulator self-check violations: %v", vs)
	}
	return res
}

// TestPlanDeterministicAndSeedSensitive: the schedule is a pure function
// of (params, budget); a different seed yields a different placement, and
// every window (with its warmup) fits inside its own period.
func TestPlanDeterministicAndSeedSensitive(t *testing.T) {
	p := testParams()
	const total = 200_000
	a, b := Plan(p, total), Plan(p, total)
	if len(a) != 10 {
		t.Fatalf("Plan produced %d windows, want 10", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d: schedule not deterministic (%d vs %d)", i, a[i], b[i])
		}
		period := uint64(i) * p.PeriodInsts
		if a[i] < period+p.WarmupInsts || a[i]+p.WindowInsts > period+p.PeriodInsts {
			t.Fatalf("window %d start %d does not fit period [%d,%d) with warmup %d",
				i, a[i], period, period+p.PeriodInsts, p.WarmupInsts)
		}
	}

	p2 := p
	p2.Seed = 2
	c := Plan(p2, total)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestPlanDegenerate: budgets below one period schedule nothing, and a
// period exactly equal to warmup+window pins the window (zero jitter
// span) rather than panicking.
func TestPlanDegenerate(t *testing.T) {
	p := testParams()
	if got := Plan(p, p.PeriodInsts-1); got != nil {
		t.Fatalf("sub-period budget scheduled %v", got)
	}
	p.PeriodInsts = p.WarmupInsts + p.WindowInsts
	for i, ws := range Plan(p, 3*p.PeriodInsts) {
		want := uint64(i)*p.PeriodInsts + p.WarmupInsts
		if ws != want {
			t.Fatalf("pinned window %d at %d, want %d", i, ws, want)
		}
	}
}

// TestRunDeterminism: two sampled runs with the same seed serialize to
// byte-identical JSON (metadata nulled: wall time differs legitimately),
// and a different seed yields a different window placement.
func TestRunDeterminism(t *testing.T) {
	cfg := sampledConfig(t)
	r1 := runSampled(t, cfg, "gcc")
	r2 := runSampled(t, cfg, "gcc")
	r1.Sampled.Meta, r2.Sampled.Meta = nil, nil
	j1, err := r1.Sampled.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.Sampled.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("equal seeds diverged:\n%s\nvs\n%s", j1, j2)
	}

	cfg.Sampling.Seed = 99
	r3 := runSampled(t, cfg, "gcc")
	diff := false
	for i := range r3.Sampled.Windows {
		if i < len(r1.Sampled.Windows) &&
			r3.Sampled.Windows[i].StartInst != r1.Sampled.Windows[i].StartInst {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 1 and 99 sampled identical window positions")
	}
}

// TestRunAuditAndShape: a sampled run completes its schedule with zero
// audit violations, carries sampled provenance with the schedule in its
// metadata, pools exactly the measured instructions, and estimates every
// headline metric from all windows.
func TestRunAuditAndShape(t *testing.T) {
	cfg := sampledConfig(t)
	res := runSampled(t, cfg, "gcc")
	if len(res.Violations) != 0 {
		t.Fatalf("sampling audit violations: %v", res.Violations)
	}
	s := res.Sampled
	if len(s.Windows) != 10 {
		t.Fatalf("completed %d windows, want 10", len(s.Windows))
	}
	if s.Meta == nil || s.Meta.Provenance != stats.ProvSampled ||
		s.Meta.Sampling == nil || s.Meta.Sampling.Windows != 10 {
		t.Fatalf("sampled meta = %+v, want ProvSampled with 10 windows", s.Meta)
	}
	if res.Run.Meta != s.Meta {
		t.Fatal("pooled run and sampled aggregate carry different metadata")
	}
	if res.Run.Retired != s.MeasuredInsts {
		t.Fatalf("pooled Retired %d != MeasuredInsts %d", res.Run.Retired, s.MeasuredInsts)
	}
	// Retirement is burst-granular: each window covers its budget and
	// overshoots by less than the retire width.
	min, max := uint64(10*cfg.Sampling.WindowInsts), uint64(10*(cfg.Sampling.WindowInsts+uint64(cfg.RetireWidth)))
	if s.MeasuredInsts < min || s.MeasuredInsts > max {
		t.Fatalf("measured %d instructions, want in [%d, %d]", s.MeasuredInsts, min, max)
	}
	for _, e := range []stats.Estimate{s.IPC, s.EffFetchRate, s.MispredictRate, s.TCHitRate} {
		if e.N != 10 || e.Mean <= 0 {
			t.Fatalf("estimate %+v, want n=10 with positive mean", e)
		}
	}
}

// TestRunWithChecker: the lockstep reference model stays green across
// every gap/warmup/window/drain transition (runSampled asserts zero
// checker violations).
func TestRunWithChecker(t *testing.T) {
	cfg := sampledConfig(t)
	cfg.Check = true
	res := runSampled(t, cfg, "go")
	if len(res.Violations) != 0 {
		t.Fatalf("sampling audit violations: %v", res.Violations)
	}
}

// TestRunMatchesDetailedTruth: on a budget where fully detailed
// execution is feasible, the sampled interval estimates cover the
// detailed truth within the committed tolerance — the fidelity contract
// of DESIGN.md §10, as enforced by the ci.sh sampling smoke.
func TestRunMatchesDetailedTruth(t *testing.T) {
	for _, bench := range []string{"gcc", "compress"} {
		cfg := sampledConfig(t)
		res := runSampled(t, cfg, bench)

		dcfg := config.Baseline()
		dcfg.MaxInsts = cfg.MaxInsts
		dcfg.WarmupInsts = 0
		prog, err := workload.SharedProgram(bench)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := sim.New(dcfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		truth := ds.Run()
		tc := ds.TraceCacheStats()

		vs := check.CompareSampled(
			check.GroundTruth{Run: truth, TCLookups: tc.Lookups, TCHits: tc.Hits},
			res.Sampled, check.DefaultSampledTolerance())
		if len(vs) != 0 {
			t.Errorf("%s: sampled estimates outside fidelity envelope: %v", bench, vs)
		}
	}
}

// TestRunRejectsBadSchedules: a config without sampling, and a budget
// below one period, both fail fast.
func TestRunRejectsBadSchedules(t *testing.T) {
	prog, err := workload.SharedProgram("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Baseline()
	cfg.MaxInsts = 200_000
	s, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s); err == nil {
		t.Fatal("Run accepted a config without a sampling schedule")
	}

	cfg = sampledConfig(t)
	cfg.MaxInsts = cfg.Sampling.PeriodInsts - 1
	s, err = sim.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s); err == nil {
		t.Fatal("Run accepted a budget below one period")
	}
}
