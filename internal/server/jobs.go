package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"tracecache/internal/config"
	"tracecache/internal/experiments"
	"tracecache/internal/journal"
	"tracecache/internal/monitor"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/workload"
)

// SweepSpec is the client-submitted description of one sweep: which
// configurations and benchmarks, under which budgets and execution mode.
// Two submissions with the same normalized spec are the same work — they
// coalesce into one job and address the same store entries.
type SweepSpec struct {
	// Configs names the machine configurations (see /api/configs).
	Configs []string `json:"configs"`
	// Benchmarks names the workloads; empty selects the full suite.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// WarmupInsts retire before measurement (default 400000; unused by
	// sampled sweeps, whose windows carry their own warmup).
	WarmupInsts uint64 `json:"warmupInsts,omitempty"`
	// MeasureInsts is the measured budget per point (default 1000000); a
	// sampled sweep's total committed-stream extent.
	MeasureInsts uint64 `json:"measureInsts,omitempty"`
	// FastForwardInsts, when non-zero, is the functional prefix restored
	// from the shared per-benchmark checkpoint pool.
	FastForwardInsts uint64 `json:"fastForwardInsts,omitempty"`
	// Sample, when non-empty, runs the sweep through statistical sampling
	// with this schedule ("window:period:warmup[:seed]", as tcsim/tcbench
	// -sample).
	Sample string `json:"sample,omitempty"`
	// Replay enables the front-end replay fast path for the sweep.
	Replay bool `json:"replay,omitempty"`
}

// point is one (configuration, benchmark) cell of a sweep.
type point struct {
	cfg   sim.Config
	bench string
}

// normalize validates the spec, applies defaults, and resolves its point
// list in spec order.
func (s *Server) normalize(spec *SweepSpec) ([]point, sim.SamplingParams, error) {
	if len(spec.Configs) == 0 {
		return nil, sim.SamplingParams{}, errors.New("spec names no configs")
	}
	if spec.WarmupInsts == 0 {
		spec.WarmupInsts = 400_000
	}
	if spec.MeasureInsts == 0 {
		spec.MeasureInsts = 1_000_000
	}
	if len(spec.Benchmarks) == 0 {
		spec.Benchmarks = workload.Names()
	}
	var params sim.SamplingParams
	if spec.Sample != "" {
		var err error
		params, err = sim.ParseSamplingSpec(spec.Sample)
		if err != nil {
			return nil, params, err
		}
		if spec.Replay {
			return nil, params, errors.New("sample and replay are mutually exclusive")
		}
		spec.WarmupInsts = 0 // windows carry their own warmup
	}
	known := make(map[string]bool, len(workload.Names()))
	for _, b := range workload.Names() {
		known[b] = true
	}
	for _, b := range spec.Benchmarks {
		if !known[b] {
			return nil, params, fmt.Errorf("unknown benchmark %q", b)
		}
	}
	pts := make([]point, 0, len(spec.Configs)*len(spec.Benchmarks))
	for _, name := range spec.Configs {
		cfg, ok := config.ByName(name)
		if !ok {
			return nil, params, fmt.Errorf("unknown config %q", name)
		}
		for _, b := range spec.Benchmarks {
			pts = append(pts, point{cfg: cfg, bench: b})
		}
	}
	if len(pts) > s.opts.MaxPointsPerJob {
		return nil, params, fmt.Errorf("sweep has %d points, limit %d", len(pts), s.opts.MaxPointsPerJob)
	}
	return pts, params, nil
}

// hash fingerprints a normalized spec for coalescing and job naming.
func (spec *SweepSpec) hash() string {
	// Struct-order JSON marshal is canonical for a normalized spec.
	data, err := json.Marshal(spec)
	if err != nil {
		data = []byte(fmt.Sprintf("%+v", spec))
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// PointResult is one resolved sweep cell in a job's /results payload.
// Provenance and timing metadata are deliberately absent: the payload is
// a pure function of the spec, byte-identical whether the point was
// simulated, replayed, or store-served.
type PointResult struct {
	Config    string         `json:"config"`
	Benchmark string         `json:"benchmark"`
	Summary   *stats.Summary `json:"summary,omitempty"`
	Sampled   *stats.Sampled `json:"sampled,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// Job is one submitted sweep and its lifecycle.
type Job struct {
	ID       string
	SpecHash string
	Spec     SweepSpec

	progress *monitor.Progress
	finished chan struct{}

	mu        sync.Mutex
	state     string
	coalesced int
	prov      map[string]int
	results   []PointResult
	failed    int
}

// jobStatus is the JSON shape of one job on /api/jobs.
type jobStatusJSON struct {
	ID        string           `json:"id"`
	State     string           `json:"state"`
	Spec      SweepSpec        `json:"spec"`
	Points    int              `json:"points"`
	Failed    int              `json:"failed,omitempty"`
	Coalesced int              `json:"coalesced,omitempty"`
	Prov      map[string]int   `json:"provenance,omitempty"`
	Progress  monitor.Snapshot `json:"progress"`
}

func (j *Job) status(points int) jobStatusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	prov := make(map[string]int, len(j.prov))
	for k, v := range j.prov {
		prov[k] = v
	}
	return jobStatusJSON{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Points:    points,
		Failed:    j.failed,
		Coalesced: j.coalesced,
		Prov:      prov,
		Progress:  j.progress.Snapshot(),
	}
}

// provListener tallies per-job provenance counts from run events.
func (j *Job) provListener() func(experiments.RunEvent) {
	return func(ev experiments.RunEvent) {
		if ev.Phase != experiments.RunDone || ev.Err != nil {
			return
		}
		j.mu.Lock()
		j.prov[ev.Provenance]++
		j.mu.Unlock()
	}
}

// submitJob accepts a sweep spec, coalescing identical live submissions
// into the existing job.
func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	pts, params, err := s.normalize(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	hash := spec.hash()

	s.mu.Lock()
	if j, ok := s.bySpec[hash]; ok {
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		s.mu.Unlock()
		s.met.JobsCoalesced.Inc()
		writeJSON(w, http.StatusOK, j.status(len(pts)))
		return
	}
	s.mu.Unlock()

	// New work: charge the client's bucket before committing to it.
	if ok, retryAfter := s.quotas.allow(clientKey(r)); !ok {
		s.met.QuotaRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeError(w, http.StatusTooManyRequests, "quota exceeded, retry in %ds", retryAfter)
		return
	}

	s.mu.Lock()
	// Re-check under the lock: a racing identical submission may have
	// created the job while the quota was consulted.
	if j, ok := s.bySpec[hash]; ok {
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		s.mu.Unlock()
		s.met.JobsCoalesced.Inc()
		writeJSON(w, http.StatusOK, j.status(len(pts)))
		return
	}
	s.seq++
	j := &Job{
		ID:       fmt.Sprintf("j%04d-%s", s.seq, hash[:8]),
		SpecHash: hash,
		Spec:     spec,
		progress: monitor.NewProgress(s.workers(), s.runnerMetrics.Sim.Insts.Value),
		finished: make(chan struct{}),
		state:    JobQueued,
		prov:     make(map[string]int),
	}
	s.jobs[j.ID] = j
	s.bySpec[hash] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.met.JobsSubmitted.Inc()
	s.logf("job %s: %d points (%s)", j.ID, len(pts), summarizeSpec(&spec))

	go s.runJob(j, pts, params)
	writeJSON(w, http.StatusCreated, j.status(len(pts)))
}

func (s *Server) workers() int {
	if s.opts.Workers > 0 {
		return s.opts.Workers
	}
	return 0 // runner resolves its own default (GOMAXPROCS)
}

// runJob executes a job under the job-concurrency gate on a fresh runner
// sharing the server's store, trace directory, journal, and metrics. A
// fresh runner per job means results come from the persistent store, not
// a process-lifetime memo, so restarted daemons and long-lived ones
// behave identically.
func (s *Server) runJob(j *Job, pts []point, params sim.SamplingParams) {
	defer close(j.finished)
	s.jobSem <- struct{}{}
	defer func() { <-s.jobSem }()

	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()

	r := experiments.NewRunner(j.Spec.WarmupInsts, j.Spec.MeasureInsts)
	r.Workers = s.opts.Workers
	r.FastForward = j.Spec.FastForwardInsts
	r.Store = s.store
	r.TraceDir = s.opts.TraceDir
	r.Replay = j.Spec.Replay
	r.Sampling = params
	r.Metrics = s.runnerMetrics
	r.OnRun = experiments.MultiListener(
		journal.RunnerListener(s.jrnl, func(err error) { s.logf("job %s: journal: %v", j.ID, err) }),
		j.progress.Listener(),
		j.provListener(),
	)

	results := make([]PointResult, len(pts))
	var wg sync.WaitGroup
	for i, pt := range pts {
		wg.Add(1)
		go func(i int, pt point) {
			defer wg.Done()
			res := PointResult{Config: pt.cfg.Name, Benchmark: pt.bench}
			if params.Enabled() {
				sm, err := r.RunSampledE(pt.cfg, pt.bench)
				if err != nil {
					res.Error = err.Error()
				} else {
					// Strip provenance metadata: /results is a pure
					// function of the spec.
					sc := *sm
					sc.Meta = nil
					res.Sampled = &sc
				}
			} else {
				run, err := r.RunE(pt.cfg, pt.bench)
				if err != nil {
					res.Error = err.Error()
				} else {
					sum := run.Summary()
					sum.Meta = nil
					res.Summary = &sum
				}
			}
			results[i] = res
		}(i, pt)
	}
	wg.Wait()
	j.progress.Finish()

	failed := 0
	for _, res := range results {
		if res.Error != "" {
			failed++
		}
	}
	j.mu.Lock()
	j.results = results
	j.failed = failed
	if failed > 0 {
		j.state = JobFailed
	} else {
		j.state = JobDone
	}
	j.mu.Unlock()
	if failed > 0 {
		s.met.JobsFailed.Inc()
	} else {
		s.met.JobsCompleted.Inc()
	}
	s.logf("job %s: %s (%d points, %d failed)", j.ID, j.stateNow(), len(results), failed)

	// Terminal jobs leave the coalescing index: a later identical
	// submission becomes a new job (typically store-served end to end).
	s.mu.Lock()
	if s.bySpec[j.SpecHash] == j {
		delete(s.bySpec, j.SpecHash)
	}
	s.mu.Unlock()
}

func (j *Job) stateNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// job resolves the {id} path value.
func (s *Server) job(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (j *Job) pointCount() int {
	n := len(j.Spec.Benchmarks)
	return len(j.Spec.Configs) * n
}

func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]jobStatusJSON, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status(j.pointCount()))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status(j.pointCount()))
}

// jobResults serves the deterministic result payload of a finished job:
// points in spec order, provenance-free (see PointResult). 409 until the
// job reaches a terminal state.
func (s *Server) jobResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	state := j.state
	results := j.results
	j.mu.Unlock()
	if state != JobDone && state != JobFailed {
		writeError(w, http.StatusConflict, "job is %s; results are available once it finishes", state)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"points": results})
}

// jobProgress serves the job's live progress as JSON or SSE, through the
// same handler as the standalone monitor. The server's shutdown signal
// ends open streams promptly on Close.
func (s *Server) jobProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	monitor.ProgressHandler(j.progress.Snapshot, s.done)(w, r)
}

// configNames lists the submittable configuration names, sorted.
func configNames() []string {
	names := append([]string(nil), config.Names()...)
	sort.Strings(names)
	return names
}

// summarizeSpec renders a short log description of a spec.
func summarizeSpec(spec *SweepSpec) string {
	mode := "detailed"
	if spec.Sample != "" {
		mode = "sampled " + spec.Sample
	} else if spec.Replay {
		mode = "replay"
	}
	return fmt.Sprintf("%d configs × %d benchmarks, warmup %d, measure %d, %s",
		len(spec.Configs), len(spec.Benchmarks), spec.WarmupInsts, spec.MeasureInsts, mode)
}
