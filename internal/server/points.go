package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"tracecache/internal/config"
	"tracecache/internal/obs"
	"tracecache/internal/sim"
	"tracecache/internal/workload"
)

// The per-point telemetry endpoints run a fresh direct simulation per
// request — windowed time-series and trace events need a contiguous
// detailed run, so they bypass the result store by construction. Budgets
// default smaller than sweep points (these are synchronous HTTP
// requests) and are tunable per request: ?warmup=, ?insts=, ?ffwd=.

// pointBudget parses the {config}/{bench} path values and budget query
// parameters; on failure it has already written the error response.
func pointBudget(w http.ResponseWriter, r *http.Request) (sim.Config, string, bool) {
	name := r.PathValue("config")
	cfg, ok := config.ByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown config %q (see /api/configs)", name)
		return cfg, "", false
	}
	bench := r.PathValue("bench")
	known := false
	for _, b := range workload.Names() {
		known = known || b == bench
	}
	if !known {
		writeError(w, http.StatusNotFound, "unknown benchmark %q (see /api/benchmarks)", bench)
		return cfg, "", false
	}
	var err error
	if cfg.WarmupInsts, err = queryUint(r, "warmup", 100_000); err == nil {
		if cfg.MaxInsts, err = queryUint(r, "insts", 400_000); err == nil {
			cfg.FastForwardInsts, err = queryUint(r, "ffwd", 0)
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return cfg, "", false
	}
	return cfg, bench, true
}

func queryUint(r *http.Request, key string, def uint64) (uint64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %v", key, s, err)
	}
	return v, nil
}

// checkQuota charges one token; on rejection it has already written the
// 429 response.
func (s *Server) checkQuota(w http.ResponseWriter, r *http.Request) bool {
	ok, retryAfter := s.quotas.allow(clientKey(r))
	if !ok {
		s.met.QuotaRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeError(w, http.StatusTooManyRequests, "quota exceeded, retry in %ds", retryAfter)
	}
	return ok
}

// pointSeries serves the windowed time-series of one point. Default
// JSON; ?sse=1 streams one event per interval instead (the run itself is
// synchronous — intervals are emitted once it finishes). ?interval=
// tunes the window length in cycles.
func (s *Server) pointSeries(w http.ResponseWriter, r *http.Request) {
	if !s.checkQuota(w, r) {
		return
	}
	cfg, bench, ok := pointBudget(w, r)
	if !ok {
		return
	}
	interval, err := queryUint(r, "interval", 10_000)
	if err != nil || interval == 0 {
		writeError(w, http.StatusBadRequest, "bad interval")
		return
	}
	prog, err := workload.SharedProgram(bench)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sm, err := sim.New(cfg, prog)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if s.runnerMetrics != nil {
		sm.AttachMetrics(s.runnerMetrics.Sim)
	}
	coll := obs.NewCollector(interval)
	sm.SetIntervalCollector(coll)
	sm.Run()
	ts := coll.Series()

	if r.URL.Query().Get("sse") == "" {
		w.Header().Set("Content-Type", "application/json")
		_ = ts.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	for _, iv := range ts.Intervals {
		data, err := json.Marshal(iv)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: interval\ndata: %s\n\n", data)
	}
	fmt.Fprintf(w, "event: done\ndata: {\"intervals\": %d}\n\n", len(ts.Intervals))
	if flusher != nil {
		flusher.Flush()
	}
}

// pointTrace serves one point's Chrome/Perfetto trace-event file (open
// at ui.perfetto.dev). ?events= caps the retained event count.
func (s *Server) pointTrace(w http.ResponseWriter, r *http.Request) {
	if !s.checkQuota(w, r) {
		return
	}
	cfg, bench, ok := pointBudget(w, r)
	if !ok {
		return
	}
	maxEvents, err := queryUint(r, "events", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prog, err := workload.SharedProgram(bench)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sm, err := sim.New(cfg, prog)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if s.runnerMetrics != nil {
		sm.AttachMetrics(s.runnerMetrics.Sim)
	}
	bus := obs.NewBus(0)
	sm.AttachObserver(bus)
	chrome := obs.NewChromeTrace(int(maxEvents))
	bus.Attach(chrome)
	run := sm.Run()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("inline; filename=%q", cfg.Name+"-"+bench+".trace.json"))
	_ = chrome.WriteJSON(w, run.Meta)
}
