package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// quotaPool rate-limits work submission per client: classic token
// buckets refilled at rate tokens/second up to burst capacity. A
// negative rate disables the pool.
type quotaPool struct {
	rate, burst float64
	now         func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newQuotaPool(rate, burst float64) *quotaPool {
	return &quotaPool{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow consumes one token from key's bucket. On rejection it returns
// the whole seconds until the next token accrues, for Retry-After.
func (q *quotaPool) allow(key string) (bool, int) {
	if q.rate < 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, ok := q.buckets[key]
	if !ok {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[key] = b
	}
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, int(math.Ceil((1 - b.tokens) / q.rate))
}

// clientKey identifies the quota bucket for a request: the X-Client
// header when the caller names itself, else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
