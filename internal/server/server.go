// Package server is the tcserve sweep service: a long-running HTTP/JSON
// daemon that accepts simulation sweeps (detailed, replay-backed, or
// sampled), executes them on a shared worker pool, and serves results,
// live progress (JSON and SSE), windowed time-series, and Perfetto
// traces. Every point goes through experiments.Runner backed by the
// persistent content-addressed result store (internal/resultstore), so a
// point any process has ever simulated is served from disk — across
// daemon restarts, CLI runs sharing the store directory, and any number
// of clients. Identical in-flight submissions coalesce into one job, and
// per-client token buckets bound how fast new work can be submitted.
//
// The daemon changes where results come from, never what they are: a
// job's /results payload is byte-identical whether its points were
// simulated, replayed, or store-served (provenance travels separately,
// in job status, metrics, and the journal).
package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"tracecache/internal/buildinfo"
	"tracecache/internal/experiments"
	"tracecache/internal/journal"
	"tracecache/internal/metrics"
	"tracecache/internal/resultstore"
	"tracecache/internal/workload"
)

// Options configures a Server. Zero values select the documented
// defaults; StoreDir is required.
type Options struct {
	// StoreDir roots the persistent result store (required).
	StoreDir string
	// TraceDir, when non-empty, persists and reuses retired-stream
	// recordings for replay-mode jobs across jobs and processes.
	TraceDir string
	// JournalPath, when non-empty, appends one JSONL record per resolved
	// run request (shared safely with concurrent CLI appenders).
	JournalPath string
	// Workers bounds concurrently executing simulations per job
	// (default GOMAXPROCS, via experiments.Runner).
	Workers int
	// MaxConcurrentJobs bounds jobs simulating at once; later jobs queue
	// (default 2).
	MaxConcurrentJobs int
	// MaxPointsPerJob rejects sweeps larger than this many points
	// (default 1024).
	MaxPointsPerJob int
	// QuotaRate is the per-client token refill rate in submissions per
	// second (default 1); QuotaBurst is the bucket capacity (default 8).
	// A negative QuotaRate disables quotas.
	QuotaRate  float64
	QuotaBurst float64
	// Logf, when non-nil, receives server log lines.
	Logf func(format string, args ...any)
}

// serverMetrics is the daemon's own counter set.
type serverMetrics struct {
	JobsSubmitted *metrics.Counter
	JobsCoalesced *metrics.Counter
	JobsCompleted *metrics.Counter
	JobsFailed    *metrics.Counter
	QuotaRejected *metrics.Counter
}

// Server is the sweep service. Build with New, serve with Start (or
// mount Handler), stop with Close.
type Server struct {
	opts  Options
	reg   *metrics.Registry
	store *resultstore.Store
	// runnerMetrics is shared by every job's runner: the daemon's fleet
	// counters are global, not per-job.
	runnerMetrics *experiments.RunnerMetrics
	met           *serverMetrics
	jrnl          *journal.Writer
	quotas        *quotaPool

	httpSrv   *http.Server
	done      chan struct{}
	closeOnce sync.Once

	mu     sync.Mutex
	seq    int
	jobs   map[string]*Job
	bySpec map[string]*Job // live (non-failed) job per spec hash, for coalescing
	order  []string        // job ids in submission order

	jobSem chan struct{}
}

// New builds a server: opens the store and journal, registers metrics.
func New(opts Options) (*Server, error) {
	if opts.MaxConcurrentJobs <= 0 {
		opts.MaxConcurrentJobs = 2
	}
	if opts.MaxPointsPerJob <= 0 {
		opts.MaxPointsPerJob = 1024
	}
	if opts.QuotaRate == 0 {
		opts.QuotaRate = 1
	}
	if opts.QuotaBurst <= 0 {
		opts.QuotaBurst = 8
	}
	store, err := resultstore.Open(opts.StoreDir)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	store.Metrics = resultstore.InstrumentStore(reg)
	var jrnl *journal.Writer
	if opts.JournalPath != "" {
		jrnl, err = journal.OpenFile(opts.JournalPath)
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		opts:          opts,
		reg:           reg,
		store:         store,
		runnerMetrics: experiments.InstrumentRunner(reg),
		met: &serverMetrics{
			JobsSubmitted: reg.Counter("tracecache_server_jobs_submitted_total",
				"Sweep jobs accepted (coalesced joins excluded)."),
			JobsCoalesced: reg.Counter("tracecache_server_jobs_coalesced_total",
				"Submissions coalesced into an already-live identical job."),
			JobsCompleted: reg.Counter("tracecache_server_jobs_completed_total",
				"Jobs that finished with every point resolved."),
			JobsFailed: reg.Counter("tracecache_server_jobs_failed_total",
				"Jobs that finished with at least one failed point."),
			QuotaRejected: reg.Counter("tracecache_server_quota_rejected_total",
				"Submissions rejected by per-client quotas."),
		},
		jrnl:   jrnl,
		quotas: newQuotaPool(opts.QuotaRate, opts.QuotaBurst),
		done:   make(chan struct{}),
		jobs:   make(map[string]*Job),
		bySpec: make(map[string]*Job),
		jobSem: make(chan struct{}, opts.MaxConcurrentJobs),
	}
	return s, nil
}

// Registry returns the server's metrics registry (for tests and embedding).
func (s *Server) Registry() *metrics.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Handler builds the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.index)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /api/configs", s.listConfigs)
	mux.HandleFunc("GET /api/benchmarks", s.listBenchmarks)
	mux.HandleFunc("POST /api/jobs", s.submitJob)
	mux.HandleFunc("GET /api/jobs", s.listJobs)
	mux.HandleFunc("GET /api/jobs/{id}", s.jobStatus)
	mux.HandleFunc("GET /api/jobs/{id}/results", s.jobResults)
	mux.HandleFunc("GET /api/jobs/{id}/progress", s.jobProgress)
	mux.HandleFunc("GET /api/points/{config}/{bench}/series", s.pointSeries)
	mux.HandleFunc("GET /api/points/{config}/{bench}/trace", s.pointTrace)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr, serves the mux in the background, and returns
// the bound address. Close stops it.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		// ErrServerClosed is the normal shutdown path.
		_ = s.httpSrv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Close stops the server: the shutdown signal ends in-flight SSE streams
// promptly, open connections close, and the journal closes (in-flight
// job appends discard safely afterwards). Running jobs finish in the
// background; their store puts still land, so their work is not lost.
// Idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		if s.httpSrv != nil {
			err = s.httpSrv.Close()
		}
		if jerr := s.jrnl.Close(); err == nil {
			err = jerr
		}
	})
	return err
}

func (s *Server) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><head><title>tcserve</title></head><body>
<h1>tcserve — trace cache sweep service</h1><ul>
<li>POST <a href="/api/jobs">/api/jobs</a> — submit a sweep (JSON spec)</li>
<li>GET <a href="/api/jobs">/api/jobs</a> — job list; /api/jobs/{id}, /api/jobs/{id}/results, /api/jobs/{id}/progress (?sse=1)</li>
<li>GET /api/points/{config}/{bench}/series — windowed time-series (?sse=1 streams intervals)</li>
<li>GET /api/points/{config}/{bench}/trace — Chrome/Perfetto trace events</li>
<li>GET <a href="/api/configs">/api/configs</a>, <a href="/api/benchmarks">/api/benchmarks</a></li>
<li>GET <a href="/metrics">/metrics</a> — Prometheus exposition; <a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>
`)
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ok",
		"version": buildinfo.Version(),
		"store":   s.store.Dir(),
	})
}

func (s *Server) listConfigs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"configs": configNames()})
}

func (s *Server) listBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": workload.Names()})
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// writeJSON renders one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders a JSON error response.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
