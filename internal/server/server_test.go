package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer builds a server on dir with fast-test options, mounts it on
// an httptest server, and tears both down with the test.
func testServer(t *testing.T, dir string, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{
		StoreDir:  dir,
		Workers:   2,
		QuotaRate: -1, // most tests are not about quotas
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// smallSpec is a fast 4-point sweep (2 configurations × 2 benchmarks).
func smallSpec(benches ...string) string {
	if len(benches) == 0 {
		benches = []string{"compress", "gcc"}
	}
	return fmt.Sprintf(`{"configs":["baseline","packing"],"benchmarks":[%q,%q],"warmupInsts":500,"measureInsts":2000}`,
		benches[0], benches[1])
}

// submit posts a spec and decodes the job status it returns.
func submit(t *testing.T, ts *httptest.Server, spec string) (jobStatusJSON, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatusJSON
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode job status: %v", err)
		}
	}
	return st, resp.StatusCode
}

// await blocks until the job reaches a terminal state.
func await(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		t.Fatalf("no job %s", id)
	}
	select {
	case <-j.finished:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	return j
}

// fetch GETs a path and returns status and body.
func fetch(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestSubmitRunsAndServesResults(t *testing.T) {
	s, ts := testServer(t, t.TempDir(), nil)

	st, code := submit(t, ts, smallSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", code)
	}
	if st.Points != 4 || st.ID == "" {
		t.Fatalf("job status = %+v", st)
	}
	j := await(t, s, st.ID)
	if got := j.stateNow(); got != JobDone {
		t.Fatalf("job state = %s, want done", got)
	}

	code, body := fetch(t, ts, "/api/jobs/"+st.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("results status = %d: %s", code, body)
	}
	var res struct {
		Points []PointResult `json:"points"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("results hold %d points, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Error != "" || p.Summary == nil {
			t.Errorf("point %s/%s = %+v", p.Config, p.Benchmark, p)
		}
		if p.Summary != nil && p.Summary.Meta != nil {
			t.Errorf("point %s/%s leaked provenance metadata", p.Config, p.Benchmark)
		}
	}
	// Results payloads never carry provenance.
	if bytes.Contains(body, []byte("provenance")) {
		t.Error("results payload mentions provenance")
	}

	// Provenance lives in job status instead.
	code, body = fetch(t, ts, "/api/jobs/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("status fetch = %d", code)
	}
	var done jobStatusJSON
	if err := json.Unmarshal(body, &done); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range done.Prov {
		total += n
	}
	if total != 4 || !done.Progress.Complete {
		t.Errorf("terminal status = %+v", done)
	}

	// The store now holds every point.
	if n, _ := s.store.Len(); n != 4 {
		t.Errorf("store holds %d entries, want 4", n)
	}
}

// TestResultsByteIdenticalAcrossRestart is the acceptance shape: the same
// sweep against a fresh daemon sharing the store directory simulates
// nothing and returns byte-identical results.
func TestResultsByteIdenticalAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := testServer(t, dir, nil)
	st1, _ := submit(t, ts1, smallSpec())
	await(t, s1, st1.ID)
	code, body1 := fetch(t, ts1, "/api/jobs/"+st1.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("first results = %d", code)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := testServer(t, dir, nil) // restarted daemon, same store
	st2, _ := submit(t, ts2, smallSpec())
	await(t, s2, st2.ID)
	code, body2 := fetch(t, ts2, "/api/jobs/"+st2.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("second results = %d", code)
	}

	if !bytes.Equal(body1, body2) {
		t.Errorf("results differ across restart:\nfirst  %s\nsecond %s", body1, body2)
	}
	if got := s2.runnerMetrics.StoreServed.Value(); got != 4 {
		t.Errorf("restarted daemon store-served = %d, want 4", got)
	}
	if cold, forks := s2.runnerMetrics.ColdStarts.Value(), s2.runnerMetrics.CheckpointForks.Value(); cold+forks != 0 {
		t.Errorf("restarted daemon simulated: cold=%d forks=%d, want 0", cold, forks)
	}
	j2 := await(t, s2, st2.ID)
	j2.mu.Lock()
	served := j2.prov["store"]
	j2.mu.Unlock()
	if served != 4 {
		t.Errorf("job provenance tally store = %d, want 4", served)
	}
}

// TestCoalescing holds the job gate so the first job stays live, then
// resubmits the identical spec: it must join the existing job, not
// create or charge for a new one.
func TestCoalescing(t *testing.T) {
	s, ts := testServer(t, t.TempDir(), func(o *Options) {
		o.MaxConcurrentJobs = 1
		o.QuotaRate = 1
		o.QuotaBurst = 1 // one submission, then empty
	})
	s.jobSem <- struct{}{} // occupy the only slot: jobs queue, stay live
	defer func() { <-s.jobSem }()

	st1, code := submit(t, ts, smallSpec())
	if code != http.StatusCreated {
		t.Fatalf("first submit = %d", code)
	}
	// Identical spec joins the live job — 200, same id, no quota charge
	// even though the bucket is now empty.
	st2, code := submit(t, ts, smallSpec())
	if code != http.StatusOK {
		t.Fatalf("coalesced submit = %d, want 200", code)
	}
	if st2.ID != st1.ID {
		t.Errorf("coalesced into %s, want %s", st2.ID, st1.ID)
	}
	if st2.Coalesced != 1 {
		t.Errorf("coalesced count = %d, want 1", st2.Coalesced)
	}
	if got := s.met.JobsCoalesced.Value(); got != 1 {
		t.Errorf("jobs_coalesced_total = %d, want 1", got)
	}
	// A different spec is new work against an empty bucket: 429.
	_, code = submit(t, ts, smallSpec("go", "li"))
	if code != http.StatusTooManyRequests {
		t.Errorf("post-burst submit = %d, want 429", code)
	}
}

func TestQuota(t *testing.T) {
	s, ts := testServer(t, t.TempDir(), func(o *Options) {
		o.QuotaRate = 1
		o.QuotaBurst = 2
	})
	clock := time.Unix(1_700_000_000, 0)
	s.quotas.now = func() time.Time { return clock }

	specs := []string{smallSpec(), smallSpec("go", "li"), smallSpec("ijpeg", "perl")}
	for i, spec := range specs[:2] {
		if _, code := submit(t, ts, spec); code != http.StatusCreated {
			t.Fatalf("submit %d = %d, want 201", i, code)
		}
	}
	resp, err := http.Post(ts.URL+"/api/jobs", "application/json", strings.NewReader(specs[2]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.met.QuotaRejected.Value(); got != 1 {
		t.Errorf("quota_rejected_total = %d, want 1", got)
	}

	// A second token accrues with time.
	clock = clock.Add(1100 * time.Millisecond)
	if _, code := submit(t, ts, specs[2]); code != http.StatusCreated {
		t.Errorf("post-refill submit = %d, want 201", code)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), nil)
	cases := []string{
		`{"configs":[]}`,
		`{"configs":["no-such-config"]}`,
		`{"configs":["baseline"],"benchmarks":["no-such-bench"]}`,
		`{"configs":["baseline"],"sample":"bogus"}`,
		`{"configs":["baseline"],"sample":"1000:4000:200","replay":true}`,
		`{"configs":["baseline"],"unknownField":1}`,
		`not json`,
	}
	for _, spec := range cases {
		if _, code := submit(t, ts, spec); code != http.StatusBadRequest {
			t.Errorf("spec %s accepted with %d, want 400", spec, code)
		}
	}
	if code, _ := fetch(t, ts, "/api/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
	if code, _ := fetch(t, ts, "/api/points/nope/gcc/series"); code != http.StatusNotFound {
		t.Errorf("unknown point config = %d, want 404", code)
	}
}

func TestResultsConflictWhileRunning(t *testing.T) {
	s, ts := testServer(t, t.TempDir(), func(o *Options) { o.MaxConcurrentJobs = 1 })
	s.jobSem <- struct{}{}
	st, _ := submit(t, ts, smallSpec())
	if code, _ := fetch(t, ts, "/api/jobs/"+st.ID+"/results"); code != http.StatusConflict {
		t.Errorf("running-job results = %d, want 409", code)
	}
	<-s.jobSem
	await(t, s, st.ID)
	if code, _ := fetch(t, ts, "/api/jobs/"+st.ID+"/results"); code != http.StatusOK {
		t.Errorf("finished-job results = %d, want 200", code)
	}
}

func TestSampledJob(t *testing.T) {
	s, ts := testServer(t, t.TempDir(), nil)
	spec := `{"configs":["baseline"],"benchmarks":["compress"],"measureInsts":12000,"sample":"1000:4000:200"}`
	st, code := submit(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	await(t, s, st.ID)
	code, body := fetch(t, ts, "/api/jobs/"+st.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("results = %d: %s", code, body)
	}
	var res struct {
		Points []PointResult `json:"points"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Sampled == nil || res.Points[0].Summary != nil {
		t.Fatalf("sampled results = %+v", res.Points)
	}
	if res.Points[0].Sampled.Meta != nil {
		t.Error("sampled point leaked provenance metadata")
	}
}

func TestProgressEndpointAndSSE(t *testing.T) {
	s, ts := testServer(t, t.TempDir(), nil)
	st, _ := submit(t, ts, smallSpec())
	await(t, s, st.ID)

	code, body := fetch(t, ts, "/api/jobs/"+st.ID+"/progress")
	if code != http.StatusOK {
		t.Fatalf("progress = %d", code)
	}
	var snap struct {
		Complete bool `json:"complete"`
		Done     int  `json:"done"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Complete || snap.Done != 4 {
		t.Errorf("progress snapshot = %+v", snap)
	}

	// SSE on a complete job: one event, then the stream ends.
	resp, err := http.Get(ts.URL + "/api/jobs/" + st.ID + "/progress?sse=1&interval=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("SSE content type = %q", ct)
	}
	sse, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(sse, []byte(`"complete": true`)) && !bytes.Contains(sse, []byte(`"complete":true`)) {
		t.Errorf("SSE stream never reported completion: %s", sse)
	}
}

func TestListEndpoints(t *testing.T) {
	s, ts := testServer(t, t.TempDir(), nil)
	code, body := fetch(t, ts, "/api/configs")
	if code != http.StatusOK || !bytes.Contains(body, []byte("baseline")) {
		t.Errorf("configs = %d: %s", code, body)
	}
	code, body = fetch(t, ts, "/api/benchmarks")
	if code != http.StatusOK || !bytes.Contains(body, []byte("gcc")) {
		t.Errorf("benchmarks = %d: %s", code, body)
	}
	code, body = fetch(t, ts, "/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Errorf("healthz = %d: %s", code, body)
	}
	st, _ := submit(t, ts, smallSpec())
	await(t, s, st.ID)
	code, body = fetch(t, ts, "/api/jobs")
	if code != http.StatusOK || !bytes.Contains(body, []byte(st.ID)) {
		t.Errorf("job list = %d: %s", code, body)
	}
	code, body = fetch(t, ts, "/metrics")
	if code != http.StatusOK || !bytes.Contains(body, []byte("tracecache_server_jobs_submitted_total")) {
		t.Errorf("metrics = %d", code)
	}
	if !bytes.Contains(body, []byte("tracecache_store_hits_total")) {
		t.Error("metrics exposition lacks store counters")
	}
}

func TestPointSeriesAndTrace(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), nil)
	code, body := fetch(t, ts, "/api/points/baseline/compress/series?warmup=500&insts=4000&interval=500")
	if code != http.StatusOK {
		t.Fatalf("series = %d: %s", code, body)
	}
	var series struct {
		Intervals []map[string]any `json:"intervals"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatal(err)
	}
	if len(series.Intervals) == 0 {
		t.Error("series has no intervals")
	}

	code, body = fetch(t, ts, "/api/points/baseline/compress/series?warmup=500&insts=4000&interval=500&sse=1")
	if code != http.StatusOK || !bytes.Contains(body, []byte("event: interval")) || !bytes.Contains(body, []byte("event: done")) {
		t.Errorf("series SSE = %d: %.200s", code, body)
	}

	code, body = fetch(t, ts, "/api/points/baseline/compress/trace?warmup=500&insts=2000")
	if code != http.StatusOK {
		t.Fatalf("trace = %d: %s", code, body)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
}
