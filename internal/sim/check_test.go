package sim

import (
	"testing"

	"tracecache/internal/checkpoint"
	"tracecache/internal/core"
	"tracecache/internal/obs"
	"tracecache/internal/workload"
)

// checkedConfigs is a cross-section of the machine space: every fetch
// mechanism, promotion, and each packing policy.
func checkedConfigs() []Config {
	base := DefaultConfig()
	promo := DefaultConfig()
	promo.Name = "promotion"
	promo.Fill = core.DefaultFillConfig(core.PackAtomic, 64)
	promo.SplitMBP = true
	costreg := DefaultConfig()
	costreg.Name = "costreg"
	costreg.Fill = core.DefaultFillConfig(core.PackCostRegulated, 64)
	costreg.SplitMBP = true
	unreg := DefaultConfig()
	unreg.Name = "unreg"
	unreg.Fill = core.DefaultFillConfig(core.PackUnregulated, 0)
	return []Config{base, ICacheConfig(), promo, costreg, unreg}
}

// TestCheckerCleanAcrossConfigs runs the self-check layer over a real
// workload under every fetch mechanism and packing policy and requires
// zero violations: lockstep, structural, and conservation.
func TestCheckerCleanAcrossConfigs(t *testing.T) {
	p, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("missing workload")
	}
	prog := p.MustGenerate()
	for _, cfg := range checkedConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			cfg.WarmupInsts = 10_000
			cfg.MaxInsts = 20_000
			cfg.Check = true
			s := mustSim(t, cfg, prog)
			s.Run()
			chk := s.Checker()
			if chk == nil {
				t.Fatal("Check=true built no checker")
			}
			if chk.Total() != 0 {
				t.Fatalf("self-check violations:\n%s", chk.Report())
			}
			if chk.Commits() == 0 {
				t.Fatal("checker compared no commits")
			}
		})
	}
}

// TestCheckerRegression8WideSingleHybrid is the regression test for the
// wrong-path inactive-suffix injection the checker flushed out: on an
// 8-wide trace cache sequenced by the single hybrid predictor, a
// mispredicting branch past the predictor's slot budget used to inject
// the segment's embedded-path suffix — wrong-path instructions that then
// committed. The lockstep layer catches any recurrence on the first bad
// commit.
func TestCheckerRegression8WideSingleHybrid(t *testing.T) {
	p, _ := workload.ByName("gcc")
	prog := p.MustGenerate()
	cfg := DefaultConfig()
	cfg.Name = "8wide-single-hybrid"
	cfg.FetchWidth = 8
	cfg.Fill = core.DefaultFillConfig(core.PackAtomic, 64)
	cfg.Fill.MaxInsts = 8
	cfg.SplitMBP = false
	cfg.SingleHybrid = true
	cfg.WarmupInsts = 20_000
	cfg.MaxInsts = 40_000
	cfg.Check = true
	s := mustSim(t, cfg, prog)
	s.Run()
	if chk := s.Checker(); chk.Total() != 0 {
		t.Fatalf("self-check violations:\n%s", chk.Report())
	}
}

// TestCheckerCleanUnderFastForwardAndCheckpoint covers the checker's
// restore paths: the lockstep reference must resume from the same
// functional prefix (and the same shared checkpoint) as the simulator.
func TestCheckerCleanUnderFastForwardAndCheckpoint(t *testing.T) {
	p, _ := workload.ByName("compress")
	prog := p.MustGenerate()
	cfg := DefaultConfig()
	cfg.FastForwardInsts = 30_000
	cfg.WarmupInsts = 5_000
	cfg.MaxInsts = 15_000
	cfg.Check = true

	s := mustSim(t, cfg, prog)
	s.Run()
	if chk := s.Checker(); chk.Total() != 0 {
		t.Fatalf("fast-forward: self-check violations:\n%s", chk.Report())
	}

	cp := checkpoint.Capture(prog, 30_000)
	s2 := mustSim(t, cfg, prog)
	if err := s2.ApplyCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	s2.Run()
	if chk := s2.Checker(); chk.Total() != 0 {
		t.Fatalf("checkpoint: self-check violations:\n%s", chk.Report())
	}
}

// TestCheckDoesNotChangeStatistics pins the contract EXPERIMENTS.md
// documents: enabling the self-check layer changes no simulated
// statistic.
func TestCheckDoesNotChangeStatistics(t *testing.T) {
	p, _ := workload.ByName("li")
	prog := p.MustGenerate()
	cfg := DefaultConfig()
	cfg.Fill = core.DefaultFillConfig(core.PackCostRegulated, 64)
	cfg.SplitMBP = true
	cfg.WarmupInsts = 10_000
	cfg.MaxInsts = 20_000

	plain := mustSim(t, cfg, prog).Run()
	cfg.Check = true
	checked := mustSim(t, cfg, prog).Run()
	a, b := *plain, *checked
	a.Meta, b.Meta = nil, nil
	if a != b {
		t.Errorf("checking changed statistics:\n plain %+v\n check %+v", a, b)
	}
}

// TestCheckExcludedFromConfigHash pins that a checked and an unchecked
// run of the same machine share a configuration hash, so a violation's
// replay hash identifies the machine, not the harness.
func TestCheckExcludedFromConfigHash(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.Check = true
	if a.Hash() != b.Hash() {
		t.Errorf("Check changed the config hash: %s vs %s", a.Hash(), b.Hash())
	}
}

// TestCheckerEmitsViolationEvents wires a bus and checks a violation
// reaches it as an obs event. The violation is synthesized by feeding the
// checker an impossible segment through the fill-unit hook contract.
func TestCheckerEmitsViolationEvents(t *testing.T) {
	p, _ := workload.ByName("compress")
	prog := p.MustGenerate()
	cfg := DefaultConfig()
	cfg.Fill = core.DefaultFillConfig(core.PackAtomic, 64)
	cfg.SplitMBP = true
	cfg.MaxInsts = 2_000
	cfg.Check = true
	s := mustSim(t, cfg, prog)
	bus := obs.NewBus(64)
	var events int
	bus.Attach(obs.FuncSink(func(e obs.Event) {
		if e.Kind == obs.KindCheckViolation {
			events++
		}
	}))
	s.AttachObserver(bus)
	// An empty segment violates the structural size rule.
	s.chk.OnSegment(&core.Segment{})
	if s.chk.Total() == 0 {
		t.Fatal("empty segment accepted")
	}
	if events == 0 {
		t.Error("violation did not reach the event bus")
	}
}
