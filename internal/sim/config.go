// Package sim is the top-level cycle-level simulator: it ties a fetch
// engine (trace cache or instruction cache) to the out-of-order execution
// core, executes instruction semantics speculatively at dispatch (wrong
// path included), recovers from branch mispredictions, misfetches and
// promoted-branch faults, feeds the fill unit from the retired stream, and
// collects every statistic the paper reports.
package sim

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"tracecache/internal/cache"
	"tracecache/internal/core"
	"tracecache/internal/engine"
)

// FrontEnd selects the fetch mechanism.
type FrontEnd uint8

// Front ends.
const (
	// FrontICache is the reference configuration: a large dual-ported
	// instruction cache with a hybrid predictor, one fetch block/cycle.
	FrontICache FrontEnd = iota
	// FrontTrace is the trace cache fetch mechanism.
	FrontTrace
)

// Config parameterises one simulation.
type Config struct {
	Name  string
	Front FrontEnd

	// Trace-cache front end.
	TC       core.TraceCacheConfig
	Fill     core.FillConfig
	SplitMBP bool // use the restructured three-table predictor (Section 4)
	// DisableInactiveIssue reverts the trace cache to discarding blocks
	// past the predicted path at fetch (the baseline includes inactive
	// issue per Section 3; this is the ablation).
	DisableInactiveIssue bool

	// SingleHybrid sequences the trace cache with the aggressive hybrid
	// single-branch predictor (one prediction per cycle, indexed by branch
	// PC) — the design Section 4 suggests for an 8-wide machine once
	// promotion has collapsed prediction-bandwidth demand.
	SingleHybrid bool

	// FetchWidth is the fetch (and trace segment read) width; 0 means the
	// paper's 16.
	FetchWidth int

	// Predictor geometry.
	TreeEntries     int    // gshare tree entries (paper: 16K)
	SplitSizes      [3]int // restructured tables (paper: 64K/16K/8K counters)
	IndirectEntries int

	// Cache geometry.
	ICacheBytes int // supporting icache (4KB) or reference icache (128KB)
	L1DBytes    int
	L2Bytes     int
	LineBytes   int

	// Core.
	Engine      engine.Config
	IssueWidth  int
	RetireWidth int

	// FaultPenalty is the extra redirect penalty of a promoted-branch
	// fault, modelling the roll-back to the previous checkpoint and
	// re-execution of the block prefix.
	FaultPenalty int

	// Run bounds. FastForwardInsts committed instructions are executed
	// functionally first (no cycle-level detail, see Simulator.Run), then
	// WarmupInsts retire under full detail before statistics collection
	// starts; MaxInsts are then measured.
	FastForwardInsts uint64
	WarmupInsts      uint64
	MaxInsts         uint64
	MaxCycles        uint64

	// Sampling, when non-zero, selects the SMARTS-style sampled execution
	// mode (internal/sampling): MaxInsts is interpreted as the total
	// committed-stream budget, covered by alternating functional
	// fast-forward gaps and detailed {warmup, measurement} windows on the
	// Sampling schedule, with statistics aggregated into interval
	// estimates. WarmupInsts and FastForwardInsts keep their meaning for
	// the prefix before the first window. Included in Hash (unlike Check)
	// because a sampled result is an estimate, not the same measurement.
	Sampling SamplingParams

	// Check enables the self-verification layer (internal/check): a
	// functional reference model runs in lockstep with the detailed
	// engine, structural invariants are asserted on every segment and
	// fetch bundle, and conservation identities are verified at the end
	// of the run. No simulated statistic changes; violations are reported
	// via Simulator.CheckViolations. Excluded from Hash so a checked run
	// is attributable to the same machine as its unchecked twin.
	Check bool
}

// SamplingParams is the schedule of the sampled execution mode. The zero
// value disables sampling.
type SamplingParams struct {
	// WindowInsts is the length of each detailed measurement window;
	// PeriodInsts is the committed-stream distance between successive
	// window starts (so PeriodInsts − WarmupInsts − WindowInsts
	// instructions per period are fast-forwarded functionally);
	// WarmupInsts is the detailed warmup preceding each window, whose
	// statistics are discarded.
	WindowInsts uint64
	PeriodInsts uint64
	WarmupInsts uint64
	// Seed drives the deterministic per-period placement jitter of the
	// measurement window inside its period. Two runs with equal seeds
	// produce byte-identical results; differing seeds produce differing
	// window schedules.
	Seed uint64
}

// Enabled reports whether the sampled execution mode is selected.
func (p SamplingParams) Enabled() bool { return p != SamplingParams{} }

// Validate reports schedule errors.
func (p SamplingParams) Validate() error {
	if !p.Enabled() {
		return nil
	}
	if p.WindowInsts == 0 {
		return fmt.Errorf("sampling: zero window")
	}
	if p.PeriodInsts < p.WindowInsts+p.WarmupInsts {
		return fmt.Errorf("sampling: period %d shorter than warmup %d + window %d",
			p.PeriodInsts, p.WarmupInsts, p.WindowInsts)
	}
	return nil
}

// ParseSamplingSpec parses the CLI schedule syntax shared by tcsim and
// tcbench: "window:period:warmup" with an optional ":seed" (default 1).
// The parsed schedule is validated.
func ParseSamplingSpec(spec string) (SamplingParams, error) {
	var p SamplingParams
	parts := strings.Split(spec, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return p, fmt.Errorf("sampling spec wants window:period:warmup[:seed], got %q", spec)
	}
	fields := []*uint64{&p.WindowInsts, &p.PeriodInsts, &p.WarmupInsts, &p.Seed}
	p.Seed = 1
	for i, part := range parts {
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return p, fmt.Errorf("sampling spec field %d (%q): %v", i+1, part, err)
		}
		*fields[i] = v
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// DefaultConfig returns the paper's baseline trace-cache machine
// (Section 3): 2K-entry 4-way trace cache, 4KB supporting icache, 16K-entry
// gshare tree predictor, 64KB L1D, 1MB L2, 16 universal FUs with 64-entry
// node tables, conservative memory scheduling, inactive issue, atomic
// block treatment, no promotion.
func DefaultConfig() Config {
	return Config{
		Name:            "baseline",
		Front:           FrontTrace,
		TC:              core.TraceCacheConfig{Entries: 2048, Assoc: 4},
		Fill:            core.DefaultFillConfig(core.PackAtomic, 0),
		TreeEntries:     1 << 14,
		SplitSizes:      [3]int{1 << 16, 1 << 14, 1 << 13},
		IndirectEntries: 1 << 10,
		ICacheBytes:     4 << 10,
		L1DBytes:        64 << 10,
		L2Bytes:         1 << 20,
		LineBytes:       64,
		Engine:          engine.DefaultConfig(),
		IssueWidth:      16,
		RetireWidth:     16,
		FaultPenalty:    2,
		MaxInsts:        1 << 20,
		MaxCycles:       1 << 62,
	}
}

// ICacheConfig returns the reference instruction-cache-only machine: a
// 128KB dual-ported icache with the hybrid predictor.
func ICacheConfig() Config {
	c := DefaultConfig()
	c.Name = "icache"
	c.Front = FrontICache
	c.ICacheBytes = 128 << 10
	return c
}

// Hash returns a short stable digest of the configuration, recorded in
// run metadata so results can be traced back to the exact machine that
// produced them. Two configs hash equally iff every parameter matches
// (up to the fidelity of the %+v rendering).
func (c Config) Hash() string {
	// Check verifies a run without changing it, so a checked config hashes
	// identically to its unchecked twin (c is a copy; zeroing is local).
	c.Check = false
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", c)
	return fmt.Sprintf("%016x", h.Sum64())
}

// clearFrontEnd zeroes every front-end axis of a copy of the
// configuration — the fetch mechanism selector, trace cache and fill/
// packing/promotion policy, the branch and indirect predictors, the
// supporting icache, the fetch width and the inactive-issue ablation —
// along with the display name and the Check toggle. What remains (core,
// data-side memory hierarchy, penalties, budgets) is exactly what a
// front-end-only replay cannot vary.
func clearFrontEnd(c Config) Config {
	c.Name = ""
	c.Front = 0
	c.TC = core.TraceCacheConfig{}
	c.Fill = core.FillConfig{}
	c.SplitMBP = false
	c.DisableInactiveIssue = false
	c.SingleHybrid = false
	c.FetchWidth = 0
	c.TreeEntries = 0
	c.SplitSizes = [3]int{}
	c.IndirectEntries = 0
	c.ICacheBytes = 0
	c.Check = false
	return c
}

// CoreHash digests the configuration with every front-end axis cleared
// (see clearFrontEnd). Recordings carry the recording config's CoreHash
// so replay eligibility can assert a sweep point differs from the
// recording only in axes the replay actually exercises.
func (c Config) CoreHash() string { return clearFrontEnd(c).Hash() }

// FrontEndEquivalent reports whether two configurations differ only in
// front-end axes (and the display name). A recorded retired stream from
// one is a valid replay input for the other: the committed path depends
// only on the program and the instruction budget, and every non-front-end
// parameter that could make a detailed comparison unfair is equal.
func FrontEndEquivalent(a, b Config) bool { return a.CoreHash() == b.CoreHash() }

// cacheConfigs returns the memory-hierarchy geometries the configuration
// implies; New builds them and Validate vets them.
func (c Config) cacheConfigs() [3]cache.Config {
	return [3]cache.Config{
		{Name: "l1i", SizeBytes: c.ICacheBytes, LineBytes: c.LineBytes, Assoc: 4},
		{Name: "l1d", SizeBytes: c.L1DBytes, LineBytes: c.LineBytes, Assoc: 4},
		{Name: "l2", SizeBytes: c.L2Bytes, LineBytes: c.LineBytes, Assoc: 8},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("sim %q: non-positive widths", c.Name)
	}
	if c.Front == FrontTrace {
		if err := c.TC.Validate(); err != nil {
			return err
		}
	}
	if c.Engine.FUs <= 0 || c.Engine.RSPerFU <= 0 {
		return fmt.Errorf("sim %q: bad engine config", c.Name)
	}
	if c.MaxInsts == 0 {
		return fmt.Errorf("sim %q: zero instruction budget", c.Name)
	}
	for _, cc := range c.cacheConfigs() {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("sim %q: %w", c.Name, err)
		}
	}
	if err := c.Sampling.Validate(); err != nil {
		return fmt.Errorf("sim %q: %w", c.Name, err)
	}
	return nil
}
