package sim

import (
	"fmt"

	"tracecache/internal/checkpoint"
	"tracecache/internal/fetch"
	"tracecache/internal/isa"
	"tracecache/internal/stats"
)

// This file implements functional fast-forward: executing the committed
// path against the architectural state with no engine, no scheduler, no
// speculation and no per-cycle accounting, while still feeding the retired
// stream into the structures a detailed run warms from that same stream —
// the instruction and data caches, the branch predictors, the bias table
// and the fill unit (and through it the trace cache).
//
// Structures keyed purely by the retired stream (bias table, fill unit,
// trace cache contents, indirect predictor, cache tags) warm as the
// detailed run's committed path would warm them. The conditional-branch
// predictors are fetch-time structures: detailed fetch groups and
// wrong-path training cannot be reproduced without the pipeline, so
// fast-forward trains them on the committed path using a pseudo fetch
// group (reset at taken control flow, the predictor's slot budget, or the
// fetch width) — the measured accuracy deltas are recorded in
// BENCH_perf.json and the README.

// ApplyCheckpoint restores a shared architectural checkpoint into this
// simulator: registers, memory, call stack, PC, committed-instruction
// count and branch history. It must be called on a fresh simulator, before
// Run. The restored instructions count toward the configuration's
// FastForwardInsts, so a config whose FastForwardInsts exceeds the
// checkpoint's depth fast-forwards (with warming) the remainder; matching
// depths skip straight to detailed warmup. Microarchitectural state is not
// in the checkpoint — caches, predictors and the trace cache start cold
// and are warmed by WarmupInsts.
func (s *Simulator) ApplyCheckpoint(cp *checkpoint.Checkpoint) error {
	if s.cycle != 0 || s.ffwdDone != 0 || s.run.Retired != 0 {
		return fmt.Errorf("sim: ApplyCheckpoint on a running simulator")
	}
	if s.trc != nil {
		// The checkpointed prefix was committed by another simulator; this
		// one's tap would record a stream with the prefix missing.
		return fmt.Errorf("sim: cannot record a trace across a checkpoint restore")
	}
	if err := cp.Restore(s.state); err != nil {
		return err
	}
	if s.chk != nil {
		// The lockstep reference model resumes from the same checkpoint.
		if err := s.chk.Restore(cp.Restore, cp.PC); err != nil {
			return err
		}
	}
	s.fetchPC = cp.PC
	s.ffwdDone = cp.Insts
	s.fromCheckpoint = true
	s.fe.Restore(cp.Hist, fetch.BuildRAS(cp.CallStack))
	return nil
}

// FastForwarded returns the number of committed instructions executed
// functionally (fast-forward plus any restored checkpoint prefix).
func (s *Simulator) FastForwarded() uint64 { return s.ffwdDone }

// fastForward executes up to n committed-path instructions functionally,
// warming the retired-stream structures, and leaves the machine ready to
// fetch the next committed instruction. It consumes no cycles and touches
// no run statistics. If the program halts inside the fast-forward window,
// stepping stops at the halt instruction without consuming it, so the
// detailed phase retires it exactly as a longer detailed run would.
func (s *Simulator) fastForward(n uint64) {
	hist := s.fe.Hist()
	pc := s.fetchPC
	lineInsts := s.hier.L1I.LineBytes() / isa.InstBytes
	lastLine := -1
	width := s.cfg.FetchWidth
	if width <= 0 {
		width = stats.MaxFetchWidth
	}
	maxSlots := 0
	if s.mbp != nil {
		maxSlots = s.mbp.MaxSlots()
	}
	// Pseudo fetch group for the multiple branch predictor: indexed by the
	// group's start PC and the history at its start, like real fetches.
	var (
		groupStart = pc
		groupHist  = hist
		groupLen   int
		slot       int
		path       uint8
	)
	var done uint64
	for done < n {
		info := s.state.StepAt(pc)
		if info.Halted {
			break
		}
		done++
		if s.trc != nil {
			s.recordRetire(pc, info.Inst, info.Taken, info.NextPC, info.MemAddr)
		}
		// The committed path never rolls back: run with an empty undo log.
		s.state.CompactTo(s.state.Checkpoint())
		if line := pc / lineInsts; line != lastLine {
			s.hier.FetchInst(isa.Addr(pc))
			lastLine = line
		}
		in := info.Inst
		if s.fill != nil {
			s.fill.Retire(pc, in, info.Taken)
		}
		endGroup := false
		switch {
		case in.IsCondBranch():
			switch {
			case s.mbp != nil:
				if slot < maxSlots {
					pred, ctx := s.mbp.Predict(groupStart, pc, groupHist, slot, path)
					if pred {
						path |= 1 << uint(slot)
					}
					slot++
					s.mbp.Update(ctx, info.Taken)
				}
				endGroup = slot >= maxSlots
			case s.hyb != nil:
				_, ctx := s.hyb.Predict(pc, hist)
				s.hyb.Update(ctx, info.Taken)
				endGroup = true // icache fetch blocks end at branches
			}
			hist <<= 1
			if info.Taken {
				hist |= 1
			}
		case in.IsIndirect():
			s.ind.Update(pc, info.NextPC)
			endGroup = true
		case in.IsControl(), in.IsTrap():
			endGroup = true
		default:
			if in.IsMem() {
				s.hier.AccessData(info.MemAddr)
			}
		}
		groupLen++
		pc = info.NextPC
		if endGroup || groupLen >= width {
			groupStart, groupHist = pc, hist
			groupLen, slot, path = 0, 0, 0
		}
	}
	s.fetchPC = pc
	s.ffwdDone += done
	// Hand the front end the architectural fetch state: the committed
	// branch history and a RAS mirroring the committed call nesting.
	s.fe.Restore(hist, fetch.BuildRAS(s.state.CallStack()))
}
