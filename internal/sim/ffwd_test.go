package sim

import (
	"testing"

	"tracecache/internal/checkpoint"
	"tracecache/internal/program"
	"tracecache/internal/workload"
)

func ffwdProg(t *testing.T, name string) *program.Program {
	t.Helper()
	p, err := workload.SharedProgram(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// retireStream runs the simulator and returns the retired PC stream.
func retireStream(t *testing.T, cfg Config, p *program.Program, cp *checkpoint.Checkpoint) []int {
	t.Helper()
	s := mustSim(t, cfg, p)
	if cp != nil {
		if err := s.ApplyCheckpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	var pcs []int
	s.OnRetire = func(pc int) { pcs = append(pcs, pc) }
	s.Run()
	return pcs
}

// assertFastForwardDeterminism checks the central fast-forward contract:
// fast-forwarding N instructions and then retiring M in detail produces
// the same committed stream as a fully detailed run's instructions N..N+M.
// (Fast-forward may only relocate the detailed phase, never change what
// commits.)
func assertFastForwardDeterminism(t *testing.T, cfg Config, bench string) {
	t.Helper()
	const n, m = 30_000, 30_000
	p := ffwdProg(t, bench)

	full := cfg
	full.WarmupInsts, full.MaxInsts = 0, n+m
	detailed := retireStream(t, full, p, nil)
	if uint64(len(detailed)) < n+m {
		t.Fatalf("detailed run retired %d, want >= %d", len(detailed), n+m)
	}

	ff := cfg
	ff.FastForwardInsts, ff.WarmupInsts, ff.MaxInsts = n, 0, m
	ffStream := retireStream(t, ff, p, nil)
	if uint64(len(ffStream)) < m {
		t.Fatalf("ffwd run retired %d, want >= %d", len(ffStream), m)
	}

	k := len(ffStream)
	if rest := len(detailed) - n; rest < k {
		k = rest
	}
	for i := 0; i < k; i++ {
		if detailed[n+i] != ffStream[i] {
			t.Fatalf("retired stream diverged at instruction %d: detailed pc %d, ffwd pc %d",
				i, detailed[n+i], ffStream[i])
		}
	}
}

func TestFastForwardDeterminismTrace(t *testing.T) {
	assertFastForwardDeterminism(t, DefaultConfig(), "gcc")
}

func TestFastForwardDeterminismICache(t *testing.T) {
	assertFastForwardDeterminism(t, ICacheConfig(), "compress")
}

// TestApplyCheckpointMatchesInSimFastForward verifies a run restored from
// a shared checkpoint commits the same stream as one that fast-forwarded
// the prefix itself (the checkpoint skips warming, which may change
// timing, but never the committed path).
func TestApplyCheckpointMatchesInSimFastForward(t *testing.T) {
	const n, m = 30_000, 30_000
	p := ffwdProg(t, "gcc")
	cfg := DefaultConfig()
	cfg.FastForwardInsts, cfg.WarmupInsts, cfg.MaxInsts = n, 0, m

	inSim := retireStream(t, cfg, p, nil)
	cp := checkpoint.Capture(p, n)
	restored := retireStream(t, cfg, p, cp)
	if uint64(len(restored)) < m {
		t.Fatalf("restored run retired %d, want >= %d", len(restored), m)
	}
	k := min(len(inSim), len(restored))
	for i := 0; i < k; i++ {
		if inSim[i] != restored[i] {
			t.Fatalf("streams diverged at %d: in-sim pc %d, restored pc %d", i, inSim[i], restored[i])
		}
	}
}

func TestApplyCheckpointSetsProvenance(t *testing.T) {
	const n = 10_000
	p := ffwdProg(t, "gcc")
	cfg := DefaultConfig()
	cfg.FastForwardInsts, cfg.MaxInsts = n, 20_000
	s := mustSim(t, cfg, p)
	if err := s.ApplyCheckpoint(checkpoint.Capture(p, n)); err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Meta == nil || r.Meta.FastForwardInsts != n || !r.Meta.CheckpointShared {
		t.Fatalf("meta = %+v, want FastForwardInsts=%d CheckpointShared=true", r.Meta, n)
	}
	if s.FastForwarded() != n {
		t.Errorf("FastForwarded = %d, want %d", s.FastForwarded(), n)
	}
	// A default run must leave both provenance fields zero so serialized
	// summaries are unchanged (omitempty).
	plain := mustSim(t, DefaultConfig(), sumLoop(t, 50))
	pr := plain.Run()
	if pr.Meta.FastForwardInsts != 0 || pr.Meta.CheckpointShared {
		t.Fatalf("default-path meta = %+v, want zero ffwd provenance", pr.Meta)
	}
}

func TestApplyCheckpointRejectsStartedSimulator(t *testing.T) {
	p := sumLoop(t, 50)
	cfg := DefaultConfig()
	s := mustSim(t, cfg, p)
	s.Run()
	if err := s.ApplyCheckpoint(checkpoint.Capture(p, 10)); err == nil {
		t.Fatal("ApplyCheckpoint accepted a simulator that already ran")
	}
}

// TestFastForwardPastHalt: a fast-forward window larger than the program
// stops at the halt without consuming it, so the detailed phase retires
// the halt exactly once.
func TestFastForwardPastHalt(t *testing.T) {
	p := sumLoop(t, 100) // 303 committed instructions including the halt
	cfg := DefaultConfig()
	cfg.FastForwardInsts = 10_000
	s := mustSim(t, cfg, p)
	r := s.Run()
	if s.FastForwarded() != 302 {
		t.Errorf("FastForwarded = %d, want 302 (halt left to the detailed phase)", s.FastForwarded())
	}
	if r.Retired != 1 {
		t.Errorf("retired = %d, want 1 (just the halt)", r.Retired)
	}
}

// TestFastForwardRunsWithEmptyUndoLog: the committed path never rolls
// back, so fast-forward must not accumulate undo history.
func TestFastForwardRunsWithEmptyUndoLog(t *testing.T) {
	p := ffwdProg(t, "compress")
	cfg := DefaultConfig()
	cfg.FastForwardInsts, cfg.MaxInsts = 50_000, 1
	s := mustSim(t, cfg, p)
	s.fastForward(cfg.FastForwardInsts)
	if n := s.state.UndoLen(); n != 0 {
		t.Errorf("undo length after fast-forward = %d, want 0", n)
	}
}

// TestFastForwardAccuracy bounds the approximation error of warming the
// fetch-time predictors from the committed stream: replacing two thirds of
// a detailed warmup with fast-forward must measure the identical committed
// region and keep IPC and misprediction rate close to the all-detailed
// run. The bounds are loose (the runs are deterministic; these catch
// regressions in the warming model, not noise).
func TestFastForwardAccuracy(t *testing.T) {
	p := ffwdProg(t, "gcc")
	const prefix, keepWarm, measured = 100_000, 50_000, 60_000

	det := DefaultConfig()
	det.WarmupInsts, det.MaxInsts = prefix+keepWarm, measured
	sd := mustSim(t, det, p)
	rd := sd.Run()

	ff := DefaultConfig()
	ff.FastForwardInsts, ff.WarmupInsts, ff.MaxInsts = prefix, keepWarm, measured
	sf := mustSim(t, ff, p)
	rf := sf.Run()

	if rd.Retired != rf.Retired || rd.CondBranches != rf.CondBranches {
		t.Fatalf("measured regions differ: retired %d/%d, branches %d/%d",
			rd.Retired, rf.Retired, rd.CondBranches, rf.CondBranches)
	}
	if d := relDelta(rf.IPC(), rd.IPC()); d > 0.10 {
		t.Errorf("IPC delta %.1f%% (detailed %.3f, ffwd %.3f), want <= 10%%", 100*d, rd.IPC(), rf.IPC())
	}
	if d := rf.CondMispredictRate() - rd.CondMispredictRate(); d > 0.03 || d < -0.03 {
		t.Errorf("mispredict-rate delta %.2fpp (detailed %.2f%%, ffwd %.2f%%), want within 3pp",
			100*d, 100*rd.CondMispredictRate(), 100*rf.CondMispredictRate())
	}
}

func relDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return 0
	}
	return d / b
}
