package sim

import (
	"fmt"

	"tracecache/internal/bpred"
	"tracecache/internal/cache"
	"tracecache/internal/core"
	"tracecache/internal/fetch"
	"tracecache/internal/program"
)

// frontEnd bundles the fetch-path structures — cache hierarchy, indirect
// predictor, trace cache, fill unit, multiple-branch/hybrid predictor and
// fetch engine — shared by the detailed simulator and the replay engine.
// Everything here is driven purely by fetch requests and the retired
// stream, which is what makes a front-end-only replay possible: Replayer
// runs exactly these structures with no execution core attached.
type frontEnd struct {
	hier *cache.Hierarchy
	ind  *bpred.IndirectPredictor
	tc   *core.TraceCache
	fill *core.FillUnit
	mbp  bpred.MultiPredictor
	hyb  *bpred.Hybrid
	fe   fetch.Engine
}

// newFrontEnd builds the front end the configuration describes.
func newFrontEnd(cfg Config, prog *program.Program) (*frontEnd, error) {
	f := &frontEnd{}
	ccs := cfg.cacheConfigs()
	l1i, err := cache.New(ccs[0])
	if err != nil {
		return nil, fmt.Errorf("sim %q: %w", cfg.Name, err)
	}
	l1d, err := cache.New(ccs[1])
	if err != nil {
		return nil, fmt.Errorf("sim %q: %w", cfg.Name, err)
	}
	l2, err := cache.New(ccs[2])
	if err != nil {
		return nil, fmt.Errorf("sim %q: %w", cfg.Name, err)
	}
	f.hier = &cache.Hierarchy{L1I: l1i, L1D: l1d, L2: l2}
	f.ind = bpred.NewIndirectPredictor(cfg.IndirectEntries)
	switch cfg.Front {
	case FrontTrace:
		tc, err := core.NewTraceCache(cfg.TC)
		if err != nil {
			return nil, err
		}
		f.tc = tc
		f.fill = core.NewFillUnit(cfg.Fill, tc)
		switch {
		case cfg.SingleHybrid:
			f.mbp = bpred.NewSingleHybridMBP(bpred.NewHybrid())
		case cfg.SplitMBP:
			f.mbp = bpred.NewSplitMBP(cfg.SplitSizes[0], cfg.SplitSizes[1], cfg.SplitSizes[2])
		default:
			f.mbp = bpred.NewTreeMBP(cfg.TreeEntries)
		}
		f.fe = fetch.NewTraceEngine(fetch.TraceConfig{
			Prog: prog, TC: tc, MBP: f.mbp, Indirect: f.ind, Hier: f.hier,
			MaxWidth:             cfg.FetchWidth,
			PathAssoc:            cfg.TC.PathAssoc,
			DisableInactiveIssue: cfg.DisableInactiveIssue,
		})
	default:
		f.hyb = bpred.NewHybrid()
		f.fe = fetch.NewICacheEngine(fetch.ICacheConfig{
			Prog: prog, Hier: f.hier, Hybrid: f.hyb, Indirect: f.ind,
			MaxWidth: cfg.FetchWidth,
		})
	}
	return f, nil
}
