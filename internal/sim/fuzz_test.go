package sim

import (
	"math/rand"
	"testing"

	"tracecache/internal/core"
	"tracecache/internal/engine"
	"tracecache/internal/exec"
	"tracecache/internal/isa"
)

// TestArchitecturalEquivalenceFuzz runs the chaos program under many
// randomly drawn machine configurations and checks that the final
// architectural state always matches a sequential execution. This is the
// deepest end-to-end validation of recovery, rename-map restoration,
// undo-log rollback, inactive-issue injection and promoted-fault handling:
// any timing-dependent corruption of architectural state shows up as a
// register mismatch.
func TestArchitecturalEquivalenceFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing skipped in -short mode")
	}
	rnd := rand.New(rand.NewSource(99))
	p := chaos(t)
	golden := exec.NewState(p)
	gsteps, ghalted := golden.Run(1 << 30)
	if !ghalted {
		t.Fatal("golden did not halt")
	}
	policies := []core.PackPolicy{
		core.PackAtomic, core.PackUnregulated, core.PackChunk2,
		core.PackChunk4, core.PackCostRegulated,
	}
	for trial := 0; trial < 24; trial++ {
		cfg := DefaultConfig()
		cfg.Name = "fuzz"
		if rnd.Intn(4) == 0 {
			cfg = ICacheConfig()
			cfg.Name = "fuzz-icache"
		} else {
			cfg.Fill = core.DefaultFillConfig(policies[rnd.Intn(len(policies))], uint32(rnd.Intn(3)*8))
			cfg.SplitMBP = rnd.Intn(2) == 0
			cfg.TC.PathAssoc = rnd.Intn(2) == 0
			cfg.DisableInactiveIssue = rnd.Intn(3) == 0
			cfg.TC.Entries = []int{64, 256, 2048}[rnd.Intn(3)]
			cfg.TC.Assoc = []int{1, 2, 4}[rnd.Intn(3)]
		}
		cfg.Engine = engine.Config{
			FUs:        []int{2, 4, 16}[rnd.Intn(3)],
			RSPerFU:    []int{4, 16, 64}[rnd.Intn(3)],
			MemOracle:  rnd.Intn(2) == 0,
			DCacheHit:  1 + rnd.Intn(2),
			ForwardLat: 1,
		}
		cfg.IssueWidth = []int{4, 8, 16}[rnd.Intn(3)]
		cfg.RetireWidth = []int{4, 16}[rnd.Intn(2)]
		cfg.FaultPenalty = rnd.Intn(4)
		s := mustSim(t, cfg, p)
		r := s.Run()
		if r.Retired != gsteps {
			t.Fatalf("trial %d (%+v): retired %d, golden %d", trial, cfg, r.Retired, gsteps)
		}
		for i := 0; i < isa.NumRegs; i++ {
			if s.state.Regs[i] != golden.Regs[i] {
				t.Fatalf("trial %d (%+v): r%d = %d, golden %d",
					trial, cfg, i, s.state.Regs[i], golden.Regs[i])
			}
		}
	}
}
