package sim

import "tracecache/internal/metrics"

// Metrics is the simulator's fleet-level instrumentation: process-wide
// committed-instruction and cycle counters that a monitoring surface can
// difference over time to derive live aggregate insts/s across every
// simulation feeding them. The counters are atomic, so one Metrics value
// is shared by all simulators of a concurrent sweep.
//
// Attachment follows the internal/obs contract: the simulator holds a
// pointer that is nil by default, each hot-path site costs one nil check
// when detached, and counter flushes are batched (per retirement
// accumulation, one atomic add per metricsFlushPeriod cycles) so the
// enabled path stays cheap too. tcvet's nilsafe analyzer enforces the
// contract: a *Metrics must never be boxed into an interface, or the
// simulator's `s.met != nil` fast-path guard stops meaning "detached".
//
//tc:nilsafe
type Metrics struct {
	// Insts counts committed (retired) instructions on the detailed path,
	// warmup included; functionally fast-forwarded prefixes are excluded.
	Insts *metrics.Counter
	// Cycles counts detailed simulation cycles, warmup included.
	Cycles *metrics.Counter
}

// NewMetrics registers the simulator counter set in the registry.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Insts: r.Counter("tracecache_sim_instructions_committed_total",
			"Committed instructions across all simulations (detailed path, warmup included)."),
		Cycles: r.Counter("tracecache_sim_cycles_total",
			"Simulated cycles across all simulations (detailed path, warmup included)."),
	}
}

// metricsFlushPeriod is the cycle period (a power of two) between batched
// counter flushes while metrics are attached.
const metricsFlushPeriod = 4096

// AttachMetrics wires the fleet counters into the simulator. Attach
// before Run; a nil value detaches.
func (s *Simulator) AttachMetrics(m *Metrics) { s.met = m }

// flushMetrics publishes the batched deltas accumulated since the last
// flush. Called on the flush period and at the end of Run.
func (s *Simulator) flushMetrics() {
	if s.metInsts > 0 {
		s.met.Insts.Add(s.metInsts)
		s.metInsts = 0
	}
	if d := s.cycle - s.metCycleMark; d > 0 {
		s.met.Cycles.Add(d)
		s.metCycleMark = s.cycle
	}
}
