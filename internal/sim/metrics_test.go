package sim

import (
	"testing"

	"tracecache/internal/metrics"
	"tracecache/internal/stats"
	"tracecache/internal/workload"
)

// TestAttachMetricsCounts checks the batched counter flushes account for
// every committed instruction and cycle: with no warmup, the process-wide
// counters must equal the run's own totals exactly.
func TestAttachMetricsCounts(t *testing.T) {
	prog, err := workload.SharedProgram("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WarmupInsts = 0
	cfg.MaxInsts = 30_000

	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	s, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachMetrics(m)
	run := s.Run()

	if got, want := m.Insts.Value(), run.Retired; got != want {
		t.Errorf("insts counter = %d, want %d", got, want)
	}
	if got, want := m.Cycles.Value(), run.Cycles; got != want {
		t.Errorf("cycles counter = %d, want %d", got, want)
	}
	if run.Meta == nil || run.Meta.Provenance != stats.ProvCold {
		t.Errorf("Meta.Provenance = %v, want %q", run.Meta, stats.ProvCold)
	}
}

// TestAttachMetricsWarmupIncluded checks counters cover warmup (the live
// insts/s view cares about simulator work, not the measurement window) and
// that detached simulation leaves counters untouched.
func TestAttachMetricsWarmupIncluded(t *testing.T) {
	prog, err := workload.SharedProgram("compress")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WarmupInsts = 10_000
	cfg.MaxInsts = 20_000

	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	s, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachMetrics(m)
	run := s.Run()

	if m.Insts.Value() < cfg.WarmupInsts+run.Retired {
		t.Errorf("insts counter = %d, want >= warmup %d + measured %d",
			m.Insts.Value(), cfg.WarmupInsts, run.Retired)
	}
	if m.Cycles.Value() <= run.Cycles {
		t.Errorf("cycles counter = %d, want > measured cycles %d", m.Cycles.Value(), run.Cycles)
	}

	// A detached run must not move the counters.
	before := m.Insts.Value()
	s2, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	s2.Run()
	if m.Insts.Value() != before {
		t.Errorf("detached run moved the insts counter: %d -> %d", before, m.Insts.Value())
	}
}

// TestMetricsDetachedStatsIdentical pins that attaching metrics changes no
// simulated statistic.
func TestMetricsDetachedStatsIdentical(t *testing.T) {
	prog, err := workload.SharedProgram("go")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WarmupInsts = 5_000
	cfg.MaxInsts = 15_000

	runOnce := func(attach bool) stats.Run {
		s, err := New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			s.AttachMetrics(NewMetrics(metrics.NewRegistry()))
		}
		run := *s.Run()
		run.Meta = nil
		return run
	}
	if plain, metered := runOnce(false), runOnce(true); plain != metered {
		t.Error("attaching metrics changed simulated statistics")
	}
}
