package sim

import (
	"tracecache/internal/isa"
	"tracecache/internal/trace"
)

// AttachRecorder attaches a retired-stream recording tap: every committed
// instruction — fast-forwarded or detailed, in commit order — is appended
// to w. Attach before Run on a fresh simulator (recording must start at
// the program entry, so it cannot be combined with ApplyCheckpoint); a
// nil writer detaches. The detached path costs one nil comparison per
// committed instruction, per the hotpath contract, and write errors are
// latched inside the writer (surface them via w.Close).
func (s *Simulator) AttachRecorder(w *trace.Writer) { s.trc = w }

// TraceHeader describes the stream an attached recorder captures under
// this simulator's configuration and program.
func (s *Simulator) TraceHeader(provenance string) trace.Header {
	return trace.Header{
		ProgHash:         s.prog.Hash(),
		CodeLen:          len(s.prog.Code),
		Entry:            s.prog.Entry,
		FastForwardInsts: s.cfg.FastForwardInsts,
		WarmupInsts:      s.cfg.WarmupInsts,
		MeasureInsts:     s.cfg.MaxInsts,
		CoreHash:         s.cfg.CoreHash(),
		Name:             s.prog.Name,
		Provenance:       provenance,
	}
}

// recordRetire appends one committed instruction to the recording tap.
// The caller nil-checks s.trc.
//
//tc:hotpath
func (s *Simulator) recordRetire(pc int, in isa.Inst, taken bool, nextPC int, memAddr uint64) {
	r := trace.Rec{PC: pc, Kind: trace.KindOf(in)}
	switch {
	case in.IsCondBranch():
		r.Taken = taken
	case in.IsIndirect():
		r.Target = nextPC
	case in.IsStore():
		r.HasMem, r.MemAddr = true, memAddr
	}
	s.trc.Append(r)
}
