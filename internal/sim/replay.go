package sim

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"tracecache/internal/cache"
	"tracecache/internal/core"
	"tracecache/internal/fetch"
	"tracecache/internal/program"
	"tracecache/internal/stats"
	"tracecache/internal/trace"
)

// Replayer drives only the front end — trace cache, fill unit,
// bias/promotion table, branch and indirect predictors, L1I — from a
// recorded retired stream. There is no execution core, scheduler,
// register state or wrong-path execution: each fetch bundle is resolved
// instantly against the recorded committed path, so the machine advances
// at fetch speed rather than simulation speed.
//
// The front-end statistics it produces (effective fetch rate, trace
// cache hit rate, promotion/demotion/fault counts, predictor accuracy)
// tie out against a detailed run of the same configuration within the
// bounds documented in DESIGN.md §9 and enforced by check.CompareReplay:
// the divergences are the absence of wrong-path pollution (fetches the
// detailed machine issues past mispredicted branches touch the L1I,
// trace cache LRU state and predictors; replay never sees them),
// immediate instead of retire-lagged predictor updates, and
// fetch-granular instead of cycle-granular warmup/budget boundaries.
// Cycle-domain statistics (Cycles, IPC, cycle classification, wrong-path
// fetch counts, resolution latencies) are undefined and left zero.
type Replayer struct {
	cfg      Config
	prog     *program.Program
	progHash uint64
	f        *frontEnd
	run      stats.Run
	fiBuf    []*fetch.FetchedInst
	recs     []trace.Rec // the stream being replayed
	idx      int         // cursor into recs
}

// NewReplayer builds a front-end-only replay engine for the program
// under the configuration. The core-side parameters of cfg are ignored
// (no core runs); its front-end axes and budgets govern the replay.
func NewReplayer(cfg Config, prog *program.Program) (*Replayer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := newFrontEnd(cfg, prog)
	if err != nil {
		return nil, err
	}
	r := &Replayer{cfg: cfg, prog: prog, progHash: prog.Hash(), f: f}
	r.run.Config = cfg.Name
	r.run.Benchmark = prog.Name
	return r, nil
}

// TraceCache returns the trace cache (nil for the icache front end).
func (r *Replayer) TraceCache() *core.TraceCache { return r.f.tc }

// FillUnit returns the fill unit (nil for the icache front end).
func (r *Replayer) FillUnit() *core.FillUnit { return r.f.fill }

// Hierarchy returns the cache hierarchy.
func (r *Replayer) Hierarchy() *cache.Hierarchy { return r.f.hier }

// Stats returns the statistics collected so far.
func (r *Replayer) Stats() *stats.Run { return &r.run }

// Replay decodes the recorded stream and replays it (see ReplayRecords).
func (r *Replayer) Replay(rd *trace.Reader) (*stats.Run, error) {
	recs := make([]trace.Rec, 0, rd.Count())
	var rec trace.Rec
	for {
		err := rd.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sim: replay %q/%q: %w", r.cfg.Name, r.prog.Name, err)
		}
		recs = append(recs, rec)
	}
	return r.ReplayRecords(rd.Header(), recs)
}

// ReplayRecords consumes a fully decoded recorded stream (h must be its
// header) and returns front-end statistics. The configuration's
// FastForwardInsts+WarmupInsts prefix warms the front end with
// statistics discarded; MaxInsts are then measured (the stream must
// cover the combined budget — shorter only if the program halts). A
// Replayer is single-use: replaying resumes warm state, so build a fresh
// one per stream. Decoding once and replaying the records many times is
// the fast path for sweeps (experiments.Runner does this internally).
func (r *Replayer) ReplayRecords(h trace.Header, recs []trace.Rec) (*stats.Run, error) {
	//tcvet:ignore determinism wall-clock provenance only: run start time for stats.Meta, never simulated state
	start := time.Now()
	if err := h.Matches(r.traceWant()); err != nil {
		return nil, fmt.Errorf("sim: replay %q/%q: %w", r.cfg.Name, r.prog.Name, err)
	}
	r.recs, r.idx = recs, 0
	warmTotal := r.cfg.FastForwardInsts + r.cfg.WarmupInsts
	warming := warmTotal > 0
	var (
		total uint64 // committed instructions consumed, including warmup
		halt  bool
	)
	pc := r.prog.Entry
	for r.idx < len(r.recs) && !halt {
		if warming && total >= warmTotal {
			warming = false
			r.run = stats.Run{Benchmark: r.run.Benchmark, Config: r.run.Config}
		}
		if !warming && r.run.Retired >= r.cfg.MaxInsts {
			break
		}
		b := r.f.fe.Fetch(pc)
		consumed := 0
		mispredBR := false
		redirected := false
		for i := 0; i < len(b.Insts); i++ {
			fi := &b.Insts[i]
			if fi.Inactive {
				break
			}
			cur := &r.recs[r.idx]
			if fi.PC != cur.PC {
				return nil, r.divergeErr(fi.PC, cur.PC, total)
			}
			target, redir := r.commitInst(fi, cur, b.TCMiss && consumed == 0)
			consumed++
			total++
			halt = cur.Kind == trace.KindHalt
			r.idx++
			more := r.idx < len(r.recs)
			if !redir && fi.Inst.IsReturn() && more && fi.PredTarget != r.recs[r.idx].PC {
				// Return misfetch (the RAS is ideal on the committed path,
				// so this mirrors a recovery that should never trigger):
				// redirect to the committed continuation.
				r.f.fe.ResolveEffect(fi, false)
				redirected = true
				pc = r.recs[r.idx].PC
				break
			}
			if redir {
				redirected = true
				pc = target
				if fi.Inst.IsCondBranch() {
					mispredBR = true
					// Inactive issue: a diverging branch that carried a
					// real prediction re-issues its inactive suffix as the
					// correct path (mirrors Simulator.recoverBranch).
					if fi.UsedSlot && i+1 < len(b.Insts) && b.Insts[i+1].Inactive {
						n, resume, injHalt, err := r.inject(b.Insts[i+1:])
						if err != nil {
							return nil, err
						}
						consumed += n
						total += uint64(n)
						halt = halt || injHalt
						pc = resume
					}
				}
				break
			}
			if !more || halt {
				break
			}
		}
		if !redirected {
			pc = b.NextPC
		}
		if consumed > 0 {
			r.run.Fetches++
			r.run.FetchedCorrect += uint64(consumed)
			end := b.Reason
			if mispredBR {
				end = stats.EndMispredBR
			}
			r.run.Hist.Add(consumed, end)
			p := b.PredsUsed
			if p > 3 {
				p = 3
			}
			r.run.PredsPerFetch[p]++
		}
	}
	//tcvet:ignore determinism wall-clock provenance only: feeds stats.Meta wall time, never simulated state
	r.run.Meta = r.buildMeta(start, time.Since(start))
	run := r.run
	return &run, nil
}

// traceWant is the stream content this replay requires.
func (r *Replayer) traceWant() trace.Header {
	return trace.Header{
		ProgHash:         r.progHash,
		CodeLen:          len(r.prog.Code),
		Entry:            r.prog.Entry,
		FastForwardInsts: r.cfg.FastForwardInsts,
		WarmupInsts:      r.cfg.WarmupInsts,
		MeasureInsts:     r.cfg.MaxInsts,
	}
}

// divergeErr reports a committed-path mismatch: the front end delivered
// an active instruction the recording disagrees with, which can only
// mean a corrupted stream that still decodes or a replay-engine bug.
func (r *Replayer) divergeErr(fetched, recorded int, total uint64) error {
	return fmt.Errorf("sim: replay %q/%q diverged after %d instructions: fetched pc %d, stream has %d",
		r.cfg.Name, r.prog.Name, total, fetched, recorded)
}

// commitInst retires one fetched instruction against its record: the
// fill unit and bias table consume it, predictors train, statistics
// accumulate, and a mispredicted branch or misfetched indirect restores
// the fetch state and redirects (redir true, target the committed next
// PC). This is the front-end-visible half of Simulator.retireInst plus
// the resolve-time recovery effects of Simulator.recoverBranch.
//
//tc:hotpath
func (r *Replayer) commitInst(fi *fetch.FetchedInst, rec *trace.Rec, alignFill bool) (target int, redir bool) {
	in := fi.Inst
	actual := rec.Taken
	mispred := false
	switch {
	case in.IsCondBranch():
		mispred = fi.Predicted != actual
	case in.IsIndirect():
		mispred = fi.PredTarget != rec.Target
	}
	// A faulting promoted branch checks demotion before it retires (in
	// the detailed machine the fault resolves cycles before the commit
	// updates the bias table; order preserved here).
	if mispred && fi.Promoted && r.f.fill != nil && r.f.fill.Bias() != nil &&
		r.f.fill.Bias().ShouldDemote(fi.PC, fi.Predicted) {
		r.f.tc.InvalidatePromoted(fi.PC)
	}
	r.run.Retired++
	if r.f.fill != nil {
		if alignFill {
			r.f.fill.Align()
		}
		r.f.fill.Retire(fi.PC, in, actual)
	}
	switch {
	case in.IsCondBranch():
		r.run.CondBranches++
		src := stats.SrcEmbedded
		if fi.Promoted {
			src = stats.SrcPromoted
			r.run.PromotedExecuted++
			if mispred {
				r.run.PromotedFaults++
			}
		} else if fi.UsedSlot {
			src = stats.SrcSlot
			r.f.mbp.Update(fi.Ctx, actual)
		} else if fi.UsedHybrid {
			src = stats.SrcHybrid
			r.f.hyb.Update(fi.HCtx, actual)
		}
		r.run.CondBySource[src]++
		if mispred {
			r.run.MissBySource[src]++
			r.run.CondMispredicts++
		}
	case in.IsIndirect():
		r.run.IndirectJumps++
		r.f.ind.Update(fi.PC, rec.Target)
		if mispred {
			r.run.IndirectMisses++
		}
	case in.IsReturn():
		r.run.Returns++
	case in.IsStore():
		if rec.HasMem {
			r.f.hier.AccessData(rec.MemAddr)
		}
	}
	if !mispred {
		return 0, false
	}
	r.f.fe.ResolveEffect(fi, actual)
	if in.IsCondBranch() {
		if actual {
			return in.Target, true
		}
		return fi.PC + 1, true
	}
	return rec.Target, true
}

// inject replays the inactive suffix of a diverging branch whose
// embedded path turned out correct: the suffix's fetch-state effects are
// re-applied and its instructions commit against the stream, counting
// toward the same fetch record. A nested mispredict (a suffix branch
// whose embedded outcome is wrong, or a faulting promoted branch) ends
// the injection with a further redirect, exactly like the detailed
// machine. Returns the instructions committed, the resume PC, and
// whether a halt committed.
func (r *Replayer) inject(suffix []fetch.FetchedInst) (int, int, bool, error) {
	r.fiBuf = r.fiBuf[:0]
	for i := range suffix {
		r.fiBuf = append(r.fiBuf, &suffix[i])
	}
	resume := r.f.fe.ApplyEffects(r.fiBuf)
	n := 0
	for i := range suffix {
		if r.idx >= len(r.recs) {
			return n, resume, false, nil
		}
		fi := &suffix[i]
		cur := &r.recs[r.idx]
		if fi.PC != cur.PC {
			return n, resume, false, r.divergeErr(fi.PC, cur.PC, r.run.Retired)
		}
		target, redir := r.commitInst(fi, cur, false)
		n++
		halt := cur.Kind == trace.KindHalt
		r.idx++
		if redir {
			return n, target, false, nil
		}
		if halt {
			return n, resume, true, nil
		}
		if fi.Inst.IsReturn() && r.idx < len(r.recs) && fi.PredTarget != r.recs[r.idx].PC {
			r.f.fe.ResolveEffect(fi, false)
			return n, r.recs[r.idx].PC, false, nil
		}
	}
	return n, resume, false, nil
}

// buildMeta records the replayed run's provenance.
func (r *Replayer) buildMeta(start time.Time, wall time.Duration) *stats.Meta {
	host, _ := os.Hostname()
	return &stats.Meta{
		ConfigHash:       r.cfg.Hash(),
		WarmupInsts:      r.cfg.WarmupInsts,
		MaxInsts:         r.cfg.MaxInsts,
		FastForwardInsts: r.cfg.FastForwardInsts,
		Provenance:       stats.ProvReplay,
		WallMillis:       float64(wall.Microseconds()) / 1000,
		GoVersion:        runtime.Version(),
		Hostname:         host,
		StartedAt:        start.UTC().Format(time.RFC3339),
	}
}
