package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"tracecache/internal/check"
	"tracecache/internal/checkpoint"
	"tracecache/internal/core"
	"tracecache/internal/program"
	"tracecache/internal/stats"
	"tracecache/internal/trace"
	"tracecache/internal/workload"
)

// recordDetailed runs a detailed simulation with the recording tap
// attached and returns the encoded stream plus the detailed statistics.
func recordDetailed(t testing.TB, cfg Config, p *program.Program) ([]byte, *stats.Run, *Simulator) {
	t.Helper()
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, s.TraceHeader("commit-tap"))
	if err != nil {
		t.Fatal(err)
	}
	s.AttachRecorder(w)
	run := s.Run()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), run, s
}

// replayStream replays an encoded stream under cfg.
func replayStream(t testing.TB, cfg Config, p *program.Program, data []byte) (*stats.Run, *Replayer) {
	t.Helper()
	rd, err := trace.NewReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplayer(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := r.Replay(rd)
	if err != nil {
		t.Fatal(err)
	}
	return run, r
}

// replayConfigs mirrors the named front-end configurations of
// internal/config (which cannot be imported here without a cycle).
func replayConfigs() []Config {
	base := DefaultConfig()
	promo := DefaultConfig()
	promo.Name = "promo-t64"
	promo.Fill = core.DefaultFillConfig(core.PackAtomic, 64)
	promo.SplitMBP = true
	pack := DefaultConfig()
	pack.Name = "packing"
	pack.Fill = core.DefaultFillConfig(core.PackUnregulated, 0)
	best := DefaultConfig()
	best.Name = "promo-pack-costreg"
	best.Fill = core.DefaultFillConfig(core.PackCostRegulated, 64)
	best.SplitMBP = true
	hybrid8 := DefaultConfig()
	hybrid8.Name = "8wide-promo-hybrid"
	hybrid8.FetchWidth = 8
	hybrid8.Fill = core.DefaultFillConfig(core.PackAtomic, 64)
	hybrid8.Fill.MaxInsts = 8
	hybrid8.SingleHybrid = true
	return []Config{base, promo, pack, best, hybrid8, ICacheConfig()}
}

func replayStatsOf(run *stats.Run, tc *core.TraceCache) check.ReplayStats {
	rs := check.ReplayStats{Run: run}
	if tc != nil {
		st := tc.Stats()
		rs.TCLookups, rs.TCHits = st.Lookups, st.Hits
	}
	return rs
}

// TestReplayFidelity records one stream per benchmark and replays it
// under every standard front-end configuration, requiring the replayed
// statistics to tie out with the detailed run under the committed
// fidelity envelope (check.CompareReplay).
func TestReplayFidelity(t *testing.T) {
	for _, bench := range []string{"gcc", "compress"} {
		prof, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("missing workload %s", bench)
		}
		prog := prof.MustGenerate()
		for _, cfg := range replayConfigs() {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/%s", bench, cfg.Name), func(t *testing.T) {
				cfg.WarmupInsts = 20_000
				cfg.MaxInsts = 60_000
				data, det, ds := recordDetailed(t, cfg, prog)
				rep, rr := replayStream(t, cfg, prog, data)
				vs := check.CompareReplay(replayStatsOf(det, ds.tc), replayStatsOf(rep, rr.TraceCache()),
					check.DefaultReplayTolerance())
				for _, v := range vs {
					t.Errorf("%s", v)
				}
			})
		}
	}
}

// TestReplayCrossConfig replays a stream recorded under one configuration
// through a different front end (the one-recording-many-replays
// workflow): the stream is config-independent, so replay must accept it
// and still tie out against that front end's own detailed run.
func TestReplayCrossConfig(t *testing.T) {
	prof, _ := workload.ByName("go")
	prog := prof.MustGenerate()
	recCfg := DefaultConfig()
	recCfg.WarmupInsts = 20_000
	recCfg.MaxInsts = 60_000
	data, _, _ := recordDetailed(t, recCfg, prog)
	for _, cfg := range replayConfigs()[1:] { // skip the recording config itself
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			cfg.WarmupInsts = recCfg.WarmupInsts
			cfg.MaxInsts = recCfg.MaxInsts
			rep, rr := replayStream(t, cfg, prog, data)
			_, det, ds := recordDetailed(t, cfg, prog)
			vs := check.CompareReplay(replayStatsOf(det, ds.tc), replayStatsOf(rep, rr.TraceCache()),
				check.DefaultReplayTolerance())
			for _, v := range vs {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestReplayDeterminism requires two replays of the same stream to be
// byte-identical after stripping wall-clock provenance.
func TestReplayDeterminism(t *testing.T) {
	prof, _ := workload.ByName("compress")
	prog := prof.MustGenerate()
	cfg := DefaultConfig()
	cfg.WarmupInsts = 10_000
	cfg.MaxInsts = 30_000
	data, _, _ := recordDetailed(t, cfg, prog)
	marshal := func() []byte {
		run, _ := replayStream(t, cfg, prog, data)
		run.Meta = nil
		b, err := json.Marshal(run)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("replays differ:\n%s\n%s", a, b)
	}
}

// TestRecordTapFastForwardEquivalence requires the functional
// fast-forward tap and the detailed commit tap to record the same
// committed path: the decoded records of a run with a fast-forward
// prefix must prefix-match an all-detailed run of the same program.
func TestRecordTapFastForwardEquivalence(t *testing.T) {
	prof, _ := workload.ByName("compress")
	prog := prof.MustGenerate()
	det := DefaultConfig()
	det.WarmupInsts = 10_000
	det.MaxInsts = 40_000
	ff := det
	ff.FastForwardInsts = 20_000
	ff.WarmupInsts = 10_000
	ff.MaxInsts = 20_000 // same 50k committed total

	dData, _, _ := recordDetailed(t, det, prog)
	fData, _, _ := recordDetailed(t, ff, prog)
	_, dRecs, err := trace.ReadAll(dData)
	if err != nil {
		t.Fatal(err)
	}
	_, fRecs, err := trace.ReadAll(fData)
	if err != nil {
		t.Fatal(err)
	}
	n := len(dRecs)
	if len(fRecs) < n {
		n = len(fRecs)
	}
	if n < 50_000 {
		t.Fatalf("short streams: detailed %d, fast-forward %d", len(dRecs), len(fRecs))
	}
	for i := 0; i < n; i++ {
		if dRecs[i] != fRecs[i] {
			t.Fatalf("record %d: detailed %+v, fast-forward %+v", i, dRecs[i], fRecs[i])
		}
	}
}

// TestReplayHaltingProgram replays a program that halts before the
// budget: the replay must stop cleanly at the halt.
func TestReplayHaltingProgram(t *testing.T) {
	prog := sumLoop(t, 100)
	cfg := DefaultConfig()
	cfg.MaxInsts = 1 << 20
	data, det, _ := recordDetailed(t, cfg, prog)
	rep, _ := replayStream(t, cfg, prog, data)
	if rep.Retired != det.Retired {
		t.Fatalf("retired: detailed %d, replayed %d", det.Retired, rep.Retired)
	}
}

// TestReplayRejectsMismatchedStream covers the eligibility guards: a
// stream from another program and a stream too short for the budget are
// both refused before any replay work.
func TestReplayRejectsMismatchedStream(t *testing.T) {
	prof, _ := workload.ByName("compress")
	prog := prof.MustGenerate()
	cfg := DefaultConfig()
	cfg.WarmupInsts = 5_000
	cfg.MaxInsts = 10_000
	data, _, _ := recordDetailed(t, cfg, prog)

	otherProf, _ := workload.ByName("gcc")
	other := otherProf.MustGenerate()
	r, err := NewReplayer(cfg, other)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay(rd); !errors.Is(err, trace.ErrMismatch) {
		t.Fatalf("wrong-program replay error = %v, want ErrMismatch", err)
	}

	big := cfg
	big.MaxInsts = 1 << 20
	r2, err := NewReplayer(big, prog)
	if err != nil {
		t.Fatal(err)
	}
	rd2, err := trace.NewReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Replay(rd2); !errors.Is(err, trace.ErrMismatch) {
		t.Fatalf("short-stream replay error = %v, want ErrMismatch", err)
	}
}

// TestRecorderForbidsCheckpointRestore pins the recording precondition:
// a stream must start at the program entry, so restoring a checkpoint
// with a recorder attached is an error.
func TestRecorderForbidsCheckpointRestore(t *testing.T) {
	prof, _ := workload.ByName("compress")
	prog := prof.MustGenerate()
	cfg := DefaultConfig()
	cfg.FastForwardInsts = 1_000
	cfg.MaxInsts = 10_000
	s := mustSim(t, cfg, prog)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, s.TraceHeader("commit-tap"))
	if err != nil {
		t.Fatal(err)
	}
	s.AttachRecorder(w)
	if err := s.ApplyCheckpoint(checkpoint.Capture(prog, 1_000)); err == nil {
		t.Fatal("ApplyCheckpoint accepted a recording simulator")
	}
}
