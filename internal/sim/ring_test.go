package sim

import (
	"testing"

	"tracecache/internal/workload"
)

// TestRecordRingGrowsInsteadOfPanicking is the regression test for the
// fetch-record ring overflow: a ring too small for the in-flight fetch
// population used to panic in fetch; it now doubles until the colliding
// slot is free. The ring size is bookkeeping only, so the grown run must
// match a normally-sized run bit for bit.
func TestRecordRingGrowsInsteadOfPanicking(t *testing.T) {
	p, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("missing workload")
	}
	prog := p.MustGenerate()
	cfg := DefaultConfig()
	cfg.MaxInsts = 20_000

	ref := mustSim(t, cfg, prog).Run()

	s := mustSim(t, cfg, prog)
	// Shrink the ring to two slots so live records collide almost
	// immediately.
	s.records = make([]fetchRec, 2)
	s.recMask = 1
	run := s.Run()
	if len(s.records) <= 2 {
		t.Error("ring never grew under pressure")
	}
	a, b := *run, *ref
	a.Meta, b.Meta = nil, nil
	if a != b {
		t.Errorf("grown-ring run differs from reference:\n got %+v\nwant %+v", a, b)
	}
}

// TestRecordRingGrowKeepsLiveRecords checks growRecords re-homes every
// live record at its identity: the record fetched before the growth is
// still reachable through rec() after it.
func TestRecordRingGrowKeepsLiveRecords(t *testing.T) {
	p, _ := workload.ByName("compress")
	prog := p.MustGenerate()
	cfg := DefaultConfig()
	cfg.MaxInsts = 5_000
	s := mustSim(t, cfg, prog)
	s.records = make([]fetchRec, 4)
	s.recMask = 3
	s.Run()
	seen := map[int]bool{}
	for i := range s.records {
		r := &s.records[i]
		if !r.live {
			continue
		}
		if r.id&s.recMask != i {
			t.Errorf("record %d homed at slot %d", r.id, i)
		}
		if seen[r.id] {
			t.Errorf("record %d stored twice", r.id)
		}
		seen[r.id] = true
	}
}
