package sim

import (
	"errors"

	"tracecache/internal/core"
	"tracecache/internal/stats"
)

// This file exports the phase primitives of the sampled execution mode
// (internal/sampling drives them): functional fast-forward over an
// unmeasured gap, detailed execution to an instruction target, a window
// statistics reset, and a pipeline drain that returns the machine to a
// committed architectural boundary so the next gap can run functionally.
//
// The drain is the load-bearing transition. DrainPipeline suppresses new
// fetch initiation (Simulator.noFetch) and steps cycles until nothing is
// in flight: every dispatched instruction retires or is squashed through
// the ordinary recovery paths, so when the machine quiesces, fetchPC is
// the committed next PC and the front end's history and RAS are
// committed-equivalent — exactly the state fastForward reads at entry
// and rebuilds at exit. The caller captures its window sample before
// draining, so drain cycles and drain-tail retirements never pollute the
// sample.

// Drain/step bounds. A healthy machine drains a full window plus a
// pending miss within a few hundred cycles; the caps only trip on a
// wedged pipeline, which the caller reports instead of spinning forever.
const (
	maxDrainCycles = 1 << 20
	// maxCyclesPerInst bounds how many cycles RunDetailed may spend per
	// requested instruction (the slowest configurations run at IPC well
	// above 1/1024) plus a constant slack for cold starts.
	maxCyclesPerInst = 1 << 10
	stepCycleSlack   = 1 << 16
)

// Sentinel errors of the sampling primitives (allocated once: the
// primitives are on the hot per-window transition path).
var (
	// ErrNotQuiescent reports a phase transition attempted with work in
	// flight: SkipFunctional is only legal at a committed boundary.
	ErrNotQuiescent = errors.New("sim: sampling transition with instructions in flight")
	// ErrDrainStall reports a pipeline that failed to quiesce within the
	// drain cycle bound.
	ErrDrainStall = errors.New("sim: pipeline failed to drain")
	// ErrWindowStall reports a detailed window that failed to retire its
	// budget within the cycle bound.
	ErrWindowStall = errors.New("sim: detailed window failed to retire its budget")
)

// Quiescent reports whether the machine is at a committed boundary:
// nothing dispatched, pending, or queued for injection.
func (s *Simulator) Quiescent() bool {
	return s.eng.InFlight() == 0 && s.pending == nil && len(s.injectQueue) == 0
}

// Halted reports whether the detailed machine has retired the program's
// halt instruction.
func (s *Simulator) Halted() bool { return s.haltSeen }

// CommittedInsts returns the committed-stream position: instructions
// executed functionally (fast-forward and checkpoint restore) plus every
// detailed retirement since construction. Unlike the per-window Retired
// counter it is never reset, so the sampling driver and the sampling
// audit use it for phase-boundary accounting.
func (s *Simulator) CommittedInsts() uint64 { return s.ffwdDone + s.retireSeq }

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// SkipFunctional executes up to n committed instructions functionally
// (see fastForward: retired-stream structures keep warming) and returns
// how many actually executed — fewer than n only when the program halts
// inside the gap. The machine must be quiescent (post-drain or
// pre-detail); the lockstep reference model, when attached, is advanced
// the same distance.
//
//tc:hotpath
func (s *Simulator) SkipFunctional(n uint64) (uint64, error) {
	if !s.Quiescent() || s.noFetch {
		return 0, ErrNotQuiescent
	}
	before := s.ffwdDone
	s.fastForward(n)
	done := s.ffwdDone - before
	if s.chk != nil && done > 0 {
		s.chk.FastForward(done, s.fetchPC)
	}
	return done, nil
}

// RunDetailed steps the detailed machine until n more instructions
// retire into the current window (i.e. past the Retired count at entry),
// the program halts, or the cycle bound trips. Like Run, it may overshoot
// the target by up to RetireWidth−1 instructions (retirement is
// burst-granular).
//
//tc:hotpath
func (s *Simulator) RunDetailed(n uint64) error {
	target := s.run.Retired + n
	limit := s.cycle + n*maxCyclesPerInst + stepCycleSlack
	for !s.haltSeen && s.run.Retired < target {
		if s.cycle >= limit {
			return ErrWindowStall
		}
		s.stepCycle()
		s.cycle++
		if s.met != nil && s.cycle&(metricsFlushPeriod-1) == 0 {
			s.flushMetrics()
		}
	}
	return nil
}

// DrainPipeline retires or squashes everything in flight without
// initiating new fetches, leaving the machine quiescent at a committed
// boundary (or halted). See the file comment for why the resulting fetch
// state is committed-equivalent.
//
//tc:hotpath
func (s *Simulator) DrainPipeline() error {
	s.noFetch = true
	limit := s.cycle + maxDrainCycles
	for !s.haltSeen && !s.Quiescent() {
		if s.cycle >= limit {
			s.noFetch = false
			return ErrDrainStall
		}
		s.stepCycle()
		s.cycle++
	}
	s.noFetch = false
	return nil
}

// ResetWindowStats discards the statistics accumulated since the last
// reset and restarts the cycle base, exactly as the end-of-warmup reset
// does in Run. The sampling driver calls it at the start of each
// detailed warmup segment and again at measure start, reusing the
// simulator's single Run accumulator (no per-window allocation).
//
//tc:hotpath
func (s *Simulator) ResetWindowStats() { s.resetStats() }

// CaptureWindow copies the current window statistics into out (reusing
// the caller's buffer: Run is a flat value, so this allocates nothing)
// and sets its Cycles to the measured delta. Call before DrainPipeline
// so the sample excludes drain cycles and drain-tail retirements.
//
//tc:hotpath
func (s *Simulator) CaptureWindow(out *stats.Run) {
	*out = s.run
	out.Cycles = s.cycle - s.cycleBase
}

// TraceCacheStats returns the cumulative trace cache counters (zero
// values for the icache front end). The sampling driver differences
// successive snapshots to attribute hits and lookups to windows.
func (s *Simulator) TraceCacheStats() core.TraceCacheStats {
	if s.tc == nil {
		return core.TraceCacheStats{}
	}
	return s.tc.Stats()
}
