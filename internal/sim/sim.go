package sim

import (
	"os"
	"runtime"
	"time"

	"tracecache/internal/bpred"
	"tracecache/internal/cache"
	"tracecache/internal/check"
	"tracecache/internal/core"
	"tracecache/internal/engine"
	"tracecache/internal/exec"
	"tracecache/internal/fetch"
	"tracecache/internal/isa"
	"tracecache/internal/obs"
	"tracecache/internal/program"
	"tracecache/internal/stats"
	"tracecache/internal/trace"
)

// dyn is the simulator's view of one in-flight dynamic instruction,
// parallel to the engine's window.
type dyn struct {
	seq        uint64
	fi         fetch.FetchedInst
	fetchID    int
	fetchCycle uint64

	// Architectural results (execute-at-dispatch).
	taken    bool
	nextPC   int
	memAddr  uint64
	halted   bool
	snapshot exec.Snapshot // state just after this instruction executed

	// Self-check payloads (stored only while a checker is attached): the
	// memory value and destination-register value this instruction
	// produced, compared against the reference model at commit.
	memVal  int64
	destVal int64

	// Rename bookkeeping.
	destReg      isa.Reg
	hasDest      bool
	prevProducer uint64

	// alignFill marks the first instruction of a trace-cache-miss fetch:
	// the fill unit anchors a new segment at its address (fill-on-miss).
	alignFill bool

	// Resolution bookkeeping.
	mispredicted bool
	resolution   uint64 // cycles from fetch to redirect
	// inactiveSuffix holds the inactive instructions issued with this
	// (diverging) branch; they are injected if the branch mispredicts.
	inactiveSuffix []fetch.FetchedInst
}

// fetchRec tracks one fetch-delivery cycle until all of its instructions
// retire or are squashed, then classifies it (Figures 4, 6 and 12).
type fetchRec struct {
	id         int // ring identity (fetchID); lets growRecords re-home slots
	cycle      uint64
	pc         int
	reason     stats.FetchEnd
	fromTC     bool
	tcMiss     bool
	predsUsed  int
	dispatched int
	pending    int
	retired    int
	mispredBR  bool
	cause      stats.CycleClass
	caused     bool
	finalized  bool
	delivered  bool
	live       bool
}

// noProducer marks an architectural (not in-flight) register value.
const noProducer = ^uint64(0)

// Simulator runs one program under one configuration.
type Simulator struct {
	cfg   Config
	prog  *program.Program
	state *exec.State
	eng   *engine.Engine
	fe    fetch.Engine
	tc    *core.TraceCache
	fill  *core.FillUnit
	mbp   bpred.MultiPredictor
	hyb   *bpred.Hybrid
	ind   *bpred.IndirectPredictor
	hier  *cache.Hierarchy

	run       stats.Run
	cycle     uint64
	cycleBase uint64 // cycle at the end of warmup; Cycles reports the delta

	window    []dyn
	mask      uint64
	renameMap [isa.NumRegs]uint64
	retireSeq uint64

	fetchPC int
	// pending is the fetched bundle awaiting dispatch.
	pending       []fetch.FetchedInst
	pendingRec    int
	pendingPos    int
	deliverAt     uint64 // cycle the pending bundle is delivered (icache miss)
	pendingBrIdx  int    // position of the diverging branch, -1 if none
	pendingSuffix []fetch.FetchedInst

	// Injected inactive instructions awaiting window space.
	injectQueue []fetch.FetchedInst
	injectRec   int

	// records is a power-of-two ring of fetch records indexed by
	// fetchID&recMask. A record is live from its fetch until maybeFinalize
	// or discardPending classifies it; a record can only be referenced by
	// in-flight window entries, the pending bundle, or the inject queue, so
	// the number of live records is bounded by the window size plus the
	// pending bundle — well under the ring capacity.
	records   []fetchRec
	recMask   int
	nextRecID int

	// pendingBuf backs the pending bundle: the fetch engine reuses its
	// bundle buffer, so the copy must survive until dispatch drains it.
	pendingBuf []fetch.FetchedInst

	serialHold bool   // a trap/halt has been fetched and not yet cleared
	serialSeq  uint64 // seq of the dispatched serializing instruction
	serialInFl bool

	redirected    bool // a recovery happened this cycle
	redirectHold  uint64
	recoveryClass stats.CycleClass

	haltSeen bool

	// noFetch suppresses new fetch initiation while DrainPipeline empties
	// the machine at a sampling-phase boundary; in-flight work (pending
	// bundle delivery, inject queue, dispatched instructions) completes
	// through the ordinary paths.
	noFetch bool

	srcBuf []isa.Reg
	seqBuf []uint64
	fiBuf  []*fetch.FetchedInst

	// Observability (all nil/zero by default: the disabled path costs a
	// nil check per instrumentation site).
	obs    *obs.Bus
	coll   *obs.Collector
	occSum uint64 // per-cycle window occupancy sum (collector enabled only)

	// met is the fleet-level metrics attachment (AttachMetrics); nil by
	// default, so the detached path costs one nil comparison per site.
	// metInsts accumulates retirements between batched flushes and
	// metCycleMark is the cycle of the last flush.
	met          *Metrics
	metInsts     uint64
	metCycleMark uint64

	// chk is the self-verification layer (Config.Check); nil by default,
	// so the unchecked path costs one nil comparison per site.
	chk *check.Checker

	// trc is the retired-stream recording tap (AttachRecorder); nil by
	// default, so the detached path costs one nil comparison per commit.
	trc *trace.Writer

	// Fast-forward bookkeeping: committed instructions executed
	// functionally before the cycle loop (stepped by fastForward or
	// restored via ApplyCheckpoint).
	ffwdDone       uint64
	fromCheckpoint bool

	// OnRetireBranch, when set, observes every retiring conditional
	// branch (a diagnostic hook for per-site analysis tooling).
	OnRetireBranch func(pc int, taken, mispredicted, promoted bool)
	// OnRetire, when set, observes every retiring instruction in commit
	// order (a test hook: fast-forward determinism is asserted against it).
	OnRetire func(pc int)
}

// New builds a simulator for the program under the configuration.
func New(cfg Config, prog *program.Program) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, prog: prog, state: exec.NewState(prog), pendingBrIdx: -1}
	f, err := newFrontEnd(cfg, prog)
	if err != nil {
		return nil, err
	}
	s.hier, s.ind = f.hier, f.ind
	s.tc, s.fill = f.tc, f.fill
	s.mbp, s.hyb, s.fe = f.mbp, f.hyb, f.fe
	s.eng = engine.New(cfg.Engine, s.hier)
	size := 1
	for size < 2*cfg.Engine.Window() {
		size <<= 1
	}
	s.window = make([]dyn, size)
	s.mask = uint64(size - 1)
	for i := range s.renameMap {
		s.renameMap[i] = noProducer
	}
	s.run.Config = cfg.Name
	s.run.Benchmark = prog.Name
	s.fetchPC = prog.Entry
	// Fetch records live only while their instructions are in flight, so a
	// ring with one slot per window entry (plus slack for the pending
	// bundle) suffices; see the records field comment.
	recs := 1
	for recs < size+2 {
		recs <<= 1
	}
	s.records = make([]fetchRec, recs)
	s.recMask = recs - 1
	s.pendingBuf = make([]fetch.FetchedInst, 0, cfg.FetchWidth)
	if cfg.Check {
		s.attachChecker()
	}
	return s, nil
}

// attachChecker builds the self-verification layer and hooks it into the
// fill unit (the simulator's own hooks are nil-guarded call sites).
func (s *Simulator) attachChecker() {
	p := check.Params{
		Prog:       s.prog,
		HasTC:      s.tc != nil,
		FetchWidth: s.cfg.FetchWidth,
		MaxSlots:   1,
		ConfigHash: s.cfg.Hash(),
	}
	if s.fill != nil {
		p.Fill = s.fill.Config()
	}
	if s.mbp != nil {
		p.MaxSlots = s.mbp.MaxSlots()
	}
	s.chk = check.New(p)
	if s.fill != nil {
		prevSeg := s.fill.OnSegment
		s.fill.OnSegment = func(seg *core.Segment) {
			s.chk.OnSegment(seg)
			if prevSeg != nil {
				prevSeg(seg)
			}
		}
		prevPack := s.fill.OnPack
		s.fill.OnPack = func(pending []core.SegInst, space, take, blockLen int) {
			s.chk.OnPack(pending, space, take, blockLen)
			if prevPack != nil {
				prevPack(pending, space, take, blockLen)
			}
		}
	}
}

// Checker returns the self-verification layer (nil unless Config.Check).
func (s *Simulator) Checker() *check.Checker { return s.chk }

// CheckViolations returns the violations the self-check layer recorded,
// or nil when checking is disabled or the run was clean.
func (s *Simulator) CheckViolations() []check.Violation {
	if s.chk == nil {
		return nil
	}
	return s.chk.Violations()
}

// liveRecordCount counts fetch records that are still live and
// unclassified; the conservation identities allow each to own one cycle.
func (s *Simulator) liveRecordCount() int {
	n := 0
	for i := range s.records {
		if s.records[i].live && !s.records[i].finalized {
			n++
		}
	}
	return n
}

// growRecords doubles the fetch-record ring, re-homing every used record
// at its identity under the new mask. Two stored records cannot collide:
// each old slot holds one record and the doubling splits each residue
// class in two.
func (s *Simulator) growRecords() {
	old := s.records
	n := len(old) * 2
	s.records = make([]fetchRec, n)
	s.recMask = n - 1
	for i := range old {
		if old[i].live {
			s.records[old[i].id&s.recMask] = old[i]
		}
	}
}

// rec returns the fetch record with the given ID, which must still be live
// (referenced by an in-flight instruction, the pending bundle, or the
// inject queue).
//
//tc:hotpath
func (s *Simulator) rec(id int) *fetchRec { return &s.records[id&s.recMask] }

// TraceCache returns the trace cache (nil for the icache configuration).
func (s *Simulator) TraceCache() *core.TraceCache { return s.tc }

// FillUnit returns the fill unit (nil for the icache configuration).
func (s *Simulator) FillUnit() *core.FillUnit { return s.fill }

// Hierarchy returns the cache hierarchy.
func (s *Simulator) Hierarchy() *cache.Hierarchy { return s.hier }

// Engine returns the execution core.
func (s *Simulator) Engine() *engine.Engine { return s.eng }

// windowSamplePeriod is the cycle period (a power of two) of the
// window-occupancy counter samples emitted while an event bus is attached.
const windowSamplePeriod = 256

// AttachObserver wires an event bus through the fetch engine, the fill
// unit, and the simulator itself. Attach before Run; a nil bus detaches.
func (s *Simulator) AttachObserver(b *obs.Bus) {
	s.obs = b
	if b != nil {
		b.SetClock(func() uint64 { return s.cycle })
	}
	s.fe.SetObserver(b)
	if s.fill != nil {
		s.fill.SetObserver(b)
	}
	if s.chk != nil {
		s.chk.SetObserver(b)
	}
}

// SetIntervalCollector installs a windowed time-series collector; the run
// loop feeds it a probe every Collector.Every measured cycles, starting at
// the end of warmup. Install before Run; nil disables collection.
func (s *Simulator) SetIntervalCollector(c *obs.Collector) { s.coll = c }

// probe samples the cumulative measured state for the interval collector.
func (s *Simulator) probe() obs.Probe {
	p := obs.Probe{Cycles: s.cycle - s.cycleBase, Run: s.run, OccSum: s.occSum}
	if s.tc != nil {
		st := s.tc.Stats()
		p.TCLookups, p.TCHits = st.Lookups, st.Hits
	}
	switch {
	case s.mbp != nil:
		p.PredLookups = s.mbp.Counters().Predictions
	case s.hyb != nil:
		p.PredLookups = s.hyb.Counters().Predictions
	}
	return p
}

// Run simulates until the instruction budget, cycle bound, or program halt
// and returns the collected statistics. When the configuration specifies a
// fast-forward, that many committed instructions are first executed
// functionally (see fastForward; a restored checkpoint counts toward it).
// When the configuration specifies a warmup, statistics are reset once the
// warmup instruction count retires — with caches, predictors, the trace
// cache and the bias table left warm — so short runs are not dominated by
// cold-start effects (the paper ran 41M-500M instructions per benchmark).
func (s *Simulator) Run() *stats.Run {
	//tcvet:ignore determinism wall-clock provenance only: run start time for stats.Meta, never simulated state
	start := time.Now()
	if ff := s.cfg.FastForwardInsts; ff > s.ffwdDone {
		delta := ff - s.ffwdDone
		s.fastForward(delta)
		if s.chk != nil {
			// The reference model fast-forwards the same distance and must
			// land on the PC the detailed machine will fetch from.
			s.chk.FastForward(delta, s.fetchPC)
		}
	}
	warm := s.cfg.WarmupInsts
	warming := warm > 0
	if !warming && s.coll != nil {
		s.coll.Reset(s.probe())
	}
	every := s.coll.Every()
	nextMark := every
	for !s.haltSeen && s.cycle-s.cycleBase < s.cfg.MaxCycles {
		if warming && s.run.Retired >= warm {
			warming = false
			s.resetStats()
			if s.coll != nil {
				s.coll.Reset(s.probe())
			}
		}
		if !warming && s.run.Retired >= s.cfg.MaxInsts {
			break
		}
		s.stepCycle()
		s.cycle++
		if s.coll != nil && !warming {
			s.occSum += uint64(s.eng.InFlight())
			if measured := s.cycle - s.cycleBase; measured >= nextMark {
				s.coll.Observe(s.probe())
				nextMark = measured + every
			}
		}
		if s.obs != nil && s.cycle&(windowSamplePeriod-1) == 0 {
			s.obs.Emit(obs.Event{
				Kind: obs.KindWindowSample, Cycle: s.cycle,
				V1: uint64(s.eng.InFlight()),
			})
		}
		if s.met != nil && s.cycle&(metricsFlushPeriod-1) == 0 {
			s.flushMetrics()
		}
	}
	if s.met != nil {
		s.flushMetrics()
	}
	s.run.Cycles = s.cycle - s.cycleBase
	//tcvet:ignore determinism wall-clock provenance only: feeds stats.Meta wall time, never simulated state
	s.run.Meta = s.buildMeta(start, time.Since(start))
	if s.coll != nil {
		s.coll.Finish(s.probe(), s.run.Meta)
	}
	if s.chk != nil {
		f := check.Final{
			Run:         &s.run,
			LiveRecords: s.liveRecordCount(),
			EngineErr:   s.eng.CheckInvariants(),
		}
		if s.tc != nil {
			f.TCStats = s.tc.Stats()
			f.LivePromoted = s.tc.LivePromoted()
			f.ResidentPromoted = s.tc.ResidentPromoted()
		}
		s.chk.Finalize(f)
	}
	// Return a copy: stats.Run is a pure value type, and handing out a
	// pointer into the Simulator would pin the whole machine (window,
	// records, caches) for as long as the caller keeps the result.
	run := s.run
	return &run
}

// buildMeta records the run's provenance.
func (s *Simulator) buildMeta(start time.Time, wall time.Duration) *stats.Meta {
	host, _ := os.Hostname()
	prov := stats.ProvCold
	if s.fromCheckpoint {
		prov = stats.ProvCheckpointFork
	}
	return &stats.Meta{
		ConfigHash:       s.cfg.Hash(),
		WarmupInsts:      s.cfg.WarmupInsts,
		MaxInsts:         s.cfg.MaxInsts,
		FastForwardInsts: s.ffwdDone,
		CheckpointShared: s.fromCheckpoint,
		Provenance:       prov,
		WallMillis:       float64(wall.Microseconds()) / 1000,
		GoVersion:        runtime.Version(),
		Hostname:         host,
		StartedAt:        start.UTC().Format(time.RFC3339),
	}
}

// resetStats zeroes measurement counters at the end of warmup. The cycle
// counter keeps running (in-flight engine events are scheduled against
// it); Cycles reports the delta from here.
func (s *Simulator) resetStats() {
	s.run = stats.Run{Benchmark: s.run.Benchmark, Config: s.run.Config}
	s.cycleBase = s.cycle
	if s.chk != nil {
		s.chk.MarkMeasureStart(s.liveRecordCount())
	}
}

// Stats returns the statistics collected so far.
func (s *Simulator) Stats() *stats.Run { return &s.run }

//tc:hotpath
func (s *Simulator) stepCycle() {
	s.retire()
	if s.haltSeen {
		return
	}
	completed := s.eng.Tick(s.cycle)
	s.resolve(completed)
	if s.redirected {
		s.redirected = false
		s.run.Cycle[s.recoveryClass]++
		return
	}
	if s.redirectHold > 0 {
		s.redirectHold--
		s.run.Cycle[s.recoveryClass]++
		return
	}
	delivered := s.dispatch()
	s.fetch(delivered)
}

// ---------------------------------------------------------------- retire

//tc:hotpath
func (s *Simulator) retire() {
	for n := 0; n < s.cfg.RetireWidth; n++ {
		seq := s.retireSeq
		if s.eng.InFlight() == 0 || !s.eng.IsDone(seq) {
			return
		}
		d := &s.window[seq&s.mask]
		s.retireInst(d)
		s.eng.Retire(seq)
		s.retireSeq = seq + 1
		if d.halted {
			s.haltSeen = true
			return
		}
	}
}

//tc:hotpath
func (s *Simulator) retireInst(d *dyn) {
	in := d.fi.Inst
	s.run.Retired++
	if s.met != nil {
		s.metInsts++
	}
	if s.OnRetire != nil {
		s.OnRetire(d.fi.PC)
	}
	if s.chk != nil {
		s.chk.Commit(check.Commit{
			Cycle: s.cycle, Seq: d.seq, PC: d.fi.PC,
			Taken: d.taken, NextPC: d.nextPC, Halted: d.halted,
			MemAddr: d.memAddr, MemVal: d.memVal,
			HasDest: d.hasDest, DestReg: d.destReg, DestVal: d.destVal,
		})
	}
	if s.trc != nil {
		s.recordRetire(d.fi.PC, in, d.taken, d.nextPC, d.memAddr)
	}
	if s.fill != nil {
		if d.alignFill {
			s.fill.Align()
		}
		s.fill.Retire(d.fi.PC, in, d.taken)
	}
	switch {
	case in.IsCondBranch():
		if s.OnRetireBranch != nil {
			s.OnRetireBranch(d.fi.PC, d.taken, d.mispredicted, d.fi.Promoted)
		}
		s.run.CondBranches++
		src := stats.SrcEmbedded
		if d.fi.Promoted {
			src = stats.SrcPromoted
			s.run.PromotedExecuted++
			if d.mispredicted {
				s.run.PromotedFaults++
			}
		} else if d.fi.UsedSlot {
			src = stats.SrcSlot
			s.mbp.Update(d.fi.Ctx, d.taken)
		} else if d.fi.UsedHybrid {
			src = stats.SrcHybrid
			s.hyb.Update(d.fi.HCtx, d.taken)
		}
		s.run.CondBySource[src]++
		if d.mispredicted {
			s.run.MissBySource[src]++
		}
		if d.mispredicted {
			s.run.CondMispredicts++
			s.run.ResolutionSum += d.resolution
			s.run.ResolutionsCounted++
		}
	case in.IsIndirect():
		s.run.IndirectJumps++
		s.ind.Update(d.fi.PC, d.nextPC)
		if d.mispredicted {
			s.run.IndirectMisses++
			s.run.ResolutionSum += d.resolution
			s.run.ResolutionsCounted++
		}
	case in.IsReturn():
		s.run.Returns++
	case in.IsStore():
		s.hier.AccessData(d.memAddr)
	}
	if s.serialInFl && s.serialSeq == d.seq {
		s.serialInFl = false
		s.serialHold = false
	}
	s.state.ReleaseBefore(d.snapshot)
	rec := s.rec(d.fetchID)
	rec.retired++
	rec.pending--
	if d.mispredicted && in.IsCondBranch() {
		rec.mispredBR = true
	}
	s.maybeFinalize(d.fetchID)
}

// ---------------------------------------------------------------- resolve

//tc:hotpath
func (s *Simulator) resolve(completed []uint64) {
	for _, seq := range completed {
		d := &s.window[seq&s.mask]
		if d.seq != seq {
			continue // squashed earlier this cycle
		}
		in := d.fi.Inst
		switch {
		case in.IsCondBranch():
			if d.taken != d.fi.Predicted {
				s.recoverBranch(d)
				return // younger completions are squashed
			}
		case in.IsIndirect():
			if d.nextPC != d.fi.PredTarget {
				s.recover(d, stats.CycleMisfetch, d.nextPC)
				return
			}
		case in.IsReturn():
			if d.nextPC != d.fi.PredTarget {
				// Possible only on the wrong path (the RAS is ideal).
				s.recover(d, stats.CycleMisfetch, d.nextPC)
				return
			}
		}
	}
}

// recoverBranch handles a mispredicted conditional branch, including
// promoted-branch faults and the inactive-issue case where the segment's
// embedded path turns out to be the correct one.
func (s *Simulator) recoverBranch(d *dyn) {
	if d.fi.Promoted {
		// Promoted fault: handled like an exception; the machine backs up
		// to the previous checkpoint, modelled as an extra redirect
		// penalty on top of the misprediction recovery. Check demotion.
		if s.obs != nil {
			s.obs.Emit(obs.Event{Kind: obs.KindPromotedFault, Cycle: s.cycle, PC: d.fi.PC})
		}
		if s.fill != nil && s.fill.Bias() != nil &&
			s.fill.Bias().ShouldDemote(d.fi.PC, d.fi.Predicted) {
			n := s.tc.InvalidatePromoted(d.fi.PC)
			if s.obs != nil {
				s.obs.Emit(obs.Event{
					Kind: obs.KindDemote, Cycle: s.cycle, PC: d.fi.PC, V1: uint64(n),
				})
			}
		}
		s.recover(d, stats.CycleBranchMiss, d.nextPC)
		s.redirectHold += uint64(s.cfg.FaultPenalty)
		return
	}
	suffix := d.inactiveSuffix
	s.recover(d, stats.CycleBranchMiss, d.nextPC)
	if len(suffix) > 0 && d.fi.UsedSlot {
		// Inactive issue: the suffix follows the segment's embedded path.
		// It is correct-path only when the diverging branch carried a real
		// prediction (UsedSlot) that disagreed with the embedded outcome —
		// a mispredict then means the embedded path was right. A branch
		// past the predictor's bandwidth instead used the embedded outcome
		// as its prediction, so its mispredict means the embedded path
		// (and the suffix) is wrong: plain recovery, no injection.
		s.injectQueue = append(s.injectQueue[:0], suffix...)
		s.injectRec = d.fetchID
		s.fetchPC = s.applyAndResume(suffix)
	}
}

// applyAndResume applies the fetch-state effects of the inactive suffix
// and returns the PC where fetch resumes.
func (s *Simulator) applyAndResume(suffix []fetch.FetchedInst) int {
	s.fiBuf = s.fiBuf[:0]
	for i := range suffix {
		s.fiBuf = append(s.fiBuf, &suffix[i])
	}
	return s.fe.ApplyEffects(s.fiBuf)
}

// recover squashes everything younger than d, rolls back architectural
// state, restores the rename map and fetch state, and redirects fetch.
func (s *Simulator) recover(d *dyn, cause stats.CycleClass, target int) {
	from := d.seq + 1
	// Rename map and record bookkeeping, youngest first.
	for seq := s.eng.NextSeq(); seq > from; {
		seq--
		y := &s.window[seq&s.mask]
		if y.seq != seq {
			continue
		}
		if y.hasDest && s.renameMap[y.destReg] == seq {
			s.renameMap[y.destReg] = y.prevProducer
		}
		rec := s.rec(y.fetchID)
		rec.pending--
		if !rec.caused {
			rec.cause, rec.caused = cause, true
		}
		y.seq = ^uint64(0) // poison the slot
		s.run.FetchedWrong++
		s.maybeFinalize(y.fetchID)
	}
	s.eng.Squash(from)
	s.state.Rollback(d.snapshot)
	// The speculative burst past d is undone; nothing older than the oldest
	// unretired instruction's snapshot can be rolled back to, so trim any
	// capacity the burst grew (a no-op unless the log is now empty).
	s.state.CompactTo(s.window[s.retireSeq&s.mask].snapshot)
	s.fe.ResolveEffect(&d.fi, d.taken)
	s.fetchPC = target
	s.discardPending(cause)
	if len(s.injectQueue) > 0 {
		s.injectQueue = s.injectQueue[:0]
		// maybeFinalize skipped the inject record while the queue was
		// non-empty; if its last in-flight instruction was squashed above,
		// nothing references it any more and no later event can classify
		// it. Release the ring slot without touching the statistics (the
		// record contributes to no counter, as before).
		if rec := s.rec(s.injectRec); !rec.finalized && rec.pending == 0 && rec.dispatched > 0 {
			rec.finalized = true
			if s.chk != nil {
				// Released without classifying a cycle; the cycle-sum
				// conservation identity widens by one.
				s.chk.OnRecordDropped()
			}
		}
	}
	if s.serialInFl && s.serialSeq >= from {
		s.serialInFl = false
		s.serialHold = false
	} else if s.serialHold && !s.serialInFl {
		// The serializing instruction was in the discarded bundle.
		s.serialHold = false
	}
	d.mispredicted = true
	d.resolution = s.cycle - d.fetchCycle
	s.redirected = true
	s.recoveryClass = cause
	if s.obs != nil {
		s.obs.Emit(obs.Event{
			Kind: obs.KindRedirect, Cycle: d.fetchCycle, Dur: d.resolution,
			PC: d.fi.PC, V1: uint64(cause),
		})
	}
}

func (s *Simulator) discardPending(cause stats.CycleClass) {
	if s.pending == nil {
		return
	}
	id := s.pendingRec
	rec := s.rec(id)
	s.pending = nil
	s.pendingPos = 0
	s.pendingBrIdx = -1
	s.pendingSuffix = nil
	if rec.dispatched == 0 {
		rec.finalized = true
		if rec.delivered {
			// The bundle occupied its fetch cycle but none of it issued:
			// the cycle was lost to the recovery's cause.
			s.run.Cycle[cause]++
		}
		return
	}
	s.maybeFinalize(id)
}

// ---------------------------------------------------------------- dispatch

// dispatch issues instructions from the inject queue and the pending
// bundle. It reports whether a bundle began dispatching this cycle after a
// miss stall.
//
//tc:hotpath
func (s *Simulator) dispatch() bool {
	// Injected inactive instructions re-enter without consuming fetch or
	// issue bandwidth: their original fetch already issued them.
	for len(s.injectQueue) > 0 && s.eng.SpaceFor(1) {
		fi := s.injectQueue[0]
		s.injectQueue = s.injectQueue[1:]
		s.dispatchInst(fi, s.injectRec)
	}
	if len(s.injectQueue) > 0 {
		return false
	}
	delivered := false
	budget := s.cfg.IssueWidth
	for budget > 0 && s.pending != nil && s.cycle >= s.deliverAt {
		rec := s.rec(s.pendingRec)
		if !rec.delivered {
			rec.delivered = true
			delivered = true
		}
		if s.pendingPos >= len(s.pending) {
			break
		}
		fi := s.pending[s.pendingPos]
		if fi.Inactive {
			s.pendingPos++
			continue
		}
		if !s.eng.SpaceFor(1) {
			break
		}
		s.dispatchInst(fi, s.pendingRec)
		if s.pendingPos == s.pendingBrIdx && s.pendingSuffix != nil {
			// The diverging branch carries its inactive suffix.
			last := &s.window[(s.eng.NextSeq()-1)&s.mask]
			last.inactiveSuffix = s.pendingSuffix
			s.pendingSuffix = nil
			s.pendingBrIdx = -1
		}
		s.pendingPos++
		budget--
	}
	if s.pending != nil && s.pendingPos >= len(s.pending) {
		s.pending = nil
		s.pendingPos = 0
		s.pendingBrIdx = -1
		s.pendingSuffix = nil
	}
	return delivered
}

//tc:hotpath
func (s *Simulator) dispatchInst(fi fetch.FetchedInst, recID int) {
	info := s.state.StepAt(fi.PC)
	snap := s.state.Checkpoint()
	// Rename: collect producing sequence numbers.
	s.srcBuf = fi.Inst.SrcRegs(s.srcBuf[:0])
	s.seqBuf = s.seqBuf[:0]
	for _, r := range s.srcBuf {
		if p := s.renameMap[r]; p != noProducer {
			s.seqBuf = append(s.seqBuf, p)
		}
	}
	seq := s.eng.Dispatch(s.seqBuf, fi.Inst.IsLoad(), fi.Inst.IsStore(), info.MemAddr, fi.Inst.Latency())
	d := &s.window[seq&s.mask]
	rec := s.rec(recID)
	align := rec.tcMiss && rec.dispatched == 0
	*d = dyn{
		seq:        seq,
		fi:         fi,
		fetchID:    recID,
		fetchCycle: rec.cycle,
		taken:      info.Taken,
		nextPC:     info.NextPC,
		memAddr:    info.MemAddr,
		halted:     info.Halted,
		snapshot:   snap,
		alignFill:  align,
	}
	if rd, ok := fi.Inst.WritesReg(); ok {
		d.hasDest, d.destReg = true, rd
		d.prevProducer = s.renameMap[rd]
		s.renameMap[rd] = seq
		if s.chk != nil {
			// Execute-at-dispatch: the register already holds this
			// instruction's result. A correct-path instruction dispatches
			// against correct-path state, so the value is the committed one.
			d.destVal = s.state.Regs[rd]
		}
	}
	if s.chk != nil {
		d.memVal = info.Value
	}
	if fi.Inst.IsTrap() || fi.Inst.Op == isa.OpHalt {
		s.serialHold = true
		s.serialInFl = true
		s.serialSeq = seq
	}
	rec.dispatched++
	rec.pending++
}

// ------------------------------------------------------------------ fetch

//tc:hotpath
func (s *Simulator) fetch(deliveredThisCycle bool) {
	switch {
	case s.haltSeen:
		return
	case len(s.injectQueue) > 0:
		s.run.Cycle[stats.CycleFullWindow]++
		return
	case s.serialHold:
		s.run.Cycle[stats.CycleTrap]++
		return
	case s.pending != nil:
		if s.cycle < s.deliverAt {
			s.run.Cycle[stats.CycleCacheMiss]++
			if s.rec(s.pendingRec).tcMiss {
				s.run.TCMissCycles++
			}
			return
		}
		// Delivered but stuck behind a full window.
		s.run.Cycle[stats.CycleFullWindow]++
		return
	case deliveredThisCycle:
		// The fetch unit spent this cycle delivering a stalled bundle;
		// the bundle's record classifies this cycle.
		return
	case s.noFetch:
		// Draining to a sampling-phase boundary: the window sample was
		// already captured, so this cycle needs no classification.
		return
	}
	if !s.eng.SpaceFor(1) {
		s.run.Cycle[stats.CycleFullWindow]++
		return
	}
	b := s.fe.Fetch(s.fetchPC)
	if s.chk != nil {
		s.chk.OnBundle(b)
	}
	recID := s.nextRecID
	s.nextRecID++
	rec := s.rec(recID)
	// The ring is sized so live records never collide, but rather than
	// trusting that bound, grow it when a live unclassified record would
	// be evicted (each doubling splits the colliding residue class).
	for rec.live && !rec.finalized {
		s.growRecords()
		rec = s.rec(recID)
	}
	*rec = fetchRec{
		id:        recID,
		cycle:     s.cycle + uint64(b.Latency),
		pc:        s.fetchPC,
		reason:    b.Reason,
		fromTC:    b.FromTC,
		tcMiss:    b.TCMiss,
		predsUsed: b.PredsUsed,
		live:      true,
	}
	if b.TCMiss {
		s.run.TCMissCycles++
	}
	if b.Latency > 0 {
		s.run.Cycle[stats.CycleCacheMiss]++
		s.deliverAt = s.cycle + uint64(b.Latency)
	} else {
		// Delivered immediately: this fetch cycle is the record's cycle,
		// and dispatch next cycle overlaps with the next fetch.
		s.deliverAt = s.cycle
		rec.delivered = true
	}
	// Copy the bundle into the reusable pending buffer (the fetch engine
	// reuses its own) and locate the diverging branch for inactive-issue
	// injection. Dispatch copies instructions into the window by value, so
	// nothing references the buffer once the bundle drains — except an
	// inactive suffix, which attachInactive clones.
	insts := append(s.pendingBuf[:0], b.Insts...)
	s.pendingBuf = insts[:0]
	s.pending = insts
	s.pendingRec = recID
	s.pendingPos = 0
	s.pendingBrIdx = -1
	s.pendingSuffix = nil
	s.attachInactive(insts)
	s.fetchPC = b.NextPC
	if b.EndsInSerial {
		s.serialHold = true
		s.serialInFl = false
	}
}

// attachInactive locates the divergence point; the inactive suffix is
// attached to the diverging branch when it dispatches. The suffix is
// cloned because the diverging branch may hold it in the window long after
// the pending buffer has been reused by later fetches.
func (s *Simulator) attachInactive(insts []fetch.FetchedInst) {
	first := -1
	for i := range insts {
		if insts[i].Inactive {
			first = i
			break
		}
	}
	if first <= 0 {
		return
	}
	if !insts[first-1].Inst.IsCondBranch() {
		return
	}
	s.pendingBrIdx = first - 1
	s.pendingSuffix = append([]fetch.FetchedInst(nil), insts[first:]...)
}

// maybeFinalize classifies a fetch record once all of its instructions
// have retired or been squashed.
//
//tc:hotpath
func (s *Simulator) maybeFinalize(id int) {
	rec := s.rec(id)
	if rec.finalized || rec.pending > 0 || rec.dispatched == 0 {
		return
	}
	if s.pending != nil && s.pendingRec == id {
		return // still dispatching
	}
	if len(s.injectQueue) > 0 && s.injectRec == id {
		return // injected instructions still arriving
	}
	rec.finalized = true
	if s.obs != nil && s.obs.Enabled(obs.KindFetchRecord) {
		ev := obs.Event{
			Kind: obs.KindFetchRecord, Cycle: rec.cycle, PC: rec.pc,
			V1: uint64(rec.dispatched), V2: uint64(rec.retired), V3: uint64(rec.reason),
		}
		if s.cycle > rec.cycle {
			ev.Dur = s.cycle - rec.cycle
		}
		if rec.fromTC {
			ev.Flags |= obs.FlagFromTC
		}
		if rec.mispredBR {
			ev.Flags |= obs.FlagMispredict
		}
		s.obs.Emit(ev)
	}
	if rec.retired > 0 {
		s.run.Cycle[stats.CycleUseful]++
		s.run.Fetches++
		s.run.FetchedCorrect += uint64(rec.retired)
		end := rec.reason
		if rec.mispredBR {
			end = stats.EndMispredBR
		}
		s.run.Hist.Add(rec.retired, end)
		p := rec.predsUsed
		if p > 3 {
			p = 3
		}
		s.run.PredsPerFetch[p]++
		return
	}
	cls := rec.cause
	if !rec.caused {
		cls = stats.CycleBranchMiss
	}
	s.run.Cycle[cls]++
}
