package sim

import (
	"testing"

	"tracecache/internal/core"
	"tracecache/internal/exec"
	"tracecache/internal/isa"
	"tracecache/internal/program"
	"tracecache/internal/stats"
	"tracecache/internal/workload"
)

// sumLoop builds a program computing sum(1..n) via a loop, then halting.
func sumLoop(t *testing.T, n int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("sumloop")
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: n})
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 2, Imm: 0})
	b.Here("loop")
	b.Emit(isa.Inst{Op: isa.OpAdd, Rd: 2, Rs1: 2, Rs2: 1})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: 1, Rs2: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustSim(t *testing.T, cfg Config, p *program.Program) *Simulator {
	t.Helper()
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoopRunsToHaltTrace(t *testing.T) {
	p := sumLoop(t, 100)
	cfg := DefaultConfig()
	cfg.MaxInsts = 1 << 20
	s := mustSim(t, cfg, p)
	r := s.Run()
	if r.Retired == 0 || r.Cycles == 0 {
		t.Fatalf("run = %+v", r)
	}
	// 100 iterations * 3 + 3 = 303 retired instructions.
	if r.Retired != 303 {
		t.Errorf("retired = %d, want 303", r.Retired)
	}
	if r.CondBranches != 100 {
		t.Errorf("branches = %d, want 100", r.CondBranches)
	}
	// The loop-exit branch must mispredict at least once.
	if r.CondMispredicts == 0 {
		t.Error("no mispredicts on loop exit")
	}
	if r.IPC() <= 0 {
		t.Error("no IPC")
	}
}

func TestLoopRunsToHaltICache(t *testing.T) {
	p := sumLoop(t, 100)
	s := mustSim(t, ICacheConfig(), p)
	r := s.Run()
	if r.Retired != 303 {
		t.Errorf("retired = %d, want 303", r.Retired)
	}
}

// archEqual verifies the simulator's final architectural state matches a
// pure sequential execution — the strongest end-to-end check of recovery,
// rename and rollback correctness.
func archEqual(t *testing.T, cfg Config, p *program.Program) {
	t.Helper()
	s := mustSim(t, cfg, p)
	r := s.Run()
	golden := exec.NewState(p)
	gsteps, ghalted := golden.Run(1 << 30)
	if !ghalted {
		t.Fatal("golden run did not halt")
	}
	if r.Retired != gsteps {
		t.Fatalf("retired = %d, golden steps = %d", r.Retired, gsteps)
	}
	for i := 0; i < isa.NumRegs; i++ {
		if s.state.Regs[i] != golden.Regs[i] {
			t.Errorf("r%d = %d, golden %d", i, s.state.Regs[i], golden.Regs[i])
		}
	}
}

func TestArchitecturalEquivalenceLoop(t *testing.T) {
	archEqual(t, DefaultConfig(), sumLoop(t, 200))
}

// chaos builds a program exercising every control construct with
// hard-to-predict branches, calls, indirect jumps, stores and a trap.
func chaos(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("chaos")
	// Data: a small pseudo-random table driving branch decisions.
	for i := 0; i < 64; i++ {
		b.Word(uint64(0x1000+i*8), int64((i*2654435761)%97))
	}
	// Jump table with 4 entries, patched below.
	b.Here("f")
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 10, Rs1: 10, Imm: 1}) // call counter
	b.Emit(isa.Inst{Op: isa.OpRet})
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 64}) // loop counter
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 2, Imm: 0})  // index
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 3, Imm: 0})  // accumulator
	b.Here("loop")
	// Load a pseudo-random value.
	b.Emit(isa.Inst{Op: isa.OpMulI, Rd: 4, Rs1: 2, Imm: 8})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 4, Rs1: 4, Imm: 0x1000})
	b.Emit(isa.Inst{Op: isa.OpLoad, Rd: 5, Rs1: 4})
	// Data-dependent branch.
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 6, Imm: 48})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondLT, Rs1: 5, Rs2: 6}, "skip")
	b.Emit(isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 3, Rs2: 5})
	b.Emit(isa.Inst{Op: isa.OpStore, Rs1: 4, Rs2: 3, Imm: 0x800})
	b.Here("skip")
	// Call.
	b.EmitTo(isa.Inst{Op: isa.OpCall}, "f")
	// Indirect jump through a table selected by value & 3.
	b.Emit(isa.Inst{Op: isa.OpAndI, Rd: 7, Rs1: 5, Imm: 3})
	b.Emit(isa.Inst{Op: isa.OpMulI, Rd: 7, Rs1: 7, Imm: 8})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 7, Rs1: 7, Imm: 0x2000})
	b.Emit(isa.Inst{Op: isa.OpLoad, Rd: 8, Rs1: 7})
	b.Emit(isa.Inst{Op: isa.OpJmpInd, Rs1: 8})
	case0 := b.PC()
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 3, Rs1: 3, Imm: 1})
	b.EmitTo(isa.Inst{Op: isa.OpJmp}, "join")
	case1 := b.PC()
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 3, Rs1: 3, Imm: 2})
	b.EmitTo(isa.Inst{Op: isa.OpJmp}, "join")
	case2 := b.PC()
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 3, Rs1: 3, Imm: 3})
	b.EmitTo(isa.Inst{Op: isa.OpJmp}, "join")
	case3 := b.PC()
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 3, Rs1: 3, Imm: 4})
	b.Here("join")
	b.Word(0x2000, int64(case0))
	b.Word(0x2008, int64(case1))
	b.Word(0x2010, int64(case2))
	b.Word(0x2018, int64(case3))
	// Occasional trap.
	b.Emit(isa.Inst{Op: isa.OpAndI, Rd: 9, Rs1: 2, Imm: 31})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondNE, Rs1: 9, Rs2: 0}, "notrap")
	b.Emit(isa.Inst{Op: isa.OpTrap})
	b.Here("notrap")
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 2, Rs1: 2, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: 1, Rs2: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArchitecturalEquivalenceChaosTrace(t *testing.T) {
	archEqual(t, DefaultConfig(), chaos(t))
}

func TestArchitecturalEquivalenceChaosICache(t *testing.T) {
	archEqual(t, ICacheConfig(), chaos(t))
}

func TestArchitecturalEquivalenceChaosPromotionPacking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fill = core.DefaultFillConfig(core.PackUnregulated, 4)
	cfg.SplitMBP = true
	archEqual(t, cfg, chaos(t))
}

func TestArchitecturalEquivalenceChaosOracle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine.MemOracle = true
	archEqual(t, cfg, chaos(t))
}

func TestChaosMemoryStateMatches(t *testing.T) {
	p := chaos(t)
	s := mustSim(t, DefaultConfig(), p)
	s.Run()
	golden := exec.NewState(p)
	golden.Run(1 << 30)
	for i := 0; i < 64; i++ {
		addr := uint64(0x1800 + i*8)
		if got, want := s.state.Mem().Read(addr), golden.Mem().Read(addr); got != want {
			t.Errorf("mem[%#x] = %d, want %d", addr, got, want)
		}
	}
}

func TestTraceCachePopulatesAndHits(t *testing.T) {
	p := sumLoop(t, 500)
	s := mustSim(t, DefaultConfig(), p)
	s.Run()
	st := s.TraceCache().Stats()
	if st.Inserts == 0 {
		t.Error("fill unit never wrote a segment")
	}
	if st.Hits == 0 {
		t.Error("trace cache never hit")
	}
}

func TestPromotionPromotesLoopBranch(t *testing.T) {
	p := sumLoop(t, 2000)
	cfg := DefaultConfig()
	cfg.Fill = core.DefaultFillConfig(core.PackAtomic, 16)
	cfg.SplitMBP = true
	s := mustSim(t, cfg, p)
	r := s.Run()
	if r.PromotedExecuted == 0 {
		t.Error("no promoted branches executed")
	}
	// The loop exit faults exactly once (the final iteration).
	if r.PromotedFaults != 1 {
		t.Errorf("promoted faults = %d, want 1", r.PromotedFaults)
	}
}

func TestTrapSerializes(t *testing.T) {
	b := program.NewBuilder("trap")
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: 1, Imm: 5})
	b.Here("loop")
	b.Emit(isa.Inst{Op: isa.OpTrap})
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: 1, Rs2: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(t, DefaultConfig(), p)
	r := s.Run()
	if r.Retired != 1+5*3+1 {
		t.Errorf("retired = %d", r.Retired)
	}
	if r.Cycle[stats.CycleTrap] == 0 {
		t.Error("no trap stall cycles recorded")
	}
}

func TestCycleAccountingSumsToCycles(t *testing.T) {
	p, _ := workload.ByName("compress")
	prog := p.MustGenerate()
	cfg := DefaultConfig()
	cfg.MaxInsts = 30000
	s := mustSim(t, cfg, prog)
	r := s.Run()
	var sum uint64
	for _, c := range r.Cycle {
		sum += c
	}
	// Every cycle is classified exactly once, up to small bookkeeping
	// slack at run end (unfinalized records).
	ratio := float64(sum) / float64(r.Cycles)
	if ratio < 0.9 || ratio > 1.02 {
		t.Errorf("classified cycles = %d of %d (%.2f)", sum, r.Cycles, ratio)
	}
}

func TestWorkloadRunsAllConfigs(t *testing.T) {
	p, _ := workload.ByName("gcc")
	prog := p.MustGenerate()
	configs := []Config{DefaultConfig(), ICacheConfig()}
	promo := DefaultConfig()
	promo.Name = "promotion"
	promo.Fill = core.DefaultFillConfig(core.PackAtomic, 64)
	promo.SplitMBP = true
	packing := DefaultConfig()
	packing.Name = "packing"
	packing.Fill = core.DefaultFillConfig(core.PackUnregulated, 0)
	both := DefaultConfig()
	both.Name = "both"
	both.Fill = core.DefaultFillConfig(core.PackCostRegulated, 64)
	both.SplitMBP = true
	configs = append(configs, promo, packing, both)
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			cfg.MaxInsts = 30000
			s := mustSim(t, cfg, prog)
			r := s.Run()
			if r.Retired < 30000 {
				t.Fatalf("retired only %d", r.Retired)
			}
			if r.EffFetchRate() <= 1 || r.EffFetchRate() > 16 {
				t.Errorf("effective fetch rate = %.2f", r.EffFetchRate())
			}
			if r.IPC() <= 0.3 || r.IPC() > 16 {
				t.Errorf("IPC = %.2f", r.IPC())
			}
			if r.CondBranches == 0 {
				t.Error("no branches retired")
			}
			mr := r.CondMispredictRate()
			if mr <= 0 || mr > 0.5 {
				t.Errorf("mispredict rate = %.3f", mr)
			}
		})
	}
}

func TestTraceBeatsICacheFetchRate(t *testing.T) {
	p, _ := workload.ByName("m88ksim")
	prog := p.MustGenerate()
	base := DefaultConfig()
	base.MaxInsts = 60000
	ic := ICacheConfig()
	ic.MaxInsts = 60000
	sb := mustSim(t, base, prog)
	rb := sb.Run()
	si := mustSim(t, ic, prog)
	ri := si.Run()
	if rb.EffFetchRate() <= ri.EffFetchRate() {
		t.Errorf("trace cache fetch rate %.2f not above icache %.2f",
			rb.EffFetchRate(), ri.EffFetchRate())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.IssueWidth = 0
	if _, err := New(bad, sumLoop(t, 5)); err == nil {
		t.Error("bad config accepted")
	}
	bad2 := DefaultConfig()
	bad2.MaxInsts = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	bad3 := DefaultConfig()
	bad3.TC.Entries = 0
	if err := bad3.Validate(); err == nil {
		t.Error("bad TC accepted")
	}
	bad4 := DefaultConfig()
	bad4.Engine.FUs = 0
	if err := bad4.Validate(); err == nil {
		t.Error("bad engine accepted")
	}
}

func TestMaxCyclesBound(t *testing.T) {
	p := sumLoop(t, 1<<20)
	cfg := DefaultConfig()
	cfg.MaxCycles = 100
	s := mustSim(t, cfg, p)
	r := s.Run()
	if r.Cycles != 100 {
		t.Errorf("cycles = %d, want 100", r.Cycles)
	}
}

func TestArchitecturalEquivalencePathAssoc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TC.PathAssoc = true
	archEqual(t, cfg, chaos(t))
}

func TestArchitecturalEquivalenceNoInactiveIssue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableInactiveIssue = true
	archEqual(t, cfg, chaos(t))
}

func TestStaticPromotionRuns(t *testing.T) {
	p := sumLoop(t, 2000)
	cfg := DefaultConfig()
	cfg.Fill.StaticPromotions = map[int]bool{4: true} // the loop backedge
	s := mustSim(t, cfg, p)
	r := s.Run()
	if r.PromotedExecuted == 0 {
		t.Error("static promotion inactive")
	}
	// The final (not-taken) instance retires unpromoted, so no fault is
	// required, but the machine must still finish correctly.
	if r.Retired != 303+2000*3-303-3+6 && r.Retired == 0 {
		t.Error("no instructions retired")
	}
}

func TestNoInactiveIssueReducesFetchedWidth(t *testing.T) {
	p, _ := workload.ByName("gcc")
	prog := p.MustGenerate()
	on := DefaultConfig()
	on.MaxInsts = 40000
	off := DefaultConfig()
	off.Name = "no-inactive"
	off.DisableInactiveIssue = true
	off.MaxInsts = 40000
	ron := mustSim(t, on, prog).Run()
	roff := mustSim(t, off, prog).Run()
	if ron.EffFetchRate() <= roff.EffFetchRate() {
		t.Errorf("inactive issue should raise effective fetch rate: %.2f vs %.2f",
			ron.EffFetchRate(), roff.EffFetchRate())
	}
}

// TestSimulationDeterminism runs the same configuration twice and requires
// bit-identical statistics: no map-iteration order or other nondeterminism
// may leak into timing. The pinned outputs in the package examples and
// EXPERIMENTS.md rely on this.
func TestSimulationDeterminism(t *testing.T) {
	p, _ := workload.ByName("perl")
	prog := p.MustGenerate()
	cfg := DefaultConfig()
	cfg.Fill = core.DefaultFillConfig(core.PackCostRegulated, 64)
	cfg.SplitMBP = true
	cfg.WarmupInsts, cfg.MaxInsts = 30000, 50000
	a := mustSim(t, cfg, prog).Run()
	b := mustSim(t, cfg, prog).Run()
	// Meta is provenance (wall time, start timestamp), not a statistic;
	// it differs between runs by construction.
	a.Meta, b.Meta = nil, nil
	if *a != *b {
		t.Fatalf("nondeterministic simulation:\n%+v\nvs\n%+v", a, b)
	}
}
