package stats

// Result provenance values (Meta.Provenance and journal records).
const (
	// ProvCold marks a result simulated from scratch.
	ProvCold = "cold"
	// ProvCheckpointFork marks a result whose functional prefix was
	// restored from a shared architectural checkpoint.
	ProvCheckpointFork = "checkpoint-fork"
	// ProvMemoized marks a result shared from a runner's singleflight
	// memo: the request it describes simulated nothing.
	ProvMemoized = "memoized"
	// ProvReplay marks a result produced by the front-end-only replay
	// engine over a recorded retired stream: no execution core ran, and
	// cycle-domain statistics are undefined (see DESIGN.md §9).
	ProvReplay = "replay"
	// ProvSampled marks a result estimated by SMARTS-style statistical
	// sampling: functional fast-forward alternating with short detailed
	// measurement windows, aggregated into interval estimates
	// (see DESIGN.md §10). The headline counters are pooled across
	// windows; they describe the measured subset, not the full stream.
	ProvSampled = "sampled"
	// ProvStore marks a result served from the persistent on-disk result
	// store (internal/resultstore): the request it describes simulated
	// nothing in this process; the numbers are the verbatim output of the
	// run — possibly in another process — that originally populated the
	// entry (see DESIGN.md §11).
	ProvStore = "store"
)

// SamplingMeta records the sampling schedule of a ProvSampled run. It is
// part of Meta (and thereby of every serialized sampled summary and
// journal record), so sampled points are never conflated with detailed
// ones that share a configuration.
type SamplingMeta struct {
	// WindowInsts is the detailed measurement window length; WarmupInsts
	// is the discarded detailed warmup preceding each window; PeriodInsts
	// is the committed-stream distance between window starts.
	WindowInsts uint64 `json:"windowInsts"`
	PeriodInsts uint64 `json:"periodInsts"`
	WarmupInsts uint64 `json:"warmupInsts"`
	// Seed drives the per-period window-placement jitter.
	Seed uint64 `json:"seed"`
	// Windows is the number of measurement windows actually completed.
	Windows int `json:"windows"`
}

// Meta records the provenance of one run so serialized results (summary
// JSON, time-series files, CI trend data) are self-describing: which
// binary produced them, under which configuration and budgets, and how
// long the simulation took on which toolchain.
type Meta struct {
	// Tool identifies the producing binary (name and build info).
	Tool string `json:"tool,omitempty"`
	// ConfigHash fingerprints the full machine configuration, so results
	// from silently different configurations never compare as equal.
	ConfigHash string `json:"configHash,omitempty"`
	// Seed is the synthetic workload generator seed (0 when unknown).
	Seed int64 `json:"seed,omitempty"`
	// WarmupInsts and MaxInsts are the run bounds.
	WarmupInsts uint64 `json:"warmupInsts"`
	MaxInsts    uint64 `json:"maxInsts"`
	// FastForwardInsts is the functionally executed prefix (0 when the
	// whole run was cycle-detailed).
	FastForwardInsts uint64 `json:"fastForwardInsts,omitempty"`
	// CheckpointShared marks a run whose fast-forward prefix was restored
	// from a shared architectural checkpoint (no per-configuration warming
	// during the prefix) rather than stepped by this simulator.
	CheckpointShared bool `json:"checkpointShared,omitempty"`
	// Provenance records how the result was produced: ProvCold (simulated
	// from scratch by this process), ProvCheckpointFork (fast-forward
	// prefix restored from a shared architectural checkpoint), or — on
	// journal records whose result was shared from a runner's memo rather
	// than simulated for that request — ProvMemoized. The simulator only
	// ever writes the first two; the value is a pure function of the run
	// mode, so serialized summaries stay deterministic.
	Provenance string `json:"provenance,omitempty"`
	// WallMillis is the simulation wall time in milliseconds.
	WallMillis float64 `json:"wallMillis"`
	// GoVersion is the runtime that executed the simulation.
	GoVersion string `json:"goVersion,omitempty"`
	// Hostname identifies the producing machine.
	Hostname string `json:"hostname,omitempty"`
	// StartedAt is the run start in RFC 3339 UTC.
	StartedAt string `json:"startedAt,omitempty"`
	// Sampling is the sampling schedule of a ProvSampled run; nil on
	// every other provenance.
	Sampling *SamplingMeta `json:"sampling,omitempty"`
}
