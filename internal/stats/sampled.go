package stats

import (
	"encoding/json"
	"math"
)

// This file implements the aggregate statistics of a sampled run
// (SMARTS-style: Wunderlich et al., ISCA '03): the per-window metric
// samples, their means with standard errors, and 95% confidence
// intervals via the Student t distribution. The simulator produces one
// WindowSample per detailed measurement window; Aggregate turns the
// collection into interval estimates of the paper's headline metrics.

// WindowSample is the measurement of one detailed sampling window.
type WindowSample struct {
	// Index is the window's ordinal, 0-based, in schedule order.
	Index int `json:"index"`
	// StartInst is the committed-stream position (instructions retired
	// before this window's measurement began, functional and detailed).
	StartInst uint64 `json:"startInst"`
	// Retired and Cycles are the window's detailed measurement extent.
	Retired uint64 `json:"retired"`
	Cycles  uint64 `json:"cycles"`

	// Per-window metric samples.
	IPC            float64 `json:"ipc"`
	EffFetchRate   float64 `json:"effFetchRate"`
	MispredictRate float64 `json:"mispredictRate"` // cond mispredicts / cond branch
	TCHitRate      float64 `json:"tcHitRate"`      // window delta: TC hits / lookups

	// Raw counters backing the rates, so pooled (instruction-weighted)
	// estimates can be recomputed from the samples alone.
	CondBranches    uint64 `json:"condBranches"`
	CondMispredicts uint64 `json:"condMispredicts"`
	FetchedCorrect  uint64 `json:"fetchedCorrect"`
	UsefulCycles    uint64 `json:"usefulCycles"`
	TCLookups       uint64 `json:"tcLookups"`
	TCHits          uint64 `json:"tcHits"`
	PromotedFaults  uint64 `json:"promotedFaults,omitempty"`
}

// Estimate is a sampled interval estimate of one metric: the mean across
// windows, its standard error, and the 95% confidence interval
// mean ± t(n−1)·stderr. With a single window the spread is unobservable:
// StdErr is zero and the interval degenerates to [Mean, Mean].
type Estimate struct {
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
	CILow  float64 `json:"ciLow"`
	CIHigh float64 `json:"ciHigh"`
	N      int     `json:"n"`
}

// NewEstimate builds the interval estimate of one metric from its
// per-window samples.
func NewEstimate(samples []float64) Estimate {
	n := len(samples)
	if n == 0 {
		return Estimate{}
	}
	var sum float64
	for _, x := range samples {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Estimate{Mean: mean, CILow: mean, CIHigh: mean, N: 1}
	}
	var ss float64
	for _, x := range samples {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	se := sd / math.Sqrt(float64(n))
	half := tCrit95(n-1) * se
	return Estimate{Mean: mean, StdErr: se, CILow: mean - half, CIHigh: mean + half, N: n}
}

// Contains reports whether x falls inside the confidence interval.
func (e Estimate) Contains(x float64) bool { return x >= e.CILow && x <= e.CIHigh }

// HalfWidth returns the half-width of the confidence interval.
func (e Estimate) HalfWidth() float64 { return (e.CIHigh - e.CILow) / 2 }

// tTable holds two-sided 95% Student t critical values for 1–30 degrees
// of freedom; tSteps extends it sparsely beyond.
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

var tSteps = []struct {
	df int
	t  float64
}{{40, 2.021}, {60, 2.000}, {120, 1.980}}

// tCrit95 returns the two-sided 95% Student t critical value for df
// degrees of freedom. Between tabulated points it uses the largest
// tabulated df not exceeding the actual one — t decreases with df, so
// the resulting interval is conservative (never too narrow).
func tCrit95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable) {
		return tTable[df-1]
	}
	t := tTable[len(tTable)-1]
	for _, s := range tSteps {
		if df >= s.df {
			t = s.t
		}
	}
	if df >= 1000 {
		t = 1.960
	}
	return t
}

// Sampled aggregates one sampled run: the schedule parameters, the
// per-window samples, and the interval estimates of the headline metrics.
type Sampled struct {
	Benchmark string `json:"benchmark"`
	Config    string `json:"config"`

	// Schedule parameters (mirrored in Meta.Sampling).
	WindowInsts uint64 `json:"windowInsts"`
	PeriodInsts uint64 `json:"periodInsts"`
	WarmupInsts uint64 `json:"warmupInsts"`
	Seed        uint64 `json:"seed"`

	// TotalInsts is the committed-stream length spanned by the run
	// (functional gaps plus every detailed instruction); MeasuredInsts is
	// the detailed measured subset (sum of window Retired).
	TotalInsts    uint64 `json:"totalInsts"`
	MeasuredInsts uint64 `json:"measuredInsts"`

	Windows []WindowSample `json:"windows"`

	// Interval estimates across windows. IPC is estimated in the CPI
	// domain and inverted (see Aggregate), so its confidence interval is
	// asymmetric about the mean.
	IPC            Estimate `json:"ipcEstimate"`
	EffFetchRate   Estimate `json:"effFetchRateEstimate"`
	MispredictRate Estimate `json:"mispredictRateEstimate"`
	TCHitRate      Estimate `json:"tcHitRateEstimate"`

	// Meta is the run's provenance block (Provenance == ProvSampled).
	Meta *Meta `json:"meta,omitempty"`
}

// Aggregate recomputes the interval estimates and the measured totals
// from the Windows slice. Call it after appending the final window.
//
// IPC is estimated in the CPI domain (as in SMARTS): windows are
// equal-instruction strata, so the arithmetic mean of per-window CPI is
// the unbiased estimator of aggregate cycles-per-instruction, and the
// aggregate IPC estimate is its reciprocal. Averaging per-window IPCs
// directly would overweight fast windows (Jensen's inequality) and
// overestimate aggregate IPC by 10%+ on realistic schedules.
func (s *Sampled) Aggregate() {
	n := len(s.Windows)
	cpi := make([]float64, 0, n)
	eff := make([]float64, n)
	mis := make([]float64, n)
	s.MeasuredInsts = 0
	tcSamples := make([]float64, 0, n)
	for i, w := range s.Windows {
		if w.IPC > 0 {
			cpi = append(cpi, 1/w.IPC)
		}
		eff[i] = w.EffFetchRate
		mis[i] = w.MispredictRate
		s.MeasuredInsts += w.Retired
		if w.TCLookups > 0 {
			tcSamples = append(tcSamples, w.TCHitRate)
		}
	}
	s.IPC = invertEstimate(NewEstimate(cpi))
	s.EffFetchRate = NewEstimate(eff)
	s.MispredictRate = NewEstimate(mis)
	// Windows with no trace-cache lookups (icache front end) carry no
	// hit-rate sample; the estimate covers the windows that do.
	s.TCHitRate = NewEstimate(tcSamples)
}

// invertEstimate maps the interval estimate of a positive metric to the
// estimate of its reciprocal: the CI endpoints swap, and the standard
// error transforms by the delta method (se(1/x) ≈ se(x)/x²). When the
// source interval touches zero the exact endpoint transform degenerates,
// so the delta-method interval is used instead; either way the result
// stays JSON-safe (no NaN/Inf).
func invertEstimate(e Estimate) Estimate {
	if e.N == 0 || e.Mean <= 0 {
		return Estimate{N: e.N}
	}
	inv := Estimate{Mean: 1 / e.Mean, StdErr: e.StdErr / (e.Mean * e.Mean), N: e.N}
	if e.CILow > 0 {
		inv.CILow, inv.CIHigh = 1/e.CIHigh, 1/e.CILow
	} else {
		h := e.HalfWidth() / (e.Mean * e.Mean)
		inv.CILow, inv.CIHigh = inv.Mean-h, inv.Mean+h
	}
	return inv
}

// JSON renders the aggregate as indented JSON.
func (s *Sampled) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSampled parses the JSON produced by JSON.
func ParseSampled(b []byte) (*Sampled, error) {
	var s Sampled
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
