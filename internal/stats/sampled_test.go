package stats

import (
	"math"
	"reflect"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewEstimateKnownDistribution(t *testing.T) {
	// Five known samples: mean 10, sample sd 2.5 => se 1.1180,
	// t(4) = 2.776 => half-width 3.1039.
	samples := []float64{7, 8, 10, 12, 13}
	e := NewEstimate(samples)
	if e.N != 5 {
		t.Fatalf("N = %d, want 5", e.N)
	}
	if !almost(e.Mean, 10, 1e-12) {
		t.Errorf("mean = %g, want 10", e.Mean)
	}
	wantSE := math.Sqrt(6.5) / math.Sqrt(5)
	if !almost(e.StdErr, wantSE, 1e-9) {
		t.Errorf("stderr = %g, want %g", e.StdErr, wantSE)
	}
	wantHalf := 2.776 * wantSE
	if !almost(e.HalfWidth(), wantHalf, 1e-9) {
		t.Errorf("half-width = %g, want %g", e.HalfWidth(), wantHalf)
	}
	if !e.Contains(10) || !e.Contains(10+wantHalf-1e-9) || e.Contains(10+wantHalf+1e-6) {
		t.Errorf("CI [%g, %g] membership wrong", e.CILow, e.CIHigh)
	}
}

func TestNewEstimateConstantSamples(t *testing.T) {
	e := NewEstimate([]float64{3.5, 3.5, 3.5, 3.5})
	if e.Mean != 3.5 || e.StdErr != 0 || e.CILow != 3.5 || e.CIHigh != 3.5 {
		t.Errorf("constant samples: got %+v", e)
	}
}

func TestNewEstimateDegenerate(t *testing.T) {
	// A single window gives no spread information: the estimate must
	// stay JSON-safe (no NaN/Inf) with a point interval.
	e := NewEstimate([]float64{2.25})
	if e.Mean != 2.25 || e.StdErr != 0 || e.CILow != 2.25 || e.CIHigh != 2.25 || e.N != 1 {
		t.Errorf("single sample: got %+v", e)
	}
	if z := NewEstimate(nil); z != (Estimate{}) {
		t.Errorf("empty samples: got %+v", z)
	}
}

func TestTCrit95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {4, 2.776}, {29, 2.045}, {30, 2.042},
		{35, 2.042}, // between tabulated points: step down (conservative)
		{40, 2.021}, {59, 2.021}, {60, 2.000}, {119, 2.000},
		{120, 1.980}, {500, 1.980}, {1000, 1.960},
	}
	for _, c := range cases {
		if got := tCrit95(c.df); got != c.want {
			t.Errorf("tCrit95(%d) = %g, want %g", c.df, got, c.want)
		}
	}
	// Monotone non-increasing in df: a larger sample never widens the CI.
	prev := tCrit95(1)
	for df := 2; df <= 2000; df++ {
		if cur := tCrit95(df); cur > prev {
			t.Fatalf("tCrit95 not monotone at df=%d: %g > %g", df, cur, prev)
		} else {
			prev = cur
		}
	}
}

func TestSampledAggregateAndJSONRoundTrip(t *testing.T) {
	s := &Sampled{
		Benchmark:   "gcc",
		Config:      "baseline",
		WindowInsts: 1000, PeriodInsts: 10000, WarmupInsts: 500, Seed: 7,
		TotalInsts: 50000,
		Windows: []WindowSample{
			{Index: 0, StartInst: 4000, Retired: 1000, Cycles: 400, IPC: 2.5, EffFetchRate: 10, MispredictRate: 0.08, TCHitRate: 0.9, TCLookups: 100, TCHits: 90},
			{Index: 1, StartInst: 14000, Retired: 1000, Cycles: 500, IPC: 2.0, EffFetchRate: 11, MispredictRate: 0.10, TCHitRate: 0.8, TCLookups: 100, TCHits: 80},
			{Index: 2, StartInst: 24000, Retired: 1002, Cycles: 445, IPC: 2.25, EffFetchRate: 12, MispredictRate: 0.09, TCHitRate: 0.7, TCLookups: 100, TCHits: 70},
		},
		Meta: &Meta{
			Provenance: ProvSampled,
			Sampling:   &SamplingMeta{WindowInsts: 1000, PeriodInsts: 10000, WarmupInsts: 500, Seed: 7, Windows: 3},
		},
	}
	s.Aggregate()
	if s.MeasuredInsts != 3002 {
		t.Errorf("MeasuredInsts = %d, want 3002", s.MeasuredInsts)
	}
	// IPC aggregates in the CPI domain: mean CPI over equal-instruction
	// windows, inverted. Arithmetic mean of the window IPCs (2.25) would
	// overestimate the aggregate.
	wantCPI := (1/2.5 + 1/2.0 + 1/2.25) / 3
	if !almost(s.IPC.Mean, 1/wantCPI, 1e-12) || s.IPC.N != 3 {
		t.Errorf("IPC estimate = %+v, want mean %g", s.IPC, 1/wantCPI)
	}
	if s.IPC.Mean >= 2.25 {
		t.Errorf("IPC mean %g not below the arithmetic window mean 2.25", s.IPC.Mean)
	}
	if !almost(s.EffFetchRate.Mean, 11, 1e-12) {
		t.Errorf("eff rate mean = %g, want 11", s.EffFetchRate.Mean)
	}
	if s.IPC.CILow >= s.IPC.CIHigh || !s.IPC.Contains(s.IPC.Mean) {
		t.Errorf("IPC CI malformed: %+v", s.IPC)
	}

	b, err := s.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	got, err := ParseSampled(b)
	if err != nil {
		t.Fatalf("ParseSampled: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestSampledAggregateSkipsTCWindowsWithoutLookups(t *testing.T) {
	s := &Sampled{Windows: []WindowSample{
		{IPC: 1, TCHitRate: 0, TCLookups: 0},
		{IPC: 2, TCHitRate: 0.5, TCLookups: 10, TCHits: 5},
	}}
	s.Aggregate()
	if s.IPC.N != 2 {
		t.Errorf("IPC.N = %d, want 2", s.IPC.N)
	}
	if s.TCHitRate.N != 1 || s.TCHitRate.Mean != 0.5 {
		t.Errorf("TCHitRate = %+v, want N=1 mean=0.5", s.TCHitRate)
	}
}

// TestAccumulateCoversAllFields sets every numeric field of a Run to a
// nonzero value via reflection and asserts Accumulate propagates all of
// them — so a future counter added to Run cannot silently vanish from
// pooled sampled statistics.
func TestAccumulateCoversAllFields(t *testing.T) {
	var src Run
	fill(t, reflect.ValueOf(&src).Elem(), "Run")
	src.Benchmark, src.Config, src.Meta = "", "", nil

	var dst Run
	dst.Accumulate(&src)
	dst.Accumulate(&src)

	v, w := reflect.ValueOf(src), reflect.ValueOf(dst)
	for i := 0; i < v.NumField(); i++ {
		name := v.Type().Field(i).Name
		if name == "Benchmark" || name == "Config" || name == "Meta" {
			continue
		}
		checkDoubled(t, name, v.Field(i), w.Field(i))
	}
}

func fill(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Uint64:
		v.SetUint(3)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fill(t, v.Index(i), path)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if f.Name == "Benchmark" || f.Name == "Config" || f.Name == "Meta" {
				continue
			}
			fill(t, v.Field(i), path+"."+f.Name)
		}
	case reflect.String, reflect.Pointer:
		// Benchmark/Config/Meta equivalents inside nested structs: skip.
	default:
		t.Fatalf("%s: unhandled Run field kind %s — extend Accumulate and this test", path, v.Kind())
	}
}

func checkDoubled(t *testing.T, name string, src, dst reflect.Value) {
	t.Helper()
	switch src.Kind() {
	case reflect.Uint64:
		if dst.Uint() != 2*src.Uint() {
			t.Errorf("Accumulate dropped field %s: got %d, want %d", name, dst.Uint(), 2*src.Uint())
		}
	case reflect.Array:
		for i := 0; i < src.Len(); i++ {
			checkDoubled(t, name, src.Index(i), dst.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < src.NumField(); i++ {
			checkDoubled(t, name+"."+src.Type().Field(i).Name, src.Field(i), dst.Field(i))
		}
	}
}
