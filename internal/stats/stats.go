// Package stats defines the measurements the paper reports: the fetch
// width breakdown by termination condition (Figures 4 and 6), effective
// fetch rate, prediction-bandwidth demand (Table 3), fetch-cycle
// accounting (Figure 12), misprediction counts and resolution times
// (Figures 13-15), and IPC.
package stats

import "fmt"

// FetchEnd classifies why a fetch that delivered correct-path instructions
// was limited (Section 4, Figure 4). The seven conditions of the paper.
type FetchEnd uint8

// Fetch termination conditions.
const (
	EndPartialMatch FetchEnd = iota // predicted path diverged from the segment
	EndAtomicBlocks                 // fill unit finalized short (atomic block treatment)
	EndICache                       // fetch served by icache hit a control inst or line end
	EndMispredBR                    // a mispredicted branch terminated the fetch
	EndMaxSize                      // 16 instructions delivered
	EndRetIndirTrap                 // return, indirect jump, or trap
	EndMaxBRs                       // three on-path branches consumed
	NumFetchEnds
)

var endNames = [NumFetchEnds]string{
	"PartialMatch", "AtomicBlocks", "Icache", "MispredBR",
	"MaxSize", "Ret/Indir/Trap", "MaximumBRs",
}

// String names the termination condition as in the paper's legend.
func (e FetchEnd) String() string {
	if e < NumFetchEnds {
		return endNames[e]
	}
	return fmt.Sprintf("end(%d)", uint8(e))
}

// MaxFetchWidth is the widest fetch the machine supports.
const MaxFetchWidth = 16

// FetchHistogram is the fetch width breakdown: counts by delivered size
// and termination condition.
type FetchHistogram struct {
	Counts [MaxFetchWidth + 1][NumFetchEnds]uint64
}

// Add records a fetch of the given correct-path size and termination.
// Out-of-range arguments are clamped (an unknown termination counts as
// the last condition) rather than indexing out of bounds.
func (h *FetchHistogram) Add(size int, end FetchEnd) {
	if size < 0 {
		size = 0
	}
	if size > MaxFetchWidth {
		size = MaxFetchWidth
	}
	if end >= NumFetchEnds {
		end = NumFetchEnds - 1
	}
	h.Counts[size][end]++
}

// Total returns the number of recorded fetches.
func (h *FetchHistogram) Total() uint64 {
	var t uint64
	for _, row := range h.Counts {
		for _, c := range row {
			t += c
		}
	}
	return t
}

// Mean returns the mean fetch size.
func (h *FetchHistogram) Mean() float64 {
	var t, sum uint64
	for size, row := range h.Counts {
		for _, c := range row {
			t += c
			sum += uint64(size) * c
		}
	}
	if t == 0 {
		return 0
	}
	return float64(sum) / float64(t)
}

// BySize returns the frequency of each fetch size (normalised).
func (h *FetchHistogram) BySize() [MaxFetchWidth + 1]float64 {
	var out [MaxFetchWidth + 1]float64
	t := h.Total()
	if t == 0 {
		return out
	}
	for size, row := range h.Counts {
		var s uint64
		for _, c := range row {
			s += c
		}
		out[size] = float64(s) / float64(t)
	}
	return out
}

// ByEnd returns the frequency of each termination condition (normalised).
func (h *FetchHistogram) ByEnd() [NumFetchEnds]float64 {
	var out [NumFetchEnds]float64
	t := h.Total()
	if t == 0 {
		return out
	}
	for _, row := range h.Counts {
		for e, c := range row {
			out[e] += float64(c) / float64(t)
		}
	}
	return out
}

// CycleClass classifies every fetch cycle for Figure 12's accounting.
type CycleClass uint8

// Fetch cycle classes.
const (
	CycleUseful     CycleClass = iota // delivered correct-path instructions
	CycleBranchMiss                   // delivered wrong-path instructions
	CycleCacheMiss                    // nothing delivered: instruction-supply miss
	CycleFullWindow                   // stalled: instruction window full
	CycleTrap                         // stalled: serializing trap in flight
	CycleMisfetch                     // wrong fetch address generated
	NumCycleClasses
)

var cycleNames = [NumCycleClasses]string{
	"Useful Fetch", "Branch Misses", "Cache Misses",
	"Full Window", "Traps", "Misfetches",
}

// String names the cycle class as in Figure 12's legend.
func (c CycleClass) String() string {
	if c < NumCycleClasses {
		return cycleNames[c]
	}
	return fmt.Sprintf("cycle(%d)", uint8(c))
}

// Run aggregates all statistics of one simulation.
type Run struct {
	Benchmark string
	Config    string

	// Meta is the run's provenance (attached by the simulator when the
	// run completes; nil until then). The pointed-to value is immutable
	// once set, so copies of Run may share it.
	Meta *Meta

	Cycles  uint64
	Retired uint64

	// Fetch statistics.
	Fetches        uint64 // fetch cycles that delivered >=1 correct-path instruction
	FetchedCorrect uint64 // correct-path instructions delivered by those fetches
	FetchedWrong   uint64 // wrong-path instructions fetched
	Hist           FetchHistogram
	PredsPerFetch  [4]uint64 // fetches by dynamic predictions consumed (0..3)
	Cycle          [NumCycleClasses]uint64
	TCMissCycles   uint64 // fetch cycles degraded by a trace cache miss

	// Branch statistics (correct path only).
	CondBranches     uint64
	CondMispredicts  uint64 // includes promoted-branch faults
	PromotedExecuted uint64
	PromotedFaults   uint64
	IndirectJumps    uint64
	IndirectMisses   uint64
	Returns          uint64

	// Misprediction resolution (Figure 15): cycles from prediction to
	// redirect, summed over resolved mispredictions.
	ResolutionSum      uint64
	ResolutionsCounted uint64

	// Per-source breakdown of conditional branches and their
	// mispredictions (diagnostic).
	CondBySource [NumPredSources]uint64
	MissBySource [NumPredSources]uint64
}

// PredSource identifies what predicted a retired conditional branch.
type PredSource uint8

// Prediction sources.
const (
	SrcSlot     PredSource = iota // multiple-branch-predictor slot
	SrcHybrid                     // hybrid predictor (icache front end)
	SrcPromoted                   // static promoted prediction
	SrcEmbedded                   // segment-embedded outcome (inactive issue)
	NumPredSources
)

var srcNames = [NumPredSources]string{"slot", "hybrid", "promoted", "embedded"}

// String names the source.
func (p PredSource) String() string {
	if p < NumPredSources {
		return srcNames[p]
	}
	return fmt.Sprintf("src(%d)", uint8(p))
}

// IPC returns retired instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

// EffFetchRate returns the effective fetch rate: the mean number of
// correct-path instructions over fetches that returned instructions on the
// correct execution path.
func (r *Run) EffFetchRate() float64 {
	if r.Fetches == 0 {
		return 0
	}
	return float64(r.FetchedCorrect) / float64(r.Fetches)
}

// CondMispredictRate returns mispredictions (including promoted faults)
// per conditional branch.
func (r *Run) CondMispredictRate() float64 {
	if r.CondBranches == 0 {
		return 0
	}
	return float64(r.CondMispredicts) / float64(r.CondBranches)
}

// TotalMispredicts returns conditional plus indirect mispredictions
// (returns are ideal), as counted by Figure 14.
func (r *Run) TotalMispredicts() uint64 { return r.CondMispredicts + r.IndirectMisses }

// AvgResolution returns the mean mispredicted-branch resolution time.
func (r *Run) AvgResolution() float64 {
	if r.ResolutionsCounted == 0 {
		return 0
	}
	return float64(r.ResolutionSum) / float64(r.ResolutionsCounted)
}

// LostToMispredicts returns the number of fetch cycles lost to branch
// mispredictions (wrong-path fetch plus misfetch cycles), the quantity
// Figure 13 tracks.
func (r *Run) LostToMispredicts() uint64 {
	return r.Cycle[CycleBranchMiss] + r.Cycle[CycleMisfetch]
}

// CycleSum returns the sum of the fetch-cycle classification buckets. The
// self-check layer verifies it stays within a bounded drift of Cycles
// (the Figure 12 conservation identity).
func (r *Run) CycleSum() uint64 {
	var sum uint64
	for _, v := range r.Cycle {
		sum += v
	}
	return sum
}

// PredsFracs returns the fraction of fetches needing 0-1, 2, and 3
// dynamic predictions (Table 3).
func (r *Run) PredsFracs() (zeroOrOne, two, three float64) {
	total := r.PredsPerFetch[0] + r.PredsPerFetch[1] + r.PredsPerFetch[2] + r.PredsPerFetch[3]
	if total == 0 {
		return 0, 0, 0
	}
	t := float64(total)
	return float64(r.PredsPerFetch[0]+r.PredsPerFetch[1]) / t,
		float64(r.PredsPerFetch[2]) / t,
		float64(r.PredsPerFetch[3]) / t
}

// Accumulate adds every counter of w into r, leaving Benchmark, Config
// and Meta untouched. Sampled runs use it to pool the per-window
// measurement counters into one Run whose ratio statistics (IPC,
// effective fetch rate, mispredict rate) become instruction-weighted
// estimates over the measured subset. TestAccumulateCoversAllFields
// guards that new Run counters are added here too.
func (r *Run) Accumulate(w *Run) {
	r.Cycles += w.Cycles
	r.Retired += w.Retired
	r.Fetches += w.Fetches
	r.FetchedCorrect += w.FetchedCorrect
	r.FetchedWrong += w.FetchedWrong
	for size := range w.Hist.Counts {
		for end, c := range w.Hist.Counts[size] {
			r.Hist.Counts[size][end] += c
		}
	}
	for i, c := range w.PredsPerFetch {
		r.PredsPerFetch[i] += c
	}
	for i, c := range w.Cycle {
		r.Cycle[i] += c
	}
	r.TCMissCycles += w.TCMissCycles
	r.CondBranches += w.CondBranches
	r.CondMispredicts += w.CondMispredicts
	r.PromotedExecuted += w.PromotedExecuted
	r.PromotedFaults += w.PromotedFaults
	r.IndirectJumps += w.IndirectJumps
	r.IndirectMisses += w.IndirectMisses
	r.Returns += w.Returns
	r.ResolutionSum += w.ResolutionSum
	r.ResolutionsCounted += w.ResolutionsCounted
	for i, c := range w.CondBySource {
		r.CondBySource[i] += c
	}
	for i, c := range w.MissBySource {
		r.MissBySource[i] += c
	}
}

// PercentChange returns 100*(new-old)/old, or 0 when old is 0.
func PercentChange(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}
