package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestFetchEndNames(t *testing.T) {
	if EndPartialMatch.String() != "PartialMatch" || EndMaxBRs.String() != "MaximumBRs" {
		t.Error("end names wrong")
	}
	if FetchEnd(200).String() != "end(200)" {
		t.Error("unknown end name wrong")
	}
}

func TestCycleClassNames(t *testing.T) {
	if CycleUseful.String() != "Useful Fetch" || CycleMisfetch.String() != "Misfetches" {
		t.Error("cycle names wrong")
	}
	if CycleClass(99).String() != "cycle(99)" {
		t.Error("unknown cycle name wrong")
	}
}

func TestHistogramAddAndMean(t *testing.T) {
	var h FetchHistogram
	h.Add(16, EndMaxSize)
	h.Add(8, EndMispredBR)
	h.Add(8, EndMaxBRs)
	if h.Total() != 3 {
		t.Errorf("total = %d", h.Total())
	}
	want := (16.0 + 8 + 8) / 3
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", h.Mean(), want)
	}
}

func TestHistogramClamps(t *testing.T) {
	var h FetchHistogram
	h.Add(-5, EndICache)
	h.Add(99, EndMaxSize)
	if h.Counts[0][EndICache] != 1 || h.Counts[16][EndMaxSize] != 1 {
		t.Error("clamping failed")
	}
}

func TestHistogramClampsEnd(t *testing.T) {
	var h FetchHistogram
	h.Add(4, NumFetchEnds)   // first out-of-range value
	h.Add(4, FetchEnd(200))  // far out of range
	h.Add(4, NumFetchEnds-1) // last in-range value
	if got := h.Counts[4][NumFetchEnds-1]; got != 3 {
		t.Errorf("out-of-range ends not clamped to last condition: count = %d", got)
	}
	if h.Total() != 3 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramDistributions(t *testing.T) {
	var h FetchHistogram
	for i := 0; i < 3; i++ {
		h.Add(4, EndICache)
	}
	h.Add(16, EndMaxSize)
	bySize := h.BySize()
	if math.Abs(bySize[4]-0.75) > 1e-9 || math.Abs(bySize[16]-0.25) > 1e-9 {
		t.Errorf("bySize = %v", bySize)
	}
	byEnd := h.ByEnd()
	if math.Abs(byEnd[EndICache]-0.75) > 1e-9 || math.Abs(byEnd[EndMaxSize]-0.25) > 1e-9 {
		t.Errorf("byEnd = %v", byEnd)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h FetchHistogram
	if h.Mean() != 0 || h.Total() != 0 {
		t.Error("empty histogram not zero")
	}
	if h.BySize()[0] != 0 || h.ByEnd()[0] != 0 {
		t.Error("empty distributions not zero")
	}
}

func TestRunDerivedMetrics(t *testing.T) {
	r := &Run{
		Cycles:             100,
		Retired:            450,
		Fetches:            40,
		FetchedCorrect:     428,
		CondBranches:       50,
		CondMispredicts:    4,
		IndirectMisses:     2,
		ResolutionSum:      60,
		ResolutionsCounted: 6,
	}
	if r.IPC() != 4.5 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.EffFetchRate() != 10.7 {
		t.Errorf("eff fetch rate = %v", r.EffFetchRate())
	}
	if r.CondMispredictRate() != 0.08 {
		t.Errorf("mispredict rate = %v", r.CondMispredictRate())
	}
	if r.TotalMispredicts() != 6 {
		t.Errorf("total mispredicts = %d", r.TotalMispredicts())
	}
	if r.AvgResolution() != 10 {
		t.Errorf("avg resolution = %v", r.AvgResolution())
	}
}

func TestRunZeroSafe(t *testing.T) {
	var r Run
	if r.IPC() != 0 || r.EffFetchRate() != 0 || r.CondMispredictRate() != 0 || r.AvgResolution() != 0 {
		t.Error("zero run not safe")
	}
	z, two, three := r.PredsFracs()
	if z != 0 || two != 0 || three != 0 {
		t.Error("preds fracs not zero")
	}
}

func TestPredsFracs(t *testing.T) {
	r := &Run{PredsPerFetch: [4]uint64{10, 44, 18, 28}}
	z, two, three := r.PredsFracs()
	if math.Abs(z-0.54) > 1e-9 || math.Abs(two-0.18) > 1e-9 || math.Abs(three-0.28) > 1e-9 {
		t.Errorf("fracs = %v %v %v", z, two, three)
	}
}

func TestLostToMispredicts(t *testing.T) {
	var r Run
	r.Cycle[CycleBranchMiss] = 30
	r.Cycle[CycleMisfetch] = 5
	if r.LostToMispredicts() != 35 {
		t.Errorf("lost = %d", r.LostToMispredicts())
	}
}

func TestPercentChange(t *testing.T) {
	if PercentChange(0, 5) != 0 {
		t.Error("zero base should give 0")
	}
	if got := PercentChange(10, 11); math.Abs(got-10) > 1e-9 {
		t.Errorf("percent change = %v", got)
	}
	if got := PercentChange(10, 8); math.Abs(got+20) > 1e-9 {
		t.Errorf("percent change = %v", got)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	r := &Run{
		Benchmark: "gcc", Config: "baseline",
		Cycles: 100, Retired: 450,
		Fetches: 40, FetchedCorrect: 428,
		CondBranches: 50, CondMispredicts: 4,
		PredsPerFetch: [4]uint64{10, 44, 18, 28},
	}
	r.Cycle[CycleUseful] = 40
	r.Hist.Add(10, EndMaxBRs)
	s := r.Summary()
	if s.IPC != 4.5 || s.EffFetchRate != 10.7 || s.CondMispredictPct != 8 {
		t.Errorf("summary = %+v", s)
	}
	if s.CyclePct["Useful Fetch"] != 40 {
		t.Errorf("cycle pct = %v", s.CyclePct)
	}
	if s.FetchEnd["MaximumBRs"] != 100 {
		t.Errorf("fetch end = %v", s.FetchEnd)
	}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"benchmark": "gcc"`, `"ipc": 4.5`, `"effFetchRate": 10.7`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

// TestSummaryJSONRoundTrip marshals a summary (with provenance metadata),
// unmarshals it, and requires the result to be identical.
func TestSummaryJSONRoundTrip(t *testing.T) {
	r := &Run{
		Benchmark: "perl", Config: "promo-t64",
		Cycles: 250, Retired: 600,
		Fetches: 55, FetchedCorrect: 590, FetchedWrong: 120,
		CondBranches: 80, CondMispredicts: 6,
		PromotedExecuted: 25, PromotedFaults: 1,
		IndirectJumps: 9, IndirectMisses: 2, Returns: 12,
		ResolutionSum: 90, ResolutionsCounted: 8,
		PredsPerFetch: [4]uint64{5, 30, 12, 8},
		Meta: &Meta{
			Tool: "test v1", ConfigHash: "00ff00ff00ff00ff", Seed: 7,
			WarmupInsts: 100, MaxInsts: 600, WallMillis: 12.5,
			GoVersion: "go1.24.0", Hostname: "h", StartedAt: "2026-08-04T00:00:00Z",
		},
	}
	r.Cycle[CycleUseful] = 55
	r.Cycle[CycleBranchMiss] = 100
	r.Hist.Add(11, EndMaxSize)
	r.Hist.Add(5, EndMispredBR)

	s := r.Summary()
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", s, back)
	}
	if back.Meta == nil || *back.Meta != *r.Meta {
		t.Fatalf("meta round trip: %+v vs %+v", back.Meta, r.Meta)
	}
}

// TestSummaryEmptyRun digests a zero-value run: no division blows up, the
// JSON parses, and the absent Meta stays absent.
func TestSummaryEmptyRun(t *testing.T) {
	var r Run
	s := r.Summary()
	if s.IPC != 0 || s.EffFetchRate != 0 || s.Meta != nil {
		t.Fatalf("empty summary = %+v", s)
	}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"meta"`) {
		t.Error("empty run serialised a meta block")
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("empty round trip mismatch:\n%+v\nvs\n%+v", s, back)
	}
}
