package stats

import "encoding/json"

// Summary is a flat, serialisation-friendly digest of a Run, for tooling
// that consumes results programmatically (tcsim -json, notebooks, CI
// trend tracking).
type Summary struct {
	Benchmark string  `json:"benchmark"`
	Config    string  `json:"config"`
	Cycles    uint64  `json:"cycles"`
	Retired   uint64  `json:"retired"`
	IPC       float64 `json:"ipc"`

	EffFetchRate   float64 `json:"effFetchRate"`
	MeanFetchSize  float64 `json:"meanFetchSize"`
	FetchedCorrect uint64  `json:"fetchedCorrect"`
	FetchedWrong   uint64  `json:"fetchedWrong"`
	TCMissCycles   uint64  `json:"tcMissCycles"`

	CondBranches      uint64  `json:"condBranches"`
	CondMispredicts   uint64  `json:"condMispredicts"`
	CondMispredictPct float64 `json:"condMispredictPct"`
	PromotedExecuted  uint64  `json:"promotedExecuted"`
	PromotedFaults    uint64  `json:"promotedFaults"`
	IndirectJumps     uint64  `json:"indirectJumps"`
	IndirectMisses    uint64  `json:"indirectMisses"`
	Returns           uint64  `json:"returns"`
	AvgResolution     float64 `json:"avgResolutionCycles"`

	PredsZeroOrOnePct float64 `json:"predsZeroOrOnePct"`
	PredsTwoPct       float64 `json:"predsTwoPct"`
	PredsThreePct     float64 `json:"predsThreePct"`

	CyclePct map[string]float64 `json:"cyclePct"`
	FetchEnd map[string]float64 `json:"fetchEndPct"`

	// Meta is the run's provenance (nil for runs predating collection).
	Meta *Meta `json:"meta,omitempty"`
}

// Summary digests the run.
func (r *Run) Summary() Summary {
	z, two, three := r.PredsFracs()
	s := Summary{
		Benchmark:         r.Benchmark,
		Config:            r.Config,
		Cycles:            r.Cycles,
		Retired:           r.Retired,
		IPC:               r.IPC(),
		EffFetchRate:      r.EffFetchRate(),
		MeanFetchSize:     r.Hist.Mean(),
		FetchedCorrect:    r.FetchedCorrect,
		FetchedWrong:      r.FetchedWrong,
		TCMissCycles:      r.TCMissCycles,
		CondBranches:      r.CondBranches,
		CondMispredicts:   r.CondMispredicts,
		CondMispredictPct: 100 * r.CondMispredictRate(),
		PromotedExecuted:  r.PromotedExecuted,
		PromotedFaults:    r.PromotedFaults,
		IndirectJumps:     r.IndirectJumps,
		IndirectMisses:    r.IndirectMisses,
		Returns:           r.Returns,
		AvgResolution:     r.AvgResolution(),
		PredsZeroOrOnePct: 100 * z,
		PredsTwoPct:       100 * two,
		PredsThreePct:     100 * three,
		CyclePct:          make(map[string]float64, NumCycleClasses),
		FetchEnd:          make(map[string]float64, NumFetchEnds),
		Meta:              r.Meta,
	}
	if r.Cycles > 0 {
		for c := CycleClass(0); c < NumCycleClasses; c++ {
			s.CyclePct[c.String()] = 100 * float64(r.Cycle[c]) / float64(r.Cycles)
		}
	}
	byEnd := r.Hist.ByEnd()
	for e := FetchEnd(0); e < NumFetchEnds; e++ {
		s.FetchEnd[e.String()] = 100 * byEnd[e]
	}
	return s
}

// JSON renders the summary as indented JSON.
func (s Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
