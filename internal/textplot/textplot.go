// Package textplot renders tables, bar charts and histograms as plain
// text, for the experiment harness output.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders a simple aligned table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// barRunes renders a horizontal bar of the given fraction of width.
func bar(frac float64, width int) string {
	if math.IsNaN(frac) || frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Bars renders one horizontal bar per label, scaled to the maximum value.
func Bars(title string, labels []string, values []float64, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxv := 0.0
	lw := 0
	for i, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
		if i < len(values) && values[i] > maxv {
			maxv = values[i]
		}
	}
	if maxv == 0 {
		maxv = 1
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%-*s %8.2f |%s|\n", lw, l, v, bar(v/maxv, width))
	}
	return b.String()
}

// GroupedBars renders one group of bars per label, one bar per series.
// values is indexed [series][label].
func GroupedBars(title string, labels, series []string, values [][]float64, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxv := 0.0
	for _, row := range values {
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
	}
	if maxv == 0 {
		maxv = 1
	}
	lw, sw := 0, 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	for _, s := range series {
		if len(s) > sw {
			sw = len(s)
		}
	}
	for li, l := range labels {
		for si, s := range series {
			v := 0.0
			if si < len(values) && li < len(values[si]) {
				v = values[si][li]
			}
			name := ""
			if si == 0 {
				name = l
			}
			fmt.Fprintf(&b, "%-*s %-*s %8.2f |%s|\n", lw, name, sw, s, v, bar(v/maxv, width))
		}
	}
	return b.String()
}

// Histogram renders a vertical-style histogram as horizontal rows: one row
// per bin with its frequency.
func Histogram(title string, bins []string, freqs []float64, width int) string {
	return Bars(title, bins, freqs, width)
}

// SignedBars renders bars for values that may be negative (percent
// changes), with a central axis.
func SignedBars(title string, labels []string, values []float64, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxAbs := 0.0
	lw := 0
	for i, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
		if i < len(values) && math.Abs(values[i]) > maxAbs {
			maxAbs = math.Abs(values[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	half := width / 2
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := int(math.Abs(v)/maxAbs*float64(half) + 0.5)
		if n > half {
			n = half
		}
		var lane string
		if v < 0 {
			lane = strings.Repeat(" ", half-n) + strings.Repeat("#", n) + "|" + strings.Repeat(" ", half)
		} else {
			lane = strings.Repeat(" ", half) + "|" + strings.Repeat("#", n) + strings.Repeat(" ", half-n)
		}
		fmt.Fprintf(&b, "%-*s %+8.1f%% %s\n", lw, l, v, lane)
	}
	return b.String()
}
