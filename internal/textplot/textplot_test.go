package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"Name", "Value"}, [][]string{
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") || !strings.Contains(lines[0], "Value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	if strings.Index(lines[0], "Value") != strings.Index(lines[2], "1") {
		t.Error("columns misaligned")
	}
}

func TestBarsScaleToMax(t *testing.T) {
	out := Bars("title", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####.....") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
}

func TestBarsZeroAndMissingValues(t *testing.T) {
	out := Bars("", []string{"a", "b"}, []float64{0}, 8)
	if !strings.Contains(out, "........") {
		t.Errorf("zero bar wrong: %q", out)
	}
	// Missing value for "b" renders as zero without panicking.
	if !strings.Contains(out, "b") {
		t.Error("missing label row")
	}
}

func TestBarClamping(t *testing.T) {
	if got := bar(2.0, 4); got != "####" {
		t.Errorf("overflow bar = %q", got)
	}
	if got := bar(-1, 4); got != "...." {
		t.Errorf("negative bar = %q", got)
	}
}

func TestGroupedBars(t *testing.T) {
	out := GroupedBars("t", []string{"x", "y"}, []string{"s1", "s2"},
		[][]float64{{1, 2}, {3, 4}}, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Label appears only on the first series row of each group.
	if !strings.HasPrefix(lines[1], "x") || strings.HasPrefix(lines[2], "x") {
		t.Errorf("grouping wrong: %q %q", lines[1], lines[2])
	}
	// Global scale: the 4.0 bar is full.
	if !strings.Contains(lines[4], strings.Repeat("#", 8)) {
		t.Errorf("max bar: %q", lines[4])
	}
}

func TestSignedBars(t *testing.T) {
	out := SignedBars("t", []string{"up", "down"}, []float64{10, -20}, 20)
	if !strings.Contains(out, "+10.0%") || !strings.Contains(out, "-20.0%") {
		t.Errorf("values missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	up, down := lines[1], lines[2]
	// Positive bars sit right of the axis, negative bars left.
	if !strings.Contains(up, "|#") {
		t.Errorf("positive bar wrong: %q", up)
	}
	if !strings.Contains(down, "#|") {
		t.Errorf("negative bar wrong: %q", down)
	}
}

func TestSignedBarsZero(t *testing.T) {
	out := SignedBars("", []string{"z"}, []float64{0}, 10)
	if !strings.Contains(out, "+0.0%") {
		t.Errorf("zero row: %q", out)
	}
}

func TestHistogramDelegates(t *testing.T) {
	h := Histogram("h", []string{"0", "1"}, []float64{0.5, 0.5}, 10)
	b := Bars("h", []string{"0", "1"}, []float64{0.5, 0.5}, 10)
	if h != b {
		t.Error("histogram should render like bars")
	}
}
