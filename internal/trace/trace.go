// Package trace implements the compact binary retired-stream format
// behind the record/replay backend. A recording is the committed
// instruction stream of one benchmark — program counters, control-flow
// kinds, branch directions, indirect targets and store addresses — which
// is everything the fetch path (trace cache, fill unit, bias table,
// branch/indirect predictors, L1I) consumes. The stream is a pure
// function of the program and the instruction budget, independent of any
// machine configuration, so one recording serves every front-end sweep
// point (see sim.Replayer).
//
// # Format
//
// A stream is a versioned header, a sequence of delta/varint-encoded
// records, an end marker, and an integrity trailer:
//
//	header:  magic "tctr", version u16 LE, then varint fields
//	         (program hash, code length, entry, budgets, core hash)
//	         and length-prefixed strings (benchmark name, provenance)
//	record:  flags byte [kind:3 | taken | mem | target | 0 | 0]
//	         zigzag-varint PC delta from the previous record's PC + 1
//	         [target] zigzag-varint target delta from PC+1 (indirects)
//	         [mem]    zigzag-varint address delta from the previous store
//	end:     0xFF flags byte (reserved bits are never set in a record)
//	trailer: varint record count, CRC-32 (IEEE) LE over the records and
//	         end marker
//
// Sequential instructions therefore cost two bytes (zero flags, zero
// delta); a taken branch typically costs three or four. Truncation,
// bit corruption and version skew are all detectable: ErrTruncated,
// ErrCorrupt and ErrVersion respectively.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"tracecache/internal/isa"
)

// Version is the current stream format version.
const Version = 1

const (
	magic = "tctr"

	flagKindMask = 0x07
	flagTaken    = 0x08
	flagMem      = 0x10
	flagTarget   = 0x20
	flagReserved = 0xC0

	endMarker = 0xFF

	// maxRecBytes bounds one encoded record: flags plus three maximal
	// 10-byte varints, rounded up.
	maxRecBytes   = 32
	writerBufSize = 1 << 12
)

// Stream errors. Decoding failures wrap one of these three, so callers
// can errors.Is against them; Header.Matches wraps ErrMismatch.
var (
	ErrVersion   = errors.New("trace: version mismatch")
	ErrCorrupt   = errors.New("trace: corrupt stream")
	ErrTruncated = errors.New("trace: truncated stream")
	ErrMismatch  = errors.New("trace: header mismatch")
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// Kind is the control-flow class of one retired instruction.
type Kind uint8

// Control-flow kinds, three bits in the record flags byte.
const (
	KindOther Kind = iota
	KindCond
	KindJmp
	KindCall
	KindRet
	KindIndirect
	KindTrap
	KindHalt
)

// KindOf classifies an instruction.
func KindOf(in isa.Inst) Kind {
	switch in.Op {
	case isa.OpBr:
		return KindCond
	case isa.OpJmp:
		return KindJmp
	case isa.OpCall:
		return KindCall
	case isa.OpRet:
		return KindRet
	case isa.OpJmpInd:
		return KindIndirect
	case isa.OpTrap:
		return KindTrap
	case isa.OpHalt:
		return KindHalt
	}
	return KindOther
}

// Rec is one retired instruction.
type Rec struct {
	PC    int
	Kind  Kind
	Taken bool // conditional branches: committed direction
	// Target is the committed target of an indirect jump (the only
	// control transfer whose destination is not derivable from the code
	// segment and the direction bit).
	Target int
	// MemAddr is the store address (HasMem set); the data-side accesses
	// the bias table and fill unit see at commit.
	MemAddr uint64
	HasMem  bool
}

// Header identifies what a stream is a recording of. ProgHash, CodeLen,
// Entry and the budgets define the stream content (see Key); CoreHash,
// Name and Provenance are advisory metadata.
type Header struct {
	// ProgHash is the program content hash (program.Program.Hash).
	ProgHash uint64
	CodeLen  int
	Entry    int

	// Recording budgets: the stream covers the committed path through
	// fast-forward, warmup and measurement (fewer records if the program
	// halts first).
	FastForwardInsts uint64
	WarmupInsts      uint64
	MeasureInsts     uint64

	// CoreHash is the recording configuration's hash with every
	// front-end axis cleared (sim.CoreHash). The stream itself is
	// configuration-independent; replay eligibility checks use this to
	// assert the sweep point differs from the recording only in
	// front-end axes.
	CoreHash string

	Name       string // benchmark name
	Provenance string // how the stream was produced (e.g. "commit-tap")
}

// TotalInsts is the number of committed instructions the recording was
// budgeted to cover.
func (h Header) TotalInsts() uint64 {
	return h.FastForwardInsts + h.WarmupInsts + h.MeasureInsts
}

// Key is the content address of the stream: a digest of exactly the
// fields that determine the recorded bytes (program identity and total
// budget). Two recordings with equal keys hold identical streams, which
// is why a benchmark records exactly once per budget.
func (h Header) Key() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	k := uint64(offset64)
	for _, v := range [...]uint64{h.ProgHash, uint64(h.CodeLen), uint64(h.Entry), h.TotalInsts()} {
		for i := 0; i < 8; i++ {
			k ^= v & 0xff
			k *= prime64
			v >>= 8
		}
	}
	return k
}

// FileName is the content-addressed file name for the stream.
func (h Header) FileName() string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		}
		return '-'
	}, h.Name)
	if name == "" {
		name = "trace"
	}
	return fmt.Sprintf("%s-%016x.tctrace", name, h.Key())
}

// Matches reports whether a stored stream can stand in for a recording
// with the wanted content: same program and at least the wanted budget.
// A mismatch wraps ErrMismatch — the caller found a file under this
// content address that holds something else (hash collision or stale
// store) and must re-record.
func (h Header) Matches(want Header) error {
	switch {
	case h.ProgHash != want.ProgHash:
		return fmt.Errorf("%w: program hash %016x, want %016x", ErrMismatch, h.ProgHash, want.ProgHash)
	case h.CodeLen != want.CodeLen || h.Entry != want.Entry:
		return fmt.Errorf("%w: code %d@%d, want %d@%d", ErrMismatch, h.CodeLen, h.Entry, want.CodeLen, want.Entry)
	case h.TotalInsts() < want.TotalInsts():
		return fmt.Errorf("%w: covers %d insts, want %d", ErrMismatch, h.TotalInsts(), want.TotalInsts())
	}
	return nil
}

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer encodes a stream. Append is allocation-free (a fixed internal
// buffer, flushed in chunks) so the commit-path tap stays within the
// hotpath contract; I/O errors are latched and surface from Close.
type Writer struct {
	dst     io.Writer
	err     error
	closed  bool
	count   uint64
	prevPC  int
	prevMem uint64
	crc     uint32
	n       int
	buf     [writerBufSize]byte
}

// NewWriter writes the header and returns a Writer appending to dst.
func NewWriter(dst io.Writer, h Header) (*Writer, error) {
	hdr := appendHeader(nil, h)
	if _, err := dst.Write(hdr); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{dst: dst, prevPC: h.Entry - 1}, nil
}

// appendHeader encodes the header.
func appendHeader(b []byte, h Header) []byte {
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.AppendUvarint(b, h.ProgHash)
	b = binary.AppendUvarint(b, uint64(h.CodeLen))
	b = binary.AppendUvarint(b, uint64(h.Entry))
	b = binary.AppendUvarint(b, h.FastForwardInsts)
	b = binary.AppendUvarint(b, h.WarmupInsts)
	b = binary.AppendUvarint(b, h.MeasureInsts)
	for _, s := range [...]string{h.CoreHash, h.Name, h.Provenance} {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

// Append encodes one retired instruction. Errors are latched; a failed
// writer drops records silently until Close reports the cause.
//
//tc:hotpath
func (w *Writer) Append(r Rec) {
	if w.err != nil || w.closed {
		return
	}
	if w.n > writerBufSize-maxRecBytes {
		w.flush()
		if w.err != nil {
			return
		}
	}
	flags := byte(r.Kind) & flagKindMask
	if r.Taken {
		flags |= flagTaken
	}
	if r.HasMem {
		flags |= flagMem
	}
	hasTarget := r.Kind == KindIndirect
	if hasTarget {
		flags |= flagTarget
	}
	n := w.n
	w.buf[n] = flags
	n++
	n += binary.PutUvarint(w.buf[n:], zigzag(int64(r.PC-w.prevPC-1)))
	if hasTarget {
		n += binary.PutUvarint(w.buf[n:], zigzag(int64(r.Target-(r.PC+1))))
	}
	if r.HasMem {
		n += binary.PutUvarint(w.buf[n:], zigzag(int64(r.MemAddr-w.prevMem)))
		w.prevMem = r.MemAddr
	}
	w.prevPC = r.PC
	w.n = n
	w.count++
}

// flush drains the record buffer, folding it into the payload CRC.
func (w *Writer) flush() {
	if w.n == 0 || w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crcTable, w.buf[:w.n])
	if _, err := w.dst.Write(w.buf[:w.n]); err != nil {
		w.err = fmt.Errorf("trace: write records: %w", err)
	}
	w.n = 0
}

// Count returns the number of records appended so far.
func (w *Writer) Count() uint64 { return w.count }

// Close writes the end marker and integrity trailer and returns the
// first latched error. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.n > writerBufSize-1 {
		w.flush()
	}
	w.buf[w.n] = endMarker
	w.n++
	w.flush()
	if w.err != nil {
		return w.err
	}
	var tail []byte
	tail = binary.AppendUvarint(tail, w.count)
	tail = binary.LittleEndian.AppendUint32(tail, w.crc)
	if _, err := w.dst.Write(tail); err != nil {
		w.err = fmt.Errorf("trace: write trailer: %w", err)
	}
	return w.err
}

// Reader decodes a stream. The whole stream is held in memory (a 1M-
// instruction recording is a few megabytes); Next streams records out of
// it without allocating, verifying the trailer when the end marker is
// reached.
type Reader struct {
	h            Header
	data         []byte
	pos          int
	payloadStart int
	prevPC       int
	prevMem      uint64
	count        uint64
	done         bool
}

// NewReader reads the remaining input and decodes the stream header.
func NewReader(src io.Reader) (*Reader, error) {
	data, err := io.ReadAll(src)
	if err != nil {
		return nil, fmt.Errorf("trace: read stream: %w", err)
	}
	return NewReaderBytes(data)
}

// NewReaderBytes decodes the stream header of an in-memory stream.
func NewReaderBytes(data []byte) (*Reader, error) {
	r := &Reader{data: data}
	if len(data) < len(magic)+2 {
		return nil, fmt.Errorf("%w: short header", ErrTruncated)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r.pos = len(magic)
	if v := binary.LittleEndian.Uint16(data[r.pos:]); v != Version {
		return nil, fmt.Errorf("%w: stream version %d, reader supports %d", ErrVersion, v, Version)
	}
	r.pos += 2
	var ints [6]uint64
	for i := range ints {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		ints[i] = v
	}
	r.h.ProgHash = ints[0]
	r.h.CodeLen = int(ints[1])
	r.h.Entry = int(ints[2])
	r.h.FastForwardInsts, r.h.WarmupInsts, r.h.MeasureInsts = ints[3], ints[4], ints[5]
	for _, s := range [...]*string{&r.h.CoreHash, &r.h.Name, &r.h.Provenance} {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if uint64(len(data)-r.pos) < n {
			return nil, fmt.Errorf("%w: header string", ErrTruncated)
		}
		*s = string(data[r.pos : r.pos+int(n)])
		r.pos += int(n)
	}
	if r.h.CodeLen <= 0 || r.h.Entry < 0 || r.h.Entry >= r.h.CodeLen {
		return nil, fmt.Errorf("%w: entry %d outside code [0,%d)", ErrCorrupt, r.h.Entry, r.h.CodeLen)
	}
	r.payloadStart = r.pos
	r.prevPC = r.h.Entry - 1
	return r, nil
}

// Header returns the decoded stream header.
func (r *Reader) Header() Header { return r.h }

// Count returns the number of records decoded so far.
func (r *Reader) Count() uint64 { return r.count }

// uvarint decodes one unsigned varint at the cursor.
func (r *Reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		if n == 0 {
			return 0, fmt.Errorf("%w: varint", ErrTruncated)
		}
		return 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
	}
	r.pos += n
	return v, nil
}

// Next decodes the next record into rec. It returns io.EOF after the end
// marker and a verified trailer; any structural or integrity failure
// returns an error wrapping ErrTruncated or ErrCorrupt.
//
//tc:hotpath
func (r *Reader) Next(rec *Rec) error {
	if r.done {
		return io.EOF
	}
	if r.pos >= len(r.data) {
		return r.failTruncated("record flags")
	}
	flags := r.data[r.pos]
	if flags == endMarker {
		return r.finish()
	}
	r.pos++
	if flags&flagReserved != 0 {
		return r.failCorrupt("reserved flag bits set")
	}
	d, err := r.uvarint()
	if err != nil {
		return err
	}
	pc := r.prevPC + 1 + int(unzigzag(d))
	if pc < 0 || pc >= r.h.CodeLen {
		return r.failCorrupt("pc out of range")
	}
	kind := Kind(flags & flagKindMask)
	if (flags&flagTarget != 0) != (kind == KindIndirect) {
		return r.failCorrupt("target flag disagrees with kind")
	}
	rec.PC = pc
	rec.Kind = kind
	rec.Taken = flags&flagTaken != 0
	rec.HasMem = flags&flagMem != 0
	rec.Target = 0
	rec.MemAddr = 0
	if flags&flagTarget != 0 {
		d, err := r.uvarint()
		if err != nil {
			return err
		}
		t := pc + 1 + int(unzigzag(d))
		if t < 0 || t >= r.h.CodeLen {
			return r.failCorrupt("indirect target out of range")
		}
		rec.Target = t
	}
	if rec.HasMem {
		d, err := r.uvarint()
		if err != nil {
			return err
		}
		rec.MemAddr = r.prevMem + uint64(unzigzag(d))
		r.prevMem = rec.MemAddr
	}
	r.prevPC = pc
	r.count++
	return nil
}

// finish verifies the trailer at the end marker.
func (r *Reader) finish() error {
	markerEnd := r.pos + 1
	r.pos = markerEnd
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	if count != r.count {
		return fmt.Errorf("%w: trailer count %d, decoded %d", ErrCorrupt, count, r.count)
	}
	if len(r.data)-r.pos < 4 {
		return r.failTruncated("trailer crc")
	}
	want := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	if got := crc32.Checksum(r.data[r.payloadStart:markerEnd], crcTable); got != want {
		return fmt.Errorf("%w: crc %08x, trailer says %08x", ErrCorrupt, got, want)
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.data)-r.pos)
	}
	r.done = true
	return io.EOF
}

// failTruncated wraps ErrTruncated with context (out of line so the
// hotpath decode body stays free of fmt calls).
func (r *Reader) failTruncated(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrTruncated, what, r.pos)
}

// failCorrupt wraps ErrCorrupt with context.
func (r *Reader) failCorrupt(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, r.pos)
}

// ReadAll decodes an entire in-memory stream; the decoded slice is what
// replay consumes (decode once, replay at every sweep point). Capacity
// is pre-sized from the encoding's ~2 bytes/record density so a large
// stream does not pay repeated growth copies.
func ReadAll(data []byte) (Header, []Rec, error) {
	r, err := NewReaderBytes(data)
	if err != nil {
		return Header{}, nil, err
	}
	recs := make([]Rec, 0, len(data)/2)
	var rec Rec
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			return r.h, recs, nil
		}
		if err != nil {
			return r.h, recs, err
		}
		recs = append(recs, rec)
	}
}
