package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"tracecache/internal/isa"
)

func testHeader() Header {
	return Header{
		ProgHash:         0xdeadbeefcafe0123,
		CodeLen:          1 << 20,
		Entry:            17,
		FastForwardInsts: 100_000,
		WarmupInsts:      20_000,
		MeasureInsts:     40_000,
		CoreHash:         "00aabbccddeeff11",
		Name:             "gcc",
		Provenance:       "commit-tap",
	}
}

// boundaryRecs exercises varint and delta boundary values: zero deltas,
// maximal forward and backward jumps, store addresses crossing the
// signed-delta boundary, and every control-flow kind.
func boundaryRecs(codeLen int) []Rec {
	return []Rec{
		{PC: 17, Kind: KindOther},                                       // first record at entry: delta 0
		{PC: 18, Kind: KindOther, HasMem: true, MemAddr: 0},             // store at address zero
		{PC: 19, Kind: KindOther, HasMem: true, MemAddr: 1<<63 + 12345}, // huge positive address delta
		{PC: 20, Kind: KindOther, HasMem: true, MemAddr: 8},             // huge negative address delta
		{PC: 21, Kind: KindCond, Taken: true},                           // taken branch
		{PC: codeLen - 1, Kind: KindCond, Taken: false},                 // maximal forward PC delta
		{PC: 0, Kind: KindJmp},                                          // maximal backward PC delta
		{PC: 1, Kind: KindCall},                                         //
		{PC: 2, Kind: KindIndirect, Target: codeLen - 1},                // maximal forward target delta
		{PC: codeLen - 2, Kind: KindIndirect, Target: 0},                // maximal backward target delta
		{PC: codeLen - 3, Kind: KindRet},                                //
		{PC: 5, Kind: KindTrap, HasMem: true, MemAddr: ^uint64(0)},      // all-ones address
		{PC: 5, Kind: KindOther, HasMem: true, MemAddr: 0},              // repeated PC (delta -1)
		{PC: 6, Kind: KindHalt},                                         //
	}
}

func encode(t *testing.T, h Header, recs []Rec) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		w.Append(r)
	}
	if got, want := w.Count(), uint64(len(recs)); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	h := testHeader()
	recs := boundaryRecs(h.CodeLen)
	data := encode(t, h, recs)

	gotH, gotRecs, err := ReadAll(data)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if gotH != h {
		t.Errorf("header round trip:\n got %+v\nwant %+v", gotH, h)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(gotRecs), len(recs))
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Errorf("rec %d: got %+v, want %+v", i, gotRecs[i], recs[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	h := testHeader()
	data := encode(t, h, nil)
	gotH, recs, err := ReadAll(data)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if gotH != h || len(recs) != 0 {
		t.Errorf("empty stream: header %+v, %d records", gotH, len(recs))
	}
}

// TestRoundTripLong crosses several internal flush boundaries so the CRC
// is computed over multiple chunks.
func TestRoundTripLong(t *testing.T) {
	h := testHeader()
	var recs []Rec
	pc := h.Entry
	for i := 0; i < 20_000; i++ {
		r := Rec{PC: pc, Kind: KindOther}
		if i%7 == 0 {
			r.Kind = KindCond
			r.Taken = i%3 == 0
		}
		if i%5 == 0 {
			r.HasMem = true
			r.MemAddr = uint64(i) * 1024
		}
		recs = append(recs, r)
		pc = (pc + 1 + i%13) % h.CodeLen
	}
	data := encode(t, h, recs)
	_, gotRecs, err := ReadAll(data)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(gotRecs), len(recs))
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Fatalf("rec %d: got %+v, want %+v", i, gotRecs[i], recs[i])
		}
	}
}

func TestNewReaderStreams(t *testing.T) {
	data := encode(t, testHeader(), boundaryRecs(testHeader().CodeLen))
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var rec Rec
	n := 0
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if n != len(boundaryRecs(testHeader().CodeLen)) {
		t.Errorf("streamed %d records", n)
	}
	// Next after EOF stays EOF.
	if err := r.Next(&rec); err != io.EOF {
		t.Errorf("Next after EOF = %v", err)
	}
}

func TestTruncated(t *testing.T) {
	h := testHeader()
	data := encode(t, h, boundaryRecs(h.CodeLen))
	// Every proper prefix must fail with ErrTruncated or ErrCorrupt,
	// never succeed and never panic.
	for cut := 0; cut < len(data); cut++ {
		_, _, err := ReadAll(data[:cut])
		if err == nil {
			t.Fatalf("cut at %d/%d: decode succeeded", cut, len(data))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: unexpected error class: %v", cut, err)
		}
	}
}

func TestCorrupt(t *testing.T) {
	h := testHeader()
	data := encode(t, h, boundaryRecs(h.CodeLen))
	// Flipping any single payload bit must be caught (structurally or by
	// the CRC), never silently accepted.
	hdrLen := len(appendHeader(nil, h))
	for off := hdrLen; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		_, _, err := ReadAll(mut)
		if err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
	}
	// Trailing garbage after the trailer.
	_, _, err := ReadAll(append(append([]byte(nil), data...), 0x00))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: %v", err)
	}
	// Bad magic.
	mut := append([]byte(nil), data...)
	mut[0] = 'X'
	if _, err := NewReaderBytes(mut); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	data := encode(t, testHeader(), nil)
	data[4] = 0x7f // version field (LE u16 after the 4-byte magic)
	_, err := NewReaderBytes(data)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version mismatch: %v", err)
	}
}

func TestCountMismatch(t *testing.T) {
	h := testHeader()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Rec{PC: h.Entry, Kind: KindOther})
	w.count = 7 // lie about the record count
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadAll(buf.Bytes())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("count mismatch: %v", err)
	}
}

func TestContentAddress(t *testing.T) {
	h := testHeader()
	same := h
	same.Name = "other-name" // advisory fields do not move the address
	same.CoreHash = "different"
	same.Provenance = "functional"
	if h.Key() != same.Key() {
		t.Errorf("advisory header fields changed the content address")
	}
	// Budget split does not matter, total does.
	split := h
	split.FastForwardInsts, split.WarmupInsts, split.MeasureInsts = 0, 60_000, 100_000
	if h.TotalInsts() != split.TotalInsts() {
		t.Fatalf("test setup: totals differ")
	}
	if h.Key() != split.Key() {
		t.Errorf("budget split changed the content address despite equal totals")
	}
	for _, mut := range []func(*Header){
		func(h *Header) { h.ProgHash++ },
		func(h *Header) { h.CodeLen++ },
		func(h *Header) { h.Entry++ },
		func(h *Header) { h.MeasureInsts++ },
	} {
		m := h
		mut(&m)
		if m.Key() == h.Key() {
			t.Errorf("content-determining field change kept the address: %+v", m)
		}
	}
	name := h.FileName()
	if !strings.HasPrefix(name, "gcc-") || !strings.HasSuffix(name, ".tctrace") {
		t.Errorf("FileName = %q", name)
	}
	weird := h
	weird.Name = "My Bench/v2"
	if got := weird.FileName(); strings.ContainsAny(got, " /") {
		t.Errorf("FileName not sanitized: %q", got)
	}
}

// TestCollision is the content-address collision contract: a file whose
// name matches but whose header describes different content must be
// rejected with ErrMismatch, not replayed.
func TestCollision(t *testing.T) {
	h := testHeader()
	if err := h.Matches(h); err != nil {
		t.Fatalf("self match: %v", err)
	}
	// A longer recording satisfies a shorter want (prefix property).
	longer := h
	longer.MeasureInsts += 1000
	if err := longer.Matches(h); err != nil {
		t.Errorf("longer recording rejected: %v", err)
	}
	for name, mut := range map[string]func(*Header){
		"prog-hash": func(m *Header) { m.ProgHash++ },
		"code-len":  func(m *Header) { m.CodeLen++ },
		"entry":     func(m *Header) { m.Entry++ },
		"shorter":   func(m *Header) { m.MeasureInsts -= 1000 },
	} {
		m := h
		mut(&m)
		if err := m.Matches(h); !errors.Is(err, ErrMismatch) {
			t.Errorf("%s: Matches = %v, want ErrMismatch", name, err)
		}
	}
}

func TestKindOf(t *testing.T) {
	cases := map[isa.Op]Kind{
		isa.OpAdd:    KindOther,
		isa.OpLoad:   KindOther,
		isa.OpStore:  KindOther,
		isa.OpBr:     KindCond,
		isa.OpJmp:    KindJmp,
		isa.OpCall:   KindCall,
		isa.OpRet:    KindRet,
		isa.OpJmpInd: KindIndirect,
		isa.OpTrap:   KindTrap,
		isa.OpHalt:   KindHalt,
	}
	for op, want := range cases {
		if got := KindOf(isa.Inst{Op: op}); got != want {
			t.Errorf("KindOf(%v) = %v, want %v", op, got, want)
		}
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errors.New("disk full")
	}
	e.n -= len(p)
	return len(p), nil
}

func TestWriterLatchesErrors(t *testing.T) {
	w, err := NewWriter(&errWriter{n: 64}, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100_000; i++ {
		w.Append(Rec{PC: i % 1000, Kind: KindOther})
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after write failure returned nil")
	}
	if _, err := NewWriter(&errWriter{n: 0}, testHeader()); err == nil {
		t.Fatal("NewWriter with failing destination returned nil error")
	}
}
