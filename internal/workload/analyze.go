package workload

import (
	"fmt"
	"strings"

	"tracecache/internal/exec"
	"tracecache/internal/isa"
	"tracecache/internal/program"
)

// Analysis summarises the dynamic instruction stream of a program: the
// statistics that determine how the trace cache techniques behave (block
// sizes, branch bias, call/indirect mix). It backs `tcgen -stats` and the
// workload calibration tests.
type Analysis struct {
	Insts  uint64
	Blocks uint64
	Halted bool

	CondBranches uint64
	Taken        uint64
	Calls        uint64
	Returns      uint64
	Indirects    uint64
	Traps        uint64
	Loads        uint64
	Stores       uint64

	// BlockSizeHist counts dynamic fetch-block sizes (index = size,
	// clamped to the last bin).
	BlockSizeHist [33]uint64

	// Site-level branch behaviour (sites executed at least MinSiteExecs
	// times).
	Sites          int
	BiasedSites    int     // dominant direction >= BiasCutoff
	BiasedDynShare float64 // fraction of warm dynamic branches from biased sites
	MaxCallDepth   int
}

// MinSiteExecs is the execution count below which a branch site is
// considered too cold to classify.
const MinSiteExecs = 16

// BiasCutoff is the dominant-direction fraction above which a branch site
// counts as strongly biased, following the branch classification and
// filtering literature the paper draws on (Chang et al.).
const BiasCutoff = 0.9

// Analyze executes the program sequentially for up to limit instructions
// and summarises the dynamic stream.
func Analyze(p *program.Program, limit uint64) Analysis {
	var a Analysis
	takenBy := map[int][2]uint64{}
	run := uint64(0)
	depth := 0
	_, a.Halted = exec.Trace(p, limit, func(si exec.StepInfo) bool {
		a.Insts++
		run++
		if si.Inst.IsControl() {
			a.Blocks++
			if run >= uint64(len(a.BlockSizeHist)) {
				run = uint64(len(a.BlockSizeHist)) - 1
			}
			a.BlockSizeHist[run]++
			run = 0
		}
		switch {
		case si.Inst.IsCondBranch():
			a.CondBranches++
			c := takenBy[si.PC]
			if si.Taken {
				a.Taken++
				c[1]++
			} else {
				c[0]++
			}
			takenBy[si.PC] = c
		case si.Inst.Op == isa.OpCall:
			a.Calls++
			depth++
			if depth > a.MaxCallDepth {
				a.MaxCallDepth = depth
			}
		case si.Inst.IsReturn():
			a.Returns++
			if depth > 0 {
				depth--
			}
		case si.Inst.IsIndirect():
			a.Indirects++
		case si.Inst.IsTrap():
			a.Traps++
		case si.Inst.IsLoad():
			a.Loads++
		case si.Inst.IsStore():
			a.Stores++
		}
		return true
	})
	var dyn, biasedDyn uint64
	//tcvet:ignore determinism commutative reduction: per-site counts sum into totals, order cannot reach results
	for _, c := range takenBy {
		total := c[0] + c[1]
		if total < MinSiteExecs {
			continue
		}
		a.Sites++
		dyn += total
		hi := c[0]
		if c[1] > hi {
			hi = c[1]
		}
		if float64(hi) >= BiasCutoff*float64(total) {
			a.BiasedSites++
			biasedDyn += total
		}
	}
	if dyn > 0 {
		a.BiasedDynShare = float64(biasedDyn) / float64(dyn)
	}
	return a
}

// MeanBlockSize returns the mean dynamic fetch-block size.
func (a Analysis) MeanBlockSize() float64 {
	if a.Blocks == 0 {
		return 0
	}
	return float64(a.Insts) / float64(a.Blocks)
}

// BranchFraction returns conditional branches per instruction.
func (a Analysis) BranchFraction() float64 {
	if a.Insts == 0 {
		return 0
	}
	return float64(a.CondBranches) / float64(a.Insts)
}

// TakenFraction returns the taken rate of conditional branches.
func (a Analysis) TakenFraction() float64 {
	if a.CondBranches == 0 {
		return 0
	}
	return float64(a.Taken) / float64(a.CondBranches)
}

// String renders a compact report.
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "insts %d, blocks %d (mean %.2f)\n", a.Insts, a.Blocks, a.MeanBlockSize())
	fmt.Fprintf(&b, "cond branches %.1f%% of insts, %.1f%% taken\n",
		100*a.BranchFraction(), 100*a.TakenFraction())
	fmt.Fprintf(&b, "warm sites %d, strongly biased %d (%.1f%% of dynamic branches)\n",
		a.Sites, a.BiasedSites, 100*a.BiasedDynShare)
	fmt.Fprintf(&b, "calls %d, returns %d, indirect %d, traps %d, max depth %d\n",
		a.Calls, a.Returns, a.Indirects, a.Traps, a.MaxCallDepth)
	fmt.Fprintf(&b, "loads %d, stores %d\n", a.Loads, a.Stores)
	return b.String()
}

// SuiteSummary analyses every benchmark with the given budget and returns
// rows (benchmark, mean block size, branch %, biased %) in paper order —
// the dynamic counterpart of Table 1.
func SuiteSummary(limit uint64) []string {
	rows := make([]string, 0, 15)
	for _, prof := range Profiles() {
		a := Analyze(prof.MustGenerate(), limit)
		rows = append(rows, fmt.Sprintf("%-14s blk %.2f  br %.1f%%  biased %.1f%%",
			prof.Name, a.MeanBlockSize(), 100*a.BranchFraction(), 100*a.BiasedDynShare))
	}
	return rows
}
