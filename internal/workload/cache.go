package workload

import (
	"fmt"
	"sync"

	"tracecache/internal/checkpoint"
	"tracecache/internal/program"
)

// progCache maps profile name -> func() (*program.Program, error), each a
// sync.OnceValues wrapper around the profile's Generate. Generation depends
// only on the profile (the Seed makes it deterministic), never on the
// simulation budget, so the name alone is a sufficient key.
var progCache sync.Map

// SharedProgram returns the generated program for the named profile,
// computed at most once per process and shared by every caller. Programs
// are immutable after generation (the simulator only reads Code and calls
// the pure Stats accessors), so sharing one instance across concurrently
// running simulations is safe. Callers must not mutate the returned
// program.
func SharedProgram(name string) (*program.Program, error) {
	if f, ok := progCache.Load(name); ok {
		return f.(func() (*program.Program, error))()
	}
	prof, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	f, _ := progCache.LoadOrStore(name, sync.OnceValues(prof.Generate))
	return f.(func() (*program.Program, error))()
}

// cpCache maps "name/insts" -> func() (*checkpoint.Checkpoint, error).
// Checkpoints hold only architectural state, which depends on the program
// and the instruction count alone — never on the machine configuration —
// so the pair is a sufficient key.
var cpCache sync.Map

// SharedCheckpoint returns the architectural checkpoint of the named
// benchmark after insts committed instructions, captured at most once per
// process and shared by every caller. Checkpoints are immutable after
// capture and Restore only reads them, so sharing one instance across
// concurrently starting simulations is safe.
func SharedCheckpoint(name string, insts uint64) (*checkpoint.Checkpoint, error) {
	key := fmt.Sprintf("%s/%d", name, insts)
	if f, ok := cpCache.Load(key); ok {
		return f.(func() (*checkpoint.Checkpoint, error))()
	}
	gen := sync.OnceValues(func() (*checkpoint.Checkpoint, error) {
		prog, err := SharedProgram(name)
		if err != nil {
			return nil, err
		}
		return checkpoint.Capture(prog, insts), nil
	})
	f, _ := cpCache.LoadOrStore(key, gen)
	return f.(func() (*checkpoint.Checkpoint, error))()
}
