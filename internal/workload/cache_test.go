package workload

import (
	"sync"
	"testing"
)

func TestSharedProgramCached(t *testing.T) {
	a, err := SharedProgram("compress")
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedProgram("compress")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("SharedProgram regenerated a cached program")
	}
	if _, err := SharedProgram("no-such-benchmark"); err == nil {
		t.Error("unknown benchmark did not error")
	}
}

func TestSharedProgramConcurrent(t *testing.T) {
	// Run under -race in CI: concurrent first-touch of one key must
	// generate once and hand every caller the same instance.
	const goroutines = 16
	got := make([]interface{}, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := SharedProgram("go")
			if err != nil {
				t.Errorf("SharedProgram: %v", err)
				return
			}
			got[g] = p
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d got a different program instance", g)
		}
	}
}
